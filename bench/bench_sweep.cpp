/**
 * @file
 * Perf + identity harness for the vectorized batch sweep (ISSUE-9).
 *
 * Times the full-catalog 1..max_batch throughput sweep two ways on the
 * *same* warm compiled plans:
 *
 *  - per-batch: one `stepSeconds` call per batch size — the loop
 *    `throughputSweep` ran before the vectorized rewrite (plan lookup,
 *    scalar evaluate, scalar simulate per point);
 *  - vectorized: `throughputSweep` itself, which runs one
 *    `StepPlan::evaluateSweep` pass per (GPU, routing mode) and feeds
 *    the planes through `ExecutionModel::accumulateSweepSeconds`.
 *
 * Both paths are pinned bit-identical (step_plan.hpp's sweep
 * contract), so the bench first compares every point and exits
 * non-zero on any mismatch; only then does it time. The speedup ratio
 * is a gated artifact: bench_check.py fails CI if it regresses below
 * tolerance of the checked-in baseline, and the bench itself fails
 * below the 1.5x floor the vectorization was acceptance-tested at.
 *
 * Usage: bench_sweep [output.json]   (default: BENCH_sweep.json)
 */

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "core/scenario.hpp"
#include "gpusim/finetune_sim.hpp"

using namespace ftsim;

namespace {

using bench::nowMs;

/** Best-of-@p reps wall time of @p inner consecutive runs of @p body,
 *  in milliseconds per run (same shape as bench_perf_planner). */
template <typename F>
double
bestOfMs(int reps, int inner, F&& body)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const double start = nowMs();
        for (int i = 0; i < inner; ++i)
            body();
        const double elapsed = (nowMs() - start) / inner;
        if (r == 0 || elapsed < best)
            best = elapsed;
    }
    return best;
}

/** One (simulator, routing mode, batch ceiling) lane of the catalog. */
struct SweepLane {
    const FineTuneSim* sim = nullptr;
    bool sparse = false;
    std::size_t maxBatch = 0;
};

}  // namespace

int
main(int argc, char** argv)
{
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_sweep.json";
    // Keep timing output clean of does-not-fit warnings.
    Logger::instance().setLevel(LogLevel::Error);

    bench::banner("bench_sweep",
                  "Vectorized 1..max_batch sweep vs the per-batch "
                  "compiled loop (bit-identity gated)");

    const Scenario scenario = Scenario::gsMath();

    // The catalog: one warm simulator per paper GPU, each routing mode
    // that fits at batch 1, swept up to that mode's own max batch —
    // the exact grid sweepConfigs defines (and the planner simulates).
    std::vector<GpuSpec> gpus = GpuSpec::paperGpus();
    std::vector<std::unique_ptr<FineTuneSim>> sims;
    sims.reserve(gpus.size());
    for (const GpuSpec& gpu : gpus)
        sims.push_back(std::make_unique<FineTuneSim>(
            scenario.model, gpu, scenario.calibration));

    std::vector<SweepLane> lanes;
    std::size_t sweep_points = 0;
    for (const auto& sim_ptr : sims) {
        const FineTuneSim& sim = *sim_ptr;
        const std::vector<RunConfig> grid = sim.sweepConfigs(
            scenario.medianSeqLen, scenario.lengthSigma);
        for (bool sparse : {false, true}) {
            SweepLane lane;
            lane.sim = &sim;
            lane.sparse = sparse;
            for (const RunConfig& c : grid)
                if (c.sparse == sparse)
                    lane.maxBatch = std::max(lane.maxBatch, c.batchSize);
            if (lane.maxBatch == 0)
                continue;  // mode does not fit on this GPU
            lanes.push_back(lane);
            sweep_points += lane.maxBatch;
        }
    }

    // Warm every compiled plan (and prove both paths run) before any
    // identity check or timing: the bench measures the steady serving
    // state, not first-touch compilation.
    for (const SweepLane& lane : lanes)
        lane.sim
            ->throughputSweep(scenario.medianSeqLen, lane.sparse,
                              lane.maxBatch, scenario.lengthSigma)
            .value();

    // --- Bit-identity: every vectorized point vs its scalar twin. ----
    std::size_t mismatches = 0;
    std::size_t points_compared = 0;
    for (const SweepLane& lane : lanes) {
        const auto sweep =
            lane.sim
                ->throughputSweep(scenario.medianSeqLen, lane.sparse,
                                  lane.maxBatch, scenario.lengthSigma)
                .value();
        for (const ThroughputPoint& pt : sweep) {
            RunConfig c;
            c.batchSize = pt.batchSize;
            c.seqLen = lane.sim->paddedSeqLen(scenario.medianSeqLen,
                                              pt.batchSize,
                                              scenario.lengthSigma);
            c.sparse = lane.sparse;
            const double scalar = lane.sim->stepSeconds(c);
            ++points_compared;
            if (pt.stepSeconds != scalar) {
                ++mismatches;
                std::cerr << "MISMATCH " << lane.sim->gpu().name
                          << (lane.sparse ? " sparse" : " dense")
                          << " batch " << pt.batchSize << ": sweep "
                          << pt.stepSeconds << " vs scalar " << scalar
                          << "\n";
            }
        }
    }

    // --- Timings on the same warm lanes. -----------------------------
    const double per_batch_ms = bestOfMs(5, 20, [&] {
        for (const SweepLane& lane : lanes)
            for (std::size_t b = 1; b <= lane.maxBatch; ++b) {
                RunConfig c;
                c.batchSize = b;
                c.seqLen = lane.sim->paddedSeqLen(
                    scenario.medianSeqLen, b, scenario.lengthSigma);
                c.sparse = lane.sparse;
                lane.sim->stepSeconds(c);
            }
    });
    const double vectorized_ms = bestOfMs(5, 20, [&] {
        for (const SweepLane& lane : lanes)
            lane.sim
                ->throughputSweep(scenario.medianSeqLen, lane.sparse,
                                  lane.maxBatch, scenario.lengthSigma)
                .value();
    });
    const double speedup =
        vectorized_ms > 0.0 ? per_batch_ms / vectorized_ms : 0.0;

    bench::section("Full-catalog warm sweep (" +
                   std::to_string(sweep_points) + " points, " +
                   std::to_string(lanes.size()) + " lanes, " +
                   std::to_string(gpus.size()) + " GPUs)");
    std::cout << "per-batch compiled loop: " << per_batch_ms << " ms\n"
              << "vectorized evaluateSweep: " << vectorized_ms
              << " ms  (" << speedup << "x)\n"
              << "bit-identity: " << mismatches << " mismatches over "
              << points_compared << " points\n";
    bench::note("both paths share the warm compiled plans; the ratio "
                "isolates the sweep rewrite (dispatch hoisting + "
                "seconds-only arithmetic), not plan compilation");

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    out << "{\n"
        << "  \"bench\": \"bench_sweep\",\n"
        << "  \"scenario\": \"gsMath (Mixtral-8x7B, median 148)\",\n"
        << "  \"gpu_count\": " << gpus.size() << ",\n"
        << "  \"sweep_lanes\": " << lanes.size() << ",\n"
        << "  \"sweep_points\": " << sweep_points << ",\n"
        << "  \"identity\": {\n"
        << "    \"points_compared\": " << points_compared << ",\n"
        << "    \"mismatches\": " << mismatches << "\n"
        << "  },\n"
        << "  \"timings_ms\": {\n"
        << "    \"per_batch_sweep\": " << per_batch_ms << ",\n"
        << "    \"vectorized_sweep\": " << vectorized_ms << "\n"
        << "  },\n"
        << "  \"speedups\": {\n"
        << "    \"vectorized_vs_per_batch\": " << speedup << "\n"
        << "  }\n"
        << "}\n";
    bench::note("wrote " + out_path);

    if (mismatches != 0) {
        std::cerr << "FAIL: vectorized sweep diverged from the scalar "
                     "path\n";
        return 1;
    }
    if (speedup < 1.5) {
        std::cerr << "FAIL: vectorized sweep speedup " << speedup
                  << "x below the 1.5x acceptance floor\n";
        return 1;
    }
    return 0;
}
