/**
 * @file
 * Reproduces Fig. 5: execution-time breakdown by model layer class.
 * Mixtral: input norm / attention / post-attention norm / MoE.
 * BlackMamba: RMS layernorm / Mamba / MoE.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gpusim/finetune_sim.hpp"
#include "gpusim/memory_model.hpp"

using namespace ftsim;

namespace {

void
report(const ModelSpec& spec)
{
    const GpuSpec a40 = GpuSpec::a40();
    FineTuneSim sim(spec, a40);
    const int max_dense = MemoryModel::maxBatchSize(spec, a40, 128, false);
    const int max_sparse = MemoryModel::maxBatchSize(spec, a40, 128, true);

    struct Point {
        bool sparse;
        int batch;
    };
    std::vector<Point> points = {{false, 1},
                                 {false, max_dense},
                                 {true, 1},
                                 {true, max_dense},
                                 {true, max_sparse}};

    bench::section(spec.name + " (seq len 128)");
    Table table({"Config", "Layer class", "Seconds", "Share"});
    for (const Point& pt : points) {
        if (pt.batch < 1)
            continue;
        RunConfig config;
        config.batchSize = static_cast<std::size_t>(pt.batch);
        config.seqLen = 128;
        config.sparse = pt.sparse;
        StepProfile p = sim.profileStep(config);
        double layer_total = 0.0;
        for (const auto& layer : p.byLayer)
            if (layer.layer != LayerClass::OptimizerState)
                layer_total += layer.seconds;
        const std::string cfg_name =
            std::string(pt.sparse ? "Sparse" : "Dense") + "(bsz=" +
            std::to_string(pt.batch) + ")";
        for (const auto& layer : p.byLayer) {
            if (layer.layer == LayerClass::OptimizerState)
                continue;
            table.addRow({cfg_name, layerClassName(layer.layer),
                          Table::fmt(layer.seconds, 3),
                          Table::fmt(100.0 * layer.seconds / layer_total,
                                     1) +
                              " %"});
        }
    }
    std::cout << table.render();
}

}  // namespace

int
main()
{
    bench::banner("Fig. 5",
                  "Execution time breakdown by model layer class");
    report(ModelSpec::mixtral8x7b());
    report(ModelSpec::blackMamba2p8b());
    bench::note("paper Fig. 5: the MoE layer dominates — 85% of "
                "execution time on average (Takeaway 3).");
    return 0;
}
