/**
 * @file
 * Performance-tracking harness for the planner hot path.
 *
 * Unlike the figure/table benches (which reproduce paper artifacts),
 * this binary times the *implementation*: cold and warm `costTable`,
 * `cheapestPlan`, and a full-catalog throughput sweep — plus the same
 * sweep through the retained pre-optimization reference path
 * (`profileStepReference`, which rebuilds the KernelDesc workload per
 * query exactly as the code before the compiled-plan PR did). Results
 * are written to BENCH_planner.json so CI can track the repo's perf
 * trajectory over time (no thresholds yet — trajectory only).
 *
 * Reading the speedups: cold-vs-reference isolates the compiled-plan
 * rewrite alone; warm-vs-reference additionally includes the planner's
 * step-memoization layer (PR 1) and is the steady serving state.
 *
 * Usage: bench_perf_planner [output.json]   (default: BENCH_planner.json)
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "common/parallel.hpp"
#include "core/planner.hpp"

using namespace ftsim;

namespace {

using bench::nowMs;

/**
 * Best-of-@p reps wall time of @p inner consecutive runs of @p body,
 * in milliseconds per run. The inner loop amortizes clock granularity
 * (a full-catalog sweep is sub-millisecond once compiled).
 */
template <typename F>
double
bestOfMs(int reps, int inner, F&& body)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const double start = nowMs();
        for (int i = 0; i < inner; ++i)
            body();
        const double elapsed = (nowMs() - start) / inner;
        if (r == 0 || elapsed < best)
            best = elapsed;
    }
    return best;
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_planner.json";
    // Keep timing output clean of does-not-fit sweep warnings.
    Logger::instance().setLevel(LogLevel::Error);

    bench::banner("bench_perf_planner",
                  "Planner hot-path timings (compiled plans + lock-free "
                  "memoization)");

    const Scenario scenario = Scenario::gsMath();
    const std::vector<GpuSpec> gpus = GpuSpec::paperGpus();
    const unsigned threads = hardwareThreads();

    // --- Reference: the pre-compiled-plan implementation. ------------
    // One fresh simulator per GPU, every step profiled through the
    // retained reference path (per-query workload rebuild, no caching)
    // — the exact work the planner performed before this optimization.
    std::size_t sweep_points = 0;
    const double reference_sweep_ms = bestOfMs(3, 20, [&] {
        sweep_points = 0;
        for (const GpuSpec& gpu : gpus) {
            FineTuneSim sim(scenario.model, gpu, scenario.calibration);
            // sweepConfigs is the same grid throughputObservations
            // simulates, so reference and planner time equal workloads.
            for (const RunConfig& config : sim.sweepConfigs(
                     scenario.medianSeqLen, scenario.lengthSigma)) {
                sim.profileStepReference(config);
                ++sweep_points;
            }
        }
    });

    // --- Compiled-plan path, serial, cache cold. ----------------------
    const double cold_sweep_serial_ms = bestOfMs(3, 20, [&] {
        Planner planner(scenario);
        for (const GpuSpec& gpu : gpus)
            planner.throughputObservations(gpu);
    });

    // --- Compiled-plan path, parallel, cache cold. --------------------
    const double cold_sweep_parallel_ms = bestOfMs(3, 20, [&] {
        Planner planner(scenario);
        planner.setParallelism(threads);
        for (const GpuSpec& gpu : gpus)
            planner.throughputObservations(gpu);
    });

    // --- Warm sweep: planner cache populated. -------------------------
    Planner warm(scenario);
    warm.setParallelism(threads);
    for (const GpuSpec& gpu : gpus)
        warm.throughputObservations(gpu);
    const double warm_sweep_ms = bestOfMs(5, 200, [&] {
        for (const GpuSpec& gpu : gpus)
            warm.throughputObservations(gpu);
    });

    // --- Cost table / cheapest plan. ----------------------------------
    const double cold_cost_table_ms = bestOfMs(3, 20, [&] {
        Planner planner(scenario);
        planner.setParallelism(threads);
        planner.costTable(gpus);
    });
    const double warm_cost_table_ms =
        bestOfMs(5, 200, [&] { warm.costTable(gpus); });
    const double warm_cheapest_plan_ms =
        bestOfMs(5, 200, [&] { warm.cheapestPlan(gpus); });

    const PlannerStats stats = warm.stats();

    const double warm_speedup =
        warm_sweep_ms > 0.0 ? reference_sweep_ms / warm_sweep_ms : 0.0;
    const double cold_serial_speedup =
        cold_sweep_serial_ms > 0.0
            ? reference_sweep_ms / cold_sweep_serial_ms
            : 0.0;
    const double cold_parallel_speedup =
        cold_sweep_parallel_ms > 0.0
            ? reference_sweep_ms / cold_sweep_parallel_ms
            : 0.0;

    bench::section("Full-catalog throughput sweep (" +
                   std::to_string(sweep_points) + " configs, " +
                   std::to_string(gpus.size()) + " GPUs)");
    std::cout << "reference (pre-PR per-query rebuild): "
              << reference_sweep_ms << " ms\n"
              << "cold, compiled plans, serial:         "
              << cold_sweep_serial_ms << " ms  (" << cold_serial_speedup
              << "x)\n"
              << "cold, compiled plans, " << threads << " threads:"
              << "      " << cold_sweep_parallel_ms << " ms  ("
              << cold_parallel_speedup << "x)\n"
              << "warm (memoized):                      " << warm_sweep_ms
              << " ms  (" << warm_speedup << "x)\n";
    bench::note("cold ratios isolate the compiled-plan rewrite; the "
                "warm ratio also includes the PR-1 step cache");

    bench::section("Cost table / cheapest plan");
    std::cout << "costTable cold: " << cold_cost_table_ms
              << " ms, warm: " << warm_cost_table_ms
              << " ms; cheapestPlan warm: " << warm_cheapest_plan_ms
              << " ms\n";

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
    }
    out << "{\n"
        << "  \"bench\": \"bench_perf_planner\",\n"
        << "  \"scenario\": \"gsMath (Mixtral-8x7B, median 148)\",\n"
        << "  \"gpu_count\": " << gpus.size() << ",\n"
        << "  \"sweep_configs\": " << sweep_points << ",\n"
        << "  \"threads\": " << threads << ",\n"
        << "  \"timings_ms\": {\n"
        << "    \"reference_sweep\": " << reference_sweep_ms << ",\n"
        << "    \"cold_sweep_serial\": " << cold_sweep_serial_ms << ",\n"
        << "    \"cold_sweep_parallel\": " << cold_sweep_parallel_ms
        << ",\n"
        << "    \"warm_sweep\": " << warm_sweep_ms << ",\n"
        << "    \"cold_cost_table\": " << cold_cost_table_ms << ",\n"
        << "    \"warm_cost_table\": " << warm_cost_table_ms << ",\n"
        << "    \"warm_cheapest_plan\": " << warm_cheapest_plan_ms
        << "\n"
        << "  },\n"
        << "  \"speedups_vs_reference\": {\n"
        << "    \"warm_sweep\": " << warm_speedup << ",\n"
        << "    \"cold_sweep_serial\": " << cold_serial_speedup << ",\n"
        << "    \"cold_sweep_parallel\": " << cold_parallel_speedup
        << "\n"
        << "  },\n"
        << "  \"planner_stats\": {\n"
        << "    \"step_cache_hits\": " << stats.stepCacheHits << ",\n"
        << "    \"step_cache_misses\": " << stats.stepCacheMisses << ",\n"
        << "    \"steps_simulated\": " << stats.stepsSimulated << "\n"
        << "  }\n"
        << "}\n";
    bench::note("wrote " + out_path);
    return 0;
}
