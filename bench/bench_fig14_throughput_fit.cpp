/**
 * @file
 * Reproduces Fig. 14: Eq. (2) fitted to A40 throughput sweeps for every
 * (model, dataset) combination, with the RMSE validation the paper
 * reports (0.05 / 0.02 / 0.79 / 0.42 on its testbed).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/planner.hpp"

using namespace ftsim;

int
main()
{
    bench::banner("Fig. 14",
                  "Estimation and validation of fine-tuning throughput "
                  "(Eq. 2, A40)");

    struct Combo {
        const char* label;
        bool mixtral;
        std::size_t seq;
        double sigma;
        double paper_rmse;
    };
    const Combo combos[] = {
        {"Mixtral-CS", true, 79, 0.45, 0.05},
        {"Mixtral-MATH", true, 174, 0.40, 0.02},
        {"Mamba-CS", false, 79, 0.45, 0.79},
        {"Mamba-MATH", false, 174, 0.40, 0.42},
    };

    Table table({"Combo", "C2", "C3", "C4", "RMSE", "paper RMSE",
                 "points"});
    for (const Combo& combo : combos) {
        // One scenario (and planner) per (model, dataset) combo; the
        // sweep and the per-point predictions below share its cache.
        Planner planner(Scenario{}
                            .withModel(combo.mixtral
                                           ? ModelSpec::mixtral8x7b()
                                           : ModelSpec::blackMamba2p8b())
                            .withMedianSeqLen(combo.seq)
                            .withLengthSigma(combo.sigma));
        ThroughputFit fit =
            planner.fitThroughput(GpuSpec::a40()).valueOrThrow();
        table.addRow({combo.label, Table::fmt(fit.model.c2(), 3),
                      Table::fmt(fit.model.c3(), 3),
                      Table::fmt(fit.model.c4(), 3),
                      Table::fmt(fit.rmse, 3),
                      Table::fmt(combo.paper_rmse, 2),
                      Table::fmt(static_cast<long long>(
                          fit.observations.size()))});

        bench::section(std::string(combo.label) +
                       ": measured vs. Eq. 2 prediction");
        Table pts({"batch", "sparsity", "measured q/s", "Eq. 2 q/s"});
        for (const auto& obs : fit.observations) {
            pts.addRow({Table::fmt(obs.batchSize, 0),
                        Table::fmt(obs.sparsity, 2),
                        Table::fmt(obs.qps, 3),
                        Table::fmt(fit.model.predict(obs.batchSize,
                                                     obs.sparsity),
                                   3)});
        }
        std::cout << pts.render();
    }
    bench::section("Summary");
    std::cout << table.render();

    bench::note("the logarithmic Eq. 2 tracks the simulator's saturating "
                "throughput curves within a few percent of peak, as in "
                "the paper's validation.");
    return 0;
}
