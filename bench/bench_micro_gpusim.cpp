/**
 * @file
 * Microbenchmarks (google-benchmark) for the GPU simulator itself: how
 * fast the analytical pipeline evaluates, which is what makes the cost
 * model practical for interactive capacity planning.
 */

#include <benchmark/benchmark.h>

#include "core/pipeline.hpp"
#include "gpusim/finetune_sim.hpp"
#include "gpusim/memory_model.hpp"

namespace {

using namespace ftsim;

void
BM_WorkloadBuild(benchmark::State& state)
{
    WorkloadBuilder builder(ModelSpec::mixtral8x7b());
    RunConfig config;
    config.batchSize = 8;
    config.seqLen = 128;
    for (auto _ : state)
        benchmark::DoNotOptimize(builder.buildStep(config).size());
}
BENCHMARK(BM_WorkloadBuild);

void
BM_ProfileStep(benchmark::State& state)
{
    FineTuneSim sim(ModelSpec::mixtral8x7b(), GpuSpec::a40());
    RunConfig config;
    config.batchSize = 8;
    config.seqLen = 128;
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.profileStep(config).stepSeconds);
}
BENCHMARK(BM_ProfileStep);

void
BM_MaxBatchSize(benchmark::State& state)
{
    ModelSpec spec = ModelSpec::mixtral8x7b();
    GpuSpec gpu = GpuSpec::a40();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            MemoryModel::maxBatchSize(spec, gpu, 148, true));
    }
}
BENCHMARK(BM_MaxBatchSize);

void
BM_ThroughputFit(benchmark::State& state)
{
    for (auto _ : state) {
        ThroughputFit fit = ExperimentPipeline::fitThroughput(
            ModelSpec::blackMamba2p8b(), GpuSpec::a40(), 79, {}, 0.45);
        benchmark::DoNotOptimize(fit.rmse);
    }
}
BENCHMARK(BM_ThroughputFit);

void
BM_CostTable(benchmark::State& state)
{
    for (auto _ : state) {
        auto rows = ExperimentPipeline::costTable(
            ModelSpec::mixtral8x7b(), GpuSpec::paperGpus(),
            CloudCatalog::cudoCompute(), 148, true, 14000.0, 10.0);
        benchmark::DoNotOptimize(rows.size());
    }
}
BENCHMARK(BM_CostTable);

}  // namespace

BENCHMARK_MAIN();
