/**
 * @file
 * Reproduces Table I: the evaluated LLM models — parameter counts,
 * GPU-resident weight memory, layer counts, and experts per MoE layer.
 * All quantities are derived from the architecture specs (closed form),
 * not hard-coded.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/math_util.hpp"
#include "common/table.hpp"
#include "models/spec.hpp"

using namespace ftsim;

int
main()
{
    bench::banner("Table I", "LLM models");

    Table table({"Model", "#params", "Mem consump.", "#layers",
                 "#experts/MoE", "Strategy"});
    for (const ModelSpec& spec :
         {ModelSpec::mixtral8x7b(), ModelSpec::blackMamba2p8b()}) {
        table.addRow({
            spec.name,
            formatCount(static_cast<double>(spec.totalParams())),
            Table::fmt(spec.weightMemoryBytes() / 1e9, 2) + " GB",
            Table::fmt(static_cast<long long>(spec.nLayers)),
            Table::fmt(static_cast<long long>(spec.nExperts)),
            spec.strategy == FineTuneStrategy::QLoRA ? "QLoRA (4-bit)"
                                                     : "Full FT (fp16)",
        });
    }
    std::cout << table.render();

    bench::section("Trainable parameters under each strategy");
    Table trainable({"Model", "Trainable", "Fraction", "Optimizer state"});
    for (const ModelSpec& spec :
         {ModelSpec::mixtral8x7b(), ModelSpec::blackMamba2p8b()}) {
        const double frac =
            static_cast<double>(spec.trainableParams()) /
            static_cast<double>(spec.totalParams());
        trainable.addRow({
            spec.name,
            formatCount(static_cast<double>(spec.trainableParams())),
            Table::fmt(100.0 * frac, 2) + " %",
            Table::fmt(spec.optimizerStateBytes() / 1e9, 2) + " GB",
        });
    }
    std::cout << trainable.render();

    bench::note("paper Table I: Mixtral 47B / 23.35 GB / 32 layers / 8 "
                "experts; BlackMamba 2.8B / 5.6 GB / 18 layers / 8 "
                "experts.");
    return 0;
}
