/**
 * @file
 * Ablation: Switch-style load-balancing auxiliary loss.
 *
 * §IV-B5 of the paper discusses load imbalance and cites balancing
 * techniques as future mitigation. This ablation actually runs one: the
 * miniature Mixtral is fine-tuned with and without the auxiliary loss,
 * comparing post-tuning expert-load variance (Fig. 11 metric) and task
 * accuracy.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "train/imbalance.hpp"
#include "train/trainer.hpp"

using namespace ftsim;

namespace {

struct Outcome {
    double variance = 0.0;
    double exactMatch = 0.0;
};

Outcome
run(Scalar aux_weight)
{
    MiniModelConfig cfg = MiniModelConfig::miniMixtral();
    cfg.dModel = 32;
    cfg.nLayers = 2;
    cfg.nHeads = 4;
    cfg.dFf = 64;
    cfg.nExperts = 8;
    cfg.loraRank = 4;
    cfg.auxLossWeight = aux_weight;

    DatasetSpec spec = DatasetSpec::commonsense15k();
    spec.numQueries = 144;
    spec.medianSeqLen = 12.0;
    spec.lengthSigma = 0.25;
    Dataset train = Dataset::generate(spec);

    MoeLlm model(cfg);
    AdamW opt(model.trainableParameters(), 8e-3);
    TrainerOptions options;
    options.batchSize = 16;
    Trainer trainer(model, opt, options);
    for (int epoch = 0; epoch < 10; ++epoch)
        trainer.trainEpoch(train);

    Outcome out;
    out.variance =
        measureExpertLoad(model, train, 16).varianceAcrossExperts;
    out.exactMatch = evaluateExactMatch(model, train, 16, 64).exactMatch;
    return out;
}

}  // namespace

int
main()
{
    bench::banner("Ablation",
                  "Load-balancing auxiliary loss (mini-Mixtral, CS)");

    Table table({"aux weight", "post-tuning load variance",
                 "exact match"});
    for (Scalar w : {0.0, 0.01, 0.05}) {
        Outcome out = run(w);
        table.addRow({Table::fmt(w, 2), Table::fmt(out.variance, 3),
                      Table::fmt(out.exactMatch, 2)});
    }
    std::cout << table.render();

    bench::note("the auxiliary loss trades a flatter expert-token "
                "distribution (lower variance, better for expert "
                "parallelism) against pressure on task loss — the "
                "balancing option §IV-B5 points to.");
    return 0;
}
