/**
 * @file
 * Reproduces Fig. 8: end-to-end fine-tuning throughput (queries/second)
 * for Mixtral and BlackMamba on the CS and MATH datasets, dense vs.
 * sparse, at batch size 1, the dense maximum, and the sparse maximum.
 * The padded-batch length model is active (dataset sigma), as in the
 * real measured runs.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gpusim/finetune_sim.hpp"
#include "gpusim/memory_model.hpp"

using namespace ftsim;

namespace {

struct DatasetCase {
    const char* label;
    std::size_t seq;
    double sigma;
};

void
report(const ModelSpec& spec, const DatasetCase& ds)
{
    const GpuSpec a40 = GpuSpec::a40();
    FineTuneSim sim(spec, a40);
    const int max_dense =
        MemoryModel::maxBatchSize(spec, a40, ds.seq, false);
    const int max_sparse =
        MemoryModel::maxBatchSize(spec, a40, ds.seq, true);

    bench::section(spec.name + " — " + ds.label);
    Table table({"Config", "Throughput (q/s)", "Step latency (s)"});
    struct Point {
        bool sparse;
        int batch;
    };
    std::vector<Point> points = {{false, 1},
                                 {false, max_dense},
                                 {true, 1},
                                 {true, max_dense},
                                 {true, max_sparse}};
    for (const Point& pt : points) {
        if (pt.batch < 1)
            continue;
        const double qps =
            sim.throughput(static_cast<std::size_t>(pt.batch), ds.seq,
                           pt.sparse, ds.sigma);
        table.addRow({
            std::string(pt.sparse ? "Sparse" : "Dense") + "(bsz=" +
                std::to_string(pt.batch) + ")",
            Table::fmt(qps, 2),
            Table::fmt(static_cast<double>(pt.batch) / qps, 2),
        });
    }
    std::cout << table.render();
}

}  // namespace

int
main()
{
    bench::banner("Fig. 8", "Query throughput of Mixtral and BlackMamba");

    const DatasetCase cs{"CS (median 79)", 79, 0.45};
    const DatasetCase math{"MATH (median 174)", 174, 0.40};
    for (const ModelSpec& spec :
         {ModelSpec::mixtral8x7b(), ModelSpec::blackMamba2p8b()}) {
        report(spec, cs);
        report(spec, math);
    }

    bench::note("paper Fig. 8 (A40): Mixtral-CS 0.3/0.5/0.3/0.7/1.7; "
                "Mixtral-MATH 0.3/0.3/1.0; BlackMamba-CS "
                "2.3/7.9/2.4/10.5/14.9; BlackMamba-MATH "
                "2.2/5.3/2.2/6.5/11.6 q/s. Sparse > dense at equal "
                "batch; growth with batch is sub-linear (Takeaway 4).");
    return 0;
}
