/**
 * @file
 * Reproduces Fig. 13: Eq. (1) fitted to the measured maximum batch sizes
 * of Mixtral across GPUs, then projected to hypothetical 100 GB and
 * 120 GB devices.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/planner.hpp"

using namespace ftsim;

int
main()
{
    bench::banner("Fig. 13",
                  "Projected maximum batch size of Mixtral vs. GPU "
                  "DRAM capacity (Eq. 1)");

    Planner planner(Scenario::gsMath());  // GS median 148, as Table IV.
    const ModelSpec& spec = planner.scenario().model;
    const double model_mem = spec.weightMemoryBytes() / 1e9;
    const std::size_t seq = planner.scenario().medianSeqLen;

    BatchSizeFit fit =
        planner.fitBatchSize(GpuSpec::paperGpus(), {79, 128, 148, 174})
            .valueOrThrow();
    std::cout << "fitted Eq. 1 coefficients: C0 = "
              << Table::fmt(fit.model.c0(), 2)
              << ", C1 = " << Table::fmt(fit.model.c1(), 3)
              << "  (fit RMSE " << Table::fmt(fit.rmse, 2) << ")\n"
              << "(paper: C0 = 82, C1 = 0.95 for Mixtral on the "
                 "authors' measurements)\n";

    bench::section("Ground truth vs. projection (sparse, seq len 148)");
    Table table({"GPU", "DRAM (GB)", "Measured max bsz",
                 "Eq. 1 projection"});
    for (const GpuSpec& gpu : GpuSpec::paperGpus()) {
        const int truth = MemoryModel::maxBatchSize(spec, gpu, seq, true);
        const int pred =
            fit.model.predict(gpu.memGB, model_mem, 148.0, 0.25);
        table.addRow({gpu.name, Table::fmt(gpu.memGB, 0),
                      Table::fmt(static_cast<long long>(truth)),
                      Table::fmt(static_cast<long long>(pred))});
    }
    for (double capacity : {100.0, 120.0}) {
        const GpuSpec gpu = GpuSpec::hypothetical(capacity);
        const int truth = MemoryModel::maxBatchSize(spec, gpu, seq, true);
        const int pred =
            fit.model.predict(capacity, model_mem, 148.0, 0.25);
        table.addRow({gpu.name + " (projected)",
                      Table::fmt(capacity, 0),
                      Table::fmt(static_cast<long long>(truth)),
                      Table::fmt(static_cast<long long>(pred))});
    }
    std::cout << table.render();

    bench::note("paper Fig. 13: max batch grows linearly with capacity; "
                "the paper projects bsz 28 at 100 GB and 35 at 120 GB on "
                "its testbed's steeper slope. The shape (linear growth "
                "beyond today's 80 GB) is the reproduced claim.");
    return 0;
}
