/**
 * @file
 * Reproduces the paper's §IV-B6 sequence-length sensitivity study (the
 * figure omitted from the paper for space): for each sequence length in
 * {64, 128, 256, 512, 1024}, pick the batch size that fills A40 memory
 * and compare step latency, throughput, and time-weighted SM / DRAM
 * utilization.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gpusim/finetune_sim.hpp"
#include "gpusim/memory_model.hpp"

using namespace ftsim;

namespace {

void
report(const ModelSpec& spec, bool sparse)
{
    const GpuSpec a40 = GpuSpec::a40();
    FineTuneSim sim(spec, a40);

    bench::section(spec.name + (sparse ? " (sparse)" : " (dense)"));
    Table table({"Seq len", "Max batch", "Tokens/step", "Step (s)",
                 "Queries/s", "SM (%)", "DRAM (%)"});
    for (std::size_t seq : {64u, 128u, 256u, 512u, 1024u}) {
        const int batch = MemoryModel::maxBatchSize(spec, a40, seq, sparse);
        if (batch < 1)
            continue;
        RunConfig config;
        config.batchSize = static_cast<std::size_t>(batch);
        config.seqLen = seq;
        config.sparse = sparse;
        StepProfile p = sim.profileStep(config);
        table.addRow({
            Table::fmt(static_cast<long long>(seq)),
            Table::fmt(static_cast<long long>(batch)),
            Table::fmt(static_cast<long long>(batch * seq)),
            Table::fmt(p.stepSeconds, 3),
            Table::fmt(p.throughputQps, 2),
            Table::fmt(p.moeTimeWeightedSmPct, 1),
            Table::fmt(p.moeTimeWeightedDramPct, 1),
        });
    }
    std::cout << table.render();
}

}  // namespace

int
main()
{
    bench::banner("§IV-B6", "Sensitivity study on sequence length");
    for (const ModelSpec& spec :
         {ModelSpec::mixtral8x7b(), ModelSpec::blackMamba2p8b()}) {
        report(spec, true);
        report(spec, false);
    }
    bench::note("paper §IV-B6: with memory-filling batches the token "
                "count per step is roughly constant across sequence "
                "lengths, so step latency stays nearly flat and shorter "
                "sequences yield higher query throughput.");
    return 0;
}
