/**
 * @file
 * Reproduces Fig. 6: kernel-level execution-time breakdown inside the
 * MoE layer (matmul(w1/w2/w3), the dequant kernels, softmax/sigmoid,
 * top-k, router), forward + backward merged, per batch size.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gpusim/finetune_sim.hpp"
#include "gpusim/memory_model.hpp"

using namespace ftsim;

namespace {

void
report(const ModelSpec& spec)
{
    const GpuSpec a40 = GpuSpec::a40();
    FineTuneSim sim(spec, a40);
    const int max_dense = MemoryModel::maxBatchSize(spec, a40, 128, false);
    const int max_sparse = MemoryModel::maxBatchSize(spec, a40, 128, true);

    struct Point {
        bool sparse;
        int batch;
    };
    std::vector<Point> points = {{false, 1},
                                 {false, max_dense},
                                 {true, 1},
                                 {true, max_dense},
                                 {true, max_sparse}};

    bench::section(spec.name + " MoE kernels (seq len 128, us)");
    // Collect the union of kernel names from the largest configuration.
    Table table({"Config", "Kernel", "Time (us)", "Launches"});
    for (const Point& pt : points) {
        if (pt.batch < 1)
            continue;
        RunConfig config;
        config.batchSize = static_cast<std::size_t>(pt.batch);
        config.seqLen = 128;
        config.sparse = pt.sparse;
        StepProfile p = sim.profileStep(config);
        const std::string cfg_name =
            std::string(pt.sparse ? "Sparse" : "Dense") + "(bsz=" +
            std::to_string(pt.batch) + ")";
        for (const KernelAggregate& k : p.moeKernels) {
            table.addRow({cfg_name, k.name,
                          Table::fmt(k.seconds * 1e6, 0),
                          Table::fmt(static_cast<long long>(k.launches))});
        }
    }
    std::cout << table.render();
}

}  // namespace

int
main()
{
    bench::banner("Fig. 6",
                  "Execution breakdown of the MoE layer by kernel");
    report(ModelSpec::mixtral8x7b());
    report(ModelSpec::blackMamba2p8b());
    bench::note("paper Fig. 6: matrix multiplication (w1/w2/w3) is the "
                "largest component; Mixtral's de-quantization kernels "
                "are significant at small batch sizes (Takeaway 3).");
    return 0;
}
