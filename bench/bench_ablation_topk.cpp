/**
 * @file
 * Ablation: expert activation count (top-k sweep).
 *
 * The paper compares only top-2 (sparse) against top-8 (dense); this
 * ablation sweeps k in {1, 2, 4, 8} to map the full trade-off between
 * activated compute, maximum batch size, and throughput — the design
 * space behind Takeaway 4.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gpusim/finetune_sim.hpp"
#include "gpusim/memory_model.hpp"

using namespace ftsim;

int
main()
{
    bench::banner("Ablation",
                  "Active experts per token (top-k sweep, Mixtral, A40, "
                  "CS)");

    const GpuSpec a40 = GpuSpec::a40();
    Table table({"top-k", "sparsity", "max bsz", "q/s @ bsz1",
                 "q/s @ max bsz"});
    for (std::size_t k : {1u, 2u, 4u, 8u}) {
        ModelSpec spec = ModelSpec::mixtral8x7b();
        spec.topKSparse = k;
        const int max_bsz = MemoryModel::maxBatchSize(spec, a40, 79, true);
        FineTuneSim sim(spec, a40);
        const double q1 = sim.throughput(1, 79, true, 0.45);
        const double qmax =
            max_bsz >= 1 ? sim.throughput(
                               static_cast<std::size_t>(max_bsz), 79,
                               true, 0.45)
                         : 0.0;
        table.addRow({Table::fmt(static_cast<long long>(k)),
                      Table::fmt(spec.sparsity(true), 3),
                      Table::fmt(static_cast<long long>(max_bsz)),
                      Table::fmt(q1, 2), Table::fmt(qmax, 2)});
    }
    std::cout << table.render();

    bench::note("lower k -> larger feasible batches and higher peak "
                "throughput; the paper's top-2 choice keeps accuracy "
                "at dense level (Fig. 3) while nearly quadrupling "
                "throughput vs. dense (Fig. 8).");
    return 0;
}
