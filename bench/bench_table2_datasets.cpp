/**
 * @file
 * Reproduces Table II: the fine-tuning and evaluation datasets — query
 * counts, median sequence lengths, and task types. Datasets are the
 * synthetic stand-ins generated at the paper's full sizes.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "data/dataset.hpp"

using namespace ftsim;

int
main()
{
    bench::banner("Table II", "Datasets");

    Table table({"Dataset", "#queries", "median seq len", "type"});
    for (const DatasetSpec& spec :
         {DatasetSpec::commonsense15k(), DatasetSpec::math14k(),
          DatasetSpec::hellaswag(), DatasetSpec::gsm8k()}) {
        Dataset ds = Dataset::generate(spec);
        table.addRow({
            ds.name(),
            Table::fmt(static_cast<long long>(ds.size())),
            Table::fmt(ds.medianSeqLen(), 0),
            ds.kind() == TaskKind::Commonsense ? "Common Sense" : "Math",
        });
    }
    std::cout << table.render();

    bench::note("paper Table II: CS 15K/79, MATH 14K/174, HellaSwag "
                "10K/272, GSM8K 1.3K/148.");
    return 0;
}
