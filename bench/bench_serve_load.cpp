/**
 * @file
 * Load-generator bench for the plan-serving subsystem.
 *
 * Replays a synthetic multi-tenant trace — N tenants probing a
 * scenario x GPU grid, so the request stream is duplicate-heavy, the
 * shape pre-hoc prediction services see when many users price the same
 * popular runs — against two servers:
 *
 *  - **serial / naive**: one fresh `Planner` per request, executed
 *    sequentially. No step cache survives a request, no planner is
 *    shared, nothing coalesces — the straw-man a service without
 *    shared state degenerates to.
 *  - **coalesced**: one `PlanService` (admission queue + worker pool +
 *    request coalescing + planner sharing + fleet-wide plan registry).
 *
 * Both paths must produce bit-identical answers; the bench verifies
 * that, emits BENCH_serve.json for trend tracking, and exits non-zero
 * if the coalesced service is *slower* than the serial baseline (the
 * ci.sh perf-smoke gate). The ISSUE-3 acceptance floor is 5x on this
 * 256-request trace.
 *
 * A second, eviction-pressure trace (ISSUE-4) replays more distinct
 * questions than a capacity-bounded service can cache, twice, and
 * asserts the governance invariants: the answer cache never exceeds
 * its configured capacity (peak-size audit), eviction actually
 * happened, and every answer stays bit-identical to an unbounded
 * service's — eviction may cost recomputation, never correctness.
 *
 * Usage: bench_serve_load [output.json]   (default: BENCH_serve.json)
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "core/planner.hpp"
#include "serve/plan_service.hpp"

using namespace ftsim;

namespace {

using bench::nowMs;

GpuSpec
gpuByName(const std::string& name)
{
    if (const GpuSpec* gpu = GpuSpec::byName(name))
        return *gpu;
    fatal("bench_serve_load: unknown GPU " + name);
}

/**
 * The naive one-Planner-per-request server: what each request costs
 * when no state is shared between tenants.
 */
PlanResponse
answerNaive(const PlanRequest& request)
{
    PlanResponse response;
    response.query = request.query;
    Planner planner(request.scenario, CloudCatalog::cudoCompute());
    switch (request.query) {
    case QueryKind::MaxBatch: {
        Result<int> mbs = planner.maxBatch(gpuByName(request.gpu));
        if (!mbs)
            return errorResponse(request, mbs.error());
        response.ok = true;
        response.value = static_cast<double>(mbs.value());
        break;
    }
    case QueryKind::Throughput: {
        Result<double> qps =
            planner.throughput(gpuByName(request.gpu));
        if (!qps)
            return errorResponse(request, qps.error());
        response.ok = true;
        response.value = qps.value();
        break;
    }
    case QueryKind::CostTable: {
        Result<std::vector<CostRow>> rows =
            planner.costTable(GpuSpec::paperGpus());
        if (!rows)
            return errorResponse(request, rows.error());
        response.ok = true;
        response.rows = rows.value();
        break;
    }
    case QueryKind::CheapestPlan: {
        Result<CostRow> best =
            planner.cheapestPlan(GpuSpec::paperGpus());
        if (!best)
            return errorResponse(request, best.error());
        response.ok = true;
        response.rows.push_back(best.value());
        break;
    }
    case QueryKind::Report: {
        Result<std::string> report =
            planner.report(gpuByName(request.gpu));
        if (!report)
            return errorResponse(request, report.error());
        response.ok = true;
        response.report = report.value();
        break;
    }
    }
    return response;
}

bool
sameAnswer(const PlanResponse& a, const PlanResponse& b)
{
    if (a.ok != b.ok || a.query != b.query)
        return false;
    if (a.value != b.value || a.rows.size() != b.rows.size())
        return false;
    for (std::size_t i = 0; i < a.rows.size(); ++i)
        if (a.rows[i].gpuName != b.rows[i].gpuName ||
            a.rows[i].totalDollars != b.rows[i].totalDollars)
            return false;
    return a.report == b.report;
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";
    Logger::instance().setLevel(LogLevel::Error);

    bench::banner("bench_serve_load",
                  "multi-tenant trace: serial planners vs. coalesced "
                  "PlanService");

    // ---- The trace: 32 tenants x 8 probes over a shared grid. -------
    // Tenants probe the same popular scenarios and GPUs, so the stream
    // is duplicate-heavy: 256 requests, few distinct questions.
    const std::vector<Scenario> scenarios = {
        Scenario::gsMath(),
        Scenario::gsMath().withNumQueries(50000.0).withEpochs(3.0),
        Scenario::commonsense15k(),
    };
    const std::vector<std::string> gpu_names = {"A40", "A100-80GB",
                                                "H100"};

    std::vector<PlanRequest> templates;
    for (const Scenario& scenario : scenarios) {
        for (const std::string& gpu : gpu_names) {
            PlanRequest throughput;
            throughput.query = QueryKind::Throughput;
            throughput.gpu = gpu;
            throughput.scenario = scenario;
            templates.push_back(throughput);
        }
        PlanRequest table;
        table.query = QueryKind::CostTable;
        table.scenario = scenario;
        templates.push_back(table);

        PlanRequest cheapest;
        cheapest.query = QueryKind::CheapestPlan;
        cheapest.scenario = scenario;
        templates.push_back(cheapest);

        // The heavy probe: a full characterization (sweep + fits).
        PlanRequest report;
        report.query = QueryKind::Report;
        report.gpu = "A40";
        report.scenario = scenario;
        templates.push_back(report);
    }

    constexpr std::size_t kTenants = 32;
    constexpr std::size_t kProbesPerTenant = 8;
    std::vector<PlanRequest> trace;
    std::mt19937 rng(42);  // Deterministic trace across runs.
    for (std::size_t tenant = 0; tenant < kTenants; ++tenant) {
        for (std::size_t probe = 0; probe < kProbesPerTenant; ++probe) {
            const std::size_t pick = std::uniform_int_distribution<
                std::size_t>(0, templates.size() - 1)(rng);
            PlanRequest request = templates[pick];
            request.id = strCat("t", tenant, "-q", probe);
            trace.push_back(std::move(request));
        }
    }

    std::vector<std::string> keys;
    for (const PlanRequest& request : trace)
        keys.push_back(request.canonicalKey());
    std::sort(keys.begin(), keys.end());
    const std::size_t distinct = static_cast<std::size_t>(
        std::unique(keys.begin(), keys.end()) - keys.begin());

    bench::section("Trace");
    std::cout << trace.size() << " requests from " << kTenants
              << " tenants, " << distinct << " distinct questions ("
              << templates.size() << " templates)\n";

    // ---- Serial baseline: one fresh Planner per request. ------------
    std::vector<PlanResponse> serial_answers;
    serial_answers.reserve(trace.size());
    const double serial_start = nowMs();
    for (const PlanRequest& request : trace)
        serial_answers.push_back(answerNaive(request));
    const double serial_ms = nowMs() - serial_start;

    // ---- Coalesced PlanService. -------------------------------------
    PlanService service;  // Default: hardware workers, CUDO catalog.
    std::vector<std::shared_future<PlanResponse>> futures;
    futures.reserve(trace.size());
    const double coalesced_start = nowMs();
    for (const PlanRequest& request : trace)
        futures.push_back(service.submit(request));
    std::vector<PlanResponse> coalesced_answers;
    coalesced_answers.reserve(trace.size());
    for (auto& future : futures)
        coalesced_answers.push_back(future.get());
    const double coalesced_ms = nowMs() - coalesced_start;

    // ---- Verify: both servers give bit-identical answers. -----------
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < trace.size(); ++i)
        if (!sameAnswer(serial_answers[i], coalesced_answers[i]))
            ++mismatches;

    const ServiceStats stats = service.stats();
    const double speedup =
        coalesced_ms > 0.0 ? serial_ms / coalesced_ms : 0.0;

    // ---- Eviction pressure: bounded caches vs. an unbounded twin. ---
    // 64 distinct questions, replayed twice, against a service that can
    // cache only 16 answers / 8 planners: the second pass recomputes
    // what the LRU dropped. Deterministic serial replay so the
    // eviction order (and thus the stats) is reproducible.
    constexpr std::size_t kDistinctEviction = 64;
    constexpr std::size_t kMaxAnswers = 16;
    constexpr std::size_t kMaxPlanners = 8;
    std::vector<PlanRequest> pressure;
    for (std::size_t pass = 0; pass < 2; ++pass)
        for (std::size_t i = 0; i < kDistinctEviction; ++i) {
            PlanRequest request;
            request.query = QueryKind::MaxBatch;
            request.gpu = "A40";
            // Distinct num_queries -> distinct answer + planner keys
            // (the answer itself only depends on the memory model, so
            // the trace stays cheap however large it grows).
            request.scenario = Scenario::gsMath().withNumQueries(
                10000.0 + static_cast<double>(i));
            request.id = strCat("p", pass, "-", i);
            pressure.push_back(std::move(request));
        }

    ServiceConfig bounded_config;
    bounded_config.maxAnswers = kMaxAnswers;
    bounded_config.maxPlanners = kMaxPlanners;
    PlanService bounded(bounded_config);
    PlanService unbounded;

    const double eviction_start = nowMs();
    std::vector<PlanResponse> bounded_answers;
    bounded_answers.reserve(pressure.size());
    for (const PlanRequest& request : pressure)
        bounded_answers.push_back(bounded.ask(request));
    const double eviction_ms = nowMs() - eviction_start;

    std::size_t eviction_mismatches = 0;
    for (std::size_t i = 0; i < pressure.size(); ++i)
        if (!sameAnswer(bounded_answers[i], unbounded.ask(pressure[i])))
            ++eviction_mismatches;

    const ServiceStats bounded_stats = bounded.stats();
    const bool capacity_respected =
        bounded_stats.answersCachedPeak <= kMaxAnswers &&
        bounded_stats.answersCached <= kMaxAnswers &&
        bounded_stats.plannersCached <= kMaxPlanners;
    // 128 requests over 64 distinct questions with 16 slots must
    // churn: if nothing was evicted the bound is not actually applied.
    const bool eviction_exercised = bounded_stats.answersEvicted > 0 &&
                                    bounded_stats.plannersEvicted > 0;

    bench::section("Results");
    std::cout << "serial (fresh planner per request): " << serial_ms
              << " ms\n"
              << "coalesced PlanService (" << service.workers()
              << " workers):      " << coalesced_ms << " ms  ("
              << speedup << "x)\n"
              << "coalesced=" << stats.coalesced << "/" << stats.requests
              << " requests, executed=" << stats.executed
              << ", planners=" << stats.plannersCreated
              << " (reused " << stats.plannerReuses << "x)"
              << ", plans_compiled=" << stats.plansCompiled
              << ", steps_simulated=" << stats.stepsSimulated << '\n'
              << "latency p50=" << stats.p50LatencyMs
              << "ms p99=" << stats.p99LatencyMs << "ms\n"
              << "answer mismatches: " << mismatches << '\n';
    bench::note("acceptance floor: coalesced >= 5x serial on this "
                "duplicate-heavy trace; ci.sh fails below 1x");

    bench::section("Eviction pressure");
    std::cout << pressure.size() << " requests over "
              << kDistinctEviction << " distinct questions, caps "
              << kMaxAnswers << " answers / " << kMaxPlanners
              << " planners: " << eviction_ms << " ms\n"
              << "answers cached=" << bounded_stats.answersCached
              << " peak=" << bounded_stats.answersCachedPeak
              << " evicted=" << bounded_stats.answersEvicted
              << "; planners cached=" << bounded_stats.plannersCached
              << " evicted=" << bounded_stats.plannersEvicted << '\n'
              << "capacity respected: "
              << (capacity_respected ? "yes" : "NO") << ", eviction "
              << "exercised: " << (eviction_exercised ? "yes" : "NO")
              << ", mismatches vs unbounded: " << eviction_mismatches
              << '\n';

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << '\n';
        return 1;
    }
    out << "{\n"
        << "  \"bench\": \"bench_serve_load\",\n"
        << "  \"trace_requests\": " << trace.size() << ",\n"
        << "  \"distinct_requests\": " << distinct << ",\n"
        << "  \"tenants\": " << kTenants << ",\n"
        << "  \"workers\": " << service.workers() << ",\n"
        << "  \"timings_ms\": {\n"
        << "    \"serial\": " << serial_ms << ",\n"
        << "    \"coalesced\": " << coalesced_ms << "\n"
        << "  },\n"
        << "  \"speedup_coalesced_vs_serial\": " << speedup << ",\n"
        << "  \"answer_mismatches\": " << mismatches << ",\n"
        << "  \"service_stats\": {\n"
        << "    \"requests\": " << stats.requests << ",\n"
        << "    \"coalesced\": " << stats.coalesced << ",\n"
        << "    \"executed\": " << stats.executed << ",\n"
        << "    \"planners_created\": " << stats.plannersCreated << ",\n"
        << "    \"planner_reuses\": " << stats.plannerReuses << ",\n"
        << "    \"plans_compiled\": " << stats.plansCompiled << ",\n"
        << "    \"plan_registry_hits\": " << stats.planRegistryHits
        << ",\n"
        << "    \"steps_simulated\": " << stats.stepsSimulated << ",\n"
        << "    \"p50_latency_ms\": " << stats.p50LatencyMs << ",\n"
        << "    \"p99_latency_ms\": " << stats.p99LatencyMs << "\n"
        << "  },\n"
        << "  \"eviction_pressure\": {\n"
        << "    \"trace_requests\": " << pressure.size() << ",\n"
        << "    \"distinct_requests\": " << kDistinctEviction << ",\n"
        << "    \"max_answers\": " << kMaxAnswers << ",\n"
        << "    \"max_planners\": " << kMaxPlanners << ",\n"
        << "    \"timing_ms\": " << eviction_ms << ",\n"
        << "    \"answers_cached\": " << bounded_stats.answersCached
        << ",\n"
        << "    \"answers_cached_peak\": "
        << bounded_stats.answersCachedPeak << ",\n"
        << "    \"answers_evicted\": " << bounded_stats.answersEvicted
        << ",\n"
        << "    \"planners_cached\": " << bounded_stats.plannersCached
        << ",\n"
        << "    \"planners_evicted\": "
        << bounded_stats.plannersEvicted << ",\n"
        << "    \"answer_mismatches\": " << eviction_mismatches << "\n"
        << "  }\n"
        << "}\n";
    bench::note("wrote " + out_path);

    if (mismatches > 0) {
        std::cerr << "bench_serve_load: coalesced answers diverge from "
                     "serial\n";
        return 1;
    }
    if (speedup < 1.0) {
        std::cerr << "bench_serve_load: coalesced service slower than "
                     "serial baseline ("
                  << speedup << "x)\n";
        return 1;
    }
    if (!capacity_respected) {
        std::cerr << "bench_serve_load: bounded service exceeded its "
                     "configured cache capacity\n";
        return 1;
    }
    if (!eviction_exercised) {
        std::cerr << "bench_serve_load: eviction trace produced no "
                     "evictions (bound not applied?)\n";
        return 1;
    }
    if (eviction_mismatches > 0) {
        std::cerr << "bench_serve_load: bounded answers diverge from "
                     "the unbounded service\n";
        return 1;
    }
    return 0;
}
