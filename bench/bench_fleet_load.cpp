/**
 * @file
 * Sharded-fleet soak bench: router + 2 shard workers vs. one service.
 *
 * 32 client connections pipeline a duplicate-heavy trace against a
 * `RouterServer` fronting two in-process `NetServer` shards, then the
 * bench verifies the ISSUE-6 acceptance bar:
 *
 *  - every wire response through the router is **byte-identical** to
 *    what one in-process `PlanService` answers for the same request
 *    (sharding adds topology, never semantics);
 *  - the *fleet's* `stepsSimulated` (summed over shards) equals the
 *    number of distinct step configurations in the trace — consistent
 *    hashing pins duplicates to one shard, so the thundering-herd
 *    guarantee survives sharding;
 *  - a fresh shard warm-started from the busy shards' `PlanRegistry`
 *    snapshots replays the whole template set while compiling **zero**
 *    plans;
 *  - and it emits BENCH_fleet.json for the CI trend line and the
 *    bench_check.py exact-counter gate.
 *
 * Exits non-zero on any divergence, so ci.sh gets the gate for free.
 *
 * Usage: bench_fleet_load [output.json]  (default: BENCH_fleet.json)
 */

#include <fstream>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "gpusim/registry_snapshot.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "router/router.hpp"
#include "serve/plan_service.hpp"

using namespace ftsim;

int
main(int argc, char** argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_fleet.json";
    Logger::instance().setLevel(LogLevel::Error);

    bench::banner("bench_fleet_load",
                  "consistent-hash router + 2 shards vs. one "
                  "in-process PlanService");

    // ---- Templates: 3 scenarios x 3 GPUs, throughput + max_batch. ---
    // 9 distinct step configurations; every throughput identity lands
    // on exactly one shard, so the fleet total is 9 however the ring
    // splits them (max_batch is memory arithmetic, zero steps).
    const std::vector<Scenario> scenarios = {
        Scenario::gsMath(),
        Scenario::gsMath().withNumQueries(50000.0).withEpochs(3.0),
        Scenario::commonsense15k(),
    };
    const std::vector<std::string> gpu_names = {"A40", "A100-80GB",
                                                "H100"};
    std::vector<PlanRequest> templates;
    for (const Scenario& scenario : scenarios) {
        for (const std::string& gpu : gpu_names) {
            PlanRequest throughput;
            throughput.query = QueryKind::Throughput;
            throughput.gpu = gpu;
            throughput.scenario = scenario;
            templates.push_back(throughput);
        }
        PlanRequest max_batch;
        max_batch.query = QueryKind::MaxBatch;
        max_batch.gpu = "A40";
        max_batch.scenario = scenario;
        templates.push_back(max_batch);
    }
    const std::size_t kDistinctStepConfigs =
        scenarios.size() * gpu_names.size();

    // ---- The trace: 32 connections x 8 pipelined probes. ------------
    constexpr std::size_t kConnections = 32;
    constexpr std::size_t kPerConnection = 8;
    std::mt19937 rng(7);  // Deterministic trace across runs.
    std::vector<std::vector<std::size_t>> picks(kConnections);
    for (std::size_t c = 0; c < kConnections; ++c)
        for (std::size_t q = 0; q < kPerConnection; ++q)
            picks[c].push_back(std::uniform_int_distribution<
                               std::size_t>(0, templates.size() - 1)(
                rng));

    // ---- Expected answers: one in-process service, no fleet. --------
    PlanService reference;
    std::vector<PlanResponse> template_answers;
    for (const PlanRequest& request : templates)
        template_answers.push_back(reference.ask(request));
    if (reference.stats().stepsSimulated != kDistinctStepConfigs)
        fatal(strCat("bench_fleet_load: reference simulated ",
                     reference.stats().stepsSimulated,
                     " steps, expected ", kDistinctStepConfigs));
    auto expectedLine = [&](std::size_t template_index,
                            const std::string& id) {
        PlanResponse response = template_answers[template_index];
        response.id = id;
        return writePlanResponse(response);
    };

    // ---- The fleet under test: 2 shards behind a router. ------------
    // Fixed ring names so the shard split does not depend on the
    // kernel's ephemeral port picks.
    NetServer shard0;
    NetServer shard1;
    for (NetServer* shard : {&shard0, &shard1}) {
        Result<bool> up = shard->start();
        if (!up)
            fatal("bench_fleet_load: " + up.error().message);
    }
    RouterConfig router_config;
    ShardEndpoint end0;
    end0.port = shard0.port();
    end0.name = "shard-0";
    ShardEndpoint end1;
    end1.port = shard1.port();
    end1.name = "shard-1";
    router_config.shards = {end0, end1};
    RouterServer router(router_config);
    Result<bool> routed = router.start();
    if (!routed)
        fatal("bench_fleet_load: " + routed.error().message);
    const std::uint16_t port = router.port();

    bench::section("Trace");
    std::cout << kConnections << " connections x " << kPerConnection
              << " pipelined requests through the router ("
              << templates.size() << " templates, "
              << kDistinctStepConfigs << " distinct step configs, 2 "
              << "shards)\n";

    std::vector<std::size_t> mismatches_per_conn(kConnections, 0);
    // char, not bool: vector<bool> is bit-packed, so concurrent
    // writes to distinct slots would race on shared bytes.
    std::vector<char> conn_failed(kConnections, 0);
    const double start_ms = bench::nowMs();
    {
        std::vector<std::thread> clients;
        for (std::size_t c = 0; c < kConnections; ++c)
            clients.emplace_back([&, c] {
                Result<NetClient> connected =
                    NetClient::connectTo("127.0.0.1", port);
                if (!connected) {
                    conn_failed[c] = 1;
                    return;
                }
                NetClient client = std::move(connected.value());
                for (std::size_t q = 0; q < kPerConnection; ++q) {
                    PlanRequest request = templates[picks[c][q]];
                    request.id = strCat("c", c, "-q", q);
                    if (!client.sendLine(writePlanRequest(request))) {
                        conn_failed[c] = 1;
                        return;
                    }
                }
                for (std::size_t q = 0; q < kPerConnection; ++q) {
                    Result<std::string> line = client.recvLine();
                    if (!line) {
                        conn_failed[c] = 1;
                        return;
                    }
                    const std::string expected = expectedLine(
                        picks[c][q], strCat("c", c, "-q", q));
                    if (line.value() != expected)
                        ++mismatches_per_conn[c];
                }
            });
        for (std::thread& thread : clients)
            thread.join();
    }
    const double wall_ms = bench::nowMs() - start_ms;

    std::size_t mismatches = 0;
    std::size_t failed_connections = 0;
    for (std::size_t c = 0; c < kConnections; ++c) {
        mismatches += mismatches_per_conn[c];
        failed_connections += conn_failed[c] ? 1 : 0;
    }

    const ServiceStats stats0 = shard0.service().stats();
    const ServiceStats stats1 = shard1.service().stats();
    const std::uint64_t fleet_steps =
        stats0.stepsSimulated + stats1.stepsSimulated;
    const std::uint64_t fleet_executed =
        stats0.executed + stats1.executed;
    const std::uint64_t fleet_coalesced =
        stats0.coalesced + stats1.coalesced;
    const RouterStats router_stats = router.stats();

    // ---- Warm start: a fresh shard from the busy shards' plans. -----
    // Union of both snapshots covers every model shape in the trace,
    // so the replay below must compile nothing.
    bench::section("Warm start");
    const std::string snap0 =
        saveRegistrySnapshot(*shard0.service().planRegistry());
    const std::string snap1 =
        saveRegistrySnapshot(*shard1.service().planRegistry());
    NetServer fresh;
    std::uint64_t warm_loaded = 0;
    for (const std::string* snap : {&snap0, &snap1}) {
        Result<SnapshotLoadInfo> info = loadRegistrySnapshot(
            *fresh.service().planRegistry(), *snap);
        if (!info)
            fatal("bench_fleet_load: snapshot load failed: " +
                  info.error().message);
        warm_loaded += info.value().plansLoaded;
    }
    Result<bool> fresh_up = fresh.start();
    if (!fresh_up)
        fatal("bench_fleet_load: " + fresh_up.error().message);
    const double warm_start_ms = bench::nowMs();
    std::size_t warm_mismatches = 0;
    {
        Result<NetClient> connected =
            NetClient::connectTo("127.0.0.1", fresh.port());
        if (!connected)
            fatal("bench_fleet_load: " + connected.error().message);
        NetClient client = std::move(connected.value());
        for (std::size_t t = 0; t < templates.size(); ++t) {
            PlanRequest request = templates[t];
            request.id = strCat("w", t);
            Result<std::string> line =
                client.ask(writePlanRequest(request));
            if (!line)
                fatal("bench_fleet_load: " + line.error().message);
            if (line.value() != expectedLine(t, strCat("w", t)))
                ++warm_mismatches;
        }
    }
    const double warm_ms = bench::nowMs() - warm_start_ms;
    const std::uint64_t warm_compiled =
        fresh.service().planRegistry()->plansCompiled();
    std::cout << "snapshots: " << snap0.size() + snap1.size()
              << " bytes, " << warm_loaded << " plans loaded; replay "
              << "of " << templates.size() << " templates compiled "
              << warm_compiled << " plans in " << warm_ms << " ms\n";

    shard0.stop();
    shard1.stop();
    fresh.stop();
    router.stop();

    const std::size_t total_requests = kConnections * kPerConnection;
    const double requests_per_sec =
        wall_ms > 0.0 ? total_requests / (wall_ms / 1000.0) : 0.0;

    bench::section("Results");
    std::cout << total_requests << " requests over " << wall_ms
              << " ms = " << requests_per_sec << " req/s through the "
              << "router\n"
              << "fleet steps_simulated=" << fleet_steps
              << " (distinct step configs " << kDistinctStepConfigs
              << "), executed=" << fleet_executed
              << ", coalesced=" << fleet_coalesced << '\n'
              << "router: forwarded=" << router_stats.forwarded
              << " responses=" << router_stats.responses
              << " shard failures=" << router_stats.shardFailures
              << "; per-shard routed:";
    for (const ShardHealth& shard : router_stats.shards)
        std::cout << ' ' << shard.name << '=' << shard.routed;
    std::cout << '\n'
              << "byte mismatches vs in-process: " << mismatches
              << " (warm replay: " << warm_mismatches
              << "), failed connections: " << failed_connections
              << '\n';
    bench::note("gate: fleet answers byte-identical, fleet steps == "
                "distinct configs, warm-started shard compiles 0 "
                "plans");

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << '\n';
        return 1;
    }
    out << "{\n"
        << "  \"bench\": \"bench_fleet_load\",\n"
        << "  \"shards\": 2,\n"
        << "  \"connections\": " << kConnections << ",\n"
        << "  \"requests\": " << total_requests << ",\n"
        << "  \"distinct_step_configs\": " << kDistinctStepConfigs
        << ",\n"
        << "  \"wall_ms\": " << wall_ms << ",\n"
        << "  \"requests_per_sec\": " << requests_per_sec << ",\n"
        << "  \"byte_mismatches\": " << mismatches << ",\n"
        << "  \"failed_connections\": " << failed_connections << ",\n"
        << "  \"fleet_stats\": {\n"
        << "    \"steps_simulated\": " << fleet_steps << ",\n"
        << "    \"executed\": " << fleet_executed << ",\n"
        << "    \"coalesced\": " << fleet_coalesced << "\n"
        << "  },\n"
        << "  \"router_stats\": {\n"
        << "    \"forwarded\": " << router_stats.forwarded << ",\n"
        << "    \"responses\": " << router_stats.responses << ",\n"
        << "    \"shard_failures\": " << router_stats.shardFailures
        << ",\n"
        << "    \"protocol_errors\": " << router_stats.protocolErrors
        << "\n"
        << "  },\n"
        << "  \"warm_start\": {\n"
        << "    \"plans_loaded\": " << warm_loaded << ",\n"
        << "    \"plans_compiled\": " << warm_compiled << ",\n"
        << "    \"byte_mismatches\": " << warm_mismatches << ",\n"
        << "    \"snapshot_bytes\": " << snap0.size() + snap1.size()
        << ",\n"
        << "    \"replay_ms\": " << warm_ms << "\n"
        << "  }\n"
        << "}\n";
    bench::note("wrote " + out_path);

    if (failed_connections > 0) {
        std::cerr << "bench_fleet_load: " << failed_connections
                  << " connections failed\n";
        return 1;
    }
    if (mismatches > 0 || warm_mismatches > 0) {
        std::cerr << "bench_fleet_load: fleet answers diverge from "
                     "the in-process PlanService\n";
        return 1;
    }
    if (fleet_steps != kDistinctStepConfigs) {
        std::cerr << "bench_fleet_load: fleet simulated "
                  << fleet_steps << " steps, expected "
                  << kDistinctStepConfigs
                  << " (sharded thundering-herd guarantee broken)\n";
        return 1;
    }
    if (warm_compiled != 0) {
        std::cerr << "bench_fleet_load: warm-started shard compiled "
                  << warm_compiled << " plans, expected 0\n";
        return 1;
    }
    if (router_stats.shardFailures != 0) {
        std::cerr << "bench_fleet_load: " << router_stats.shardFailures
                  << " unexpected shard failures\n";
        return 1;
    }
    return 0;
}
