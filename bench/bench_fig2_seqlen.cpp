/**
 * @file
 * Reproduces Fig. 2: sequence-length distributions of the CS and MATH
 * fine-tuning datasets (histograms with medians 79 and 174).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "data/dataset.hpp"

using namespace ftsim;

int
main()
{
    bench::banner("Fig. 2", "Sequence length distribution");

    for (const DatasetSpec& spec :
         {DatasetSpec::commonsense15k(), DatasetSpec::math14k()}) {
        Dataset ds = Dataset::generate(spec);
        auto lens = ds.seqLens();

        bench::section(ds.name());
        Histogram hist(0.0, 400.0, 20);
        hist.addAll(lens);
        std::cout << hist.render(48);
        std::cout << "median = " << median(lens)
                  << "  p90 = " << percentile(lens, 90.0)
                  << "  max = " << percentile(lens, 100.0) << '\n';
    }

    bench::note("paper Fig. 2: right-skewed distributions, median 79 "
                "(CS) and 174 (MATH).");
    return 0;
}
