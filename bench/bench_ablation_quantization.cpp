/**
 * @file
 * Ablation: 4-bit QLoRA vs. hypothetical fp16 LoRA for Mixtral.
 *
 * The paper highlights the quantization trade-off (§IV-B2): 4-bit
 * storage shrinks the model 4x — which is what lets 47B parameters fit
 * on one 48 GB GPU at all — at the cost of de-quantization compute on
 * every matmul. This ablation shows both sides: memory feasibility per
 * GPU, and the share of MoE time spent in dequant kernels.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gpusim/finetune_sim.hpp"
#include "gpusim/memory_model.hpp"

using namespace ftsim;

int
main()
{
    bench::banner("Ablation", "4-bit QLoRA vs. fp16 LoRA (Mixtral)");

    ModelSpec four_bit = ModelSpec::mixtral8x7b();
    ModelSpec fp16 = ModelSpec::mixtral8x7b();
    fp16.name = "Mixtral-8x7B-fp16";
    fp16.bytesPerParam = 2.0;  // No quantization.

    bench::section("Does it fit? (sparse, seq len 148)");
    Table fits({"GPU", "4-bit weights", "4-bit max bsz", "fp16 weights",
                "fp16 max bsz"});
    for (const GpuSpec& gpu : GpuSpec::paperGpus()) {
        const int b4 = MemoryModel::maxBatchSize(four_bit, gpu, 148, true);
        const int b16 = MemoryModel::maxBatchSize(fp16, gpu, 148, true);
        fits.addRow({gpu.name,
                     Table::fmt(four_bit.weightMemoryBytes() / 1e9, 1) +
                         " GB",
                     b4 >= 1 ? Table::fmt(static_cast<long long>(b4))
                             : "does not fit",
                     Table::fmt(fp16.weightMemoryBytes() / 1e9, 1) + " GB",
                     b16 >= 1 ? Table::fmt(static_cast<long long>(b16))
                              : "does not fit"});
    }
    std::cout << fits.render();

    bench::section("De-quantization overhead (A40, sparse)");
    FineTuneSim sim(four_bit, GpuSpec::a40());
    Table overhead({"bsz", "MoE time (s)", "dequant time (s)", "share"});
    for (std::size_t batch : {1u, 4u, 8u}) {
        RunConfig config;
        config.batchSize = batch;
        config.seqLen = 128;
        config.sparse = true;
        StepProfile p = sim.profileStep(config);
        double moe_total = 0.0;
        double dequant = 0.0;
        for (const KernelAggregate& k : p.moeKernels) {
            moe_total += k.seconds;
            if (k.name.find("dequant") != std::string::npos)
                dequant += k.seconds;
        }
        overhead.addRow({Table::fmt(static_cast<long long>(batch)),
                         Table::fmt(moe_total, 3),
                         Table::fmt(dequant, 3),
                         Table::fmt(100.0 * dequant / moe_total, 1) +
                             " %"});
    }
    std::cout << overhead.render();

    bench::note("fp16 Mixtral (93 GB of weights) fits on no single GPU "
                "in the study — quantization is what enables the whole "
                "single-GPU setting; its price is the dequant share "
                "above, largest at small batch (paper §IV-B2).");
    return 0;
}
