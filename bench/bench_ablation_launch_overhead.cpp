/**
 * @file
 * Ablation: framework (host) dispatch overhead per kernel launch.
 *
 * MoE fine-tuning launches tens of thousands of small kernels per step
 * (one group per expert per layer per pass). This sweep shows how the
 * per-launch host overhead — eager-framework dispatch — moves end-to-end
 * throughput, i.e. how launch-bound the small-batch regime is and what a
 * fused/compiled MoE kernel stack (e.g. the paper's cited Tutel-style
 * optimizations) could recover.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gpusim/finetune_sim.hpp"

using namespace ftsim;

int
main()
{
    bench::banner("Ablation",
                  "Per-kernel host dispatch overhead (Mixtral, A40, "
                  "sparse, seq 128)");

    Table table({"host overhead (us)", "q/s @ bsz1", "q/s @ bsz8",
                 "launches/step", "launch share @ bsz1"});
    for (double overhead_us : {0.0, 10.0, 30.0, 100.0, 300.0}) {
        SimCalibration calib;
        calib.hostOverheadUs = overhead_us;
        FineTuneSim sim(ModelSpec::mixtral8x7b(), GpuSpec::a40(), calib);

        RunConfig config;
        config.batchSize = 1;
        config.seqLen = 128;
        config.sparse = true;
        StepProfile p1 = sim.profileStep(config);
        const double launch_seconds =
            p1.kernelLaunches *
            (overhead_us + GpuSpec::a40().launchUs) * 1e-6;

        table.addRow({
            Table::fmt(overhead_us, 0),
            Table::fmt(sim.throughput(1, 128, true), 2),
            Table::fmt(sim.throughput(8, 128, true), 2),
            Table::fmt(static_cast<long long>(p1.kernelLaunches)),
            Table::fmt(100.0 * launch_seconds / p1.stepSeconds, 1) + " %",
        });
    }
    std::cout << table.render();

    bench::note("at realistic eager-PyTorch overheads (~30 us) a large "
                "fraction of the small-batch step is pure dispatch — "
                "one concrete reason the paper's Takeaway 3 targets the "
                "MoE layer (its per-expert kernel fan-out) for "
                "optimization.");
    return 0;
}
