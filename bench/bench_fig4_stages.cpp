/**
 * @file
 * Reproduces Fig. 4: execution-time breakdown of one fine-tuning step
 * into forward / backward / optimizer stages, at batch size 1 and at the
 * largest batch that fits (plus the dense batch sizes, as in the paper),
 * sequence length 128 (the paper's profiling length).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gpusim/finetune_sim.hpp"
#include "gpusim/memory_model.hpp"

using namespace ftsim;

namespace {

void
report(const ModelSpec& spec)
{
    const GpuSpec a40 = GpuSpec::a40();
    FineTuneSim sim(spec, a40);

    const int max_dense = MemoryModel::maxBatchSize(spec, a40, 128, false);
    const int max_sparse = MemoryModel::maxBatchSize(spec, a40, 128, true);

    struct Point {
        bool sparse;
        int batch;
    };
    std::vector<Point> points = {{false, 1},
                                 {false, max_dense},
                                 {true, 1},
                                 {true, max_dense},
                                 {true, max_sparse}};

    bench::section(spec.name + " (seq len 128)");
    Table table({"Config", "Forward (s)", "Backward (s)", "Optimizer (s)",
                 "Total (s)", "Opt share"});
    for (const Point& pt : points) {
        if (pt.batch < 1)
            continue;
        RunConfig config;
        config.batchSize = static_cast<std::size_t>(pt.batch);
        config.seqLen = 128;
        config.sparse = pt.sparse;
        StepProfile p = sim.profileStep(config);
        const double stage_total = p.forwardSeconds + p.backwardSeconds +
                                   p.optimizerSeconds;
        table.addRow({
            std::string(pt.sparse ? "Sparse" : "Dense") + "(bsz=" +
                std::to_string(pt.batch) + ")",
            Table::fmt(p.forwardSeconds, 3),
            Table::fmt(p.backwardSeconds, 3),
            Table::fmt(p.optimizerSeconds, 3),
            Table::fmt(stage_total, 3),
            Table::fmt(100.0 * p.optimizerSeconds / stage_total, 1) + " %",
        });
    }
    std::cout << table.render();
}

}  // namespace

int
main()
{
    bench::banner("Fig. 4", "Execution time breakdown (stages)");
    report(ModelSpec::mixtral8x7b());
    report(ModelSpec::blackMamba2p8b());
    bench::note("paper Fig. 4: backward > forward; optimizer is up to "
                "~53% for BlackMamba full fine-tuning at bsz 1 and "
                "negligible for Mixtral LoRA.");
    return 0;
}
