/**
 * @file
 * Reproduces Fig. 3: testing accuracy vs. fine-tuning epoch for the
 * Mixtral-like and BlackMamba-like models, dense vs. sparse routing, on
 * the commonsense (HE-like) and math (GS-like) evaluation tasks.
 *
 * Miniature models train for real on the CPU substrate. The Mixtral runs
 * use the paper's full flow: dense base pre-trained on a generic corpus,
 * quantized into QLoRA, then fine-tuned; the BlackMamba runs use full
 * fine-tuning of a pre-trained dense base. Expected shapes (paper):
 * accuracy climbs within ~10 epochs, sparse tracks dense, commonsense is
 * easier than math, and the larger model reaches higher accuracy.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "train/pretrain.hpp"
#include "train/trainer.hpp"

using namespace ftsim;

namespace {

constexpr int kEpochs = 10;

struct Series {
    std::string label;
    double pretrained = 0.0;
    std::vector<double> accuracy;  // Per epoch.
};

MiniModelConfig
mixtralConfig()
{
    MiniModelConfig cfg = MiniModelConfig::miniMixtral();
    cfg.dModel = 32;
    cfg.nLayers = 2;
    cfg.nHeads = 4;
    cfg.dFf = 64;
    cfg.nExperts = 8;
    cfg.loraRank = 4;
    return cfg;
}

MiniModelConfig
mambaConfig()
{
    // The paper's BlackMamba is ~17x smaller than Mixtral; keep the
    // miniature correspondingly narrower (which is also why it will
    // struggle more on the math task, as in the paper).
    MiniModelConfig cfg = MiniModelConfig::miniBlackMamba();
    cfg.dModel = 24;
    cfg.nLayers = 2;
    cfg.dFf = 48;
    cfg.dInner = 48;
    cfg.nExperts = 8;
    return cfg;
}

Dataset
trainSet(TaskKind kind)
{
    DatasetSpec spec = kind == TaskKind::Commonsense
                           ? DatasetSpec::commonsense15k()
                           : DatasetSpec::math14k();
    spec.numQueries = 160;
    spec.medianSeqLen = 12.0;
    spec.lengthSigma = 0.25;
    return Dataset::generate(spec);
}

Dataset
evalSet(TaskKind kind)
{
    DatasetSpec spec = kind == TaskKind::Commonsense
                           ? DatasetSpec::hellaswag()
                           : DatasetSpec::gsm8k();
    spec.numQueries = 64;
    spec.medianSeqLen = 14.0;
    spec.lengthSigma = 0.25;
    return Dataset::generate(spec);
}

Series
run(bool mixtral, bool sparse, TaskKind kind)
{
    Series series;
    series.label = std::string(mixtral ? "Mixtral" : "BlackMamba") +
                   (sparse ? "-sparse-" : "-dense-") +
                   (kind == TaskKind::Commonsense ? "HE" : "GS");

    MiniModelConfig cfg = mixtral ? mixtralConfig() : mambaConfig();
    cfg.topK = sparse ? 2 : cfg.nExperts;

    // Pre-training corpus: generic text plus *variant-1* versions of
    // both tasks — the structure of the tasks without the canonical
    // mappings (a foundation model's related-but-different data).
    DatasetSpec cs_v1 = DatasetSpec::commonsense15k();
    cs_v1.numQueries = 128;
    cs_v1.medianSeqLen = 12.0;
    cs_v1.lengthSigma = 0.25;
    cs_v1.mappingVariant = 1;
    DatasetSpec math_v1 = DatasetSpec::math14k();
    math_v1.numQueries = 128;
    math_v1.medianSeqLen = 12.0;
    math_v1.lengthSigma = 0.25;
    math_v1.mappingVariant = 1;
    Dataset corpus = Dataset::merged(
        {Dataset::generate(DatasetSpec::genericCorpus(96, 14.0)),
         Dataset::generate(cs_v1), Dataset::generate(math_v1)},
        "pretraining mixture");
    Dataset train = trainSet(kind);
    Dataset eval = evalSet(kind);

    std::unique_ptr<MoeLlm> model;
    if (mixtral) {
        model = makePretrainedQlora(cfg, corpus, 160, 16, 3e-3,
                                    /*exclude_answers=*/false);
    } else {
        cfg.useLora = false;
        model = std::make_unique<MoeLlm>(cfg);
        pretrainLm(*model, corpus, 160, 16, 3e-3, 7,
                   /*exclude_answers=*/false);
    }

    series.pretrained =
        evaluateExactMatch(*model, eval, 16, 64).exactMatch;

    AdamW opt(model->trainableParameters(), mixtral ? 8e-3 : 4e-3);
    TrainerOptions options;
    options.batchSize = 16;
    Trainer trainer(*model, opt, options);
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
        trainer.trainEpoch(train);
        series.accuracy.push_back(
            evaluateExactMatch(*model, eval, 16, 64).exactMatch);
    }
    return series;
}

}  // namespace

int
main()
{
    bench::banner("Fig. 3",
                  "Testing accuracy of Mixtral and BlackMamba "
                  "(dense vs. sparse fine-tuning)");

    std::vector<Series> all;
    for (bool mixtral : {true, false})
        for (TaskKind kind : {TaskKind::Commonsense, TaskKind::Math})
            for (bool sparse : {false, true})
                all.push_back(run(mixtral, sparse, kind));

    std::vector<std::string> headers = {"Series", "pretrained"};
    for (int e = 1; e <= kEpochs; ++e)
        headers.push_back("ep" + std::to_string(e));
    Table table(headers);
    for (const Series& s : all) {
        std::vector<std::string> row = {s.label,
                                        Table::fmt(s.pretrained, 2)};
        for (double a : s.accuracy)
            row.push_back(Table::fmt(a, 2));
        table.addRow(row);
    }
    std::cout << table.render();

    bench::note("paper Fig. 3 shapes: pre-trained accuracy is low; "
                "fine-tuning converges within ~10 epochs; sparse tracks "
                "dense; math (GS) is harder than commonsense (HE); the "
                "smaller BlackMamba lags Mixtral, especially on math.");
    return 0;
}
