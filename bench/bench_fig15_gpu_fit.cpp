/**
 * @file
 * Reproduces Fig. 15: Eq. (2) validation on the other GPUs — Mixtral on
 * the CS dataset for A100-40GB, A100-80GB, and H100 (paper RMSE 0.03 /
 * 0.09 / 0.55).
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/planner.hpp"

using namespace ftsim;

int
main()
{
    bench::banner("Fig. 15",
                  "Throughput estimation across GPUs (Mixtral-CS)");

    struct Combo {
        GpuSpec gpu;
        double paper_rmse;
    };
    const Combo combos[] = {
        {GpuSpec::a100_40(), 0.03},
        {GpuSpec::a100_80(), 0.09},
        {GpuSpec::h100_80(), 0.55},
    };

    // One scenario, one planner, three GPUs: the facade shards its
    // cache per device, so each GPU's sweep is simulated exactly once.
    Planner planner(Scenario::commonsense15k());

    Table table({"GPU", "C2", "C3", "C4", "RMSE", "paper RMSE",
                 "max q/s"});
    for (const Combo& combo : combos) {
        ThroughputFit fit =
            planner.fitThroughput(combo.gpu).valueOrThrow();
        double max_qps = 0.0;
        for (const auto& obs : fit.observations)
            max_qps = std::max(max_qps, obs.qps);
        table.addRow({combo.gpu.name, Table::fmt(fit.model.c2(), 3),
                      Table::fmt(fit.model.c3(), 3),
                      Table::fmt(fit.model.c4(), 3),
                      Table::fmt(fit.rmse, 3),
                      Table::fmt(combo.paper_rmse, 2),
                      Table::fmt(max_qps, 2)});
    }
    std::cout << table.render();

    bench::note("paper Fig. 15: the same Eq. 2 family fits every GPU "
                "with RMSE at or below ~0.6 — the coefficients absorb "
                "the device differences (§V-D generalization claim).");
    return 0;
}
