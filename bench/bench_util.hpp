#ifndef FTSIM_BENCH_BENCH_UTIL_HPP
#define FTSIM_BENCH_BENCH_UTIL_HPP

/**
 * @file
 * Shared output helpers for the paper-reproduction benchmark binaries.
 * Every bench regenerates one table or figure of the paper and prints a
 * banner naming it, the series/rows in a diff-friendly layout, and the
 * paper's reference values where applicable.
 */

#include <chrono>
#include <iostream>
#include <string>

namespace ftsim::bench {

/** Monotonic wall clock in milliseconds — the perf harnesses' shared
 *  timing primitive. */
inline double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Prints the standard banner for one reproduced artifact. */
inline void
banner(const std::string& artifact, const std::string& description)
{
    std::cout << '\n'
              << std::string(72, '=') << '\n'
              << artifact << " — " << description << '\n'
              << std::string(72, '=') << '\n';
}

/** Prints a sub-section heading. */
inline void
section(const std::string& title)
{
    std::cout << '\n' << title << '\n' << std::string(title.size(), '-')
              << '\n';
}

/** Prints a closing note (e.g. paper-vs-measured commentary). */
inline void
note(const std::string& text)
{
    std::cout << "note: " << text << '\n';
}

}  // namespace ftsim::bench

#endif  // FTSIM_BENCH_BENCH_UTIL_HPP
