/**
 * @file
 * Concurrent-socket soak bench for the network front end.
 *
 * 64 client connections pipeline a duplicate-heavy trace (the fleet-
 * of-tenants shape from bench_serve_load, now with a TCP hop) against
 * an in-process `NetServer`. The bench then verifies the ISSUE-5
 * acceptance bar:
 *
 *  - every wire response is **byte-identical** to what the in-process
 *    `PlanService` answers for the same request (the socket layer adds
 *    transport, never semantics);
 *  - the fleet's `stepsSimulated` equals the number of distinct step
 *    configurations in the trace — the thundering-herd guarantee
 *    survives N connections racing through sockets;
 *  - and it emits BENCH_net.json (requests/s, latency quantiles,
 *    coalescing counters) for the CI trend line.
 *
 * Exits non-zero on any divergence, so ci.sh gets the gate for free.
 *
 * Usage: bench_net_load [output.json]   (default: BENCH_net.json)
 */

#include <fstream>
#include <iostream>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/plan_service.hpp"

using namespace ftsim;

int
main(int argc, char** argv)
{
    const std::string out_path = argc > 1 ? argv[1] : "BENCH_net.json";
    Logger::instance().setLevel(LogLevel::Error);

    bench::banner("bench_net_load",
                  "64 concurrent sockets vs. the in-process "
                  "PlanService");

    // ---- Templates: 3 scenarios x 3 GPUs, throughput + max_batch. ---
    // 9 distinct step configurations (throughput probes simulate one
    // step each; max_batch is memory arithmetic, zero steps).
    const std::vector<Scenario> scenarios = {
        Scenario::gsMath(),
        Scenario::gsMath().withNumQueries(50000.0).withEpochs(3.0),
        Scenario::commonsense15k(),
    };
    const std::vector<std::string> gpu_names = {"A40", "A100-80GB",
                                                "H100"};
    std::vector<PlanRequest> templates;
    for (const Scenario& scenario : scenarios) {
        for (const std::string& gpu : gpu_names) {
            PlanRequest throughput;
            throughput.query = QueryKind::Throughput;
            throughput.gpu = gpu;
            throughput.scenario = scenario;
            templates.push_back(throughput);
        }
        PlanRequest max_batch;
        max_batch.query = QueryKind::MaxBatch;
        max_batch.gpu = "A40";
        max_batch.scenario = scenario;
        templates.push_back(max_batch);
    }
    const std::size_t kDistinctStepConfigs =
        scenarios.size() * gpu_names.size();

    // ---- The trace: 64 connections x 8 pipelined probes. ------------
    constexpr std::size_t kConnections = 64;
    constexpr std::size_t kPerConnection = 8;
    std::mt19937 rng(7);  // Deterministic trace across runs.
    std::vector<std::vector<std::size_t>> picks(kConnections);
    for (std::size_t c = 0; c < kConnections; ++c)
        for (std::size_t q = 0; q < kPerConnection; ++q)
            picks[c].push_back(std::uniform_int_distribution<
                               std::size_t>(0, templates.size() - 1)(
                rng));

    // ---- Expected answers: the in-process service, no sockets. ------
    PlanService reference;
    std::vector<PlanResponse> template_answers;
    for (const PlanRequest& request : templates)
        template_answers.push_back(reference.ask(request));
    const std::uint64_t reference_steps =
        reference.stats().stepsSimulated;
    if (reference_steps != kDistinctStepConfigs)
        fatal(strCat("bench_net_load: reference service simulated ",
                     reference_steps, " steps, expected ",
                     kDistinctStepConfigs));

    auto expectedLine = [&](std::size_t template_index,
                            const std::string& id) {
        PlanResponse response = template_answers[template_index];
        response.id = id;
        return writePlanResponse(response);
    };

    // ---- The server under test. -------------------------------------
    NetServer server;
    Result<bool> started = server.start();
    if (!started)
        fatal("bench_net_load: " + started.error().message);
    const std::uint16_t port = server.port();

    bench::section("Trace");
    std::cout << kConnections << " connections x " << kPerConnection
              << " pipelined requests (" << templates.size()
              << " templates, " << kDistinctStepConfigs
              << " distinct step configs)\n";

    std::vector<std::size_t> mismatches_per_conn(kConnections, 0);
    // char, not bool: vector<bool> is bit-packed, so concurrent writes
    // to distinct slots would race on shared bytes.
    std::vector<char> conn_failed(kConnections, 0);
    const double start_ms = bench::nowMs();
    {
        std::vector<std::thread> clients;
        for (std::size_t c = 0; c < kConnections; ++c)
            clients.emplace_back([&, c] {
                Result<NetClient> connected =
                    NetClient::connectTo("127.0.0.1", port);
                if (!connected) {
                    conn_failed[c] = 1;
                    return;
                }
                NetClient client = std::move(connected.value());
                for (std::size_t q = 0; q < kPerConnection; ++q) {
                    PlanRequest request = templates[picks[c][q]];
                    request.id = strCat("c", c, "-q", q);
                    if (!client.sendLine(writePlanRequest(request))) {
                        conn_failed[c] = 1;
                        return;
                    }
                }
                for (std::size_t q = 0; q < kPerConnection; ++q) {
                    Result<std::string> line = client.recvLine();
                    if (!line) {
                        conn_failed[c] = 1;
                        return;
                    }
                    const std::string expected = expectedLine(
                        picks[c][q], strCat("c", c, "-q", q));
                    if (line.value() != expected)
                        ++mismatches_per_conn[c];
                }
            });
        for (std::thread& thread : clients)
            thread.join();
    }
    const double wall_ms = bench::nowMs() - start_ms;

    std::size_t mismatches = 0;
    std::size_t failed_connections = 0;
    for (std::size_t c = 0; c < kConnections; ++c) {
        mismatches += mismatches_per_conn[c];
        failed_connections += conn_failed[c] ? 1 : 0;
    }

    const ServiceStats stats = server.service().stats();
    const NetServerStats net = server.stats();
    server.stop();

    const std::size_t total_requests = kConnections * kPerConnection;
    const double requests_per_sec =
        wall_ms > 0.0 ? total_requests / (wall_ms / 1000.0) : 0.0;

    bench::section("Results");
    std::cout << total_requests << " requests over " << wall_ms
              << " ms = " << requests_per_sec << " req/s\n"
              << "steps_simulated=" << stats.stepsSimulated
              << " (distinct step configs " << kDistinctStepConfigs
              << "), coalesced=" << stats.coalesced
              << ", executed=" << stats.executed << '\n'
              << "latency p50=" << stats.p50LatencyMs
              << "ms p99=" << stats.p99LatencyMs << "ms; "
              << net.connectionsAccepted << " connections accepted, "
              << net.protocolErrors << " protocol errors\n"
              << "byte mismatches vs in-process: " << mismatches
              << ", failed connections: " << failed_connections << '\n';
    bench::note("gate: answers byte-identical to PlanService and "
                "stepsSimulated == distinct configs");

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << '\n';
        return 1;
    }
    out << "{\n"
        << "  \"bench\": \"bench_net_load\",\n"
        << "  \"connections\": " << kConnections << ",\n"
        << "  \"requests\": " << total_requests << ",\n"
        << "  \"distinct_step_configs\": " << kDistinctStepConfigs
        << ",\n"
        << "  \"wall_ms\": " << wall_ms << ",\n"
        << "  \"requests_per_sec\": " << requests_per_sec << ",\n"
        << "  \"byte_mismatches\": " << mismatches << ",\n"
        << "  \"failed_connections\": " << failed_connections << ",\n"
        << "  \"service_stats\": {\n"
        << "    \"requests\": " << stats.requests << ",\n"
        << "    \"coalesced\": " << stats.coalesced << ",\n"
        << "    \"executed\": " << stats.executed << ",\n"
        << "    \"steps_simulated\": " << stats.stepsSimulated << ",\n"
        << "    \"p50_latency_ms\": " << stats.p50LatencyMs << ",\n"
        << "    \"p99_latency_ms\": " << stats.p99LatencyMs << "\n"
        << "  },\n"
        << "  \"net_stats\": {\n"
        << "    \"connections_accepted\": " << net.connectionsAccepted
        << ",\n"
        << "    \"responses\": " << net.responses << ",\n"
        << "    \"protocol_errors\": " << net.protocolErrors << "\n"
        << "  }\n"
        << "}\n";
    bench::note("wrote " + out_path);

    if (failed_connections > 0) {
        std::cerr << "bench_net_load: " << failed_connections
                  << " connections failed\n";
        return 1;
    }
    if (mismatches > 0) {
        std::cerr << "bench_net_load: socket answers diverge from the "
                     "in-process PlanService\n";
        return 1;
    }
    if (stats.stepsSimulated != kDistinctStepConfigs) {
        std::cerr << "bench_net_load: fleet simulated "
                  << stats.stepsSimulated << " steps, expected "
                  << kDistinctStepConfigs
                  << " (thundering-herd guarantee broken)\n";
        return 1;
    }
    return 0;
}
