/**
 * @file
 * Chaos soak bench: kill a shard mid-pipeline, heal it, lose nothing.
 *
 * A 3-shard fleet serves a duplicate-heavy template sweep while the
 * bench murders shard-0 at a deterministic moment (its link runs
 * through a `FaultProxy`: responses are stalled so the doomed requests
 * are *provably* in flight, then the link is cut and the worker
 * stopped) and later heals it into a fresh cold worker. The ISSUE-7
 * acceptance bar, verified phase by phase:
 *
 *  - zero wrong answers, ever: every wire response in every phase is
 *    byte-identical to one in-process `PlanService` — a kill fails
 *    over, it never corrupts;
 *  - zero `Unavailable`: the outstanding requests replay on survivors
 *    within the retry budget (`retried` == the doomed count, exactly —
 *    the mirrored ring makes the number deterministic);
 *  - the heal completes exactly once, and the rejoined worker is
 *    warm-started from the survivors' snapshots: it compiles **zero**
 *    plans for the fleet-seen template set;
 *  - and it emits BENCH_chaos.json for the bench_check.py
 *    exact-counter gate.
 *
 * Exits non-zero on any divergence, so ci.sh gets the gate for free.
 *
 * Usage: bench_chaos_load [output.json]  (default: BENCH_chaos.json)
 */

#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "net/client.hpp"
#include "net/fault_proxy.hpp"
#include "net/server.hpp"
#include "router/hash_ring.hpp"
#include "router/router.hpp"
#include "serve/plan_service.hpp"

using namespace ftsim;

namespace {

/** Polls @p predicate for up to @p budgetMs of real time. */
bool
eventually(double budgetMs, const std::function<bool()>& predicate)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(static_cast<int>(budgetMs));
    while (std::chrono::steady_clock::now() < deadline) {
        if (predicate())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return predicate();
}

}  // namespace

int
main(int argc, char** argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_chaos.json";
    Logger::instance().setLevel(LogLevel::Error);

    bench::banner("bench_chaos_load",
                  "3-shard fleet: deterministic kill mid-pipeline, "
                  "failover, warm-started heal");

    // ---- Templates: 3 scenarios x 3 GPUs, throughput + max_batch. ---
    // The same 12-template, 9-step-config set as bench_fleet_load.
    const std::vector<Scenario> scenarios = {
        Scenario::gsMath(),
        Scenario::gsMath().withNumQueries(50000.0).withEpochs(3.0),
        Scenario::commonsense15k(),
    };
    const std::vector<std::string> gpu_names = {"A40", "A100-80GB",
                                                "H100"};
    std::vector<PlanRequest> templates;
    for (const Scenario& scenario : scenarios) {
        for (const std::string& gpu : gpu_names) {
            PlanRequest throughput;
            throughput.query = QueryKind::Throughput;
            throughput.gpu = gpu;
            throughput.scenario = scenario;
            templates.push_back(throughput);
        }
        PlanRequest max_batch;
        max_batch.query = QueryKind::MaxBatch;
        max_batch.gpu = "A40";
        max_batch.scenario = scenario;
        templates.push_back(max_batch);
    }

    // ---- Expected answers: one in-process service, no fleet. --------
    PlanService reference;
    std::vector<PlanResponse> template_answers;
    for (const PlanRequest& request : templates)
        template_answers.push_back(reference.ask(request));
    auto expectedLine = [&](std::size_t template_index,
                            const std::string& id) {
        PlanResponse response = template_answers[template_index];
        response.id = id;
        return writePlanResponse(response);
    };

    // ---- The fleet: shard-0 behind the chaos proxy, 1 and 2 direct. -
    NetServer shard0;
    NetServer shard1;
    NetServer shard2;
    for (NetServer* shard : {&shard0, &shard1, &shard2}) {
        Result<bool> up = shard->start();
        if (!up)
            fatal("bench_chaos_load: " + up.error().message);
    }
    FaultProxyConfig proxy_config;
    proxy_config.targetPort = shard0.port();
    FaultProxy proxy(proxy_config);
    Result<bool> proxied = proxy.start();
    if (!proxied)
        fatal("bench_chaos_load: " + proxied.error().message);

    RouterConfig router_config;
    ShardEndpoint end0;
    end0.port = proxy.port();
    end0.name = "shard-0";
    ShardEndpoint end1;
    end1.port = shard1.port();
    end1.name = "shard-1";
    ShardEndpoint end2;
    end2.port = shard2.port();
    end2.name = "shard-2";
    router_config.shards = {end0, end1, end2};
    router_config.retryBudget = 2;
    router_config.reconnectBackoffMs = 25.0;
    router_config.reconnectBackoffMaxMs = 100.0;
    router_config.healTimeoutMs = 2000.0;
    RouterServer router(router_config);
    Result<bool> routed = router.start();
    if (!routed)
        fatal("bench_chaos_load: " + routed.error().message);

    // Mirror the ring: the doomed set (and so `retried`) is a fixed,
    // gateable number, not a race outcome.
    HashRing ring(router_config.virtualNodes);
    ring.addShard(0, "shard-0");
    ring.addShard(1, "shard-1");
    ring.addShard(2, "shard-2");
    std::size_t doomed = 0;
    for (const PlanRequest& request : templates)
        if (ring.shardFor(request.canonicalKey()) == 0)
            ++doomed;
    if (doomed == 0 || doomed == templates.size())
        fatal("bench_chaos_load: degenerate ring split; change the "
              "shard names");

    Result<NetClient> connected =
        NetClient::connectTo("127.0.0.1", router.port());
    if (!connected)
        fatal("bench_chaos_load: " + connected.error().message);
    NetClient client = std::move(connected.value());

    std::size_t mismatches = 0;
    std::size_t requests_sent = 0;
    auto sweep = [&](const char* tag) {
        for (std::size_t t = 0; t < templates.size(); ++t) {
            PlanRequest request = templates[t];
            request.id = strCat(tag, t);
            ++requests_sent;
            Result<std::string> line =
                client.ask(writePlanRequest(request));
            if (!line)
                fatal(strCat("bench_chaos_load: sweep ", tag, t, ": ",
                             line.error().message));
            if (line.value() != expectedLine(t, request.id))
                ++mismatches;
        }
    };

    const double start_ms = bench::nowMs();

    // ---- Phase 1: healthy fleet, everything warms. -------------------
    bench::section("Phase 1: healthy sweep");
    sweep("p");
    std::cout << templates.size() << " templates, " << mismatches
              << " mismatches; shard-0 owns " << doomed << '\n';

    // ---- Phase 2: kill shard-0 with its requests in flight. ----------
    // Stall its response flow, fill the pipeline, verify everything is
    // forwarded, then cut the link and stop the worker: the doomed
    // requests MUST fail over to the survivors and answer identically.
    bench::section("Phase 2: kill mid-pipeline");
    FaultScript stall;
    stall.kind = FaultKind::Stall;
    stall.direction = FaultDirection::ServerToClient;
    proxy.setFault(stall);
    for (std::size_t t = 0; t < templates.size(); ++t) {
        PlanRequest request = templates[t];
        request.id = strCat("k", t);
        ++requests_sent;
        if (!client.sendLine(writePlanRequest(request)))
            fatal("bench_chaos_load: pipeline send failed");
    }
    const std::uint64_t expect_forwarded = 2 * templates.size();
    if (!eventually(5000.0, [&] {
            return router.stats().forwarded >= expect_forwarded;
        }))
        fatal("bench_chaos_load: batch never fully forwarded");
    shard0.stop();
    proxy.killConnections();
    proxy.clearFault();
    for (std::size_t t = 0; t < templates.size(); ++t) {
        Result<std::string> line = client.recvLine();
        if (!line)
            fatal(strCat("bench_chaos_load: killed batch k", t, ": ",
                         line.error().message));
        if (line.value() != expectedLine(t, strCat("k", t)))
            ++mismatches;
    }
    const std::uint64_t retried_after_kill = router.stats().retried;
    std::cout << "killed shard-0 with " << doomed
              << " requests in flight; retried="
              << retried_after_kill << ", mismatches so far "
              << mismatches << '\n';

    // ---- Phase 3: degraded sweep — survivors own the keyspace. -------
    // This also compiles shard-0's configs on the survivors, so the
    // union of their registries covers every template when the
    // rejoiner warms from them below.
    bench::section("Phase 3: degraded sweep");
    sweep("s");
    std::cout << "2-shard fleet answered all " << templates.size()
              << "; mismatches so far " << mismatches << '\n';

    // ---- Phase 4: heal into a fresh cold worker. ----------------------
    bench::section("Phase 4: heal");
    NetServer shard0b;
    Result<bool> fresh_up = shard0b.start();
    if (!fresh_up)
        fatal("bench_chaos_load: " + fresh_up.error().message);
    proxy.setTarget("127.0.0.1", shard0b.port());
    if (!eventually(10000.0, [&] {
            const RouterStats s = router.stats();
            return s.healed == 1 && s.shardsAlive == 3;
        }))
        fatal("bench_chaos_load: shard-0 never healed");
    sweep("h");
    const std::uint64_t rejoin_compiled =
        shard0b.service().planRegistry()->plansCompiled();
    const std::uint64_t rejoin_loaded =
        shard0b.service().planRegistry()->plansLoaded();
    std::cout << "healed; rejoiner loaded " << rejoin_loaded
              << " plans, compiled " << rejoin_compiled
              << "; mismatches so far " << mismatches << '\n';

    const double wall_ms = bench::nowMs() - start_ms;
    const RouterStats router_stats = router.stats();

    router.stop();
    proxy.stop();
    shard1.stop();
    shard2.stop();
    shard0b.stop();

    const double requests_per_sec =
        wall_ms > 0.0 ? requests_sent / (wall_ms / 1000.0) : 0.0;

    bench::section("Results");
    std::cout << requests_sent << " requests over " << wall_ms
              << " ms = " << requests_per_sec
              << " req/s across kill + heal\n"
              << "byte mismatches: " << mismatches
              << ", unavailable: " << router_stats.shardFailures
              << ", retried: " << router_stats.retried
              << ", healed: " << router_stats.healed
              << ", rejoin compiled: " << rejoin_compiled << '\n';
    bench::note("gate: zero wrong answers, zero Unavailable, retried "
                "== doomed exactly, one heal, rejoiner compiles 0");

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << '\n';
        return 1;
    }
    out << "{\n"
        << "  \"bench\": \"bench_chaos_load\",\n"
        << "  \"shards\": 3,\n"
        << "  \"requests\": " << requests_sent << ",\n"
        << "  \"wall_ms\": " << wall_ms << ",\n"
        << "  \"requests_per_sec\": " << requests_per_sec << ",\n"
        << "  \"byte_mismatches\": " << mismatches << ",\n"
        << "  \"doomed\": " << doomed << ",\n"
        << "  \"router_stats\": {\n"
        << "    \"retried\": " << router_stats.retried << ",\n"
        << "    \"unavailable\": " << router_stats.shardFailures
        << ",\n"
        << "    \"deadline_expired\": " << router_stats.deadlineExpired
        << ",\n"
        << "    \"healed\": " << router_stats.healed << ",\n"
        << "    \"respawned\": " << router_stats.respawned << "\n"
        << "  },\n"
        << "  \"rejoin\": {\n"
        << "    \"plans_loaded\": " << rejoin_loaded << ",\n"
        << "    \"plans_compiled\": " << rejoin_compiled << "\n"
        << "  }\n"
        << "}\n";
    bench::note("wrote " + out_path);

    if (mismatches > 0) {
        std::cerr << "bench_chaos_load: " << mismatches
                  << " answers diverged from the in-process "
                     "PlanService\n";
        return 1;
    }
    if (router_stats.shardFailures != 0) {
        std::cerr << "bench_chaos_load: " << router_stats.shardFailures
                  << " requests answered Unavailable (the retry "
                     "budget must absorb one kill)\n";
        return 1;
    }
    if (router_stats.retried != doomed) {
        std::cerr << "bench_chaos_load: retried "
                  << router_stats.retried << ", expected exactly "
                  << doomed << '\n';
        return 1;
    }
    if (router_stats.healed != 1) {
        std::cerr << "bench_chaos_load: healed "
                  << router_stats.healed << " times, expected 1\n";
        return 1;
    }
    if (rejoin_compiled != 0) {
        std::cerr << "bench_chaos_load: rejoined shard compiled "
                  << rejoin_compiled << " plans, expected 0\n";
        return 1;
    }
    return 0;
}
