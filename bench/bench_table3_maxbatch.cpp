/**
 * @file
 * Reproduces Table III: maximum batch size supported by fine-tuning on
 * the A40 (48 GB), per model x dataset x dense/sparse, plus the full
 * memory accounting behind each cell.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gpusim/memory_model.hpp"

using namespace ftsim;

int
main()
{
    bench::banner("Table III",
                  "Maximum batch size supported by LLM fine-tuning "
                  "(A40, 48 GB)");

    const GpuSpec a40 = GpuSpec::a40();
    struct Row {
        const char* dataset;
        std::size_t seq;
    };
    const Row rows[] = {{"CS (median 79)", 79}, {"MATH (median 174)", 174}};

    Table table({"Dataset", "Mixtral-D", "Mixtral-S", "BlackMamba-D",
                 "BlackMamba-S"});
    for (const Row& row : rows) {
        table.addRow({
            row.dataset,
            Table::fmt(static_cast<long long>(MemoryModel::maxBatchSize(
                ModelSpec::mixtral8x7b(), a40, row.seq, false))),
            Table::fmt(static_cast<long long>(MemoryModel::maxBatchSize(
                ModelSpec::mixtral8x7b(), a40, row.seq, true))),
            Table::fmt(static_cast<long long>(MemoryModel::maxBatchSize(
                ModelSpec::blackMamba2p8b(), a40, row.seq, false))),
            Table::fmt(static_cast<long long>(MemoryModel::maxBatchSize(
                ModelSpec::blackMamba2p8b(), a40, row.seq, true))),
        });
    }
    std::cout << table.render();

    bench::section("Memory accounting (sparse, CS)");
    Table acct({"Model", "weights", "optimizer", "gradients", "reserved",
                "usable", "per-query"});
    for (const ModelSpec& spec :
         {ModelSpec::mixtral8x7b(), ModelSpec::blackMamba2p8b()}) {
        MemoryBreakdown mb = MemoryModel::analyze(spec, a40, 79, true);
        auto gb = [](double bytes) {
            return Table::fmt(bytes / 1e9, 2) + " GB";
        };
        acct.addRow({spec.name, gb(mb.weightBytes), gb(mb.optimizerBytes),
                     gb(mb.gradientBytes), gb(mb.reservedBytes),
                     gb(mb.usableBytes), gb(mb.perQueryBytes)});
    }
    std::cout << acct.render();

    bench::note("paper Table III: CS row 2 / 8 / 6 / 20, MATH row "
                "1 / 3 / 2 / 8 — reproduced cell-for-cell (see "
                "tests/gpusim/test_memory_model.cpp).");
    return 0;
}
