/**
 * @file
 * Binary-vs-JSON wire-format bench (ISSUE-10 acceptance gate).
 *
 * One `NetServer`, two timed phases over the *same warm cache*: a JSON
 * phase (lines in, lines out) and a binary phase (frames in, frames
 * out) running the identical request trace. A warm-up pass outside the
 * clock executes every distinct step configuration first, so neither
 * phase pays simulation cost — the measured difference is codec +
 * transport only, which is exactly what the wire format changes.
 *
 * All request bytes are pre-encoded per connection before the clock
 * starts, and responses are compared as raw bytes against pre-computed
 * expectations from an in-process `PlanService`, so the gate also
 * re-proves byte-level fidelity under load in both formats:
 *
 *  - every JSON answer equals `writePlanResponse` of the reference;
 *  - every binary answer's frame bytes equal `encodeResponseFrame` of
 *    the reference (decode + re-encode is deterministic);
 *  - the binary phase must run >= 1.3x the JSON phase's request rate.
 *
 * Exits non-zero on any divergence or a speedup below the bar, so
 * ci.sh gets the gate for free; emits BENCH_wire.json for the trend
 * line and tools/bench_check.py.
 *
 * Usage: bench_wire [output.json]   (default: BENCH_wire.json)
 */

#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/logging.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/plan_service.hpp"
#include "serve/wire.hpp"

using namespace ftsim;

int
main(int argc, char** argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_wire.json";
    Logger::instance().setLevel(LogLevel::Error);

    bench::banner("bench_wire",
                  "binary frames vs. JSON lines on a warm NetServer");

    // ---- Templates: 3 scenarios x 3 GPUs, throughput + max_batch. ---
    // Scenario-bearing requests on purpose: they are the expensive
    // spelling in JSON and the common shape in production traces.
    const std::vector<Scenario> scenarios = {
        Scenario::gsMath(),
        Scenario::gsMath().withNumQueries(50000.0).withEpochs(3.0),
        Scenario::commonsense15k(),
    };
    const std::vector<std::string> gpu_names = {"A40", "A100-80GB",
                                                "H100"};
    std::vector<PlanRequest> templates;
    for (const Scenario& scenario : scenarios) {
        for (const std::string& gpu : gpu_names) {
            PlanRequest throughput;
            throughput.query = QueryKind::Throughput;
            throughput.gpu = gpu;
            throughput.scenario = scenario;
            throughput.rates = {{"user", gpu, 1.05}};
            templates.push_back(throughput);
        }
        PlanRequest max_batch;
        max_batch.query = QueryKind::MaxBatch;
        max_batch.gpu = "A40";
        max_batch.scenario = scenario;
        templates.push_back(max_batch);
    }
    const std::size_t kDistinctStepConfigs =
        scenarios.size() * gpu_names.size();

    constexpr std::size_t kConnections = 4;
    constexpr std::size_t kPerConnection = 2048;
    const std::size_t requests_per_mode =
        kConnections * kPerConnection;

    // ---- Expected answers: the in-process service, no sockets. ------
    PlanService reference;
    std::vector<PlanResponse> template_answers;
    for (const PlanRequest& request : templates)
        template_answers.push_back(reference.ask(request));
    if (reference.stats().stepsSimulated != kDistinctStepConfigs)
        fatal(strCat("bench_wire: reference simulated ",
                     reference.stats().stepsSimulated,
                     " steps, expected ", kDistinctStepConfigs));

    // ---- Pre-encode everything outside the clock. -------------------
    // Per connection: the full outbound byte stream for each mode and
    // the per-slot expected response bytes (JSON line / binary frame).
    struct ConnTrace {
        std::string json_out;    ///< All request lines, concatenated.
        std::string binary_out;  ///< All request frames, concatenated.
        std::vector<std::string> expect_json;
        std::vector<std::string> expect_binary;
    };
    std::vector<ConnTrace> traces(kConnections);
    for (std::size_t c = 0; c < kConnections; ++c) {
        ConnTrace& trace = traces[c];
        for (std::size_t q = 0; q < kPerConnection; ++q) {
            const std::size_t t = (c + q) % templates.size();
            PlanRequest request = templates[t];
            request.id = strCat("c", c, "-q", q);
            trace.json_out += writePlanRequest(request);
            trace.json_out += '\n';
            trace.binary_out += encodeRequestFrame(request);
            PlanResponse response = template_answers[t];
            response.id = request.id;
            trace.expect_json.push_back(writePlanResponse(response));
            trace.expect_binary.push_back(
                encodeResponseFrame(response));
        }
    }

    // ---- The server under test, cache warmed outside the clock. -----
    NetServer server;
    Result<bool> started = server.start();
    if (!started)
        fatal("bench_wire: " + started.error().message);
    const std::uint16_t port = server.port();
    {
        Result<NetClient> warm =
            NetClient::connectTo("127.0.0.1", port);
        if (!warm)
            fatal("bench_wire: " + warm.error().message);
        for (const PlanRequest& request : templates)
            if (!warm.value().ask(writePlanRequest(request)))
                fatal("bench_wire: warm-up request failed");
    }

    bench::section("Trace");
    std::cout << kConnections << " connections x " << kPerConnection
              << " pipelined requests per mode ("
              << templates.size() << " templates, "
              << kDistinctStepConfigs
              << " distinct step configs, cache warm)\n";

    // ---- One timed phase: send the stream, verify every answer. -----
    std::size_t mismatches = 0;
    std::size_t failed_connections = 0;
    auto run_phase = [&](bool binary) {
        std::vector<std::size_t> bad(kConnections, 0);
        std::vector<char> failed(kConnections, 0);
        const double start_ms = bench::nowMs();
        {
            std::vector<std::thread> clients;
            for (std::size_t c = 0; c < kConnections; ++c)
                clients.emplace_back([&, c] {
                    Result<NetClient> connected =
                        NetClient::connectTo("127.0.0.1", port);
                    if (!connected) {
                        failed[c] = 1;
                        return;
                    }
                    NetClient client =
                        std::move(connected.value());
                    const ConnTrace& trace = traces[c];
                    if (!client.sendBytes(binary ? trace.binary_out
                                                 : trace.json_out)) {
                        failed[c] = 1;
                        return;
                    }
                    for (std::size_t q = 0; q < kPerConnection;
                         ++q) {
                        if (binary) {
                            Result<WireFramer::Frame> frame =
                                client.recvFrame();
                            if (!frame || !frame.value().binary) {
                                failed[c] = 1;
                                return;
                            }
                            // Raw frame bytes vs the pre-encoded
                            // expectation (header included).
                            if (wireFrame(frame.value().payload) !=
                                trace.expect_binary[q])
                                ++bad[c];
                        } else {
                            Result<std::string> line =
                                client.recvLine();
                            if (!line) {
                                failed[c] = 1;
                                return;
                            }
                            if (line.value() !=
                                trace.expect_json[q])
                                ++bad[c];
                        }
                    }
                });
            for (std::thread& thread : clients)
                thread.join();
        }
        const double wall_ms = bench::nowMs() - start_ms;
        for (std::size_t c = 0; c < kConnections; ++c) {
            mismatches += bad[c];
            failed_connections += failed[c] ? 1 : 0;
        }
        return wall_ms;
    };

    // JSON first, then binary — both against the same warm cache, so
    // ordering cannot flatter the binary phase.
    const double json_wall_ms = run_phase(false);
    const double binary_wall_ms = run_phase(true);

    const ServiceStats stats = server.service().stats();
    const NetServerStats net = server.stats();
    server.stop();

    const double json_rps =
        json_wall_ms > 0.0
            ? requests_per_mode / (json_wall_ms / 1000.0)
            : 0.0;
    const double binary_rps =
        binary_wall_ms > 0.0
            ? requests_per_mode / (binary_wall_ms / 1000.0)
            : 0.0;
    const double speedup =
        json_rps > 0.0 ? binary_rps / json_rps : 0.0;

    bench::section("Results");
    std::cout << "json:   " << requests_per_mode << " requests over "
              << json_wall_ms << " ms = " << json_rps << " req/s\n"
              << "binary: " << requests_per_mode << " requests over "
              << binary_wall_ms << " ms = " << binary_rps
              << " req/s\n"
              << "speedup binary vs json: " << speedup << "x\n"
              << "byte mismatches: " << mismatches
              << ", failed connections: " << failed_connections
              << ", steps_simulated=" << stats.stepsSimulated << '\n';
    bench::note("gate: byte-identical answers in both formats and "
                "binary >= 1.3x JSON");

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot write " << out_path << '\n';
        return 1;
    }
    out << "{\n"
        << "  \"bench\": \"bench_wire\",\n"
        << "  \"connections\": " << kConnections << ",\n"
        << "  \"requests_per_mode\": " << requests_per_mode << ",\n"
        << "  \"distinct_step_configs\": " << kDistinctStepConfigs
        << ",\n"
        << "  \"json_wall_ms\": " << json_wall_ms << ",\n"
        << "  \"binary_wall_ms\": " << binary_wall_ms << ",\n"
        << "  \"json_requests_per_sec\": " << json_rps << ",\n"
        << "  \"binary_requests_per_sec\": " << binary_rps << ",\n"
        << "  \"speedup_binary_vs_json\": " << speedup << ",\n"
        << "  \"byte_mismatches\": " << mismatches << ",\n"
        << "  \"failed_connections\": " << failed_connections << ",\n"
        << "  \"service_stats\": {\n"
        << "    \"steps_simulated\": " << stats.stepsSimulated
        << ",\n"
        << "    \"executed\": " << stats.executed << "\n"
        << "  },\n"
        << "  \"net_stats\": {\n"
        << "    \"requests\": " << net.requests << ",\n"
        << "    \"binary_requests\": " << net.binaryRequests << ",\n"
        << "    \"wire_poisoned\": " << net.wirePoisoned << ",\n"
        << "    \"protocol_errors\": " << net.protocolErrors << "\n"
        << "  }\n"
        << "}\n";
    bench::note("wrote " + out_path);

    if (failed_connections > 0) {
        std::cerr << "bench_wire: " << failed_connections
                  << " connections failed\n";
        return 1;
    }
    if (mismatches > 0) {
        std::cerr << "bench_wire: wire answers diverge from the "
                     "in-process PlanService\n";
        return 1;
    }
    if (stats.stepsSimulated != kDistinctStepConfigs) {
        std::cerr << "bench_wire: server simulated "
                  << stats.stepsSimulated << " steps, expected "
                  << kDistinctStepConfigs << '\n';
        return 1;
    }
    if (net.binaryRequests != requests_per_mode) {
        std::cerr << "bench_wire: server counted "
                  << net.binaryRequests << " binary requests, "
                  << "expected " << requests_per_mode << '\n';
        return 1;
    }
    if (speedup < 1.3) {
        std::cerr << "bench_wire: binary/json speedup " << speedup
                  << "x is below the 1.3x bar\n";
        return 1;
    }
    return 0;
}
