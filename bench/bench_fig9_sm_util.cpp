/**
 * @file
 * Reproduces Fig. 9: GPU SM utilization of the MoE-layer kernels, per
 * batch size, with the time-weighted aggregate column.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gpusim/finetune_sim.hpp"
#include "gpusim/memory_model.hpp"

using namespace ftsim;

namespace {

void
report(const ModelSpec& spec)
{
    const GpuSpec a40 = GpuSpec::a40();
    FineTuneSim sim(spec, a40);
    const int max_dense = MemoryModel::maxBatchSize(spec, a40, 128, false);
    const int max_sparse = MemoryModel::maxBatchSize(spec, a40, 128, true);

    struct Point {
        bool sparse;
        int batch;
    };
    std::vector<Point> points = {{false, 1},
                                 {false, max_dense},
                                 {true, 1},
                                 {true, max_dense},
                                 {true, max_sparse}};

    bench::section(spec.name + " SM utilization (%) per MoE kernel");
    Table table({"Config", "Kernel", "SM util (%)"});
    for (const Point& pt : points) {
        if (pt.batch < 1)
            continue;
        RunConfig config;
        config.batchSize = static_cast<std::size_t>(pt.batch);
        config.seqLen = 128;
        config.sparse = pt.sparse;
        StepProfile p = sim.profileStep(config);
        const std::string cfg_name =
            std::string(pt.sparse ? "Sparse" : "Dense") + "(bsz=" +
            std::to_string(pt.batch) + ")";
        for (const KernelAggregate& k : p.moeKernels)
            table.addRow(
                {cfg_name, k.name, Table::fmt(k.smUtilPct, 1)});
        table.addRow({cfg_name, "time_weighted",
                      Table::fmt(p.moeTimeWeightedSmPct, 1)});
    }
    std::cout << table.render();
}

}  // namespace

int
main()
{
    bench::banner("Fig. 9",
                  "GPU SM utilization of MoE-layer kernels vs. batch");
    report(ModelSpec::mixtral8x7b());
    report(ModelSpec::blackMamba2p8b());
    bench::note("paper Fig. 9: SM utilization rises with batch size; "
                "sparse trails dense at equal batch (fewer active "
                "experts); dequant kernels stay high regardless of "
                "batch.");
    return 0;
}
