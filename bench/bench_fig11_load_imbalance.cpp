/**
 * @file
 * Reproduces Fig. 11: token distribution across experts before and after
 * fine-tuning, with the across-expert variance the paper reports. Both
 * miniature models are actually fine-tuned (sparse, top-2) on the CS and
 * MATH tasks, and the routers' token counters are read out on the
 * corresponding evaluation sets.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "train/imbalance.hpp"
#include "train/pretrain.hpp"
#include "train/trainer.hpp"

using namespace ftsim;

namespace {

MiniModelConfig
mixtralConfig()
{
    MiniModelConfig cfg = MiniModelConfig::miniMixtral();
    cfg.dModel = 32;
    cfg.nLayers = 2;
    cfg.nHeads = 4;
    cfg.dFf = 64;
    cfg.nExperts = 8;
    cfg.loraRank = 4;
    return cfg;
}

MiniModelConfig
mambaConfig()
{
    MiniModelConfig cfg = MiniModelConfig::miniBlackMamba();
    cfg.dModel = 24;
    cfg.nLayers = 2;
    cfg.dFf = 48;
    cfg.dInner = 48;
    cfg.nExperts = 8;
    return cfg;
}

Dataset
makeSet(TaskKind kind, std::size_t n, std::uint64_t seed_shift)
{
    DatasetSpec spec = kind == TaskKind::Commonsense
                           ? DatasetSpec::commonsense15k()
                           : DatasetSpec::math14k();
    spec.numQueries = n;
    spec.medianSeqLen = 12.0;
    spec.lengthSigma = 0.25;
    spec.seed += seed_shift;
    return Dataset::generate(spec);
}

void
addProfileRow(Table& table, const std::string& label,
              const ExpertLoadProfile& profile)
{
    std::vector<std::string> row = {label};
    for (double v : profile.avgTokensPerQuery)
        row.push_back(Table::fmt(v, 2));
    row.push_back(Table::fmt(profile.varianceAcrossExperts, 2));
    table.addRow(row);
}

void
run(bool mixtral, TaskKind kind, Table& table)
{
    const std::string eval_name =
        kind == TaskKind::Commonsense ? "HE" : "GS";
    const std::string model_name = mixtral ? "Mixtral" : "BlackMamba";

    MiniModelConfig cfg = mixtral ? mixtralConfig() : mambaConfig();
    Dataset corpus =
        Dataset::generate(DatasetSpec::genericCorpus(192, 14.0));
    Dataset train = makeSet(kind, 144, 0);
    Dataset eval = makeSet(kind, 64, 1000);  // Distinct split.

    std::unique_ptr<MoeLlm> model;
    if (mixtral) {
        model = makePretrainedQlora(cfg, corpus, 80, 16, 3e-3, false);
    } else {
        cfg.useLora = false;
        model = std::make_unique<MoeLlm>(cfg);
        pretrainLm(*model, corpus, 80, 16, 3e-3, 7, false);
    }

    addProfileRow(table, model_name + " " + eval_name,
                  measureExpertLoad(*model, eval, 16));

    AdamW opt(model->trainableParameters(), mixtral ? 8e-3 : 4e-3);
    TrainerOptions options;
    options.batchSize = 16;
    Trainer trainer(*model, opt, options);
    for (int epoch = 0; epoch < 10; ++epoch)
        trainer.trainEpoch(train);

    addProfileRow(table, model_name + " " + eval_name + "_tuned",
                  measureExpertLoad(*model, eval, 16));
}

}  // namespace

int
main()
{
    bench::banner("Fig. 11", "Token distribution to different experts");

    std::vector<std::string> headers = {"Series"};
    for (int e = 0; e < 8; ++e)
        headers.push_back("Exp" + std::to_string(e));
    headers.push_back("var");
    Table table(headers);

    for (bool mixtral : {true, false})
        for (TaskKind kind : {TaskKind::Commonsense, TaskKind::Math})
            run(mixtral, kind, table);
    std::cout << table.render();

    bench::note("paper Fig. 11 (avg tokens/query per expert): "
                "fine-tuning increases Mixtral's routing variance "
                "(HE 55.5->112.3, GS 21.2->79.2) while BlackMamba's "
                "drops or stays flat (150.7->93.3, 186.5->187.9) — "
                "the effect is model- and dataset-dependent "
                "(Takeaway 6).");
    return 0;
}
