/**
 * @file
 * Microbenchmarks (google-benchmark) for the training substrate's hot
 * tensor operations: forward ops, autograd round trips, and one full
 * miniature MoE training step.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "data/batching.hpp"
#include "models/model.hpp"
#include "tensor/ops.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"

namespace {

using namespace ftsim;

void
BM_LinearOpForward(benchmark::State& state)
{
    Rng rng(1);
    const auto rows = static_cast<std::size_t>(state.range(0));
    Tensor x = Tensor::randn({rows, 64}, rng);
    Tensor w = Tensor::randn({64, 64}, rng);
    for (auto _ : state) {
        NoGradGuard guard;
        benchmark::DoNotOptimize(linearOp(x, w, Tensor()));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_LinearOpForward)->Arg(16)->Arg(64)->Arg(256);

void
BM_SoftmaxForward(benchmark::State& state)
{
    Rng rng(2);
    Tensor x = Tensor::randn({64, 64}, rng);
    for (auto _ : state) {
        NoGradGuard guard;
        benchmark::DoNotOptimize(softmaxLastDim(x));
    }
}
BENCHMARK(BM_SoftmaxForward);

void
BM_SelectiveScanForward(benchmark::State& state)
{
    Rng rng(3);
    const auto seq = static_cast<std::size_t>(state.range(0));
    Tensor a = Tensor::full({4, seq, 64}, 0.5);
    Tensor x = Tensor::randn({4, seq, 64}, rng);
    for (auto _ : state) {
        NoGradGuard guard;
        benchmark::DoNotOptimize(selectiveScan(a, x));
    }
}
BENCHMARK(BM_SelectiveScanForward)->Arg(16)->Arg(64);

void
BM_AutogradRoundTrip(benchmark::State& state)
{
    Rng rng(4);
    Tensor x = Tensor::randn({32, 32}, rng, 1.0, true);
    Tensor w = Tensor::randn({32, 32}, rng, 1.0, true);
    for (auto _ : state) {
        x.zeroGrad();
        w.zeroGrad();
        Tensor y = linearOp(silu(linearOp(x, w, Tensor())), w, Tensor());
        sumAll(mul(y, y)).backward();
        benchmark::DoNotOptimize(w.grad().data());
    }
}
BENCHMARK(BM_AutogradRoundTrip);

void
BM_MoeTrainingStep(benchmark::State& state)
{
    MiniModelConfig cfg = MiniModelConfig::miniMixtral();
    cfg.dModel = 32;
    cfg.nLayers = 2;
    cfg.nHeads = 4;
    cfg.dFf = 64;
    cfg.nExperts = 8;
    cfg.topK = static_cast<std::size_t>(state.range(0));
    MoeLlm model(cfg);
    AdamW opt(model.trainableParameters(), 1e-3);
    Trainer trainer(model, opt, {});

    DatasetSpec spec = DatasetSpec::commonsense15k();
    spec.numQueries = 8;
    spec.medianSeqLen = 12.0;
    Dataset ds = Dataset::generate(spec);
    Batch batch = collate(ds.head(8));

    for (auto _ : state)
        benchmark::DoNotOptimize(trainer.trainStep(batch).loss);
    state.SetLabel(cfg.topK == cfg.nExperts ? "dense" : "sparse");
}
BENCHMARK(BM_MoeTrainingStep)->Arg(2)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
