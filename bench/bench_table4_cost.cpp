/**
 * @file
 * Reproduces Table IV: estimated cost of fine-tuning sparse Mixtral on
 * the GS/MATH workload (14k queries, 10 epochs) across cloud GPUs, plus
 * the paper's OpenOrca (2M-query) projection.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/planner.hpp"

using namespace ftsim;

int
main()
{
    bench::banner("Table IV",
                  "Estimated cost of fine-tuning Mixtral (sparse MoE) "
                  "on the cloud");

    // The Table IV workload (GS median 148, 14k queries, 10 epochs) is
    // the scenario's canonical defaults.
    Planner planner(Scenario::gsMath());
    auto rows = planner.costTable(GpuSpec::paperGpus()).valueOrThrow();

    Table table({"GPU", "Mem", "MBS", "Throughput (q/s)", "Cost ($/hr)",
                 "Cost ($)"});
    const CostRow* cheapest = nullptr;
    for (const CostRow& row : rows) {
        table.addRow({row.gpuName, Table::fmt(row.memGB, 0) + " GB",
                      Table::fmt(static_cast<long long>(row.maxBatchSize)),
                      Table::fmt(row.throughputQps, 2),
                      Table::fmt(row.dollarsPerHour, 2),
                      Table::fmt(row.totalDollars, 1)});
        if (cheapest == nullptr ||
            row.totalDollars < cheapest->totalDollars)
            cheapest = &row;
    }
    std::cout << table.render();
    std::cout << "cheapest end-to-end: " << cheapest->gpuName << " ($"
              << Table::fmt(cheapest->totalDollars, 1) << ")\n";

    bench::section("Enterprise-scale projection: OpenOrca (2M queries, "
                   "10 epochs)");
    // Same simulations, bigger dataset: only the cost formula changes,
    // so reuse the measured throughputs against the OpenOrca scenario.
    const Scenario orca_scenario = Scenario::openOrca();
    CostEstimator estimator(planner.catalog());
    Table orca({"GPU", "Throughput (q/s)", "GPU-hours", "Cost ($)"});
    for (const CostRow& row : rows) {
        CostEstimate est = estimator.estimate(
            row.gpuName, row.throughputQps, orca_scenario.numQueries,
            orca_scenario.epochs);
        orca.addRow({row.gpuName, Table::fmt(est.throughputQps, 2),
                     Table::fmt(est.gpuHours, 0),
                     Table::fmt(est.totalDollars, 0)});
    }
    std::cout << orca.render();

    bench::note("paper Table IV: A40 $32.7, A100-80 $25.4, H100 $17.9; "
                "OpenOrca on H100 ~ $3460. The headline reproduces: the "
                "H100 is the cheapest end-to-end despite the highest "
                "hourly rate, and fine-tuning costs tens of dollars "
                "(vs. $100M-scale pre-training).");
    return 0;
}
