/**
 * @file
 * Reproduces Table IV: estimated cost of fine-tuning sparse Mixtral on
 * the GS/MATH workload (14k queries, 10 epochs) across cloud GPUs, plus
 * the paper's OpenOrca (2M-query) projection.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"

using namespace ftsim;

int
main()
{
    bench::banner("Table IV",
                  "Estimated cost of fine-tuning Mixtral (sparse MoE) "
                  "on the cloud");

    const ModelSpec spec = ModelSpec::mixtral8x7b();
    const CloudCatalog catalog = CloudCatalog::cudoCompute();
    const std::size_t seq = 148;  // GS median.
    const double queries = 14000.0;
    const double epochs = 10.0;

    auto rows = ExperimentPipeline::costTable(
        spec, GpuSpec::paperGpus(), catalog, seq, true, queries, epochs);

    Table table({"GPU", "Mem", "MBS", "Throughput (q/s)", "Cost ($/hr)",
                 "Cost ($)"});
    const CostRow* cheapest = nullptr;
    for (const CostRow& row : rows) {
        table.addRow({row.gpuName, Table::fmt(row.memGB, 0) + " GB",
                      Table::fmt(static_cast<long long>(row.maxBatchSize)),
                      Table::fmt(row.throughputQps, 2),
                      Table::fmt(row.dollarsPerHour, 2),
                      Table::fmt(row.totalDollars, 1)});
        if (cheapest == nullptr ||
            row.totalDollars < cheapest->totalDollars)
            cheapest = &row;
    }
    std::cout << table.render();
    std::cout << "cheapest end-to-end: " << cheapest->gpuName << " ($"
              << Table::fmt(cheapest->totalDollars, 1) << ")\n";

    bench::section("Enterprise-scale projection: OpenOrca (2M queries, "
                   "10 epochs)");
    CostEstimator estimator(catalog);
    Table orca({"GPU", "Throughput (q/s)", "GPU-hours", "Cost ($)"});
    for (const CostRow& row : rows) {
        CostEstimate est =
            estimator.estimate(row.gpuName, row.throughputQps, 2e6, 10.0);
        orca.addRow({row.gpuName, Table::fmt(est.throughputQps, 2),
                     Table::fmt(est.gpuHours, 0),
                     Table::fmt(est.totalDollars, 0)});
    }
    std::cout << orca.render();

    bench::note("paper Table IV: A40 $32.7, A100-80 $25.4, H100 $17.9; "
                "OpenOrca on H100 ~ $3460. The headline reproduces: the "
                "H100 is the cheapest end-to-end despite the highest "
                "hourly rate, and fine-tuning costs tens of dollars "
                "(vs. $100M-scale pre-training).");
    return 0;
}
