/**
 * @file
 * Ablation: gradient checkpointing on/off for Mixtral QLoRA.
 *
 * The paper notes (§IV-B2) that checkpointing "saves memory but
 * increases the backward stage runtime due to the re-computation of
 * intermediate values". This ablation quantifies the runtime side on
 * the simulator: backward time and total step time with and without
 * recomputation, across batch sizes.
 */

#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gpusim/finetune_sim.hpp"

using namespace ftsim;

int
main()
{
    bench::banner("Ablation", "Gradient checkpointing (Mixtral, A40)");

    FineTuneSim sim(ModelSpec::mixtral8x7b(), GpuSpec::a40());

    Table table({"bsz", "ckpt", "Forward (s)", "Backward (s)",
                 "Step (s)", "Backward overhead"});
    for (std::size_t batch : {1u, 4u, 8u, 16u}) {
        double bwd_without = 0.0;
        for (int ckpt : {0, 1}) {
            RunConfig config;
            config.batchSize = batch;
            config.seqLen = 128;
            config.sparse = true;
            config.gradientCheckpointing = ckpt;
            StepProfile p = sim.profileStep(config);
            if (!ckpt)
                bwd_without = p.backwardSeconds;
            table.addRow({
                Table::fmt(static_cast<long long>(batch)),
                ckpt ? "on" : "off",
                Table::fmt(p.forwardSeconds, 3),
                Table::fmt(p.backwardSeconds, 3),
                Table::fmt(p.stepSeconds, 3),
                ckpt ? Table::fmt(
                           100.0 * (p.backwardSeconds - bwd_without) /
                               bwd_without,
                           1) + " %"
                     : "-",
            });
        }
    }
    std::cout << table.render();

    bench::note("checkpointing re-runs each layer's forward inside the "
                "backward pass; the paper's Mixtral setup accepts this "
                "overhead to fit the 47B model in 48 GB at all.");
    return 0;
}
