/**
 * @file
 * Shared gtest main: silences the library logger so expected-fatal tests
 * do not spam the ctest output.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"

int
main(int argc, char** argv)
{
    ::testing::InitGoogleTest(&argc, argv);
    ftsim::Logger::instance().setLevel(ftsim::LogLevel::Silent);
    return RUN_ALL_TESTS();
}
