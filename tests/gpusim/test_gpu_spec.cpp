/**
 * @file
 * Unit tests for the GPU presets.
 */

#include <gtest/gtest.h>

#include "gpusim/gpu_spec.hpp"

namespace ftsim {
namespace {

TEST(GpuSpecTest, PaperPresetsExist)
{
    auto gpus = GpuSpec::paperGpus();
    ASSERT_EQ(gpus.size(), 4u);
    EXPECT_EQ(gpus[0].name, "A40");
    EXPECT_EQ(gpus[1].name, "A100-40GB");
    EXPECT_EQ(gpus[2].name, "A100-80GB");
    EXPECT_EQ(gpus[3].name, "H100");
}

TEST(GpuSpecTest, CapacitiesMatchPaper)
{
    EXPECT_DOUBLE_EQ(GpuSpec::a40().memGB, 48.0);
    EXPECT_DOUBLE_EQ(GpuSpec::a100_40().memGB, 40.0);
    EXPECT_DOUBLE_EQ(GpuSpec::a100_80().memGB, 80.0);
    EXPECT_DOUBLE_EQ(GpuSpec::h100_80().memGB, 80.0);
}

TEST(GpuSpecTest, MemBytesIsDecimal)
{
    EXPECT_DOUBLE_EQ(GpuSpec::a40().memBytes(), 48e9);
}

TEST(GpuSpecTest, ComputeOrdering)
{
    // H100 > A100 > A40 on both compute and bandwidth.
    GpuSpec a40 = GpuSpec::a40();
    GpuSpec a100 = GpuSpec::a100_80();
    GpuSpec h100 = GpuSpec::h100_80();
    EXPECT_GT(a100.tensorTflops, a40.tensorTflops);
    EXPECT_GT(h100.tensorTflops, a100.tensorTflops);
    EXPECT_GT(a100.dramGBps, a40.dramGBps);
    EXPECT_GT(h100.dramGBps, a100.dramGBps);
}

TEST(GpuSpecTest, HypotheticalScalesCapacityOnly)
{
    GpuSpec base = GpuSpec::a100_80();
    GpuSpec hypo = GpuSpec::hypothetical(120.0);
    EXPECT_DOUBLE_EQ(hypo.memGB, 120.0);
    EXPECT_EQ(hypo.numSms, base.numSms);
    EXPECT_DOUBLE_EQ(hypo.tensorTflops, base.tensorTflops);
}

}  // namespace
}  // namespace ftsim
