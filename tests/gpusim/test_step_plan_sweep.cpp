/**
 * @file
 * Golden tests for the vectorized sweep path (ISSUE-9): one
 * `StepPlan::evaluateSweep` pass must reproduce per-batch
 * `StepPlan::evaluate`, the per-batch compiled profile path, AND the
 * retained reference emission (`profileStepReference`) to the last
 * bit, for every batch of every catalog (model, GPU, seq) config.
 * These tests are the enforcement arm of the sweep half of the
 * bit-identity contract in step_plan.hpp.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "gpusim/finetune_sim.hpp"
#include "gpusim/step_plan.hpp"
#include "gpusim/workload.hpp"

namespace ftsim {
namespace {

RunConfig
config(std::size_t batch, std::size_t seq, bool sparse, int ckpt)
{
    RunConfig c;
    c.batchSize = batch;
    c.seqLen = seq;
    c.sparse = sparse;
    c.gradientCheckpointing = ckpt;
    return c;
}

void
expectProfilesBitIdentical(const StepProfile& a, const StepProfile& b)
{
    EXPECT_EQ(a.forwardSeconds, b.forwardSeconds);
    EXPECT_EQ(a.backwardSeconds, b.backwardSeconds);
    EXPECT_EQ(a.optimizerSeconds, b.optimizerSeconds);
    EXPECT_EQ(a.overheadSeconds, b.overheadSeconds);
    EXPECT_EQ(a.stepSeconds, b.stepSeconds);
    EXPECT_EQ(a.throughputQps, b.throughputQps);
    EXPECT_EQ(a.kernelLaunches, b.kernelLaunches);
    EXPECT_EQ(a.moeTimeWeightedSmPct, b.moeTimeWeightedSmPct);
    EXPECT_EQ(a.moeTimeWeightedDramPct, b.moeTimeWeightedDramPct);
    ASSERT_EQ(a.byLayer.size(), b.byLayer.size());
    for (std::size_t i = 0; i < b.byLayer.size(); ++i) {
        EXPECT_EQ(a.byLayer[i].layer, b.byLayer[i].layer) << i;
        EXPECT_EQ(a.byLayer[i].seconds, b.byLayer[i].seconds) << i;
    }
    ASSERT_EQ(a.moeKernels.size(), b.moeKernels.size());
    for (std::size_t i = 0; i < b.moeKernels.size(); ++i) {
        EXPECT_EQ(a.moeKernels[i].name, b.moeKernels[i].name) << i;
        EXPECT_EQ(a.moeKernels[i].seconds, b.moeKernels[i].seconds)
            << b.moeKernels[i].name;
        EXPECT_EQ(a.moeKernels[i].launches, b.moeKernels[i].launches)
            << b.moeKernels[i].name;
        EXPECT_EQ(a.moeKernels[i].flops, b.moeKernels[i].flops)
            << b.moeKernels[i].name;
        EXPECT_EQ(a.moeKernels[i].bytes, b.moeKernels[i].bytes)
            << b.moeKernels[i].name;
        EXPECT_EQ(a.moeKernels[i].smUtilPct, b.moeKernels[i].smUtilPct)
            << b.moeKernels[i].name;
        EXPECT_EQ(a.moeKernels[i].dramUtilPct,
                  b.moeKernels[i].dramUtilPct)
            << b.moeKernels[i].name;
    }
}

TEST(StepPlanSweep, EvaluateSweepMatchesEvaluateBitForBit)
{
    // Every shape of both model families: one evaluateSweep pass over
    // a batch range with per-batch sequence lengths must equal the
    // per-point evaluate() column by column, bit for bit.
    for (bool mixtral : {true, false}) {
        const ModelSpec spec = mixtral ? ModelSpec::mixtral8x7b()
                                       : ModelSpec::blackMamba2p8b();
        WorkloadBuilder builder(spec);
        EvaluatedStep eval;
        SweepBuffers buf;
        for (bool sparse : {false, true})
            for (int ckpt : {-1, 0, 1}) {
                const StepPlan& plan =
                    builder.stepPlan(config(1, 128, sparse, ckpt));
                // Batches 1..24 with seq varying per point, as a real
                // padded sweep does.
                std::vector<std::size_t> batches, seqs;
                for (std::size_t b = 1; b <= 24; ++b) {
                    batches.push_back(b);
                    seqs.push_back(64 + 13 * b);
                }
                plan.evaluateSweep(batches.data(), seqs.data(),
                                   batches.size(), buf);
                ASSERT_EQ(buf.points(), batches.size());
                for (std::size_t j = 0; j < batches.size(); ++j) {
                    plan.evaluate(batches[j], seqs[j], eval);
                    for (std::size_t i = 0; i < plan.size(); ++i) {
                        const std::size_t at = i * buf.points() + j;
                        ASSERT_EQ(buf.flops[at], eval.flops[i])
                            << "kernel " << i << " batch " << batches[j];
                        ASSERT_EQ(buf.bytes[at], eval.bytes[i])
                            << "kernel " << i << " batch " << batches[j];
                        ASSERT_EQ(buf.tiles[at], eval.tiles[i])
                            << "kernel " << i << " batch " << batches[j];
                    }
                }
            }
    }
}

TEST(StepPlanSweep, BatchRangeOverloadMatchesReferenceEmission)
{
    // The (batch_lo, batch_hi, seq) convenience form against the
    // reference buildStep oracle: sweep lane j of kernel i must equal
    // the KernelDesc the reference path emits at that batch.
    WorkloadBuilder builder(ModelSpec::mixtral8x7b());
    const StepPlan& plan = builder.stepPlan(config(1, 311, true, -1));
    SweepBuffers buf;
    plan.evaluateSweep(1, 32, 311, buf);
    ASSERT_EQ(buf.points(), 32u);
    for (std::size_t b = 1; b <= 32; ++b) {
        const auto ref = builder.buildStep(config(b, 311, true, -1));
        ASSERT_EQ(plan.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            const std::size_t at = i * buf.points() + (b - 1);
            ASSERT_EQ(buf.flops[at], ref[i].flops) << ref[i].name;
            ASSERT_EQ(buf.bytes[at], ref[i].bytes) << ref[i].name;
            ASSERT_EQ(buf.tiles[at], ref[i].tiles) << ref[i].name;
        }
    }
}

TEST(StepPlanSweep, ThroughputSweepMatchesPerBatchStepSeconds)
{
    // The vectorized throughputSweep against a hand-rolled per-batch
    // stepSeconds loop — the exact computation the old fan-out ran —
    // on every paper GPU, both models, both routing modes.
    for (bool mixtral : {true, false}) {
        const ModelSpec spec = mixtral ? ModelSpec::mixtral8x7b()
                                       : ModelSpec::blackMamba2p8b();
        for (const GpuSpec& gpu : GpuSpec::paperGpus()) {
            FineTuneSim sim(spec, gpu);
            for (bool sparse : {false, true}) {
                auto sweep = sim.throughputSweep(148, sparse, 12, 0.4);
                ASSERT_TRUE(sweep.ok());
                ASSERT_EQ(sweep.value().size(), 12u);
                for (const ThroughputPoint& pt : sweep.value()) {
                    RunConfig c;
                    c.batchSize = pt.batchSize;
                    c.seqLen =
                        sim.paddedSeqLen(148, pt.batchSize, 0.4);
                    c.sparse = sparse;
                    const double scalar = sim.stepSeconds(c);
                    ASSERT_EQ(pt.stepSeconds, scalar)
                        << spec.name << " on " << gpu.name << " batch "
                        << pt.batchSize;
                    ASSERT_EQ(pt.qps,
                              static_cast<double>(pt.batchSize) /
                                  scalar);
                }
            }
        }
    }
}

TEST(StepPlanSweep, ProfileSweepMatchesCompiledAndReferencePaths)
{
    // The full catalog: every batch of every (model, GPU, seq) sweep
    // config, profiled three ways — vectorized profileSweep, per-batch
    // compiled profileStep, and the retained profileStepReference
    // oracle — must agree to the last bit.
    for (bool mixtral : {true, false}) {
        const ModelSpec spec = mixtral ? ModelSpec::mixtral8x7b()
                                       : ModelSpec::blackMamba2p8b();
        for (const GpuSpec& gpu : GpuSpec::paperGpus()) {
            FineTuneSim sim(spec, gpu);
            const std::vector<RunConfig> configs =
                sim.sweepConfigs(148, 0.4);
            const std::vector<StepProfile> sweep =
                sim.profileSweep(configs);
            ASSERT_EQ(sweep.size(), configs.size());
            for (std::size_t i = 0; i < configs.size(); ++i) {
                SCOPED_TRACE(spec.name + " on " + gpu.name +
                             " batch " +
                             std::to_string(configs[i].batchSize));
                expectProfilesBitIdentical(
                    sweep[i], sim.profileStep(configs[i]));
                expectProfilesBitIdentical(
                    sweep[i], sim.profileStepReference(configs[i]));
            }
        }
    }
}

TEST(StepPlanSweep, ProfileSweepGroupsMixedShapesCorrectly)
{
    // A grid that interleaves shapes (dense run then sparse run, as
    // sweepConfigs emits) must split into per-plan groups without
    // mixing columns up, and count one simulated step per config.
    FineTuneSim sim(ModelSpec::mixtral8x7b(), GpuSpec::a40());
    std::vector<RunConfig> configs;
    for (bool sparse : {false, true})
        for (std::size_t b = 1; b <= 5; ++b)
            configs.push_back(config(b, 100 + 7 * b, sparse, -1));
    const std::uint64_t before = sim.stepsSimulated();
    const std::vector<StepProfile> sweep = sim.profileSweep(configs);
    EXPECT_EQ(sim.stepsSimulated() - before, configs.size());
    ASSERT_EQ(sweep.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i)
        expectProfilesBitIdentical(sweep[i],
                                   sim.profileStep(configs[i]));
}

TEST(StepPlanSweep, ThroughputSweepCountsOneStepPerBatch)
{
    FineTuneSim sim(ModelSpec::mixtral8x7b(), GpuSpec::a40());
    const std::uint64_t before = sim.stepsSimulated();
    ASSERT_TRUE(sim.throughputSweep(128, true, 9).ok());
    EXPECT_EQ(sim.stepsSimulated() - before, 9u);
}

TEST(StepPlanSweep, RejectsDegenerateRanges)
{
    WorkloadBuilder builder(ModelSpec::mixtral8x7b());
    const StepPlan& plan = builder.stepPlan(config(1, 128, true, -1));
    SweepBuffers buf;
    EXPECT_THROW(plan.evaluateSweep(0, 4, 128, buf), FatalError);
    EXPECT_THROW(plan.evaluateSweep(5, 4, 128, buf), FatalError);
    EXPECT_THROW(plan.evaluateSweep(1, 4, 0, buf), FatalError);
    const std::size_t batches[] = {1, 0};
    const std::size_t seqs[] = {128, 128};
    EXPECT_THROW(plan.evaluateSweep(batches, seqs, 2, buf), FatalError);
}

TEST(StepPlanSweep, PlannerObservationsMatchPerBatchProfiles)
{
    // The planner's vectorized sweep must populate the step cache with
    // the same profiles the per-batch path computes, with exact
    // counter bookkeeping: misses == simulated == distinct configs,
    // and a later profileAt() on a sweep point is a pure hit.
    Planner planner(Scenario::gsMath());
    const GpuSpec gpu = GpuSpec::a40();
    auto obs = planner.throughputObservations(gpu);
    ASSERT_TRUE(obs.ok());
    const PlannerStats after_sweep = planner.stats();
    EXPECT_EQ(after_sweep.stepCacheMisses, obs.value().size());
    EXPECT_EQ(after_sweep.stepsSimulated, after_sweep.stepCacheMisses);

    FineTuneSim oracle(Scenario::gsMath().model, gpu,
                       Scenario::gsMath().calibration);
    const std::vector<RunConfig> jobs = oracle.sweepConfigs(
        Scenario::gsMath().medianSeqLen, Scenario::gsMath().lengthSigma);
    ASSERT_EQ(jobs.size(), obs.value().size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(obs.value()[i].qps,
                  oracle.profileStepReference(jobs[i]).throughputQps)
            << "batch " << jobs[i].batchSize;
    }

    // Sparse sweep points are cached: profileAt on one must not
    // simulate again.
    const std::size_t sparse_batch = jobs.back().batchSize;
    ASSERT_TRUE(planner.profileAt(gpu, sparse_batch).ok());
    const PlannerStats after_hit = planner.stats();
    EXPECT_EQ(after_hit.stepCacheHits, after_sweep.stepCacheHits + 1);
    EXPECT_EQ(after_hit.stepsSimulated, after_sweep.stepsSimulated);
}

}  // namespace
}  // namespace ftsim
