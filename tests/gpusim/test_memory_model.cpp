/**
 * @file
 * Memory-model tests. The core check reproduces Table III of the paper
 * cell-for-cell: maximum batch sizes on the A40 for Mixtral/BlackMamba x
 * dense/sparse x CS(79)/MATH(174).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "gpusim/memory_model.hpp"

namespace ftsim {
namespace {

struct TableIIICase {
    const char* label;
    bool mixtral;
    bool sparse;
    std::size_t seqLen;
    int expected;
};

class TableIII : public ::testing::TestWithParam<TableIIICase> {};

TEST_P(TableIII, MaxBatchMatchesPaper)
{
    const TableIIICase& c = GetParam();
    ModelSpec spec = c.mixtral ? ModelSpec::mixtral8x7b()
                               : ModelSpec::blackMamba2p8b();
    int got = MemoryModel::maxBatchSize(spec, GpuSpec::a40(), c.seqLen,
                                        c.sparse);
    EXPECT_EQ(got, c.expected) << c.label;
}

INSTANTIATE_TEST_SUITE_P(
    Paper, TableIII,
    ::testing::Values(
        // Paper Table III: CS row (median 79) and MATH row (median 174).
        TableIIICase{"Mixtral_Dense_CS", true, false, 79, 2},
        TableIIICase{"Mixtral_Sparse_CS", true, true, 79, 8},
        TableIIICase{"Mixtral_Dense_MATH", true, false, 174, 1},
        TableIIICase{"Mixtral_Sparse_MATH", true, true, 174, 3},
        TableIIICase{"BlackMamba_Dense_CS", false, false, 79, 6},
        TableIIICase{"BlackMamba_Sparse_CS", false, true, 79, 20},
        TableIIICase{"BlackMamba_Dense_MATH", false, false, 174, 2},
        TableIIICase{"BlackMamba_Sparse_MATH", false, true, 174, 8}),
    [](const ::testing::TestParamInfo<TableIIICase>& info) {
        return info.param.label;
    });

TEST(MemoryModel, TableIvA40SparseGsBatch)
{
    // Table IV reports MBS = 4 for sparse Mixtral on GS (median 148).
    EXPECT_EQ(MemoryModel::maxBatchSize(ModelSpec::mixtral8x7b(),
                                        GpuSpec::a40(), 148, true),
              4);
}

TEST(MemoryModel, SparseAlwaysFitsAtLeastDense)
{
    for (std::size_t seq : {64u, 128u, 256u, 512u}) {
        for (bool mixtral : {true, false}) {
            ModelSpec spec = mixtral ? ModelSpec::mixtral8x7b()
                                     : ModelSpec::blackMamba2p8b();
            int dense = MemoryModel::maxBatchSize(spec, GpuSpec::a40(),
                                                  seq, false);
            int sparse = MemoryModel::maxBatchSize(spec, GpuSpec::a40(),
                                                   seq, true);
            EXPECT_GE(sparse, dense) << seq;
        }
    }
}

TEST(MemoryModel, MaxBatchMonotonicInMemory)
{
    ModelSpec spec = ModelSpec::mixtral8x7b();
    int prev = 0;
    for (double gb : {48.0, 64.0, 80.0, 100.0, 120.0}) {
        int mbs = MemoryModel::maxBatchSize(
            spec, GpuSpec::hypothetical(gb), 148, true);
        EXPECT_GE(mbs, prev);
        prev = mbs;
    }
}

TEST(MemoryModel, MaxBatchDecreasesWithSeqLen)
{
    ModelSpec spec = ModelSpec::blackMamba2p8b();
    int prev = 1 << 30;
    for (std::size_t seq : {64u, 128u, 256u, 512u, 1024u}) {
        int mbs =
            MemoryModel::maxBatchSize(spec, GpuSpec::a40(), seq, true);
        EXPECT_LE(mbs, prev);
        prev = mbs;
    }
}

TEST(MemoryModel, BreakdownAccounting)
{
    ModelSpec spec = ModelSpec::blackMamba2p8b();
    MemoryBreakdown mb =
        MemoryModel::analyze(spec, GpuSpec::a40(), 79, true);
    // Components must sum to capacity minus usable.
    EXPECT_NEAR(mb.weightBytes + mb.optimizerBytes + mb.gradientBytes +
                    mb.reservedBytes + mb.usableBytes,
                GpuSpec::a40().memBytes(), 1.0);
    EXPECT_GT(mb.perQueryBytes, 0.0);
    EXPECT_EQ(mb.maxBatchSize, 20);
}

TEST(MemoryModel, FullFtOptimizerDominatesBlackMambaBudget)
{
    // The reason BlackMamba's absolute batches are small despite the
    // small model: AdamW moments over 2.8B params.
    MemoryBreakdown mb = MemoryModel::analyze(
        ModelSpec::blackMamba2p8b(), GpuSpec::a40(), 79, true);
    EXPECT_GT(mb.optimizerBytes, 3.0 * mb.weightBytes);
}

TEST(MemoryModel, ModelTooBigYieldsZero)
{
    // Mixtral + state does not fit on a 24 GB card.
    GpuSpec small = GpuSpec::a40();
    small.memGB = 24.0;
    EXPECT_EQ(MemoryModel::maxBatchSize(ModelSpec::mixtral8x7b(), small,
                                        128, true),
              0);
}

TEST(MemoryModel, PerQueryScalesWithSparsityFactor)
{
    ModelSpec spec = ModelSpec::mixtral8x7b();
    const double dense = MemoryModel::perQueryBytes(spec, 128, false);
    const double sparse = MemoryModel::perQueryBytes(spec, 128, true);
    EXPECT_GT(dense, sparse);
    // With moeFraction m and sparsity s: ratio of the variable parts is
    // (1-m) + m*s; the fixed part dilutes it.
    EXPECT_LT(dense / sparse, 1.0 / 0.25);
}

TEST(MemoryModel, ZeroSeqLenIsFatal)
{
    EXPECT_THROW(MemoryModel::perQueryBytes(ModelSpec::mixtral8x7b(), 0,
                                            true),
                 FatalError);
}

}  // namespace
}  // namespace ftsim
