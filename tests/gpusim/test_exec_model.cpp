/**
 * @file
 * Property tests for the roofline+occupancy execution model.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "gpusim/exec_model.hpp"

namespace ftsim {
namespace {

KernelDesc
gemmKernel(double flops, double bytes, double tiles)
{
    KernelDesc kd;
    kd.name = "matmul(test)";
    kd.kind = KernelKind::MatMul;
    kd.flops = flops;
    kd.bytes = bytes;
    kd.tiles = tiles;
    return kd;
}

TEST(ExecModel, TimeIsAtLeastRoofline)
{
    ExecutionModel exec(GpuSpec::a40());
    KernelDesc kd = gemmKernel(1e12, 1e9, 1e5);
    KernelMetrics m = exec.simulate(kd);
    const auto& c = exec.calibration();
    const double t_compute =
        1e12 / (149.7e12 * c.matmulEfficiency);
    EXPECT_GE(m.seconds, t_compute);
}

TEST(ExecModel, ComputeBoundVsMemoryBound)
{
    ExecutionModel exec(GpuSpec::a40());
    // Huge FLOPs, tiny bytes: compute bound.
    EXPECT_FALSE(exec.simulate(gemmKernel(1e13, 1e6, 1e5)).memoryBound);
    // Tiny FLOPs, huge bytes: memory bound.
    EXPECT_TRUE(exec.simulate(gemmKernel(1e6, 1e10, 1e5)).memoryBound);
}

TEST(ExecModel, MoreTilesNeverSlower)
{
    ExecutionModel exec(GpuSpec::a40());
    double prev = 1e300;
    for (double tiles : {1.0, 8.0, 64.0, 512.0, 4096.0}) {
        double t = exec.simulate(gemmKernel(1e11, 1e8, tiles)).seconds;
        EXPECT_LE(t, prev + 1e-12);
        prev = t;
    }
}

TEST(ExecModel, SmUtilRisesWithTiles)
{
    // The Fig. 9 effect: more exposed parallelism -> higher SM%.
    ExecutionModel exec(GpuSpec::a40());
    double low =
        exec.simulate(gemmKernel(1e11, 1e6, 4.0)).smUtilPct;
    double high =
        exec.simulate(gemmKernel(1e11, 1e6, 4096.0)).smUtilPct;
    EXPECT_GT(high, low);
    EXPECT_LE(high, 100.0);
}

TEST(ExecModel, MemoryBoundKernelHasHighDramLowSm)
{
    // The Fig. 9/10 elementwise signature.
    ExecutionModel exec(GpuSpec::a40());
    KernelDesc kd;
    kd.kind = KernelKind::Elementwise;
    kd.flops = 1e7;
    kd.bytes = 1e10;
    kd.tiles = 1e5;
    KernelMetrics m = exec.simulate(kd);
    EXPECT_GT(m.dramUtilPct, 50.0);
    EXPECT_LT(m.smUtilPct, 30.0);
}

TEST(ExecModel, UtilizationsAreBounded)
{
    ExecutionModel exec(GpuSpec::h100_80());
    for (double flops : {1e6, 1e10, 1e14}) {
        for (double bytes : {1e5, 1e9, 1e12}) {
            KernelMetrics m =
                exec.simulate(gemmKernel(flops, bytes, 1e4));
            EXPECT_GE(m.smUtilPct, 0.0);
            EXPECT_LE(m.smUtilPct, 100.0);
            EXPECT_GE(m.dramUtilPct, 0.0);
            EXPECT_LE(m.dramUtilPct, 100.0);
        }
    }
}

TEST(ExecModel, CountMultipliesTime)
{
    ExecutionModel exec(GpuSpec::a40());
    KernelDesc kd = gemmKernel(1e10, 1e8, 1e4);
    double t1 = exec.simulate(kd).seconds;
    kd.count = 10.0;
    EXPECT_NEAR(exec.simulate(kd).seconds, 10.0 * t1, 1e-9);
}

TEST(ExecModel, LaunchOverheadFloorsTinyKernels)
{
    ExecutionModel exec(GpuSpec::a40());
    KernelDesc kd = gemmKernel(1.0, 1.0, 1.0);
    const auto& c = exec.calibration();
    const double overhead =
        (GpuSpec::a40().launchUs + c.hostOverheadUs) * 1e-6;
    EXPECT_GE(exec.simulate(kd).seconds, overhead);
}

TEST(ExecModel, EfficiencyDeratesCompute)
{
    ExecutionModel exec(GpuSpec::a40());
    KernelDesc full = gemmKernel(1e12, 1e6, 1e5);
    KernelDesc skinny = full;
    skinny.efficiency = 0.1;
    EXPECT_GT(exec.simulate(skinny).seconds,
              exec.simulate(full).seconds * 5.0);
}

TEST(ExecModel, FasterGpuIsFaster)
{
    KernelDesc kd = gemmKernel(1e12, 1e9, 1e5);
    double a40 = ExecutionModel(GpuSpec::a40()).simulate(kd).seconds;
    double h100 = ExecutionModel(GpuSpec::h100_80()).simulate(kd).seconds;
    EXPECT_LT(h100, a40);
}

TEST(ExecModel, DequantKindIsSlowestPerFlop)
{
    // NF4 unpacking runs far below both the derated tensor peak and the
    // vector peak: same FLOPs, more time (why dequant stays SM-bound).
    ExecutionModel exec(GpuSpec::a40());
    KernelDesc mm = gemmKernel(1e12, 1e3, 1e6);
    KernelDesc vec = mm;
    vec.kind = KernelKind::Gelu;
    KernelDesc dq = mm;
    dq.kind = KernelKind::Dequant;
    EXPECT_GT(exec.simulate(dq).seconds, exec.simulate(mm).seconds);
    EXPECT_GT(exec.simulate(dq).seconds, exec.simulate(vec).seconds);
}

TEST(ExecModel, InvalidInputsAreFatal)
{
    GpuSpec broken;
    EXPECT_THROW(ExecutionModel{broken}, FatalError);
    ExecutionModel exec(GpuSpec::a40());
    KernelDesc kd = gemmKernel(1.0, 1.0, 1.0);
    kd.count = 0.0;
    EXPECT_THROW(exec.simulate(kd), FatalError);
}

}  // namespace
}  // namespace ftsim
