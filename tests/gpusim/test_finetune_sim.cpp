/**
 * @file
 * Tests for the end-to-end step simulator: these encode the paper's
 * qualitative findings (Takeaways 3-5 and the Fig. 4-10 shapes).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "gpusim/finetune_sim.hpp"
#include "gpusim/memory_model.hpp"

namespace ftsim {
namespace {

RunConfig
config(std::size_t batch, bool sparse = true, std::size_t seq = 128)
{
    RunConfig c;
    c.batchSize = batch;
    c.seqLen = seq;
    c.sparse = sparse;
    return c;
}

TEST(FineTuneSim, MoEDominatesExecutionTime)
{
    // Fig. 5 / Takeaway 3: the MoE layer is the costliest component
    // (~85% on average in the paper).
    for (bool mixtral : {true, false}) {
        ModelSpec spec = mixtral ? ModelSpec::mixtral8x7b()
                                 : ModelSpec::blackMamba2p8b();
        FineTuneSim sim(spec, GpuSpec::a40());
        StepProfile p = sim.profileStep(config(4));
        EXPECT_GT(p.moeFractionOfStep(), 0.5) << spec.name;
        // Largest *layer* class must be the MoE (optimizer is a stage,
        // not a layer — Fig. 5 has no optimizer row).
        for (const auto& layer : p.byLayer) {
            if (layer.layer == LayerClass::OptimizerState)
                continue;
            EXPECT_EQ(layer.layer, LayerClass::MoE) << spec.name;
            break;
        }
    }
}

TEST(FineTuneSim, MatmulIsTheLargestMoeKernel)
{
    // Fig. 6: matrix multiplication dominates inside the MoE layer.
    FineTuneSim sim(ModelSpec::mixtral8x7b(), GpuSpec::a40());
    StepProfile p = sim.profileStep(config(8));
    ASSERT_FALSE(p.moeKernels.empty());
    EXPECT_EQ(p.moeKernels.front().name.rfind("matmul", 0), 0u)
        << p.moeKernels.front().name;
}

TEST(FineTuneSim, OptimizerShareLargeForFullFtSmallForLora)
{
    // Fig. 4: optimizer stage is a large share for BlackMamba (up to
    // ~53% at bsz 1) and negligible for Mixtral LoRA.
    FineTuneSim mamba(ModelSpec::blackMamba2p8b(), GpuSpec::a40());
    StepProfile mp = mamba.profileStep(config(1));
    const double mamba_share =
        mp.optimizerSeconds /
        (mp.forwardSeconds + mp.backwardSeconds + mp.optimizerSeconds);
    EXPECT_GT(mamba_share, 0.25);

    FineTuneSim mixtral(ModelSpec::mixtral8x7b(), GpuSpec::a40());
    StepProfile xp = mixtral.profileStep(config(1));
    const double mixtral_share =
        xp.optimizerSeconds /
        (xp.forwardSeconds + xp.backwardSeconds + xp.optimizerSeconds);
    EXPECT_LT(mixtral_share, 0.05);
}

TEST(FineTuneSim, BackwardCostsMoreThanForward)
{
    // Fig. 4: the backward stage typically exceeds the forward stage.
    for (bool mixtral : {true, false}) {
        ModelSpec spec = mixtral ? ModelSpec::mixtral8x7b()
                                 : ModelSpec::blackMamba2p8b();
        FineTuneSim sim(spec, GpuSpec::a40());
        StepProfile p = sim.profileStep(config(4));
        EXPECT_GT(p.backwardSeconds, p.forwardSeconds) << spec.name;
    }
}

TEST(FineTuneSim, SparseBeatsDenseAtEqualBatch)
{
    // Fig. 8: same batch size, sparse routing is faster.
    FineTuneSim sim(ModelSpec::mixtral8x7b(), GpuSpec::a40());
    EXPECT_GT(sim.throughput(2, 79, true), sim.throughput(2, 79, false));
}

TEST(FineTuneSim, ThroughputGrowsSublinearly)
{
    // Fig. 8: 1->2 nearly doubles; 1->8 is well below 8x.
    FineTuneSim sim(ModelSpec::mixtral8x7b(), GpuSpec::a40());
    double q1 = sim.throughput(1, 79, true);
    double q2 = sim.throughput(2, 79, true);
    double q8 = sim.throughput(8, 79, true);
    EXPECT_GT(q2 / q1, 1.4);
    EXPECT_LT(q2 / q1, 2.0);
    EXPECT_GT(q8 / q1, 2.0);
    EXPECT_LT(q8 / q1, 8.0);
}

TEST(FineTuneSim, ThroughputMonotonicInBatch)
{
    FineTuneSim sim(ModelSpec::blackMamba2p8b(), GpuSpec::a40());
    auto sweep_result = sim.throughputSweep(79, true, 20);
    ASSERT_TRUE(sweep_result.ok());
    const auto& sweep = sweep_result.value();
    ASSERT_EQ(sweep.size(), 20u);
    for (std::size_t i = 1; i < sweep.size(); ++i)
        EXPECT_GE(sweep[i].qps, sweep[i - 1].qps * 0.999);
}

TEST(FineTuneSim, ParallelSweepMatchesSerialBitExact)
{
    // The sweep parallelizes across batch sizes; every point must be
    // byte-for-byte what the serial sweep computes.
    FineTuneSim sim(ModelSpec::mixtral8x7b(), GpuSpec::a40());
    auto serial = sim.throughputSweep(79, true, 16, 0.4, 1);
    auto parallel = sim.throughputSweep(79, true, 16, 0.4, 8);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    ASSERT_EQ(serial.value().size(), parallel.value().size());
    for (std::size_t i = 0; i < serial.value().size(); ++i) {
        EXPECT_EQ(serial.value()[i].batchSize,
                  parallel.value()[i].batchSize);
        EXPECT_EQ(serial.value()[i].qps, parallel.value()[i].qps);
        EXPECT_EQ(serial.value()[i].stepSeconds,
                  parallel.value()[i].stepSeconds);
    }
}

TEST(FineTuneSim, SmUtilRisesWithBatch)
{
    // Fig. 9: time-weighted SM utilization increases with batch size.
    FineTuneSim sim(ModelSpec::mixtral8x7b(), GpuSpec::a40());
    double sm1 = sim.profileStep(config(1)).moeTimeWeightedSmPct;
    double sm32 = sim.profileStep(config(32)).moeTimeWeightedSmPct;
    EXPECT_GT(sm32, sm1);
}

TEST(FineTuneSim, DramUtilFallsWithBatch)
{
    // Fig. 10 / Takeaway 5: time-weighted DRAM utilization decreases as
    // batch grows (weights amortize; compute-bound regime).
    FineTuneSim sim(ModelSpec::mixtral8x7b(), GpuSpec::a40());
    double d1 = sim.profileStep(config(1)).moeTimeWeightedDramPct;
    double d32 = sim.profileStep(config(32)).moeTimeWeightedDramPct;
    EXPECT_LT(d32, d1);
}

TEST(FineTuneSim, DequantSmUtilIsBatchIndependent)
{
    // Fig. 9: the dequant kernels hold high SM% regardless of batch.
    FineTuneSim sim(ModelSpec::mixtral8x7b(), GpuSpec::a40());
    auto dequant_sm = [&](std::size_t batch) {
        for (const auto& k : sim.profileStep(config(batch)).moeKernels)
            if (k.name == "w1_dequant")
                return k.smUtilPct;
        return -1.0;
    };
    double sm1 = dequant_sm(1);
    double sm32 = dequant_sm(32);
    EXPECT_NEAR(sm1, sm32, 1.0);
    EXPECT_GT(sm1, 50.0);
}

TEST(FineTuneSim, FasterGpusGiveMoreThroughput)
{
    ModelSpec spec = ModelSpec::mixtral8x7b();
    double a40 =
        FineTuneSim(spec, GpuSpec::a40()).throughput(4, 148, true);
    double a100 =
        FineTuneSim(spec, GpuSpec::a100_80()).throughput(4, 148, true);
    double h100 =
        FineTuneSim(spec, GpuSpec::h100_80()).throughput(4, 148, true);
    EXPECT_GT(a100, a40);
    EXPECT_GT(h100, a100);
}

TEST(FineTuneSim, StepProfileIsSelfConsistent)
{
    FineTuneSim sim(ModelSpec::blackMamba2p8b(), GpuSpec::a40());
    StepProfile p = sim.profileStep(config(4));
    EXPECT_NEAR(p.stepSeconds,
                p.forwardSeconds + p.backwardSeconds +
                    p.optimizerSeconds + p.overheadSeconds,
                1e-12);
    EXPECT_NEAR(p.throughputQps, 4.0 / p.stepSeconds, 1e-9);
    double layer_total = 0.0;
    for (const auto& l : p.byLayer)
        layer_total += l.seconds;
    EXPECT_NEAR(layer_total,
                p.forwardSeconds + p.backwardSeconds + p.optimizerSeconds,
                1e-9);
    EXPECT_GT(p.kernelLaunches, 100.0);
}

TEST(FineTuneSim, StepSecondsAgreesWithProfile)
{
    FineTuneSim sim(ModelSpec::mixtral8x7b(), GpuSpec::a40());
    RunConfig c = config(2);
    EXPECT_NEAR(sim.stepSeconds(c), sim.profileStep(c).stepSeconds,
                1e-12);
}

TEST(NormalizeKernelNameTest, FoldsBackwardAndRecompute)
{
    EXPECT_EQ(normalizeKernelName("matmul(w1_bwd)"), "matmul(w1)");
    EXPECT_EQ(normalizeKernelName("softmax_bwd"), "softmax");
    EXPECT_EQ(normalizeKernelName("matmul(w1) (recompute)"),
              "matmul(w1)");
    EXPECT_EQ(normalizeKernelName("topk"), "topk");
}

TEST(NormalizeKernelNameTest, ErasesEveryBackwardMarker)
{
    // The historical bug: only the first find() hit was erased.
    EXPECT_EQ(normalizeKernelName("matmul(w1_bwd)_bwd"), "matmul(w1)");
    EXPECT_EQ(normalizeKernelName("a_bwd_b_bwd_c"), "a_b_c");
    EXPECT_EQ(normalizeKernelName("_bwd"), "");
    // Markers formed by the join of two fragments are caught too.
    EXPECT_EQ(normalizeKernelName("x_b_bwdwd"), "x");
}

TEST(NormalizeKernelNameTest, RecomputeSuffixCombinesWithBackward)
{
    // Recompute kernels are re-emitted forward kernels, but aggregation
    // must fold a hypothetical combined spelling all the same.
    EXPECT_EQ(normalizeKernelName("matmul(w1_bwd) (recompute)"),
              "matmul(w1)");
    EXPECT_EQ(normalizeKernelName("silu_bwd (recompute)"), "silu");
    // The suffix is only stripped at the very end of the name.
    EXPECT_EQ(normalizeKernelName("a (recompute) b"), "a (recompute) b");
}

TEST(FineTuneSim, SweepRejectsZeroMax)
{
    // Migrated from fatal() to the Result/InvalidArgument error path:
    // a zero sweep is a domain failure callers branch on, not an abort.
    FineTuneSim sim(ModelSpec::mixtral8x7b(), GpuSpec::a40());
    auto sweep = sim.throughputSweep(128, true, 0);
    ASSERT_FALSE(sweep.ok());
    EXPECT_EQ(sweep.code(), ErrorCode::InvalidArgument);
}

}  // namespace
}  // namespace ftsim
