/**
 * @file
 * Golden tests for the compiled-plan path: the StepPlan machinery must
 * reproduce the retained reference path (per-call buildStep) to the
 * last bit, across both model families, both routing modes, both
 * checkpointing settings, and a grid of batch/sequence shapes. These
 * tests are the enforcement arm of the bit-identity contract in
 * step_plan.hpp.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "gpusim/finetune_sim.hpp"
#include "gpusim/step_plan.hpp"
#include "gpusim/workload.hpp"

namespace ftsim {
namespace {

RunConfig
config(std::size_t batch, std::size_t seq, bool sparse, int ckpt)
{
    RunConfig c;
    c.batchSize = batch;
    c.seqLen = seq;
    c.sparse = sparse;
    c.gradientCheckpointing = ckpt;
    return c;
}

/** The sweep grid shared by the golden tests. */
const std::size_t kBatches[] = {1, 5, 32};
const std::size_t kSeqLens[] = {79, 128, 311};
const bool kSparse[] = {false, true};
const int kCkpt[] = {-1, 0, 1};

void
expectProfilesBitIdentical(const StepProfile& plan, const StepProfile& ref)
{
    EXPECT_EQ(plan.forwardSeconds, ref.forwardSeconds);
    EXPECT_EQ(plan.backwardSeconds, ref.backwardSeconds);
    EXPECT_EQ(plan.optimizerSeconds, ref.optimizerSeconds);
    EXPECT_EQ(plan.overheadSeconds, ref.overheadSeconds);
    EXPECT_EQ(plan.stepSeconds, ref.stepSeconds);
    EXPECT_EQ(plan.throughputQps, ref.throughputQps);
    EXPECT_EQ(plan.kernelLaunches, ref.kernelLaunches);
    EXPECT_EQ(plan.moeTimeWeightedSmPct, ref.moeTimeWeightedSmPct);
    EXPECT_EQ(plan.moeTimeWeightedDramPct, ref.moeTimeWeightedDramPct);

    ASSERT_EQ(plan.byLayer.size(), ref.byLayer.size());
    for (std::size_t i = 0; i < ref.byLayer.size(); ++i) {
        EXPECT_EQ(plan.byLayer[i].layer, ref.byLayer[i].layer) << i;
        EXPECT_EQ(plan.byLayer[i].seconds, ref.byLayer[i].seconds) << i;
    }

    ASSERT_EQ(plan.moeKernels.size(), ref.moeKernels.size());
    for (std::size_t i = 0; i < ref.moeKernels.size(); ++i) {
        EXPECT_EQ(plan.moeKernels[i].name, ref.moeKernels[i].name) << i;
        EXPECT_EQ(plan.moeKernels[i].seconds, ref.moeKernels[i].seconds)
            << ref.moeKernels[i].name;
        EXPECT_EQ(plan.moeKernels[i].launches, ref.moeKernels[i].launches)
            << ref.moeKernels[i].name;
        EXPECT_EQ(plan.moeKernels[i].flops, ref.moeKernels[i].flops)
            << ref.moeKernels[i].name;
        EXPECT_EQ(plan.moeKernels[i].bytes, ref.moeKernels[i].bytes)
            << ref.moeKernels[i].name;
        EXPECT_EQ(plan.moeKernels[i].smUtilPct,
                  ref.moeKernels[i].smUtilPct)
            << ref.moeKernels[i].name;
        EXPECT_EQ(plan.moeKernels[i].dramUtilPct,
                  ref.moeKernels[i].dramUtilPct)
            << ref.moeKernels[i].name;
    }
}

TEST(StepPlan, PlanMirrorsReferenceKernelForKernel)
{
    // Structural golden test: the compiled plan lists exactly the
    // kernels buildStep emits — same order, names, tags, counts — and
    // evaluates to bit-identical flops/bytes/tiles.
    for (bool mixtral : {true, false}) {
        const ModelSpec spec = mixtral ? ModelSpec::mixtral8x7b()
                                       : ModelSpec::blackMamba2p8b();
        WorkloadBuilder builder(spec);
        EvaluatedStep eval;
        for (bool sparse : kSparse)
            for (int ckpt : kCkpt)
                for (std::size_t batch : kBatches)
                    for (std::size_t seq : kSeqLens) {
                        const RunConfig c =
                            config(batch, seq, sparse, ckpt);
                        const auto ref = builder.buildStep(c);
                        const StepPlan& plan = builder.stepPlan(c);
                        plan.evaluate(batch, seq, eval);
                        ASSERT_EQ(plan.size(), ref.size()) << spec.name;
                        for (std::size_t i = 0; i < ref.size(); ++i) {
                            EXPECT_EQ(builder.kernelNames().name(
                                          plan.nameIds[i]),
                                      ref[i].name)
                                << i;
                            EXPECT_EQ(plan.kinds[i], ref[i].kind) << i;
                            EXPECT_EQ(plan.layers[i], ref[i].layer) << i;
                            EXPECT_EQ(plan.stages[i], ref[i].stage) << i;
                            EXPECT_EQ(plan.counts[i], ref[i].count) << i;
                            EXPECT_EQ(plan.efficiencies[i],
                                      ref[i].efficiency)
                                << i;
                            EXPECT_EQ(eval.flops[i], ref[i].flops)
                                << ref[i].name;
                            EXPECT_EQ(eval.bytes[i], ref[i].bytes)
                                << ref[i].name;
                            EXPECT_EQ(eval.tiles[i], ref[i].tiles)
                                << ref[i].name;
                        }
                    }
    }
}

TEST(StepPlan, ProfileMatchesReferenceBitForBit)
{
    // End-to-end golden test: the full StepProfile (stage seconds,
    // layer breakdown, MoE aggregates, utilizations, QPS) is identical
    // between the compiled-plan path and the retained reference path.
    for (bool mixtral : {true, false}) {
        const ModelSpec spec = mixtral ? ModelSpec::mixtral8x7b()
                                       : ModelSpec::blackMamba2p8b();
        FineTuneSim sim(spec, GpuSpec::a40());
        for (bool sparse : kSparse)
            for (int ckpt : kCkpt)
                for (std::size_t batch : kBatches)
                    for (std::size_t seq : kSeqLens) {
                        const RunConfig c =
                            config(batch, seq, sparse, ckpt);
                        expectProfilesBitIdentical(
                            sim.profileStep(c),
                            sim.profileStepReference(c));
                    }
    }
}

TEST(StepPlan, StepSecondsMatchesReferenceBitForBit)
{
    FineTuneSim sim(ModelSpec::mixtral8x7b(), GpuSpec::h100_80());
    for (std::size_t batch : kBatches)
        for (std::size_t seq : kSeqLens) {
            const RunConfig c = config(batch, seq, true, -1);
            EXPECT_EQ(sim.stepSeconds(c), sim.stepSecondsReference(c));
        }
}

TEST(StepPlan, CompiledOncePerShape)
{
    // A 1..N sweep must not recompile: the plan is keyed on the config
    // shape (sparse x checkpointing), not on batch or sequence length.
    WorkloadBuilder builder(ModelSpec::mixtral8x7b());
    EXPECT_EQ(builder.plansCompiled(), 0u);
    for (std::size_t b = 1; b <= 32; ++b)
        builder.stepPlan(config(b, 128, true, -1));
    EXPECT_EQ(builder.plansCompiled(), 1u);
    for (std::size_t seq : {64, 128, 256, 512})
        builder.stepPlan(config(4, seq, true, -1));
    EXPECT_EQ(builder.plansCompiled(), 1u);

    builder.stepPlan(config(1, 128, false, -1));  // New shape: dense.
    EXPECT_EQ(builder.plansCompiled(), 2u);
    builder.stepPlan(config(1, 128, true, 0));  // New shape: no ckpt.
    EXPECT_EQ(builder.plansCompiled(), 3u);
    // Explicit ckpt=1 aliases the strategy default for QLoRA.
    builder.stepPlan(config(1, 128, true, 1));
    EXPECT_EQ(builder.plansCompiled(), 3u);
}

TEST(StepPlan, InternerDeduplicatesAcrossShapes)
{
    // Shapes share kernel spellings; the interner must fold them.
    WorkloadBuilder builder(ModelSpec::mixtral8x7b());
    builder.stepPlan(config(1, 128, true, -1));
    const std::size_t after_one = builder.kernelNames().size();
    builder.stepPlan(config(1, 128, false, -1));
    // The dense plan introduces no new spellings.
    EXPECT_EQ(builder.kernelNames().size(), after_one);
}

TEST(StepPlan, EvaluateRejectsZeroShapes)
{
    WorkloadBuilder builder(ModelSpec::mixtral8x7b());
    const StepPlan& plan = builder.stepPlan(config(1, 128, true, -1));
    EvaluatedStep eval;
    EXPECT_THROW(plan.evaluate(0, 128, eval), FatalError);
    EXPECT_THROW(plan.evaluate(1, 0, eval), FatalError);
}

TEST(StepPlan, MoeSlotsCoverExactlyMoeKernels)
{
    WorkloadBuilder builder(ModelSpec::blackMamba2p8b());
    const StepPlan& plan = builder.stepPlan(config(2, 128, true, -1));
    for (std::size_t i = 0; i < plan.size(); ++i) {
        if (plan.layers[i] == LayerClass::MoE) {
            ASSERT_GE(plan.moeSlot[i], 0);
            ASSERT_LT(static_cast<std::size_t>(plan.moeSlot[i]),
                      plan.moeAggNames.size());
            EXPECT_EQ(plan.moeAggNames[static_cast<std::size_t>(
                          plan.moeSlot[i])],
                      normalizeKernelName(builder.kernelNames().name(
                          plan.nameIds[i])));
        } else {
            EXPECT_EQ(plan.moeSlot[i], -1);
        }
    }
    // Aggregate names are unique and lexicographically ordered (the
    // reference path's std::map iteration order).
    for (std::size_t i = 1; i < plan.moeAggNames.size(); ++i)
        EXPECT_LT(plan.moeAggNames[i - 1], plan.moeAggNames[i]);
}

TEST(PlanRegistry, SharesOnePlanAcrossBuilders)
{
    auto registry = std::make_shared<PlanRegistry>();
    WorkloadBuilder first(ModelSpec::mixtral8x7b(), registry);
    WorkloadBuilder second(ModelSpec::mixtral8x7b(), registry);

    const RunConfig c = config(4, 128, true, 1);
    const StepPlan& a = first.stepPlan(c);
    const StepPlan& b = second.stepPlan(c);
    // Literally the same compiled object, not an equal copy.
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(registry->plansCompiled(), 1u);
    EXPECT_EQ(registry->planHits(), 1u);
    // Exactly one of the builders did the compiling.
    EXPECT_EQ(first.plansCompiled() + second.plansCompiled(), 1u);
    // Name ids resolve through the one shared interner.
    EXPECT_EQ(&first.kernelNames(), &second.kernelNames());
    EXPECT_EQ(&first.kernelNames(), &registry->names());
}

TEST(PlanRegistry, DistinctModelsAndShapesDoNotAlias)
{
    auto registry = std::make_shared<PlanRegistry>();
    WorkloadBuilder mixtral(ModelSpec::mixtral8x7b(), registry);
    WorkloadBuilder mamba(ModelSpec::blackMamba2p8b(), registry);

    const StepPlan& sparse = mixtral.stepPlan(config(2, 64, true, 1));
    const StepPlan& dense = mixtral.stepPlan(config(2, 64, false, 1));
    const StepPlan& other = mamba.stepPlan(config(2, 64, true, 1));
    EXPECT_NE(&sparse, &dense);
    EXPECT_NE(&sparse, &other);
    EXPECT_EQ(registry->plansCompiled(), 3u);
}

TEST(PlanRegistry, RegistryBackedSimMatchesStandaloneBitExact)
{
    // Sharing plans must not change a single bit of any profile.
    auto registry = std::make_shared<PlanRegistry>();
    FineTuneSim shared(ModelSpec::mixtral8x7b(), GpuSpec::a40(), {},
                       registry);
    FineTuneSim standalone(ModelSpec::mixtral8x7b(), GpuSpec::a40());
    for (const RunConfig& c :
         {config(1, 128, true, 1), config(6, 256, false, 0)}) {
        const StepProfile a = shared.profileStep(c);
        const StepProfile b = standalone.profileStep(c);
        EXPECT_EQ(a.stepSeconds, b.stepSeconds);
        EXPECT_EQ(a.throughputQps, b.throughputQps);
        EXPECT_EQ(a.forwardSeconds, b.forwardSeconds);
        EXPECT_EQ(a.backwardSeconds, b.backwardSeconds);
    }
}

}  // namespace
}  // namespace ftsim
