/**
 * @file
 * Unit tests for the workload builder: kernel inventories and FLOP/byte
 * accounting for both model families.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/logging.hpp"
#include "gpusim/workload.hpp"

namespace ftsim {
namespace {

RunConfig
config(std::size_t batch = 1, std::size_t seq = 128, bool sparse = true)
{
    RunConfig c;
    c.batchSize = batch;
    c.seqLen = seq;
    c.sparse = sparse;
    return c;
}

std::set<std::string>
kernelNames(const std::vector<KernelDesc>& kernels)
{
    std::set<std::string> names;
    for (const auto& k : kernels)
        names.insert(k.name);
    return names;
}

TEST(Workload, MixtralForwardContainsPaperKernels)
{
    WorkloadBuilder builder(ModelSpec::mixtral8x7b());
    auto names = kernelNames(builder.buildForward(config()));
    // Fig. 6 (Mixtral): matmuls, dequants, softmax, topk, router.
    for (const char* expected :
         {"matmul(w1)", "matmul(w2)", "matmul(w3)", "w1_dequant",
          "w2_dequant", "w3_dequant", "softmax", "topk",
          "matmul(router)", "router_dequant", "matmul(lora)",
          "attention(flash)", "input_norm", "post_attn_norm"}) {
        EXPECT_TRUE(names.count(expected)) << expected;
    }
}

TEST(Workload, BlackMambaForwardContainsPaperKernels)
{
    WorkloadBuilder builder(ModelSpec::blackMamba2p8b());
    auto names = kernelNames(builder.buildForward(config()));
    // Fig. 6 (Mamba): matmul(w1), gelu, matmul(w2), elementwise_mult,
    // top_k, sigmoid, matmul(router) — plus the mamba-layer kernels.
    for (const char* expected :
         {"matmul(w1)", "gelu", "matmul(w2)", "elementwise_mult", "top_k",
          "sigmoid", "matmul(router)", "selective_scan", "conv1d",
          "rms_norm"}) {
        EXPECT_TRUE(names.count(expected)) << expected;
    }
    // No quantization kernels for fp16 full fine-tuning.
    EXPECT_FALSE(names.count("w1_dequant"));
    EXPECT_FALSE(names.count("matmul(w3)"));
}

TEST(Workload, CheckpointingDefaultsFollowStrategy)
{
    WorkloadBuilder mixtral(ModelSpec::mixtral8x7b());
    WorkloadBuilder mamba(ModelSpec::blackMamba2p8b());
    EXPECT_TRUE(mixtral.checkpointing(config()));
    EXPECT_FALSE(mamba.checkpointing(config()));
    RunConfig forced = config();
    forced.gradientCheckpointing = 0;
    EXPECT_FALSE(mixtral.checkpointing(forced));
}

TEST(Workload, CheckpointingAddsRecomputeKernels)
{
    WorkloadBuilder builder(ModelSpec::mixtral8x7b());
    RunConfig with = config();
    RunConfig without = config();
    without.gradientCheckpointing = 0;
    auto names = kernelNames(builder.buildStep(with));
    EXPECT_TRUE(names.count("matmul(w1) (recompute)"));
    auto names2 = kernelNames(builder.buildStep(without));
    EXPECT_FALSE(names2.count("matmul(w1) (recompute)"));
}

TEST(Workload, StepHasAllThreeStages)
{
    WorkloadBuilder builder(ModelSpec::blackMamba2p8b());
    auto kernels = builder.buildStep(config());
    bool fwd = false, bwd = false, opt = false;
    for (const auto& k : kernels) {
        fwd |= k.stage == Stage::Forward;
        bwd |= k.stage == Stage::Backward;
        opt |= k.stage == Stage::Optimizer;
    }
    EXPECT_TRUE(fwd);
    EXPECT_TRUE(bwd);
    EXPECT_TRUE(opt);
}

TEST(Workload, ExpertFlopsScaleWithSparsity)
{
    WorkloadBuilder builder(ModelSpec::mixtral8x7b());
    auto find_flops = [&](bool sparse) {
        for (const auto& k : builder.buildForward(config(1, 128, sparse)))
            if (k.name == "matmul(w1)")
                return k.flops * k.count;
        return 0.0;
    };
    // Dense activates 8 experts, sparse 2: 4x the expert FLOPs.
    EXPECT_NEAR(find_flops(false) / find_flops(true), 4.0, 1e-9);
}

TEST(Workload, DequantTrafficIsBatchIndependent)
{
    // The paper's observation that dequant cost does not scale with
    // batch: it processes weights, not activations.
    WorkloadBuilder builder(ModelSpec::mixtral8x7b());
    auto dequant_bytes = [&](std::size_t batch) {
        double total = 0.0;
        for (const auto& k : builder.buildForward(config(batch)))
            if (k.kind == KernelKind::Dequant)
                total += k.bytes * k.count;
        return total;
    };
    EXPECT_DOUBLE_EQ(dequant_bytes(1), dequant_bytes(16));
}

TEST(Workload, MatmulFlopsScaleLinearlyWithBatch)
{
    WorkloadBuilder builder(ModelSpec::mixtral8x7b());
    auto total_matmul_flops = [&](std::size_t batch) {
        double total = 0.0;
        for (const auto& k : builder.buildForward(config(batch)))
            if (k.kind == KernelKind::MatMul)
                total += k.flops * k.count;
        return total;
    };
    EXPECT_NEAR(total_matmul_flops(8) / total_matmul_flops(1), 8.0, 1e-6);
}

TEST(Workload, AttentionFlopsScaleQuadraticallyWithSeq)
{
    WorkloadBuilder builder(ModelSpec::mixtral8x7b());
    auto attn_flops = [&](std::size_t seq) {
        for (const auto& k : builder.buildForward(config(1, seq)))
            if (k.name == "attention(flash)")
                return k.flops;
        return 0.0;
    };
    // flops ~ N * T * d = B*T^2*d: doubling T quadruples.
    EXPECT_NEAR(attn_flops(256) / attn_flops(128), 4.0, 1e-9);
}

TEST(Workload, OptimizerWorkTracksTrainableParams)
{
    WorkloadBuilder mixtral(ModelSpec::mixtral8x7b());
    WorkloadBuilder mamba(ModelSpec::blackMamba2p8b());
    auto optimizer_bytes = [](const WorkloadBuilder& b) {
        double total = 0.0;
        RunConfig c;
        for (const auto& k : b.buildStep(c))
            if (k.stage == Stage::Optimizer)
                total += k.bytes * k.count;
        return total;
    };
    // BlackMamba full FT moves ~2.8B params of state; Mixtral's LoRA
    // state is ~230M params. Ratio > 10.
    EXPECT_GT(optimizer_bytes(mamba) / optimizer_bytes(mixtral), 10.0);
}

TEST(Workload, FullFtBackwardDoublesGemmFlops)
{
    WorkloadBuilder builder(ModelSpec::blackMamba2p8b());
    double fwd = 0.0, bwd = 0.0;
    for (const auto& k : builder.buildStep(config())) {
        if (k.name == "matmul(w1)")
            fwd += k.flops * k.count;
        if (k.name == "matmul(w1_bwd)")
            bwd += k.flops * k.count;
    }
    EXPECT_NEAR(bwd / fwd, 2.0, 1e-9);  // dX + dW.
}

TEST(Workload, ScanTilesScaleWithBatchNotSeq)
{
    // The Mamba scan parallelizes across batch x channels; sequence is
    // serial. Tiles must grow with batch and stay flat with seq.
    WorkloadBuilder builder(ModelSpec::blackMamba2p8b());
    auto scan_tiles = [&](std::size_t batch, std::size_t seq) {
        for (const auto& k : builder.buildForward(config(batch, seq)))
            if (k.name == "selective_scan")
                return k.tiles;
        return 0.0;
    };
    EXPECT_NEAR(scan_tiles(8, 128) / scan_tiles(1, 128), 8.0, 1e-9);
    EXPECT_DOUBLE_EQ(scan_tiles(1, 128), scan_tiles(1, 1024));
}

TEST(Workload, ZeroConfigIsFatal)
{
    WorkloadBuilder builder(ModelSpec::mixtral8x7b());
    RunConfig bad;
    bad.batchSize = 0;
    EXPECT_THROW(builder.buildForward(bad), FatalError);
}

}  // namespace
}  // namespace ftsim
