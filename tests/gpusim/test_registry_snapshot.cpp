/**
 * @file
 * PlanRegistry snapshot tests: the warm-start wire format.
 *
 * Two claims matter. First, fidelity: a plan that round-trips through
 * `saveRegistrySnapshot` / `loadRegistrySnapshot` must be
 * *bit-identical* to its donor — same keys, same SoA arrays, same
 * formula constants, same `evaluate()` output to the last ULP — and a
 * service warm-started from a snapshot must compile zero plans for the
 * donor's configs while answering byte-identically. Second, hostility:
 * snapshot bytes arrive over the wire, so truncation at any offset,
 * corruption anywhere, bad versions/magic/enums/lengths must all be
 * typed `InvalidArgument` rejections that leave the target registry
 * untouched — never UB, never a half-adopted load.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/base64.hpp"
#include "gpusim/plan_registry.hpp"
#include "gpusim/registry_snapshot.hpp"
#include "serve/plan_service.hpp"

namespace ftsim {
namespace {

/** A service that has compiled a few distinct plan shapes (both
 *  models, two datasets), ready to donate a snapshot. */
void
populate(PlanService& service)
{
    PlanRequest maxBatch;
    maxBatch.query = QueryKind::MaxBatch;
    maxBatch.gpu = "A40";
    EXPECT_TRUE(service.ask(maxBatch).ok);

    PlanRequest throughput;
    throughput.query = QueryKind::Throughput;
    throughput.gpu = "H100";
    throughput.scenario = Scenario::commonsense15k();
    EXPECT_TRUE(service.ask(throughput).ok);

    PlanRequest mamba;
    mamba.query = QueryKind::Throughput;
    mamba.gpu = "A40";
    mamba.scenario = Scenario::gsMath();
    mamba.scenario.withModel(ModelSpec::blackMamba2p8b());
    EXPECT_TRUE(service.ask(mamba).ok);
}

using PlanMap =
    std::map<std::string, std::shared_ptr<const StepPlan>>;

PlanMap
plansOf(const PlanRegistry& registry)
{
    PlanMap out;
    registry.forEachReadyPlan(
        [&out](const std::string& key,
               const std::shared_ptr<const StepPlan>& plan) {
            out.emplace(key, plan);
        });
    return out;
}

TEST(RegistrySnapshot, RoundTripIsBitIdentical)
{
    PlanService donor;
    populate(donor);
    const PlanRegistry& source = *donor.planRegistry();
    ASSERT_GT(source.plansCompiled(), 0u);

    const std::string bytes = saveRegistrySnapshot(source);
    PlanRegistry target;
    Result<SnapshotLoadInfo> info =
        loadRegistrySnapshot(target, bytes);
    ASSERT_TRUE(info.ok()) << info.error().message;
    EXPECT_EQ(info.value().plansLoaded, source.plansCompiled());
    EXPECT_EQ(info.value().plansSkipped, 0u);
    EXPECT_EQ(target.plansLoaded(), info.value().plansLoaded);
    EXPECT_EQ(target.plansCompiled(), 0u);

    const PlanMap donorPlans = plansOf(source);
    const PlanMap loadedPlans = plansOf(target);
    ASSERT_EQ(donorPlans.size(), loadedPlans.size());
    for (const auto& [key, donorPlan] : donorPlans) {
        auto it = loadedPlans.find(key);
        ASSERT_NE(it, loadedPlans.end()) << key;
        const StepPlan& a = *donorPlan;
        const StepPlan& b = *it->second;
        ASSERT_EQ(a.size(), b.size()) << key;
        EXPECT_EQ(a.activeExperts, b.activeExperts);
        EXPECT_EQ(a.nExperts, b.nExperts);
        for (std::size_t i = 0; i < a.size(); ++i) {
            // Name ids are interner-local; the spelling must agree.
            EXPECT_EQ(source.names().name(a.nameIds[i]),
                      target.names().name(b.nameIds[i]));
            EXPECT_EQ(a.kinds[i], b.kinds[i]);
            EXPECT_EQ(a.layers[i], b.layers[i]);
            EXPECT_EQ(a.stages[i], b.stages[i]);
            EXPECT_EQ(a.counts[i], b.counts[i]);
            EXPECT_EQ(a.efficiencies[i], b.efficiencies[i]);
            EXPECT_EQ(0, std::memcmp(&a.formulas[i], &b.formulas[i],
                                     sizeof(KernelFormula)));
        }
        // The re-derived aggregation tables evaluate identically:
        // bit-exact flops/bytes/tiles at several (batch, seq) points.
        EvaluatedStep ea;
        EvaluatedStep eb;
        for (const auto& [batch, seq] :
             {std::pair<std::size_t, std::size_t>{1, 128},
              {4, 512},
              {16, 4096}}) {
            a.evaluate(batch, seq, ea);
            b.evaluate(batch, seq, eb);
            ASSERT_EQ(ea.flops.size(), eb.flops.size());
            for (std::size_t i = 0; i < ea.flops.size(); ++i) {
                EXPECT_EQ(ea.flops[i], eb.flops[i]);
                EXPECT_EQ(ea.bytes[i], eb.bytes[i]);
                EXPECT_EQ(ea.tiles[i], eb.tiles[i]);
            }
        }
    }

    // Determinism: the same registry snapshots to the same bytes.
    EXPECT_EQ(bytes, saveRegistrySnapshot(source));
}

TEST(RegistrySnapshot, WarmStartedServiceCompilesZeroPlans)
{
    PlanService donor;
    populate(donor);
    const std::string bytes =
        saveRegistrySnapshot(*donor.planRegistry());

    PlanService warmed;
    Result<SnapshotLoadInfo> info =
        loadRegistrySnapshot(*warmed.planRegistry(), bytes);
    ASSERT_TRUE(info.ok()) << info.error().message;
    ASSERT_GT(info.value().plansLoaded, 0u);

    // Same traffic: every plan lookup hits the warm registry.
    populate(warmed);
    EXPECT_EQ(warmed.planRegistry()->plansCompiled(), 0u);
    EXPECT_GT(warmed.planRegistry()->planHits(), 0u);
    EXPECT_EQ(warmed.stats().plansLoaded, info.value().plansLoaded);

    // And the answers are byte-identical to the donor's.
    PlanRequest probe;
    probe.query = QueryKind::Throughput;
    probe.gpu = "H100";
    probe.scenario = Scenario::commonsense15k();
    EXPECT_EQ(writePlanResponse(donor.ask(probe)),
              writePlanResponse(warmed.ask(probe)));
}

TEST(RegistrySnapshot, LoadingTwiceSkipsKnownKeys)
{
    PlanService donor;
    populate(donor);
    const std::string bytes =
        saveRegistrySnapshot(*donor.planRegistry());

    PlanRegistry target;
    Result<SnapshotLoadInfo> first =
        loadRegistrySnapshot(target, bytes);
    ASSERT_TRUE(first.ok());
    Result<SnapshotLoadInfo> second =
        loadRegistrySnapshot(target, bytes);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.value().plansLoaded, 0u);
    EXPECT_EQ(second.value().plansSkipped,
              first.value().plansLoaded);
}

TEST(RegistrySnapshot, TruncationAtEveryRegionIsRejected)
{
    PlanService donor;
    populate(donor);
    const std::string bytes =
        saveRegistrySnapshot(*donor.planRegistry());
    ASSERT_GT(bytes.size(), 64u);

    // Every header offset, then a sweep across the payload (every
    // prefix would be thousands of loads; 97 is coprime with the
    // record sizes, so the cut lands in every field family).
    std::vector<std::size_t> cuts;
    for (std::size_t n = 0; n < 32; ++n)
        cuts.push_back(n);
    for (std::size_t n = 32; n < bytes.size(); n += 97)
        cuts.push_back(n);
    cuts.push_back(bytes.size() - 1);
    for (std::size_t n : cuts) {
        PlanRegistry target;
        Result<SnapshotLoadInfo> info =
            loadRegistrySnapshot(target, bytes.substr(0, n));
        EXPECT_FALSE(info.ok()) << "prefix of " << n << " bytes";
        if (!info.ok())
            EXPECT_EQ(info.error().code, ErrorCode::InvalidArgument);
        // All-or-nothing: the failed load adopted nothing.
        EXPECT_EQ(target.plansLoaded(), 0u);
        EXPECT_TRUE(plansOf(target).empty());
    }
}

TEST(RegistrySnapshot, CorruptionAnywhereIsRejected)
{
    PlanService donor;
    populate(donor);
    const std::string bytes =
        saveRegistrySnapshot(*donor.planRegistry());

    // Flip one bit at a sweep of offsets across header and payload.
    for (std::size_t offset = 0; offset < bytes.size();
         offset += 131) {
        std::string corrupt = bytes;
        corrupt[offset] = static_cast<char>(
            static_cast<unsigned char>(corrupt[offset]) ^ 0x20);
        PlanRegistry target;
        Result<SnapshotLoadInfo> info =
            loadRegistrySnapshot(target, corrupt);
        EXPECT_FALSE(info.ok()) << "offset " << offset;
        EXPECT_EQ(target.plansLoaded(), 0u);
    }

    // Trailing garbage breaks the declared length.
    PlanRegistry target;
    EXPECT_FALSE(loadRegistrySnapshot(target, bytes + "x").ok());
}

TEST(RegistrySnapshot, WrongVersionAndMagicAreRejected)
{
    PlanService donor;
    populate(donor);
    const std::string bytes =
        saveRegistrySnapshot(*donor.planRegistry());

    PlanRegistry target;
    EXPECT_FALSE(loadRegistrySnapshot(target, "").ok());
    EXPECT_FALSE(loadRegistrySnapshot(target, "FTSNAP").ok());
    EXPECT_FALSE(
        loadRegistrySnapshot(target, "not a snapshot at all").ok());

    std::string wrongMagic = bytes;
    wrongMagic[0] = 'X';
    Result<SnapshotLoadInfo> magic =
        loadRegistrySnapshot(target, wrongMagic);
    ASSERT_FALSE(magic.ok());
    EXPECT_NE(magic.error().message.find("magic"),
              std::string::npos);

    std::string wrongVersion = bytes;
    wrongVersion[6] = 99;  // u32 version starts after the magic.
    Result<SnapshotLoadInfo> version =
        loadRegistrySnapshot(target, wrongVersion);
    ASSERT_FALSE(version.ok());
    EXPECT_NE(version.error().message.find("version"),
              std::string::npos);
    EXPECT_EQ(target.plansLoaded(), 0u);
}

// ---- Hand-built snapshots: hostile field values behind a valid
// checksum (corruption tests can't reach these — the checksum fires
// first). The helpers mirror the writer's little-endian format.

void
putU8(std::string& out, std::uint8_t v)
{
    out += static_cast<char>(v);
}

void
putU32(std::string& out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

void
putU64(std::string& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

void
putF64(std::string& out, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

void
putStr(std::string& out, const std::string& s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out += s;
}

std::uint64_t
fnv1aRef(const std::string& bytes)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

/** Wraps @p payload in a valid FTSNAP v1 header. */
std::string
framed(const std::string& payload)
{
    std::string out = "FTSNAP";
    putU32(out, 1);
    putU64(out, payload.size());
    putU64(out, fnv1aRef(payload));
    return out + payload;
}

/** One plan, one kernel; @p mutate edits fields before framing. */
std::string
syntheticSnapshot(
    const std::function<void(std::string&)>& mutateKernelBytes =
        nullptr)
{
    std::string payload;
    putU32(payload, 1);  // plan count
    putStr(payload, "model|sparse=0|ckpt=0");
    putF64(payload, 2.0);  // activeExperts
    putF64(payload, 8.0);  // nExperts
    putU32(payload, 1);    // kernel count
    std::string kernel;
    putStr(kernel, "gemm_qkv");
    putU8(kernel, 0);  // kind
    putU8(kernel, 0);  // layer
    putU8(kernel, 0);  // stage
    putF64(kernel, 3.0);  // count
    putF64(kernel, 0.5);  // efficiency
    putU8(kernel, 0);  // eval
    putU8(kernel, 0);  // rows
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        putF64(kernel, v);
    if (mutateKernelBytes)
        mutateKernelBytes(kernel);
    return framed(payload + kernel);
}

TEST(RegistrySnapshot, SyntheticMinimalSnapshotLoads)
{
    PlanRegistry target;
    Result<SnapshotLoadInfo> info =
        loadRegistrySnapshot(target, syntheticSnapshot());
    ASSERT_TRUE(info.ok()) << info.error().message;
    EXPECT_EQ(info.value().plansLoaded, 1u);
    const PlanMap plans = plansOf(target);
    ASSERT_EQ(plans.size(), 1u);
    const StepPlan& plan = *plans.begin()->second;
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(target.names().name(plan.nameIds[0]), "gemm_qkv");
    EXPECT_EQ(plan.counts[0], 3.0);
    EXPECT_EQ(plan.formulas[0].e, 5.0);
}

TEST(RegistrySnapshot, OutOfRangeEnumBytesAreRejected)
{
    // Offsets within the kernel record: kind is right after the
    // length-prefixed name (4 + 8 bytes), then layer, stage.
    const std::size_t name_bytes = 4 + std::strlen("gemm_qkv");
    for (std::size_t enumOffset :
         {name_bytes, name_bytes + 1, name_bytes + 2}) {
        PlanRegistry target;
        Result<SnapshotLoadInfo> info = loadRegistrySnapshot(
            target, syntheticSnapshot([&](std::string& kernel) {
                kernel[enumOffset] = static_cast<char>(0xFF);
            }));
        ASSERT_FALSE(info.ok()) << "enum at offset " << enumOffset;
        EXPECT_NE(info.error().message.find("out-of-range"),
                  std::string::npos);
        EXPECT_EQ(target.plansLoaded(), 0u);
    }
}

TEST(RegistrySnapshot, HostileKernelCountIsRejectedBeforeAllocating)
{
    // planCount/kernelCount fields that promise far more data than
    // the payload holds must fail fast, not allocate gigabytes.
    std::string payload;
    putU32(payload, 1);
    putStr(payload, "k");
    putF64(payload, 1.0);
    putF64(payload, 1.0);
    putU32(payload, 0xFFFFFFFFu);  // 4 billion kernels, 0 bytes left.
    PlanRegistry target;
    Result<SnapshotLoadInfo> info =
        loadRegistrySnapshot(target, framed(payload));
    ASSERT_FALSE(info.ok());
    EXPECT_NE(info.error().message.find("kernel count"),
              std::string::npos);
}

TEST(RegistrySnapshot, EmptyPlanKeyIsRejected)
{
    std::string payload;
    putU32(payload, 1);
    putStr(payload, "");
    PlanRegistry target;
    EXPECT_FALSE(loadRegistrySnapshot(target, framed(payload)).ok());
}

TEST(RegistrySnapshot, EmptyRegistrySnapshotsAndLoads)
{
    PlanRegistry empty;
    const std::string bytes = saveRegistrySnapshot(empty);
    PlanRegistry target;
    Result<SnapshotLoadInfo> info =
        loadRegistrySnapshot(target, bytes);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info.value().plansLoaded, 0u);
}

// ---- Base64 (the snapshot's wire armor) ------------------------------

TEST(Base64, RoundTripsBinary)
{
    std::string bytes;
    for (int i = 0; i < 257; ++i)
        bytes += static_cast<char>(i * 31 % 256);
    for (std::size_t n : {std::size_t{0}, std::size_t{1},
                          std::size_t{2}, std::size_t{3},
                          bytes.size()}) {
        const std::string encoded =
            base64Encode(std::string_view(bytes).substr(0, n));
        Result<std::string> decoded = base64Decode(encoded);
        ASSERT_TRUE(decoded.ok()) << n;
        EXPECT_EQ(decoded.value(), bytes.substr(0, n));
    }
    EXPECT_EQ(base64Encode("foob"), "Zm9vYg==");
    EXPECT_EQ(base64Encode("foobar"), "Zm9vYmFy");
}

TEST(Base64, RejectsMalformedInput)
{
    EXPECT_FALSE(base64Decode("Zm9vY").ok());    // Bad length.
    EXPECT_FALSE(base64Decode("Zm9v!mFy").ok());  // Bad character.
    EXPECT_FALSE(base64Decode("Zm==9v").ok());    // Padding inside.
    EXPECT_FALSE(base64Decode("====").ok());
    EXPECT_TRUE(base64Decode("").ok());
}

}  // namespace
}  // namespace ftsim
