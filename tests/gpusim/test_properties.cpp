/**
 * @file
 * Cross-configuration property sweeps over the simulator and analytical
 * models: invariants that must hold for EVERY (model, GPU, sparsity,
 * sequence length) combination, not just the paper's configurations.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/pipeline.hpp"
#include "gpusim/finetune_sim.hpp"
#include "gpusim/memory_model.hpp"

namespace ftsim {
namespace {

/** (mixtral?, gpu index, sparse?, seq len). */
using Config = std::tuple<bool, int, bool, std::size_t>;

ModelSpec
modelOf(const Config& c)
{
    return std::get<0>(c) ? ModelSpec::mixtral8x7b()
                          : ModelSpec::blackMamba2p8b();
}

GpuSpec
gpuOf(const Config& c)
{
    return GpuSpec::paperGpus()[static_cast<std::size_t>(std::get<1>(c))];
}

class SimSweep : public ::testing::TestWithParam<Config> {};

TEST_P(SimSweep, StepTimeIsMonotonicInBatch)
{
    const Config& c = GetParam();
    FineTuneSim sim(modelOf(c), gpuOf(c));
    double prev = 0.0;
    for (std::size_t batch : {1u, 2u, 4u, 8u, 16u}) {
        RunConfig config;
        config.batchSize = batch;
        config.seqLen = std::get<3>(c);
        config.sparse = std::get<2>(c);
        double t = sim.stepSeconds(config);
        EXPECT_GE(t, prev) << "batch " << batch;
        prev = t;
    }
}

TEST_P(SimSweep, StepTimeIsMonotonicInSeqLen)
{
    const Config& c = GetParam();
    FineTuneSim sim(modelOf(c), gpuOf(c));
    double prev = 0.0;
    for (std::size_t seq : {32u, 64u, 128u, 256u}) {
        RunConfig config;
        config.batchSize = 4;
        config.seqLen = seq;
        config.sparse = std::get<2>(c);
        double t = sim.stepSeconds(config);
        EXPECT_GE(t, prev) << "seq " << seq;
        prev = t;
    }
}

TEST_P(SimSweep, DenseNeverFasterThanSparse)
{
    const Config& c = GetParam();
    FineTuneSim sim(modelOf(c), gpuOf(c));
    for (std::size_t batch : {1u, 4u, 16u}) {
        RunConfig sparse_cfg;
        sparse_cfg.batchSize = batch;
        sparse_cfg.seqLen = std::get<3>(c);
        sparse_cfg.sparse = true;
        RunConfig dense_cfg = sparse_cfg;
        dense_cfg.sparse = false;
        EXPECT_LE(sim.stepSeconds(sparse_cfg),
                  sim.stepSeconds(dense_cfg) * 1.001)
            << "batch " << batch;
    }
}

TEST_P(SimSweep, ProfileTotalsAreConsistent)
{
    const Config& c = GetParam();
    FineTuneSim sim(modelOf(c), gpuOf(c));
    RunConfig config;
    config.batchSize = 4;
    config.seqLen = std::get<3>(c);
    config.sparse = std::get<2>(c);
    StepProfile p = sim.profileStep(config);
    EXPECT_GT(p.forwardSeconds, 0.0);
    EXPECT_GT(p.backwardSeconds, 0.0);
    EXPECT_GT(p.optimizerSeconds, 0.0);
    double layer_total = 0.0;
    for (const auto& layer : p.byLayer)
        layer_total += layer.seconds;
    EXPECT_NEAR(layer_total,
                p.forwardSeconds + p.backwardSeconds + p.optimizerSeconds,
                1e-9);
    // Utilizations bounded on every configuration.
    for (const auto& k : p.moeKernels) {
        EXPECT_GE(k.smUtilPct, 0.0);
        EXPECT_LE(k.smUtilPct, 100.0);
        EXPECT_GE(k.dramUtilPct, 0.0);
        EXPECT_LE(k.dramUtilPct, 100.0);
    }
}

TEST_P(SimSweep, MaxBatchRespectsCapacityOrdering)
{
    // Bigger-memory GPUs never fit fewer queries (same compute family
    // assumption does not matter for the memory model).
    const Config& c = GetParam();
    const ModelSpec model = modelOf(c);
    const std::size_t seq = std::get<3>(c);
    const bool sparse = std::get<2>(c);
    const int at40 = MemoryModel::maxBatchSize(model, GpuSpec::a100_40(),
                                               seq, sparse);
    const int at48 =
        MemoryModel::maxBatchSize(model, GpuSpec::a40(), seq, sparse);
    const int at80 = MemoryModel::maxBatchSize(model, GpuSpec::a100_80(),
                                               seq, sparse);
    EXPECT_LE(at40, at48);
    EXPECT_LE(at48, at80);
}

TEST_P(SimSweep, PaddingNeverIncreasesThroughput)
{
    const Config& c = GetParam();
    FineTuneSim sim(modelOf(c), gpuOf(c));
    const std::size_t seq = std::get<3>(c);
    const bool sparse = std::get<2>(c);
    for (std::size_t batch : {2u, 8u}) {
        EXPECT_LE(sim.throughput(batch, seq, sparse, 0.45),
                  sim.throughput(batch, seq, sparse, 0.0) * 1.001);
    }
}

std::string
configName(const ::testing::TestParamInfo<Config>& info)
{
    const Config& c = info.param;
    std::string name = std::get<0>(c) ? "Mixtral_" : "BlackMamba_";
    name += GpuSpec::paperGpus()[static_cast<std::size_t>(std::get<1>(c))]
                .name;
    name += std::get<2>(c) ? "_sparse" : "_dense";
    name += "_seq" + std::to_string(std::get<3>(c));
    for (char& ch : name)
        if (ch == '-')
            ch = '_';
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SimSweep,
    ::testing::Combine(::testing::Bool(),              // model
                       ::testing::Values(0, 3),        // A40, H100
                       ::testing::Bool(),              // sparse
                       ::testing::Values(79u, 174u)),  // seq len
    configName);

// --- Analytical-model sweeps across every GPU --------------------------

class GpuSweep : public ::testing::TestWithParam<int> {};

TEST_P(GpuSweep, ThroughputFitHoldsOnEveryGpu)
{
    const GpuSpec gpu =
        GpuSpec::paperGpus()[static_cast<std::size_t>(GetParam())];
    // BlackMamba fits everywhere; Mixtral skips dense on A100-40GB
    // internally.
    ThroughputFit fit = ExperimentPipeline::fitThroughput(
        ModelSpec::blackMamba2p8b(), gpu, 79, {}, 0.45);
    double max_qps = 0.0;
    for (const auto& obs : fit.observations)
        max_qps = std::max(max_qps, obs.qps);
    EXPECT_LT(fit.rmse, std::max(0.8, 0.10 * max_qps)) << gpu.name;
    // C2 > 0: throughput must grow with batch on every device.
    EXPECT_GT(fit.model.c2(), 0.0) << gpu.name;
}

INSTANTIATE_TEST_SUITE_P(AllGpus, GpuSweep, ::testing::Values(0, 1, 2, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                             std::string n =
                                 GpuSpec::paperGpus()
                                     [static_cast<std::size_t>(info.param)]
                                         .name;
                             for (char& ch : n)
                                 if (ch == '-')
                                     ch = '_';
                             return n;
                         });

}  // namespace
}  // namespace ftsim
