/**
 * @file
 * Unit tests for experts and the MoE layer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "models/moe.hpp"
#include "tensor/ops.hpp"

namespace ftsim {
namespace {

MiniModelConfig
tinyConfig(ExpertKind kind = ExpertKind::SwiGLU, bool lora = false)
{
    MiniModelConfig cfg;
    cfg.dModel = 12;
    cfg.dFf = 24;
    cfg.nExperts = 4;
    cfg.topK = 2;
    cfg.expertKind = kind;
    cfg.useLora = lora;
    cfg.loraRank = 2;
    return cfg;
}

TEST(Expert, SwiGLUHasThreeProjections)
{
    Rng rng(1);
    Expert e(ExpertKind::SwiGLU, 12, 24, rng, false, 2, 4.0);
    // w1 [24,12] + w2 [12,24] + w3 [24,12].
    EXPECT_EQ(e.numParameters(), 3u * 12u * 24u);
}

TEST(Expert, GeluHasTwoProjections)
{
    Rng rng(2);
    Expert e(ExpertKind::Gelu, 12, 24, rng, false, 2, 4.0);
    EXPECT_EQ(e.numParameters(), 2u * 12u * 24u);
}

TEST(Expert, ForwardShape)
{
    Rng rng(3);
    Expert e(ExpertKind::SwiGLU, 12, 24, rng, false, 2, 4.0);
    Tensor x = Tensor::randn({5, 12}, rng);
    EXPECT_EQ(e.forward(x).shape(), Shape({5, 12}));
}

TEST(MoELayer, OutputShapeMatchesInput)
{
    Rng rng(4);
    MoELayer moe(tinyConfig(), rng);
    Tensor x = Tensor::randn({7, 12}, rng);
    EXPECT_EQ(moe.forward(x, 2).shape(), Shape({7, 12}));
}

TEST(MoELayer, DenseEqualsTopKEqualsExperts)
{
    // With top_k == nExperts every expert processes every token.
    Rng rng(5);
    MoELayer moe(tinyConfig(), rng);
    Tensor x = Tensor::randn({3, 12}, rng);
    moe.forward(x, 4);
    for (std::size_t c : moe.router().cumulativeCounts())
        EXPECT_EQ(c, 3u);
}

TEST(MoELayer, SparseOutputDiffersFromDense)
{
    Rng rng(6);
    MoELayer moe(tinyConfig(), rng);
    Tensor x = Tensor::randn({4, 12}, rng);
    Tensor sparse = moe.forward(x, 2);
    Tensor dense = moe.forward(x, 4);
    double diff = 0.0;
    for (std::size_t i = 0; i < sparse.numel(); ++i)
        diff += std::abs(sparse.data()[i] - dense.data()[i]);
    EXPECT_GT(diff, 1e-9);
}

TEST(MoELayer, GradientsFlowToRoutedExpertsOnly)
{
    Rng rng(7);
    MiniModelConfig cfg = tinyConfig();
    MoELayer moe(cfg, rng);
    Tensor x = Tensor::randn({1, 12}, rng);  // One token, top-2 of 4.
    Tensor y = moe.forward(x, 2);
    sumAll(mul(y, y)).backward();

    const auto& counts = moe.router().cumulativeCounts();
    // Exactly two experts were routed; only they receive gradients on w1.
    // (The shared router always receives gradient.)
    auto named = moe.namedParameters();
    for (const auto& np : named) {
        if (np.name.find("experts.") == std::string::npos ||
            np.name.find("w1.weight") == std::string::npos)
            continue;
        const std::size_t expert_id =
            static_cast<std::size_t>(np.name[8] - '0');
        bool has_nonzero_grad = false;
        if (np.tensor.hasGrad()) {
            for (Scalar g : np.tensor.impl()->grad)
                has_nonzero_grad |= g != 0.0;
        }
        EXPECT_EQ(has_nonzero_grad, counts[expert_id] > 0)
            << "expert " << expert_id;
    }
}

TEST(MoELayer, QloraOnlyTrainsAdapters)
{
    Rng rng(8);
    MiniModelConfig cfg = tinyConfig(ExpertKind::SwiGLU, /*lora=*/true);
    MoELayer moe(cfg, rng);
    // Trainable = adapters on 3 projections x 4 experts + router pair.
    const std::size_t per_pair_w1 = 2 * (12 + 24);  // rank 2.
    const std::size_t expert_adapters = 3 * per_pair_w1 * 4;
    const std::size_t router_adapters = 2 * (12 + 4);
    EXPECT_EQ(moe.numTrainableParameters(),
              expert_adapters + router_adapters);
}

TEST(MoELayer, EveryTokenIsRepresented)
{
    // The scatter/gather plumbing must cover all tokens: output rows
    // where the token went to experts must be nonzero in general.
    Rng rng(9);
    MoELayer moe(tinyConfig(), rng);
    Tensor x = Tensor::randn({16, 12}, rng);
    Tensor y = moe.forward(x, 2);
    for (std::size_t r = 0; r < 16; ++r) {
        double row_norm = 0.0;
        for (std::size_t c = 0; c < 12; ++c)
            row_norm += std::abs(y.at({r, c}));
        EXPECT_GT(row_norm, 0.0) << "token " << r << " lost";
    }
}

TEST(MoELayer, RejectsNon2DInput)
{
    Rng rng(10);
    MoELayer moe(tinyConfig(), rng);
    Tensor x = Tensor::randn({2, 3, 12}, rng);
    EXPECT_THROW(moe.forward(x, 2), FatalError);
}

}  // namespace
}  // namespace ftsim
