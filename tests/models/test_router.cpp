/**
 * @file
 * Unit tests for the top-k gating router (Fig. 12 semantics).
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "models/router.hpp"
#include "tensor/ops.hpp"

namespace ftsim {
namespace {

TEST(Router, AssignsEveryTokenToKExperts)
{
    Rng rng(1);
    Router router(16, 8, rng);
    Tensor x = Tensor::randn({10, 16}, rng);
    RoutingInfo info = router.route(x, 2);
    EXPECT_EQ(info.experts.size(), 20u);
    EXPECT_EQ(info.weights.shape(), Shape({10, 2}));
    std::size_t total = std::accumulate(info.tokensPerExpert.begin(),
                                        info.tokensPerExpert.end(),
                                        std::size_t{0});
    EXPECT_EQ(total, 20u);
}

TEST(Router, WeightsAreNormalizedAndPositive)
{
    Rng rng(2);
    Router router(16, 8, rng);
    Tensor x = Tensor::randn({6, 16}, rng);
    RoutingInfo info = router.route(x, 2);
    for (std::size_t r = 0; r < 6; ++r) {
        Scalar sum = 0.0;
        for (std::size_t j = 0; j < 2; ++j) {
            Scalar w = info.weights.at({r, j});
            EXPECT_GT(w, 0.0);
            sum += w;
        }
        EXPECT_NEAR(sum, 1.0, 1e-12);
    }
}

TEST(Router, TopOneWeightIsOne)
{
    Rng rng(3);
    Router router(8, 4, rng);
    Tensor x = Tensor::randn({5, 8}, rng);
    RoutingInfo info = router.route(x, 1);
    for (std::size_t r = 0; r < 5; ++r)
        EXPECT_NEAR(info.weights.at({r, 0}), 1.0, 1e-12);
}

TEST(Router, DenseModeUsesAllExperts)
{
    Rng rng(4);
    Router router(8, 4, rng);
    Tensor x = Tensor::randn({3, 8}, rng);
    RoutingInfo info = router.route(x, 4);
    for (std::size_t e = 0; e < 4; ++e)
        EXPECT_EQ(info.tokensPerExpert[e], 3u);
}

TEST(Router, CumulativeStatsAccumulateAndReset)
{
    Rng rng(5);
    Router router(8, 4, rng);
    Tensor x = Tensor::randn({4, 8}, rng);
    router.route(x, 2);
    router.route(x, 2);
    EXPECT_EQ(router.totalAssignments(), 16u);
    std::size_t total = std::accumulate(
        router.cumulativeCounts().begin(),
        router.cumulativeCounts().end(), std::size_t{0});
    EXPECT_EQ(total, 16u);
    router.resetStats();
    EXPECT_EQ(router.totalAssignments(), 0u);
    for (std::size_t c : router.cumulativeCounts())
        EXPECT_EQ(c, 0u);
}

TEST(Router, InvalidTopKIsFatal)
{
    Rng rng(6);
    Router router(8, 4, rng);
    Tensor x = Tensor::randn({2, 8}, rng);
    EXPECT_THROW(router.route(x, 0), FatalError);
    EXPECT_THROW(router.route(x, 5), FatalError);
}

TEST(Router, AuxLossIsProducedWhenEnabled)
{
    Rng rng(7);
    Router router(8, 4, rng, false, 4, /*aux_loss_weight=*/0.01);
    Tensor x = Tensor::randn({6, 8}, rng);
    RoutingInfo info = router.route(x, 2);
    ASSERT_TRUE(info.auxLoss.defined());
    // Switch aux loss is >= weight (it equals weight when perfectly
    // balanced, larger when imbalanced).
    EXPECT_GE(info.auxLoss.item(), 0.01 - 1e-9);
}

TEST(Router, AuxLossAbsentByDefault)
{
    Rng rng(8);
    Router router(8, 4, rng);
    Tensor x = Tensor::randn({3, 8}, rng);
    EXPECT_FALSE(router.route(x, 2).auxLoss.defined());
}

TEST(Router, QloraRouterHasTrainableAdapters)
{
    Rng rng(9);
    Router router(16, 8, rng, /*use_lora=*/true, /*lora_rank=*/4);
    // Adapter params only: A [4,16] + B [8,4].
    EXPECT_EQ(router.numTrainableParameters(), 4u * 16u + 8u * 4u);
}

TEST(Router, RoutingIsDeterministic)
{
    Rng rng1(10);
    Rng rng2(10);
    Router r1(8, 4, rng1);
    Router r2(8, 4, rng2);
    Rng xr(11);
    Tensor x = Tensor::randn({5, 8}, xr);
    EXPECT_EQ(r1.route(x, 2).experts, r2.route(x, 2).experts);
}

}  // namespace
}  // namespace ftsim
