/**
 * @file
 * Unit tests for causal self-attention.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "models/attention.hpp"
#include "tensor/ops.hpp"

namespace ftsim {
namespace {

TEST(Attention, OutputShape)
{
    Rng rng(1);
    CausalSelfAttention attn(16, 4, rng);
    Tensor x = Tensor::randn({2, 5, 16}, rng);
    EXPECT_EQ(attn.forward(x).shape(), Shape({2, 5, 16}));
}

TEST(Attention, CausalityHoldsExactly)
{
    // Changing a *future* token must not alter earlier outputs.
    Rng rng(2);
    CausalSelfAttention attn(8, 2, rng);
    Tensor x = Tensor::randn({1, 4, 8}, rng);
    Tensor y1 = attn.forward(x).detach();

    Tensor x2 = x.clone();
    for (std::size_t c = 0; c < 8; ++c)
        x2.data()[3 * 8 + c] += 5.0;  // Perturb the last position only.
    Tensor y2 = attn.forward(x2).detach();

    for (std::size_t t = 0; t < 3; ++t)
        for (std::size_t c = 0; c < 8; ++c)
            EXPECT_NEAR(y1.at({0, t, c}), y2.at({0, t, c}), 1e-12)
                << "position " << t << " saw the future";
    // The perturbed position itself must change.
    double diff = 0.0;
    for (std::size_t c = 0; c < 8; ++c)
        diff += std::abs(y1.at({0, 3, c}) - y2.at({0, 3, c}));
    EXPECT_GT(diff, 1e-6);
}

TEST(Attention, BatchIndependence)
{
    // Each batch element is processed independently.
    Rng rng(3);
    CausalSelfAttention attn(8, 2, rng);
    Tensor a = Tensor::randn({1, 3, 8}, rng);
    Tensor b = Tensor::randn({1, 3, 8}, rng);
    Tensor both = Tensor::zeros({2, 3, 8});
    std::copy(a.data().begin(), a.data().end(), both.data().begin());
    std::copy(b.data().begin(), b.data().end(),
              both.data().begin() + 24);
    Tensor y_both = attn.forward(both).detach();
    Tensor y_a = attn.forward(a).detach();
    for (std::size_t i = 0; i < 24; ++i)
        EXPECT_NEAR(y_both.data()[i], y_a.data()[i], 1e-12);
}

TEST(Attention, ParameterCount)
{
    Rng rng(4);
    CausalSelfAttention attn(16, 4, rng);
    EXPECT_EQ(attn.numParameters(), 4u * 16u * 16u);
}

TEST(Attention, FrozenVariantHasNoTrainables)
{
    Rng rng(5);
    CausalSelfAttention attn(16, 4, rng, /*frozen=*/true);
    EXPECT_EQ(attn.numTrainableParameters(), 0u);
}

TEST(Attention, GradientFlowsToProjections)
{
    Rng rng(6);
    CausalSelfAttention attn(8, 2, rng);
    Tensor x = Tensor::randn({1, 3, 8}, rng);
    sumAll(attn.forward(x)).backward();
    for (auto& p : attn.parameters())
        EXPECT_TRUE(p.hasGrad());
}

TEST(Attention, InvalidConfigIsFatal)
{
    Rng rng(7);
    EXPECT_THROW(CausalSelfAttention(10, 3, rng), FatalError);
    EXPECT_THROW(CausalSelfAttention(8, 0, rng), FatalError);
}

TEST(Attention, RejectsNon3DInput)
{
    Rng rng(8);
    CausalSelfAttention attn(8, 2, rng);
    EXPECT_THROW(attn.forward(Tensor::zeros({3, 8})), FatalError);
}

}  // namespace
}  // namespace ftsim
