/**
 * @file
 * Unit tests for the full miniature MoE language model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "models/model.hpp"
#include "tensor/ops.hpp"

namespace ftsim {
namespace {

MiniModelConfig
smallMixtral()
{
    MiniModelConfig cfg = MiniModelConfig::miniMixtral();
    cfg.vocab = 32;
    cfg.dModel = 16;
    cfg.nLayers = 2;
    cfg.nHeads = 2;
    cfg.dFf = 32;
    cfg.nExperts = 4;
    cfg.topK = 2;
    cfg.loraRank = 2;
    return cfg;
}

MiniModelConfig
smallMamba()
{
    MiniModelConfig cfg = MiniModelConfig::miniBlackMamba();
    cfg.vocab = 32;
    cfg.dModel = 16;
    cfg.nLayers = 2;
    cfg.dFf = 32;
    cfg.dInner = 32;
    cfg.nExperts = 4;
    cfg.topK = 2;
    return cfg;
}

TEST(MoeLlm, MixtralLogitsShape)
{
    MoeLlm model(smallMixtral());
    std::vector<int> ids(2 * 6, 1);
    EXPECT_EQ(model.logits(ids, 2, 6).shape(), Shape({12, 32}));
}

TEST(MoeLlm, MambaLogitsShape)
{
    MoeLlm model(smallMamba());
    std::vector<int> ids(2 * 6, 1);
    EXPECT_EQ(model.logits(ids, 2, 6).shape(), Shape({12, 32}));
}

TEST(MoeLlm, LossIsFiniteAndNearUniformAtInit)
{
    MoeLlm model(smallMixtral());
    std::vector<int> ids(8, 1);
    std::vector<int> targets(8, 3);
    Tensor loss = model.loss(ids, targets, 1, 8);
    EXPECT_TRUE(std::isfinite(loss.item()));
    // Random init -> near-uniform predictions -> loss ~ ln(vocab).
    EXPECT_NEAR(loss.item(), std::log(32.0), 1.0);
}

TEST(MoeLlm, QloraFreezesBackbone)
{
    MoeLlm model(smallMixtral());
    // All trainables must be LoRA adapters.
    for (const auto& np : model.namedParameters()) {
        if (np.tensor.requiresGrad()) {
            EXPECT_NE(np.name.find("lora"), std::string::npos)
                << np.name << " is trainable but not a LoRA adapter";
        }
    }
    EXPECT_GT(model.numTrainableParameters(), 0u);
    // Quantized base matrices live outside the tensor registry, so the
    // denominator counts only norms/embeddings/attention + adapters; the
    // adapters must still be a minority.
    EXPECT_LT(model.numTrainableParameters(), model.numParameters());
}

TEST(MoeLlm, FullFineTuneTrainsEverything)
{
    MoeLlm model(smallMamba());
    EXPECT_EQ(model.numParameters(), model.numTrainableParameters());
}

TEST(MoeLlm, RoutersExposedPerLayer)
{
    MoeLlm model(smallMixtral());
    EXPECT_EQ(model.routers().size(), 2u);
}

TEST(MoeLlm, SetTopKSwitchesSparsity)
{
    MoeLlm model(smallMixtral());
    EXPECT_EQ(model.topK(), 2u);
    model.setTopK(4);
    std::vector<int> ids(6, 1);
    model.resetRouterStats();
    (void)model.logits(ids, 1, 6);
    // Dense: every expert sees every token in every layer.
    for (std::size_t c : model.routers()[0]->cumulativeCounts())
        EXPECT_EQ(c, 6u);
    EXPECT_THROW(model.setTopK(5), FatalError);
    EXPECT_THROW(model.setTopK(0), FatalError);
}

TEST(MoeLlm, DeterministicForSameSeed)
{
    MoeLlm m1(smallMixtral());
    MoeLlm m2(smallMixtral());
    std::vector<int> ids(6, 2);
    Tensor l1 = m1.logits(ids, 1, 6);
    Tensor l2 = m2.logits(ids, 1, 6);
    for (std::size_t i = 0; i < l1.numel(); ++i)
        EXPECT_DOUBLE_EQ(l1.data()[i], l2.data()[i]);
}

TEST(MoeLlm, IdCountMismatchIsFatal)
{
    MoeLlm model(smallMixtral());
    std::vector<int> ids(5, 1);
    EXPECT_THROW(model.logits(ids, 1, 6), FatalError);
}

TEST(MoeLlm, AuxLossIncreasesTotalLoss)
{
    MiniModelConfig cfg = smallMixtral();
    std::vector<int> ids(8, 1);
    std::vector<int> targets(8, 3);

    MoeLlm base(cfg);
    double base_loss = base.loss(ids, targets, 1, 8).item();

    cfg.auxLossWeight = 0.1;
    MoeLlm with_aux(cfg);
    double aux_loss = with_aux.loss(ids, targets, 1, 8).item();
    // Same seed, same logits; aux term strictly adds.
    EXPECT_GT(aux_loss, base_loss);
}

TEST(MoeLlm, OneTrainingStepReducesLoss)
{
    MoeLlm model(smallMamba());
    std::vector<int> ids = {1, 5, 9, 5, 1, 5, 9, 5};
    std::vector<int> targets = {5, 9, 5, 1, 5, 9, 5, 1};

    Tensor loss0 = model.loss(ids, targets, 1, 8);
    double before = loss0.item();
    model.zeroGrad();
    loss0.backward();
    for (auto& p : model.trainableParameters())
        for (std::size_t i = 0; i < p.numel(); ++i)
            p.data()[i] -= 0.01 * p.grad()[i];
    double after = model.loss(ids, targets, 1, 8).item();
    EXPECT_LT(after, before);
}

}  // namespace
}  // namespace ftsim
