/**
 * @file
 * Unit tests for the selective state-space (Mamba) layer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "models/mamba.hpp"
#include "tensor/ops.hpp"

namespace ftsim {
namespace {

TEST(Mamba, OutputShape)
{
    Rng rng(1);
    MambaLayer mamba(12, 24, 4, rng);
    Tensor x = Tensor::randn({2, 5, 12}, rng);
    EXPECT_EQ(mamba.forward(x).shape(), Shape({2, 5, 12}));
}

TEST(Mamba, CausalityHolds)
{
    // The recurrence plus causal conv must not leak the future.
    Rng rng(2);
    MambaLayer mamba(8, 16, 4, rng);
    Tensor x = Tensor::randn({1, 5, 8}, rng);
    Tensor y1 = mamba.forward(x).detach();

    Tensor x2 = x.clone();
    for (std::size_t c = 0; c < 8; ++c)
        x2.data()[4 * 8 + c] += 3.0;  // Perturb the final position.
    Tensor y2 = mamba.forward(x2).detach();

    for (std::size_t t = 0; t < 4; ++t)
        for (std::size_t c = 0; c < 8; ++c)
            EXPECT_NEAR(y1.at({0, t, c}), y2.at({0, t, c}), 1e-12)
                << "position " << t << " saw the future";
}

TEST(Mamba, StateCarriesInformationForward)
{
    // Perturbing an *early* token must influence later outputs (the
    // whole point of the recurrent state).
    Rng rng(3);
    MambaLayer mamba(8, 16, 4, rng);
    Tensor x = Tensor::randn({1, 6, 8}, rng);
    Tensor y1 = mamba.forward(x).detach();
    Tensor x2 = x.clone();
    for (std::size_t c = 0; c < 8; ++c)
        x2.data()[c] += 2.0;  // Perturb position 0.
    Tensor y2 = mamba.forward(x2).detach();
    double late_diff = 0.0;
    for (std::size_t c = 0; c < 8; ++c)
        late_diff += std::abs(y1.at({0, 5, c}) - y2.at({0, 5, c}));
    EXPECT_GT(late_diff, 1e-9);
}

TEST(Mamba, AllParametersTrainable)
{
    // BlackMamba is fully fine-tuned; nothing may be frozen.
    Rng rng(4);
    MambaLayer mamba(12, 24, 4, rng);
    EXPECT_EQ(mamba.numParameters(), mamba.numTrainableParameters());
    EXPECT_GT(mamba.numParameters(), 0u);
}

TEST(Mamba, ParameterCountClosedForm)
{
    Rng rng(5);
    const std::size_t d = 12, di = 24, k = 4;
    MambaLayer mamba(d, di, k, rng);
    const std::size_t expected = d * 2 * di     // in_proj
                                 + di * di      // a_proj
                                 + di * d       // out_proj
                                 + k * di;      // conv
    EXPECT_EQ(mamba.numParameters(), expected);
}

TEST(Mamba, GradientFlowsThroughScan)
{
    Rng rng(6);
    MambaLayer mamba(8, 16, 4, rng);
    Tensor x = Tensor::randn({1, 4, 8}, rng, 1.0, true);
    sumAll(mamba.forward(x)).backward();
    EXPECT_TRUE(x.hasGrad());
    bool any_nonzero = false;
    for (Scalar g : x.grad())
        any_nonzero |= g != 0.0;
    EXPECT_TRUE(any_nonzero);
    for (auto& p : mamba.parameters())
        EXPECT_TRUE(p.hasGrad());
}

TEST(Mamba, RejectsBadInput)
{
    Rng rng(7);
    MambaLayer mamba(8, 16, 4, rng);
    EXPECT_THROW(mamba.forward(Tensor::zeros({4, 8})), FatalError);
    EXPECT_THROW(MambaLayer(8, 0, 4, rng), FatalError);
}

}  // namespace
}  // namespace ftsim
