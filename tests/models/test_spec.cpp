/**
 * @file
 * Unit tests for the full-size model specs — these pin Table I of the
 * paper: Mixtral 47B / 23.35 GB, BlackMamba 2.8B / 5.6 GB, 32/18 layers,
 * 8 experts.
 */

#include <gtest/gtest.h>

#include "models/spec.hpp"

namespace ftsim {
namespace {

TEST(ModelSpec, MixtralMatchesTableI)
{
    ModelSpec spec = ModelSpec::mixtral8x7b();
    // ~47B parameters (Table I) derived from architecture, not stored.
    EXPECT_NEAR(static_cast<double>(spec.totalParams()), 46.7e9, 0.5e9);
    // 23.35 GB at 4 bits/weight (Table I memory consumption).
    EXPECT_NEAR(spec.weightMemoryBytes() / 1e9, 23.35, 0.3);
    EXPECT_EQ(spec.nLayers, 32u);
    EXPECT_EQ(spec.nExperts, 8u);
    EXPECT_EQ(spec.topKSparse, 2u);
}

TEST(ModelSpec, BlackMambaMatchesTableI)
{
    ModelSpec spec = ModelSpec::blackMamba2p8b();
    EXPECT_NEAR(static_cast<double>(spec.totalParams()), 2.8e9, 0.1e9);
    // 5.6 GB at fp16 (Table I).
    EXPECT_NEAR(spec.weightMemoryBytes() / 1e9, 5.6, 0.2);
    EXPECT_EQ(spec.nLayers, 18u);
    EXPECT_EQ(spec.nExperts, 8u);
}

TEST(ModelSpec, MixtralExpertDominatesParameters)
{
    // The paper's premise: the MoE layer holds nearly all parameters.
    ModelSpec spec = ModelSpec::mixtral8x7b();
    const double moe_fraction =
        static_cast<double>(spec.nLayers * spec.moeParamsPerLayer()) /
        static_cast<double>(spec.totalParams());
    EXPECT_GT(moe_fraction, 0.9);
}

TEST(ModelSpec, QloraTrainableFractionIsTiny)
{
    ModelSpec spec = ModelSpec::mixtral8x7b();
    const double fraction =
        static_cast<double>(spec.trainableParams()) /
        static_cast<double>(spec.totalParams());
    // LoRA rank 16 on MoE: well under 1% trainable.
    EXPECT_LT(fraction, 0.01);
    EXPECT_GT(spec.trainableParams(), 0u);
}

TEST(ModelSpec, FullFineTuneTrainsAll)
{
    ModelSpec spec = ModelSpec::blackMamba2p8b();
    EXPECT_EQ(spec.trainableParams(), spec.totalParams());
}

TEST(ModelSpec, OptimizerStateScalesWithStrategy)
{
    ModelSpec mixtral = ModelSpec::mixtral8x7b();
    ModelSpec mamba = ModelSpec::blackMamba2p8b();
    // BlackMamba's AdamW moments (fp32 x2 over 2.8B) = ~22.4 GB; the
    // LoRA state is ~3 orders smaller.
    EXPECT_NEAR(mamba.optimizerStateBytes() / 1e9, 22.4, 0.5);
    EXPECT_LT(mixtral.optimizerStateBytes() / 1e9, 3.0);
}

TEST(ModelSpec, SparsityValues)
{
    ModelSpec spec = ModelSpec::mixtral8x7b();
    EXPECT_DOUBLE_EQ(spec.sparsity(true), 0.25);
    EXPECT_DOUBLE_EQ(spec.sparsity(false), 1.0);
    EXPECT_EQ(spec.activeExperts(true), 2u);
    EXPECT_EQ(spec.activeExperts(false), 8u);
}

TEST(ModelSpec, SwiGLUExpertsAreLargerThanGelu)
{
    ModelSpec mixtral = ModelSpec::mixtral8x7b();
    EXPECT_EQ(mixtral.expertParams(),
              3u * mixtral.dModel * mixtral.dFf);
    ModelSpec mamba = ModelSpec::blackMamba2p8b();
    EXPECT_EQ(mamba.expertParams(), 2u * mamba.dModel * mamba.dFf);
}

TEST(ModelSpec, GqaShrinksKvProjections)
{
    ModelSpec spec = ModelSpec::mixtral8x7b();
    // q+o = 2 d^2; k+v = 2 d d_kv with d_kv = d/4 for 8-of-32 KV heads.
    const std::size_t expected =
        2 * spec.dModel * spec.dModel + 2 * spec.dModel * (spec.dModel / 4);
    EXPECT_EQ(spec.mixerParamsPerLayer(), expected);
}

}  // namespace
}  // namespace ftsim
