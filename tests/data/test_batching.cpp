/**
 * @file
 * Unit tests for batch collation (the SFT objective layout).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "data/batching.hpp"

namespace ftsim {
namespace {

Query
makeQuery(std::vector<int> prompt, std::vector<int> answer)
{
    Query q;
    q.prompt = std::move(prompt);
    q.answer = std::move(answer);
    return q;
}

TEST(Collate, PadsToLongestAndLabelsAnswersOnly)
{
    Query q1 = makeQuery({Vocab::kBos, 10, Vocab::kSep}, {40, Vocab::kEos});
    Query q2 = makeQuery({Vocab::kBos, Vocab::kSep}, {41, Vocab::kEos});
    Batch batch = collate({&q1, &q2});

    EXPECT_EQ(batch.batchSize, 2u);
    EXPECT_EQ(batch.seqLen, 5u);  // Longest query: 3 + 2.
    // q2 is padded at the end.
    EXPECT_EQ(batch.ids[1 * 5 + 4], Vocab::kPad);

    // Labels: position of SEP predicts the first answer token; the
    // answer's first token predicts EOS; everything else is ignored.
    EXPECT_EQ(batch.targets[0 * 5 + 2], 40);
    EXPECT_EQ(batch.targets[0 * 5 + 3], Vocab::kEos);
    EXPECT_EQ(batch.targets[0 * 5 + 0], kIgnoreIndex);
    EXPECT_EQ(batch.targets[0 * 5 + 1], kIgnoreIndex);
    EXPECT_EQ(batch.targets[0 * 5 + 4], kIgnoreIndex);
}

TEST(Collate, LabelCountEqualsAnswerLength)
{
    Query q = makeQuery({1, 2, 3}, {4, 5});
    Batch batch = collate({&q});
    std::size_t labels = 0;
    for (int t : batch.targets)
        labels += t != kIgnoreIndex ? 1 : 0;
    EXPECT_EQ(labels, 2u);  // One per answer token.
}

TEST(Collate, EmptyIsFatal)
{
    EXPECT_THROW(collate({}), FatalError);
}

TEST(EpochBatches, CoversWholeDatasetOnce)
{
    DatasetSpec spec = DatasetSpec::gsm8k();
    spec.numQueries = 23;
    Dataset ds = Dataset::generate(spec);
    Rng rng(1);
    auto batches = epochBatches(ds, 4, rng);
    // ceil(23/4) = 6 batches, last partial.
    ASSERT_EQ(batches.size(), 6u);
    std::size_t total = 0;
    for (const auto& b : batches)
        total += b.numQueries;
    EXPECT_EQ(total, 23u);
    EXPECT_EQ(batches.back().numQueries, 3u);
}

TEST(EpochBatches, ShufflesBetweenEpochs)
{
    DatasetSpec spec = DatasetSpec::gsm8k();
    spec.numQueries = 64;
    Dataset ds = Dataset::generate(spec);
    Rng rng(2);
    auto e1 = epochBatches(ds, 8, rng);
    auto e2 = epochBatches(ds, 8, rng);
    // Same sizes, different order (first batch almost surely differs).
    EXPECT_EQ(e1.size(), e2.size());
    EXPECT_NE(e1[0].ids, e2[0].ids);
}

TEST(SequentialBatches, RespectsLimit)
{
    DatasetSpec spec = DatasetSpec::gsm8k();
    spec.numQueries = 50;
    Dataset ds = Dataset::generate(spec);
    auto batches = sequentialBatches(ds, 8, 20);
    std::size_t total = 0;
    for (const auto& b : batches)
        total += b.numQueries;
    EXPECT_EQ(total, 20u);
}

TEST(SequentialBatches, DeterministicOrder)
{
    DatasetSpec spec = DatasetSpec::gsm8k();
    spec.numQueries = 16;
    Dataset ds = Dataset::generate(spec);
    auto a = sequentialBatches(ds, 4, 16);
    auto b = sequentialBatches(ds, 4, 16);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].ids, b[i].ids);
}

TEST(Collate, TargetsPointAtNextToken)
{
    // Every non-ignored target must equal the *next* input token.
    DatasetSpec spec = DatasetSpec::commonsense15k();
    spec.numQueries = 40;
    Dataset ds = Dataset::generate(spec);
    auto batches = sequentialBatches(ds, 8, 40);
    for (const Batch& b : batches) {
        for (std::size_t r = 0; r < b.batchSize; ++r) {
            for (std::size_t t = 0; t + 1 < b.seqLen; ++t) {
                int label = b.targets[r * b.seqLen + t];
                if (label == kIgnoreIndex)
                    continue;
                EXPECT_EQ(label, b.ids[r * b.seqLen + t + 1]);
            }
        }
    }
}

}  // namespace
}  // namespace ftsim
