/**
 * @file
 * Unit tests for the synthetic datasets (Table II / Fig. 2 substrate).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "data/dataset.hpp"

namespace ftsim {
namespace {

TEST(Dataset, PresetSizesMatchTableII)
{
    EXPECT_EQ(DatasetSpec::commonsense15k().numQueries, 15000u);
    EXPECT_EQ(DatasetSpec::math14k().numQueries, 14000u);
    EXPECT_EQ(DatasetSpec::hellaswag().numQueries, 10000u);
    EXPECT_EQ(DatasetSpec::gsm8k().numQueries, 1300u);
}

TEST(Dataset, MediansMatchTableII)
{
    // Medians: CS 79, MATH 174, HE 272, GS 148 (Table II / Fig. 2).
    struct Case {
        DatasetSpec spec;
        double median;
    };
    for (const auto& c :
         {Case{DatasetSpec::commonsense15k(), 79.0},
          Case{DatasetSpec::math14k(), 174.0},
          Case{DatasetSpec::hellaswag(), 272.0},
          Case{DatasetSpec::gsm8k(), 148.0}}) {
        Dataset ds = Dataset::generate(c.spec);
        EXPECT_NEAR(ds.medianSeqLen(), c.median, c.median * 0.05)
            << ds.name();
    }
}

TEST(Dataset, GenerationIsDeterministic)
{
    DatasetSpec spec = DatasetSpec::gsm8k();
    Dataset a = Dataset::generate(spec);
    Dataset b = Dataset::generate(spec);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < 20; ++i) {
        EXPECT_EQ(a.query(i).prompt, b.query(i).prompt);
        EXPECT_EQ(a.query(i).answer, b.query(i).answer);
    }
}

TEST(Dataset, QueriesAreWellFormedCommonsense)
{
    DatasetSpec spec = DatasetSpec::commonsense15k();
    spec.numQueries = 200;
    Dataset ds = Dataset::generate(spec);
    for (const Query& q : ds.queries()) {
        ASSERT_GE(q.prompt.size(), 4u);
        EXPECT_EQ(q.prompt.front(), Vocab::kBos);
        EXPECT_EQ(q.prompt.back(), Vocab::kSep);
        // subject then relation immediately before SEP.
        int subj = q.prompt[q.prompt.size() - 3];
        int rel = q.prompt[q.prompt.size() - 2];
        ASSERT_GE(subj, Vocab::kSubjectBase);
        ASSERT_LT(subj, Vocab::kSubjectBase +
                            static_cast<int>(Vocab::kNumSubjects));
        ASSERT_GE(rel, Vocab::kRelationBase);
        // Answer agrees with the oracle.
        ASSERT_EQ(q.answer.size(), 2u);
        EXPECT_EQ(q.answer[0],
                  TaskOracle::commonsenseAnswer(
                      static_cast<std::size_t>(subj - Vocab::kSubjectBase),
                      static_cast<std::size_t>(rel - Vocab::kRelationBase)));
        EXPECT_EQ(q.answer[1], Vocab::kEos);
    }
}

TEST(Dataset, QueriesAreWellFormedMath)
{
    DatasetSpec spec = DatasetSpec::math14k();
    spec.numQueries = 200;
    Dataset ds = Dataset::generate(spec);
    for (const Query& q : ds.queries()) {
        // ..., a, OP, b, SEP with answer (a+b) mod m.
        const std::size_t n = q.prompt.size();
        int a = q.prompt[n - 4];
        int op = q.prompt[n - 3];
        int b = q.prompt[n - 2];
        EXPECT_EQ(op, Vocab::kOp);
        EXPECT_EQ(q.answer[0],
                  TaskOracle::mathAnswer(
                      static_cast<std::size_t>(a - Vocab::kNumberBase),
                      static_cast<std::size_t>(b - Vocab::kNumberBase)));
    }
}

TEST(Dataset, AllTokensWithinVocab)
{
    DatasetSpec spec = DatasetSpec::math14k();
    spec.numQueries = 300;
    Dataset ds = Dataset::generate(spec);
    for (const Query& q : ds.queries()) {
        for (int t : q.prompt) {
            EXPECT_GE(t, 0);
            EXPECT_LT(t, static_cast<int>(Vocab::kSize));
        }
        for (int t : q.answer) {
            EXPECT_GE(t, 0);
            EXPECT_LT(t, static_cast<int>(Vocab::kSize));
        }
    }
}

TEST(Dataset, ScaledGenerationShrinksBothAxes)
{
    DatasetSpec spec = DatasetSpec::commonsense15k();
    Dataset small = Dataset::generateScaled(spec, 0.01, 0.25);
    EXPECT_EQ(small.size(), 150u);
    EXPECT_NEAR(small.medianSeqLen(), 79.0 * 0.25, 4.0);
}

TEST(Dataset, HeadReturnsPrefix)
{
    DatasetSpec spec = DatasetSpec::gsm8k();
    spec.numQueries = 50;
    Dataset ds = Dataset::generate(spec);
    auto head = ds.head(10);
    ASSERT_EQ(head.size(), 10u);
    EXPECT_EQ(head[0], &ds.query(0));
    EXPECT_EQ(ds.head(100).size(), 50u);  // Clamped to size.
}

TEST(Dataset, MathCoversAnswerSpace)
{
    // The task must be dense in its answer space to be learnable as a
    // composition, not a lookup of a few outputs.
    DatasetSpec spec = DatasetSpec::math14k();
    spec.numQueries = 2000;
    Dataset ds = Dataset::generate(spec);
    std::set<int> answers;
    for (const Query& q : ds.queries())
        answers.insert(q.answer[0]);
    EXPECT_EQ(answers.size(), Vocab::kModulus);
}

TEST(TaskOracleTest, OracleRangesAndDeterminism)
{
    EXPECT_EQ(TaskOracle::mathAnswer(5, 7), Vocab::numberToken(12));
    EXPECT_EQ(TaskOracle::mathAnswer(20, 20),
              Vocab::numberToken((40) % Vocab::kModulus));
    EXPECT_THROW(TaskOracle::mathAnswer(Vocab::kModulus, 0), FatalError);
    EXPECT_EQ(TaskOracle::commonsenseAnswer(3, 1),
              TaskOracle::commonsenseAnswer(3, 1));
    EXPECT_THROW(TaskOracle::commonsenseAnswer(99, 0), FatalError);
}

TEST(VocabTest, TokenRangesDoNotOverlap)
{
    std::set<int> seen = {Vocab::kPad, Vocab::kBos, Vocab::kEos,
                          Vocab::kSep, Vocab::kOp};
    EXPECT_EQ(seen.size(), 5u);
    for (std::size_t f = 0; f < Vocab::kNumFiller; ++f)
        EXPECT_TRUE(seen.insert(Vocab::fillerToken(f)).second);
    for (std::size_t s = 0; s < Vocab::kNumSubjects; ++s)
        EXPECT_TRUE(seen.insert(Vocab::subjectToken(s)).second);
    for (std::size_t r = 0; r < Vocab::kNumRelations; ++r)
        EXPECT_TRUE(seen.insert(Vocab::relationToken(r)).second);
    for (std::size_t v = 0; v < Vocab::kModulus; ++v)
        EXPECT_TRUE(seen.insert(Vocab::numberToken(v)).second);
    for (int t : seen)
        EXPECT_LT(t, static_cast<int>(Vocab::kSize));
}

}  // namespace
}  // namespace ftsim
