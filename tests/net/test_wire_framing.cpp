/**
 * @file
 * WireFramer/BinaryFramer tests: per-frame codec dispatch (the
 * negotiation mechanism), split-at-every-byte reassembly, poison on
 * framing damage, and JSON overflow semantics surviving intact next
 * to binary traffic.
 */

#include <gtest/gtest.h>

#include "net/framing.hpp"
#include "serve/protocol.hpp"
#include "serve/wire.hpp"

namespace ftsim {
namespace {

constexpr std::size_t kCap = 1 << 16;

std::string
binaryRequest(const char* id, QueryKind kind = QueryKind::Snapshot)
{
    PlanRequest req;
    req.id = id;
    req.query = kind;
    if (kind == QueryKind::MaxBatch)
        req.gpu = "A40";
    return encodeRequestFrame(req);
}

std::vector<WireFramer::Frame>
drain(WireFramer& framer)
{
    std::vector<WireFramer::Frame> out;
    WireFramer::Frame frame;
    while (framer.next(frame))
        out.push_back(std::move(frame));
    return out;
}

TEST(WireFraming, DispatchesJsonAndBinaryPerFrame)
{
    WireFramer framer(kCap);
    const std::string bin = binaryRequest("b1");
    const std::string json = "{\"query\":\"snapshot\",\"id\":\"j1\"}\n";
    std::string stream = json + bin + json + bin + bin;
    framer.feed(stream.data(), stream.size());
    auto frames = drain(framer);
    ASSERT_EQ(frames.size(), 5u);
    EXPECT_FALSE(frames[0].binary);
    EXPECT_TRUE(frames[1].binary);
    EXPECT_FALSE(frames[2].binary);
    EXPECT_TRUE(frames[3].binary);
    EXPECT_TRUE(frames[4].binary);
    EXPECT_EQ(frames[0].payload,
              "{\"query\":\"snapshot\",\"id\":\"j1\"}");
    EXPECT_EQ(kWireHeaderBytes + frames[1].payload.size(),
              bin.size());
    EXPECT_EQ(frames[1].payload, bin.substr(kWireHeaderBytes));
    EXPECT_FALSE(framer.poisoned());
    EXPECT_FALSE(framer.midBinaryFrame());
    EXPECT_EQ(framer.partialBytes(), 0u);
}

TEST(WireFraming, ReassemblesAcrossEverySplitPoint)
{
    const std::string bin = binaryRequest("split", QueryKind::MaxBatch);
    const std::string json = "{\"query\":\"fleet\"}\n";
    const std::string stream = bin + json + bin;
    for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
        WireFramer framer(kCap);
        framer.feed(stream.data(), cut);
        framer.feed(stream.data() + cut, stream.size() - cut);
        auto frames = drain(framer);
        ASSERT_EQ(frames.size(), 3u) << "cut at " << cut;
        EXPECT_TRUE(frames[0].binary);
        EXPECT_FALSE(frames[1].binary);
        EXPECT_TRUE(frames[2].binary);
        EXPECT_EQ(frames[0].payload, bin.substr(kWireHeaderBytes));
        EXPECT_EQ(frames[1].payload, "{\"query\":\"fleet\"}");
        EXPECT_EQ(frames[2].payload, frames[0].payload);
        EXPECT_FALSE(framer.poisoned());
    }
}

TEST(WireFraming, ByteAtATime)
{
    const std::string bin = binaryRequest("drip");
    const std::string stream =
        "{\"query\":\"stats\"}\n" + bin + "{\"query\":\"fleet\"}\n";
    WireFramer framer(kCap);
    for (char c : stream)
        framer.feed(&c, 1);
    auto frames = drain(framer);
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_FALSE(frames[0].binary);
    EXPECT_TRUE(frames[1].binary);
    EXPECT_FALSE(frames[2].binary);
}

TEST(WireFraming, BadMagicSuffixPoisons)
{
    std::string bin = binaryRequest("x");
    bin[1] = 'Q';  // 0xF7 'Q' ... — not our magic.
    WireFramer framer(kCap);
    framer.feed(bin.data(), bin.size());
    auto frames = drain(framer);
    EXPECT_TRUE(frames.empty());
    EXPECT_TRUE(framer.poisoned());
    EXPECT_NE(framer.poisonReason().find("magic"), std::string::npos);
}

TEST(WireFraming, BadVersionPoisons)
{
    std::string bin = binaryRequest("x");
    bin[3] = 0x7F;
    WireFramer framer(kCap);
    framer.feed(bin.data(), bin.size());
    EXPECT_TRUE(framer.poisoned());
    EXPECT_NE(framer.poisonReason().find("version"),
              std::string::npos);
}

TEST(WireFraming, ZeroLengthFramePoisons)
{
    std::string header = binaryRequest("x").substr(0, kWireHeaderBytes);
    header[4] = header[5] = header[6] = header[7] = 0;
    WireFramer framer(kCap);
    framer.feed(header.data(), header.size());
    EXPECT_TRUE(framer.poisoned());
}

TEST(WireFraming, OversizedFramePoisonsAtTheHeader)
{
    // Length prefix far past the cap: poisons after 8 bytes, before
    // any payload is buffered (no memory bomb).
    std::string header = binaryRequest("x").substr(0, kWireHeaderBytes);
    header[4] = '\xff';
    header[5] = '\xff';
    header[6] = '\xff';
    header[7] = '\x7f';
    WireFramer framer(kCap);
    framer.feed(header.data(), header.size());
    EXPECT_TRUE(framer.poisoned());
    EXPECT_NE(framer.poisonReason().find("cap"), std::string::npos);
    EXPECT_EQ(framer.partialBytes(), 0u);

    // And everything after the damage is dropped, not reinterpreted.
    const std::string after = "{\"query\":\"fleet\"}\n";
    framer.feed(after.data(), after.size());
    auto frames = drain(framer);
    EXPECT_TRUE(frames.empty());
}

TEST(WireFraming, TruncatedFrameIsVisibleAtEof)
{
    const std::string bin = binaryRequest("x");
    WireFramer framer(kCap);
    framer.feed(bin.data(), bin.size() - 3);
    auto frames = drain(framer);
    EXPECT_TRUE(frames.empty());
    EXPECT_FALSE(framer.poisoned());
    // The server checks this at EOF: mid-frame close = truncation.
    EXPECT_TRUE(framer.midBinaryFrame());
    EXPECT_GT(framer.partialBytes(), 0u);
}

TEST(WireFraming, JsonOverflowStillDiscardsAndRecovers)
{
    // A JSON line over the cap keeps LineFramer's semantics: one
    // overflow frame, line dropped, and the *stream* survives — the
    // next frame (binary, even) parses fine.
    WireFramer framer(64);
    std::string huge(200, 'a');
    huge += '\n';
    framer.feed(huge.data(), huge.size());
    const std::string bin = binaryRequest("ok");
    framer.feed(bin.data(), bin.size());
    auto frames = drain(framer);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_TRUE(frames[0].overflow);
    EXPECT_FALSE(frames[0].binary);
    EXPECT_TRUE(frames[1].binary);
    EXPECT_FALSE(framer.poisoned());
}

TEST(WireFraming, OverflowSplitAcrossFeedsThenBinary)
{
    WireFramer framer(16);
    std::string part1(40, 'x');  // Over the cap, no newline yet.
    framer.feed(part1.data(), part1.size());
    std::string part2 = "yyy\n";
    framer.feed(part2.data(), part2.size());
    const std::string bin = binaryRequest("after");
    framer.feed(bin.data(), bin.size());
    auto frames = drain(framer);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_TRUE(frames[0].overflow);
    EXPECT_TRUE(frames[1].binary);
}

TEST(WireFraming, MagicByteMidJsonLineStaysJson)
{
    // 0xF7 dispatches only at frame start; inside a line it's just a
    // byte (an invalid one for strict JSON, but framing must not cut
    // the line in half).
    WireFramer framer(kCap);
    std::string line = "{\"id\":\"\xf7\x46\x54\"}\n";
    framer.feed(line.data(), line.size());
    auto frames = drain(framer);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_FALSE(frames[0].binary);
    EXPECT_EQ(frames[0].payload, line.substr(0, line.size() - 1));
}

TEST(WireFraming, BinaryPayloadContainingNewlinesIsNotSplit)
{
    PlanRequest req;
    req.query = QueryKind::LoadSnapshot;
    req.snapshot = "line1\nline2\n{\"query\":\"fleet\"}\n";
    const std::string bin = encodeRequestFrame(req);
    WireFramer framer(kCap);
    framer.feed(bin.data(), bin.size());
    auto frames = drain(framer);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_TRUE(frames[0].binary);
    Result<WireMessage> decoded = decodeWirePayload(frames[0].payload);
    ASSERT_TRUE(decoded.ok()) << decoded.error().describe();
    EXPECT_EQ(decoded.value().request.snapshot, req.snapshot);
}

TEST(WireFraming, BinaryFramerStopsAfterOneFrame)
{
    // The re-dispatch contract: a raw BinaryFramer never consumes
    // past one completed frame in a single feed.
    const std::string bin = binaryRequest("one");
    std::string two = bin + bin;
    BinaryFramer framer(kCap);
    const std::size_t consumed = framer.feed(two.data(), two.size());
    EXPECT_EQ(consumed, bin.size());
    BinaryFramer::Frame frame;
    ASSERT_TRUE(framer.next(frame));
    EXPECT_EQ(frame.payload, bin.substr(kWireHeaderBytes));
    EXPECT_FALSE(framer.next(frame));
}

}  // namespace
}  // namespace ftsim
