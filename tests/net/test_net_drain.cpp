/**
 * @file
 * Drain-deadline tests (ISSUE-6 satellite): SIGTERM must not hang on
 * a peer that stops reading.
 *
 * The pre-deadline graceful stop waits until every connection has
 * flushed — correct for well-behaved clients, a livelock against a
 * stalled one (its kernel buffers fill, writes return WouldBlock
 * forever, the drain never completes). `drainDeadlineMs` bounds that
 * patience: connections still owing bytes past the deadline are
 * force-closed and counted in `forcedClosed`.
 *
 * Determinism comes from two injected knobs: `sendBufferBytes` shrinks
 * SO_SNDBUF so a stalled peer backs the server up with kilobytes (not
 * megabytes) of traffic, and `NetServerConfig::clock` is a virtual
 * clock the test advances past the deadline by hand — no real-time
 * sleeps deciding pass/fail.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "common/logging.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/protocol.hpp"

namespace ftsim {
namespace {

/** A request whose response is big (a full markdown report). */
std::string
reportLine(int i)
{
    PlanRequest req;
    req.id = strCat("q", i);
    req.query = QueryKind::Report;
    req.gpu = "A40";
    return writePlanRequest(req);
}

/** Spins (real time, bounded) until @p done or ~5s elapse. */
template <typename Predicate>
bool
eventually(const Predicate& done)
{
    for (int spin = 0; spin < 1000; ++spin) {
        if (done())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return done();
}

TEST(NetDrain, DeadlineForceClosesAStalledPeer)
{
    auto now = std::make_shared<std::atomic<double>>(0.0);
    NetServerConfig config;
    config.sendBufferBytes = 4096;
    config.drainDeadlineMs = 500.0;
    config.clock = [now] { return now->load(); };
    NetServer server(config);
    ASSERT_TRUE(server.start().ok());

    // A client that pipelines big questions and then never reads: the
    // answers jam in the tiny send buffer and the connection can
    // never drain on its own.
    // ~1.1 KB per report answer x 4096 requests (all coalescing onto
    // one execution) is megabytes of response bytes — far beyond the
    // clamped send buffer plus the peer's receive window, so the
    // connection genuinely cannot drain.
    Result<NetClient> client =
        NetClient::connectTo("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    const int kRequests = 4096;
    for (int i = 0; i < kRequests; ++i)
        ASSERT_TRUE(client.value().sendLine(reportLine(i)).ok());

    // Wait until everything is admitted and the write side is wedged
    // (some answers flushed into the kernel buffers, the rest can't).
    ASSERT_TRUE(eventually([&server, kRequests] {
        return server.service().stats().requests ==
               static_cast<std::uint64_t>(kRequests);
    }));
    ASSERT_TRUE(eventually(
        [&server] { return server.stats().responses >= 1; }));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    server.requestStop();
    // Virtual time never moved, so the deadline has not passed; the
    // server must still be draining, not dropping the connection.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_FALSE(server.stopped());
    EXPECT_EQ(server.stats().forcedClosed, 0u);

    // Cross the deadline. The 20ms stop-phase poll tick notices.
    now->store(501.0);
    ASSERT_TRUE(eventually([&server] { return server.stopped(); }));
    EXPECT_GE(server.stats().forcedClosed, 1u);
    server.stop();
}

TEST(NetDrain, DeadlineSparesPeersThatDrain)
{
    auto now = std::make_shared<std::atomic<double>>(0.0);
    NetServerConfig config;
    config.sendBufferBytes = 4096;
    config.drainDeadlineMs = 500.0;
    config.clock = [now] { return now->load(); };
    NetServer server(config);
    ASSERT_TRUE(server.start().ok());

    // A well-behaved pipelining client: sends, stops, then reads
    // everything. The deadline must never fire on it.
    Result<NetClient> client =
        NetClient::connectTo("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    const int kRequests = 16;
    for (int i = 0; i < kRequests; ++i)
        ASSERT_TRUE(client.value().sendLine(reportLine(i)).ok());
    client.value().finishSending();
    // Stop only once everything is admitted: a stop request halts
    // reading, and unread input would be dropped (by design).
    ASSERT_TRUE(eventually([&server, kRequests] {
        return server.service().stats().requests ==
               static_cast<std::uint64_t>(kRequests);
    }));
    server.requestStop();
    // Time advances, but stays under the deadline while the client
    // drains (the force-close must not fire early or spuriously).
    now->store(499.0);

    for (int i = 0; i < kRequests; ++i) {
        Result<std::string> line = client.value().recvLine();
        ASSERT_TRUE(line.ok()) << "response " << i << ": "
                               << line.error().message;
        EXPECT_NE(line.value().find("\"ok\":true"), std::string::npos);
    }
    ASSERT_TRUE(eventually([&server] { return server.stopped(); }));
    // Nobody owed bytes once the client read them: no forced closes,
    // all answers intact.
    EXPECT_EQ(server.stats().forcedClosed, 0u);
    EXPECT_EQ(server.stats().responses,
              static_cast<std::uint64_t>(kRequests));
    server.stop();
}

}  // namespace
}  // namespace ftsim
