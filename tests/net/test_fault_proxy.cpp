/**
 * @file
 * FaultProxy tests (ISSUE-7): the chaos proxy itself, and the framing
 * and router layers driven *through* it under injected partial writes,
 * short reads, stalls, half-closes, and truncation.
 *
 * The claims under test:
 *
 *  - transparent mode forwards byte-exactly, including with seeded
 *    random chunking (same seed, same split points — determinism is
 *    the whole product);
 *  - each fault kind does exactly what it says, at the scripted byte
 *    offset, and is counted;
 *  - the per-direction buffer is bounded: a wedged sink backpressures
 *    the source instead of growing memory (peakBufferedBytes pins it);
 *  - `NetClient --timeout-ms` turns a scripted stall into a typed
 *    `Unavailable` instead of an infinite block;
 *  - a NetServer and a RouterServer fronted through a chunking proxy
 *    still answer every pipelined request in order — LineFramer
 *    reassembly and the router's positional slot fill survive
 *    arbitrary fragmentation with no desync.
 *
 * Everything binds port 0 so parallel runs never collide.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "net/client.hpp"
#include "net/fault_proxy.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "router/router.hpp"
#include "serve/protocol.hpp"

namespace ftsim {
namespace {

/** An echo-line peer: accepts one connection, echoes every received
 *  byte back, until the client half-closes. */
class EchoServer {
  public:
    EchoServer()
    {
        Result<TcpListener> listener = TcpListener::bind("127.0.0.1", 0);
        EXPECT_TRUE(listener.ok());
        listener_ = std::move(listener.value());
        thread_ = std::thread([this] { run(); });
    }

    ~EchoServer()
    {
        if (thread_.joinable())
            thread_.join();
    }

    std::uint16_t port() const { return listener_.port(); }

  private:
    void run()
    {
        Connection conn;
        for (int spin = 0; spin < 2000 && !conn.valid(); ++spin) {
            conn = listener_.accept();
            if (!conn.valid())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        }
        if (!conn.valid())
            return;
        char buf[4096];
        while (true) {
            const IoResult io = conn.readSome(buf, sizeof(buf));
            if (io.status == IoStatus::Ok) {
                std::size_t sent = 0;
                while (sent < io.bytes) {
                    const IoResult out = conn.writeSome(
                        buf + sent, io.bytes - sent);
                    if (out.status == IoStatus::Ok)
                        sent += out.bytes;
                    else if (out.status != IoStatus::WouldBlock)
                        return;
                }
            } else if (io.status == IoStatus::WouldBlock) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            } else {
                return;
            }
        }
    }

    TcpListener listener_;
    std::thread thread_;
};

FaultProxy
makeProxy(std::uint16_t targetPort, std::uint64_t seed = 0,
          std::size_t maxChunk = 0)
{
    FaultProxyConfig config;
    config.targetPort = targetPort;
    config.seed = seed;
    config.maxChunkBytes = maxChunk;
    return FaultProxy(config);
}

TEST(FaultProxy, TransparentModeForwardsByteExact)
{
    EchoServer echo;
    FaultProxy proxy = makeProxy(echo.port());
    ASSERT_TRUE(proxy.start().ok());

    Result<NetClient> client =
        NetClient::connectTo("127.0.0.1", proxy.port());
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < 50; ++i) {
        const std::string line = strCat("line-", i, "-", std::string(
            static_cast<std::size_t>(1 + i * 7), 'x'));
        Result<std::string> back = client.value().ask(line);
        ASSERT_TRUE(back.ok()) << back.error().message;
        EXPECT_EQ(back.value(), line);
    }

    const FaultProxyStats stats = proxy.stats();
    EXPECT_EQ(stats.connectionsAccepted, 1u);
    EXPECT_EQ(stats.faultsInjected, 0u);
    EXPECT_EQ(stats.bytesClientToServer, stats.bytesServerToClient);
    proxy.stop();
}

TEST(FaultProxy, SeededChunkingIsTransparentAndDeterministic)
{
    // Same traffic through two proxies with the same seed: identical
    // forwarded bytes (trivially — chunking must not corrupt) and
    // identical *observable* outcome. A third, different seed still
    // forwards byte-exactly: fragmentation is invisible above TCP.
    for (const std::uint64_t seed : {7u, 7u, 1234u}) {
        EchoServer echo;
        FaultProxy proxy = makeProxy(echo.port(), seed, 3);
        ASSERT_TRUE(proxy.start().ok());
        Result<NetClient> client =
            NetClient::connectTo("127.0.0.1", proxy.port());
        ASSERT_TRUE(client.ok());
        std::string payload;
        for (int i = 0; i < 40; ++i)
            payload += strCat("chunked-", seed, "-", i, ";");
        Result<std::string> back = client.value().ask(payload);
        ASSERT_TRUE(back.ok()) << back.error().message;
        EXPECT_EQ(back.value(), payload);
        proxy.stop();
    }
}

TEST(FaultProxy, CloseFaultKillsAfterExactOffset)
{
    EchoServer echo;
    FaultProxy proxy = makeProxy(echo.port());
    ASSERT_TRUE(proxy.start().ok());

    // Let exactly 8 client bytes through, then drop the link.
    FaultScript script;
    script.kind = FaultKind::Close;
    script.direction = FaultDirection::ClientToServer;
    script.afterBytes = 8;
    proxy.setFault(script);

    Result<NetClient> client =
        NetClient::connectTo("127.0.0.1", proxy.port(), 2000.0);
    ASSERT_TRUE(client.ok());
    // "12345678" + '\n': the newline crosses the 8-byte budget, so the
    // echo never sees a full line and the link dies under the client.
    Result<std::string> back = client.value().ask("12345678");
    ASSERT_FALSE(back.ok());

    const FaultProxyStats stats = proxy.stats();
    EXPECT_EQ(stats.faultsInjected, 1u);
    EXPECT_EQ(stats.connectionsKilled, 1u);
    EXPECT_EQ(stats.bytesClientToServer, 8u);
    proxy.stop();
}

TEST(FaultProxy, StallWedgesAndClientTimeoutTurnsItTyped)
{
    NetServer server;
    ASSERT_TRUE(server.start().ok());
    FaultProxy proxy = makeProxy(server.port());
    ASSERT_TRUE(proxy.start().ok());

    // Wedge the response direction from byte zero: the server answers,
    // the proxy holds the bytes, the client sees... nothing, forever —
    // unless it armed a timeout.
    FaultScript script;
    script.kind = FaultKind::Stall;
    script.direction = FaultDirection::ServerToClient;
    proxy.setFault(script);

    Result<NetClient> client =
        NetClient::connectTo("127.0.0.1", proxy.port(), 150.0);
    ASSERT_TRUE(client.ok());
    PlanRequest req;
    req.id = "stalled";
    req.query = QueryKind::MaxBatch;
    req.gpu = "A40";
    Result<std::string> back =
        client.value().ask(writePlanRequest(req));
    ASSERT_FALSE(back.ok());
    EXPECT_EQ(back.error().code, ErrorCode::Unavailable);
    EXPECT_NE(back.error().message.find("timed out"),
              std::string::npos)
        << back.error().message;

    // clearFault releases the held bytes: the answer was never lost.
    proxy.clearFault();
    Result<std::string> released = client.value().recvLine();
    ASSERT_TRUE(released.ok()) << released.error().message;
    EXPECT_NE(released.value().find("\"ok\":true"), std::string::npos);

    EXPECT_EQ(proxy.stats().faultsInjected, 1u);
    proxy.stop();
    server.stop();
}

TEST(FaultProxy, HalfCloseDeliversEofMidStream)
{
    EchoServer echo;
    FaultProxy proxy = makeProxy(echo.port());
    ASSERT_TRUE(proxy.start().ok());

    // After 6 echoed bytes the client-facing side sees EOF, but the
    // reverse direction keeps flowing (the echo still gets bytes).
    FaultScript script;
    script.kind = FaultKind::HalfClose;
    script.direction = FaultDirection::ServerToClient;
    script.afterBytes = 6;
    proxy.setFault(script);

    Result<NetClient> client =
        NetClient::connectTo("127.0.0.1", proxy.port(), 2000.0);
    ASSERT_TRUE(client.ok());
    Result<std::string> first = client.value().ask("12345");
    ASSERT_TRUE(first.ok()) << first.error().message;  // 5 + '\n' = 6.
    EXPECT_EQ(first.value(), "12345");
    Result<std::string> second = client.value().ask("more");
    ASSERT_FALSE(second.ok());  // EOF mid-stream, not a timeout.
    EXPECT_NE(second.error().message.find("closed"),
              std::string::npos)
        << second.error().message;

    EXPECT_EQ(proxy.stats().faultsInjected, 1u);
    proxy.stop();
}

TEST(FaultProxy, TruncateDiscardsSilently)
{
    EchoServer echo;
    FaultProxy proxy = makeProxy(echo.port());
    ASSERT_TRUE(proxy.start().ok());

    // Client bytes past 6 vanish: the echo answers only the first
    // line; the second request dissolves and the client times out.
    FaultScript script;
    script.kind = FaultKind::Truncate;
    script.direction = FaultDirection::ClientToServer;
    script.afterBytes = 6;
    proxy.setFault(script);

    Result<NetClient> client =
        NetClient::connectTo("127.0.0.1", proxy.port(), 150.0);
    ASSERT_TRUE(client.ok());
    Result<std::string> first = client.value().ask("12345");
    ASSERT_TRUE(first.ok()) << first.error().message;
    EXPECT_EQ(first.value(), "12345");
    Result<std::string> second = client.value().ask("vanishes");
    ASSERT_FALSE(second.ok());
    EXPECT_EQ(second.error().code, ErrorCode::Unavailable);

    EXPECT_EQ(proxy.stats().faultsInjected, 1u);
    EXPECT_EQ(proxy.stats().bytesClientToServer, 6u);
    proxy.stop();
}

TEST(FaultProxy, BufferIsBoundedUnderAWedgedSink)
{
    // A stalled response direction with a chatty server: the proxy
    // buffers at most maxBufferBytes, then backpressures its read
    // side. Memory stays bounded no matter how long the wedge lasts.
    NetServer server;
    ASSERT_TRUE(server.start().ok());
    FaultProxyConfig config;
    config.targetPort = server.port();
    config.maxBufferBytes = 2048;
    FaultProxy proxy(config);
    ASSERT_TRUE(proxy.start().ok());

    FaultScript script;
    script.kind = FaultKind::Stall;
    script.direction = FaultDirection::ServerToClient;
    proxy.setFault(script);

    Result<NetClient> client =
        NetClient::connectTo("127.0.0.1", proxy.port(), 100.0);
    ASSERT_TRUE(client.ok());
    // Pipeline enough requests that the held responses dwarf the cap.
    PlanRequest req;
    req.query = QueryKind::MaxBatch;
    req.gpu = "A40";
    for (int i = 0; i < 200; ++i) {
        req.id = strCat("b", i);
        ASSERT_TRUE(
            client.value().sendLine(writePlanRequest(req)).ok());
    }
    EXPECT_FALSE(client.value().recvLine().ok());  // All wedged.

    const FaultProxyStats stats = proxy.stats();
    EXPECT_LE(stats.peakBufferedBytes, 2048u);
    EXPECT_GT(stats.peakBufferedBytes, 0u);
    proxy.stop();
    server.stop();
}

TEST(FaultProxy, RouterThroughChunkingProxyStaysInOrder)
{
    // The integration claim: a router whose shard link is shredded
    // into 1..5 byte fragments still answers every pipelined request
    // in order — LineFramer reassembly and positional slot fill never
    // desynchronize.
    NetServer shard;
    ASSERT_TRUE(shard.start().ok());
    FaultProxy proxy = makeProxy(shard.port(), /*seed=*/42,
                                 /*maxChunk=*/5);
    ASSERT_TRUE(proxy.start().ok());

    RouterConfig config;
    ShardEndpoint endpoint;
    endpoint.port = proxy.port();
    endpoint.name = "shard-chunked";
    config.shards = {endpoint};
    RouterServer router(config);
    ASSERT_TRUE(router.start().ok());

    Result<NetClient> client =
        NetClient::connectTo("127.0.0.1", router.port());
    ASSERT_TRUE(client.ok());
    std::vector<std::string> ids;
    PlanRequest req;
    req.query = QueryKind::MaxBatch;
    for (int i = 0; i < 60; ++i) {
        req.id = strCat("frag", i);
        req.gpu = i % 2 == 0 ? "A40" : "H100";
        ids.push_back(req.id);
        ASSERT_TRUE(
            client.value().sendLine(writePlanRequest(req)).ok());
    }
    for (const std::string& id : ids) {
        Result<std::string> line = client.value().recvLine();
        ASSERT_TRUE(line.ok()) << line.error().message;
        EXPECT_NE(line.value().find(strCat('"', id, '"')),
                  std::string::npos)
            << "out of order: wanted " << id << " got "
            << line.value();
        EXPECT_NE(line.value().find("\"ok\":true"), std::string::npos)
            << line.value();
    }

    EXPECT_EQ(router.stats().shardFailures, 0u);
    router.stop();
    proxy.stop();
    shard.stop();
}

}  // namespace
}  // namespace ftsim
