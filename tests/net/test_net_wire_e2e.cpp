/**
 * @file
 * Socket-level tests for wire-format negotiation.
 *
 * One daemon, no mode switch: the first byte of each frame selects
 * its codec, so a JSON client, a binary client, and a client that
 * interleaves both all talk to the same default server. These tests
 * pin the negotiation edge cases the spec (docs/PROTOCOL.md) calls
 * out: mixed formats on one connection, semantic errors keeping a
 * connection alive, and framing damage (bad version, zero-length,
 * over-cap, truncated frames) killing exactly one connection — with
 * one final typed error frame — while the daemon keeps serving.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/protocol.hpp"
#include "serve/wire.hpp"

namespace ftsim {
namespace {

NetClient
connectLoopback(std::uint16_t port)
{
    Result<NetClient> client = NetClient::connectTo("127.0.0.1", port);
    if (!client.ok()) {
        ADD_FAILURE() << client.error().message;
        return NetClient();
    }
    return std::move(client.value());
}

PlanRequest
maxBatchRequest(const char* id, const char* gpu = "A40")
{
    PlanRequest req;
    req.id = id;
    req.query = QueryKind::MaxBatch;
    req.gpu = gpu;
    return req;
}

/** Receives one frame, asserts it is binary, and decodes it. */
WireMessage
recvBinary(NetClient& client)
{
    Result<WireFramer::Frame> frame = client.recvFrame();
    if (!frame.ok()) {
        ADD_FAILURE() << frame.error().message;
        return WireMessage();
    }
    EXPECT_TRUE(frame.value().binary)
        << "got JSON: " << frame.value().payload;
    Result<WireMessage> decoded =
        decodeWirePayload(frame.value().payload);
    if (!decoded.ok()) {
        ADD_FAILURE() << decoded.error().message;
        return WireMessage();
    }
    return decoded.value();
}

TEST(NetWireE2E, BinaryAnswersMatchTheJsonPathByteForByte)
{
    NetServer server;
    ASSERT_TRUE(server.start().ok());

    const PlanRequest req = maxBatchRequest("wire-1");

    // JSON connection first: the reference bytes.
    NetClient jsonClient = connectLoopback(server.port());
    Result<std::string> jsonAnswer =
        jsonClient.ask(writePlanRequest(req));
    ASSERT_TRUE(jsonAnswer.ok()) << jsonAnswer.error().message;

    // Binary connection: same request as a frame.
    NetClient binClient = connectLoopback(server.port());
    ASSERT_TRUE(binClient.sendBytes(encodeRequestFrame(req)).ok());
    WireMessage answer = recvBinary(binClient);
    ASSERT_EQ(answer.type, WireMsg::Response);
    EXPECT_TRUE(answer.response.ok);
    EXPECT_EQ(writePlanResponse(answer.response), jsonAnswer.value());

    server.stop();
    EXPECT_EQ(server.stats().binaryRequests, 1u);
    EXPECT_EQ(server.stats().requests, 2u);
    EXPECT_EQ(server.stats().wirePoisoned, 0u);
}

TEST(NetWireE2E, MixedFormatsInterleaveOnOneConnection)
{
    NetServer server;
    ASSERT_TRUE(server.start().ok());
    NetClient client = connectLoopback(server.port());

    // Pipeline JSON, binary, JSON, binary down the same socket; each
    // answer must come back in its request's format, in order.
    const PlanRequest a = maxBatchRequest("a");
    const PlanRequest b = maxBatchRequest("b", "H100");
    ASSERT_TRUE(client.sendLine(writePlanRequest(a)).ok());
    ASSERT_TRUE(client.sendBytes(encodeRequestFrame(b)).ok());
    ASSERT_TRUE(client.sendLine(writePlanRequest(b)).ok());
    ASSERT_TRUE(client.sendBytes(encodeRequestFrame(a)).ok());

    Result<WireFramer::Frame> first = client.recvFrame();
    ASSERT_TRUE(first.ok()) << first.error().message;
    EXPECT_FALSE(first.value().binary);

    WireMessage second = recvBinary(client);
    ASSERT_EQ(second.type, WireMsg::Response);
    EXPECT_EQ(second.response.id, "b");
    // Same bytes, different wires: the binary answer re-serializes to
    // the JSON answer the same request got one slot later.
    Result<WireFramer::Frame> third = client.recvFrame();
    ASSERT_TRUE(third.ok()) << third.error().message;
    EXPECT_FALSE(third.value().binary);
    EXPECT_EQ(writePlanResponse(second.response),
              third.value().payload);

    WireMessage fourth = recvBinary(client);
    EXPECT_EQ(fourth.response.id, "a");
    EXPECT_EQ(writePlanResponse(fourth.response),
              first.value().payload);

    server.stop();
    EXPECT_EQ(server.stats().requests, 4u);
    EXPECT_EQ(server.stats().binaryRequests, 2u);
}

TEST(NetWireE2E, SemanticErrorsKeepTheConnectionAlive)
{
    NetServer server;
    ASSERT_TRUE(server.start().ok());
    NetClient client = connectLoopback(server.port());

    // Unknown GPU: decodes fine, the *service* rejects it — a typed
    // response frame, not a framing problem.
    ASSERT_TRUE(client
                    .sendBytes(encodeRequestFrame(
                        maxBatchRequest("bad-gpu", "NoSuchGpu")))
                    .ok());
    WireMessage rejected = recvBinary(client);
    ASSERT_EQ(rejected.type, WireMsg::Response);
    EXPECT_FALSE(rejected.response.ok);
    EXPECT_EQ(rejected.response.errorCode, "UnknownGpu");

    // Well-framed garbage payload: decode fails, the connection
    // answers a protocol-error frame and keeps serving.
    ASSERT_TRUE(client.sendBytes(wireFrame("\x01\x09")).ok());
    WireMessage garbage = recvBinary(client);
    ASSERT_EQ(garbage.type, WireMsg::ProtocolError);
    EXPECT_NE(garbage.errorMessage.find("bad frame"),
              std::string::npos);

    // A response frame where a request belongs is rejected too.
    PlanResponse bogus;
    bogus.query = QueryKind::MaxBatch;
    bogus.ok = true;
    bogus.value = 1.0;
    ASSERT_TRUE(client.sendBytes(encodeResponseFrame(bogus)).ok());
    WireMessage misdirected = recvBinary(client);
    ASSERT_EQ(misdirected.type, WireMsg::ProtocolError);
    EXPECT_NE(misdirected.errorMessage.find("request"),
              std::string::npos);

    // ...and the connection still answers real work afterwards.
    ASSERT_TRUE(client
                    .sendBytes(encodeRequestFrame(
                        maxBatchRequest("still-alive")))
                    .ok());
    WireMessage alive = recvBinary(client);
    ASSERT_EQ(alive.type, WireMsg::Response);
    EXPECT_TRUE(alive.response.ok);

    server.stop();
    EXPECT_EQ(server.stats().wirePoisoned, 0u);
    EXPECT_EQ(server.stats().protocolErrors, 2u);
}

/** Framing damage: one final error frame, then the connection dies —
 *  and only that connection. */
void
expectPoisonKillsConnection(const std::string& hostileBytes,
                            const char* expectInReason)
{
    NetServer server;
    ASSERT_TRUE(server.start().ok());

    NetClient victim = connectLoopback(server.port());
    NetClient bystander = connectLoopback(server.port());

    ASSERT_TRUE(victim.sendBytes(hostileBytes).ok());
    WireMessage lastWords = recvBinary(victim);
    ASSERT_EQ(lastWords.type, WireMsg::ProtocolError);
    EXPECT_NE(lastWords.errorMessage.find(expectInReason),
              std::string::npos)
        << lastWords.errorMessage;
    // Nothing more: the server closed the poisoned connection.
    Result<WireFramer::Frame> eof = victim.recvFrame();
    EXPECT_FALSE(eof.ok());

    // The daemon itself is fine — a fresh exchange on the other
    // connection, in both formats.
    Result<std::string> json = bystander.ask(
        writePlanRequest(maxBatchRequest("bystander")));
    ASSERT_TRUE(json.ok()) << json.error().message;
    ASSERT_TRUE(bystander
                    .sendBytes(encodeRequestFrame(
                        maxBatchRequest("bystander")))
                    .ok());
    WireMessage bin = recvBinary(bystander);
    EXPECT_EQ(writePlanResponse(bin.response), json.value());

    server.stop();
    EXPECT_EQ(server.stats().wirePoisoned, 1u);
}

TEST(NetWireE2E, BadVersionPoisonsOnlyItsConnection)
{
    std::string frame =
        encodeRequestFrame(maxBatchRequest("doomed"));
    frame[3] = 0x63;
    expectPoisonKillsConnection(frame, "version");
}

TEST(NetWireE2E, ZeroLengthFramePoisonsOnlyItsConnection)
{
    std::string frame =
        encodeRequestFrame(maxBatchRequest("doomed"));
    frame[4] = frame[5] = frame[6] = frame[7] = 0;
    expectPoisonKillsConnection(frame.substr(0, kWireHeaderBytes),
                                "empty frame");
}

TEST(NetWireE2E, OversizedFramePoisonsOnlyItsConnection)
{
    // Length prefix over NetServerConfig::maxLineBytes (1 MiB): the
    // server refuses at the header, before buffering any payload.
    std::string frame =
        encodeRequestFrame(maxBatchRequest("doomed"));
    frame[4] = '\x01';
    frame[5] = '\x00';
    frame[6] = '\x00';
    frame[7] = '\x7f';
    expectPoisonKillsConnection(frame.substr(0, kWireHeaderBytes),
                                "cap");
}

TEST(NetWireE2E, TruncatedFrameAnswersAnErrorAtEof)
{
    NetServer server;
    ASSERT_TRUE(server.start().ok());
    NetClient client = connectLoopback(server.port());

    const std::string frame =
        encodeRequestFrame(maxBatchRequest("cut-short"));
    ASSERT_TRUE(
        client.sendBytes(frame.substr(0, frame.size() - 3)).ok());
    client.finishSending();  // EOF lands mid-frame.

    WireMessage lastWords = recvBinary(client);
    ASSERT_EQ(lastWords.type, WireMsg::ProtocolError);
    EXPECT_NE(lastWords.errorMessage.find("truncated"),
              std::string::npos);
    EXPECT_FALSE(client.recvFrame().ok());

    server.stop();
    EXPECT_EQ(server.stats().wirePoisoned, 1u);
    EXPECT_EQ(server.stats().requests, 0u);
}

TEST(NetWireE2E, LiveQueriesWorkInBinary)
{
    NetServer server;
    ASSERT_TRUE(server.start().ok());
    NetClient client = connectLoopback(server.port());

    // snapshot -> load_snapshot round trip entirely in binary; the
    // snapshot payload rides raw (no base64) in both directions.
    PlanRequest snap;
    snap.query = QueryKind::Snapshot;
    ASSERT_TRUE(client.sendBytes(encodeRequestFrame(snap)).ok());
    WireMessage snapshot = recvBinary(client);
    ASSERT_EQ(snapshot.type, WireMsg::Response);
    ASSERT_TRUE(snapshot.response.ok);

    PlanRequest load;
    load.query = QueryKind::LoadSnapshot;
    load.snapshot = snapshot.response.snapshot;
    ASSERT_TRUE(client.sendBytes(encodeRequestFrame(load)).ok());
    WireMessage loaded = recvBinary(client);
    ASSERT_EQ(loaded.type, WireMsg::Response);
    EXPECT_TRUE(loaded.response.ok);

    PlanRequest stats;
    stats.query = QueryKind::Stats;
    ASSERT_TRUE(client.sendBytes(encodeRequestFrame(stats)).ok());
    WireMessage scraped = recvBinary(client);
    ASSERT_EQ(scraped.type, WireMsg::Response);
    EXPECT_TRUE(scraped.response.ok);
    EXPECT_NE(scraped.response.statsJson.find("net.wire.requests"),
              std::string::npos);

    server.stop();
}

}  // namespace
}  // namespace ftsim
