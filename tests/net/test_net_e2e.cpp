/**
 * @file
 * Socket-level end-to-end tests for the network front end.
 *
 * Everything PR-3/PR-4 guaranteed in-process must survive the TCP hop:
 *
 *  - the golden wire bytes (tests/integration/golden_serve_e2e.jsonl)
 *    come back byte-exact through a real socket, governance included;
 *  - a thundering herd of duplicate requests across N *connections*
 *    still simulates exactly distinct-config-many steps;
 *  - RateLimited / InvalidArgument arrive as typed wire errors, and a
 *    malformed or oversized line poisons only its own connection;
 *  - graceful shutdown drains in-flight requests before closing;
 *  - idle connections are reaped by the idle timeout.
 *
 * Servers bind port 0 (kernel-assigned) so parallel test runs never
 * collide.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

#ifndef FTSIM_SOURCE_DIR
#error "FTSIM_SOURCE_DIR must point at the repo root (set by CMake)"
#endif

namespace ftsim {
namespace {

std::string
sourcePath(const std::string& relative)
{
    return std::string(FTSIM_SOURCE_DIR) + "/" + relative;
}

std::vector<std::string>
readLines(const std::string& path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

NetClient
connectLoopback(std::uint16_t port)
{
    Result<NetClient> client = NetClient::connectTo("127.0.0.1", port);
    if (!client.ok()) {
        ADD_FAILURE() << client.error().message;
        return NetClient();
    }
    return std::move(client.value());
}

TEST(NetE2E, GoldenOutputIsByteExactOverASocket)
{
    // The exact ServiceConfig the in-process golden test and the ci.sh
    // CLI pipe use: bounded caches + burst-1 token bucket.
    NetServerConfig config;
    config.service.maxAnswers = 4;
    config.service.maxPlanners = 2;
    config.service.tenantRps = 0.000001;
    NetServer server(config);
    ASSERT_TRUE(server.start().ok());

    std::vector<std::string> requests =
        readLines(sourcePath("examples/serve_requests.jsonl"));
    const std::vector<std::string> governed = readLines(
        sourcePath("examples/serve_requests_governed.jsonl"));
    requests.insert(requests.end(), governed.begin(), governed.end());
    const std::vector<std::string> golden = readLines(
        sourcePath("tests/integration/golden_serve_e2e.jsonl"));
    ASSERT_FALSE(requests.empty());

    NetClient client = connectLoopback(server.port());
    std::size_t sent = 0;
    for (const std::string& line : requests) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        ASSERT_TRUE(client.sendLine(line).ok());
        ++sent;
    }
    std::vector<std::string> output;
    for (std::size_t i = 0; i < sent; ++i) {
        Result<std::string> line = client.recvLine();
        ASSERT_TRUE(line.ok()) << line.error().message;
        output.push_back(line.value());
    }

    ASSERT_EQ(output.size(), golden.size());
    for (std::size_t i = 0; i < output.size(); ++i)
        EXPECT_EQ(output[i], golden[i]) << "line " << i + 1;

    // The socket hop preserved the governance behavior, and the
    // service counted this connection's traffic under its label.
    const ServiceStats stats = server.service().stats();
    EXPECT_GE(stats.rateLimited, 2u);
    EXPECT_GT(stats.answersEvicted, 0u);
    ASSERT_EQ(stats.sources.size(), 1u);
    EXPECT_EQ(stats.sources.begin()->second.requests, sent);
    server.stop();
}

TEST(NetE2E, ThunderingHerdAcrossConnectionsSimulatesDistinctOnce)
{
    // 16 connections all pipeline the same 3 throughput questions (+1
    // max_batch): across sockets the fleet must still simulate exactly
    // 3 distinct step configs, the PR-3 acceptance invariant.
    NetServer server;
    ASSERT_TRUE(server.start().ok());
    const std::uint16_t port = server.port();

    const std::vector<std::string> probes = {
        R"({"id":"q1","query":"throughput","gpu":"A40"})",
        R"({"id":"q2","query":"throughput","gpu":"H100"})",
        R"({"id":"q3","query":"throughput","gpu":"A40",)"
        R"("scenario":{"preset":"commonsense15k"}})",
        R"({"id":"q4","query":"max_batch","gpu":"A40"})",
    };

    constexpr int kConnections = 16;
    std::vector<std::vector<std::string>> answers(kConnections);
    std::vector<std::thread> clients;
    for (int c = 0; c < kConnections; ++c)
        clients.emplace_back([port, &probes, &answers, c] {
            Result<NetClient> client =
                NetClient::connectTo("127.0.0.1", port);
            ASSERT_TRUE(client.ok());
            for (const std::string& probe : probes)
                ASSERT_TRUE(client.value().sendLine(probe).ok());
            for (std::size_t i = 0; i < probes.size(); ++i) {
                Result<std::string> line = client.value().recvLine();
                ASSERT_TRUE(line.ok());
                answers[c].push_back(line.value());
            }
        });
    for (std::thread& thread : clients)
        thread.join();

    // Everyone got identical (successful) answers, in request order.
    for (int c = 0; c < kConnections; ++c) {
        ASSERT_EQ(answers[c].size(), probes.size());
        for (std::size_t i = 0; i < probes.size(); ++i) {
            EXPECT_EQ(answers[c][i], answers[0][i]);
            EXPECT_NE(answers[c][i].find("\"ok\":true"),
                      std::string::npos);
        }
    }

    const ServiceStats stats = server.service().stats();
    EXPECT_EQ(stats.stepsSimulated, 3u);
    EXPECT_EQ(stats.requests,
              static_cast<std::uint64_t>(kConnections) * probes.size());
    EXPECT_EQ(stats.executed, probes.size());
    EXPECT_EQ(stats.coalesced, stats.requests - stats.executed);
    // One stats bucket per connection, each counting its 4 requests.
    EXPECT_EQ(stats.sources.size(),
              static_cast<std::size_t>(kConnections));
    for (const auto& [label, row] : stats.sources)
        EXPECT_EQ(row.requests, probes.size()) << label;
    server.stop();
}

TEST(NetE2E, MalformedLinePoisonsOnlyItsConnection)
{
    NetServer server;
    ASSERT_TRUE(server.start().ok());

    NetClient bad = connectLoopback(server.port());
    NetClient good = connectLoopback(server.port());

    // The malformed line answers a typed error in its slot...
    Result<std::string> err = bad.ask("this is not json");
    ASSERT_TRUE(err.ok());
    EXPECT_NE(err.value().find("\"ok\":false"), std::string::npos);
    EXPECT_NE(err.value().find("InvalidArgument"), std::string::npos);
    // ...and the *same connection* keeps serving afterwards.
    Result<std::string> after =
        bad.ask(R"({"id":"a","query":"max_batch","gpu":"A40"})");
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after.value(),
              R"({"id":"a","query":"max_batch","ok":true,"value":4})");

    // The other connection never noticed.
    Result<std::string> other =
        good.ask(R"({"id":"b","query":"max_batch","gpu":"A40"})");
    ASSERT_TRUE(other.ok());
    EXPECT_EQ(other.value(),
              R"({"id":"b","query":"max_batch","ok":true,"value":4})");

    EXPECT_EQ(server.stats().protocolErrors, 1u);
    server.stop();
}

TEST(NetE2E, OversizedLineAnswersProtocolErrorAndConnectionSurvives)
{
    NetServerConfig config;
    config.maxLineBytes = 256;
    NetServer server(config);
    ASSERT_TRUE(server.start().ok());

    NetClient client = connectLoopback(server.port());
    const std::string huge(1024, 'x');
    ASSERT_TRUE(client.sendLine(huge).ok());
    Result<std::string> err = client.recvLine();
    ASSERT_TRUE(err.ok());
    EXPECT_NE(err.value().find("exceeds 256 bytes"), std::string::npos);
    EXPECT_NE(err.value().find("\"ok\":false"), std::string::npos);

    // Framing recovered at the newline: the next request answers.
    Result<std::string> after =
        client.ask(R"({"id":"ok","query":"max_batch","gpu":"A40"})");
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after.value(),
              R"({"id":"ok","query":"max_batch","ok":true,"value":4})");

    const NetServerStats stats = server.stats();
    EXPECT_EQ(stats.oversizedLines, 1u);
    server.stop();
}

TEST(NetE2E, RateLimitedArrivesAsTypedWireError)
{
    NetServerConfig config;
    config.service.tenantRps = 0.000001;  // Burst 1 per tenant.
    NetServer server(config);
    ASSERT_TRUE(server.start().ok());

    NetClient client = connectLoopback(server.port());
    Result<std::string> first = client.ask(
        R"({"id":"m1","tenant":"mallory","query":"max_batch","gpu":"A40"})");
    ASSERT_TRUE(first.ok());
    EXPECT_NE(first.value().find("\"ok\":true"), std::string::npos);
    Result<std::string> second = client.ask(
        R"({"id":"m2","tenant":"mallory","query":"max_batch","gpu":"H100"})");
    ASSERT_TRUE(second.ok());
    EXPECT_NE(second.value().find("\"error\":\"RateLimited\""),
              std::string::npos);
    EXPECT_NE(second.value().find("\"id\":\"m2\""), std::string::npos);
    server.stop();
}

TEST(NetE2E, GracefulStopDrainsInflightAnswers)
{
    // Submit a report-sized request, then immediately request stop:
    // the answer must still compute, flush, and arrive before the
    // connection closes — SIGTERM never loses admitted work.
    NetServerConfig config;
    config.service.workers = 1;
    NetServer server(config);
    ASSERT_TRUE(server.start().ok());

    NetClient client = connectLoopback(server.port());
    ASSERT_TRUE(
        client
            .sendLine(R"({"id":"slow","query":"report","gpu":"A40"})")
            .ok());
    // Wait until the loop has *admitted* the request before stopping,
    // so the test exercises "drain in-flight", not "reject unread
    // input" (requests is bumped at submission).
    while (server.service().stats().requests < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    server.requestStop();

    Result<std::string> slow = client.recvLine();
    ASSERT_TRUE(slow.ok()) << slow.error().message;
    EXPECT_NE(slow.value().find("\"id\":\"slow\""), std::string::npos);
    EXPECT_NE(slow.value().find("\"ok\":true"), std::string::npos);
    // After the drain the server closes the connection...
    Result<std::string> eof = client.recvLine();
    EXPECT_FALSE(eof.ok());
    server.stop();
    EXPECT_TRUE(server.stopped());
    // ...and the listener: new connects are refused.
    Result<NetClient> refused =
        NetClient::connectTo("127.0.0.1", server.port());
    EXPECT_FALSE(refused.ok());
}

TEST(NetE2E, StatsQueryScrapesTheLiveRegistryOverTheWire)
{
    NetServer server;
    ASSERT_TRUE(server.start().ok());
    NetClient client = connectLoopback(server.port());

    Result<std::string> first = client.ask(
        R"({"id":"q1","query":"max_batch","gpu":"A40"})");
    ASSERT_TRUE(first.ok());
    Result<std::string> second = client.ask(
        R"({"id":"q2","query":"max_batch","gpu":"H100"})");
    ASSERT_TRUE(second.ok());

    Result<std::string> scrape =
        client.ask(R"({"id":"s1","query":"stats"})");
    ASSERT_TRUE(scrape.ok()) << scrape.error().message;
    const std::string& line = scrape.value();
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
    EXPECT_NE(line.find("\"id\":\"s1\""), std::string::npos);
    EXPECT_NE(line.find("\"stats\":{"), std::string::npos);
    // One registry covers both layers: the front end's net.* cells
    // and the service's serve.* cells arrive in the same scrape, and
    // the scrape observes itself (requests count before answering).
    EXPECT_NE(line.find("\"net.conn.accepted\":1"), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"net.requests\":3"), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"serve.requests\":3"), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"serve.executed\":"), std::string::npos);

    // A second scrape is answered fresh, never cached: it must see
    // the first one in the request counters.
    Result<std::string> again =
        client.ask(R"({"id":"s2","query":"stats"})");
    ASSERT_TRUE(again.ok());
    EXPECT_NE(again.value().find("\"net.requests\":4"),
              std::string::npos)
        << again.value();

    server.stop();
    // The legacy stats struct is a view over the same cells.
    EXPECT_EQ(server.stats().requests, 4u);
    EXPECT_EQ(server.statsRegistry()->snapshot().counter(
                  "net.requests"),
              4u);
}

TEST(NetE2E, IdleTimeoutReapsQuietConnections)
{
    NetServerConfig config;
    config.idleTimeoutMs = 50.0;
    NetServer server(config);
    ASSERT_TRUE(server.start().ok());

    NetClient client = connectLoopback(server.port());
    // An active exchange works...
    Result<std::string> answer =
        client.ask(R"({"id":"x","query":"max_batch","gpu":"A40"})");
    ASSERT_TRUE(answer.ok());
    // ...then silence: the server closes the connection (EOF), the
    // idle reaper's doing, not an error.
    Result<std::string> eof = client.recvLine();
    EXPECT_FALSE(eof.ok());
    EXPECT_EQ(server.stats().idleClosed, 1u);
    server.stop();
}

TEST(NetE2E, HalfCloseStillAnswersEverythingSent)
{
    // A client that sends its batch and shuts down its write side
    // (ftsim_client's pattern) still receives every answer.
    NetServer server;
    ASSERT_TRUE(server.start().ok());
    NetClient client = connectLoopback(server.port());
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(
            client
                .sendLine(strCat(R"({"id":"q)", i,
                                 R"(","query":"max_batch","gpu":"A40"})"))
                .ok());
    client.finishSending();
    for (int i = 0; i < 4; ++i) {
        Result<std::string> line = client.recvLine();
        ASSERT_TRUE(line.ok()) << line.error().message;
        EXPECT_NE(line.value().find(strCat("\"id\":\"q", i, '"')),
                  std::string::npos);
    }
    server.stop();
}

}  // namespace
}  // namespace ftsim
