/**
 * @file
 * LineFramer tests: the net layer's byte-stream reassembly contract.
 *
 * TCP hands the server arbitrary fragments, so the framer must produce
 * the *same frames for every split* of the same byte stream — the fuzz
 * tests below replay one stream under thousands of seeded random
 * fragmentations and compare against the whole-stream reference.
 * Oversized lines must cost one overflow frame and bounded memory
 * (partialBytes() never exceeds the cap), never a crash or a stall.
 */

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "net/framing.hpp"

namespace ftsim {
namespace {

/** Feeds @p stream in one call and collects every frame. */
std::vector<LineFramer::Frame>
frameAll(LineFramer& framer, const std::string& stream)
{
    framer.feed(stream.data(), stream.size());
    std::vector<LineFramer::Frame> frames;
    LineFramer::Frame frame;
    while (framer.next(frame))
        frames.push_back(frame);
    return frames;
}

TEST(NetFraming, SplitsLinesOnNewlines)
{
    LineFramer framer(1024);
    const auto frames = frameAll(framer, "alpha\nbeta\ngamma\n");
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].line, "alpha");
    EXPECT_EQ(frames[1].line, "beta");
    EXPECT_EQ(frames[2].line, "gamma");
    for (const auto& frame : frames)
        EXPECT_FALSE(frame.overflow);
}

TEST(NetFraming, HoldsPartialLineUntilTerminated)
{
    LineFramer framer(1024);
    framer.feed("hel", 3);
    LineFramer::Frame frame;
    EXPECT_FALSE(framer.next(frame));
    EXPECT_EQ(framer.partialBytes(), 3u);
    framer.feed("lo\n", 3);
    ASSERT_TRUE(framer.next(frame));
    EXPECT_EQ(frame.line, "hello");
    EXPECT_EQ(framer.partialBytes(), 0u);
}

TEST(NetFraming, StripsCarriageReturns)
{
    LineFramer framer(1024);
    const auto frames = frameAll(framer, "one\r\ntwo\n");
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].line, "one");
    EXPECT_EQ(frames[1].line, "two");
}

TEST(NetFraming, EmptyLinesAreFrames)
{
    // The framer reports them; skipping blanks is protocol policy
    // (the server's), not framing policy.
    LineFramer framer(1024);
    const auto frames = frameAll(framer, "\n\nx\n");
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames[0].line, "");
    EXPECT_EQ(frames[1].line, "");
    EXPECT_EQ(frames[2].line, "x");
}

TEST(NetFraming, OversizedLineYieldsOneOverflowFrameAndRecovers)
{
    LineFramer framer(8);
    const auto frames =
        frameAll(framer, "0123456789abcdef\nshort\n");
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_TRUE(frames[0].overflow);
    EXPECT_FALSE(frames[1].overflow);
    EXPECT_EQ(frames[1].line, "short");
    EXPECT_FALSE(framer.discarding());
}

TEST(NetFraming, ExactlyCapSizedLinePasses)
{
    LineFramer framer(8);
    const auto frames = frameAll(framer, "12345678\n");
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_FALSE(frames[0].overflow);
    EXPECT_EQ(frames[0].line, "12345678");
}

TEST(NetFraming, OversizedTailStreamedByteByByteStaysBounded)
{
    // A peer streaming an unterminated gigabyte must cost one overflow
    // frame and O(cap) memory, however the bytes arrive.
    constexpr std::size_t kCap = 16;
    LineFramer framer(kCap);
    std::size_t overflows = 0;
    for (int i = 0; i < 4096; ++i) {
        const char byte = 'x';
        framer.feed(&byte, 1);
        EXPECT_LE(framer.partialBytes(), kCap);
        LineFramer::Frame frame;
        while (framer.next(frame)) {
            EXPECT_TRUE(frame.overflow);
            ++overflows;
        }
    }
    EXPECT_EQ(overflows, 1u);
    EXPECT_TRUE(framer.discarding());
    // The newline ends the discard; framing resumes cleanly.
    framer.feed("\nok\n", 4);
    LineFramer::Frame frame;
    ASSERT_TRUE(framer.next(frame));
    EXPECT_EQ(frame.line, "ok");
}

TEST(NetFraming, EverySplitOfAStreamYieldsIdenticalFrames)
{
    // The core contract: frames depend on the byte stream, never on
    // how reads fragmented it. 2000 seeded random fragmentations of a
    // stream mixing short lines, empty lines, CRLF, an oversized line,
    // and a trailing partial — all must match the one-shot reference.
    std::string stream;
    stream += "{\"q\":1}\n";
    stream += "\n";
    stream += "second line\r\n";
    stream += std::string(300, 'A') + "\n";  // Oversized at cap 64.
    stream += "after-overflow\n";
    stream += "{\"q\":2}\n";
    stream += "trailing-partial-without-newline";

    LineFramer reference(64);
    reference.feed(stream.data(), stream.size());
    std::vector<LineFramer::Frame> expected;
    LineFramer::Frame frame;
    while (reference.next(frame))
        expected.push_back(frame);
    ASSERT_EQ(expected.size(), 6u);
    EXPECT_TRUE(expected[3].overflow);

    std::mt19937 rng(20260730);
    for (int round = 0; round < 2000; ++round) {
        LineFramer framer(64);
        std::vector<LineFramer::Frame> got;
        std::size_t pos = 0;
        while (pos < stream.size()) {
            const std::size_t chunk = std::uniform_int_distribution<
                std::size_t>(1, 17)(rng);
            const std::size_t take =
                std::min(chunk, stream.size() - pos);
            framer.feed(stream.data() + pos, take);
            pos += take;
            while (framer.next(frame))
                got.push_back(frame);
        }
        ASSERT_EQ(got.size(), expected.size()) << "round " << round;
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].overflow, expected[i].overflow)
                << "round " << round << " frame " << i;
            EXPECT_EQ(got[i].line, expected[i].line)
                << "round " << round << " frame " << i;
        }
        EXPECT_EQ(framer.partialBytes(),
                  std::string("trailing-partial-without-newline")
                      .size());
    }
}

TEST(NetFraming, InterleavedFeedsAcrossFramersStayIndependent)
{
    // Two connections share nothing: interleaving their partial writes
    // through separate framers must reassemble each stream intact
    // (the per-connection isolation the server relies on).
    LineFramer a(64);
    LineFramer b(64);
    a.feed("first-half-", 11);
    b.feed("other{", 6);
    a.feed("of-a\n", 5);
    b.feed("}conn\n", 6);
    LineFramer::Frame frame;
    ASSERT_TRUE(a.next(frame));
    EXPECT_EQ(frame.line, "first-half-of-a");
    ASSERT_TRUE(b.next(frame));
    EXPECT_EQ(frame.line, "other{}conn");
}

}  // namespace
}  // namespace ftsim
