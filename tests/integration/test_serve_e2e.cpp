/**
 * @file
 * Golden end-to-end serving test (ISSUE-4): replay the example request
 * file plus the governed (quota + eviction) fixture through a bounded
 * `PlanService`, exactly the way `tools/ftsim_serve.cpp` does — submit
 * every line in input order, then print one response per line with the
 * caller's id restamped — and compare the wire output *byte-exactly*
 * against the checked-in golden file.
 *
 * The same golden gates the CLI itself: ci.sh pipes the same two
 * fixtures through `ftsim_serve --max-answers 4 --max-planners 2
 * --tenant-rps 0.000001` and diffs against it, so the in-process
 * service and the tool can never drift apart on the wire.
 *
 * Determinism: every answer is a pure function of the request (evicted
 * entries recompute identically), and admission decisions happen at
 * submit time on one thread, so the rejection pattern depends only on
 * input order — tenant "mallory" always gets its burst of 1, then
 * RateLimited. Regenerate after an intentional protocol change with:
 *
 *   cat examples/serve_requests.jsonl \
 *       examples/serve_requests_governed.jsonl \
 *     | ./build/ftsim_serve - --max-answers 4 --max-planners 2 \
 *         --tenant-rps 0.000001 \
 *     > tests/integration/golden_serve_e2e.jsonl
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/plan_service.hpp"

#ifndef FTSIM_SOURCE_DIR
#error "FTSIM_SOURCE_DIR must point at the repo root (set by CMake)"
#endif

namespace ftsim {
namespace {

std::string
sourcePath(const std::string& relative)
{
    return std::string(FTSIM_SOURCE_DIR) + "/" + relative;
}

std::vector<std::string>
readLines(const std::string& path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

/** ServiceConfig matching the flags ci.sh passes to ftsim_serve. */
ServiceConfig
goldenConfig()
{
    ServiceConfig config;
    config.maxAnswers = 4;
    config.maxPlanners = 2;
    config.tenantRps = 0.000001;  // Burst-only: 1 request per tenant.
    return config;
}

TEST(ServeE2E, GoldenOutputIsByteExact)
{
    std::vector<std::string> requests =
        readLines(sourcePath("examples/serve_requests.jsonl"));
    const std::vector<std::string> governed = readLines(
        sourcePath("examples/serve_requests_governed.jsonl"));
    requests.insert(requests.end(), governed.begin(), governed.end());
    ASSERT_FALSE(requests.empty());

    const std::vector<std::string> golden = readLines(
        sourcePath("tests/integration/golden_serve_e2e.jsonl"));

    PlanService service(goldenConfig());

    // Mirror ftsim_serve: admit everything up front in input order,
    // then resolve in input order with the caller's id restamped.
    struct Slot {
        std::string id;
        bool parsed = false;
        std::string parseError;
        std::shared_future<PlanResponse> future;
    };
    std::vector<Slot> slots;
    for (const std::string& line : requests) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        Slot slot;
        Result<PlanRequest> request = parsePlanRequest(line);
        if (request) {
            slot.id = request.value().id;
            slot.parsed = true;
            slot.future = service.submit(request.value());
        } else {
            slot.parseError = request.error().message;
        }
        slots.push_back(std::move(slot));
    }

    std::vector<std::string> output;
    for (Slot& slot : slots) {
        if (!slot.parsed) {
            output.push_back(
                writeProtocolError(slot.id, slot.parseError));
            continue;
        }
        PlanResponse response = slot.future.get();
        response.id = slot.id;
        output.push_back(writePlanResponse(response));
    }

    ASSERT_EQ(output.size(), golden.size())
        << "response count diverged from the golden file — "
           "regenerate it if the fixtures changed (see file comment)";
    for (std::size_t i = 0; i < output.size(); ++i)
        EXPECT_EQ(output[i], golden[i]) << "line " << i + 1;

    // The fixture must actually exercise the governance layer, or the
    // golden stops guarding it: quota rejections AND evictions.
    const ServiceStats stats = service.stats();
    EXPECT_GE(stats.rateLimited, 2u);  // mallory-2, mallory-3.
    EXPECT_GT(stats.answersEvicted, 0u);
    EXPECT_LE(stats.answersCachedPeak, 4u);
    EXPECT_EQ(stats.tenants.at("mallory").admitted, 1u);
    EXPECT_EQ(stats.tenants.at("mallory").rejectedRate, 2u);
    EXPECT_EQ(stats.tenants.at("eve").admitted, 1u);
}

}  // namespace
}  // namespace ftsim
