/**
 * @file
 * Integration tests: full pipelines across modules, mirroring the
 * paper's experiments end to end at miniature scale.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "data/batching.hpp"
#include "train/imbalance.hpp"
#include "train/pretrain.hpp"
#include "train/trainer.hpp"

namespace ftsim {
namespace {

MiniModelConfig
trainableMixtral()
{
    MiniModelConfig cfg = MiniModelConfig::miniMixtral();
    cfg.vocab = Vocab::kSize;
    cfg.dModel = 32;
    cfg.nLayers = 2;
    cfg.nHeads = 4;
    cfg.dFf = 64;
    cfg.nExperts = 8;
    cfg.topK = 2;
    cfg.loraRank = 4;
    return cfg;
}

Dataset
csTrainSet(std::size_t n = 96)
{
    DatasetSpec spec = DatasetSpec::commonsense15k();
    spec.numQueries = n;
    spec.medianSeqLen = 12.0;
    spec.lengthSigma = 0.25;
    return Dataset::generate(spec);
}

TEST(EndToEnd, SparseQloraFineTuningLearnsCommonsenseTask)
{
    // The Fig. 3 story at miniature scale, with the paper's full flow:
    // pre-train a dense base on generic text, quantize into QLoRA, then
    // fine-tune. Pre-trained accuracy starts low ("<25%" in §IV-A) and
    // climbs to a useful level within ten epochs.
    Dataset corpus = Dataset::generate(DatasetSpec::genericCorpus(256, 14.0));
    auto model = makePretrainedQlora(trainableMixtral(), corpus, 120, 16,
                                     3e-3, /*exclude_answers=*/false);
    Dataset train_set = csTrainSet(128);

    EvalResult before = evaluateExactMatch(*model, train_set, 16, 64);
    EXPECT_LT(before.exactMatch, 0.25);  // Pre-trained: low accuracy.

    AdamW opt(model->trainableParameters(), 8e-3);
    TrainerOptions options;
    options.batchSize = 16;
    Trainer trainer(*model, opt, options);
    for (int epoch = 0; epoch < 10; ++epoch)
        trainer.trainEpoch(train_set);
    EvalResult after = evaluateExactMatch(*model, train_set, 16, 64);

    EXPECT_GT(after.exactMatch, before.exactMatch + 0.25)
        << "before " << before.exactMatch << " after "
        << after.exactMatch;
    EXPECT_LT(after.meanLoss, before.meanLoss);
}

TEST(EndToEnd, FineTuningChangesExpertLoadDistribution)
{
    // The Fig. 11 direction: fine-tuning shifts the router's token
    // distribution (for the attention-MoE model it concentrates).
    MoeLlm model(trainableMixtral());
    Dataset train_set = csTrainSet(64);

    ExpertLoadProfile before = measureExpertLoad(model, train_set, 16);
    AdamW opt(model.trainableParameters(), 8e-3);
    TrainerOptions options;
    options.batchSize = 16;
    Trainer trainer(model, opt, options);
    for (int epoch = 0; epoch < 6; ++epoch)
        trainer.trainEpoch(train_set);
    ExpertLoadProfile after = measureExpertLoad(model, train_set, 16);

    // The distribution must move; we check it is not frozen in place.
    double moved = 0.0;
    for (std::size_t e = 0; e < before.avgTokensPerQuery.size(); ++e)
        moved += std::abs(after.avgTokensPerQuery[e] -
                          before.avgTokensPerQuery[e]);
    EXPECT_GT(moved, 1e-3);
}

TEST(EndToEnd, AnalyticalPipelineMatchesSimulatorThroughput)
{
    // §V validation loop: fit Eq. 2 on the simulator, then check that
    // predictions at held-out batch sizes stay close to the simulator.
    ModelSpec spec = ModelSpec::mixtral8x7b();
    GpuSpec gpu = GpuSpec::a40();
    ThroughputFit fit =
        ExperimentPipeline::fitThroughput(spec, gpu, 148);
    FineTuneSim sim(spec, gpu);
    // Interpolated, non-integer batch behaviour is smooth; check the
    // model at swept points directly.
    for (const auto& obs : fit.observations) {
        double predicted = fit.model.predict(obs.batchSize, obs.sparsity);
        EXPECT_NEAR(predicted, obs.qps, 0.8);
    }
}

TEST(EndToEnd, CostPipelineEndToEnd)
{
    // Table IV + OpenOrca projection recipe.
    auto rows = ExperimentPipeline::costTable(
        ModelSpec::mixtral8x7b(), GpuSpec::paperGpus(),
        CloudCatalog::cudoCompute(), 148, true, 14000.0, 10.0);
    ASSERT_EQ(rows.size(), 3u);  // A40, A100-80GB, H100 priced.
    for (const auto& row : rows) {
        EXPECT_GT(row.maxBatchSize, 0);
        EXPECT_GT(row.throughputQps, 0.0);
        EXPECT_GT(row.totalDollars, 0.0);
        // Fine-tuning is orders cheaper than pre-training: sanity bound.
        EXPECT_LT(row.totalDollars, 10000.0);
    }
}

TEST(EndToEnd, DenseAndSparseConvergeToSimilarLoss)
{
    // Takeaway 1 at miniature scale: sparse top-2 routing trains about
    // as well as dense routing on the same task/seed.
    Dataset train_set = csTrainSet(64);

    auto final_loss = [&](std::size_t top_k) {
        MiniModelConfig cfg = trainableMixtral();
        cfg.topK = top_k;
        MoeLlm model(cfg);
        AdamW opt(model.trainableParameters(), 8e-3);
        TrainerOptions options;
        options.batchSize = 16;
        Trainer trainer(model, opt, options);
        double loss = 0.0;
        for (int epoch = 0; epoch < 6; ++epoch)
            loss = trainer.trainEpoch(train_set).meanLoss;
        return loss;
    };
    double sparse = final_loss(2);
    double dense = final_loss(8);
    EXPECT_NEAR(sparse, dense, 0.8);
}

}  // namespace
}  // namespace ftsim
