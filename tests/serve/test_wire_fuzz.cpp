/**
 * @file
 * Deterministic fuzzing for the binary wire codec (ISSUE-10), the
 * binary sibling of test_protocol_fuzz.cpp: a seeded generator mutates
 * valid frames — byte flips, truncation, length-prefix patches, tag
 * sweeps, splices, duplicated spans — and both layers must hold their
 * contracts for every input:
 *
 *  - `WireFramer` never crashes; it yields frames, poisons, or waits
 *    for more bytes. Post-poison it consumes nothing further.
 *  - `decodeWirePayload` returns a decoded message or one typed
 *    `InvalidArgument`; never any other error, crash, or throw.
 *  - Accepted mutants survive a re-encode -> re-decode round trip
 *    with their identity intact (canonical key for requests, the JSON
 *    writer's bytes for responses).
 *
 * Fixed seed + fixed iteration count make this a regression corpus: a
 * failure reproduces by seed and iteration index alone. ci.sh also
 * runs this suite under ASan+UBSan, where "never crash" hardens into
 * "no UB at all".
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "net/framing.hpp"
#include "serve/protocol.hpp"
#include "serve/wire.hpp"

namespace ftsim {
namespace {

/** Valid frames of every message type the mutator starts from. */
std::vector<std::string>
seedCorpus()
{
    std::vector<std::string> corpus;

    // One request frame per kind, fields filled per its rules.
    for (QueryKind kind :
         {QueryKind::MaxBatch, QueryKind::Throughput,
          QueryKind::CostTable, QueryKind::CheapestPlan,
          QueryKind::Report, QueryKind::Snapshot,
          QueryKind::LoadSnapshot, QueryKind::Fleet,
          QueryKind::Stats}) {
        PlanRequest req;
        req.id = "fuzz";
        req.query = kind;
        if (kind == QueryKind::MaxBatch ||
            kind == QueryKind::Throughput || kind == QueryKind::Report)
            req.gpu = "A40";
        else if (kind == QueryKind::CostTable ||
                 kind == QueryKind::CheapestPlan)
            req.gpus = {"A40", "H100"};
        if (kind == QueryKind::LoadSnapshot)
            req.snapshot = std::string("raw\0bytes\xff", 10);
        if (!isLiveKind(kind)) {
            req.tenant = "fuzz-tenant";
            req.scenario = Scenario::gsMath()
                               .withMedianSeqLen(256)
                               .withLengthSigma(0.45)
                               .withNumQueries(2.0e6)
                               .withEpochs(3.0);
            req.rates = {{"user", "L40S", 1.05}};
        }
        corpus.push_back(encodeRequestFrame(req));
    }

    // Response frames: a value, a cost table, and an error.
    {
        PlanResponse resp;
        resp.query = QueryKind::Throughput;
        resp.id = "r1";
        resp.ok = true;
        resp.value = 1234.5678;
        corpus.push_back(encodeResponseFrame(resp));
    }
    {
        PlanResponse resp;
        resp.query = QueryKind::CostTable;
        resp.id = "r2";
        resp.ok = true;
        resp.rows = {{"A40", 48.0, 18, 42.5, 1.28, 96.4},
                     {"H100", 80.0, 44, 97.25, 4.76, 131.9}};
        corpus.push_back(encodeResponseFrame(resp));
    }
    {
        PlanRequest failing;
        failing.id = "r3";
        failing.query = QueryKind::MaxBatch;
        corpus.push_back(encodeResponseFrame(errorResponse(
            failing,
            Error{ErrorCode::UnknownGpu, "no such GPU \"B300\""})));
    }

    // A protocol-error frame (the third message type).
    corpus.push_back(
        encodeProtocolErrorFrame("p1", "bad frame: fuzz seed"));
    return corpus;
}

/** One seeded mutation of the frame bytes. */
std::string
mutate(std::string frame, std::mt19937& rng)
{
    auto pick = [&rng](std::size_t n) {
        return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
    };
    switch (pick(8)) {
    case 0:  // Truncate at a random byte.
        return frame.substr(0, pick(frame.size() + 1));
    case 1: {  // Flip one byte to an arbitrary value.
        if (frame.empty())
            return frame;
        frame[pick(frame.size())] =
            static_cast<char>(static_cast<unsigned char>(pick(256)));
        return frame;
    }
    case 2: {  // Patch the u32 length prefix (header bytes 4..7).
        if (frame.size() < kWireHeaderBytes)
            return frame;
        static const std::uint32_t lengths[] = {
            0, 1, 2, 0x7fffffffu, 0xffffffffu, 1u << 20, 9, 64,
        };
        const std::uint32_t len = lengths[pick(8)];
        std::memcpy(&frame[4], &len, sizeof(len));
        return frame;
    }
    case 3: {  // Sweep a tag / type byte through small values.
        if (frame.size() <= kWireHeaderBytes)
            return frame;
        const std::size_t pos =
            kWireHeaderBytes +
            pick(frame.size() - kWireHeaderBytes);
        frame[pos] = static_cast<char>(pick(16));
        return frame;
    }
    case 4: {  // Duplicate a random span in place.
        if (frame.empty())
            return frame;
        const std::size_t start = pick(frame.size());
        const std::size_t len = pick(frame.size() - start) + 1;
        return frame.insert(start, frame.substr(start, len));
    }
    case 5: {  // Delete a random span (length prefix goes stale).
        if (frame.empty())
            return frame;
        const std::size_t start = pick(frame.size());
        frame.erase(start, pick(frame.size() - start) + 1);
        return frame;
    }
    case 6: {  // Append arbitrary trailing bytes.
        const std::size_t extra = pick(16) + 1;
        for (std::size_t i = 0; i < extra; ++i)
            frame.push_back(static_cast<char>(
                static_cast<unsigned char>(pick(256))));
        return frame;
    }
    default:  // Concatenate with itself (back-to-back frames).
        return frame + frame;
    }
}

/** Feeds @p bytes through a fresh framer and returns every payload it
 *  yields as a *binary* frame (JSON lines the mutant happens to form
 *  are the line parser's problem, fuzzed elsewhere). */
std::vector<std::string>
frameOut(const std::string& bytes)
{
    WireFramer framer(1 << 20);
    framer.feed(bytes.data(), bytes.size());
    std::vector<std::string> payloads;
    WireFramer::Frame frame;
    while (framer.next(frame))
        if (frame.binary)
            payloads.push_back(std::move(frame.payload));
    if (framer.poisoned())
        EXPECT_FALSE(framer.poisonReason().empty());
    return payloads;
}

TEST(WireFuzz, FramerAndDecoderNeverCrashAndErrorsAreTyped)
{
    const std::vector<std::string> corpus = seedCorpus();
    std::mt19937 rng(20260809);  // Fixed seed: a corpus, not a dice roll.

    constexpr int kIterations = 12000;
    int accepted = 0, rejected = 0, framed = 0;
    for (int i = 0; i < kIterations; ++i) {
        std::string bytes = corpus[static_cast<std::size_t>(i) %
                                   corpus.size()];
        // Stack 1-3 mutations for compound damage.
        const int rounds = 1 + static_cast<int>(rng() % 3);
        for (int r = 0; r < rounds; ++r)
            bytes = mutate(std::move(bytes), rng);

        for (const std::string& payload : frameOut(bytes)) {
            ++framed;
            Result<WireMessage> decoded = decodeWirePayload(payload);
            if (!decoded.ok()) {
                // The whole contract for bad input: one typed error.
                ASSERT_EQ(decoded.code(), ErrorCode::InvalidArgument)
                    << "iteration " << i;
                ++rejected;
                continue;
            }
            ++accepted;
            // Accepted mutants must round-trip with identity intact.
            const WireMessage& msg = decoded.value();
            std::string reencoded;
            if (msg.type == WireMsg::Request)
                reencoded = encodeRequestFrame(msg.request);
            else if (msg.type == WireMsg::Response)
                reencoded = encodeResponseFrame(msg.response);
            else
                reencoded = encodeProtocolErrorFrame(
                    msg.errorId, msg.errorMessage);
            Result<WireMessage> redecoded = decodeWirePayload(
                reencoded.substr(kWireHeaderBytes));
            ASSERT_TRUE(redecoded.ok())
                << "iteration " << i << ": accepted a frame but "
                << "rejected its own re-encode: "
                << redecoded.error().describe();
            ASSERT_EQ(redecoded.value().type, msg.type)
                << "iteration " << i;
            if (msg.type == WireMsg::Request)
                ASSERT_EQ(redecoded.value().request.canonicalKey(),
                          msg.request.canonicalKey())
                    << "iteration " << i;
            else if (msg.type == WireMsg::Response)
                ASSERT_EQ(
                    writePlanResponse(redecoded.value().response),
                    writePlanResponse(msg.response))
                    << "iteration " << i;
            else
                ASSERT_EQ(redecoded.value().errorMessage,
                          msg.errorMessage)
                    << "iteration " << i;
        }
    }

    // The generator must actually exercise every side of the contract;
    // if any count collapses to ~zero the fuzz has gone blind.
    EXPECT_GT(framed, 1000);
    EXPECT_GT(rejected, 500);
    EXPECT_GT(accepted, 100);
}

TEST(WireFuzz, SplitPointsNeverChangeTheOutcome)
{
    // Reassembly must be byte-stream-shape independent: feeding a
    // mutant in two arbitrary chunks yields the same frames (or the
    // same poison) as feeding it whole.
    const std::vector<std::string> corpus = seedCorpus();
    std::mt19937 rng(20260810);

    for (int i = 0; i < 600; ++i) {
        std::string bytes = corpus[static_cast<std::size_t>(i) %
                                   corpus.size()];
        bytes = mutate(std::move(bytes), rng);
        if (bytes.empty())
            continue;

        const std::vector<std::string> whole = frameOut(bytes);

        const std::size_t cut =
            std::uniform_int_distribution<std::size_t>(
                0, bytes.size())(rng);
        WireFramer framer(1 << 20);
        framer.feed(bytes.data(), cut);
        framer.feed(bytes.data() + cut, bytes.size() - cut);
        std::vector<std::string> split;
        WireFramer::Frame frame;
        while (framer.next(frame))
            if (frame.binary)
                split.push_back(std::move(frame.payload));

        ASSERT_EQ(split, whole)
            << "iteration " << i << " cut at " << cut;
    }
}

TEST(WireFuzz, PathologicalShapesAreHandledQuickly)
{
    // Hand-picked nasties a random walk might miss. Each must resolve
    // (frame, poison, or typed error) without crash or quadratic blowup.
    const std::string magic(1, static_cast<char>(kWireMagic));
    const std::string bombs[] = {
        std::string(1 << 20, static_cast<char>(kWireMagic)),
        magic + std::string(1 << 20, '\0'),
        // A maximal in-cap length prefix with no payload behind it.
        wireFrame("x").substr(0, kWireHeaderBytes),
        // A huge string-length prefix inside a tiny payload.
        wireFrame(std::string("\x01\x02\xff\xff\xff\xff", 6)),
        // Deep tag soup: every byte is a plausible small tag.
        wireFrame(std::string(1 << 16, '\x01')),
    };
    for (const std::string& bomb : bombs) {
        for (const std::string& payload : frameOut(bomb)) {
            Result<WireMessage> decoded = decodeWirePayload(payload);
            if (!decoded.ok())
                EXPECT_EQ(decoded.code(), ErrorCode::InvalidArgument);
        }
    }
}

}  // namespace
}  // namespace ftsim
