/**
 * @file
 * Binary wire codec tests: encode->decode round-trips for every
 * message shape, byte-identity of the decoded-then-JSON-written
 * response against the JSON path, and strict typed rejection of
 * hostile payloads (the valid-or-InvalidArgument contract the fuzzer
 * hammers at scale).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "serve/protocol.hpp"
#include "serve/wire.hpp"

namespace ftsim {
namespace {

PlanRequest
requestOfKind(QueryKind kind)
{
    PlanRequest req;
    req.id = "wire-9";
    req.query = kind;
    switch (kind) {
    case QueryKind::MaxBatch:
    case QueryKind::Throughput:
    case QueryKind::Report:
        req.gpu = "A40";
        break;
    case QueryKind::CostTable:
    case QueryKind::CheapestPlan:
        req.gpus = {"A40", "H100"};
        break;
    default: break;
    }
    if (!isLiveKind(kind)) {
        req.scenario = Scenario::commonsense15k().withEpochs(3.0);
        req.rates = {{"user", "L40S", 1.05}};
    }
    if (kind == QueryKind::LoadSnapshot)
        req.snapshot = std::string("raw\0bytes\xff\n", 11);
    return req;
}

/** Strips the header, asserting it validates. */
std::string
payloadOf(const std::string& frame)
{
    EXPECT_GE(frame.size(), kWireHeaderBytes);
    Result<std::uint32_t> len = parseWireHeader(
        reinterpret_cast<const unsigned char*>(frame.data()));
    EXPECT_TRUE(len.ok()) << len.error().describe();
    EXPECT_EQ(frame.size(), kWireHeaderBytes + len.value());
    return frame.substr(kWireHeaderBytes);
}

Result<WireMessage>
decodeFrame(const std::string& frame)
{
    return decodeWirePayload(payloadOf(frame));
}

TEST(Wire, RoundTripsEveryRequestKind)
{
    for (QueryKind kind :
         {QueryKind::MaxBatch, QueryKind::Throughput,
          QueryKind::CostTable, QueryKind::CheapestPlan,
          QueryKind::Report, QueryKind::Snapshot, QueryKind::Fleet,
          QueryKind::LoadSnapshot, QueryKind::Stats}) {
        const PlanRequest original = requestOfKind(kind);
        const std::string frame = encodeRequestFrame(original);
        Result<WireMessage> decoded = decodeFrame(frame);
        ASSERT_TRUE(decoded.ok())
            << queryKindName(kind) << ": "
            << decoded.error().describe();
        ASSERT_EQ(decoded.value().type, WireMsg::Request);
        const PlanRequest& got = decoded.value().request;
        EXPECT_EQ(got.id, original.id);
        EXPECT_EQ(got.query, original.query);
        EXPECT_EQ(got.gpu, original.gpu);
        EXPECT_EQ(got.gpus, original.gpus);
        EXPECT_EQ(got.snapshot, original.snapshot);
        // Coalescing identity must survive the wire exactly, and the
        // decoded request must re-serialize to the JSON path's bytes.
        EXPECT_EQ(got.canonicalKey(), original.canonicalKey());
        EXPECT_EQ(writePlanRequest(got), writePlanRequest(original));
        // Deterministic encode.
        EXPECT_EQ(encodeRequestFrame(got), frame);
    }
}

TEST(Wire, RoundTripsTenantAndModels)
{
    PlanRequest req = requestOfKind(QueryKind::Throughput);
    req.tenant = "team-a";
    req.scenario.withModel(ModelSpec::blackMamba2p8b());
    Result<WireMessage> decoded = decodeFrame(encodeRequestFrame(req));
    ASSERT_TRUE(decoded.ok()) << decoded.error().describe();
    EXPECT_EQ(decoded.value().request.tenant, "team-a");
    EXPECT_EQ(decoded.value().request.canonicalKey(),
              req.canonicalKey());
}

TEST(Wire, RoundTripsFullDoublePrecision)
{
    PlanRequest req = requestOfKind(QueryKind::MaxBatch);
    req.scenario.withLengthSigma(0.1 + 0.2);  // 0.30000000000000004
    req.scenario.withNumQueries(1.0 / 3.0);
    Result<WireMessage> decoded = decodeFrame(encodeRequestFrame(req));
    ASSERT_TRUE(decoded.ok()) << decoded.error().describe();
    EXPECT_EQ(decoded.value().request.scenario.lengthSigma,
              req.scenario.lengthSigma);
    EXPECT_EQ(decoded.value().request.scenario.numQueries,
              req.scenario.numQueries);
}

/** The tentpole identity: decode + writePlanResponse must reproduce
 *  the JSON path's bytes for every response shape. */
TEST(Wire, ResponseDecodePlusJsonWriteIsByteIdentical)
{
    std::vector<PlanResponse> responses;
    {
        PlanResponse r;
        r.id = "a";
        r.query = QueryKind::MaxBatch;
        r.ok = true;
        r.value = 12.0;
        responses.push_back(r);
    }
    {
        PlanResponse r;
        r.id = "b";
        r.query = QueryKind::Throughput;
        r.ok = true;
        r.value = 171.03534942734618;
        responses.push_back(r);
    }
    {
        PlanResponse r;
        r.id = "c";
        r.query = QueryKind::CostTable;
        r.ok = true;
        r.rows = {{"A40", 44.98, 12, 101.5, 1.28, 543.21},
                  {"H100", 79.0, 31, 402.125, 4.76, 98.0625}};
        responses.push_back(r);
    }
    {
        PlanResponse r;
        r.id = "d";
        r.query = QueryKind::CheapestPlan;
        r.ok = true;
        r.rows = {{"A40", 44.98, 12, 101.5, 1.28, 543.21}};
        responses.push_back(r);
    }
    {
        PlanResponse r;
        r.id = "e";
        r.query = QueryKind::Report;
        r.ok = true;
        r.report = "line one\nline \"two\"\n\ttabbed";
        responses.push_back(r);
    }
    {
        PlanResponse r;
        r.query = QueryKind::Snapshot;
        r.ok = true;
        r.snapshot = std::string("bin\0\x01\xfe", 6);
        r.value = 6.0;
        responses.push_back(r);
    }
    {
        PlanResponse r;
        r.id = "f";
        r.query = QueryKind::Fleet;
        r.ok = true;
        r.value = 3.0;
        r.report = "shard-a: ok\nshard-b: ok";
        responses.push_back(r);
    }
    {
        PlanResponse r;
        r.query = QueryKind::LoadSnapshot;
        r.ok = true;
        r.value = 2.0;
        r.report = "restored 2 entries";
        responses.push_back(r);
    }
    {
        PlanResponse r;
        r.id = "g";
        r.query = QueryKind::Stats;
        r.ok = true;
        r.value = 4.0;
        r.statsJson = "{\"net.requests\":17}";
        responses.push_back(r);
    }
    {
        PlanRequest failing;
        failing.id = "h";
        failing.query = QueryKind::Throughput;
        PlanResponse r = errorResponse(
            failing,
            Error{ErrorCode::UnknownGpu, "no such GPU \"B300\""});
        responses.push_back(r);
    }

    for (const PlanResponse& original : responses) {
        const std::string frame = encodeResponseFrame(original);
        Result<WireMessage> decoded = decodeFrame(frame);
        ASSERT_TRUE(decoded.ok())
            << queryKindName(original.query) << ": "
            << decoded.error().describe();
        ASSERT_EQ(decoded.value().type, WireMsg::Response);
        EXPECT_EQ(writePlanResponse(decoded.value().response),
                  writePlanResponse(original))
            << queryKindName(original.query);
        EXPECT_EQ(encodeResponseFrame(decoded.value().response),
                  frame);
    }
}

TEST(Wire, SnapshotResponseValueIsDerivedFromPayloadSize)
{
    PlanResponse r;
    r.query = QueryKind::Snapshot;
    r.ok = true;
    r.snapshot = "0123456789";
    r.value = 10.0;
    Result<WireMessage> decoded =
        decodeFrame(encodeResponseFrame(r));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().response.value, 10.0);
    EXPECT_EQ(decoded.value().response.snapshot, "0123456789");
}

TEST(Wire, ProtocolErrorFrameRoundTrips)
{
    const std::string frame =
        encodeProtocolErrorFrame("req-3", "bad frame: unknown tag 42");
    Result<WireMessage> decoded = decodeFrame(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.error().describe();
    ASSERT_EQ(decoded.value().type, WireMsg::ProtocolError);
    EXPECT_EQ(decoded.value().errorId, "req-3");
    EXPECT_EQ(decoded.value().errorMessage,
              "bad frame: unknown tag 42");

    // Anonymous variant omits the id tag.
    Result<WireMessage> anon =
        decodeFrame(encodeProtocolErrorFrame("", "nope"));
    ASSERT_TRUE(anon.ok());
    EXPECT_EQ(anon.value().errorId, "");
    EXPECT_EQ(anon.value().errorMessage, "nope");
}

TEST(Wire, HeaderValidation)
{
    const std::string frame =
        encodeRequestFrame(requestOfKind(QueryKind::Snapshot));
    auto header = [&](int patchAt, unsigned char value) {
        std::string h = frame.substr(0, kWireHeaderBytes);
        if (patchAt >= 0)
            h[static_cast<std::size_t>(patchAt)] =
                static_cast<char>(value);
        return parseWireHeader(
            reinterpret_cast<const unsigned char*>(h.data()));
    };
    EXPECT_TRUE(header(-1, 0).ok());
    EXPECT_FALSE(header(0, 0x7B).ok());  // '{' — a JSON byte.
    EXPECT_FALSE(header(1, 'X').ok());
    EXPECT_FALSE(header(2, 'X').ok());
    EXPECT_FALSE(header(3, 0x02).ok());  // Future version.
    // Zero payload length.
    std::string h = frame.substr(0, kWireHeaderBytes);
    h[4] = h[5] = h[6] = h[7] = 0;
    EXPECT_FALSE(parseWireHeader(
                     reinterpret_cast<const unsigned char*>(h.data()))
                     .ok());
}

TEST(Wire, HostilePayloadsAreTypedErrors)
{
    // Every one of these must come back InvalidArgument — no crash,
    // no acceptance.
    const std::string good =
        payloadOf(encodeRequestFrame(requestOfKind(QueryKind::MaxBatch)));
    std::vector<std::string> hostile;
    hostile.push_back("");                      // No message type.
    hostile.push_back("\x04");                  // Unknown type.
    hostile.push_back("\x01");                  // Request, no query.
    hostile.push_back("\x01\x01\x09");          // Unknown kind byte.
    hostile.push_back("\x01\x02");              // Tag, no payload.
    hostile.push_back(std::string("\x01\x01\x00\x01", 4));  // Dup tag.
    hostile.push_back(std::string("\x01\x02\x00\x01\x00", 5));
    hostile.push_back(good.substr(0, good.size() - 1));  // Truncated.
    hostile.push_back(good + "x");              // Trailing byte.
    {
        // Tag order violation: id(2) before query(1).
        std::string p("\x01\x02", 2);
        p += std::string("\x01\x00\x00\x00", 4);
        p += "a";
        p += "\x01\x00";
        hostile.push_back(p);
    }
    {
        // String length prefix far past the payload end.
        std::string p("\x01\x01\x00\x02", 4);
        p += std::string("\xff\xff\xff\x7f", 4);
        hostile.push_back(p);
    }
    {
        // max_batch query with no gpu.
        std::string p("\x01\x01\x00", 3);
        hostile.push_back(p);
    }
    {
        // Live kind (snapshot) with a tenant.
        std::string p("\x01\x01\x05\x03\x01\x00\x00\x00", 8);
        p += "t";
        hostile.push_back(p);
    }
    {
        // load_snapshot without its payload.
        std::string p("\x01\x01\x07", 3);
        hostile.push_back(p);
    }
    {
        // Empty tenant string.
        std::string p("\x01\x01\x06\x03\x00\x00\x00\x00", 8);
        hostile.push_back(p);
    }
    {
        // Non-finite double: NaN length_sigma inside a scenario.
        std::string p = good;
        // Scenario block sits after: type(1) query-tag(1) kind(1)
        // id-tag(1) id-len(4) id(6) gpu-tag(1) gpu-len(4) gpu(3)
        // scenario-tag(1) model(1) seqlen(8) -> sigma at offset 32.
        ASSERT_GE(p.size(), 40u);
        for (std::size_t i = 32; i < 40; ++i)
            p[i] = '\xff';
        hostile.push_back(p);
    }

    for (const std::string& payload : hostile) {
        Result<WireMessage> decoded = decodeWirePayload(payload);
        ASSERT_FALSE(decoded.ok())
            << "accepted hostile payload of " << payload.size()
            << " bytes";
        EXPECT_EQ(decoded.error().code, ErrorCode::InvalidArgument);
    }
}

TEST(Wire, ResponseRequiresQueryAndOk)
{
    // Response with only an id.
    std::string p("\x02\x02\x01\x00\x00\x00", 6);
    p += "x";
    Result<WireMessage> decoded = decodeWirePayload(p);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, ErrorCode::InvalidArgument);

    // Protocol error without a message.
    Result<WireMessage> bare = decodeWirePayload(std::string("\x03", 1));
    ASSERT_FALSE(bare.ok());
}

TEST(Wire, SnapshotRidesRawWithoutBase64)
{
    PlanRequest req;
    req.query = QueryKind::LoadSnapshot;
    std::string blob;
    for (int i = 0; i < 256; ++i)
        blob.push_back(static_cast<char>(i));
    req.snapshot = blob;
    const std::string frame = encodeRequestFrame(req);
    // Raw bytes, not base64: the frame embeds the blob verbatim.
    EXPECT_NE(frame.find(std::string("\x7f\x80\x81", 3)),
              std::string::npos);
    Result<WireMessage> decoded = decodeFrame(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.error().describe();
    EXPECT_EQ(decoded.value().request.snapshot, blob);
}

}  // namespace
}  // namespace ftsim
