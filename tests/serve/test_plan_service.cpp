/**
 * @file
 * PlanService tests: thundering-herd coalescing (the ISSUE-3
 * acceptance bar: stepsSimulated == distinct configs however many
 * tenants ask), planner sharing, fleet-wide plan-registry sharing,
 * rate overrides, error surfacing — and the ISSUE-4 governance layer:
 * per-tenant admission quotas (token bucket + max-inflight) and
 * LRU-bounded answer/planner caches (capacity-1 stays correct,
 * evicted answers recompute identically and re-simulate).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/planner.hpp"
#include "serve/plan_service.hpp"

namespace ftsim {
namespace {

PlanRequest
throughputRequest(const std::string& gpu,
                  Scenario scenario = Scenario::gsMath())
{
    PlanRequest req;
    req.query = QueryKind::Throughput;
    req.gpu = gpu;
    req.scenario = scenario;
    return req;
}

TEST(PlanService, ThunderingHerdSimulatesEachDistinctConfigOnce)
{
    // 32 tenants each submit the same 4 questions: three throughput
    // probes (one step simulation each — the profile at max batch)
    // and one max_batch probe (memory arithmetic, no simulation).
    // 128 submissions, 3 distinct step configs -> exactly 3 sims.
    // One extra "greedy" tenant hammers the same probes under a
    // token-bucket quota: its overflow is RateLimited, and neither
    // its admitted nor its rejected traffic perturbs the herd's
    // simulate-once guarantee (untenanted requests are quota-exempt).
    ServiceConfig config;
    config.tenantRps = 1e-9;  // Effectively burst-only: 2 then reject.
    config.tenantBurst = 2.0;
    PlanService service(config);
    const std::vector<PlanRequest> probes = {
        throughputRequest("A40"),
        throughputRequest("H100"),
        throughputRequest("A40", Scenario::commonsense15k()),
        [] {
            PlanRequest req;
            req.query = QueryKind::MaxBatch;
            req.gpu = "A40";
            return req;
        }(),
    };

    constexpr int kTenants = 32;
    constexpr std::uint64_t kGreedySubmits = 8;
    std::vector<std::vector<PlanResponse>> answers(kTenants);
    std::vector<PlanResponse> greedy_answers;
    std::vector<std::thread> tenants;
    for (int t = 0; t < kTenants; ++t)
        tenants.emplace_back([&service, &probes, &answers, t] {
            for (const PlanRequest& probe : probes)
                answers[t].push_back(service.ask(probe));
        });
    tenants.emplace_back([&service, &probes, &greedy_answers] {
        for (std::uint64_t i = 0; i < kGreedySubmits; ++i) {
            PlanRequest probe = probes[i % probes.size()];
            probe.tenant = "greedy";
            greedy_answers.push_back(service.ask(probe));
        }
    });
    for (std::thread& tenant : tenants)
        tenant.join();

    const ServiceStats stats = service.stats();
    // The acceptance assertion: duplicate-heavy concurrent load
    // simulates only the distinct configurations.
    EXPECT_EQ(stats.stepsSimulated, 3u);
    EXPECT_EQ(stats.requests,
              static_cast<std::uint64_t>(kTenants * probes.size()) +
                  kGreedySubmits);
    EXPECT_EQ(stats.executed, probes.size());
    EXPECT_EQ(stats.rateLimited, kGreedySubmits - 2);
    EXPECT_EQ(stats.coalesced,
              stats.requests - stats.executed - stats.rateLimited);
    // Two scenarios -> two planners, every other request reused one.
    EXPECT_EQ(stats.plannersCreated, 2u);

    // Every tenant got the same (successful) answers.
    for (int t = 0; t < kTenants; ++t) {
        ASSERT_EQ(answers[t].size(), probes.size());
        for (std::size_t i = 0; i < probes.size(); ++i) {
            EXPECT_TRUE(answers[t][i].ok);
            EXPECT_EQ(answers[t][i].value, answers[0][i].value);
        }
    }

    // The greedy tenant: burst admitted (with the herd's answers),
    // the rest rejected — deterministically, since it submits
    // serially against a bucket only it drains.
    ASSERT_EQ(greedy_answers.size(), kGreedySubmits);
    for (std::size_t i = 0; i < greedy_answers.size(); ++i) {
        if (i < 2) {
            EXPECT_TRUE(greedy_answers[i].ok);
            EXPECT_EQ(greedy_answers[i].value,
                      answers[0][i % probes.size()].value);
        } else {
            EXPECT_FALSE(greedy_answers[i].ok);
            EXPECT_EQ(greedy_answers[i].errorCode, "RateLimited");
        }
    }
    const auto greedy = stats.tenants.find("greedy");
    ASSERT_NE(greedy, stats.tenants.end());
    EXPECT_EQ(greedy->second.admitted, 2u);
    EXPECT_EQ(greedy->second.rejectedRate, kGreedySubmits - 2);
    EXPECT_EQ(greedy->second.rejectedInflight, 0u);
    EXPECT_EQ(greedy->second.inflight, 0u);
}

TEST(PlanService, AnswersMatchADirectPlanner)
{
    PlanService service;
    PlanRequest table;
    table.query = QueryKind::CostTable;
    PlanResponse response = service.ask(table);
    ASSERT_TRUE(response.ok);

    Planner planner(Scenario::gsMath());
    auto rows = planner.costTable(GpuSpec::paperGpus());
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(response.rows.size(), rows.value().size());
    for (std::size_t i = 0; i < response.rows.size(); ++i) {
        EXPECT_EQ(response.rows[i].gpuName, rows.value()[i].gpuName);
        EXPECT_EQ(response.rows[i].totalDollars,
                  rows.value()[i].totalDollars);
    }
}

TEST(PlanService, SharesOnePlannerAcrossQueryKinds)
{
    PlanService service;
    PlanRequest throughput = throughputRequest("A40");
    PlanRequest table;
    table.query = QueryKind::CostTable;
    PlanRequest cheapest;
    cheapest.query = QueryKind::CheapestPlan;

    ASSERT_TRUE(service.ask(throughput).ok);
    ASSERT_TRUE(service.ask(table).ok);
    ASSERT_TRUE(service.ask(cheapest).ok);

    const ServiceStats stats = service.stats();
    // Same scenario -> one planner; the later kinds reused it (and
    // its step cache: the A40 max-batch profile simulated once).
    EXPECT_EQ(stats.plannersCreated, 1u);
    EXPECT_EQ(stats.plannerReuses, 2u);
}

TEST(PlanService, RegistrySharesPlansAcrossPlanners)
{
    // Two scenarios on the same model: two planners, two simulators
    // per GPU — but the compiled step-plan shape is shared through
    // the service's registry instead of recompiled per builder.
    PlanService service;
    ASSERT_TRUE(service.ask(throughputRequest("A40")).ok);
    ASSERT_TRUE(
        service.ask(throughputRequest("A40", Scenario::commonsense15k()))
            .ok);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.plannersCreated, 2u);
    // Both probes plan sparse Mixtral with checkpointing: one shape.
    EXPECT_EQ(stats.plansCompiled, 1u);
    EXPECT_GE(stats.planRegistryHits, 1u);
    EXPECT_EQ(service.planRegistry()->plansCompiled(), 1u);
}

TEST(PlanService, CoalescedFutureCarriesBlankIdAndAskRestoresIt)
{
    PlanService service;
    PlanRequest first = throughputRequest("A40");
    first.id = "alice";
    PlanRequest second = throughputRequest("A40");
    second.id = "bob";

    PlanResponse shared = service.submit(first).get();
    EXPECT_TRUE(shared.id.empty());  // Shared answers own no id.
    PlanResponse bobs = service.ask(second);
    EXPECT_EQ(bobs.id, "bob");
    EXPECT_EQ(bobs.value, shared.value);
    EXPECT_EQ(service.stats().executed, 1u);
    EXPECT_EQ(service.stats().coalesced, 1u);
}

TEST(PlanService, RateOverridesPriceUnpricedGpus)
{
    // A100-40GB has a spec but no CUDO price: without a rate override
    // the cost table skips it, with one it appears.
    PlanService service;
    PlanRequest bare;
    bare.query = QueryKind::CostTable;
    bare.gpus = {"A40", "A100-40GB"};
    PlanResponse without = service.ask(bare);
    ASSERT_TRUE(without.ok);
    EXPECT_EQ(without.rows.size(), 1u);

    PlanRequest priced = bare;
    priced.rates = {{"user", "A100-40GB", 1.20}};
    PlanResponse with = service.ask(priced);
    ASSERT_TRUE(with.ok);
    ASSERT_EQ(with.rows.size(), 2u);
    EXPECT_EQ(with.rows[1].gpuName, "A100-40GB");
    EXPECT_DOUBLE_EQ(with.rows[1].dollarsPerHour, 1.20);
    // Different rates -> different planner identity (no false share).
    EXPECT_EQ(service.stats().plannersCreated, 2u);
}

TEST(PlanService, SurfacesDomainErrorsAsResponses)
{
    PlanService service;

    PlanRequest unknown = throughputRequest("B300");
    unknown.id = "alice";
    // The shared (coalescable) future must not leak the submitter's id
    // on the error path either.
    PlanResponse shared_err = service.submit(unknown).get();
    EXPECT_FALSE(shared_err.ok);
    EXPECT_TRUE(shared_err.id.empty());
    PlanResponse resp = service.ask(unknown);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, "UnknownGpu");
    EXPECT_EQ(resp.id, "alice");

    PlanRequest bad_rate = throughputRequest("A40");
    bad_rate.rates = {{"user", "", -1.0}};
    resp = service.ask(bad_rate);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, "InvalidArgument");

    PlanRequest dense_small = throughputRequest("A100-40GB");
    dense_small.scenario.withSparse(false);  // Does not fit dense.
    resp = service.ask(dense_small);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, "DoesNotFit");
}

TEST(PlanService, StatsExposeLatencyQuantiles)
{
    PlanService service;
    ASSERT_TRUE(service.ask(throughputRequest("A40")).ok);
    const ServiceStats stats = service.stats();
    EXPECT_GT(stats.p99LatencyMs, 0.0);
    EXPECT_LE(stats.p50LatencyMs, stats.p99LatencyMs);
}

// ---- ISSUE-4 resource governance ------------------------------------

TEST(PlanService, EvictedAnswerRecomputesIdenticallyAndResimulates)
{
    // Capacity-1 caches: asking A, then B, then A again must evict
    // and rebuild at every step — the third answer is a fresh planner
    // and a fresh simulation, yet bit-identical to the first.
    ServiceConfig config;
    config.maxAnswers = 1;
    config.maxPlanners = 1;
    PlanService service(config);

    const PlanRequest a = throughputRequest("A40");
    const PlanRequest b =
        throughputRequest("A40", Scenario::commonsense15k());

    const PlanResponse first = service.ask(a);
    ASSERT_TRUE(first.ok);
    EXPECT_EQ(service.stats().stepsSimulated, 1u);

    ASSERT_TRUE(service.ask(b).ok);  // Evicts a's answer AND planner.
    EXPECT_EQ(service.stats().stepsSimulated, 2u);

    const PlanResponse again = service.ask(a);
    ASSERT_TRUE(again.ok);
    EXPECT_EQ(again.value, first.value);  // Eviction never changes answers.

    const ServiceStats stats = service.stats();
    // The recomputation is real work: a third simulation (the planner
    // holding a's step cache was evicted too), not a coalesced hit.
    EXPECT_EQ(stats.stepsSimulated, 3u);
    EXPECT_EQ(stats.executed, 3u);
    EXPECT_EQ(stats.coalesced, 0u);
    EXPECT_EQ(stats.answersEvicted, 2u);
    EXPECT_EQ(stats.plannersEvicted, 2u);
    EXPECT_EQ(stats.plannersCreated, 3u);
    EXPECT_EQ(stats.answersCached, 1u);
    EXPECT_EQ(stats.answersCachedPeak, 1u);
    EXPECT_LE(stats.plannersCached, 1u);
}

TEST(PlanService, CachedAnswersStillCoalesceWithinCapacity)
{
    // Within capacity the bounded service behaves exactly like the
    // unbounded one: duplicates coalesce, nothing re-simulates.
    ServiceConfig config;
    config.maxAnswers = 8;
    config.maxPlanners = 8;
    PlanService service(config);

    const PlanRequest a = throughputRequest("A40");
    const PlanResponse first = service.ask(a);
    ASSERT_TRUE(first.ok);
    const PlanResponse second = service.ask(a);
    ASSERT_TRUE(second.ok);
    EXPECT_EQ(second.value, first.value);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.coalesced, 1u);
    EXPECT_EQ(stats.stepsSimulated, 1u);
    EXPECT_EQ(stats.answersEvicted, 0u);
}

TEST(PlanService, CapacityOneServiceAnswersConcurrentHerdCorrectly)
{
    // The hardest governance invariant: a capacity-1 service under a
    // concurrent multi-question herd must answer *everything*
    // correctly — eviction may cost recomputation, but a coalesced
    // waiter can never lose its future (in-flight entries live
    // outside the LRU) and answers never change.
    ServiceConfig config;
    config.maxAnswers = 1;
    config.maxPlanners = 1;
    PlanService service(config);

    PlanService reference;  // Unbounded twin for expected values.
    const std::vector<PlanRequest> probes = {
        throughputRequest("A40"),
        throughputRequest("H100"),
        throughputRequest("A40", Scenario::commonsense15k()),
    };
    std::vector<PlanResponse> expected;
    for (const PlanRequest& probe : probes)
        expected.push_back(reference.ask(probe));

    constexpr int kThreads = 8;
    constexpr int kRounds = 3;
    std::vector<std::vector<PlanResponse>> answers(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&service, &probes, &answers, t] {
            for (int round = 0; round < kRounds; ++round)
                for (const PlanRequest& probe : probes)
                    answers[t].push_back(service.ask(probe));
        });
    for (std::thread& thread : threads)
        thread.join();

    for (int t = 0; t < kThreads; ++t) {
        ASSERT_EQ(answers[t].size(), probes.size() * kRounds);
        for (std::size_t i = 0; i < answers[t].size(); ++i) {
            const PlanResponse& got = answers[t][i];
            const PlanResponse& want = expected[i % probes.size()];
            ASSERT_TRUE(got.ok);
            EXPECT_EQ(got.value, want.value);
        }
    }

    const ServiceStats stats = service.stats();
    // Everyone answered: nothing lost to eviction...
    EXPECT_EQ(stats.requests,
              static_cast<std::uint64_t>(kThreads * kRounds) *
                  probes.size());
    EXPECT_EQ(stats.coalesced + stats.executed, stats.requests);
    // ...and the capacity bound held at every instant.
    EXPECT_EQ(stats.answersCachedPeak, 1u);
    EXPECT_LE(stats.answersCached, 1u);
    EXPECT_GE(stats.stepsSimulated, 2u);  // Distinct configs at least.
}

TEST(PlanService, TokenBucketRejectsPerTenantIndependently)
{
    ServiceConfig config;
    config.tenantRps = 1e-9;  // Burst-only in test timescales.
    config.tenantBurst = 2.0;
    PlanService service(config);

    // Distinct cheap questions so nothing coalesces: the quota, not
    // the cache, must be what rejects.
    auto probe = [](int i) {
        PlanRequest req;
        req.query = QueryKind::MaxBatch;
        req.gpu = "A40";
        req.scenario =
            Scenario::gsMath().withNumQueries(10000.0 + i);
        return req;
    };

    int alice_ok = 0, alice_limited = 0;
    for (int i = 0; i < 5; ++i) {
        PlanRequest req = probe(i);
        req.tenant = "alice";
        req.id = strCat("alice-", i);
        const PlanResponse resp = service.ask(req);
        EXPECT_EQ(resp.id, req.id);  // ask() restamps rejections too.
        if (resp.ok) {
            ++alice_ok;
        } else {
            EXPECT_EQ(resp.errorCode, "RateLimited");
            ++alice_limited;
        }
    }
    EXPECT_EQ(alice_ok, 2);
    EXPECT_EQ(alice_limited, 3);

    // Bob has his own bucket; alice draining hers costs him nothing.
    PlanRequest bobs = probe(100);
    bobs.tenant = "bob";
    EXPECT_TRUE(service.ask(bobs).ok);

    // Untenanted traffic is quota-exempt however much there is.
    for (int i = 200; i < 210; ++i)
        EXPECT_TRUE(service.ask(probe(i)).ok);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.rateLimited, 3u);
    EXPECT_EQ(stats.tenants.at("alice").admitted, 2u);
    EXPECT_EQ(stats.tenants.at("alice").rejectedRate, 3u);
    EXPECT_EQ(stats.tenants.at("bob").admitted, 1u);
    EXPECT_EQ(stats.tenants.at("bob").rejectedRate, 0u);
}

TEST(PlanService, InflightGateCapsConcurrentRequestsPerTenant)
{
    // One worker, inflight limit 1: the first (slow, report-sized)
    // request occupies the tenant's only slot; duplicates submitted
    // while it runs are rejected, and the slot frees once it answers.
    ServiceConfig config;
    config.workers = 1;
    config.tenantMaxInflight = 1;
    PlanService service(config);

    PlanRequest heavy;
    heavy.query = QueryKind::Report;  // Sweep + fits: >> submit cost.
    heavy.gpu = "A40";
    heavy.tenant = "carol";

    std::shared_future<PlanResponse> slow = service.submit(heavy);

    // Submitted microseconds into a report-sized execution: the slot
    // is still held, so a second (distinct) request bounces.
    PlanRequest second = throughputRequest("A40");
    second.tenant = "carol";
    const PlanResponse bounced = service.submit(second).get();
    EXPECT_FALSE(bounced.ok);
    EXPECT_EQ(bounced.errorCode, "RateLimited");

    EXPECT_TRUE(slow.get().ok);
    // The answer resolved, so the slot is free again — and the retry
    // coalesces onto the cached report without consuming new work.
    PlanRequest retry = heavy;
    EXPECT_TRUE(service.ask(retry).ok);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.tenants.at("carol").rejectedInflight, 1u);
    EXPECT_EQ(stats.tenants.at("carol").admitted, 2u);
    EXPECT_EQ(stats.tenants.at("carol").inflight, 0u);
    EXPECT_EQ(stats.rateLimited, 1u);
}

TEST(PlanService, CoalescedDuplicatesHoldInflightSlotsUntilAnswered)
{
    // Duplicates coalesce onto one execution but each admitted copy
    // holds its own tenant slot until the shared answer resolves —
    // otherwise a tenant could multiply pressure through duplicates.
    ServiceConfig config;
    config.workers = 1;
    config.tenantMaxInflight = 2;
    PlanService service(config);

    PlanRequest heavy;
    heavy.query = QueryKind::Report;
    heavy.gpu = "A40";
    heavy.tenant = "dave";

    std::shared_future<PlanResponse> first = service.submit(heavy);
    std::shared_future<PlanResponse> duplicate = service.submit(heavy);
    const PlanResponse third = service.submit(heavy).get();
    EXPECT_FALSE(third.ok);  // Two slots held by the shared execution.
    EXPECT_EQ(third.errorCode, "RateLimited");

    EXPECT_TRUE(first.get().ok);
    EXPECT_TRUE(duplicate.get().ok);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.tenants.at("dave").inflight, 0u);
    EXPECT_EQ(stats.tenants.at("dave").rejectedInflight, 1u);
    EXPECT_EQ(stats.executed, 1u);  // Still one execution.
}

TEST(PlanService, TenantTableIsBoundedUnderNameRotation)
{
    // The tenant field is unauthenticated wire input: a client
    // rotating fresh names must not grow the admission table without
    // limit. Idle states are evicted oldest-first to make room.
    ServiceConfig config;
    config.tenantRps = 1e9;  // Quotas on, but never the rejector here.
    config.maxTenants = 2;
    PlanService service(config);

    for (int i = 0; i < 10; ++i) {
        PlanRequest req = throughputRequest("A40");
        req.tenant = strCat("rotating-", i);
        EXPECT_TRUE(service.ask(req).ok);  // Idle olds evict fine.
    }
    const ServiceStats stats = service.stats();
    EXPECT_LE(stats.tenants.size(), 2u);
    EXPECT_EQ(stats.rateLimited, 0u);
}

TEST(PlanService, FullTenantTableOfBusyTenantsRejectsNewNames)
{
    // When every tracked tenant has work in flight, there is nothing
    // safe to evict: a fresh name is rejected instead of tracked.
    ServiceConfig config;
    config.workers = 1;
    config.tenantRps = 1e9;
    config.maxTenants = 1;
    PlanService service(config);

    PlanRequest heavy;
    heavy.query = QueryKind::Report;  // Holds its slot while running.
    heavy.gpu = "A40";
    heavy.tenant = "resident";
    std::shared_future<PlanResponse> slow = service.submit(heavy);

    PlanRequest newcomer = throughputRequest("A40");
    newcomer.tenant = "newcomer";
    const PlanResponse bounced = service.submit(newcomer).get();
    EXPECT_FALSE(bounced.ok);
    EXPECT_EQ(bounced.errorCode, "RateLimited");

    EXPECT_TRUE(slow.get().ok);
    // Resident is idle now: the newcomer takes its slot.
    EXPECT_TRUE(service.ask(newcomer).ok);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.tenants.size(), 1u);
    EXPECT_EQ(stats.tenants.count("newcomer"), 1u);
}

TEST(PlanService, ExecutionThrowBecomesAnErrorResponseNotAPoisonedKey)
{
    // A crafted programmatic scenario (incomplete model spec) makes
    // the simulator fatal() mid-execution. The future must resolve
    // with an error response, the key must leave the in-flight map
    // (later duplicates recompute, not rethrow — and the guard answer
    // is never cached), and the tenant's inflight slot must come back.
    ServiceConfig config;
    config.tenantMaxInflight = 1;
    PlanService service(config);

    PlanRequest poison = throughputRequest("A40");
    poison.tenant = "edgar";
    poison.scenario.model.nLayers = 0;  // WorkloadBuilder fatals.

    const PlanResponse first = service.ask(poison);
    EXPECT_FALSE(first.ok);
    EXPECT_EQ(first.errorCode, "InvalidArgument");
    EXPECT_NE(first.errorMessage.find("execution failed"),
              std::string::npos);

    // Same question again: guard answers are NOT promoted to the
    // answer cache (a transient failure must not become the key's
    // permanent answer), so the retry re-executes — through a freed
    // key and a freed tenant slot — and fails the same way.
    const PlanResponse again = service.ask(poison);
    EXPECT_FALSE(again.ok);
    EXPECT_EQ(again.errorCode, first.errorCode);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.tenants.at("edgar").inflight, 0u);
    EXPECT_EQ(stats.executed, 2u);
    EXPECT_EQ(stats.coalesced, 0u);
    EXPECT_EQ(stats.rateLimited, 0u);

    // And the service keeps serving healthy requests afterwards.
    EXPECT_TRUE(service.ask(throughputRequest("A40")).ok);
}

TEST(PlanService, TokenBucketRefillsOnTheInjectedClock)
{
    // The refill path, deterministically: a virtual clock
    // (ServiceConfig::clock) drives time, so the test controls exactly
    // how many tokens accrue between requests. 2 rps = one token per
    // 500 ms (all increments are exact binary fractions — no float
    // drift in the assertions).
    double now_ms = 0.0;
    ServiceConfig config;
    config.tenantRps = 2.0;
    config.tenantBurst = 1.0;
    config.clock = [&now_ms] { return now_ms; };
    PlanService service(config);

    // Distinct cheap questions so the quota, not the cache, decides.
    auto probe = [](int i) {
        PlanRequest req;
        req.query = QueryKind::MaxBatch;
        req.gpu = "A40";
        req.tenant = "alice";
        req.scenario = Scenario::gsMath().withNumQueries(30000.0 + i);
        return req;
    };

    // t=0: the initial burst (1 token) admits, then the bucket is dry.
    EXPECT_TRUE(service.ask(probe(0)).ok);
    EXPECT_EQ(service.ask(probe(1)).errorCode, "RateLimited");

    // t=250ms: half a token — still dry.
    now_ms = 250.0;
    EXPECT_EQ(service.ask(probe(2)).errorCode, "RateLimited");

    // t=500ms: the other half arrived; exactly one token to spend.
    now_ms = 500.0;
    EXPECT_TRUE(service.ask(probe(3)).ok);
    EXPECT_EQ(service.ask(probe(4)).errorCode, "RateLimited");

    // A long quiet spell refills to the burst cap, not beyond: one
    // admit, then dry again.
    now_ms = 60000.0;
    EXPECT_TRUE(service.ask(probe(5)).ok);
    EXPECT_EQ(service.ask(probe(6)).errorCode, "RateLimited");

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.tenants.at("alice").admitted, 3u);
    EXPECT_EQ(stats.tenants.at("alice").rejectedRate, 4u);
    EXPECT_EQ(stats.rateLimited, 4u);
}

TEST(PlanService, SourcesBucketSubmissionsPerConnectionLabel)
{
    // SubmitOptions::source is the network layer's per-connection
    // stats hook; notify must fire for ready-now answers too (the
    // cached duplicate below) — synchronously, per the contract.
    PlanService service;
    std::atomic<int> notified{0};
    SubmitOptions options;
    options.source = "127.0.0.1:9999#1";
    options.notify = [&notified] { notified.fetch_add(1); };

    PlanRequest probe = throughputRequest("A40");
    PlanResponse first = service.submit(probe, options).get();
    EXPECT_TRUE(first.ok);
    // The executed path notifies from the worker *after* resolving the
    // future, so get() returning does not yet imply the callback ran —
    // wait for it (bounded by the worker finishing its epilogue).
    while (notified.load() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(notified.load(), 1);

    // Duplicate: served from the answer cache, notified before
    // submit() returns (the spin above guaranteed finishExecution
    // promoted the answer).
    service.submit(probe, options);
    EXPECT_EQ(notified.load(), 2);

    const ServiceStats stats = service.stats();
    ASSERT_EQ(stats.sources.size(), 1u);
    const SourceStats& row =
        stats.sources.at("127.0.0.1:9999#1");
    EXPECT_EQ(row.requests, 2u);
    EXPECT_EQ(row.coalesced, 1u);
    EXPECT_EQ(row.rateLimited, 0u);

    // An unlabeled submission stays untracked.
    service.ask(throughputRequest("H100"));
    EXPECT_EQ(service.stats().sources.size(), 1u);
}

TEST(PlanService, QuotasDisabledByDefaultEvenForTenantedRequests)
{
    PlanService service;  // Default config: no quotas.
    for (int i = 0; i < 8; ++i) {
        PlanRequest req = throughputRequest("A40");
        req.tenant = "free";
        EXPECT_TRUE(service.ask(req).ok);
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.rateLimited, 0u);
    EXPECT_TRUE(stats.tenants.empty());  // No tracking when disabled.
}

TEST(PlanService, LoadSnapshotWarmsTheRegistryWithoutCompiling)
{
    // A donor service compiles two configs; its live snapshot pushed
    // into a cold service via the `load_snapshot` query must make the
    // same questions registry hits — zero compiles on the receiver.
    PlanService donor;
    donor.ask(throughputRequest("A40"));
    donor.ask(throughputRequest("A40", Scenario::commonsense15k()));
    const std::uint64_t donorPlans =
        donor.planRegistry()->plansCompiled();
    ASSERT_GT(donorPlans, 0u);
    const PlanResponse snap = donor.ask([] {
        PlanRequest req;
        req.query = QueryKind::Snapshot;
        return req;
    }());
    ASSERT_TRUE(snap.ok) << snap.errorMessage;

    PlanService cold;
    PlanRequest load;
    load.query = QueryKind::LoadSnapshot;
    // Raw bytes end to end in-process; base64 exists only on the wire.
    load.snapshot = snap.snapshot;
    const PlanResponse loaded = cold.ask(load);
    ASSERT_TRUE(loaded.ok) << loaded.errorMessage;
    // plansLoaded is echoed back as the answer's value.
    EXPECT_EQ(loaded.value, static_cast<double>(donorPlans));

    cold.ask(throughputRequest("A40"));
    cold.ask(throughputRequest("A40", Scenario::commonsense15k()));
    EXPECT_EQ(cold.planRegistry()->plansCompiled(), 0u);
    EXPECT_EQ(cold.planRegistry()->plansLoaded(), donorPlans);
}

TEST(PlanService, StatsQueryIsLiveNeverCoalescedAndRegistryBacked)
{
    PlanService service;
    service.ask(throughputRequest("A40"));
    service.ask(throughputRequest("H100"));

    PlanRequest scrape;
    scrape.query = QueryKind::Stats;
    const PlanResponse first = service.ask(scrape);
    ASSERT_TRUE(first.ok) << first.errorMessage;
    EXPECT_GT(first.value, 0.0);  // value = entry count.
    // The flat snapshot carries the service's own cells.
    EXPECT_NE(first.statsJson.find("\"serve.requests\":"),
              std::string::npos)
        << first.statsJson;
    EXPECT_NE(first.statsJson.find("\"planner.step_cache_misses\":"),
              std::string::npos);

    // Live contract: identical scrapes are answered fresh — never
    // cached, never coalesced — and each counts as executed.
    const ServiceStats before = service.stats();
    const PlanResponse second = service.ask(scrape);
    ASSERT_TRUE(second.ok);
    const ServiceStats after = service.stats();
    EXPECT_EQ(after.coalesced, before.coalesced);
    EXPECT_EQ(after.executed, before.executed + 1);
    // The second scrape observed the first in its own counters.
    EXPECT_GT(second.value, 0.0);

    // ServiceStats is a view over the same registry cells: the
    // pinned counters and the scrape must agree exactly once the
    // service is quiet.
    const StatsSnapshot snap = service.statsRegistry()->snapshot();
    EXPECT_EQ(snap.counter("serve.requests"), after.requests);
    EXPECT_EQ(snap.counter("serve.executed"), after.executed);
    EXPECT_EQ(snap.counter("serve.coalesced"), after.coalesced);
    EXPECT_GT(snap.counter("planner.step_cache_misses"), 0u);
    EXPECT_EQ(snap.counter("serve.steps_simulated"),
              after.stepsSimulated);
}

TEST(PlanService, LoadSnapshotRejectsHostileBytesTyped)
{
    PlanService service;
    PlanRequest load;
    load.query = QueryKind::LoadSnapshot;
    load.snapshot = "not a snapshot at all";
    const PlanResponse response = service.ask(load);
    EXPECT_FALSE(response.ok);
    EXPECT_FALSE(response.errorMessage.empty());
    // And the service is unharmed: it still answers.
    EXPECT_TRUE(service.ask(throughputRequest("A40")).ok);
}

}  // namespace
}  // namespace ftsim
