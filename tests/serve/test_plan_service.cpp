/**
 * @file
 * PlanService tests: thundering-herd coalescing (the ISSUE-3
 * acceptance bar: stepsSimulated == distinct configs however many
 * tenants ask), planner sharing, fleet-wide plan-registry sharing,
 * rate overrides, and error surfacing.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/planner.hpp"
#include "serve/plan_service.hpp"

namespace ftsim {
namespace {

PlanRequest
throughputRequest(const std::string& gpu,
                  Scenario scenario = Scenario::gsMath())
{
    PlanRequest req;
    req.query = QueryKind::Throughput;
    req.gpu = gpu;
    req.scenario = scenario;
    return req;
}

TEST(PlanService, ThunderingHerdSimulatesEachDistinctConfigOnce)
{
    // 32 tenants each submit the same 4 questions: three throughput
    // probes (one step simulation each — the profile at max batch)
    // and one max_batch probe (memory arithmetic, no simulation).
    // 128 submissions, 3 distinct step configs -> exactly 3 sims.
    PlanService service;
    const std::vector<PlanRequest> probes = {
        throughputRequest("A40"),
        throughputRequest("H100"),
        throughputRequest("A40", Scenario::commonsense15k()),
        [] {
            PlanRequest req;
            req.query = QueryKind::MaxBatch;
            req.gpu = "A40";
            return req;
        }(),
    };

    constexpr int kTenants = 32;
    std::vector<std::vector<PlanResponse>> answers(kTenants);
    std::vector<std::thread> tenants;
    for (int t = 0; t < kTenants; ++t)
        tenants.emplace_back([&service, &probes, &answers, t] {
            for (const PlanRequest& probe : probes)
                answers[t].push_back(service.ask(probe));
        });
    for (std::thread& tenant : tenants)
        tenant.join();

    const ServiceStats stats = service.stats();
    // The acceptance assertion: duplicate-heavy concurrent load
    // simulates only the distinct configurations.
    EXPECT_EQ(stats.stepsSimulated, 3u);
    EXPECT_EQ(stats.requests,
              static_cast<std::uint64_t>(kTenants * probes.size()));
    EXPECT_EQ(stats.executed, probes.size());
    EXPECT_EQ(stats.coalesced, stats.requests - stats.executed);
    // Two scenarios -> two planners, every other request reused one.
    EXPECT_EQ(stats.plannersCreated, 2u);

    // Every tenant got the same (successful) answers.
    for (int t = 0; t < kTenants; ++t) {
        ASSERT_EQ(answers[t].size(), probes.size());
        for (std::size_t i = 0; i < probes.size(); ++i) {
            EXPECT_TRUE(answers[t][i].ok);
            EXPECT_EQ(answers[t][i].value, answers[0][i].value);
        }
    }
}

TEST(PlanService, AnswersMatchADirectPlanner)
{
    PlanService service;
    PlanRequest table;
    table.query = QueryKind::CostTable;
    PlanResponse response = service.ask(table);
    ASSERT_TRUE(response.ok);

    Planner planner(Scenario::gsMath());
    auto rows = planner.costTable(GpuSpec::paperGpus());
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(response.rows.size(), rows.value().size());
    for (std::size_t i = 0; i < response.rows.size(); ++i) {
        EXPECT_EQ(response.rows[i].gpuName, rows.value()[i].gpuName);
        EXPECT_EQ(response.rows[i].totalDollars,
                  rows.value()[i].totalDollars);
    }
}

TEST(PlanService, SharesOnePlannerAcrossQueryKinds)
{
    PlanService service;
    PlanRequest throughput = throughputRequest("A40");
    PlanRequest table;
    table.query = QueryKind::CostTable;
    PlanRequest cheapest;
    cheapest.query = QueryKind::CheapestPlan;

    ASSERT_TRUE(service.ask(throughput).ok);
    ASSERT_TRUE(service.ask(table).ok);
    ASSERT_TRUE(service.ask(cheapest).ok);

    const ServiceStats stats = service.stats();
    // Same scenario -> one planner; the later kinds reused it (and
    // its step cache: the A40 max-batch profile simulated once).
    EXPECT_EQ(stats.plannersCreated, 1u);
    EXPECT_EQ(stats.plannerReuses, 2u);
}

TEST(PlanService, RegistrySharesPlansAcrossPlanners)
{
    // Two scenarios on the same model: two planners, two simulators
    // per GPU — but the compiled step-plan shape is shared through
    // the service's registry instead of recompiled per builder.
    PlanService service;
    ASSERT_TRUE(service.ask(throughputRequest("A40")).ok);
    ASSERT_TRUE(
        service.ask(throughputRequest("A40", Scenario::commonsense15k()))
            .ok);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.plannersCreated, 2u);
    // Both probes plan sparse Mixtral with checkpointing: one shape.
    EXPECT_EQ(stats.plansCompiled, 1u);
    EXPECT_GE(stats.planRegistryHits, 1u);
    EXPECT_EQ(service.planRegistry()->plansCompiled(), 1u);
}

TEST(PlanService, CoalescedFutureCarriesBlankIdAndAskRestoresIt)
{
    PlanService service;
    PlanRequest first = throughputRequest("A40");
    first.id = "alice";
    PlanRequest second = throughputRequest("A40");
    second.id = "bob";

    PlanResponse shared = service.submit(first).get();
    EXPECT_TRUE(shared.id.empty());  // Shared answers own no id.
    PlanResponse bobs = service.ask(second);
    EXPECT_EQ(bobs.id, "bob");
    EXPECT_EQ(bobs.value, shared.value);
    EXPECT_EQ(service.stats().executed, 1u);
    EXPECT_EQ(service.stats().coalesced, 1u);
}

TEST(PlanService, RateOverridesPriceUnpricedGpus)
{
    // A100-40GB has a spec but no CUDO price: without a rate override
    // the cost table skips it, with one it appears.
    PlanService service;
    PlanRequest bare;
    bare.query = QueryKind::CostTable;
    bare.gpus = {"A40", "A100-40GB"};
    PlanResponse without = service.ask(bare);
    ASSERT_TRUE(without.ok);
    EXPECT_EQ(without.rows.size(), 1u);

    PlanRequest priced = bare;
    priced.rates = {{"user", "A100-40GB", 1.20}};
    PlanResponse with = service.ask(priced);
    ASSERT_TRUE(with.ok);
    ASSERT_EQ(with.rows.size(), 2u);
    EXPECT_EQ(with.rows[1].gpuName, "A100-40GB");
    EXPECT_DOUBLE_EQ(with.rows[1].dollarsPerHour, 1.20);
    // Different rates -> different planner identity (no false share).
    EXPECT_EQ(service.stats().plannersCreated, 2u);
}

TEST(PlanService, SurfacesDomainErrorsAsResponses)
{
    PlanService service;

    PlanRequest unknown = throughputRequest("B300");
    unknown.id = "alice";
    // The shared (coalescable) future must not leak the submitter's id
    // on the error path either.
    PlanResponse shared_err = service.submit(unknown).get();
    EXPECT_FALSE(shared_err.ok);
    EXPECT_TRUE(shared_err.id.empty());
    PlanResponse resp = service.ask(unknown);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, "UnknownGpu");
    EXPECT_EQ(resp.id, "alice");

    PlanRequest bad_rate = throughputRequest("A40");
    bad_rate.rates = {{"user", "", -1.0}};
    resp = service.ask(bad_rate);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, "InvalidArgument");

    PlanRequest dense_small = throughputRequest("A100-40GB");
    dense_small.scenario.withSparse(false);  // Does not fit dense.
    resp = service.ask(dense_small);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.errorCode, "DoesNotFit");
}

TEST(PlanService, StatsExposeLatencyQuantiles)
{
    PlanService service;
    ASSERT_TRUE(service.ask(throughputRequest("A40")).ok);
    const ServiceStats stats = service.stats();
    EXPECT_GT(stats.p99LatencyMs, 0.0);
    EXPECT_LE(stats.p50LatencyMs, stats.p99LatencyMs);
}

}  // namespace
}  // namespace ftsim
