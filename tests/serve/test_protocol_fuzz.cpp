/**
 * @file
 * Deterministic protocol fuzzing (ISSUE-4): a seeded generator mutates
 * valid request lines — truncation, byte flips, insertions, duplicated
 * spans, bracket nesting, huge numbers, duplicate keys, concatenation —
 * and the parser must hold its contract for every single input:
 * return a valid request or a typed `InvalidArgument`, never crash,
 * never throw anything else, never hang. Accepted mutants must also
 * survive a write -> reparse round-trip with their coalescing identity
 * intact (a mutated line the service would cache under one key must
 * re-serialize to the same key).
 *
 * The iteration count (>= 10k) and the fixed seed make this a
 * regression corpus, not a flaky search: every run explores the same
 * inputs, so a failure reproduces by seed + iteration index alone.
 * ci.sh also runs this suite under ASan+UBSan, where "never crash"
 * hardens into "no UB at all".
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace ftsim {
namespace {

/** The valid lines mutation starts from. */
std::vector<std::string>
seedCorpus()
{
    std::vector<std::string> corpus = {
        R"({"id":"t1-q1","query":"max_batch","gpu":"A40"})",
        R"({"id":"t1-q2","query":"throughput","gpu":"H100",)"
        R"("scenario":{"preset":"commonsense15k","epochs":3}})",
        R"({"id":"t2-q1","query":"cost_table",)"
        R"("gpus":["A40","A100-40GB"],"rates":{"A100-40GB":1.20}})",
        R"({"id":"t2-q2","query":"cheapest_plan"})",
        R"({"id":"t3-q1","query":"report","gpu":"A40",)"
        R"("scenario":{"model":"blackmamba2p8b","num_queries":2e6}})",
        R"({"tenant":"acme","query":"throughput","gpu":"A40",)"
        R"("scenario":{"median_seq_len":256,"length_sigma":0.45,)"
        R"("sparse":false}})",
        // The live scrape (ISSUE-8): mutants graft scenario/gpu/
        // snapshot keys onto it, which the parser must reject.
        R"({"id":"s1","query":"stats"})",
        // Astral-plane and surrogate seeds (ISSUE-9): a valid pair
        // (U+1F600), a lone high surrogate, a lone low surrogate, and
        // lax number spellings. The first must parse and round-trip
        // its 4-byte UTF-8 identity; the rest are typed errors the
        // mutator then explores around.
        R"({"id":"\uD83D\uDE00","query":"max_batch","gpu":"A40"})",
        R"({"id":"\uDBFF\uDFFF x \u0041","query":"cheapest_plan"})",
        R"({"id":"\uD800","query":"max_batch","gpu":"A40"})",
        R"({"id":"\uDC00","query":"max_batch","gpu":"A40"})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"epochs":+5}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"epochs":.5}})",
    };
    // Plus the writer's own spelling of every request kind.
    for (QueryKind kind :
         {QueryKind::MaxBatch, QueryKind::Throughput,
          QueryKind::CostTable, QueryKind::CheapestPlan,
          QueryKind::Report, QueryKind::Stats}) {
        PlanRequest req;
        req.id = "fuzz";
        req.tenant = "fuzz-tenant";
        req.query = kind;
        if (kind == QueryKind::CostTable ||
            kind == QueryKind::CheapestPlan)
            req.gpus = {"A40", "H100"};
        else if (!isLiveKind(kind))
            req.gpu = "A40";  // Live kinds carry no workload fields.
        req.rates = {{"user", "L40S", 1.05}};
        corpus.push_back(writePlanRequest(req));
    }
    return corpus;
}

/** One seeded mutation of @p line. */
std::string
mutate(std::string line, std::mt19937& rng)
{
    auto pick = [&rng](std::size_t n) {
        return std::uniform_int_distribution<std::size_t>(0, n - 1)(rng);
    };
    switch (pick(9)) {
    case 0:  // Truncate at a random byte.
        return line.substr(0, pick(line.size() + 1));
    case 1: {  // Flip one byte to an arbitrary value.
        if (line.empty())
            return line;
        line[pick(line.size())] =
            static_cast<char>(static_cast<unsigned char>(pick(256)));
        return line;
    }
    case 2: {  // Insert an arbitrary byte.
        line.insert(line.begin() + static_cast<std::ptrdiff_t>(
                                       pick(line.size() + 1)),
                    static_cast<char>(static_cast<unsigned char>(
                        pick(256))));
        return line;
    }
    case 3: {  // Duplicate a random span in place.
        if (line.empty())
            return line;
        const std::size_t start = pick(line.size());
        const std::size_t len = pick(line.size() - start) + 1;
        return line.insert(start, line.substr(start, len));
    }
    case 4: {  // Wrap in nesting (sometimes deep enough to bomb).
        const std::size_t depth = pick(2) == 0 ? pick(8) : 200;
        std::string out;
        for (std::size_t i = 0; i < depth; ++i)
            out += '[';
        out += line;
        for (std::size_t i = 0; i < depth; ++i)
            out += ']';
        return out;
    }
    case 5: {  // Replace a span with a huge / degenerate number.
        static const char* numbers[] = {
            "1e309",  "-1e309", "1e-400", "9999999999999999999999",
            "-0.0",   "1e99999", "0x10",  "1..2",
            "--5",    "1e+",     "NaN",   "Infinity",
            "+5",     ".5",      "5.",    "01",
        };
        const std::string number = numbers[pick(16)];
        if (line.empty())
            return number;
        const std::size_t start = pick(line.size());
        return line.replace(start,
                            pick(line.size() - start) + 1, number);
    }
    case 6: {  // Inject a duplicate of an existing key.
        const std::size_t brace = line.find('{');
        if (brace == std::string::npos || brace + 1 >= line.size())
            return line + line;
        static const char* keys[] = {
            R"("query":"max_batch",)", R"("id":"dup",)",
            R"("gpu":"A40",)",         R"("tenant":"dup",)",
        };
        return line.insert(brace + 1, keys[pick(4)]);
    }
    case 7: {  // Inject a \u escape (pairs, lone surrogates, junk).
        static const char* escapes[] = {
            "\\uD83D\\uDE00", "\\uD800",  "\\uDC00", "\\uDBFF\\uDFFF",
            "\\u0041",       "\\u00e9",  "\\uFFFF", "\\uD83D\\u0041",
            "\\uEFFF",       "\\uD8ZZ",
        };
        line.insert(pick(line.size() + 1), escapes[pick(10)]);
        return line;
    }
    default:  // Concatenate with itself (trailing-garbage shape).
        return line + " " + line;
    }
}

TEST(ProtocolFuzz, ParserNeverCrashesAndErrorsAreTyped)
{
    const std::vector<std::string> corpus = seedCorpus();
    std::mt19937 rng(20260730);  // Fixed seed: a corpus, not a dice roll.

    constexpr int kIterations = 12000;
    int accepted = 0, rejected = 0;
    for (int i = 0; i < kIterations; ++i) {
        std::string line = corpus[static_cast<std::size_t>(i) %
                                  corpus.size()];
        // Stack 1-3 mutations for compound damage.
        const int rounds = 1 + static_cast<int>(rng() % 3);
        for (int r = 0; r < rounds; ++r)
            line = mutate(std::move(line), rng);

        Result<PlanRequest> parsed = parsePlanRequest(line);
        if (!parsed.ok()) {
            // The whole contract for bad input: one typed error.
            ASSERT_EQ(parsed.code(), ErrorCode::InvalidArgument)
                << "iteration " << i << ": " << line;
            ++rejected;
            continue;
        }
        ++accepted;
        // Accepted mutants must round-trip with identity intact.
        const std::string rewritten =
            writePlanRequest(parsed.value());
        Result<PlanRequest> reparsed = parsePlanRequest(rewritten);
        ASSERT_TRUE(reparsed.ok())
            << "iteration " << i << ": accepted \"" << line
            << "\" but rejected its own rewrite \"" << rewritten
            << "\": " << reparsed.error().describe();
        ASSERT_EQ(reparsed.value().canonicalKey(),
                  parsed.value().canonicalKey())
            << "iteration " << i << ": " << line;
    }

    // The generator must actually exercise both sides of the contract;
    // if either count collapses to ~zero the fuzz has gone blind.
    EXPECT_GT(rejected, kIterations / 2);
    EXPECT_GT(accepted, 100);
}

TEST(ProtocolFuzz, PathologicalShapesAreRejectedQuickly)
{
    // Hand-picked nasties that a random walk might miss.
    const std::string bombs[] = {
        std::string(1 << 20, '['),
        std::string(1 << 20, '{'),
        "{" + std::string(1 << 20, '"'),
        std::string(1 << 20, '-'),
        "{\"query\":\"max_batch\",\"gpu\":\"" +
            std::string(1 << 20, 'A') + "\"}",
        "{\"query\":\"max_batch\",\"gpu\":\"A40\",\"scenario\":" +
            std::string(200, '{') + std::string(200, '}') + "}",
    };
    for (const std::string& bomb : bombs) {
        Result<PlanRequest> parsed = parsePlanRequest(bomb);
        if (!parsed.ok())
            EXPECT_EQ(parsed.code(), ErrorCode::InvalidArgument);
    }
    // A megabyte-long *valid* gpu name parses fine (strictness is
    // about shape, not size) — it would just answer UnknownGpu later.
    Result<PlanRequest> huge = parsePlanRequest(
        "{\"query\":\"max_batch\",\"gpu\":\"" +
        std::string(1 << 20, 'A') + "\"}");
    EXPECT_TRUE(huge.ok());
}

}  // namespace
}  // namespace ftsim
