/**
 * @file
 * Wire-protocol tests: a write->parse round-trip for every request
 * kind, and strict rejection of malformed input (the service must
 * answer garbage with InvalidArgument, never guess or crash).
 */

#include <gtest/gtest.h>

#include "serve/protocol.hpp"

namespace ftsim {
namespace {

PlanRequest
requestOfKind(QueryKind kind)
{
    PlanRequest req;
    req.id = "tenant-7";
    req.query = kind;
    switch (kind) {
    case QueryKind::MaxBatch:
    case QueryKind::Throughput:
    case QueryKind::Report:
        req.gpu = "A40";
        break;
    case QueryKind::CostTable:
    case QueryKind::CheapestPlan:
        req.gpus = {"A40", "H100"};
        break;
    }
    req.scenario = Scenario::commonsense15k().withEpochs(3.0);
    req.rates = {{"user", "L40S", 1.05}};
    return req;
}

TEST(Protocol, RoundTripsEveryRequestKind)
{
    for (QueryKind kind :
         {QueryKind::MaxBatch, QueryKind::Throughput,
          QueryKind::CostTable, QueryKind::CheapestPlan,
          QueryKind::Report}) {
        const PlanRequest original = requestOfKind(kind);
        const std::string line = writePlanRequest(original);
        Result<PlanRequest> parsed = parsePlanRequest(line);
        ASSERT_TRUE(parsed.ok()) << line << " -> "
                                 << parsed.error().describe();
        EXPECT_EQ(parsed.value().id, original.id);
        EXPECT_EQ(parsed.value().query, original.query);
        EXPECT_EQ(parsed.value().gpu, original.gpu);
        EXPECT_EQ(parsed.value().gpus, original.gpus);
        // Identity is what the service coalesces on: it must survive
        // the wire exactly, scenario scalars and rates included.
        EXPECT_EQ(parsed.value().canonicalKey(),
                  original.canonicalKey());
    }
}

TEST(Protocol, RoundTripsBothModels)
{
    PlanRequest req = requestOfKind(QueryKind::Throughput);
    req.scenario.withModel(ModelSpec::blackMamba2p8b());
    Result<PlanRequest> parsed =
        parsePlanRequest(writePlanRequest(req));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().scenario.model.name, "BlackMamba-2.8B");
    EXPECT_EQ(parsed.value().canonicalKey(), req.canonicalKey());
}

TEST(Protocol, ParsesPresetsAndOverrides)
{
    Result<PlanRequest> parsed = parsePlanRequest(
        R"({"query":"throughput","gpu":"H100",)"
        R"("scenario":{"preset":"commonsense15k","epochs":3}})");
    ASSERT_TRUE(parsed.ok());
    const Scenario& s = parsed.value().scenario;
    EXPECT_EQ(s.medianSeqLen, 79u);       // From the preset.
    EXPECT_DOUBLE_EQ(s.epochs, 3.0);      // Overridden.
    EXPECT_DOUBLE_EQ(s.numQueries, 15000.0);
}

TEST(Protocol, DefaultsToGsMathScenario)
{
    Result<PlanRequest> parsed =
        parsePlanRequest(R"({"query":"max_batch","gpu":"A40"})");
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().scenario.canonicalKey(),
              Scenario::gsMath().canonicalKey());
    EXPECT_TRUE(parsed.value().id.empty());
}

TEST(Protocol, DecodesStringEscapes)
{
    Result<PlanRequest> parsed = parsePlanRequest(
        R"({"id":"a\"b\\cA\n","query":"max_batch","gpu":"A40"})");
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().id, "a\"b\\cA\n");
}

TEST(Protocol, DecodesAstralPlaneEscapes)
{
    // "\uD83D\uDE00" is U+1F600 (grinning face): the surrogate pair
    // must combine into one 4-byte UTF-8 sequence, not two 3-byte
    // sequences that each encode a surrogate code point (invalid
    // UTF-8 which would then round-trip through escapeJson as
    // garbage).
    Result<PlanRequest> parsed = parsePlanRequest(
        R"({"id":"\uD83D\uDE00","query":"max_batch","gpu":"A40"})");
    ASSERT_TRUE(parsed.ok()) << parsed.error().describe();
    EXPECT_EQ(parsed.value().id, "\xF0\x9F\x98\x80");

    // The astral-plane bytes must survive write + reparse with the
    // coalescing identity intact (the reparse-identity contract the
    // fuzz suite pins for every accepted line).
    const std::string rewritten = writePlanRequest(parsed.value());
    Result<PlanRequest> reparsed = parsePlanRequest(rewritten);
    ASSERT_TRUE(reparsed.ok())
        << rewritten << ": " << reparsed.error().describe();
    EXPECT_EQ(reparsed.value().id, "\xF0\x9F\x98\x80");
    EXPECT_EQ(reparsed.value().canonicalKey(),
              parsed.value().canonicalKey());

    // The extremes of the astral range: U+10000 and U+10FFFF, plus
    // lowercase hex digits.
    Result<PlanRequest> lo = parsePlanRequest(
        R"({"id":"\uD800\uDC00","query":"max_batch","gpu":"A40"})");
    ASSERT_TRUE(lo.ok());
    EXPECT_EQ(lo.value().id, "\xF0\x90\x80\x80");
    Result<PlanRequest> hi = parsePlanRequest(
        R"({"id":"\udbff\udfff","query":"max_batch","gpu":"A40"})");
    ASSERT_TRUE(hi.ok());
    EXPECT_EQ(hi.value().id, "\xF4\x8F\xBF\xBF");
}

TEST(Protocol, RoundTripsFullDoublePrecision)
{
    // 0.1 + 0.2 needs all 17 significant digits: a re-serialized
    // request must keep its coalescing identity to the last bit.
    PlanRequest req = requestOfKind(QueryKind::Throughput);
    req.scenario.withLengthSigma(0.1 + 0.2);
    req.scenario.withNumQueries(1234567.0);
    Result<PlanRequest> parsed =
        parsePlanRequest(writePlanRequest(req));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().scenario.lengthSigma,
              req.scenario.lengthSigma);
    EXPECT_EQ(parsed.value().canonicalKey(), req.canonicalKey());
}

TEST(Protocol, KeySeparatorsCannotBeInjected)
{
    // Wire names are arbitrary strings; joined lists must frame each
    // element so one crafted name cannot impersonate two.
    PlanRequest one;
    one.query = QueryKind::CostTable;
    one.gpus = {"A40,H100"};
    PlanRequest two;
    two.query = QueryKind::CostTable;
    two.gpus = {"A40", "H100"};
    EXPECT_NE(one.canonicalKey(), two.canonicalKey());

    PlanRequest crafted;
    crafted.query = QueryKind::MaxBatch;
    crafted.gpu = "A40";
    crafted.rates = {{"user", "X@2;Y", 3.0}};
    PlanRequest honest = crafted;
    honest.rates = {{"user", "X", 2.0}, {"user", "Y", 3.0}};
    EXPECT_NE(crafted.plannerKey(), honest.plannerKey());
}

TEST(Protocol, ProtocolErrorLineOmitsQuery)
{
    const std::string line =
        writeProtocolError("t9", "bad request: unterminated string");
    EXPECT_EQ(line.find("\"query\""), std::string::npos);
    EXPECT_NE(line.find("\"id\":\"t9\""), std::string::npos);
    EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(line.find("\"error\":\"InvalidArgument\""),
              std::string::npos);
    // And with no id, the field disappears entirely.
    EXPECT_EQ(writeProtocolError("", "x").find("\"id\""),
              std::string::npos);
}

TEST(Protocol, RoundTripsTenant)
{
    PlanRequest req = requestOfKind(QueryKind::Throughput);
    req.tenant = "acme-corp";
    Result<PlanRequest> parsed =
        parsePlanRequest(writePlanRequest(req));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().tenant, "acme-corp");
    EXPECT_EQ(parsed.value().canonicalKey(), req.canonicalKey());
}

TEST(Protocol, TenantIsNotPartOfTheCoalescingKey)
{
    // Like the id, the tenant is billing identity around the
    // question: two tenants asking the same thing must coalesce.
    PlanRequest a = requestOfKind(QueryKind::Throughput);
    a.tenant = "acme";
    PlanRequest b = a;
    b.tenant = "globex";
    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());
    EXPECT_EQ(a.plannerKey(), b.plannerKey());
}

TEST(Protocol, DeepNestingIsAParseErrorNotAStackOverflow)
{
    // Nesting budget: a hostile bracket bomb must answer
    // InvalidArgument instead of recursing the parser off the stack.
    std::string bomb(100000, '[');
    Result<PlanRequest> parsed = parsePlanRequest(bomb);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.code(), ErrorCode::InvalidArgument);

    std::string object_bomb;
    for (int i = 0; i < 5000; ++i)
        object_bomb += "{\"scenario\":";
    parsed = parsePlanRequest(object_bomb);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.code(), ErrorCode::InvalidArgument);
}

TEST(Protocol, RateLimitedSerializesOnTheWire)
{
    PlanRequest req = requestOfKind(QueryKind::Throughput);
    req.tenant = "acme";
    PlanResponse resp = errorResponse(
        req, Error{ErrorCode::RateLimited,
                   "tenant \"acme\" exceeded 2 requests/s"});
    const std::string line = writePlanResponse(resp);
    EXPECT_NE(line.find(R"("ok":false)"), std::string::npos);
    EXPECT_NE(line.find(R"("error":"RateLimited")"),
              std::string::npos);
}

TEST(Protocol, CoalescingKeyIgnoresIdOnly)
{
    PlanRequest a = requestOfKind(QueryKind::Throughput);
    PlanRequest b = a;
    b.id = "someone-else";
    EXPECT_EQ(a.canonicalKey(), b.canonicalKey());
    b.gpu = "H100";
    EXPECT_NE(a.canonicalKey(), b.canonicalKey());
    PlanRequest c = requestOfKind(QueryKind::Throughput);
    c.scenario.withEpochs(4.0);
    EXPECT_NE(a.canonicalKey(), c.canonicalKey());
    PlanRequest d = requestOfKind(QueryKind::Throughput);
    d.rates[0].dollarsPerHour = 2.0;
    EXPECT_NE(a.canonicalKey(), d.canonicalKey());
}

TEST(Protocol, MalformedInputIsInvalidArgument)
{
    const char* cases[] = {
        // Not JSON at all / wrong top-level shape.
        "hello",
        "",
        "[1,2]",
        "42",
        R"({"query":"max_batch","gpu":"A40"} trailing)",
        // Broken JSON.
        R"({"query":"max_batch","gpu":"A40")",
        R"({"query":"max_batch",})",
        R"({"query":"max_batch","gpu":"A40)",
        R"({"query":"max_batch","gpu":"A\x40"})",
        R"({"id":"a	b","query":"max_batch","gpu":"A40"})",  // Raw tab.
        R"({"query":"max_batch","query":"report","gpu":"A40"})",
        // Missing / unknown / mistyped fields.
        R"({"gpu":"A40"})",
        R"({"query":"resize_cluster","gpu":"A40"})",
        R"({"query":"max_batch"})",
        R"({"query":"max_batch","gpu":42})",
        R"({"query":"max_batch","gpu":""})",
        R"({"query":"max_batch","gpu":"A40","shard":3})",
        R"({"query":"max_batch","gpus":["A40"]})",
        R"({"query":"cost_table","gpu":"A40"})",
        R"({"query":"cost_table","gpus":["A40",7]})",
        R"({"query":"max_batch","gpu":"A40","id":7})",
        R"({"query":"max_batch","gpu":"A40","tenant":7})",
        R"({"query":"max_batch","gpu":"A40","tenant":""})",
        // Scenario strictness.
        R"({"query":"max_batch","gpu":"A40","scenario":{"preset":"imagenet"}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"model":"gpt5"}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"batch":8}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"median_seq_len":0}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"median_seq_len":1.5}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"length_sigma":-1}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"epochs":0}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"num_queries":-5}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"sparse":"yes"}})",
        // Rates strictness.
        R"({"query":"max_batch","gpu":"A40","rates":{"L40S":0}})",
        R"({"query":"max_batch","gpu":"A40","rates":{"L40S":-1.0}})",
        R"({"query":"max_batch","gpu":"A40","rates":{"L40S":"cheap"}})",
        R"({"query":"max_batch","gpu":"A40","rates":[1.0]})",
        // Unicode strictness: lone / unpaired surrogates would decode
        // to invalid UTF-8, so they are typed errors instead.
        R"({"query":"max_batch","gpu":"A40","id":"\uD800"})",
        R"({"query":"max_batch","gpu":"A40","id":"\uDC00"})",
        R"({"query":"max_batch","gpu":"A40","id":"\uDE00\uD83D"})",
        R"({"query":"max_batch","gpu":"A40","id":"\uD83D x"})",
        R"({"query":"max_batch","gpu":"A40","id":"\uD83DA"})",
        R"({"query":"max_batch","gpu":"A40","id":"\uD83D\uD83D"})",
        // Number strictness: strtod-isms strict JSON rejects.
        R"({"query":"max_batch","gpu":"A40","scenario":{"epochs":+5}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"epochs":.5}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"epochs":5.}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"epochs":01}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"epochs":1.}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"epochs":1e}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"epochs":1e+}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"epochs":0x5}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"epochs":--5}})",
        R"({"query":"max_batch","gpu":"A40","scenario":{"epochs":1e99999}})",
    };
    for (const char* line : cases) {
        Result<PlanRequest> parsed = parsePlanRequest(line);
        ASSERT_FALSE(parsed.ok()) << "accepted: " << line;
        EXPECT_EQ(parsed.code(), ErrorCode::InvalidArgument) << line;
    }
}

TEST(Protocol, ResponsesSerializeBothOutcomes)
{
    PlanResponse ok;
    ok.id = "r1";
    ok.query = QueryKind::MaxBatch;
    ok.ok = true;
    ok.value = 4.0;
    EXPECT_EQ(writePlanResponse(ok),
              R"({"id":"r1","query":"max_batch","ok":true,"value":4})");

    PlanResponse err = errorResponse(
        requestOfKind(QueryKind::Report),
        Error{ErrorCode::UnknownGpu, "no offering for \"B300\""});
    const std::string line = writePlanResponse(err);
    EXPECT_NE(line.find(R"("ok":false)"), std::string::npos);
    EXPECT_NE(line.find(R"("error":"UnknownGpu")"), std::string::npos);
    // The message's quotes must arrive escaped.
    EXPECT_NE(line.find(R"(no offering for \"B300\")"),
              std::string::npos);
}

TEST(Protocol, ReportResponseEscapesNewlines)
{
    PlanResponse resp;
    resp.query = QueryKind::Report;
    resp.ok = true;
    resp.report = "# line1\nline2";
    const std::string line = writePlanResponse(resp);
    // One physical line on the wire, newline escaped inside.
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_NE(line.find(R"(# line1\nline2)"), std::string::npos);
}

TEST(Protocol, LoadSnapshotRoundTripsRawBytes)
{
    // The payload is *raw* bytes in the struct and base64 on the wire
    // — registry snapshots are binary ("FTSNAP"), and JSON strings
    // cannot carry them unencoded.
    PlanRequest req;
    req.id = "warm-1";
    req.query = QueryKind::LoadSnapshot;
    req.snapshot = std::string("FTSNAP\x00\x01\xff binary\n bytes", 23);
    const std::string line = writePlanRequest(req);
    EXPECT_NE(line.find(R"("query":"load_snapshot")"),
              std::string::npos)
        << line;
    EXPECT_EQ(line.find("FTSNAP"), std::string::npos)
        << "raw bytes leaked onto the wire: " << line;
    Result<PlanRequest> parsed = parsePlanRequest(line);
    ASSERT_TRUE(parsed.ok()) << parsed.error().describe();
    EXPECT_EQ(parsed.value().id, req.id);
    EXPECT_EQ(parsed.value().query, QueryKind::LoadSnapshot);
    EXPECT_EQ(parsed.value().snapshot, req.snapshot);
}

TEST(Protocol, LoadSnapshotRejectsGarbageBase64)
{
    Result<PlanRequest> parsed = parsePlanRequest(
        R"({"query":"load_snapshot","snapshot":"!!not-base64!!"})");
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code, ErrorCode::InvalidArgument);
}

TEST(Protocol, LoadSnapshotRequiresThePayload)
{
    Result<PlanRequest> parsed =
        parsePlanRequest(R"({"query":"load_snapshot"})");
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code, ErrorCode::InvalidArgument);
}

TEST(Protocol, SnapshotFieldIsRejectedOnOtherKinds)
{
    Result<PlanRequest> parsed = parsePlanRequest(
        R"({"query":"max_batch","gpu":"A40","snapshot":"QQ=="})");
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code, ErrorCode::InvalidArgument);
}

TEST(Protocol, StatsRequestRoundTrips)
{
    Result<PlanRequest> parsed =
        parsePlanRequest(R"({"id":"s1","query":"stats"})");
    ASSERT_TRUE(parsed.ok()) << parsed.error().describe();
    EXPECT_EQ(parsed.value().query, QueryKind::Stats);
    EXPECT_EQ(parsed.value().id, "s1");
    EXPECT_TRUE(isLiveKind(QueryKind::Stats));

    const std::string rewritten = writePlanRequest(parsed.value());
    Result<PlanRequest> reparsed = parsePlanRequest(rewritten);
    ASSERT_TRUE(reparsed.ok())
        << rewritten << ": " << reparsed.error().describe();
    EXPECT_EQ(reparsed.value().query, QueryKind::Stats);
    EXPECT_EQ(reparsed.value().canonicalKey(),
              parsed.value().canonicalKey());
}

TEST(Protocol, StatsRejectsWorkloadKeys)
{
    // A scrape is about the service, not a workload: every
    // workload-shaped key on it is a confused caller.
    const char* cases[] = {
        R"({"query":"stats","tenant":"acme"})",
        R"({"query":"stats","gpu":"A40"})",
        R"({"query":"stats","gpus":["A40"]})",
        R"({"query":"stats","scenario":{"epochs":1}})",
        R"({"query":"stats","rates":{"A40":1.0}})",
        R"({"query":"stats","snapshot":"QQ=="})",
    };
    for (const char* line : cases) {
        Result<PlanRequest> parsed = parsePlanRequest(line);
        ASSERT_FALSE(parsed.ok()) << "accepted: " << line;
        EXPECT_EQ(parsed.code(), ErrorCode::InvalidArgument) << line;
    }
}

TEST(Protocol, StatsResponseEmbedsTheSnapshotVerbatim)
{
    PlanResponse resp;
    resp.id = "s1";
    resp.query = QueryKind::Stats;
    resp.ok = true;
    resp.value = 3.0;
    resp.statsJson = R"({"serve.requests":7,"net.requests":7})";
    const std::string line = writePlanResponse(resp);
    EXPECT_NE(line.find(R"("query":"stats")"), std::string::npos)
        << line;
    // The pre-serialized object lands byte-verbatim, not re-escaped.
    EXPECT_NE(
        line.find(R"("stats":{"serve.requests":7,"net.requests":7})"),
        std::string::npos)
        << line;

    PlanResponse empty;
    empty.query = QueryKind::Stats;
    empty.ok = true;
    EXPECT_NE(writePlanResponse(empty).find(R"("stats":{})"),
              std::string::npos);
}

}  // namespace
}  // namespace ftsim
