/**
 * @file
 * Binary wire format through the router: frames forward byte-verbatim
 * to real NetServer shards and the answers come back framed, mixed
 * JSON+binary traffic shares one router connection (and one persistent
 * shard connection), and the router's own intercepts (fleet, stats)
 * answer in the request's format.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "router/router.hpp"
#include "serve/protocol.hpp"
#include "serve/wire.hpp"

namespace ftsim {
namespace {

NetClient
connectLoopback(std::uint16_t port)
{
    Result<NetClient> client = NetClient::connectTo("127.0.0.1", port);
    if (!client.ok()) {
        ADD_FAILURE() << client.error().message;
        return NetClient();
    }
    return std::move(client.value());
}

/** Two real shards behind a router, started on background threads. */
class WireFleetFixture {
  public:
    WireFleetFixture()
    {
        for (auto& shard : shards_) {
            EXPECT_TRUE(shard.start().ok());
            ShardEndpoint endpoint;
            endpoint.port = shard.port();
            config_.shards.push_back(endpoint);
        }
        router_ = std::make_unique<RouterServer>(config_);
        EXPECT_TRUE(router_->start().ok());
    }

    ~WireFleetFixture()
    {
        if (router_)
            router_->stop();
        for (auto& shard : shards_)
            shard.stop();
    }

    RouterServer& router() { return *router_; }
    NetServer& shard(std::size_t i) { return shards_[i]; }

  private:
    NetServer shards_[2];
    RouterConfig config_;
    std::unique_ptr<RouterServer> router_;
};

/** A small duplicate-heavy mix across both per-GPU and sweep kinds. */
std::vector<PlanRequest>
wireTraffic()
{
    std::vector<PlanRequest> requests;
    auto add = [&requests](QueryKind kind, const char* gpu) {
        PlanRequest req;
        req.id = strCat("w", requests.size() + 1);
        req.query = kind;
        if (kind == QueryKind::MaxBatch ||
            kind == QueryKind::Throughput)
            req.gpu = gpu;
        else
            req.gpus = {"A40", "H100"};
        requests.push_back(std::move(req));
    };
    for (int round = 0; round < 2; ++round) {
        add(QueryKind::MaxBatch, "A40");
        add(QueryKind::MaxBatch, "H100");
        add(QueryKind::CostTable, "");
        add(QueryKind::CheapestPlan, "");
    }
    return requests;
}

TEST(RouterWire, BinaryAnswersThroughTheFleetMatchTheJsonPath)
{
    WireFleetFixture fleet;
    const std::vector<PlanRequest> requests = wireTraffic();

    // JSON pass: the reference bytes (routing included).
    std::vector<std::string> jsonAnswers;
    {
        NetClient client = connectLoopback(fleet.router().port());
        for (const PlanRequest& req : requests)
            ASSERT_TRUE(client.sendLine(writePlanRequest(req)).ok());
        client.finishSending();
        for (std::size_t i = 0; i < requests.size(); ++i) {
            Result<std::string> line = client.recvLine();
            ASSERT_TRUE(line.ok()) << line.error().message;
            jsonAnswers.push_back(std::move(line.value()));
        }
    }

    // Binary pass: same requests as frames, decoded back through the
    // JSON writer — byte-identical, slot for slot.
    {
        NetClient client = connectLoopback(fleet.router().port());
        for (const PlanRequest& req : requests)
            ASSERT_TRUE(
                client.sendBytes(encodeRequestFrame(req)).ok());
        client.finishSending();
        for (std::size_t i = 0; i < requests.size(); ++i) {
            Result<WireFramer::Frame> frame = client.recvFrame();
            ASSERT_TRUE(frame.ok()) << frame.error().message;
            ASSERT_TRUE(frame.value().binary);
            Result<WireMessage> decoded =
                decodeWirePayload(frame.value().payload);
            ASSERT_TRUE(decoded.ok()) << decoded.error().message;
            ASSERT_EQ(decoded.value().type, WireMsg::Response);
            EXPECT_EQ(writePlanResponse(decoded.value().response),
                      jsonAnswers[i])
                << "slot " << i;
        }
    }

    // The duplicate-heavy mix coalesces identically in both passes:
    // the fleet simulated the distinct configs once per pass.
    EXPECT_EQ(fleet.router().stats().forwarded,
              2 * requests.size());
    EXPECT_EQ(fleet.router().stats().protocolErrors, 0u);
}

TEST(RouterWire, MixedFormatsShareOneRouterConnection)
{
    WireFleetFixture fleet;
    NetClient client = connectLoopback(fleet.router().port());

    PlanRequest req;
    req.id = "mix";
    req.query = QueryKind::MaxBatch;
    req.gpu = "A40";

    // JSON then binary then JSON, pipelined down one connection —
    // and therefore interleaved down the same persistent shard
    // connection, which must keep both formats apart.
    ASSERT_TRUE(client.sendLine(writePlanRequest(req)).ok());
    ASSERT_TRUE(client.sendBytes(encodeRequestFrame(req)).ok());
    ASSERT_TRUE(client.sendLine(writePlanRequest(req)).ok());
    client.finishSending();

    Result<WireFramer::Frame> first = client.recvFrame();
    ASSERT_TRUE(first.ok()) << first.error().message;
    EXPECT_FALSE(first.value().binary);
    Result<WireFramer::Frame> second = client.recvFrame();
    ASSERT_TRUE(second.ok()) << second.error().message;
    ASSERT_TRUE(second.value().binary);
    Result<WireFramer::Frame> third = client.recvFrame();
    ASSERT_TRUE(third.ok()) << third.error().message;
    EXPECT_FALSE(third.value().binary);
    EXPECT_EQ(first.value().payload, third.value().payload);

    Result<WireMessage> decoded =
        decodeWirePayload(second.value().payload);
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    EXPECT_EQ(writePlanResponse(decoded.value().response),
              first.value().payload);
}

TEST(RouterWire, InterceptsAnswerInTheRequestFormat)
{
    WireFleetFixture fleet;
    NetClient client = connectLoopback(fleet.router().port());

    // fleet: composed by the router itself, returned as a frame.
    PlanRequest fleetReq;
    fleetReq.id = "f1";
    fleetReq.query = QueryKind::Fleet;
    ASSERT_TRUE(
        client.sendBytes(encodeRequestFrame(fleetReq)).ok());
    Result<WireFramer::Frame> fleetFrame = client.recvFrame();
    ASSERT_TRUE(fleetFrame.ok()) << fleetFrame.error().message;
    ASSERT_TRUE(fleetFrame.value().binary);
    Result<WireMessage> fleetMsg =
        decodeWirePayload(fleetFrame.value().payload);
    ASSERT_TRUE(fleetMsg.ok()) << fleetMsg.error().message;
    EXPECT_TRUE(fleetMsg.value().response.ok);
    EXPECT_EQ(fleetMsg.value().response.value, 2.0);
    EXPECT_NE(fleetMsg.value().response.report.find("shards=2"),
              std::string::npos);

    // stats: scatter-gathered over JSON probes shard-side, but the
    // client's answer still arrives framed.
    PlanRequest statsReq;
    statsReq.id = "s1";
    statsReq.query = QueryKind::Stats;
    ASSERT_TRUE(
        client.sendBytes(encodeRequestFrame(statsReq)).ok());
    Result<WireFramer::Frame> statsFrame = client.recvFrame();
    ASSERT_TRUE(statsFrame.ok()) << statsFrame.error().message;
    ASSERT_TRUE(statsFrame.value().binary);
    Result<WireMessage> statsMsg =
        decodeWirePayload(statsFrame.value().payload);
    ASSERT_TRUE(statsMsg.ok()) << statsMsg.error().message;
    EXPECT_TRUE(statsMsg.value().response.ok);
    EXPECT_EQ(statsMsg.value().response.value, 2.0);
    EXPECT_NE(statsMsg.value().response.statsJson.find("\"router\":"),
              std::string::npos);
}

TEST(RouterWire, UndecodableFrameIsAnsweredNotForwarded)
{
    WireFleetFixture fleet;
    NetClient client = connectLoopback(fleet.router().port());

    // Well-framed, undecodable payload: the router answers the typed
    // error itself — no shard sees it — and the connection survives.
    ASSERT_TRUE(client.sendBytes(wireFrame("\x01\x63")).ok());
    Result<WireFramer::Frame> err = client.recvFrame();
    ASSERT_TRUE(err.ok()) << err.error().message;
    ASSERT_TRUE(err.value().binary);
    Result<WireMessage> decoded =
        decodeWirePayload(err.value().payload);
    ASSERT_TRUE(decoded.ok()) << decoded.error().message;
    ASSERT_EQ(decoded.value().type, WireMsg::ProtocolError);

    PlanRequest req;
    req.id = "ok";
    req.query = QueryKind::MaxBatch;
    req.gpu = "A40";
    ASSERT_TRUE(client.sendBytes(encodeRequestFrame(req)).ok());
    Result<WireFramer::Frame> answer = client.recvFrame();
    ASSERT_TRUE(answer.ok()) << answer.error().message;
    EXPECT_TRUE(answer.value().binary);

    EXPECT_EQ(fleet.router().stats().forwarded, 1u);
    EXPECT_EQ(fleet.router().stats().protocolErrors, 1u);
}

TEST(RouterWire, FramingDamageKillsOnlyThatClientConnection)
{
    WireFleetFixture fleet;
    NetClient victim = connectLoopback(fleet.router().port());
    NetClient bystander = connectLoopback(fleet.router().port());

    PlanRequest req;
    req.id = "v";
    req.query = QueryKind::MaxBatch;
    req.gpu = "A40";
    std::string frame = encodeRequestFrame(req);
    frame[3] = 0x44;  // Bad version byte.
    ASSERT_TRUE(victim.sendBytes(frame).ok());

    Result<WireFramer::Frame> lastWords = victim.recvFrame();
    ASSERT_TRUE(lastWords.ok()) << lastWords.error().message;
    ASSERT_TRUE(lastWords.value().binary);
    Result<WireMessage> decoded =
        decodeWirePayload(lastWords.value().payload);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value().type, WireMsg::ProtocolError);
    EXPECT_NE(decoded.value().errorMessage.find("version"),
              std::string::npos);
    EXPECT_FALSE(victim.recvFrame().ok());  // Connection died.

    // The router (and the fleet behind it) keeps serving.
    req.id = "b";
    Result<std::string> alive =
        bystander.ask(writePlanRequest(req));
    ASSERT_TRUE(alive.ok()) << alive.error().message;
    EXPECT_NE(alive.value().find("\"ok\":true"), std::string::npos);
}

}  // namespace
}  // namespace ftsim
