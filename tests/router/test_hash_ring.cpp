/**
 * @file
 * HashRing tests: the properties the router's coalescing story rests
 * on. Same key → same shard (always, deterministically, across ring
 * instances built in any insertion order); removing a dead shard moves
 * *only* that shard's keys (survivors keep their assignments, so their
 * caches stay hot); and virtual nodes spread load roughly evenly.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "router/hash_ring.hpp"

namespace ftsim {
namespace {

std::vector<std::string>
sampleKeys(std::size_t n)
{
    std::vector<std::string> keys;
    keys.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        keys.push_back(
            strCat("throughput|A40|1|model=", i, "|sparse=0"));
    return keys;
}

TEST(HashRing, Fnv1a64MatchesReferenceVectors)
{
    // Published FNV-1a 64 test vectors.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(HashRing, EmptyRingRoutesNowhere)
{
    HashRing ring;
    EXPECT_EQ(ring.shardFor("anything"), -1);
    EXPECT_EQ(ring.liveShards(), 0u);

    ring.addShard(0, "s0");
    EXPECT_GE(ring.shardFor("anything"), 0);
    ring.removeShard(0);
    EXPECT_EQ(ring.shardFor("anything"), -1);
}

TEST(HashRing, RoutingIsDeterministic)
{
    HashRing a;
    a.addShard(0, "alpha");
    a.addShard(1, "beta");
    a.addShard(2, "gamma");

    // Same shards inserted in a different order: identical routing.
    HashRing b;
    b.addShard(2, "gamma");
    b.addShard(0, "alpha");
    b.addShard(1, "beta");

    for (const std::string& key : sampleKeys(500)) {
        const int shard = a.shardFor(key);
        ASSERT_GE(shard, 0);
        ASSERT_LT(shard, 3);
        EXPECT_EQ(shard, a.shardFor(key));  // Stable per instance.
        EXPECT_EQ(shard, b.shardFor(key));  // Stable across instances.
    }
}

TEST(HashRing, RemovalMovesOnlyTheDeadShardsKeys)
{
    HashRing ring;
    ring.addShard(0, "alpha");
    ring.addShard(1, "beta");
    ring.addShard(2, "gamma");

    const std::vector<std::string> keys = sampleKeys(2000);
    std::map<std::string, int> before;
    for (const std::string& key : keys)
        before[key] = ring.shardFor(key);

    ring.removeShard(1);
    EXPECT_EQ(ring.liveShards(), 2u);
    for (const std::string& key : keys) {
        const int now = ring.shardFor(key);
        ASSERT_NE(now, 1);
        if (before[key] != 1) {
            // Survivor keys must not move — that's what keeps the
            // surviving shards' plan caches warm through a failure.
            EXPECT_EQ(now, before[key]) << key;
        }
    }
}

TEST(HashRing, VirtualNodesSpreadLoad)
{
    HashRing ring(/*virtual_nodes=*/64);
    const std::size_t shards = 4;
    for (std::size_t i = 0; i < shards; ++i)
        ring.addShard(static_cast<int>(i), strCat("shard-", i));
    EXPECT_EQ(ring.liveShards(), shards);

    const std::vector<std::string> keys = sampleKeys(4000);
    std::vector<std::size_t> routed(shards, 0);
    for (const std::string& key : keys)
        ++routed[static_cast<std::size_t>(ring.shardFor(key))];

    // Perfectly even would be 1000 each; 64 virtual nodes gives a
    // coarse balance (observed ~0.3x..1.6x of fair share). The
    // property that matters is qualitative: every shard gets real
    // traffic, no shard takes a majority.
    for (std::size_t i = 0; i < shards; ++i) {
        EXPECT_GT(routed[i], keys.size() / shards / 5) << i;
        EXPECT_LT(routed[i], keys.size() / 2) << i;
    }
}

TEST(HashRing, DuplicatePointsPreferLowerShardId)
{
    // Two shards registered under the *same* name hash to identical
    // ring points; (hash, shard) ordering makes the tie deterministic.
    HashRing ring;
    ring.addShard(7, "same");
    ring.addShard(3, "same");
    for (const std::string& key : sampleKeys(50))
        EXPECT_EQ(ring.shardFor(key), 3);
}

}  // namespace
}  // namespace ftsim
