/**
 * @file
 * End-to-end fleet tests: RouterServer in front of real NetServer
 * shards, all in-process on loopback.
 *
 * The claims under test are ISSUE-6's acceptance bar:
 *
 *  - a client speaking to the router gets byte-identical answers to a
 *    client speaking to one big in-process PlanService — routing is
 *    invisible at the protocol level;
 *  - duplicate requests land on the same shard, so the *fleet*
 *    simulates exactly distinct-config-many steps (the thundering-herd
 *    guarantee, preserved across processes);
 *  - `fleet` queries are answered by the router itself with shard
 *    health;
 *  - a shard dying mid-request answers `Unavailable` on exactly the
 *    requests outstanding on it — never a hang, never a crash — and
 *    the survivors keep serving everything afterwards;
 *  - with no shard left, requests answer `Unavailable` wholesale.
 *
 * Everything binds port 0 so parallel runs never collide.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "router/hash_ring.hpp"
#include "router/router.hpp"
#include "serve/plan_service.hpp"
#include "serve/protocol.hpp"

namespace ftsim {
namespace {

NetClient
connectLoopback(std::uint16_t port)
{
    Result<NetClient> client = NetClient::connectTo("127.0.0.1", port);
    if (!client.ok()) {
        ADD_FAILURE() << client.error().message;
        return NetClient();
    }
    return std::move(client.value());
}

/** A duplicate-heavy request mix over 5 distinct configs. */
std::vector<PlanRequest>
fleetTraffic()
{
    std::vector<PlanRequest> requests;
    auto add = [&requests](QueryKind kind, const std::string& gpu,
                           Scenario scenario) {
        PlanRequest req;
        req.id = strCat("r", requests.size() + 1);
        req.query = kind;
        req.gpu = gpu;
        req.scenario = scenario;
        requests.push_back(std::move(req));
    };
    // 3 rounds of the same 6 questions = 18 requests, 6 identities.
    // The five throughput questions have distinct (gpu, scenario)
    // pairs, so each simulates its own step — exactly 5 steps
    // fleet-wide however the ring splits them (max_batch is analytic
    // and simulates none).
    for (int round = 0; round < 3; ++round) {
        add(QueryKind::MaxBatch, "A40", Scenario::gsMath());
        add(QueryKind::Throughput, "A40", Scenario::gsMath());
        add(QueryKind::Throughput, "H100", Scenario::gsMath());
        add(QueryKind::Throughput, "A40", Scenario::commonsense15k());
        add(QueryKind::Throughput, "H100",
            Scenario::commonsense15k());
        add(QueryKind::Throughput, "A40",
            Scenario::gsMath().withModel(ModelSpec::blackMamba2p8b()));
    }
    return requests;
}

/** Two real shards behind a router, started on background threads. */
class FleetFixture {
  public:
    FleetFixture()
    {
        for (auto& shard : shards_) {
            EXPECT_TRUE(shard.start().ok());
            ShardEndpoint endpoint;
            endpoint.port = shard.port();
            config_.shards.push_back(endpoint);
        }
        router_ = std::make_unique<RouterServer>(config_);
        EXPECT_TRUE(router_->start().ok());
    }

    ~FleetFixture()
    {
        if (router_)
            router_->stop();
        for (auto& shard : shards_)
            shard.stop();
    }

    RouterServer& router() { return *router_; }
    NetServer& shard(std::size_t i) { return shards_[i]; }

    /** The router's routing decision, mirrored (same names, same
     *  virtual-node count), so tests know which shard owns a key. */
    std::size_t expectedShard(const PlanRequest& request) const
    {
        HashRing ring(config_.virtualNodes);
        for (std::size_t i = 0; i < config_.shards.size(); ++i)
            ring.addShard(
                i, strCat(config_.shards[i].host, ':',
                          config_.shards[i].port));
        const int shard = ring.shardFor(request.canonicalKey());
        EXPECT_GE(shard, 0);
        return static_cast<std::size_t>(shard);
    }

  private:
    NetServer shards_[2];
    RouterConfig config_;
    std::unique_ptr<RouterServer> router_;
};

TEST(Router, FleetAnswersByteIdenticalToSingleService)
{
    FleetFixture fleet;
    const std::vector<PlanRequest> requests = fleetTraffic();

    // Pipeline everything through the router...
    NetClient client = connectLoopback(fleet.router().port());
    for (const PlanRequest& req : requests)
        ASSERT_TRUE(client.sendLine(writePlanRequest(req)).ok());
    std::vector<std::string> fleetAnswers;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        Result<std::string> line = client.recvLine();
        ASSERT_TRUE(line.ok()) << line.error().message;
        fleetAnswers.push_back(line.value());
    }

    // ...and ask one in-process service the same questions.
    PlanService reference;
    for (std::size_t i = 0; i < requests.size(); ++i)
        EXPECT_EQ(fleetAnswers[i],
                  writePlanResponse(reference.ask(requests[i])))
            << "request " << requests[i].id;

    // The fleet coalesced like one service: across both shards,
    // exactly distinct-config-many steps ran, and every duplicate
    // coalesced on its shard (6 identities executed, 18 asked).
    const std::uint64_t fleetSteps =
        fleet.shard(0).service().stats().stepsSimulated +
        fleet.shard(1).service().stats().stepsSimulated;
    EXPECT_EQ(fleetSteps, reference.stats().stepsSimulated);
    EXPECT_EQ(fleetSteps, 5u);
    EXPECT_EQ(fleet.shard(0).service().stats().executed +
                  fleet.shard(1).service().stats().executed,
              6u);

    // Duplicates landed on one shard each: every identity routed to
    // exactly the shard the ring names.
    const RouterStats stats = fleet.router().stats();
    EXPECT_EQ(stats.forwarded, requests.size());
    EXPECT_EQ(stats.responses, requests.size());
    EXPECT_EQ(stats.shardFailures, 0u);
}

TEST(Router, FleetQueryIsAnsweredByTheRouter)
{
    FleetFixture fleet;
    NetClient client = connectLoopback(fleet.router().port());
    Result<std::string> line =
        client.ask("{\"id\":\"f1\",\"query\":\"fleet\"}");
    ASSERT_TRUE(line.ok()) << line.error().message;
    EXPECT_NE(line.value().find("\"ok\":true"), std::string::npos);
    EXPECT_NE(line.value().find("\"id\":\"f1\""), std::string::npos);
    EXPECT_NE(line.value().find("shards=2"), std::string::npos);
    EXPECT_NE(line.value().find("alive=2"), std::string::npos);

    const RouterStats stats = fleet.router().stats();
    EXPECT_EQ(stats.fleetQueries, 1u);
    EXPECT_EQ(stats.forwarded, 0u);  // Never left the router.
    EXPECT_EQ(stats.shardsAlive, 2u);
}

TEST(Router, StatsQueryAggregatesEveryShardWithRouterNamespace)
{
    FleetFixture fleet;
    const std::vector<PlanRequest> requests = fleetTraffic();
    NetClient client = connectLoopback(fleet.router().port());
    for (const PlanRequest& req : requests) {
        Result<std::string> answer =
            client.ask(writePlanRequest(req));
        ASSERT_TRUE(answer.ok()) << answer.error().message;
    }

    Result<std::string> scrape =
        client.ask("{\"id\":\"s1\",\"query\":\"stats\"}");
    ASSERT_TRUE(scrape.ok()) << scrape.error().message;
    const std::string& line = scrape.value();
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
    EXPECT_NE(line.find("\"id\":\"s1\""), std::string::npos);
    // The merged document: the router's own registry under "router",
    // each shard's live scrape under "shards" keyed by ring name.
    EXPECT_NE(line.find("\"router\":{"), std::string::npos) << line;
    EXPECT_NE(line.find("\"shards\":{"), std::string::npos);
    EXPECT_NE(line.find("\"127.0.0.1:"), std::string::npos);
    // An internal probe is not client traffic: forwarded stays at
    // the 18 planning requests, and the scrape sees that exactly.
    EXPECT_NE(line.find(strCat("\"router.forwarded\":",
                               requests.size())),
              std::string::npos)
        << line;
    // Both shards answered with their own serve.* cells; combined
    // they executed the 6 distinct identities.
    EXPECT_NE(line.find("\"serve.executed\":"), std::string::npos);
    EXPECT_NE(line.find("\"router.shard."), std::string::npos);

    const RouterStats stats = fleet.router().stats();
    EXPECT_EQ(stats.statsQueries, 1u);
    EXPECT_EQ(stats.forwarded, requests.size());
    EXPECT_EQ(stats.shardFailures, 0u);

    // value = number of shard pieces gathered.
    EXPECT_NE(line.find("\"value\":2"), std::string::npos) << line;
}

TEST(Router, MalformedLinePoisonsOnlyItself)
{
    FleetFixture fleet;
    NetClient client = connectLoopback(fleet.router().port());

    Result<std::string> bad = client.ask("{\"query\":\"nope\"}");
    ASSERT_TRUE(bad.ok());
    EXPECT_NE(bad.value().find("\"ok\":false"), std::string::npos);
    EXPECT_NE(bad.value().find("InvalidArgument"), std::string::npos);

    // The connection survived and routes the next request fine.
    PlanRequest req;
    req.id = "after";
    req.query = QueryKind::MaxBatch;
    req.gpu = "A40";
    Result<std::string> good = client.ask(writePlanRequest(req));
    ASSERT_TRUE(good.ok());
    EXPECT_NE(good.value().find("\"ok\":true"), std::string::npos);
    EXPECT_EQ(fleet.router().stats().protocolErrors, 1u);
}

TEST(Router, DeadShardFailsOnlyItsRequestsAndSurvivorsKeepServing)
{
    // Shard 1 is a fake: a listener that accepts the router's
    // upstream connection but never answers — then we close it with
    // requests in flight.
    NetServer real;
    ASSERT_TRUE(real.start().ok());
    Result<TcpListener> fakeListener =
        TcpListener::bind("127.0.0.1", 0);
    ASSERT_TRUE(fakeListener.ok());

    // Explicit ring names: the default host:port names would make
    // placement depend on the kernel's ephemeral port pick, and this
    // test needs a deterministic doomed set.
    RouterConfig config;
    ShardEndpoint realEnd;
    realEnd.port = real.port();
    realEnd.name = "shard-real";
    ShardEndpoint fakeEnd;
    fakeEnd.port = fakeListener.value().port();
    fakeEnd.name = "shard-fake";
    config.shards = {realEnd, fakeEnd};
    RouterServer router(config);
    ASSERT_TRUE(router.start().ok());

    // The router connected at start; adopt its upstream socket.
    Connection fakeUpstream;
    for (int spin = 0; spin < 200 && !fakeUpstream.valid(); ++spin) {
        fakeUpstream = fakeListener.value().accept();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(fakeUpstream.valid());

    // Mirror the ring to know which requests the fake shard owns.
    HashRing ring(config.virtualNodes);
    ring.addShard(0, "shard-real");
    ring.addShard(1, "shard-fake");
    const std::vector<PlanRequest> requests = fleetTraffic();
    std::size_t doomed = 0;
    for (const PlanRequest& req : requests)
        if (ring.shardFor(req.canonicalKey()) == 1)
            ++doomed;
    // 6 identities over 2 named shards, deterministic placement: both
    // sides are populated (if a hash or traffic change ever unbalances
    // this, pick different shard names rather than weakening the
    // assertions below).
    ASSERT_GT(doomed, 0u);
    ASSERT_LT(doomed, requests.size());

    NetClient client = connectLoopback(router.port());
    for (const PlanRequest& req : requests)
        ASSERT_TRUE(client.sendLine(writePlanRequest(req)).ok());

    // Give the router time to forward, then kill the fake shard with
    // its requests in flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    fakeUpstream.close();

    // Failover (ISSUE-7): the doomed requests were retained by their
    // slots, so the router replays them on the survivor — every
    // request answers ok, none answers Unavailable.
    for (std::size_t i = 0; i < requests.size(); ++i) {
        Result<std::string> line = client.recvLine();
        ASSERT_TRUE(line.ok())
            << "request " << i << ": " << line.error().message;
        EXPECT_NE(line.value().find("\"ok\":true"), std::string::npos)
            << line.value();
        // Responses still arrive in request order: the id echoes.
        EXPECT_NE(line.value().find(strCat('"', requests[i].id, '"')),
                  std::string::npos)
            << line.value();
    }

    // The survivor now owns the whole keyspace: every request —
    // including the previously doomed identities — answers ok.
    for (const PlanRequest& req : requests) {
        Result<std::string> line = client.ask(writePlanRequest(req));
        ASSERT_TRUE(line.ok()) << line.error().message;
        EXPECT_NE(line.value().find("\"ok\":true"), std::string::npos)
            << line.value();
    }

    const RouterStats stats = router.stats();
    EXPECT_EQ(stats.retried, doomed);
    EXPECT_EQ(stats.shardFailures, 0u);
    EXPECT_EQ(stats.shardsAlive, 1u);
    ASSERT_EQ(stats.shards.size(), 2u);
    EXPECT_TRUE(stats.shards[0].alive);
    EXPECT_FALSE(stats.shards[1].alive);
    // Healing is off by default: the dead shard is terminal Down.
    EXPECT_EQ(stats.shards[1].state, ShardState::Down);
    EXPECT_EQ(stats.shards[1].dialAttempts, 0u);

    // And the fleet view reports the death.
    Result<std::string> fleetLine =
        client.ask("{\"query\":\"fleet\"}");
    ASSERT_TRUE(fleetLine.ok());
    EXPECT_NE(fleetLine.value().find("alive=1"), std::string::npos);

    router.stop();
    real.stop();
}

TEST(Router, NoLiveShardsAnswersUnavailableWholesale)
{
    Result<TcpListener> fakeListener =
        TcpListener::bind("127.0.0.1", 0);
    ASSERT_TRUE(fakeListener.ok());
    RouterConfig config;
    ShardEndpoint fakeEnd;
    fakeEnd.port = fakeListener.value().port();
    config.shards = {fakeEnd};
    RouterServer router(config);
    ASSERT_TRUE(router.start().ok());

    Connection fakeUpstream;
    for (int spin = 0; spin < 200 && !fakeUpstream.valid(); ++spin) {
        fakeUpstream = fakeListener.value().accept();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(fakeUpstream.valid());
    fakeUpstream.close();

    // Routing with the whole fleet dead: typed Unavailable, no hang.
    NetClient client = connectLoopback(router.port());
    PlanRequest req;
    req.id = "doomed";
    req.query = QueryKind::MaxBatch;
    req.gpu = "A40";
    bool sawUnavailable = false;
    for (int attempt = 0; attempt < 200 && !sawUnavailable;
         ++attempt) {
        Result<std::string> line = client.ask(writePlanRequest(req));
        ASSERT_TRUE(line.ok()) << line.error().message;
        EXPECT_NE(line.value().find("\"ok\":false"),
                  std::string::npos);
        // The first request may race the death notice and fail as a
        // shard casualty; once the ring is empty the answer is the
        // wholesale "no live shards".
        sawUnavailable = line.value().find("Unavailable") !=
                         std::string::npos;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(sawUnavailable);
    EXPECT_EQ(router.stats().shardsAlive, 0u);

    router.stop();
}

TEST(Router, ConnectShardsFailsLoudlyOnUnreachableShard)
{
    // A port nothing listens on: grab an ephemeral port, then close
    // the listener so connecting to it is refused.
    std::uint16_t deadPort = 0;
    {
        Result<TcpListener> probe = TcpListener::bind("127.0.0.1", 0);
        ASSERT_TRUE(probe.ok());
        deadPort = probe.value().port();
    }
    RouterConfig config;
    ShardEndpoint dead;
    dead.port = deadPort;
    config.shards = {dead};
    RouterServer router(config);
    ASSERT_TRUE(router.bindListener().ok());
    Result<bool> connected = router.connectShards();
    ASSERT_FALSE(connected.ok());
    EXPECT_NE(connected.error().message.find(
                  strCat("127.0.0.1:", deadPort)),
              std::string::npos)
        << connected.error().message;
}

}  // namespace
}  // namespace ftsim
