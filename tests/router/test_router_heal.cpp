/**
 * @file
 * Self-healing fleet tests (ISSUE-7): retry/failover, the supervised
 * reconnect heartbeat, and warm-start rejoin — RouterServer over real
 * NetServer shards with a FaultProxy parked in between where a test
 * needs to kill or retarget a link at an exact moment.
 *
 * The claims under test:
 *
 *  - a shard killed with requests in flight loses *nothing*: its
 *    outstanding and future requests replay on the survivors and every
 *    answer matches what the healthy fleet would have said, byte for
 *    byte;
 *  - an alive-but-wedged shard (accepts, never answers) is declared
 *    dead by the per-request deadline and handled identically;
 *  - with `reconnectBackoffMs` set the router re-dials the dead
 *    endpoint on an exponential schedule driven by the injectable
 *    clock — no wall-clock sleeps decide test outcomes;
 *  - a rejoining shard is warmed from the survivors' live registry
 *    snapshots before its ring points return: it compiles zero plans
 *    for configs the fleet has already seen;
 *  - the `fleet` query reports lifecycle states and the
 *    retried/healed/respawned ledger.
 *
 * Everything binds port 0 so parallel runs never collide.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "net/client.hpp"
#include "net/fault_proxy.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "router/hash_ring.hpp"
#include "router/router.hpp"
#include "serve/plan_service.hpp"
#include "serve/protocol.hpp"

namespace ftsim {
namespace {

NetClient
connectLoopback(std::uint16_t port)
{
    Result<NetClient> client = NetClient::connectTo("127.0.0.1", port);
    if (!client.ok()) {
        ADD_FAILURE() << client.error().message;
        return NetClient();
    }
    return std::move(client.value());
}

/** A duplicate-heavy request mix over 6 identities (5 simulating). */
std::vector<PlanRequest>
healTraffic()
{
    std::vector<PlanRequest> requests;
    auto add = [&requests](QueryKind kind, const std::string& gpu,
                           Scenario scenario) {
        PlanRequest req;
        req.id = strCat("h", requests.size() + 1);
        req.query = kind;
        req.gpu = gpu;
        req.scenario = scenario;
        requests.push_back(std::move(req));
    };
    add(QueryKind::MaxBatch, "A40", Scenario::gsMath());
    add(QueryKind::Throughput, "A40", Scenario::gsMath());
    add(QueryKind::Throughput, "H100", Scenario::gsMath());
    add(QueryKind::Throughput, "A40", Scenario::commonsense15k());
    add(QueryKind::Throughput, "H100", Scenario::commonsense15k());
    add(QueryKind::Throughput, "A40",
        Scenario::gsMath().withModel(ModelSpec::blackMamba2p8b()));
    return requests;
}

/** Polls @p predicate for up to @p budgetMs of real time. */
bool
eventually(double budgetMs, const std::function<bool()>& predicate)
{
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(static_cast<int>(budgetMs));
    while (std::chrono::steady_clock::now() < deadline) {
        if (predicate())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return predicate();
}

TEST(RouterHeal, KilledShardRejoinsWarmAndAnswersStayByteIdentical)
{
    // Topology: shard-a direct, shard-b behind a FaultProxy so the
    // test can kill the link at an exact moment and later point the
    // same endpoint at a fresh replacement process.
    NetServer shardA;
    ASSERT_TRUE(shardA.start().ok());
    NetServer shardB;
    ASSERT_TRUE(shardB.start().ok());

    FaultProxyConfig proxyConfig;
    proxyConfig.targetPort = shardB.port();
    FaultProxy proxy(proxyConfig);
    ASSERT_TRUE(proxy.start().ok());

    RouterConfig config;
    ShardEndpoint endA;
    endA.port = shardA.port();
    endA.name = "shard-a";
    ShardEndpoint endB;
    endB.port = proxy.port();
    endB.name = "shard-b";
    config.shards = {endA, endB};
    config.retryBudget = 2;
    config.reconnectBackoffMs = 20.0;  // Real clock: heal fast.
    config.reconnectBackoffMaxMs = 100.0;
    config.healTimeoutMs = 500.0;  // Keep a doomed heal attempt short.
    RouterServer router(config);
    ASSERT_TRUE(router.start().ok());

    // Phase 1: warm the whole fleet and record the healthy answers.
    const std::vector<PlanRequest> requests = healTraffic();
    std::vector<std::string> healthy;
    {
        NetClient client = connectLoopback(router.port());
        for (const PlanRequest& req : requests) {
            Result<std::string> line =
                client.ask(writePlanRequest(req));
            ASSERT_TRUE(line.ok()) << line.error().message;
            EXPECT_NE(line.value().find("\"ok\":true"),
                      std::string::npos)
                << line.value();
            healthy.push_back(std::move(line.value()));
        }
    }

    // Phase 2: kill shard-b with requests provably in flight.
    // Mirror the ring to know how many requests it owns, stall its
    // response flow so they cannot complete, fill the pipeline, then
    // cut the link: the outstanding requests must replay on shard-a
    // and every answer must match the healthy run byte for byte.
    HashRing ring(config.virtualNodes);
    ring.addShard(0, "shard-a");
    ring.addShard(1, "shard-b");
    std::size_t doomed = 0;
    for (const PlanRequest& req : requests)
        if (ring.shardFor(req.canonicalKey()) == 1)
            ++doomed;
    // Deterministic placement split; pick different shard names if a
    // hash or traffic change ever empties a side.
    ASSERT_GT(doomed, 0u);
    ASSERT_LT(doomed, requests.size());

    FaultScript stall;
    stall.kind = FaultKind::Stall;
    stall.direction = FaultDirection::ServerToClient;
    proxy.setFault(stall);

    NetClient client = connectLoopback(router.port());
    for (const PlanRequest& req : requests)
        ASSERT_TRUE(client.sendLine(writePlanRequest(req)).ok());
    ASSERT_TRUE(eventually(5000.0, [&] {
        return router.stats().forwarded == 2 * requests.size();
    })) << "the router never forwarded the second batch";
    // Stop the old worker first so heal dials cannot reach it, then
    // cut the live link: the router sees a mid-pipeline death with
    // exactly `doomed` requests outstanding.
    shardB.stop();
    proxy.killConnections();
    proxy.clearFault();
    for (std::size_t i = 0; i < requests.size(); ++i) {
        Result<std::string> line = client.recvLine();
        ASSERT_TRUE(line.ok())
            << "request " << i << ": " << line.error().message;
        EXPECT_EQ(line.value(), healthy[i]);
    }

    // Phase 3: bring up a cold replacement on shard-b's endpoint and
    // let the heartbeat heal into it. The rejoiner must be warmed from
    // shard-a's snapshot before serving: zero plans compiled.
    NetServer shardB2;
    ASSERT_TRUE(shardB2.start().ok());
    proxy.setTarget("127.0.0.1", shardB2.port());
    ASSERT_TRUE(eventually(5000.0, [&] {
        return router.stats().healed == 1;
    })) << "shard-b never healed";

    const RouterStats healedStats = router.stats();
    EXPECT_EQ(healedStats.shardsAlive, 2u);
    EXPECT_EQ(healedStats.shards[1].state, ShardState::Alive);
    EXPECT_EQ(healedStats.shards[1].heals, 1u);
    EXPECT_GE(healedStats.shards[1].dialAttempts, 1u);
    EXPECT_GE(healedStats.lastHealMs, 0.0);
    EXPECT_EQ(healedStats.shardFailures, 0u);
    EXPECT_EQ(healedStats.retried, doomed);

    // Every fleet-seen config replays byte-identically through the
    // healed fleet — and the rejoined shard compiled nothing: its
    // registry was warm-started, not rebuilt.
    for (std::size_t i = 0; i < requests.size(); ++i) {
        Result<std::string> line =
            client.ask(writePlanRequest(requests[i]));
        ASSERT_TRUE(line.ok()) << line.error().message;
        EXPECT_EQ(line.value(), healthy[i]);
    }
    EXPECT_EQ(shardB2.service().planRegistry()->plansCompiled(), 0u);
    EXPECT_GT(shardB2.service().planRegistry()->plansLoaded(), 0u);

    // The fleet view spells out the ledger.
    Result<std::string> fleet = client.ask("{\"query\":\"fleet\"}");
    ASSERT_TRUE(fleet.ok());
    EXPECT_NE(fleet.value().find("alive=2"), std::string::npos)
        << fleet.value();
    EXPECT_NE(fleet.value().find("healed=1"), std::string::npos)
        << fleet.value();
    EXPECT_NE(fleet.value().find("shard-b=alive"), std::string::npos)
        << fleet.value();

    router.stop();
    proxy.stop();
    shardA.stop();
    shardB2.stop();
}

TEST(RouterHeal, WedgedShardTripsDeadlineAndRequestsFailOver)
{
    // shard-fake accepts the router's upstream connection but never
    // answers: alive at the TCP level, dead at the protocol level.
    // Only the per-request deadline can unwedge its requests.
    NetServer real;
    ASSERT_TRUE(real.start().ok());
    Result<TcpListener> fakeListener =
        TcpListener::bind("127.0.0.1", 0);
    ASSERT_TRUE(fakeListener.ok());

    RouterConfig config;
    ShardEndpoint realEnd;
    realEnd.port = real.port();
    realEnd.name = "shard-real";
    ShardEndpoint fakeEnd;
    fakeEnd.port = fakeListener.value().port();
    fakeEnd.name = "shard-fake";
    config.shards = {realEnd, fakeEnd};
    config.retryBudget = 2;
    config.requestDeadlineMs = 100.0;
    RouterServer router(config);
    ASSERT_TRUE(router.start().ok());

    Connection fakeUpstream;
    for (int spin = 0; spin < 200 && !fakeUpstream.valid(); ++spin) {
        fakeUpstream = fakeListener.value().accept();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(fakeUpstream.valid());

    NetClient client = connectLoopback(router.port());
    const std::vector<PlanRequest> requests = healTraffic();
    for (const PlanRequest& req : requests)
        ASSERT_TRUE(client.sendLine(writePlanRequest(req)).ok());

    // The wedged shard's requests sit until the 100ms deadline trips,
    // then replay on shard-real: every answer is ok, none is lost.
    for (std::size_t i = 0; i < requests.size(); ++i) {
        Result<std::string> line = client.recvLine();
        ASSERT_TRUE(line.ok())
            << "request " << i << ": " << line.error().message;
        EXPECT_NE(line.value().find("\"ok\":true"), std::string::npos)
            << line.value();
    }

    const RouterStats stats = router.stats();
    EXPECT_EQ(stats.deadlineExpired, 1u);
    EXPECT_GT(stats.retried, 0u);
    EXPECT_EQ(stats.shardFailures, 0u);
    EXPECT_FALSE(stats.shards[1].alive);

    router.stop();
    real.stop();
}

TEST(RouterHeal, ReconnectBackoffIsExponentialOnTheInjectedClock)
{
    // One real shard (so the router starts) plus one shard that dies
    // immediately and whose endpoint stays dead: the heartbeat must
    // re-dial at reconnectBackoffMs, then double per failure up to the
    // cap — all on virtual time.
    NetServer real;
    ASSERT_TRUE(real.start().ok());
    Result<TcpListener> fakeListener =
        TcpListener::bind("127.0.0.1", 0);
    ASSERT_TRUE(fakeListener.ok());

    std::atomic<double> now{0.0};
    RouterConfig config;
    ShardEndpoint realEnd;
    realEnd.port = real.port();
    realEnd.name = "shard-real";
    ShardEndpoint fakeEnd;
    fakeEnd.port = fakeListener.value().port();
    fakeEnd.name = "shard-fake";
    config.shards = {realEnd, fakeEnd};
    config.reconnectBackoffMs = 100.0;
    config.reconnectBackoffMaxMs = 400.0;
    config.healTimeoutMs = 50.0;  // Dial failures resolve fast.
    config.clock = [&now] { return now.load(); };
    RouterServer router(config);
    ASSERT_TRUE(router.start().ok());

    // Adopt + kill the upstream, and close the listener so every
    // re-dial is refused (nothing left to accept the handshake).
    Connection fakeUpstream;
    for (int spin = 0; spin < 200 && !fakeUpstream.valid(); ++spin) {
        fakeUpstream = fakeListener.value().accept();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(fakeUpstream.valid());
    fakeListener.value().close();
    fakeUpstream.close();

    auto dials = [&] { return router.stats().shards[1].dialAttempts; };
    ASSERT_TRUE(eventually(2000.0, [&] {
        return !router.stats().shards[1].alive;
    }));

    // Death at t≈0 arms the first dial at t=100. Virtual time stands
    // still, so nothing can fire yet no matter how long we wait.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_EQ(dials(), 0u);

    now.store(150.0);  // Past the first backoff: exactly one dial.
    ASSERT_TRUE(eventually(2000.0, [&] { return dials() >= 1; }));
    EXPECT_EQ(dials(), 1u);

    // The failed dial doubled the backoff to 200ms. t=250 is only
    // 100ms later — still inside it.
    now.store(250.0);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_EQ(dials(), 1u);

    now.store(10000.0);  // Far past every capped backoff.
    ASSERT_TRUE(eventually(2000.0, [&] { return dials() >= 2; }));

    // The fleet view names the lifecycle state while it heartbeats.
    NetClient client = connectLoopback(router.port());
    Result<std::string> fleet = client.ask("{\"query\":\"fleet\"}");
    ASSERT_TRUE(fleet.ok());
    EXPECT_NE(fleet.value().find("shard-fake="), std::string::npos)
        << fleet.value();
    EXPECT_EQ(fleet.value().find("shard-fake=alive"),
              std::string::npos)
        << fleet.value();

    router.stop();
    real.stop();
}

TEST(RouterHeal, RetryBudgetZeroRestoresFailFast)
{
    // With the budget off, a killed shard's in-flight requests answer
    // Unavailable exactly as before ISSUE-7 — the knob is honored.
    NetServer real;
    ASSERT_TRUE(real.start().ok());
    Result<TcpListener> fakeListener =
        TcpListener::bind("127.0.0.1", 0);
    ASSERT_TRUE(fakeListener.ok());

    RouterConfig config;
    ShardEndpoint realEnd;
    realEnd.port = real.port();
    realEnd.name = "shard-real";
    ShardEndpoint fakeEnd;
    fakeEnd.port = fakeListener.value().port();
    fakeEnd.name = "shard-fake";
    config.shards = {realEnd, fakeEnd};
    config.retryBudget = 0;
    RouterServer router(config);
    ASSERT_TRUE(router.start().ok());

    Connection fakeUpstream;
    for (int spin = 0; spin < 200 && !fakeUpstream.valid(); ++spin) {
        fakeUpstream = fakeListener.value().accept();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(fakeUpstream.valid());

    NetClient client = connectLoopback(router.port());
    const std::vector<PlanRequest> requests = healTraffic();
    std::size_t doomed = 0;
    for (const PlanRequest& req : requests)
        ASSERT_TRUE(client.sendLine(writePlanRequest(req)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    fakeUpstream.close();

    for (std::size_t i = 0; i < requests.size(); ++i) {
        Result<std::string> line = client.recvLine();
        ASSERT_TRUE(line.ok()) << line.error().message;
        if (line.value().find("\"ok\":false") != std::string::npos) {
            EXPECT_NE(line.value().find("Unavailable"),
                      std::string::npos)
                << line.value();
            ++doomed;
        }
    }
    EXPECT_GT(doomed, 0u);
    const RouterStats stats = router.stats();
    EXPECT_EQ(stats.shardFailures, doomed);
    EXPECT_EQ(stats.retried, 0u);

    router.stop();
    real.stop();
}

}  // namespace
}  // namespace ftsim
