/**
 * @file
 * Autograd-graph behaviour tests: composites, known closed-form
 * gradients, and the cross-entropy training signal.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace ftsim {
namespace {

TEST(Autograd, ProductRule)
{
    Tensor a = Tensor::scalar(3.0, true);
    Tensor b = Tensor::scalar(4.0, true);
    mul(a, b).backward();
    EXPECT_DOUBLE_EQ(a.grad()[0], 4.0);
    EXPECT_DOUBLE_EQ(b.grad()[0], 3.0);
}

TEST(Autograd, ChainRuleThroughSigmoid)
{
    // d/dx sigmoid(2x) = 2 s (1 - s).
    Tensor x = Tensor::scalar(0.3, true);
    sigmoid(scale(x, 2.0)).backward();
    double s = 1.0 / (1.0 + std::exp(-0.6));
    EXPECT_NEAR(x.grad()[0], 2.0 * s * (1.0 - s), 1e-12);
}

TEST(Autograd, MatmulGradientClosedForm)
{
    // loss = sum(A B); dA = ones * B^T, dB = A^T * ones.
    Tensor a = Tensor::fromVector({2, 2}, {1, 2, 3, 4}, true);
    Tensor b = Tensor::fromVector({2, 2}, {5, 6, 7, 8}, true);
    sumAll(matmul(a, b)).backward();
    // dA[i][k] = sum_j B[k][j].
    EXPECT_DOUBLE_EQ(a.grad()[0], 11.0);
    EXPECT_DOUBLE_EQ(a.grad()[1], 15.0);
    EXPECT_DOUBLE_EQ(a.grad()[2], 11.0);
    // dB[k][j] = sum_i A[i][k].
    EXPECT_DOUBLE_EQ(b.grad()[0], 4.0);
    EXPECT_DOUBLE_EQ(b.grad()[2], 6.0);
}

TEST(Autograd, CrossEntropyGradientIsSoftmaxMinusOneHot)
{
    Tensor logits = Tensor::fromVector({1, 3}, {1.0, 2.0, 3.0}, true);
    crossEntropy(logits, {2}).backward();
    // softmax of (1,2,3).
    double z = std::exp(1.0) + std::exp(2.0) + std::exp(3.0);
    EXPECT_NEAR(logits.grad()[0], std::exp(1.0) / z, 1e-12);
    EXPECT_NEAR(logits.grad()[1], std::exp(2.0) / z, 1e-12);
    EXPECT_NEAR(logits.grad()[2], std::exp(3.0) / z - 1.0, 1e-12);
}

TEST(Autograd, IgnoredTargetsGetZeroGradient)
{
    Tensor logits = Tensor::fromVector({2, 2}, {1, 2, 3, 4}, true);
    crossEntropy(logits, {0, -1}, -1).backward();
    EXPECT_DOUBLE_EQ(logits.grad()[2], 0.0);
    EXPECT_DOUBLE_EQ(logits.grad()[3], 0.0);
    EXPECT_NE(logits.grad()[0], 0.0);
}

TEST(Autograd, GradientDescentReducesQuadratic)
{
    // Minimize ||x - c||^2 by hand-rolled SGD over the graph.
    Rng rng(3);
    Tensor x = Tensor::randn({4}, rng, 1.0, true);
    Tensor c = Tensor::fromVector({4}, {1.0, -2.0, 0.5, 3.0});
    double prev = 1e300;
    for (int iter = 0; iter < 50; ++iter) {
        x.zeroGrad();
        Tensor diff = sub(x, c);
        Tensor loss = sumAll(mul(diff, diff));
        EXPECT_LE(loss.item(), prev + 1e-12);
        prev = loss.item();
        loss.backward();
        for (std::size_t i = 0; i < x.numel(); ++i)
            x.data()[i] -= 0.1 * x.grad()[i];
    }
    EXPECT_LT(prev, 1e-3);
}

TEST(Autograd, MoEGatePathPropagates)
{
    // A miniature of the MoE combine: gather -> scale rows -> scatter.
    Tensor x = Tensor::fromVector({3, 2}, {1, 1, 2, 2, 3, 3}, true);
    Tensor w = Tensor::fromVector({2}, {0.25, 0.75}, true);
    Tensor g = gatherRows(x, {0, 2});
    Tensor s = scaleRows(g, w);
    Tensor out = scatterAddRows(s, {0, 2}, 3);
    sumAll(out).backward();
    // Row 1 of x was never gathered.
    EXPECT_DOUBLE_EQ(x.grad()[2], 0.0);
    EXPECT_DOUBLE_EQ(x.grad()[0], 0.25);
    EXPECT_DOUBLE_EQ(x.grad()[4], 0.75);
    // dw = sum of gathered row values.
    EXPECT_DOUBLE_EQ(w.grad()[0], 2.0);
    EXPECT_DOUBLE_EQ(w.grad()[1], 6.0);
}

TEST(Autograd, DiamondGraphAccumulates)
{
    // y = (x*2) + (x*3): two paths to the same leaf.
    Tensor x = Tensor::scalar(1.0, true);
    Tensor y = add(scale(x, 2.0), scale(x, 3.0));
    y.backward();
    EXPECT_DOUBLE_EQ(x.grad()[0], 5.0);
}

TEST(Autograd, DetachBlocksGradient)
{
    Tensor x = Tensor::scalar(2.0, true);
    Tensor d = scale(x, 3.0).detach();
    Tensor y = mul(d, d);
    EXPECT_FALSE(y.requiresGrad());
}

}  // namespace
}  // namespace ftsim
