/**
 * @file
 * Finite-difference gradient verification for every differentiable op.
 *
 * Each case builds a small scalar-valued function of random inputs and
 * compares reverse-mode gradients against central differences. Tensors
 * are double precision, so tolerances are tight.
 */

#include <gtest/gtest.h>

#include <cmath>

#include <functional>
#include <string>

#include "common/rng.hpp"
#include "tensor/grad_check.hpp"
#include "tensor/ops.hpp"

namespace ftsim {
namespace {

/** One named grad-check scenario. */
struct GradCase {
    std::string name;
    /** Builds the input leaves. */
    std::function<std::vector<Tensor>(Rng&)> make_inputs;
    /** The scalar function under test. */
    ScalarFn fn;
};

class GradCheckSuite : public ::testing::TestWithParam<GradCase> {};

TEST_P(GradCheckSuite, AnalyticMatchesNumeric)
{
    const GradCase& gc = GetParam();
    Rng rng(0xfeedULL + std::hash<std::string>{}(gc.name));
    auto inputs = gc.make_inputs(rng);
    GradCheckResult result = gradCheck(gc.fn, inputs, 1e-5, 2e-5, 1e-8);
    EXPECT_TRUE(result.ok) << gc.name << ": " << result.firstFailure
                           << " (max rel " << result.maxRelError << ")";
}

std::vector<Tensor>
two23(Rng& rng)
{
    return {Tensor::randn({2, 3}, rng), Tensor::randn({2, 3}, rng)};
}

std::vector<Tensor>
one23(Rng& rng)
{
    return {Tensor::randn({2, 3}, rng)};
}

const GradCase kCases[] = {
    {"add", two23,
     [](const std::vector<Tensor>& t) {
         return sumAll(add(t[0], t[1]));
     }},
    {"sub", two23,
     [](const std::vector<Tensor>& t) {
         return sumAll(mul(sub(t[0], t[1]), sub(t[0], t[1])));
     }},
    {"mul", two23,
     [](const std::vector<Tensor>& t) {
         return sumAll(mul(t[0], t[1]));
     }},
    {"div", [](Rng& rng) -> std::vector<Tensor> {
         // Keep the denominator away from zero.
         Tensor b = Tensor::randn({2, 3}, rng);
         for (auto& v : b.data())
             v = v > 0 ? v + 1.5 : v - 1.5;
         return {Tensor::randn({2, 3}, rng), b};
     },
     [](const std::vector<Tensor>& t) {
         return sumAll(div(t[0], t[1]));
     }},
    {"scale_addScalar", one23,
     [](const std::vector<Tensor>& t) {
         return sumAll(addScalar(scale(t[0], -2.5), 3.0));
     }},
    {"relu", [](Rng& rng) -> std::vector<Tensor> {
         // Nudge values away from the kink at 0.
         Tensor x = Tensor::randn({2, 3}, rng);
         for (auto& v : x.data())
             v += (v >= 0 ? 0.3 : -0.3);
         return {x};
     },
     [](const std::vector<Tensor>& t) { return sumAll(relu(t[0])); }},
    {"sigmoid", one23,
     [](const std::vector<Tensor>& t) { return sumAll(sigmoid(t[0])); }},
    {"tanh", one23,
     [](const std::vector<Tensor>& t) { return sumAll(tanhAct(t[0])); }},
    {"silu", one23,
     [](const std::vector<Tensor>& t) { return sumAll(silu(t[0])); }},
    {"gelu", one23,
     [](const std::vector<Tensor>& t) { return sumAll(gelu(t[0])); }},
    {"softplus", one23,
     [](const std::vector<Tensor>& t) { return sumAll(softplus(t[0])); }},
    {"meanAll", one23,
     [](const std::vector<Tensor>& t) {
         return meanAll(mul(t[0], t[0]));
     }},
    {"reshape", one23,
     [](const std::vector<Tensor>& t) {
         return sumAll(mul(reshape(t[0], {3, 2}), reshape(t[0], {3, 2})));
     }},
    {"transposeLast", one23,
     [](const std::vector<Tensor>& t) {
         Tensor tr = transposeLast(t[0]);
         return sumAll(mul(tr, tr));
     }},
    {"transposeLast3d",
     [](Rng& rng) -> std::vector<Tensor> {
         return {Tensor::randn({2, 2, 3}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         Tensor tr = transposeLast(t[0]);
         return sumAll(mul(tr, tr));
     }},
    {"concat_slice", two23,
     [](const std::vector<Tensor>& t) {
         Tensor c = concatLastDim({t[0], t[1]});
         Tensor s = sliceLastDim(c, 1, 4);
         return sumAll(mul(s, s));
     }},
    {"matmul2d",
     [](Rng& rng) -> std::vector<Tensor> {
         return {Tensor::randn({2, 3}, rng), Tensor::randn({3, 4}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         Tensor y = matmul(t[0], t[1]);
         return sumAll(mul(y, y));
     }},
    {"matmul3d",
     [](Rng& rng) -> std::vector<Tensor> {
         return {Tensor::randn({2, 2, 3}, rng),
                 Tensor::randn({3, 2}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         Tensor y = matmul(t[0], t[1]);
         return sumAll(mul(y, y));
     }},
    {"bmm",
     [](Rng& rng) -> std::vector<Tensor> {
         return {Tensor::randn({2, 2, 3}, rng),
                 Tensor::randn({2, 3, 2}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         Tensor y = bmm(t[0], t[1]);
         return sumAll(mul(y, y));
     }},
    {"linearOp",
     [](Rng& rng) -> std::vector<Tensor> {
         return {Tensor::randn({2, 3}, rng), Tensor::randn({4, 3}, rng),
                 Tensor::randn({4}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         Tensor y = linearOp(t[0], t[1], t[2]);
         return sumAll(mul(y, y));
     }},
    {"linearOp3d",
     [](Rng& rng) -> std::vector<Tensor> {
         return {Tensor::randn({2, 2, 3}, rng),
                 Tensor::randn({4, 3}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         Tensor y = linearOp(t[0], t[1], Tensor());
         return sumAll(mul(y, y));
     }},
    {"addBias",
     [](Rng& rng) -> std::vector<Tensor> {
         return {Tensor::randn({2, 3}, rng), Tensor::randn({3}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         Tensor y = addBias(t[0], t[1]);
         return sumAll(mul(y, y));
     }},
    {"mulLastDim",
     [](Rng& rng) -> std::vector<Tensor> {
         return {Tensor::randn({2, 3}, rng), Tensor::randn({3}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         return sumAll(mulLastDim(t[0], t[1]));
     }},
    {"scaleRows",
     [](Rng& rng) -> std::vector<Tensor> {
         return {Tensor::randn({3, 2}, rng), Tensor::randn({3}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         return sumAll(scaleRows(t[0], t[1]));
     }},
    {"rmsNorm",
     [](Rng& rng) -> std::vector<Tensor> {
         return {Tensor::randn({2, 4}, rng), Tensor::randn({4}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         Tensor y = rmsNorm(t[0], t[1]);
         return sumAll(mul(y, y));
     }},
    {"softmax", one23,
     [](const std::vector<Tensor>& t) {
         Tensor y = softmaxLastDim(t[0]);
         return sumAll(mul(y, y));
     }},
    {"logSoftmax", one23,
     [](const std::vector<Tensor>& t) {
         Tensor y = logSoftmaxLastDim(t[0]);
         return sumAll(mul(y, y));
     }},
    {"normalizeLastDim",
     [](Rng& rng) -> std::vector<Tensor> {
         // Positive entries, as the MoE gate path guarantees.
         Tensor x = Tensor::randn({3, 4}, rng);
         for (auto& v : x.data())
             v = std::abs(v) + 0.5;
         return {x};
     },
     [](const std::vector<Tensor>& t) {
         Tensor y = normalizeLastDim(t[0]);
         return sumAll(mul(y, y));
     }},
    {"crossEntropy",
     [](Rng& rng) -> std::vector<Tensor> {
         return {Tensor::randn({3, 5}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         return crossEntropy(t[0], {1, 4, -1}, -1);
     }},
    {"embedding",
     [](Rng& rng) -> std::vector<Tensor> {
         return {Tensor::randn({5, 3}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         Tensor y = embedding(t[0], {1, 1, 4, 0}, {4});
         return sumAll(mul(y, y));
     }},
    {"causalMask_attention",
     [](Rng& rng) -> std::vector<Tensor> {
         return {Tensor::randn({2, 3, 3}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         Tensor y = softmaxLastDim(causalMask(t[0]));
         return sumAll(mul(y, y));
     }},
    {"gather_scatter",
     [](Rng& rng) -> std::vector<Tensor> {
         return {Tensor::randn({4, 3}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         Tensor g = gatherRows(t[0], {3, 1, 1});
         Tensor s = scatterAddRows(g, {0, 2, 2}, 4);
         return sumAll(mul(s, s));
     }},
    {"gatherLastDim",
     [](Rng& rng) -> std::vector<Tensor> {
         return {Tensor::randn({2, 4}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         Tensor g = gatherLastDim(t[0], {0, 2, 3, 1}, 2);
         return sumAll(mul(g, g));
     }},
    {"splitMergeHeads",
     [](Rng& rng) -> std::vector<Tensor> {
         return {Tensor::randn({2, 3, 4}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         Tensor s = splitHeads(t[0], 2);
         Tensor m = mergeHeads(s, 2);
         return sumAll(mul(m, m));
     }},
    {"conv1d",
     [](Rng& rng) -> std::vector<Tensor> {
         return {Tensor::randn({2, 5, 3}, rng),
                 Tensor::randn({2, 3}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         Tensor y = conv1dDepthwiseCausal(t[0], t[1]);
         return sumAll(mul(y, y));
     }},
    {"selectiveScan",
     [](Rng& rng) -> std::vector<Tensor> {
         // Decay in (0, 1) as the Mamba layer produces.
         Tensor a = Tensor::randn({2, 4, 3}, rng);
         for (auto& v : a.data())
             v = 0.5 + 0.4 * std::tanh(v);
         return {a, Tensor::randn({2, 4, 3}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         Tensor h = selectiveScan(t[0], t[1]);
         return sumAll(mul(h, h));
     }},
    {"full_attention_block",
     [](Rng& rng) -> std::vector<Tensor> {
         // q, k, v as separate leaves through a full attention pattern.
         return {Tensor::randn({2, 3, 4}, rng),
                 Tensor::randn({2, 3, 4}, rng),
                 Tensor::randn({2, 3, 4}, rng)};
     },
     [](const std::vector<Tensor>& t) {
         Tensor scores = scale(bmm(t[0], transposeLast(t[1])), 0.5);
         Tensor probs = softmaxLastDim(causalMask(scores));
         Tensor ctx = bmm(probs, t[2]);
         return sumAll(mul(ctx, ctx));
     }},
};

INSTANTIATE_TEST_SUITE_P(AllOps, GradCheckSuite,
                         ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<GradCase>& info) {
                             return info.param.name;
                         });

}  // namespace
}  // namespace ftsim
