/**
 * @file
 * Unit tests for the Tensor container and autograd bookkeeping.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace ftsim {
namespace {

TEST(Tensor, ZerosShapeAndValues)
{
    Tensor t = Tensor::zeros({2, 3});
    EXPECT_EQ(t.dim(), 2u);
    EXPECT_EQ(t.size(0), 2u);
    EXPECT_EQ(t.size(1), 3u);
    EXPECT_EQ(t.numel(), 6u);
    for (Scalar v : t.data())
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Tensor, FromVectorChecksSize)
{
    EXPECT_THROW(Tensor::fromVector({2, 2}, {1.0, 2.0}), FatalError);
    Tensor t = Tensor::fromVector({2, 2}, {1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(t.at({1, 0}), 3.0);
    EXPECT_DOUBLE_EQ(t.at({1, 1}), 4.0);
}

TEST(Tensor, ScalarItem)
{
    Tensor s = Tensor::scalar(7.5);
    EXPECT_EQ(s.dim(), 0u);
    EXPECT_EQ(s.numel(), 1u);
    EXPECT_DOUBLE_EQ(s.item(), 7.5);
    Tensor t = Tensor::zeros({2});
    EXPECT_THROW(t.item(), FatalError);
}

TEST(Tensor, UndefinedAccessIsFatal)
{
    Tensor t;
    EXPECT_FALSE(t.defined());
    EXPECT_THROW(t.shape(), FatalError);
    EXPECT_THROW(t.data(), FatalError);
}

TEST(Tensor, RandnIsDeterministicPerSeed)
{
    Rng r1(5);
    Rng r2(5);
    Tensor a = Tensor::randn({4, 4}, r1);
    Tensor b = Tensor::randn({4, 4}, r2);
    EXPECT_EQ(a.data(), b.data());
}

TEST(Tensor, DetachSharesNothing)
{
    Tensor a = Tensor::fromVector({2}, {1.0, 2.0}, true);
    Tensor d = a.detach();
    EXPECT_FALSE(d.requiresGrad());
    d.data()[0] = 99.0;
    EXPECT_DOUBLE_EQ(a.data()[0], 1.0);
}

TEST(Tensor, BackwardRequiresScalar)
{
    Tensor a = Tensor::fromVector({2}, {1.0, 2.0}, true);
    Tensor y = scale(a, 2.0);
    EXPECT_THROW(y.backward(), FatalError);
}

TEST(Tensor, BackwardAccumulatesIntoLeaves)
{
    Tensor a = Tensor::fromVector({3}, {1.0, 2.0, 3.0}, true);
    Tensor loss = sumAll(scale(a, 2.0));
    loss.backward();
    ASSERT_TRUE(a.hasGrad());
    for (Scalar g : a.grad())
        EXPECT_DOUBLE_EQ(g, 2.0);
}

TEST(Tensor, FanOutGradientsAdd)
{
    // y = a + a -> dy/da = 2.
    Tensor a = Tensor::fromVector({2}, {1.0, 2.0}, true);
    Tensor loss = sumAll(add(a, a));
    loss.backward();
    for (Scalar g : a.grad())
        EXPECT_DOUBLE_EQ(g, 2.0);
}

TEST(Tensor, ZeroGradClears)
{
    Tensor a = Tensor::fromVector({2}, {1.0, 2.0}, true);
    sumAll(a).backward();
    EXPECT_DOUBLE_EQ(a.grad()[0], 1.0);
    a.zeroGrad();
    EXPECT_DOUBLE_EQ(a.grad()[0], 0.0);
}

TEST(Tensor, SecondBackwardAccumulates)
{
    Tensor a = Tensor::fromVector({2}, {1.0, 2.0}, true);
    sumAll(a).backward();
    sumAll(a).backward();
    EXPECT_DOUBLE_EQ(a.grad()[0], 2.0);  // 1 + 1 across two graphs.
}

TEST(GradModeTest, NoGradGuardStopsRecording)
{
    Tensor a = Tensor::fromVector({2}, {1.0, 2.0}, true);
    {
        NoGradGuard guard;
        Tensor y = scale(a, 3.0);
        EXPECT_FALSE(y.requiresGrad());
    }
    Tensor y = scale(a, 3.0);
    EXPECT_TRUE(y.requiresGrad());
}

TEST(GradModeTest, GuardNests)
{
    EXPECT_TRUE(GradMode::enabled());
    {
        NoGradGuard outer;
        EXPECT_FALSE(GradMode::enabled());
        {
            NoGradGuard inner;
            EXPECT_FALSE(GradMode::enabled());
        }
        EXPECT_FALSE(GradMode::enabled());
    }
    EXPECT_TRUE(GradMode::enabled());
}

TEST(Tensor, RequiresGradPropagates)
{
    Tensor a = Tensor::fromVector({2}, {1.0, 2.0}, true);
    Tensor b = Tensor::fromVector({2}, {3.0, 4.0}, false);
    Tensor y = add(a, b);
    EXPECT_TRUE(y.requiresGrad());
    Tensor z = add(b, b);
    EXPECT_FALSE(z.requiresGrad());
}

TEST(Tensor, FrozenParentGetsNoGrad)
{
    Tensor a = Tensor::fromVector({2}, {1.0, 2.0}, true);
    Tensor b = Tensor::fromVector({2}, {3.0, 4.0}, false);
    sumAll(mul(a, b)).backward();
    EXPECT_TRUE(a.hasGrad());
    EXPECT_FALSE(b.hasGrad());
    EXPECT_DOUBLE_EQ(a.grad()[0], 3.0);
}

TEST(Tensor, DeepChainBackward)
{
    // 200 chained ops: the iterative topo sort must not blow the stack.
    Tensor a = Tensor::scalar(1.0, true);
    Tensor y = a;
    for (int i = 0; i < 200; ++i)
        y = scale(y, 1.01);
    y.backward();
    EXPECT_NEAR(a.grad()[0], std::pow(1.01, 200), 1e-9);
}

TEST(ShapeUtil, NumelAndToString)
{
    EXPECT_EQ(shapeNumel({}), 1u);
    EXPECT_EQ(shapeNumel({2, 3, 4}), 24u);
    EXPECT_EQ(shapeToString({2, 3}), "[2, 3]");
    EXPECT_EQ(shapeToString({}), "[]");
}

}  // namespace
}  // namespace ftsim
