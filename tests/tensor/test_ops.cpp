/**
 * @file
 * Forward-value correctness tests for tensor ops.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace ftsim {
namespace {

TEST(Ops, AddSubMulDiv)
{
    Tensor a = Tensor::fromVector({2, 2}, {1.0, 2.0, 3.0, 4.0});
    Tensor b = Tensor::fromVector({2, 2}, {4.0, 3.0, 2.0, 1.0});
    EXPECT_DOUBLE_EQ(add(a, b).data()[0], 5.0);
    EXPECT_DOUBLE_EQ(sub(a, b).data()[0], -3.0);
    EXPECT_DOUBLE_EQ(mul(a, b).data()[1], 6.0);
    EXPECT_DOUBLE_EQ(div(a, b).data()[3], 4.0);
}

TEST(Ops, ShapeMismatchIsFatal)
{
    Tensor a = Tensor::zeros({2, 2});
    Tensor b = Tensor::zeros({2, 3});
    EXPECT_THROW(add(a, b), FatalError);
    EXPECT_THROW(mul(a, b), FatalError);
}

TEST(Ops, ActivationValues)
{
    Tensor x = Tensor::fromVector({3}, {-1.0, 0.0, 2.0});
    EXPECT_DOUBLE_EQ(relu(x).data()[0], 0.0);
    EXPECT_DOUBLE_EQ(relu(x).data()[2], 2.0);
    EXPECT_NEAR(sigmoid(x).data()[1], 0.5, 1e-12);
    EXPECT_NEAR(tanhAct(x).data()[2], std::tanh(2.0), 1e-12);
    // silu(0) = 0, silu(2) = 2 * sigmoid(2).
    EXPECT_NEAR(silu(x).data()[1], 0.0, 1e-12);
    EXPECT_NEAR(silu(x).data()[2], 2.0 / (1.0 + std::exp(-2.0)), 1e-12);
    // gelu(0) = 0; gelu is ~x for large positive x.
    EXPECT_NEAR(gelu(x).data()[1], 0.0, 1e-12);
    EXPECT_NEAR(gelu(Tensor::fromVector({1}, {10.0})).data()[0], 10.0,
                1e-6);
    // softplus(0) = ln 2.
    EXPECT_NEAR(softplus(x).data()[1], std::log(2.0), 1e-12);
}

TEST(Ops, SoftplusIsOverflowSafe)
{
    Tensor x = Tensor::fromVector({2}, {800.0, -800.0});
    Tensor y = softplus(x);
    EXPECT_NEAR(y.data()[0], 800.0, 1e-9);
    EXPECT_NEAR(y.data()[1], 0.0, 1e-9);
}

TEST(Ops, SumAndMean)
{
    Tensor x = Tensor::fromVector({4}, {1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(sumAll(x).item(), 10.0);
    EXPECT_DOUBLE_EQ(meanAll(x).item(), 2.5);
}

TEST(Ops, ReshapeAndTranspose)
{
    Tensor x = Tensor::fromVector({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor r = reshape(x, {3, 2});
    EXPECT_DOUBLE_EQ(r.at({2, 1}), 6.0);
    EXPECT_THROW(reshape(x, {4, 2}), FatalError);

    Tensor t = transposeLast(x);
    EXPECT_EQ(t.shape(), Shape({3, 2}));
    EXPECT_DOUBLE_EQ(t.at({0, 1}), 4.0);
    EXPECT_DOUBLE_EQ(t.at({2, 0}), 3.0);
}

TEST(Ops, TransposeBatched)
{
    Tensor x = Tensor::fromVector({2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
    Tensor t = transposeLast(x);
    EXPECT_DOUBLE_EQ(t.at({0, 0, 1}), 3.0);
    EXPECT_DOUBLE_EQ(t.at({1, 1, 0}), 6.0);
}

TEST(Ops, ConcatAndSlice)
{
    Tensor a = Tensor::fromVector({2, 2}, {1, 2, 3, 4});
    Tensor b = Tensor::fromVector({2, 1}, {9, 8});
    Tensor c = concatLastDim({a, b});
    EXPECT_EQ(c.shape(), Shape({2, 3}));
    EXPECT_DOUBLE_EQ(c.at({0, 2}), 9.0);
    EXPECT_DOUBLE_EQ(c.at({1, 2}), 8.0);

    Tensor s = sliceLastDim(c, 1, 2);
    EXPECT_EQ(s.shape(), Shape({2, 2}));
    EXPECT_DOUBLE_EQ(s.at({0, 0}), 2.0);
    EXPECT_DOUBLE_EQ(s.at({0, 1}), 9.0);
    EXPECT_THROW(sliceLastDim(c, 2, 2), FatalError);
}

TEST(Ops, MatmulValues)
{
    Tensor a = Tensor::fromVector({2, 2}, {1, 2, 3, 4});
    Tensor b = Tensor::fromVector({2, 2}, {5, 6, 7, 8});
    Tensor c = matmul(a, b);
    EXPECT_DOUBLE_EQ(c.at({0, 0}), 19.0);
    EXPECT_DOUBLE_EQ(c.at({0, 1}), 22.0);
    EXPECT_DOUBLE_EQ(c.at({1, 0}), 43.0);
    EXPECT_DOUBLE_EQ(c.at({1, 1}), 50.0);
}

TEST(Ops, MatmulBatchedLeft)
{
    Tensor a = Tensor::fromVector({2, 1, 2}, {1, 2, 3, 4});
    Tensor b = Tensor::fromVector({2, 1}, {10, 1});
    Tensor c = matmul(a, b);
    EXPECT_EQ(c.shape(), Shape({2, 1, 1}));
    EXPECT_DOUBLE_EQ(c.data()[0], 12.0);
    EXPECT_DOUBLE_EQ(c.data()[1], 34.0);
}

TEST(Ops, BmmValues)
{
    Tensor a = Tensor::fromVector({2, 1, 2}, {1, 2, 3, 4});
    Tensor b = Tensor::fromVector({2, 2, 1}, {1, 1, 2, 2});
    Tensor c = bmm(a, b);
    EXPECT_EQ(c.shape(), Shape({2, 1, 1}));
    EXPECT_DOUBLE_EQ(c.data()[0], 3.0);
    EXPECT_DOUBLE_EQ(c.data()[1], 14.0);
}

TEST(Ops, LinearOpMatchesManual)
{
    // y = x W^T + b with W [2, 3].
    Tensor x = Tensor::fromVector({1, 3}, {1, 2, 3});
    Tensor w = Tensor::fromVector({2, 3}, {1, 0, 0, 0, 1, 1});
    Tensor b = Tensor::fromVector({2}, {10, 20});
    Tensor y = linearOp(x, w, b);
    EXPECT_DOUBLE_EQ(y.at({0, 0}), 11.0);
    EXPECT_DOUBLE_EQ(y.at({0, 1}), 25.0);
}

TEST(Ops, LinearOpNoBias)
{
    Tensor x = Tensor::fromVector({1, 2}, {3, 4});
    Tensor w = Tensor::fromVector({1, 2}, {1, 1});
    EXPECT_DOUBLE_EQ(linearOp(x, w, Tensor()).data()[0], 7.0);
}

TEST(Ops, SoftmaxRowsSumToOne)
{
    Rng rng(3);
    Tensor x = Tensor::randn({4, 8}, rng);
    Tensor y = softmaxLastDim(x);
    for (std::size_t r = 0; r < 4; ++r) {
        Scalar sum = 0.0;
        for (std::size_t c = 0; c < 8; ++c)
            sum += y.at({r, c});
        EXPECT_NEAR(sum, 1.0, 1e-12);
    }
}

TEST(Ops, SoftmaxIsShiftInvariantAndStable)
{
    Tensor x = Tensor::fromVector({1, 3}, {1000.0, 1001.0, 1002.0});
    Tensor y = softmaxLastDim(x);
    EXPECT_TRUE(std::isfinite(y.data()[0]));
    Tensor x2 = Tensor::fromVector({1, 3}, {0.0, 1.0, 2.0});
    Tensor y2 = softmaxLastDim(x2);
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(y.data()[i], y2.data()[i], 1e-12);
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax)
{
    Rng rng(5);
    Tensor x = Tensor::randn({3, 5}, rng);
    Tensor ls = logSoftmaxLastDim(x);
    Tensor s = softmaxLastDim(x);
    for (std::size_t i = 0; i < x.numel(); ++i)
        EXPECT_NEAR(ls.data()[i], std::log(s.data()[i]), 1e-9);
}

TEST(Ops, CrossEntropyKnownValue)
{
    // Uniform logits over 4 classes -> loss = ln 4.
    Tensor logits = Tensor::zeros({2, 4});
    Tensor loss = crossEntropy(logits, {0, 3});
    EXPECT_NEAR(loss.item(), std::log(4.0), 1e-12);
}

TEST(Ops, CrossEntropyIgnoreIndex)
{
    Tensor logits = Tensor::fromVector({2, 2}, {100.0, 0.0, 0.0, 100.0});
    // Second row ignored: loss is only the (correct) first row, ~0.
    Tensor loss = crossEntropy(logits, {0, -1}, -1);
    EXPECT_NEAR(loss.item(), 0.0, 1e-9);
    EXPECT_THROW(crossEntropy(logits, {-1, -1}, -1), FatalError);
}

TEST(Ops, EmbeddingLooksUpRows)
{
    Tensor table = Tensor::fromVector({3, 2}, {0, 0, 1, 1, 2, 2});
    Tensor out = embedding(table, {2, 0, 1}, {3});
    EXPECT_EQ(out.shape(), Shape({3, 2}));
    EXPECT_DOUBLE_EQ(out.at({0, 0}), 2.0);
    EXPECT_DOUBLE_EQ(out.at({1, 0}), 0.0);
    EXPECT_THROW(embedding(table, {3}, {1}), FatalError);
}

TEST(Ops, CausalMaskZeroesUpperTriangleAfterSoftmax)
{
    Tensor scores = Tensor::zeros({1, 3, 3});
    Tensor probs = softmaxLastDim(causalMask(scores));
    // Row 0 attends only to position 0.
    EXPECT_NEAR(probs.at({0, 0, 0}), 1.0, 1e-9);
    EXPECT_NEAR(probs.at({0, 0, 2}), 0.0, 1e-9);
    // Row 2 attends uniformly to 0..2.
    EXPECT_NEAR(probs.at({0, 2, 1}), 1.0 / 3.0, 1e-9);
}

TEST(Ops, GatherScatterRowsRoundTrip)
{
    Tensor x = Tensor::fromVector({3, 2}, {1, 2, 3, 4, 5, 6});
    Tensor g = gatherRows(x, {2, 0});
    EXPECT_DOUBLE_EQ(g.at({0, 0}), 5.0);
    EXPECT_DOUBLE_EQ(g.at({1, 1}), 2.0);

    Tensor s = scatterAddRows(g, {2, 0}, 3);
    EXPECT_DOUBLE_EQ(s.at({2, 0}), 5.0);
    EXPECT_DOUBLE_EQ(s.at({0, 1}), 2.0);
    EXPECT_DOUBLE_EQ(s.at({1, 0}), 0.0);
}

TEST(Ops, ScatterAddAccumulatesDuplicates)
{
    Tensor x = Tensor::fromVector({2, 1}, {3.0, 4.0});
    Tensor s = scatterAddRows(x, {0, 0}, 2);
    EXPECT_DOUBLE_EQ(s.at({0, 0}), 7.0);
}

TEST(Ops, TopkSelectsLargestDescending)
{
    Tensor x = Tensor::fromVector({1, 4}, {0.1, 0.9, 0.5, 0.3});
    TopKResult tk = topkLastDim(x, 2);
    EXPECT_EQ(tk.indices[0], 1);
    EXPECT_EQ(tk.indices[1], 2);
    EXPECT_DOUBLE_EQ(tk.values[0], 0.9);
}

TEST(Ops, TopkTieBreaksByIndex)
{
    Tensor x = Tensor::fromVector({1, 3}, {0.5, 0.5, 0.5});
    TopKResult tk = topkLastDim(x, 2);
    EXPECT_EQ(tk.indices[0], 0);
    EXPECT_EQ(tk.indices[1], 1);
}

TEST(Ops, GatherLastDim)
{
    Tensor x = Tensor::fromVector({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor g = gatherLastDim(x, {2, 0, 1, 1}, 2);
    EXPECT_DOUBLE_EQ(g.at({0, 0}), 3.0);
    EXPECT_DOUBLE_EQ(g.at({0, 1}), 1.0);
    EXPECT_DOUBLE_EQ(g.at({1, 0}), 5.0);
}

TEST(Ops, NormalizeLastDim)
{
    Tensor x = Tensor::fromVector({1, 2}, {1.0, 3.0});
    Tensor y = normalizeLastDim(x);
    EXPECT_DOUBLE_EQ(y.data()[0], 0.25);
    EXPECT_DOUBLE_EQ(y.data()[1], 0.75);
}

TEST(Ops, RmsNormUnitGain)
{
    Tensor x = Tensor::fromVector({1, 2}, {3.0, 4.0});
    Tensor w = Tensor::full({2}, 1.0);
    Tensor y = rmsNorm(x, w, 0.0);
    // rms = sqrt((9+16)/2); y = x / rms.
    const double rms = std::sqrt(12.5);
    EXPECT_NEAR(y.data()[0], 3.0 / rms, 1e-12);
    EXPECT_NEAR(y.data()[1], 4.0 / rms, 1e-12);
}

TEST(Ops, SplitMergeHeadsRoundTrip)
{
    Rng rng(7);
    Tensor x = Tensor::randn({2, 3, 8}, rng);
    Tensor split = splitHeads(x, 4);
    EXPECT_EQ(split.shape(), Shape({8, 3, 2}));
    Tensor merged = mergeHeads(split, 4);
    EXPECT_EQ(merged.shape(), x.shape());
    for (std::size_t i = 0; i < x.numel(); ++i)
        EXPECT_DOUBLE_EQ(merged.data()[i], x.data()[i]);
}

TEST(Ops, ScaleRowsAndMulLastDim)
{
    Tensor x = Tensor::fromVector({2, 2}, {1, 2, 3, 4});
    Tensor w = Tensor::fromVector({2}, {10.0, 0.5});
    Tensor sr = scaleRows(x, w);
    EXPECT_DOUBLE_EQ(sr.at({0, 1}), 20.0);
    EXPECT_DOUBLE_EQ(sr.at({1, 0}), 1.5);
    Tensor ml = mulLastDim(x, w);
    EXPECT_DOUBLE_EQ(ml.at({0, 1}), 1.0);
    EXPECT_DOUBLE_EQ(ml.at({1, 0}), 30.0);
}

TEST(Ops, Conv1dCausalAlignment)
{
    // Identity kernel (only the last tap is 1) must reproduce the input.
    Tensor x = Tensor::fromVector({1, 3, 1}, {1.0, 2.0, 3.0});
    Tensor w = Tensor::fromVector({2, 1}, {0.0, 1.0});
    Tensor y = conv1dDepthwiseCausal(x, w);
    EXPECT_DOUBLE_EQ(y.data()[0], 1.0);
    EXPECT_DOUBLE_EQ(y.data()[1], 2.0);
    EXPECT_DOUBLE_EQ(y.data()[2], 3.0);
}

TEST(Ops, Conv1dUsesPastOnly)
{
    // Kernel [1, 0]: output t = input t-1 (causal shift).
    Tensor x = Tensor::fromVector({1, 3, 1}, {1.0, 2.0, 3.0});
    Tensor w = Tensor::fromVector({2, 1}, {1.0, 0.0});
    Tensor y = conv1dDepthwiseCausal(x, w);
    EXPECT_DOUBLE_EQ(y.data()[0], 0.0);  // Zero left padding.
    EXPECT_DOUBLE_EQ(y.data()[1], 1.0);
    EXPECT_DOUBLE_EQ(y.data()[2], 2.0);
}

TEST(Ops, SelectiveScanRecurrence)
{
    // h_t = a h_{t-1} + x_t with constant a = 0.5, x = 1.
    Tensor a = Tensor::full({1, 3, 1}, 0.5);
    Tensor x = Tensor::full({1, 3, 1}, 1.0);
    Tensor h = selectiveScan(a, x);
    EXPECT_DOUBLE_EQ(h.data()[0], 1.0);
    EXPECT_DOUBLE_EQ(h.data()[1], 1.5);
    EXPECT_DOUBLE_EQ(h.data()[2], 1.75);
}

TEST(Ops, SelectiveScanIndependentChannels)
{
    Tensor a = Tensor::fromVector({1, 2, 2}, {0.0, 1.0, 0.0, 1.0});
    Tensor x = Tensor::fromVector({1, 2, 2}, {1.0, 1.0, 2.0, 2.0});
    Tensor h = selectiveScan(a, x);
    // Channel 0 (a=0): h = x. Channel 1 (a=1): running sum.
    EXPECT_DOUBLE_EQ(h.at({0, 1, 0}), 2.0);
    EXPECT_DOUBLE_EQ(h.at({0, 1, 1}), 3.0);
}

TEST(Ops, ArgmaxLastDim)
{
    Tensor x = Tensor::fromVector({2, 3}, {1, 5, 2, 9, 0, 3});
    auto idx = argmaxLastDim(x);
    EXPECT_EQ(idx[0], 1);
    EXPECT_EQ(idx[1], 0);
}

TEST(Ops, DropoutTrainBehaviour)
{
    Rng rng(11);
    Tensor x = Tensor::full({1000}, 1.0);
    Tensor y = dropout(x, 0.5, rng);
    std::size_t zeros = 0;
    for (Scalar v : y.data()) {
        EXPECT_TRUE(v == 0.0 || std::abs(v - 2.0) < 1e-12);
        zeros += v == 0.0 ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.5, 0.06);
    EXPECT_THROW(dropout(x, 1.0, rng), FatalError);
}

}  // namespace
}  // namespace ftsim
