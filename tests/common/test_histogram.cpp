/**
 * @file
 * Unit tests for the histogram (common/histogram).
 */

#include <gtest/gtest.h>

#include "common/histogram.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"

namespace ftsim {
namespace {

TEST(Histogram, BinsAreCorrect)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.numBins(), 5u);
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHi(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binCenter(2), 5.0);
}

TEST(Histogram, CountsSamplesIntoRightBins)
{
    Histogram h(0.0, 10.0, 5);
    h.add(1.0);   // bin 0
    h.add(3.5);   // bin 1
    h.add(9.99);  // bin 4
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
}

TEST(Histogram, BoundaryGoesToUpperBin)
{
    Histogram h(0.0, 10.0, 5);
    h.add(2.0);  // Exactly on the edge between bins 0 and 1.
    EXPECT_EQ(h.binCount(1), 1u);
}

TEST(Histogram, ModeBinTracksPeak)
{
    Histogram h(0.0, 10.0, 10);
    Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        h.add(rng.normal(5.0, 0.5));
    // The peak must be at/near the center bins.
    EXPECT_GE(h.modeBin(), 3u);
    EXPECT_LE(h.modeBin(), 6u);
}

TEST(Histogram, RenderContainsAllBins)
{
    Histogram h(0.0, 4.0, 4);
    h.add(0.5);
    h.add(0.6);
    h.add(3.0);
    std::string render = h.render(20);
    EXPECT_EQ(std::count(render.begin(), render.end(), '\n'), 4);
    EXPECT_NE(render.find('#'), std::string::npos);
}

TEST(Histogram, InvalidConstructionIsFatal)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
}

TEST(Histogram, AddAll)
{
    Histogram h(0.0, 10.0, 2);
    h.addAll({1.0, 2.0, 7.0});
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
}

}  // namespace
}  // namespace ftsim
