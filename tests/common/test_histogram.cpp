/**
 * @file
 * Unit tests for the histogram (common/histogram).
 */

#include <gtest/gtest.h>

#include "common/histogram.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"

namespace ftsim {
namespace {

TEST(Histogram, BinsAreCorrect)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_EQ(h.numBins(), 5u);
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHi(0), 2.0);
    EXPECT_DOUBLE_EQ(h.binCenter(2), 5.0);
}

TEST(Histogram, CountsSamplesIntoRightBins)
{
    Histogram h(0.0, 10.0, 5);
    h.add(1.0);   // bin 0
    h.add(3.5);   // bin 1
    h.add(9.99);  // bin 4
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
}

TEST(Histogram, BoundaryGoesToUpperBin)
{
    Histogram h(0.0, 10.0, 5);
    h.add(2.0);  // Exactly on the edge between bins 0 and 1.
    EXPECT_EQ(h.binCount(1), 1u);
}

TEST(Histogram, ModeBinTracksPeak)
{
    Histogram h(0.0, 10.0, 10);
    Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        h.add(rng.normal(5.0, 0.5));
    // The peak must be at/near the center bins.
    EXPECT_GE(h.modeBin(), 3u);
    EXPECT_LE(h.modeBin(), 6u);
}

TEST(Histogram, RenderContainsAllBins)
{
    Histogram h(0.0, 4.0, 4);
    h.add(0.5);
    h.add(0.6);
    h.add(3.0);
    std::string render = h.render(20);
    EXPECT_EQ(std::count(render.begin(), render.end(), '\n'), 4);
    EXPECT_NE(render.find('#'), std::string::npos);
}

TEST(Histogram, InvalidConstructionIsFatal)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), FatalError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), FatalError);
}

TEST(Histogram, AddAll)
{
    Histogram h(0.0, 10.0, 2);
    h.addAll({1.0, 2.0, 7.0});
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
}

TEST(Histogram, QuantileInterpolatesWithinBins)
{
    // Uniform 1..100 into unit bins: the q-quantile sits at ~100q,
    // within one bin width of the exact order statistic.
    Histogram h(0.0, 100.0, 100);
    for (int i = 1; i <= 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
    EXPECT_NEAR(h.quantile(0.0), 1.0, 1.0);
    EXPECT_NEAR(h.quantile(1.0), 100.0, 1.0);
    // Monotone in q.
    EXPECT_LE(h.quantile(0.25), h.quantile(0.75));
}

TEST(Histogram, QuantileEdgeCases)
{
    Histogram empty(0.0, 10.0, 4);
    EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

    // A single sample lands every quantile inside its bin.
    Histogram one(0.0, 10.0, 4);
    one.add(6.0);
    EXPECT_GE(one.quantile(0.5), 5.0);
    EXPECT_LE(one.quantile(0.5), 7.5);

    EXPECT_THROW(one.quantile(-0.1), FatalError);
    EXPECT_THROW(one.quantile(1.1), FatalError);
}

TEST(Histogram, QuantileOfEmptyHistogramIsZeroForEveryQ)
{
    Histogram empty(5.0, 10.0, 4);  // lo > 0: the 0 is a sentinel,
    for (double q : {0.0, 0.25, 0.5, 1.0})  // not a bin edge.
        EXPECT_DOUBLE_EQ(empty.quantile(q), 0.0);
}

TEST(Histogram, QuantileExtremesSpanTheSingleSampleBin)
{
    // One sample in bin [5, 7.5): q=0 pins the bin's lower edge,
    // q=1 its upper — not the neighbouring bins', and in particular
    // not off by one bin in either direction.
    Histogram one(0.0, 10.0, 4);
    one.add(6.0);
    EXPECT_DOUBLE_EQ(one.quantile(0.0), 5.0);
    EXPECT_DOUBLE_EQ(one.quantile(1.0), 7.5);
    EXPECT_DOUBLE_EQ(one.quantile(0.5), 6.25);  // Interpolated middle.
}

TEST(Histogram, QuantileExtremesSkipEmptyEdgeBins)
{
    // Leading and trailing empty bins must not drag q=0 toward lo or
    // q=1 toward hi: the estimate stays on the occupied bins.
    Histogram h(0.0, 10.0, 5);
    h.add(4.1);  // bin 2 = [4, 6)
    h.add(4.9);
    h.add(5.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 4.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 6.0);
}

TEST(Histogram, QuantileIsMonotoneAndBoundedOnClampedData)
{
    // Out-of-range samples clamp into the edge bins; quantiles must
    // stay inside [lo, hi] and monotone in q regardless.
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(3.0);
    h.add(7.0);
    h.add(1000.0);
    double prev = -1.0;
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
        const double v = h.quantile(q);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 10.0);
        EXPECT_GE(v, prev);
        prev = v;
    }
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);   // Underflow bin's edge.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);  // Overflow bin's edge.
}

TEST(Histogram, QuantileTargetOnCumulativeBoundaryIsTheSharedEdge)
{
    // Two samples in adjacent bins: the median rank lands exactly on
    // the boundary between them, which both bins agree is 2.0 — the
    // classic off-by-one spot for histogram quantiles.
    Histogram h(0.0, 4.0, 2);
    h.add(1.0);
    h.add(3.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.75), 3.0);
}

}  // namespace
}  // namespace ftsim
