/**
 * @file
 * Tests for the inverse-normal CDF and the padded-batch length model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "common/math_util.hpp"

namespace ftsim {
namespace {

TEST(NormalQuantileTest, KnownValues)
{
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(normalQuantile(0.8413447), 1.0, 1e-4);
    EXPECT_NEAR(normalQuantile(0.9772499), 2.0, 1e-4);
    EXPECT_NEAR(normalQuantile(0.1586553), -1.0, 1e-4);
    EXPECT_NEAR(normalQuantile(0.975), 1.959964, 1e-5);
}

TEST(NormalQuantileTest, TailsAreFiniteAndMonotonic)
{
    double prev = -1e300;
    for (double p : {1e-6, 1e-3, 0.1, 0.5, 0.9, 0.999, 1.0 - 1e-6}) {
        double z = normalQuantile(p);
        EXPECT_TRUE(std::isfinite(z));
        EXPECT_GT(z, prev);
        prev = z;
    }
}

TEST(NormalQuantileTest, OutOfRangeIsFatal)
{
    EXPECT_THROW(normalQuantile(0.0), FatalError);
    EXPECT_THROW(normalQuantile(1.0), FatalError);
    EXPECT_THROW(normalQuantile(-0.5), FatalError);
}

TEST(BatchMaxFactorTest, SingleQueryIsUnamplified)
{
    EXPECT_DOUBLE_EQ(expectedBatchMaxFactor(1, 0.45), 1.0);
    EXPECT_DOUBLE_EQ(expectedBatchMaxFactor(8, 0.0), 1.0);
}

TEST(BatchMaxFactorTest, GrowsWithBatchAndSigma)
{
    double prev = 1.0;
    for (std::size_t b : {2u, 4u, 8u, 16u, 32u}) {
        double f = expectedBatchMaxFactor(b, 0.45);
        EXPECT_GT(f, prev);
        prev = f;
    }
    EXPECT_GT(expectedBatchMaxFactor(8, 0.45),
              expectedBatchMaxFactor(8, 0.20));
}

TEST(BatchMaxFactorTest, MatchesOrderStatisticsExpectation)
{
    // For sigma 0.45 and b = 8, Blom's z ~ 1.43 -> factor ~ e^0.64.
    EXPECT_NEAR(expectedBatchMaxFactor(8, 0.45), std::exp(0.45 * 1.43),
                0.02);
}

TEST(BatchMaxFactorTest, InvalidInputsAreFatal)
{
    EXPECT_THROW(expectedBatchMaxFactor(0, 0.45), FatalError);
    EXPECT_THROW(expectedBatchMaxFactor(4, -0.1), FatalError);
}

}  // namespace
}  // namespace ftsim
