/**
 * @file
 * Unit tests for the bounded LRU cache (common/lru_cache) — recency
 * order, capacity-1 behavior, eviction hand-back, and the peak-size
 * audit counter the serve bench asserts against.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/lru_cache.hpp"

namespace ftsim {
namespace {

TEST(LruCache, EvictsLeastRecentlyUsedFirst)
{
    LruCache<std::string, int> cache(2);
    EXPECT_TRUE(cache.put("a", 1).empty());
    EXPECT_TRUE(cache.put("b", 2).empty());

    auto evicted = cache.put("c", 3);  // "a" is oldest.
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].first, "a");
    EXPECT_EQ(evicted[0].second, 1);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.peek("a"), nullptr);
    ASSERT_NE(cache.peek("b"), nullptr);
    ASSERT_NE(cache.peek("c"), nullptr);
}

TEST(LruCache, GetRefreshesRecency)
{
    LruCache<std::string, int> cache(2);
    cache.put("a", 1);
    cache.put("b", 2);
    ASSERT_NE(cache.get("a"), nullptr);  // "a" becomes MRU.

    auto evicted = cache.put("c", 3);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].first, "b");
    EXPECT_NE(cache.peek("a"), nullptr);
}

TEST(LruCache, PeekDoesNotRefreshRecency)
{
    LruCache<std::string, int> cache(2);
    cache.put("a", 1);
    cache.put("b", 2);
    ASSERT_NE(cache.peek("a"), nullptr);  // No touch.

    auto evicted = cache.put("c", 3);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].first, "a");
}

TEST(LruCache, OverwriteTouchesInsteadOfEvicting)
{
    LruCache<std::string, int> cache(2);
    cache.put("a", 1);
    cache.put("b", 2);
    EXPECT_TRUE(cache.put("a", 10).empty());  // Overwrite, no evict.
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(*cache.peek("a"), 10);

    auto evicted = cache.put("c", 3);  // "a" was refreshed; "b" goes.
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0].first, "b");
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCache, CapacityOneHoldsExactlyTheLastEntry)
{
    LruCache<int, int> cache(1);
    for (int i = 0; i < 10; ++i) {
        auto evicted = cache.put(i, i * i);
        EXPECT_EQ(cache.size(), 1u);
        if (i > 0) {
            ASSERT_EQ(evicted.size(), 1u);
            EXPECT_EQ(evicted[0].first, i - 1);
        }
        ASSERT_NE(cache.get(i), nullptr);
        EXPECT_EQ(*cache.get(i), i * i);
    }
    EXPECT_EQ(cache.evictions(), 9u);
    EXPECT_EQ(cache.peakSize(), 1u);
}

TEST(LruCache, ZeroCapacityIsUnbounded)
{
    LruCache<int, int> cache(0);
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(cache.put(i, i).empty());
    EXPECT_EQ(cache.size(), 1000u);
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.peakSize(), 1000u);
}

TEST(LruCache, PeakSizeNeverExceedsCapacity)
{
    // The serve bench's capacity audit: however many distinct keys
    // stream through, the bound holds at every instant.
    LruCache<int, int> cache(4);
    for (int i = 0; i < 100; ++i) {
        cache.put(i, i);
        EXPECT_LE(cache.size(), 4u);
    }
    EXPECT_EQ(cache.peakSize(), 4u);
    EXPECT_EQ(cache.evictions(), 96u);
}

TEST(LruCache, EraseRemovesWithoutCountingEviction)
{
    LruCache<std::string, int> cache(4);
    cache.put("a", 1);
    EXPECT_TRUE(cache.erase("a"));
    EXPECT_FALSE(cache.erase("a"));
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.get("a"), nullptr);
}

TEST(LruCache, ForEachVisitsMostRecentFirst)
{
    LruCache<std::string, int> cache(3);
    cache.put("a", 1);
    cache.put("b", 2);
    cache.put("c", 3);
    cache.get("a");

    std::string order;
    cache.forEach([&order](const std::string& key, int) { order += key; });
    EXPECT_EQ(order, "acb");
}

TEST(LruCache, MoveOnlyValuesSurviveEviction)
{
    // The service caches shared_ptr/shared_future values; eviction
    // must hand the value back intact, not copy-destroy it.
    LruCache<int, std::unique_ptr<int>> cache(1);
    cache.put(1, std::make_unique<int>(11));
    auto evicted = cache.put(2, std::make_unique<int>(22));
    ASSERT_EQ(evicted.size(), 1u);
    ASSERT_NE(evicted[0].second, nullptr);
    EXPECT_EQ(*evicted[0].second, 11);
}

}  // namespace
}  // namespace ftsim
