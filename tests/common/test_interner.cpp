/**
 * @file
 * Tests for the string interner: id stability, dedup, and thread
 * safety under concurrent interning (the workload builder's plans for
 * different shapes may compile from different threads).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/interner.hpp"

namespace ftsim {
namespace {

TEST(StringInterner, SameSpellingSameId)
{
    StringInterner interner;
    const auto a = interner.intern("matmul(w1)");
    const auto b = interner.intern("matmul(w2)");
    const auto a2 = interner.intern("matmul(w1)");
    EXPECT_EQ(a, a2);
    EXPECT_NE(a, b);
    EXPECT_EQ(interner.size(), 2u);
}

TEST(StringInterner, NameRoundTrips)
{
    StringInterner interner;
    const auto id = interner.intern("attention(flash)");
    EXPECT_EQ(interner.name(id), "attention(flash)");
}

TEST(StringInterner, ReferencesStayValidWhileInterning)
{
    StringInterner interner;
    const auto first = interner.intern("first");
    const std::string& ref = interner.name(first);
    // Force growth well past any SSO/vector-reallocation boundary.
    for (int i = 0; i < 1000; ++i)
        interner.intern("kernel_" + std::to_string(i));
    EXPECT_EQ(ref, "first");
    EXPECT_EQ(interner.size(), 1001u);
}

TEST(StringInterner, ConcurrentInterningIsConsistent)
{
    StringInterner interner;
    constexpr int kThreads = 8;
    constexpr int kNames = 64;
    std::vector<std::vector<std::uint32_t>> ids(kThreads);
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([&interner, &ids, t] {
            for (int i = 0; i < kNames; ++i)
                ids[t].push_back(
                    interner.intern("name_" + std::to_string(i)));
        });
    for (auto& thread : pool)
        thread.join();

    // Every thread must have resolved each spelling to the same id.
    EXPECT_EQ(interner.size(), static_cast<std::size_t>(kNames));
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(ids[t], ids[0]);
    for (int i = 0; i < kNames; ++i)
        EXPECT_EQ(interner.name(ids[0][i]),
                  "name_" + std::to_string(i));
}

}  // namespace
}  // namespace ftsim
