/**
 * @file
 * Unit tests for the curve fitters (common/fit) — the machinery behind
 * the paper's Eq. 1 / Eq. 2 coefficient fits.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/fit.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"

namespace ftsim {
namespace {

TEST(SolveLinearSystem, Identity)
{
    auto x = solveLinearSystem({{1.0, 0.0}, {0.0, 1.0}}, {3.0, 4.0});
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 4.0, 1e-12);
}

TEST(SolveLinearSystem, RequiresPivoting)
{
    // Leading zero forces a row swap.
    auto x = solveLinearSystem({{0.0, 2.0}, {3.0, 1.0}}, {4.0, 5.0});
    EXPECT_NEAR(x[1], 2.0, 1e-12);
    EXPECT_NEAR(x[0], 1.0, 1e-12);
}

TEST(SolveLinearSystem, SingularIsFatal)
{
    EXPECT_THROW(
        solveLinearSystem({{1.0, 2.0}, {2.0, 4.0}}, {1.0, 2.0}),
        FatalError);
}

TEST(LinearLeastSquares, RecoversLine)
{
    // y = 2x + 3 with design rows (x, 1).
    std::vector<std::vector<double>> rows;
    std::vector<double> y;
    for (double x = 0.0; x < 10.0; x += 1.0) {
        rows.push_back({x, 1.0});
        y.push_back(2.0 * x + 3.0);
    }
    auto beta = linearLeastSquares(rows, y);
    EXPECT_NEAR(beta[0], 2.0, 1e-10);
    EXPECT_NEAR(beta[1], 3.0, 1e-10);
}

TEST(LinearLeastSquares, OverdeterminedNoisy)
{
    Rng rng(5);
    std::vector<std::vector<double>> rows;
    std::vector<double> y;
    for (int i = 0; i < 200; ++i) {
        double x = rng.uniform(0.0, 10.0);
        rows.push_back({x, 1.0});
        y.push_back(-1.5 * x + 7.0 + rng.normal(0.0, 0.01));
    }
    auto beta = linearLeastSquares(rows, y);
    EXPECT_NEAR(beta[0], -1.5, 0.01);
    EXPECT_NEAR(beta[1], 7.0, 0.01);
}

TEST(FitLeastSquares, RecoversLogModel)
{
    // The exact functional family of the paper's Eq. 2:
    // y = c2 * log(b / s^c3) + c4.
    const double c2 = 1.7, c3 = 0.6, c4 = 0.4;
    ParametricFn fn = [](const std::vector<double>& x,
                         const std::vector<double>& p) {
        return p[0] * (std::log(x[0]) - p[1] * std::log(x[1])) + p[2];
    };
    std::vector<Observation> data;
    for (double b = 1.0; b <= 16.0; b += 1.0) {
        for (double s : {0.25, 1.0}) {
            data.push_back(
                {{b, s}, c2 * (std::log(b) - c3 * std::log(s)) + c4});
        }
    }
    FitResult result = fitLeastSquares(fn, data, {1.0, 0.3, 0.0});
    EXPECT_LT(result.rmse, 1e-6);
    EXPECT_NEAR(result.params[0], c2, 1e-4);
    EXPECT_NEAR(result.params[1], c3, 1e-4);
    EXPECT_NEAR(result.params[2], c4, 1e-4);
}

TEST(FitLeastSquares, RecoversExponential)
{
    ParametricFn fn = [](const std::vector<double>& x,
                         const std::vector<double>& p) {
        return p[0] * std::exp(p[1] * x[0]);
    };
    std::vector<Observation> data;
    for (double x = 0.0; x <= 2.0; x += 0.1)
        data.push_back({{x}, 3.0 * std::exp(-1.2 * x)});
    FitResult result = fitLeastSquares(fn, data, {1.0, -0.5});
    EXPECT_NEAR(result.params[0], 3.0, 1e-5);
    EXPECT_NEAR(result.params[1], -1.2, 1e-5);
    EXPECT_TRUE(result.converged);
}

TEST(FitLeastSquares, RobustToNoise)
{
    Rng rng(9);
    ParametricFn fn = [](const std::vector<double>& x,
                         const std::vector<double>& p) {
        return p[0] * std::log(x[0]) + p[1];
    };
    std::vector<Observation> data;
    for (double b = 1.0; b <= 32.0; b += 1.0)
        data.push_back(
            {{b}, 2.0 * std::log(b) + 1.0 + rng.normal(0.0, 0.05)});
    FitResult result = fitLeastSquares(fn, data, {1.0, 0.0});
    EXPECT_NEAR(result.params[0], 2.0, 0.1);
    EXPECT_NEAR(result.params[1], 1.0, 0.1);
    EXPECT_LT(result.rmse, 0.1);
}

TEST(FitLeastSquares, NonFiniteRegionsAreSurvivable)
{
    // log(x - p) is undefined for p >= min(x); the solver must not step
    // into the invalid region and stay there.
    ParametricFn fn = [](const std::vector<double>& x,
                         const std::vector<double>& p) {
        return std::log(x[0] - p[0]);
    };
    std::vector<Observation> data;
    for (double x = 2.0; x <= 6.0; x += 0.5)
        data.push_back({{x}, std::log(x - 1.0)});
    FitResult result = fitLeastSquares(fn, data, {0.0});
    EXPECT_NEAR(result.params[0], 1.0, 1e-3);
}

TEST(FitLeastSquares, EmptyDataIsFatal)
{
    ParametricFn fn = [](const std::vector<double>&,
                         const std::vector<double>& p) { return p[0]; };
    EXPECT_THROW(fitLeastSquares(fn, {}, {1.0}), FatalError);
}

TEST(FitGridSearch, RecoversFlooredModel)
{
    // floor(c0 * x) with c0 = 0.73 — piecewise-constant objective, the
    // Eq. 1 regime where gradients are useless.
    ParametricFn fn = [](const std::vector<double>& x,
                         const std::vector<double>& p) {
        return std::floor(p[0] * x[0]);
    };
    std::vector<Observation> data;
    for (double x = 1.0; x <= 40.0; x += 1.0)
        data.push_back({{x}, std::floor(0.73 * x)});
    FitResult result = fitGridSearch(fn, data, {0.5}, {0.5});
    EXPECT_DOUBLE_EQ(result.rmse, 0.0);
    EXPECT_NEAR(result.params[0], 0.73, 0.02);
}

TEST(FitGridSearch, TwoParameterRecovery)
{
    ParametricFn fn = [](const std::vector<double>& x,
                         const std::vector<double>& p) {
        return p[0] * x[0] + p[1];
    };
    std::vector<Observation> data;
    for (double x = 0.0; x <= 10.0; x += 1.0)
        data.push_back({{x}, 1.4 * x - 2.0});
    FitResult result = fitGridSearch(fn, data, {1.0, 0.0}, {1.0, 3.0});
    EXPECT_NEAR(result.params[0], 1.4, 0.05);
    EXPECT_NEAR(result.params[1], -2.0, 0.2);
}

TEST(FitGridSearch, MismatchedRadiiAreFatal)
{
    ParametricFn fn = [](const std::vector<double>&,
                         const std::vector<double>& p) { return p[0]; };
    std::vector<Observation> data = {{{1.0}, 1.0}};
    EXPECT_THROW(fitGridSearch(fn, data, {1.0, 2.0}, {1.0}), FatalError);
}

}  // namespace
}  // namespace ftsim
