/**
 * @file
 * Unit tests for the fleet-wide stats registry (ISSUE-8): cell
 * registration and stability, provider rows, snapshot consistency
 * under a publishing herd, JSON/CSV rendering (escaping included),
 * and the torn-value-free concurrent Histogram contract the registry
 * leans on for latency quantiles.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/stats_registry.hpp"

namespace ftsim {
namespace {

TEST(StatsRegistry, CountersAndGaugesRoundTrip)
{
    StatsRegistry registry;
    StatsCounter& requests = registry.counter("serve.requests");
    StatsGauge& depth = registry.gauge("serve.queue_depth");
    requests.add(3);
    requests.inc();
    depth.set(7.5);

    const StatsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counter("serve.requests"), 4u);
    const StatEntry* gauge = snap.find("serve.queue_depth");
    ASSERT_NE(gauge, nullptr);
    EXPECT_FALSE(gauge->integral);
    EXPECT_DOUBLE_EQ(gauge->value, 7.5);
    // Absent names read as zero / null, never throw.
    EXPECT_EQ(snap.counter("no.such.cell"), 0u);
    EXPECT_EQ(snap.find("no.such.cell"), nullptr);
}

TEST(StatsRegistry, SameNameReturnsSameCell)
{
    StatsRegistry registry;
    StatsCounter& a = registry.counter("x.hits");
    StatsCounter& b = registry.counter("x.hits");
    EXPECT_EQ(&a, &b);
    a.inc();
    EXPECT_EQ(b.load(), 1u);
    StatsGauge& g1 = registry.gauge("x.level");
    StatsGauge& g2 = registry.gauge("x.level");
    EXPECT_EQ(&g1, &g2);
    Histogram& h1 = registry.histogram("x.lat", 0.0, 10.0, 8);
    Histogram& h2 = registry.histogram("x.lat", 0.0, 99.0, 4);
    EXPECT_EQ(&h1, &h2);  // Shape applies on first registration only.
    EXPECT_EQ(h2.numBins(), 8u);
}

TEST(StatsRegistry, SnapshotIsSortedByName)
{
    StatsRegistry registry;
    registry.counter("z.last").inc();
    registry.counter("a.first").inc();
    registry.counter("m.middle").inc();
    const StatsSnapshot snap = registry.snapshot();
    ASSERT_GE(snap.entries.size(), 3u);
    for (std::size_t i = 1; i < snap.entries.size(); ++i)
        EXPECT_LT(snap.entries[i - 1].name, snap.entries[i].name);
}

TEST(StatsRegistry, HistogramCellExposesCountAndQuantiles)
{
    StatsRegistry registry;
    Histogram& lat = registry.histogram("rpc.ms", 0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        lat.add(static_cast<double>(i));
    const StatsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counter("rpc.ms.count"), 100u);
    const StatEntry* p50 = snap.find("rpc.ms.p50");
    const StatEntry* p99 = snap.find("rpc.ms.p99");
    ASSERT_NE(p50, nullptr);
    ASSERT_NE(p99, nullptr);
    EXPECT_NEAR(p50->value, 50.0, 2.0);
    EXPECT_NEAR(p99->value, 99.0, 2.0);
}

TEST(StatsRegistry, ProvidersContributeRowsAndUnregister)
{
    StatsRegistry registry;
    const std::size_t token =
        registry.addProvider([](StatsRegistry::Sink& sink) {
            sink.counter("dyn.rows", 42);
            sink.gauge("dyn.level", -1.5);
        });
    StatsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counter("dyn.rows"), 42u);
    const StatEntry* level = snap.find("dyn.level");
    ASSERT_NE(level, nullptr);
    EXPECT_DOUBLE_EQ(level->value, -1.5);

    registry.removeProvider(token);
    snap = registry.snapshot();
    EXPECT_EQ(snap.find("dyn.rows"), nullptr);
}

TEST(StatsRegistry, JsonIsFlatAndEscaped)
{
    StatsRegistry registry;
    registry.counter("a.count").add(7);
    registry.gauge("weird\"name\\with\ttabs").set(1.5);
    const std::string json = registry.snapshot().toJson();
    EXPECT_NE(json.find("\"a.count\":7"), std::string::npos);
    // Quote, backslash, and tab all escape into valid JSON.
    EXPECT_NE(json.find("\"weird\\\"name\\\\with\\ttabs\":1.5"),
              std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(StatsRegistry, JsonQuoteEscapesControlBytes)
{
    EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(jsonQuote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(jsonQuote("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(jsonQuote(std::string("a\x01z")), "\"a\\u0001z\"");
    EXPECT_EQ(jsonQuote("line\nbreak"), "\"line\\nbreak\"");
}

TEST(StatsRegistry, CsvQuotesOnlyWhenNeeded)
{
    StatsRegistry registry;
    registry.counter("plain.count").add(1);
    registry.counter("comma,name").add(2);
    registry.counter("quote\"name").add(3);
    const std::string csv = registry.snapshot().toCsv();
    EXPECT_NE(csv.find("name,value"), std::string::npos);
    EXPECT_NE(csv.find("plain.count,1"), std::string::npos);
    EXPECT_NE(csv.find("\"comma,name\",2"), std::string::npos);
    EXPECT_NE(csv.find("\"quote\"\"name\",3"), std::string::npos);
}

TEST(StatsRegistry, SummaryGroupsByFirstDottedSegment)
{
    StatsRegistry registry;
    registry.counter("serve.requests").add(5);
    registry.counter("serve.executed").add(4);
    registry.counter("net.requests").add(9);
    const std::string summary =
        formatStatsSummary(registry.snapshot(), "tooltest");
    // One line per group, each prefixed "<tool>: <group>:".
    EXPECT_NE(summary.find("tooltest: net: requests=9"),
              std::string::npos);
    EXPECT_NE(summary.find("tooltest: serve: "), std::string::npos);
    EXPECT_NE(summary.find("executed=4"), std::string::npos);
    EXPECT_NE(summary.find("requests=5"), std::string::npos);
}

/**
 * The 16-thread herd the satellite pins: concurrent registration of
 * overlapping names, hot publishing, and snapshots taken mid-flight.
 * Under ASan+UBSan (and optionally TSan) in ci.sh, this is the "no
 * torn reads, no invalidated references" proof; the final quiesced
 * snapshot must also be exact.
 */
TEST(StatsRegistry, SnapshotHerd16Threads)
{
    StatsRegistry registry;
    constexpr int kThreads = 16;
    constexpr int kIncrements = 5000;
    std::atomic<bool> go{false};
    std::vector<std::thread> herd;
    herd.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        herd.emplace_back([&registry, &go, t] {
            while (!go.load())
                std::this_thread::yield();
            // Half the herd shares one cell; the rest own one each —
            // both through registration (mutex) and publish (atomic).
            StatsCounter& shared =
                registry.counter("herd.shared");
            StatsCounter& own = registry.counter(
                "herd.thread." + std::to_string(t % 8));
            Histogram& lat =
                registry.histogram("herd.lat", 0.0, 100.0, 64);
            for (int i = 0; i < kIncrements; ++i) {
                shared.inc();
                own.inc();
                lat.add(static_cast<double>(i % 100));
                if (i % 1000 == 0) {
                    const StatsSnapshot mid = registry.snapshot();
                    // Mid-flight totals are monotonic, never torn.
                    EXPECT_LE(mid.counter("herd.shared"),
                              static_cast<std::uint64_t>(kThreads) *
                                  kIncrements);
                }
            }
        });
    }
    go.store(true);
    for (std::thread& t : herd)
        t.join();
    const StatsSnapshot final = registry.snapshot();
    EXPECT_EQ(final.counter("herd.shared"),
              static_cast<std::uint64_t>(kThreads) * kIncrements);
    EXPECT_EQ(final.counter("herd.lat.count"),
              static_cast<std::uint64_t>(kThreads) * kIncrements);
    std::uint64_t perThread = 0;
    for (int t = 0; t < 8; ++t)
        perThread += final.counter("herd.thread." + std::to_string(t));
    EXPECT_EQ(perThread,
              static_cast<std::uint64_t>(kThreads) * kIncrements);
}

/** add() publishes the bin before the total, so a concurrent
 *  quantile() never sees a count ahead of the bins it walks — the
 *  estimate stays inside the populated range at every interleaving. */
TEST(HistogramConcurrency, QuantileNeverTearsUnderConcurrentAdds)
{
    Histogram h(0.0, 100.0, 100);
    std::atomic<bool> stop{false};
    std::thread reader([&h, &stop] {
        while (!stop.load()) {
            const double p50 = h.quantile(0.5);
            const double p99 = h.quantile(0.99);
            // Writers only ever add values in [10, 90): any estimate
            // outside the histogram's own range would be a torn walk.
            EXPECT_GE(p50, 0.0);
            EXPECT_LE(p50, 100.0);
            EXPECT_GE(p99, 0.0);
            EXPECT_LE(p99, 100.0);
        }
    });
    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w)
        writers.emplace_back([&h, w] {
            for (int i = 0; i < 50000; ++i)
                h.add(10.0 + ((w * 50000 + i) % 80));
        });
    for (std::thread& t : writers)
        t.join();
    stop.store(true);
    reader.join();
    EXPECT_EQ(h.count(), 200000u);
    const double p50 = h.quantile(0.5);
    EXPECT_GE(p50, 10.0);
    EXPECT_LE(p50, 91.0);
}

TEST(HistogramConcurrency, MergeAndCopyPreserveCounts)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 10);
    a.add(1.0);
    a.add(2.0);
    b.add(8.0);
    b.add(-5.0);  // Underflow.
    b.add(99.0);  // Overflow.
    a.merge(b);
    // count() tallies every add, out-of-range samples included.
    EXPECT_EQ(a.count(), 5u);
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.binCount(8), 1u);

    Histogram copy(a);
    EXPECT_EQ(copy.count(), a.count());
    EXPECT_EQ(copy.binCount(8), 1u);
    copy.add(3.0);
    EXPECT_EQ(copy.count(), 6u);
    EXPECT_EQ(a.count(), 5u);  // Deep copy, not a shared view.
}

}  // namespace
}  // namespace ftsim
