/**
 * @file
 * Unit tests for the table/CSV writers (common/table).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.hpp"
#include "common/table.hpp"

namespace ftsim {
namespace {

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::string rendered = t.render();
    EXPECT_NE(rendered.find("name"), std::string::npos);
    EXPECT_NE(rendered.find("alpha"), std::string::npos);
    // The header rule exists.
    EXPECT_NE(rendered.find("----"), std::string::npos);
}

TEST(Table, ArityMismatchIsFatal)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, CellAccess)
{
    Table t({"a"});
    t.addRow({"x"});
    EXPECT_EQ(t.cell(0, 0), "x");
    EXPECT_THROW(t.cell(1, 0), FatalError);
    EXPECT_THROW(t.cell(0, 1), FatalError);
}

TEST(Table, CsvEscapesCommasAndQuotes)
{
    Table t({"a", "b"});
    t.addRow({"x,y", "he said \"hi\""});
    std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
    EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvRowCount)
{
    Table t({"a"});
    t.addRow({"1"});
    t.addRow({"2"});
    std::string csv = t.toCsv();
    // Header + 2 rows = 3 newline-terminated lines.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Table, FmtHelpers)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(static_cast<long long>(42)), "42");
    EXPECT_EQ(Table::fmt(0.5, 0), "0");  // fixed, zero decimals -> "0"
}

TEST(Table, EmptyHeadersAreFatal)
{
    EXPECT_THROW(Table({}), FatalError);
}

TEST(BarChart, ScalesToWidth)
{
    auto chart = renderBarChart({{"big", 10.0}, {"small", 1.0}}, 10);
    // The largest bar uses the full width.
    EXPECT_NE(chart.find("##########"), std::string::npos);
    // The small bar is visible but short.
    EXPECT_NE(chart.find("|#"), std::string::npos);
}

TEST(BarChart, ZeroValuesProduceNoBar)
{
    auto chart = renderBarChart({{"zero", 0.0}}, 10);
    EXPECT_EQ(chart.find("|#"), std::string::npos);
}

}  // namespace
}  // namespace ftsim
