/**
 * @file
 * Unit tests for summary statistics (common/stats).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace ftsim {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats rs;
    rs.add(42.0);
    EXPECT_EQ(rs.count(), 1u);
    EXPECT_DOUBLE_EQ(rs.mean(), 42.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
    EXPECT_DOUBLE_EQ(rs.min(), 42.0);
    EXPECT_DOUBLE_EQ(rs.max(), 42.0);
}

TEST(RunningStats, MatchesDirectComputation)
{
    Rng rng(7);
    RunningStats rs;
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.normal(3.0, 2.0);
        xs.push_back(x);
        rs.add(x);
    }
    EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
    EXPECT_NEAR(rs.variance(), variance(xs), 1e-9);
    EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-9);
    EXPECT_NEAR(rs.sum(), mean(xs) * 1000.0, 1e-6);
}

TEST(RunningStats, MergeEqualsSequential)
{
    Rng rng(11);
    RunningStats a;
    RunningStats b;
    RunningStats all;
    for (int i = 0; i < 500; ++i) {
        double x = rng.uniform(-5.0, 5.0);
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a;
    a.add(1.0);
    a.add(2.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

TEST(Median, OddAndEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
}

TEST(Median, EmptyIsFatal)
{
    EXPECT_THROW(median({}), FatalError);
}

TEST(Percentile, KnownValues)
{
    std::vector<double> xs = {0.0, 1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 12.5), 0.5);  // Interpolated.
}

TEST(Percentile, OutOfRangeIsFatal)
{
    EXPECT_THROW(percentile({1.0}, -1.0), FatalError);
    EXPECT_THROW(percentile({1.0}, 101.0), FatalError);
}

TEST(Rmse, PerfectPredictionIsZero)
{
    EXPECT_DOUBLE_EQ(rmse({1.0, 2.0}, {1.0, 2.0}), 0.0);
}

TEST(Rmse, KnownError)
{
    // Errors 3 and 4 -> RMSE sqrt((9 + 16) / 2).
    EXPECT_NEAR(rmse({4.0, 0.0}, {1.0, 4.0}), std::sqrt(12.5), 1e-12);
}

TEST(Rmse, MismatchedSizesAreFatal)
{
    EXPECT_THROW(rmse({1.0}, {1.0, 2.0}), FatalError);
    EXPECT_THROW(rmse({}, {}), FatalError);
}

TEST(MeanAbsError, KnownError)
{
    EXPECT_NEAR(meanAbsError({4.0, 0.0}, {1.0, 4.0}), 3.5, 1e-12);
}

TEST(RSquared, PerfectFitIsOne)
{
    EXPECT_DOUBLE_EQ(rSquared({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}), 1.0);
}

TEST(RSquared, MeanPredictorIsZero)
{
    std::vector<double> actual = {1.0, 2.0, 3.0};
    std::vector<double> pred = {2.0, 2.0, 2.0};
    EXPECT_NEAR(rSquared(pred, actual), 0.0, 1e-12);
}

TEST(Pearson, PerfectCorrelation)
{
    EXPECT_NEAR(pearson({1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}), 1.0, 1e-12);
    EXPECT_NEAR(pearson({1.0, 2.0, 3.0}, {6.0, 4.0, 2.0}), -1.0, 1e-12);
}

TEST(Variance, ConstantVectorIsZero)
{
    EXPECT_DOUBLE_EQ(variance({2.0, 2.0, 2.0}), 0.0);
}

TEST(Variance, KnownValue)
{
    // Population variance of {1, 2, 3, 4} = 1.25.
    EXPECT_DOUBLE_EQ(variance({1.0, 2.0, 3.0, 4.0}), 1.25);
}

}  // namespace
}  // namespace ftsim
