/**
 * @file
 * Unit tests for numeric helpers (common/math_util).
 */

#include <gtest/gtest.h>

#include "common/math_util.hpp"

namespace ftsim {
namespace {

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(0, 3), 0);
    EXPECT_EQ(ceilDiv(1, 128), 1);
}

TEST(MathUtil, RoundUp)
{
    EXPECT_EQ(roundUp(10, 8), 16);
    EXPECT_EQ(roundUp(16, 8), 16);
    EXPECT_EQ(roundUp(0, 8), 0);
}

TEST(MathUtil, Clamp)
{
    EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathUtil, ApproxEqual)
{
    EXPECT_TRUE(approxEqual(1.0, 1.0));
    EXPECT_TRUE(approxEqual(1.0, 1.0 + 1e-13));
    EXPECT_FALSE(approxEqual(1.0, 1.001));
    EXPECT_TRUE(approxEqual(1e9, 1e9 * (1.0 + 1e-10)));
    EXPECT_TRUE(approxEqual(0.0, 0.0));
}

TEST(MathUtil, FormatBytes)
{
    EXPECT_EQ(formatBytes(512.0), "512 B");
    EXPECT_EQ(formatBytes(2048.0), "2.00 KiB");
    EXPECT_EQ(formatBytes(3.5 * kMiB), "3.50 MiB");
    EXPECT_EQ(formatBytes(23.35 * kGiB), "23.35 GiB");
}

TEST(MathUtil, FormatSeconds)
{
    EXPECT_EQ(formatSeconds(1.5), "1.500 s");
    EXPECT_EQ(formatSeconds(0.0025), "2.500 ms");
    EXPECT_EQ(formatSeconds(12e-6), "12.0 us");
    EXPECT_EQ(formatSeconds(5e-9), "5 ns");
}

TEST(MathUtil, FormatCount)
{
    EXPECT_EQ(formatCount(46.7e9), "46.7 B");
    EXPECT_EQ(formatCount(2.8e9), "2.8 B");
    EXPECT_EQ(formatCount(15000.0), "15.0 K");
    EXPECT_EQ(formatCount(42.0), "42");
    EXPECT_EQ(formatCount(1.5e12), "1.5 T");
}

}  // namespace
}  // namespace ftsim
