/**
 * @file
 * Unit tests for the deterministic RNG (common/rng).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace ftsim {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= (a.nextU64() != b.nextU64());
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(5);
    RunningStats rs;
    for (int i = 0; i < 50000; ++i)
        rs.add(rng.uniform());
    EXPECT_NEAR(rs.mean(), 0.5, 0.01);
    EXPECT_NEAR(rs.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(7);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::int64_t v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, NormalMoments)
{
    Rng rng(11);
    RunningStats rs;
    for (int i = 0; i < 100000; ++i)
        rs.add(rng.normal(2.0, 3.0));
    EXPECT_NEAR(rs.mean(), 2.0, 0.05);
    EXPECT_NEAR(rs.stddev(), 3.0, 0.05);
}

TEST(Rng, LogNormalMedian)
{
    // Median of logNormal(mu, sigma) is exp(mu).
    Rng rng(13);
    std::vector<double> xs;
    for (int i = 0; i < 50000; ++i)
        xs.push_back(rng.logNormal(std::log(79.0), 0.45));
    EXPECT_NEAR(median(xs), 79.0, 2.0);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, CategoricalFollowsWeights)
{
    Rng rng(19);
    std::vector<double> weights = {1.0, 3.0};
    int count1 = 0;
    for (int i = 0; i < 20000; ++i)
        count1 += rng.categorical(weights) == 1 ? 1 : 0;
    EXPECT_NEAR(count1 / 20000.0, 0.75, 0.02);
}

TEST(Rng, PermutationIsPermutation)
{
    Rng rng(23);
    auto perm = rng.permutation(100);
    ASSERT_EQ(perm.size(), 100u);
    std::vector<std::size_t> sorted = perm;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_EQ(sorted[i], i);
}

TEST(Rng, PermutationShuffles)
{
    Rng rng(29);
    auto perm = rng.permutation(100);
    std::size_t in_place = 0;
    for (std::size_t i = 0; i < 100; ++i)
        in_place += perm[i] == i ? 1 : 0;
    EXPECT_LT(in_place, 20u);  // A fixed-point-heavy shuffle is broken.
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(31);
    Rng child = parent.split();
    // The child stream must not mirror the parent stream.
    bool differs = false;
    for (int i = 0; i < 10; ++i)
        differs |= (parent.nextU64() != child.nextU64());
    EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace ftsim
