/**
 * @file
 * Tests for LM pre-training and the pretrain -> quantize -> QLoRA flow.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "models/convert.hpp"
#include "train/pretrain.hpp"
#include "train/trainer.hpp"

namespace ftsim {
namespace {

MiniModelConfig
tinyConfig()
{
    MiniModelConfig cfg = MiniModelConfig::miniMixtral();
    cfg.vocab = Vocab::kSize;
    cfg.dModel = 24;
    cfg.nLayers = 1;
    cfg.nHeads = 4;
    cfg.dFf = 48;
    cfg.nExperts = 4;
    cfg.topK = 2;
    cfg.loraRank = 2;
    return cfg;
}

Dataset
corpus()
{
    return Dataset::generate(DatasetSpec::genericCorpus(96, 12.0));
}

TEST(Pretrain, LmLossDecreases)
{
    MiniModelConfig cfg = tinyConfig();
    cfg.useLora = false;
    MoeLlm model(cfg);
    PretrainResult result = pretrainLm(model, corpus(), 40, 16, 3e-3);
    EXPECT_EQ(result.steps, 40u);
    EXPECT_LT(result.finalLoss, result.initialLoss);
}

TEST(Pretrain, RejectsFrozenModel)
{
    MiniModelConfig cfg = tinyConfig();
    cfg.useLora = false;
    MoeLlm model(cfg);
    model.freeze();
    EXPECT_THROW(pretrainLm(model, corpus(), 10, 8), FatalError);
    MoeLlm ok(cfg);
    EXPECT_THROW(pretrainLm(ok, corpus(), 0, 8), FatalError);
}

TEST(Pretrain, MakePretrainedQloraProducesAdaptersOnly)
{
    auto model = makePretrainedQlora(tinyConfig(), corpus(), 20, 16);
    ASSERT_NE(model, nullptr);
    EXPECT_TRUE(model->config().useLora);
    for (const auto& np : model->namedParameters()) {
        if (np.tensor.requiresGrad())
            EXPECT_NE(np.name.find("lora"), std::string::npos) << np.name;
    }
}

TEST(Pretrain, QuantizedModelApproximatesDenseBase)
{
    // The QLoRA model's function at init = quantized(pretrained dense):
    // logits must be close (within 4-bit quantization error), and far
    // from an unrelated random init.
    MiniModelConfig dense_cfg = tinyConfig();
    dense_cfg.useLora = false;
    MoeLlm dense(dense_cfg);
    pretrainLm(dense, corpus(), 30, 16, 3e-3);

    MiniModelConfig qlora_cfg = tinyConfig();
    qlora_cfg.useLora = true;
    MoeLlm qlora(qlora_cfg);
    initializeQloraFromDense(qlora, dense);

    std::vector<int> ids = {1, 9, 17, 25, 33, 41};
    NoGradGuard guard;
    Tensor dense_logits = dense.logits(ids, 1, 6);
    Tensor qlora_logits = qlora.logits(ids, 1, 6);

    double diff = 0.0;
    double magnitude = 0.0;
    for (std::size_t i = 0; i < dense_logits.numel(); ++i) {
        diff += std::abs(dense_logits.data()[i] - qlora_logits.data()[i]);
        magnitude += std::abs(dense_logits.data()[i]);
    }
    // Relative error well under 100% (quantization is lossy but close).
    EXPECT_LT(diff, 0.5 * magnitude);

    MoeLlm fresh(qlora_cfg);
    Tensor fresh_logits = fresh.logits(ids, 1, 6);
    double fresh_diff = 0.0;
    for (std::size_t i = 0; i < dense_logits.numel(); ++i)
        fresh_diff +=
            std::abs(dense_logits.data()[i] - fresh_logits.data()[i]);
    EXPECT_LT(diff, fresh_diff);  // Converted is closer than random.
}

TEST(Convert, RejectsMismatchedPair)
{
    MiniModelConfig a = tinyConfig();
    a.useLora = true;
    MoeLlm qlora(a);

    MiniModelConfig b = tinyConfig();
    b.useLora = false;
    b.dModel = 32;  // Architecture mismatch.
    MoeLlm dense(b);
    EXPECT_THROW(initializeQloraFromDense(qlora, dense), FatalError);

    // Swapped roles.
    MiniModelConfig c = tinyConfig();
    c.useLora = false;
    MoeLlm dense2(c);
    EXPECT_THROW(initializeQloraFromDense(dense2, dense), FatalError);
}

TEST(Convert, WorksForMambaBackbone)
{
    MiniModelConfig cfg = MiniModelConfig::miniBlackMamba();
    cfg.vocab = Vocab::kSize;
    cfg.dModel = 16;
    cfg.nLayers = 1;
    cfg.dFf = 32;
    cfg.dInner = 32;
    cfg.nExperts = 4;
    cfg.loraRank = 2;

    MiniModelConfig dense_cfg = cfg;
    dense_cfg.useLora = false;
    MoeLlm dense(dense_cfg);

    MiniModelConfig qlora_cfg = cfg;
    qlora_cfg.useLora = true;
    MoeLlm qlora(qlora_cfg);
    initializeQloraFromDense(qlora, dense);

    std::vector<int> ids = {1, 9, 17, 25};
    NoGradGuard guard;
    Tensor a = dense.logits(ids, 1, 4);
    Tensor b = qlora.logits(ids, 1, 4);
    double diff = 0.0, mag = 0.0;
    for (std::size_t i = 0; i < a.numel(); ++i) {
        diff += std::abs(a.data()[i] - b.data()[i]);
        mag += std::abs(a.data()[i]);
    }
    EXPECT_LT(diff, 0.5 * mag);
}

TEST(Pretrain, GenericCorpusTouchesWholeVocabulary)
{
    Dataset ds = Dataset::generate(DatasetSpec::genericCorpus(256, 16.0));
    std::vector<bool> seen(Vocab::kSize, false);
    for (const Query& q : ds.queries()) {
        for (int t : q.prompt)
            seen[static_cast<std::size_t>(t)] = true;
        for (int t : q.answer)
            seen[static_cast<std::size_t>(t)] = true;
    }
    std::size_t covered = 0;
    for (std::size_t t = Vocab::kFillerBase; t < Vocab::kSize; ++t)
        covered += seen[t] ? 1 : 0;
    // Every non-special token appears somewhere in the corpus.
    EXPECT_EQ(covered, Vocab::kSize - Vocab::kFillerBase);
}

TEST(Datasets, MappingVariantsChangeAnswers)
{
    EXPECT_NE(TaskOracle::commonsenseAnswer(3, 1, 0),
              TaskOracle::commonsenseAnswer(3, 1, 1));
    EXPECT_NE(TaskOracle::mathAnswer(4, 6, 0),
              TaskOracle::mathAnswer(4, 6, 1));
    // Variant 0 is the canonical mapping.
    EXPECT_EQ(TaskOracle::mathAnswer(4, 6, 0),
              TaskOracle::mathAnswer(4, 6));
}

TEST(Datasets, MergedConcatenates)
{
    Dataset a = Dataset::generate(DatasetSpec::genericCorpus(10, 10.0));
    Dataset b = Dataset::generate(DatasetSpec::genericCorpus(15, 10.0));
    Dataset m = Dataset::merged({a, b}, "mix");
    EXPECT_EQ(m.size(), 25u);
    EXPECT_EQ(m.name(), "mix");
    EXPECT_THROW(Dataset::merged({}, "empty"), FatalError);
}

}  // namespace
}  // namespace ftsim
