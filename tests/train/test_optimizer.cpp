/**
 * @file
 * Unit tests for SGD, AdamW, and the LR schedule.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"
#include "train/optimizer.hpp"

namespace ftsim {
namespace {

TEST(SgdTest, SingleStepMatchesClosedForm)
{
    Tensor p = Tensor::fromVector({2}, {1.0, 2.0}, true);
    p.grad() = {0.5, -1.0};
    Sgd sgd({p}, 0.1);
    sgd.step();
    EXPECT_NEAR(p.data()[0], 1.0 - 0.1 * 0.5, 1e-12);
    EXPECT_NEAR(p.data()[1], 2.0 + 0.1, 1e-12);
}

TEST(SgdTest, MomentumAccumulates)
{
    Tensor p = Tensor::fromVector({1}, {0.0}, true);
    Sgd sgd({p}, 0.1, 0.9);
    p.grad() = {1.0};
    sgd.step();  // v = 1, p = -0.1.
    EXPECT_NEAR(p.data()[0], -0.1, 1e-12);
    p.grad() = {1.0};
    sgd.step();  // v = 1.9, p = -0.29.
    EXPECT_NEAR(p.data()[0], -0.29, 1e-12);
}

TEST(AdamWTest, FirstStepIsLrSizedSignedStep)
{
    // With bias correction, step 1 moves ~lr * sign(grad).
    Tensor p = Tensor::fromVector({2}, {1.0, 1.0}, true);
    p.grad() = {0.3, -0.7};
    AdamW adam({p}, 0.01);
    adam.step();
    EXPECT_NEAR(p.data()[0], 1.0 - 0.01, 1e-5);
    EXPECT_NEAR(p.data()[1], 1.0 + 0.01, 1e-5);
    EXPECT_EQ(adam.stepCount(), 1u);
}

TEST(AdamWTest, WeightDecayIsDecoupled)
{
    Tensor p = Tensor::fromVector({1}, {10.0}, true);
    p.grad() = {0.0};
    AdamW adam({p}, 0.1, 0.9, 0.999, 1e-8, /*weight_decay=*/0.1);
    adam.step();
    // Zero gradient: only decay applies. p -= lr * wd * p.
    EXPECT_NEAR(p.data()[0], 10.0 * (1.0 - 0.1 * 0.1), 1e-9);
}

TEST(AdamWTest, ConvergesOnQuadratic)
{
    Rng rng(3);
    Tensor p = Tensor::randn({8}, rng, 1.0, true);
    Tensor target = Tensor::randn({8}, rng);
    AdamW adam({p}, 0.05);
    double loss = 0.0;
    for (int i = 0; i < 400; ++i) {
        adam.zeroGrad();
        Tensor diff = sub(p, target);
        Tensor l = sumAll(mul(diff, diff));
        loss = l.item();
        l.backward();
        adam.step();
    }
    EXPECT_LT(loss, 1e-3);
}

TEST(AdamWTest, SkipsParamsWithoutGrad)
{
    Tensor p = Tensor::fromVector({1}, {5.0}, true);
    AdamW adam({p}, 0.1);
    adam.step();  // No backward ran; nothing should change.
    EXPECT_DOUBLE_EQ(p.data()[0], 5.0);
}

TEST(OptimizerBase, RejectsFrozenOrEmpty)
{
    Tensor frozen = Tensor::fromVector({1}, {1.0}, false);
    EXPECT_THROW(Sgd({frozen}, 0.1), FatalError);
    EXPECT_THROW(Sgd({}, 0.1), FatalError);
}

TEST(OptimizerBase, CountsElements)
{
    Tensor a = Tensor::zeros({2, 3}, true);
    Tensor b = Tensor::zeros({4}, true);
    Sgd sgd({a, b}, 0.1);
    EXPECT_EQ(sgd.numParams(), 2u);
    EXPECT_EQ(sgd.numElements(), 10u);
}

TEST(LrScheduleTest, WarmupRampsLinearly)
{
    LrSchedule sched(1.0, 10, 100);
    EXPECT_NEAR(sched.lrAt(0), 0.1, 1e-12);
    EXPECT_NEAR(sched.lrAt(4), 0.5, 1e-12);
    EXPECT_NEAR(sched.lrAt(9), 1.0, 1e-12);
}

TEST(LrScheduleTest, CosineDecaysToFloor)
{
    LrSchedule sched(1.0, 0, 100, 0.1);
    EXPECT_NEAR(sched.lrAt(0), 1.0, 1e-12);
    EXPECT_GT(sched.lrAt(25), sched.lrAt(75));
    EXPECT_NEAR(sched.lrAt(100), 0.1, 1e-12);
    EXPECT_NEAR(sched.lrAt(500), 0.1, 1e-12);  // Clamped past horizon.
}

TEST(LrScheduleTest, InvalidConfigIsFatal)
{
    EXPECT_THROW(LrSchedule(0.0, 0, 10), FatalError);
    EXPECT_THROW(LrSchedule(1.0, 0, 0), FatalError);
    EXPECT_THROW(LrSchedule(1.0, 0, 10, 2.0), FatalError);
}

}  // namespace
}  // namespace ftsim
