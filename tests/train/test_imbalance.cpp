/**
 * @file
 * Unit tests for the expert load-imbalance measurement (Fig. 11).
 */

#include <gtest/gtest.h>

#include <numeric>

#include "common/logging.hpp"
#include "train/imbalance.hpp"

namespace ftsim {
namespace {

MiniModelConfig
tinyConfig()
{
    MiniModelConfig cfg = MiniModelConfig::miniMixtral();
    cfg.vocab = Vocab::kSize;
    cfg.dModel = 16;
    cfg.nLayers = 2;
    cfg.nHeads = 2;
    cfg.dFf = 32;
    cfg.nExperts = 8;
    cfg.topK = 2;
    cfg.loraRank = 2;
    return cfg;
}

Dataset
tinyDataset()
{
    DatasetSpec spec = DatasetSpec::commonsense15k();
    spec.numQueries = 32;
    spec.medianSeqLen = 12.0;
    return Dataset::generate(spec);
}

TEST(Imbalance, ProfileShapeAndConservation)
{
    MoeLlm model(tinyConfig());
    Dataset ds = tinyDataset();
    ExpertLoadProfile profile = measureExpertLoad(model, ds, 8);
    ASSERT_EQ(profile.avgTokensPerQuery.size(), 8u);
    EXPECT_EQ(profile.numQueries, 32u);

    // Conservation: sum over experts of tokens/query must equal
    // topK * (average tokens per query).
    double total_tokens = 0.0;
    for (const Query& q : ds.queries())
        total_tokens += static_cast<double>(q.seqLen());
    // Collation pads, so routed tokens/query >= raw tokens/query.
    const double routed = std::accumulate(
        profile.avgTokensPerQuery.begin(),
        profile.avgTokensPerQuery.end(), 0.0);
    EXPECT_GE(routed + 1e-9, 2.0 * total_tokens / 32.0);
}

TEST(Imbalance, VarianceIsNonNegativeAndFinite)
{
    MoeLlm model(tinyConfig());
    Dataset ds = tinyDataset();
    ExpertLoadProfile profile = measureExpertLoad(model, ds, 8);
    EXPECT_GE(profile.varianceAcrossExperts, 0.0);
}

TEST(Imbalance, DenseRoutingIsPerfectlyBalanced)
{
    MoeLlm model(tinyConfig());
    model.setTopK(8);
    Dataset ds = tinyDataset();
    ExpertLoadProfile profile = measureExpertLoad(model, ds, 8);
    // Dense: every expert sees every token -> zero variance.
    EXPECT_NEAR(profile.varianceAcrossExperts, 0.0, 1e-9);
}

TEST(Imbalance, MeasurementIsRepeatable)
{
    MoeLlm model(tinyConfig());
    Dataset ds = tinyDataset();
    ExpertLoadProfile p1 = measureExpertLoad(model, ds, 8);
    ExpertLoadProfile p2 = measureExpertLoad(model, ds, 8);
    ASSERT_EQ(p1.avgTokensPerQuery.size(), p2.avgTokensPerQuery.size());
    for (std::size_t e = 0; e < p1.avgTokensPerQuery.size(); ++e)
        EXPECT_DOUBLE_EQ(p1.avgTokensPerQuery[e],
                         p2.avgTokensPerQuery[e]);
}

TEST(Imbalance, LimitControlsQueryCount)
{
    MoeLlm model(tinyConfig());
    Dataset ds = tinyDataset();
    ExpertLoadProfile profile = measureExpertLoad(model, ds, 8, 16);
    EXPECT_EQ(profile.numQueries, 16u);
}

}  // namespace
}  // namespace ftsim
