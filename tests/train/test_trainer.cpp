/**
 * @file
 * Unit tests for the Trainer and the exact-match evaluator.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "data/batching.hpp"
#include "models/model.hpp"
#include "train/trainer.hpp"

namespace ftsim {
namespace {

MiniModelConfig
tinyMamba()
{
    MiniModelConfig cfg = MiniModelConfig::miniBlackMamba();
    cfg.vocab = Vocab::kSize;
    cfg.dModel = 24;
    cfg.nLayers = 1;
    cfg.dFf = 48;
    cfg.dInner = 48;
    cfg.nExperts = 4;
    cfg.topK = 2;
    return cfg;
}

Dataset
tinyDataset(std::size_t n = 64)
{
    DatasetSpec spec = DatasetSpec::commonsense15k();
    spec.numQueries = n;
    spec.medianSeqLen = 12.0;
    spec.lengthSigma = 0.2;
    return Dataset::generate(spec);
}

TEST(TrainerTest, StepReportsAllStages)
{
    MoeLlm model(tinyMamba());
    AdamW opt(model.trainableParameters(), 1e-3);
    Trainer trainer(model, opt, {});
    Dataset ds = tinyDataset(8);
    Batch batch = collate(ds.head(4));

    StepStats stats = trainer.trainStep(batch);
    EXPECT_GT(stats.loss, 0.0);
    EXPECT_GT(stats.times.forward, 0.0);
    EXPECT_GT(stats.times.backward, 0.0);
    EXPECT_GT(stats.times.optimizer, 0.0);
    EXPECT_EQ(stats.numQueries, 4u);
}

TEST(TrainerTest, EpochLossDecreasesOverTraining)
{
    MoeLlm model(tinyMamba());
    AdamW opt(model.trainableParameters(), 3e-3);
    TrainerOptions options;
    options.batchSize = 8;
    Trainer trainer(model, opt, options);
    Dataset ds = tinyDataset(64);

    auto history = trainer.train(ds, 4);
    ASSERT_EQ(history.size(), 4u);
    EXPECT_LT(history.back().meanLoss, history.front().meanLoss);
}

TEST(TrainerTest, EpochCountsQueries)
{
    MoeLlm model(tinyMamba());
    AdamW opt(model.trainableParameters(), 1e-3);
    TrainerOptions options;
    options.batchSize = 8;
    Trainer trainer(model, opt, options);
    Dataset ds = tinyDataset(20);
    EpochStats epoch = trainer.trainEpoch(ds);
    EXPECT_EQ(epoch.numQueries, 20u);
    EXPECT_EQ(epoch.steps, 3u);  // ceil(20/8).
    EXPECT_GT(epoch.queriesPerSecond, 0.0);
}

TEST(TrainerTest, MaxBatchesCapRespected)
{
    MoeLlm model(tinyMamba());
    AdamW opt(model.trainableParameters(), 1e-3);
    TrainerOptions options;
    options.batchSize = 4;
    options.maxBatchesPerEpoch = 2;
    Trainer trainer(model, opt, options);
    Dataset ds = tinyDataset(64);
    EpochStats epoch = trainer.trainEpoch(ds);
    EXPECT_EQ(epoch.steps, 2u);
    EXPECT_EQ(epoch.numQueries, 8u);
}

TEST(EvaluateTest, UntrainedModelIsNearChance)
{
    MoeLlm model(tinyMamba());
    Dataset ds = tinyDataset(32);
    EvalResult result = evaluateExactMatch(model, ds, 8);
    EXPECT_EQ(result.numQueries, 32u);
    // 64-way vocabulary, two answer tokens: chance is tiny.
    EXPECT_LT(result.exactMatch, 0.30);
    EXPECT_GT(result.meanLoss, 0.0);
}

TEST(EvaluateTest, LimitRestrictsQueries)
{
    MoeLlm model(tinyMamba());
    Dataset ds = tinyDataset(32);
    EvalResult result = evaluateExactMatch(model, ds, 8, 10);
    EXPECT_EQ(result.numQueries, 10u);
}

TEST(EvaluateTest, EvalDoesNotTouchGradientsOrWeights)
{
    MoeLlm model(tinyMamba());
    Dataset ds = tinyDataset(8);
    auto params = model.trainableParameters();
    std::vector<Scalar> before = params[0].data();
    (void)evaluateExactMatch(model, ds, 4);
    EXPECT_EQ(params[0].data(), before);
    EXPECT_FALSE(params[0].hasGrad());
}

TEST(StageTimesTest, Accumulate)
{
    StageTimes a{1.0, 2.0, 3.0};
    StageTimes b{0.5, 0.5, 0.5};
    a += b;
    EXPECT_DOUBLE_EQ(a.forward, 1.5);
    EXPECT_DOUBLE_EQ(a.total(), 7.5);
}

TEST(TrainerTest, LoraOptimizerStageIsCheaperThanFullFt)
{
    // The paper's Fig. 4 contrast: optimizer time scales with trainable
    // parameters. Mini-Mixtral (LoRA) has far fewer trainables than
    // mini-BlackMamba (full FT) relative to model size.
    MiniModelConfig mixtral_cfg = MiniModelConfig::miniMixtral();
    mixtral_cfg.nLayers = 1;
    mixtral_cfg.dModel = 32;
    mixtral_cfg.dFf = 64;
    mixtral_cfg.nExperts = 4;
    MoeLlm mixtral(mixtral_cfg);

    MiniModelConfig mamba_cfg = tinyMamba();
    MoeLlm mamba(mamba_cfg);

    const double mixtral_trainable_frac =
        static_cast<double>(mixtral.numTrainableParameters()) /
        static_cast<double>(mixtral.numParameters());
    const double mamba_trainable_frac =
        static_cast<double>(mamba.numTrainableParameters()) /
        static_cast<double>(mamba.numParameters());
    EXPECT_LT(mixtral_trainable_frac, 0.6);
    EXPECT_DOUBLE_EQ(mamba_trainable_frac, 1.0);
}

}  // namespace
}  // namespace ftsim
