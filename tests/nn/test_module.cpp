/**
 * @file
 * Unit tests for the Module parameter registry.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/layers.hpp"
#include "nn/module.hpp"
#include "tensor/ops.hpp"

namespace ftsim {
namespace {

/** A two-layer composite used to exercise the registry tree. */
class TinyMlp : public Module {
  public:
    explicit TinyMlp(Rng& rng)
        : fc1_(4, 8, rng, /*with_bias=*/true), fc2_(8, 2, rng)
    {
        registerChild("fc1", &fc1_);
        registerChild("fc2", &fc2_);
    }

    Tensor forward(const Tensor& x) const
    {
        return fc2_.forward(relu(fc1_.forward(x)));
    }

  private:
    Linear fc1_;
    Linear fc2_;
};

TEST(Module, NamedParametersWalkTree)
{
    Rng rng(1);
    TinyMlp mlp(rng);
    auto named = mlp.namedParameters();
    ASSERT_EQ(named.size(), 3u);  // fc1.weight, fc1.bias, fc2.weight.
    EXPECT_EQ(named[0].name, "fc1.weight");
    EXPECT_EQ(named[1].name, "fc1.bias");
    EXPECT_EQ(named[2].name, "fc2.weight");
}

TEST(Module, ParameterCounts)
{
    Rng rng(2);
    TinyMlp mlp(rng);
    // 4*8 + 8 + 8*2 = 56.
    EXPECT_EQ(mlp.numParameters(), 56u);
    EXPECT_EQ(mlp.numTrainableParameters(), 56u);
}

TEST(Module, FreezeRemovesTrainables)
{
    Rng rng(3);
    TinyMlp mlp(rng);
    mlp.freeze();
    EXPECT_EQ(mlp.numTrainableParameters(), 0u);
    EXPECT_EQ(mlp.numParameters(), 56u);
    EXPECT_TRUE(mlp.trainableParameters().empty());
}

TEST(Module, ZeroGradClearsAllGradients)
{
    Rng rng(4);
    TinyMlp mlp(rng);
    Tensor x = Tensor::randn({2, 4}, rng);
    sumAll(mlp.forward(x)).backward();
    bool any_nonzero = false;
    for (auto& p : mlp.parameters())
        for (Scalar g : p.grad())
            any_nonzero |= g != 0.0;
    EXPECT_TRUE(any_nonzero);
    mlp.zeroGrad();
    for (auto& p : mlp.parameters())
        for (Scalar g : p.grad())
            EXPECT_DOUBLE_EQ(g, 0.0);
}

TEST(Module, ParametersShareStorageWithModel)
{
    Rng rng(5);
    TinyMlp mlp(rng);
    auto params = mlp.parameters();
    const Scalar before = params[0].data()[0];
    params[0].data()[0] = before + 1.0;
    // The same storage must be visible through a fresh traversal.
    EXPECT_DOUBLE_EQ(mlp.parameters()[0].data()[0], before + 1.0);
}

}  // namespace
}  // namespace ftsim
