/**
 * @file
 * Unit tests for 4-bit block quantization (the QLoRA base layer).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "nn/quant.hpp"
#include "tensor/ops.hpp"

namespace ftsim {
namespace {

TEST(Quantize4Bit, RoundTripErrorIsBounded)
{
    Rng rng(1);
    Tensor w = Tensor::randn({8, 64}, rng, 0.1);
    QuantizedMatrix qm = quantize4Bit(w, 32);
    Tensor deq = dequantize4Bit(qm);
    ASSERT_EQ(deq.shape(), w.shape());
    // Symmetric int4: error per element is at most scale/2, where the
    // block scale is absmax/7.
    for (std::size_t r = 0; r < 8; ++r) {
        for (std::size_t blk = 0; blk < 2; ++blk) {
            double absmax = 0.0;
            for (std::size_t c = blk * 32; c < (blk + 1) * 32; ++c)
                absmax = std::max(absmax,
                                  std::abs(w.at({r, c})));
            const double tol = absmax / 7.0 / 2.0 + 1e-12;
            for (std::size_t c = blk * 32; c < (blk + 1) * 32; ++c)
                EXPECT_LE(std::abs(w.at({r, c}) - deq.at({r, c})), tol);
        }
    }
}

TEST(Quantize4Bit, CodesAreFourBit)
{
    Rng rng(2);
    Tensor w = Tensor::randn({4, 32}, rng);
    QuantizedMatrix qm = quantize4Bit(w, 32);
    for (std::uint8_t code : qm.codes)
        EXPECT_LE(code, 15);
}

TEST(Quantize4Bit, ZeroWeightRoundTripsExactly)
{
    Tensor w = Tensor::zeros({2, 32});
    Tensor deq = dequantize4Bit(quantize4Bit(w));
    for (Scalar v : deq.data())
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Quantize4Bit, RaggedLastBlock)
{
    // cols not a multiple of the block size.
    Rng rng(3);
    Tensor w = Tensor::randn({2, 40}, rng);
    QuantizedMatrix qm = quantize4Bit(w, 32);
    EXPECT_EQ(qm.blocksPerRow(), 2u);
    Tensor deq = dequantize4Bit(qm);
    EXPECT_EQ(deq.shape(), w.shape());
}

TEST(Quantize4Bit, PackedBytesMatchFourBitStorage)
{
    Rng rng(4);
    Tensor w = Tensor::randn({16, 64}, rng);
    QuantizedMatrix qm = quantize4Bit(w, 32);
    // 16*64 codes at 2/byte + 16*2 scales at 2 bytes.
    EXPECT_EQ(qm.packedBytes(), 16u * 64u / 2u + 16u * 2u * 2u);
}

TEST(QuantLinear, ForwardApproximatesDense)
{
    Rng rng(5);
    Tensor w = Tensor::randn({8, 32}, rng, 0.1);
    QuantLinear ql(w);
    Tensor x = Tensor::randn({4, 32}, rng);
    Tensor y_q = ql.forward(x);
    Tensor y_d = linearOp(x, w, Tensor());
    for (std::size_t i = 0; i < y_q.numel(); ++i)
        EXPECT_NEAR(y_q.data()[i], y_d.data()[i], 0.5);
    EXPECT_GT(ql.quantizationError(), 0.0);
    EXPECT_LT(ql.quantizationError(), 0.02);
}

TEST(QuantLinear, WeightsAreFrozen)
{
    Rng rng(6);
    QuantLinear ql(16, 8, rng);
    EXPECT_EQ(ql.numTrainableParameters(), 0u);
    // Gradient still flows to the *input*.
    Tensor x = Tensor::randn({2, 16}, rng, 1.0, true);
    sumAll(ql.forward(x)).backward();
    EXPECT_TRUE(x.hasGrad());
}

TEST(QuantLinear, DimsExposed)
{
    Rng rng(7);
    QuantLinear ql(16, 8, rng);
    EXPECT_EQ(ql.inDim(), 16u);
    EXPECT_EQ(ql.outDim(), 8u);
}

TEST(DenseLinearLayer, TrainableAndCorrectShape)
{
    Rng rng(8);
    DenseLinear dl(6, 3, rng);
    EXPECT_EQ(dl.numTrainableParameters(), 18u);
    Tensor x = Tensor::randn({2, 6}, rng);
    EXPECT_EQ(dl.forward(x).shape(), Shape({2, 3}));
}

TEST(Quantize4Bit, NonMatrixIsFatal)
{
    EXPECT_THROW(quantize4Bit(Tensor::zeros({4})), FatalError);
    EXPECT_THROW(quantize4Bit(Tensor::zeros({2, 2}), 0), FatalError);
}

}  // namespace
}  // namespace ftsim
