/**
 * @file
 * Unit tests for LoRA adapters over frozen bases (QLoRA configuration).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "nn/lora.hpp"
#include "tensor/ops.hpp"

namespace ftsim {
namespace {

LoRALinear
makeQlora(Rng& rng, std::size_t in = 16, std::size_t out = 8,
          std::size_t rank = 4)
{
    return LoRALinear(std::make_unique<QuantLinear>(in, out, rng), rank,
                      2.0 * static_cast<Scalar>(rank), rng);
}

TEST(LoRALinear, StartsAsExactNoOp)
{
    // B is zero-initialized, so the adapter contributes nothing at init.
    Rng rng(1);
    Tensor w = Tensor::randn({8, 16}, rng, 0.1);
    auto base = std::make_unique<QuantLinear>(w);
    Tensor base_out;
    {
        Tensor x = Tensor::randn({3, 16}, rng);
        base_out = base->forward(x).detach();
        LoRALinear lora(std::move(base), 4, 8.0, rng);
        Tensor y = lora.forward(x);
        for (std::size_t i = 0; i < y.numel(); ++i)
            EXPECT_DOUBLE_EQ(y.data()[i], base_out.data()[i]);
    }
}

TEST(LoRALinear, OnlyAdaptersAreTrainable)
{
    Rng rng(2);
    LoRALinear lora = makeQlora(rng);
    // A [4, 16] + B [8, 4] = 96 trainable.
    EXPECT_EQ(lora.numTrainableParameters(), 96u);
    auto trainable = lora.trainableParameters();
    EXPECT_EQ(trainable.size(), 2u);
}

TEST(LoRALinear, GradientsReachAdaptersOnly)
{
    Rng rng(3);
    LoRALinear lora = makeQlora(rng);
    Tensor x = Tensor::randn({2, 16}, rng);
    sumAll(mul(lora.forward(x), lora.forward(x))).backward();
    EXPECT_TRUE(lora.loraA().hasGrad());
    EXPECT_TRUE(lora.loraB().hasGrad());
    // B was zero at init, so after one backward dA must be zero while
    // dB is generally nonzero (dL/dB = g down^T).
    bool b_nonzero = false;
    for (Scalar g : lora.loraB().grad())
        b_nonzero |= g != 0.0;
    EXPECT_TRUE(b_nonzero);
}

TEST(LoRALinear, TrainingChangesOutput)
{
    Rng rng(4);
    LoRALinear lora = makeQlora(rng);
    Tensor x = Tensor::randn({2, 16}, rng);
    Tensor before = lora.forward(x).detach();

    // A couple of SGD steps on sum of squares.
    for (int iter = 0; iter < 3; ++iter) {
        lora.zeroGrad();
        Tensor y = lora.forward(x);
        sumAll(mul(y, y)).backward();
        for (auto& p : lora.trainableParameters())
            for (std::size_t i = 0; i < p.numel(); ++i)
                p.data()[i] -= 0.05 * p.grad()[i];
    }
    Tensor after = lora.forward(x).detach();
    double diff = 0.0;
    for (std::size_t i = 0; i < before.numel(); ++i)
        diff += std::abs(after.data()[i] - before.data()[i]);
    EXPECT_GT(diff, 0.0);
}

TEST(LoRALinear, DenseBaseAlsoWorks)
{
    Rng rng(5);
    LoRALinear lora(std::make_unique<DenseLinear>(6, 3, rng), 2, 4.0,
                    rng);
    // Dense base is frozen by the adapter: only A [2,6] + B [3,2].
    EXPECT_EQ(lora.numTrainableParameters(), 2u * 6u + 3u * 2u);
    EXPECT_EQ(lora.inDim(), 6u);
    EXPECT_EQ(lora.outDim(), 3u);
}

TEST(LoRALinear, InvalidConstruction)
{
    Rng rng(6);
    EXPECT_THROW(
        LoRALinear(std::make_unique<DenseLinear>(4, 4, rng), 0, 1.0, rng),
        FatalError);
    EXPECT_THROW(LoRALinear(nullptr, 4, 8.0, rng), FatalError);
}

}  // namespace
}  // namespace ftsim
