/**
 * @file
 * Unit tests for Linear, Embedding, and RMSNorm layers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "nn/layers.hpp"
#include "tensor/ops.hpp"

namespace ftsim {
namespace {

TEST(Linear, ShapesAndRegistry)
{
    Rng rng(1);
    Linear fc(6, 4, rng, /*with_bias=*/true);
    EXPECT_EQ(fc.inDim(), 6u);
    EXPECT_EQ(fc.outDim(), 4u);
    EXPECT_EQ(fc.numParameters(), 6u * 4u + 4u);

    Tensor x = Tensor::randn({3, 6}, rng);
    Tensor y = fc.forward(x);
    EXPECT_EQ(y.shape(), Shape({3, 4}));
}

TEST(Linear, NoBiasVariant)
{
    Rng rng(2);
    Linear fc(6, 4, rng);
    EXPECT_FALSE(fc.bias().defined());
    EXPECT_EQ(fc.numParameters(), 24u);
}

TEST(Linear, ThreeDInput)
{
    Rng rng(3);
    Linear fc(6, 4, rng);
    Tensor x = Tensor::randn({2, 3, 6}, rng);
    EXPECT_EQ(fc.forward(x).shape(), Shape({2, 3, 4}));
}

TEST(Linear, InitializationScale)
{
    // Kaiming-uniform: |w| <= 1/sqrt(in_dim).
    Rng rng(4);
    Linear fc(64, 32, rng);
    const double bound = 1.0 / std::sqrt(64.0);
    for (Scalar w : fc.weight().data())
        EXPECT_LE(std::abs(w), bound);
}

TEST(Linear, ZeroDimIsFatal)
{
    Rng rng(5);
    EXPECT_THROW(Linear(0, 4, rng), FatalError);
    EXPECT_THROW(Linear(4, 0, rng), FatalError);
}

TEST(Embedding, LookupShape)
{
    Rng rng(6);
    Embedding emb(10, 4, rng);
    Tensor out = emb.forward({1, 2, 3, 4, 5, 6}, {2, 3});
    EXPECT_EQ(out.shape(), Shape({2, 3, 4}));
    EXPECT_EQ(emb.numParameters(), 40u);
}

TEST(Embedding, GradientFlowsToTable)
{
    Rng rng(7);
    Embedding emb(10, 4, rng);
    sumAll(emb.forward({3, 3}, {2})).backward();
    // Row 3 accumulated two gradient contributions; row 0 none.
    EXPECT_DOUBLE_EQ(emb.table().grad()[3 * 4], 2.0);
    EXPECT_DOUBLE_EQ(emb.table().grad()[0], 0.0);
}

TEST(RMSNormLayer, UnitOutputScale)
{
    Rng rng(8);
    RMSNorm norm(8);
    Tensor x = Tensor::randn({4, 8}, rng, 5.0);  // Large input scale.
    Tensor y = norm.forward(x);
    // Each row of the output has RMS ~= 1 with the unit gain init.
    for (std::size_t r = 0; r < 4; ++r) {
        double ss = 0.0;
        for (std::size_t c = 0; c < 8; ++c)
            ss += y.at({r, c}) * y.at({r, c});
        EXPECT_NEAR(std::sqrt(ss / 8.0), 1.0, 1e-6);
    }
}

TEST(RMSNormLayer, GainIsTrainable)
{
    RMSNorm norm(4);
    EXPECT_EQ(norm.numTrainableParameters(), 4u);
    Tensor x = Tensor::full({1, 4}, 2.0);
    sumAll(norm.forward(x)).backward();
    EXPECT_TRUE(norm.parameters()[0].hasGrad());
}

}  // namespace
}  // namespace ftsim
