/**
 * @file
 * Unit tests for Eq. 2 (the throughput model).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "core/throughput_model.hpp"

namespace ftsim {
namespace {

TEST(ThroughputModelTest, InterceptIsDenseBatchOneThroughput)
{
    // The paper's stated property of C4.
    ThroughputModel model(1.5, 0.5, 0.3);
    EXPECT_DOUBLE_EQ(model.predict(1.0, 1.0), 0.3);
}

TEST(ThroughputModelTest, LogarithmicGrowth)
{
    ThroughputModel model(1.5, 0.5, 0.3);
    const double q1 = model.predict(1.0, 1.0);
    const double q2 = model.predict(2.0, 1.0);
    const double q4 = model.predict(4.0, 1.0);
    // Equal increments per doubling (definition of log growth).
    EXPECT_NEAR(q2 - q1, q4 - q2, 1e-12);
    EXPECT_GT(q2, q1);
}

TEST(ThroughputModelTest, SparsityShiftsCurveUp)
{
    // Sparse (s = 0.25) throughput exceeds dense at equal batch when
    // C2, C3 > 0 — the Fig. 8 observation.
    ThroughputModel model(1.5, 0.5, 0.3);
    EXPECT_GT(model.predict(4.0, 0.25), model.predict(4.0, 1.0));
}

TEST(ThroughputModelTest, C3AttenuatesSparsityEffect)
{
    ThroughputModel strong(1.5, 1.0, 0.3);
    ThroughputModel weak(1.5, 0.1, 0.3);
    const double gap_strong =
        strong.predict(4.0, 0.25) - strong.predict(4.0, 1.0);
    const double gap_weak =
        weak.predict(4.0, 0.25) - weak.predict(4.0, 1.0);
    EXPECT_GT(gap_strong, gap_weak);
}

TEST(ThroughputModelTest, FitRecoversSyntheticCoefficients)
{
    ThroughputModel truth(1.7, 0.6, 0.4);
    std::vector<ThroughputObservation> data;
    for (double b = 1.0; b <= 20.0; b += 1.0)
        for (double s : {0.25, 1.0})
            data.push_back({b, s, truth.predict(b, s)});
    ThroughputModel fitted = ThroughputModel::fit(data);
    EXPECT_NEAR(fitted.c2(), 1.7, 1e-4);
    EXPECT_NEAR(fitted.c3(), 0.6, 1e-4);
    EXPECT_NEAR(fitted.c4(), 0.4, 1e-4);
    EXPECT_LT(fitted.rmse(data), 1e-6);
}

TEST(ThroughputModelTest, FitToleratesSaturatingData)
{
    // Data from b/(a+c*b) (the true saturating law) fitted by the log
    // model: the paper's claim is RMSE below ~0.8 — check the fit is in
    // that ballpark on a saturating curve spanning 0.3..1.7 qps.
    std::vector<ThroughputObservation> data;
    for (double b = 1.0; b <= 8.0; b += 1.0) {
        double qps = b / (2.5 + 0.45 * b);
        data.push_back({b, 0.25, qps});
    }
    ThroughputModel fitted = ThroughputModel::fit(data);
    EXPECT_LT(fitted.rmse(data), 0.1);
}

TEST(ThroughputModelTest, InvalidInputsAreFatal)
{
    ThroughputModel model(1.0, 0.5, 0.0);
    EXPECT_THROW(model.predict(0.0, 1.0), FatalError);
    EXPECT_THROW(model.predict(1.0, 0.0), FatalError);
    EXPECT_THROW(model.predict(1.0, 1.5), FatalError);
    EXPECT_THROW(ThroughputModel::fit({{1.0, 1.0, 0.5}}), FatalError);
}

TEST(ThroughputModelTest, RmseOfPerfectFitIsZero)
{
    ThroughputModel model(2.0, 0.3, 1.0);
    std::vector<ThroughputObservation> data = {
        {1.0, 1.0, model.predict(1.0, 1.0)},
        {4.0, 0.25, model.predict(4.0, 0.25)},
        {8.0, 1.0, model.predict(8.0, 1.0)},
    };
    EXPECT_NEAR(model.rmse(data), 0.0, 1e-12);
}

}  // namespace
}  // namespace ftsim
