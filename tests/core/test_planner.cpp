/**
 * @file
 * Tests for the Planner facade: Result error paths, memoization
 * semantics (the costTable + report dedup guarantee), parallel fan-out
 * equivalence, and agreement with the legacy pipeline shims.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "core/planner.hpp"

namespace ftsim {
namespace {

GpuSpec
tooSmallGpu()
{
    GpuSpec gpu = GpuSpec::a40();
    gpu.memGB = 24.0;  // Mixtral cannot fit even at batch 1.
    return gpu;
}

TEST(Planner, MaxBatchMatchesMemoryModel)
{
    Planner planner(Scenario::gsMath());
    Result<int> mbs = planner.maxBatch(GpuSpec::a40());
    ASSERT_TRUE(mbs.ok());
    EXPECT_EQ(mbs.value(),
              MemoryModel::maxBatchSize(ModelSpec::mixtral8x7b(),
                                        GpuSpec::a40(), 148, true));
}

TEST(Planner, MemorySucceedsEvenWhenModelDoesNotFit)
{
    Planner planner(Scenario::gsMath());
    Result<MemoryBreakdown> mem = planner.memory(tooSmallGpu());
    ASSERT_TRUE(mem.ok());
    EXPECT_LT(mem.value().maxBatchSize, 1);
}

TEST(Planner, DoesNotFitAtBatchOneIsAnError)
{
    Planner planner(Scenario::gsMath());
    const GpuSpec gpu = tooSmallGpu();
    EXPECT_EQ(planner.maxBatch(gpu).code(), ErrorCode::DoesNotFit);
    EXPECT_EQ(planner.profile(gpu).code(), ErrorCode::DoesNotFit);
    EXPECT_EQ(planner.throughput(gpu).code(), ErrorCode::DoesNotFit);
    EXPECT_EQ(planner.report(gpu).code(), ErrorCode::DoesNotFit);
}

TEST(Planner, UnknownGpuCostIsAnError)
{
    Planner planner(Scenario::gsMath());
    // A100-40GB fits but has no CUDO price.
    Result<CostEstimate> cost = planner.cost(GpuSpec::a100_40());
    ASSERT_FALSE(cost.ok());
    EXPECT_EQ(cost.code(), ErrorCode::UnknownGpu);
}

TEST(Planner, InvalidScenarioFailsEveryQuery)
{
    Planner planner(Scenario{}.withEpochs(0.0));
    EXPECT_EQ(planner.maxBatch(GpuSpec::a40()).code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(planner.costTable(GpuSpec::paperGpus()).code(),
              ErrorCode::InvalidArgument);
}

TEST(Planner, ProfileAtRejectsBatchZero)
{
    Planner planner(Scenario::gsMath());
    EXPECT_EQ(planner.profileAt(GpuSpec::a40(), 0).code(),
              ErrorCode::InvalidArgument);
}

TEST(Planner, EmptyGpuListIsEmptySweep)
{
    Planner planner(Scenario::gsMath());
    EXPECT_EQ(planner.costTable({}).code(), ErrorCode::EmptySweep);
    EXPECT_EQ(planner.batchSizeSweep({}, {148}).code(),
              ErrorCode::EmptySweep);
    EXPECT_EQ(planner.batchSizeSweep(GpuSpec::paperGpus(), {}).code(),
              ErrorCode::EmptySweep);
}

TEST(Planner, NoViablePlanWhenNothingFits)
{
    CloudCatalog catalog;
    catalog.add({"X", "A40", 0.79});  // Priced, but 24 GB is too small.
    Planner planner(Scenario::gsMath(), catalog);
    Result<std::vector<CostRow>> rows = planner.costTable({tooSmallGpu()});
    ASSERT_FALSE(rows.ok());
    EXPECT_EQ(rows.code(), ErrorCode::NoViablePlan);
}

TEST(Planner, StepProfileIsCachedAcrossQueries)
{
    Planner planner(Scenario::gsMath());
    PlannerStats before = planner.stats();
    EXPECT_EQ(before.stepsSimulated, 0u);

    ASSERT_TRUE(planner.profile(GpuSpec::a40()).ok());
    PlannerStats first = planner.stats();
    EXPECT_EQ(first.stepCacheMisses, 1u);
    EXPECT_EQ(first.stepsSimulated, 1u);

    // Same query again: answered from cache, nothing re-simulated.
    ASSERT_TRUE(planner.profile(GpuSpec::a40()).ok());
    ASSERT_TRUE(planner.throughput(GpuSpec::a40()).ok());
    PlannerStats second = planner.stats();
    EXPECT_EQ(second.stepCacheMisses, 1u);
    EXPECT_EQ(second.stepsSimulated, 1u);
    EXPECT_GE(second.stepCacheHits, first.stepCacheHits + 2);
}

TEST(Planner, CostTablePlusReportPerformsNoDuplicateSimulations)
{
    // The acceptance guarantee: Table IV -> report -> sweep on one
    // Scenario never simulates the same (GPU, config) twice.
    Planner planner(Scenario::gsMath());

    auto rows = planner.costTable(GpuSpec::paperGpus());
    ASSERT_TRUE(rows.ok());
    PlannerStats after_table = planner.stats();
    // Every simulation so far was a distinct configuration...
    EXPECT_EQ(after_table.stepsSimulated, after_table.stepCacheMisses);

    auto report = planner.report(GpuSpec::a40());
    ASSERT_TRUE(report.ok());
    PlannerStats after_report = planner.stats();
    EXPECT_EQ(after_report.stepsSimulated, after_report.stepCacheMisses);
    // ...and the report found the cost table's max-batch profile in
    // the cache instead of re-simulating it.
    EXPECT_GT(after_report.stepCacheHits, after_table.stepCacheHits);

    // A second full round is answered entirely from the cache.
    ASSERT_TRUE(planner.costTable(GpuSpec::paperGpus()).ok());
    ASSERT_TRUE(planner.report(GpuSpec::a40()).ok());
    ASSERT_TRUE(planner.fitThroughput(GpuSpec::a40()).ok());
    PlannerStats final_stats = planner.stats();
    EXPECT_EQ(final_stats.stepsSimulated, after_report.stepsSimulated);
    EXPECT_EQ(final_stats.stepCacheMisses, after_report.stepCacheMisses);
}

TEST(Planner, ParallelCostTableMatchesSerial)
{
    Planner serial(Scenario::gsMath());
    Planner parallel(Scenario::gsMath());
    parallel.setParallelism(4);

    auto serial_rows = serial.costTable(GpuSpec::paperGpus());
    auto parallel_rows = parallel.costTable(GpuSpec::paperGpus());
    ASSERT_TRUE(serial_rows.ok());
    ASSERT_TRUE(parallel_rows.ok());
    ASSERT_EQ(serial_rows.value().size(), parallel_rows.value().size());
    for (std::size_t i = 0; i < serial_rows.value().size(); ++i) {
        const CostRow& s = serial_rows.value()[i];
        const CostRow& p = parallel_rows.value()[i];
        EXPECT_EQ(s.gpuName, p.gpuName);
        EXPECT_EQ(s.maxBatchSize, p.maxBatchSize);
        EXPECT_DOUBLE_EQ(s.throughputQps, p.throughputQps);
        EXPECT_DOUBLE_EQ(s.totalDollars, p.totalDollars);
    }
    // Threading must not defeat the cache either.
    PlannerStats stats = parallel.stats();
    EXPECT_EQ(stats.stepsSimulated, stats.stepCacheMisses);
}

TEST(Planner, ProfileMatchesReferenceSimulatorBitExact)
{
    // The acceptance bar for the compiled-plan rewrite: every simulated
    // second/QPS the planner reports is unchanged from the retained
    // pre-optimization path, to the last bit.
    Planner planner(Scenario::gsMath());
    Result<StepProfile> p = planner.profileAt(GpuSpec::a40(), 4);
    ASSERT_TRUE(p.ok());

    const Scenario sc = Scenario::gsMath();
    FineTuneSim sim(sc.model, GpuSpec::a40(), sc.calibration);
    RunConfig config;
    config.batchSize = 4;
    config.seqLen = sim.paddedSeqLen(sc.medianSeqLen, 4, sc.lengthSigma);
    config.sparse = sc.sparse;
    const StepProfile ref = sim.profileStepReference(config);

    EXPECT_EQ(p.value().forwardSeconds, ref.forwardSeconds);
    EXPECT_EQ(p.value().backwardSeconds, ref.backwardSeconds);
    EXPECT_EQ(p.value().optimizerSeconds, ref.optimizerSeconds);
    EXPECT_EQ(p.value().stepSeconds, ref.stepSeconds);
    EXPECT_EQ(p.value().throughputQps, ref.throughputQps);
}

TEST(Planner, ConcurrentSameConfigSimulatesExactlyOnce)
{
    // Once-semantics of the lock-free step cache: a thundering herd on
    // one (GPU, config) pair performs one simulation; everyone else
    // waits on the shared future and reads the same answer.
    Planner planner(Scenario::gsMath());
    constexpr int kThreads = 16;
    std::vector<StepProfile> profiles(kThreads);
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([&planner, &profiles, t] {
            Result<StepProfile> p = planner.profileAt(GpuSpec::a40(), 2);
            ASSERT_TRUE(p.ok());
            profiles[t] = p.value();
        });
    for (auto& thread : pool)
        thread.join();

    PlannerStats stats = planner.stats();
    EXPECT_EQ(stats.stepCacheMisses, 1u);
    EXPECT_EQ(stats.stepsSimulated, 1u);
    EXPECT_EQ(stats.stepCacheHits,
              static_cast<std::uint64_t>(kThreads - 1));
    for (int t = 1; t < kThreads; ++t) {
        EXPECT_EQ(profiles[t].stepSeconds, profiles[0].stepSeconds);
        EXPECT_EQ(profiles[t].throughputQps, profiles[0].throughputQps);
    }
}

TEST(Planner, ConcurrentSameGpuStressKeepsCacheInvariants)
{
    // Mixed same-GPU load from many threads: distinct configs simulate
    // exactly once each (stepsSimulated == stepCacheMisses), and the
    // shard no longer serializes whole simulations behind its mutex.
    Planner planner(Scenario::gsMath());
    constexpr int kThreads = 8;
    constexpr int kRounds = 4;
    constexpr std::size_t kDistinctBatches = 5;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([&planner, t] {
            for (int r = 0; r < kRounds; ++r) {
                const std::size_t batch =
                    1 + static_cast<std::size_t>(t + r) %
                            kDistinctBatches;
                ASSERT_TRUE(
                    planner.profileAt(GpuSpec::a40(), batch).ok());
                ASSERT_TRUE(planner.throughput(GpuSpec::a40()).ok());
            }
        });
    for (auto& thread : pool)
        thread.join();

    PlannerStats stats = planner.stats();
    EXPECT_EQ(stats.stepsSimulated, stats.stepCacheMisses);
    // At most one miss per distinct configuration: the 5 explicit
    // batches plus the max-batch profile behind throughput().
    EXPECT_LE(stats.stepCacheMisses, kDistinctBatches + 1);
    EXPECT_EQ(stats.stepCacheHits + stats.stepCacheMisses,
              static_cast<std::uint64_t>(kThreads * kRounds * 2));
}

TEST(Planner, ParallelObservationsMatchSerialBitExact)
{
    Planner serial(Scenario::gsMath());
    Planner parallel(Scenario::gsMath());
    parallel.setParallelism(8);
    auto s = serial.throughputObservations(GpuSpec::a40());
    auto p = parallel.throughputObservations(GpuSpec::a40());
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(p.ok());
    ASSERT_EQ(s.value().size(), p.value().size());
    for (std::size_t i = 0; i < s.value().size(); ++i) {
        EXPECT_EQ(s.value()[i].batchSize, p.value()[i].batchSize);
        EXPECT_EQ(s.value()[i].sparsity, p.value()[i].sparsity);
        EXPECT_EQ(s.value()[i].qps, p.value()[i].qps);
    }
    // The parallel sweep must not defeat the cache either.
    PlannerStats stats = parallel.stats();
    EXPECT_EQ(stats.stepsSimulated, stats.stepCacheMisses);
}

TEST(Planner, CheapestPlanIsH100)
{
    // Table IV headline: H100 wins end-to-end despite the highest rate.
    Planner planner(Scenario::gsMath());
    Result<CostRow> best = planner.cheapestPlan(GpuSpec::paperGpus());
    ASSERT_TRUE(best.ok());
    EXPECT_EQ(best.value().gpuName, "H100");
}

TEST(Planner, AgreesWithLegacyPipelineShims)
{
    Planner planner(Scenario::gsMath());
    auto planner_rows = planner.costTable(GpuSpec::paperGpus());
    ASSERT_TRUE(planner_rows.ok());
    auto legacy_rows = ExperimentPipeline::costTable(
        ModelSpec::mixtral8x7b(), GpuSpec::paperGpus(),
        CloudCatalog::cudoCompute(), 148, true, 14000.0, 10.0);
    ASSERT_EQ(planner_rows.value().size(), legacy_rows.size());
    for (std::size_t i = 0; i < legacy_rows.size(); ++i) {
        EXPECT_EQ(planner_rows.value()[i].gpuName,
                  legacy_rows[i].gpuName);
        EXPECT_DOUBLE_EQ(planner_rows.value()[i].totalDollars,
                         legacy_rows[i].totalDollars);
    }
}

TEST(Planner, FitThroughputIsCached)
{
    Planner planner(Scenario::commonsense15k());
    Result<ThroughputFit> first = planner.fitThroughput(GpuSpec::a40());
    ASSERT_TRUE(first.ok());
    const std::uint64_t sims = planner.stats().stepsSimulated;
    EXPECT_GT(sims, 0u);

    Result<ThroughputFit> second = planner.fitThroughput(GpuSpec::a40());
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(planner.stats().stepsSimulated, sims);
    EXPECT_DOUBLE_EQ(first.value().model.c2(), second.value().model.c2());
    EXPECT_DOUBLE_EQ(first.value().model.c4(), second.value().model.c4());
}

TEST(Planner, ResetStatsStartsAFreshWindow)
{
    // Serving stats are per-window deltas: after resetStats() the
    // counters read zero, cached answers stay cached (hits count in
    // the new window, no re-simulation), and new configs count from
    // the reset point.
    Planner planner(Scenario::gsMath());
    ASSERT_TRUE(planner.profile(GpuSpec::a40()).ok());
    ASSERT_TRUE(planner.profileAt(GpuSpec::a40(), 2).ok());
    PlannerStats warmup = planner.stats();
    EXPECT_EQ(warmup.stepCacheMisses, 2u);
    EXPECT_EQ(warmup.stepsSimulated, 2u);

    planner.resetStats();
    PlannerStats zero = planner.stats();
    EXPECT_EQ(zero.stepCacheHits, 0u);
    EXPECT_EQ(zero.stepCacheMisses, 0u);
    EXPECT_EQ(zero.stepsSimulated, 0u);

    ASSERT_TRUE(planner.profile(GpuSpec::a40()).ok());   // Cached.
    ASSERT_TRUE(planner.profileAt(GpuSpec::a40(), 3).ok());  // New.
    PlannerStats window = planner.stats();
    EXPECT_EQ(window.stepCacheHits, 1u);
    EXPECT_EQ(window.stepCacheMisses, 1u);
    EXPECT_EQ(window.stepsSimulated, 1u);
}

TEST(Planner, SharedRegistryKeepsAnswersBitExact)
{
    auto registry = std::make_shared<PlanRegistry>();
    Planner shared_a(Scenario::gsMath(), CloudCatalog::cudoCompute(),
                     registry);
    Planner shared_b(Scenario::commonsense15k(),
                     CloudCatalog::cudoCompute(), registry);
    Planner lone(Scenario::gsMath());

    Result<StepProfile> a = shared_a.profileAt(GpuSpec::a40(), 4);
    Result<StepProfile> reference = lone.profileAt(GpuSpec::a40(), 4);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(a.value().stepSeconds, reference.value().stepSeconds);
    EXPECT_EQ(a.value().throughputQps,
              reference.value().throughputQps);

    // The second planner's builder reuses the registry's plan.
    ASSERT_TRUE(shared_b.profileAt(GpuSpec::a40(), 4).ok());
    EXPECT_EQ(registry->plansCompiled(), 1u);
    EXPECT_GE(registry->planHits(), 1u);
}

TEST(Planner, StepCacheShardEvictionRecomputesIdentically)
{
    // A capacity-1 shard (setStepCacheCapacity) churns on alternating
    // configs: every probe is a miss and a fresh simulation, yet the
    // recomputed profile is bit-identical to the first — the LRU bound
    // trades recomputation for memory, never correctness.
    Planner bounded(Scenario::gsMath());
    bounded.setStepCacheCapacity(1);

    Result<StepProfile> first = bounded.profileAt(GpuSpec::a40(), 1);
    ASSERT_TRUE(first.ok());
    Result<StepProfile> other = bounded.profileAt(GpuSpec::a40(), 2);
    ASSERT_TRUE(other.ok());  // Evicts batch-1's entry.
    Result<StepProfile> again = bounded.profileAt(GpuSpec::a40(), 1);
    ASSERT_TRUE(again.ok());  // Recomputes, evicting batch-2's.

    EXPECT_EQ(again.value().stepSeconds, first.value().stepSeconds);
    EXPECT_EQ(again.value().throughputQps,
              first.value().throughputQps);

    const PlannerStats stats = bounded.stats();
    EXPECT_EQ(stats.stepCacheMisses, 3u);  // No hit survived the churn.
    EXPECT_EQ(stats.stepCacheHits, 0u);
    EXPECT_EQ(stats.stepsSimulated, 3u);
    EXPECT_EQ(stats.stepCacheEvictions, 2u);

    // The unbounded default still memoizes: same probes, one recompute
    // fewer.
    Planner unbounded(Scenario::gsMath());
    ASSERT_TRUE(unbounded.profileAt(GpuSpec::a40(), 1).ok());
    ASSERT_TRUE(unbounded.profileAt(GpuSpec::a40(), 2).ok());
    ASSERT_TRUE(unbounded.profileAt(GpuSpec::a40(), 1).ok());
    EXPECT_EQ(unbounded.stats().stepCacheMisses, 2u);
    EXPECT_EQ(unbounded.stats().stepCacheHits, 1u);
    EXPECT_EQ(unbounded.stats().stepCacheEvictions, 0u);

    // And the bounded planner's answers match the unbounded one's.
    EXPECT_EQ(first.value().stepSeconds,
              unbounded.profileAt(GpuSpec::a40(), 1)
                  .value()
                  .stepSeconds);
}

TEST(Planner, TweakedGpuSpecDoesNotAliasThePreset)
{
    // Cache identity covers the full spec, not just the name: an "A40"
    // with a different capacity must get its own max batch.
    Planner planner(Scenario::gsMath());
    GpuSpec big_a40 = GpuSpec::a40();
    big_a40.memGB = 80.0;
    Result<int> stock = planner.maxBatch(GpuSpec::a40());
    Result<int> big = planner.maxBatch(big_a40);
    ASSERT_TRUE(stock.ok());
    ASSERT_TRUE(big.ok());
    EXPECT_GT(big.value(), stock.value());
}

}  // namespace
}  // namespace ftsim
