/**
 * @file
 * Tests for the experiment pipeline: the Fig. 13-15 / Table IV recipes.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include <algorithm>

#include "core/pipeline.hpp"

namespace ftsim {
namespace {

TEST(Pipeline, BatchSizeDataCoversSweep)
{
    auto data = ExperimentPipeline::collectBatchSizeData(
        ModelSpec::mixtral8x7b(), GpuSpec::paperGpus(), {79, 174});
    // 4 GPUs x 2 seqs x {dense, sparse}.
    EXPECT_EQ(data.size(), 16u);
    for (const auto& obs : data) {
        EXPECT_GT(obs.gpuMemGB, 0.0);
        EXPECT_GE(obs.maxBatch, 0);
    }
}

TEST(Pipeline, BatchSizeFitIsAccurate)
{
    // Fig. 13: Eq. 1 fitted on the simulator's ground truth tracks it.
    BatchSizeFit fit = ExperimentPipeline::fitBatchSize(
        ModelSpec::mixtral8x7b(), GpuSpec::paperGpus(),
        {79, 128, 148, 174});
    EXPECT_LT(fit.rmse, 1.5);
    EXPECT_GT(fit.model.c0(), 0.0);
    EXPECT_GE(fit.model.c1(), 0.0);
    EXPECT_LE(fit.model.c1(), 1.0);
}

TEST(Pipeline, BatchSizeProjectionGrowsWithCapacity)
{
    // The Fig. 13 projection to hypothetical 100 / 120 GB GPUs.
    BatchSizeFit fit = ExperimentPipeline::fitBatchSize(
        ModelSpec::mixtral8x7b(), GpuSpec::paperGpus(), {148});
    const double model_mem =
        ModelSpec::mixtral8x7b().weightMemoryBytes() / 1e9;
    int at100 = fit.model.predict(100.0, model_mem, 148.0, 0.25);
    int at120 = fit.model.predict(120.0, model_mem, 148.0, 0.25);
    int at48 = fit.model.predict(48.0, model_mem, 148.0, 0.25);
    EXPECT_GT(at100, at48);
    EXPECT_GT(at120, at100);
}

TEST(Pipeline, ThroughputDataHasDenseAndSparse)
{
    auto data = ExperimentPipeline::collectThroughputData(
        ModelSpec::blackMamba2p8b(), GpuSpec::a40(), 79);
    bool dense = false, sparse = false;
    for (const auto& obs : data) {
        dense |= obs.sparsity == 1.0;
        sparse |= obs.sparsity == 0.25;
        EXPECT_GT(obs.qps, 0.0);
    }
    EXPECT_TRUE(dense);
    EXPECT_TRUE(sparse);
}

TEST(Pipeline, ThroughputFitMeetsPaperRmseBudget)
{
    // Fig. 14: the paper reports RMSE 0.02-0.79 across the four A40
    // combos, i.e. always below ~6% of the peak throughput. Hold this
    // reproduction to the same *relative* bar (its absolute qps scale
    // differs from the authors' testbed).
    for (bool mixtral : {true, false}) {
        ModelSpec spec = mixtral ? ModelSpec::mixtral8x7b()
                                 : ModelSpec::blackMamba2p8b();
        for (std::size_t seq : {79u, 174u}) {
            const double sigma = seq == 79 ? 0.45 : 0.40;
            ThroughputFit fit = ExperimentPipeline::fitThroughput(
                spec, GpuSpec::a40(), seq, {}, sigma);
            double max_qps = 0.0;
            for (const auto& obs : fit.observations)
                max_qps = std::max(max_qps, obs.qps);
            EXPECT_LT(fit.rmse, std::max(0.8, 0.08 * max_qps))
                << spec.name << " seq " << seq;
        }
    }
}

TEST(Pipeline, ThroughputFitAcrossGpus)
{
    // Fig. 15: Mixtral on the CS dataset (median 79), validated on
    // A100-40GB, A100-80GB, and H100 — paper RMSE <= 0.55.
    for (const GpuSpec& gpu :
         {GpuSpec::a100_40(), GpuSpec::a100_80(), GpuSpec::h100_80()}) {
        ThroughputFit fit = ExperimentPipeline::fitThroughput(
            ModelSpec::mixtral8x7b(), gpu, 79, {}, 0.45);
        double max_qps = 0.0;
        for (const auto& obs : fit.observations)
            max_qps = std::max(max_qps, obs.qps);
        EXPECT_LT(fit.rmse, std::max(0.6, 0.08 * max_qps)) << gpu.name;
    }
}

TEST(Pipeline, CostTableRanksH100Cheapest)
{
    // Table IV: H100 wins end-to-end cost despite the highest rate.
    auto rows = ExperimentPipeline::costTable(
        ModelSpec::mixtral8x7b(), GpuSpec::paperGpus(),
        CloudCatalog::cudoCompute(), 148, true, 14000.0, 10.0);
    ASSERT_GE(rows.size(), 3u);
    const CostRow* h100 = nullptr;
    for (const auto& row : rows)
        if (row.gpuName == "H100")
            h100 = &row;
    ASSERT_NE(h100, nullptr);
    for (const auto& row : rows)
        EXPECT_LE(h100->totalDollars, row.totalDollars) << row.gpuName;
}

TEST(Pipeline, CostTableSkipsUnpricedGpus)
{
    // A100-40GB is not in the CUDO list; it must be absent.
    auto rows = ExperimentPipeline::costTable(
        ModelSpec::mixtral8x7b(), GpuSpec::paperGpus(),
        CloudCatalog::cudoCompute(), 148, true, 14000.0, 10.0);
    for (const auto& row : rows)
        EXPECT_NE(row.gpuName, "A100-40GB");
}

TEST(Pipeline, EmptySweepIsFatal)
{
    EXPECT_THROW(ExperimentPipeline::collectBatchSizeData(
                     ModelSpec::mixtral8x7b(), {}, {128}),
                 FatalError);
}

}  // namespace
}  // namespace ftsim
