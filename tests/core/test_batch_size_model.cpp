/**
 * @file
 * Unit tests for Eq. 1 (the maximum-batch-size model).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hpp"
#include "core/batch_size_model.hpp"

namespace ftsim {
namespace {

TEST(MaxBatchModelTest, PredictionFollowsEqOne)
{
    MaxBatchModel model(80.0, 0.9);
    // floor(C0 * (48 - 23.35) / (128 * (0.1 + 0.9 * 0.25))).
    const double expected =
        std::floor(80.0 * (48.0 - 23.35) / (128.0 * 0.325));
    EXPECT_EQ(model.predict(48.0, 23.35, 128.0, 0.25),
              static_cast<int>(expected));
}

TEST(MaxBatchModelTest, MoreMemoryMoreBatch)
{
    MaxBatchModel model(80.0, 0.9);
    int prev = 0;
    for (double mem : {40.0, 48.0, 80.0, 100.0, 120.0}) {
        int b = model.predict(mem, 23.35, 128.0, 0.25);
        EXPECT_GE(b, prev);
        prev = b;
    }
}

TEST(MaxBatchModelTest, SparsityIncreasesBatch)
{
    MaxBatchModel model(80.0, 0.9);
    EXPECT_GT(model.predict(48.0, 23.35, 128.0, 0.25),
              model.predict(48.0, 23.35, 128.0, 1.0));
}

TEST(MaxBatchModelTest, LongerSequenceDecreasesBatch)
{
    MaxBatchModel model(80.0, 0.9);
    EXPECT_LT(model.predict(48.0, 23.35, 512.0, 0.25),
              model.predict(48.0, 23.35, 128.0, 0.25));
}

TEST(MaxBatchModelTest, OversizedModelGivesZero)
{
    MaxBatchModel model(80.0, 0.9);
    EXPECT_EQ(model.predict(24.0, 30.0, 128.0, 0.25), 0);
}

TEST(MaxBatchModelTest, FitRecoversSyntheticCoefficients)
{
    // Generate ground truth from known (C0, C1) and refit.
    MaxBatchModel truth(64.0, 0.85);
    std::vector<BatchSizeObservation> data;
    for (double mem : {40.0, 48.0, 80.0}) {
        for (double seq : {79.0, 128.0, 174.0, 256.0}) {
            for (double s : {0.25, 1.0}) {
                BatchSizeObservation obs;
                obs.gpuMemGB = mem;
                obs.modelMemGB = 23.35;
                obs.seqLen = seq;
                obs.sparsity = s;
                obs.maxBatch = truth.predict(mem, 23.35, seq, s);
                data.push_back(obs);
            }
        }
    }
    MaxBatchModel fitted = MaxBatchModel::fit(data);
    // Floored objective: exact coefficient recovery is not identifiable,
    // but every prediction must match.
    EXPECT_LT(fitted.rmse(data), 0.8);
}

TEST(MaxBatchModelTest, FitHandlesNoisyObservations)
{
    MaxBatchModel truth(80.0, 0.9);
    std::vector<BatchSizeObservation> data;
    int flip = 0;
    for (double mem : {40.0, 48.0, 80.0, 100.0}) {
        for (double seq : {79.0, 174.0}) {
            for (double s : {0.25, 1.0}) {
                BatchSizeObservation obs;
                obs.gpuMemGB = mem;
                obs.modelMemGB = 23.35;
                obs.seqLen = seq;
                obs.sparsity = s;
                obs.maxBatch = truth.predict(mem, 23.35, seq, s) +
                               ((flip++ % 5 == 0) ? 1 : 0);  // +1 noise.
                data.push_back(obs);
            }
        }
    }
    MaxBatchModel fitted = MaxBatchModel::fit(data);
    EXPECT_LT(fitted.rmse(data), 1.5);
}

TEST(MaxBatchModelTest, InvalidCoefficientsAreFatal)
{
    EXPECT_THROW(MaxBatchModel(0.0, 0.5), FatalError);
    EXPECT_THROW(MaxBatchModel(10.0, 1.5), FatalError);
    EXPECT_THROW(MaxBatchModel(10.0, -0.1), FatalError);
}

TEST(MaxBatchModelTest, EmptyFitIsFatal)
{
    EXPECT_THROW(MaxBatchModel::fit({}), FatalError);
}

TEST(MaxBatchModelTest, ZeroSeqIsFatal)
{
    MaxBatchModel model(80.0, 0.9);
    EXPECT_THROW(model.predict(48.0, 23.35, 0.0, 0.25), FatalError);
}

}  // namespace
}  // namespace ftsim
