/**
 * @file
 * Unit tests for the cloud cost estimator (§V-C).
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/cost_model.hpp"

namespace ftsim {
namespace {

TEST(CloudCatalogTest, CudoRatesMatchPaper)
{
    CloudCatalog catalog = CloudCatalog::cudoCompute();
    EXPECT_DOUBLE_EQ(catalog.ratePerHour("A40"), 0.79);
    EXPECT_DOUBLE_EQ(catalog.ratePerHour("A100-80GB"), 1.67);
    EXPECT_DOUBLE_EQ(catalog.ratePerHour("H100"), 2.10);
}

TEST(CloudCatalogTest, UnknownGpuIsFatal)
{
    CloudCatalog catalog = CloudCatalog::cudoCompute();
    EXPECT_FALSE(catalog.has("TPUv5"));
    EXPECT_THROW(catalog.ratePerHour("TPUv5"), FatalError);
}

TEST(CloudCatalogTest, CheapestProviderWins)
{
    CloudCatalog catalog;
    catalog.add({"ProviderA", "A40", 1.00});
    catalog.add({"ProviderB", "A40", 0.60});
    EXPECT_DOUBLE_EQ(catalog.ratePerHour("A40"), 0.60);
}

TEST(CloudCatalogTest, InvalidOfferingIsFatal)
{
    CloudCatalog catalog;
    EXPECT_THROW(catalog.add({"X", "A40", 0.0}), FatalError);
    EXPECT_THROW(catalog.add({"X", "", 1.0}), FatalError);
}

TEST(CostEstimatorTest, ClosedFormCost)
{
    CostEstimator est(CloudCatalog::cudoCompute());
    // 1 qps, 3600 queries, 1 epoch -> exactly 1 GPU-hour on the A40.
    CostEstimate c = est.estimate("A40", 1.0, 3600.0, 1.0);
    EXPECT_NEAR(c.gpuHours, 1.0, 1e-12);
    EXPECT_NEAR(c.totalDollars, 0.79, 1e-12);
}

TEST(CostEstimatorTest, PaperTableIvMagnitudes)
{
    // Plugging the paper's own throughputs into the cost formula must
    // reproduce Table IV's dollar figures (14k queries, 10 epochs).
    CostEstimator est(CloudCatalog::cudoCompute());
    EXPECT_NEAR(est.estimate("A40", 1.01, 14000.0, 10.0).totalDollars,
                32.7, 2.5);
    EXPECT_NEAR(
        est.estimate("A100-80GB", 2.74, 14000.0, 10.0).totalDollars,
        25.4, 2.0);
    EXPECT_NEAR(est.estimate("H100", 4.90, 14000.0, 10.0).totalDollars,
                17.9, 2.0);
}

TEST(CostEstimatorTest, HigherThroughputIsCheaper)
{
    CostEstimator est(CloudCatalog::cudoCompute());
    double slow = est.estimate("A40", 1.0, 1e5, 10.0).totalDollars;
    double fast = est.estimate("A40", 2.0, 1e5, 10.0).totalDollars;
    EXPECT_NEAR(fast, slow / 2.0, 1e-9);
}

TEST(CostEstimatorTest, CheapestSelectsByTotalNotRate)
{
    // The paper's headline: H100 is the *cheapest* end-to-end despite
    // the highest hourly rate, because it is proportionally faster.
    CostEstimator est(CloudCatalog::cudoCompute());
    CostEstimate best = est.cheapest(
        {{"A40", 1.01}, {"A100-80GB", 2.74}, {"H100", 4.90}}, 14000.0,
        10.0);
    EXPECT_EQ(best.gpuName, "H100");
}

TEST(CostEstimatorTest, InvalidInputsAreFatal)
{
    CostEstimator est(CloudCatalog::cudoCompute());
    EXPECT_THROW(est.estimate("A40", 0.0, 1.0, 1.0), FatalError);
    EXPECT_THROW(est.estimate("A40", 1.0, 0.0, 1.0), FatalError);
    EXPECT_THROW(est.cheapest({}, 1.0, 1.0), FatalError);
}

TEST(CloudCatalogTest, WithRatePricesMissingGpus)
{
    // The serve extension point: price a GPU the CUDO list lacks
    // instead of failing the whole request with UnknownGpu.
    CloudCatalog catalog = CloudCatalog::cudoCompute()
                               .withRate("L40S", 1.05)
                               .withRate("A100-40GB", 1.20);
    ASSERT_TRUE(catalog.has("L40S"));
    Result<double> rate = catalog.rate("L40S");
    ASSERT_TRUE(rate.ok());
    EXPECT_DOUBLE_EQ(rate.value(), 1.05);
    // Built-in offerings are untouched.
    EXPECT_DOUBLE_EQ(catalog.rate("A40").value(), 0.79);
    // A second offering for a priced GPU: rate() keeps the cheapest.
    catalog.withRate("A40", 0.50);
    EXPECT_DOUBLE_EQ(catalog.rate("A40").value(), 0.50);
    // Estimators see the extension like any other offering.
    Result<CostEstimate> est = CostEstimator(catalog).tryEstimate(
        "L40S", 2.0, 14000.0, 10.0);
    ASSERT_TRUE(est.ok());
    EXPECT_DOUBLE_EQ(est.value().dollarsPerHour, 1.05);
}

TEST(CloudCatalogTest, WithRateRejectsBadInput)
{
    CloudCatalog catalog;
    EXPECT_THROW(catalog.withRate("L40S", 0.0), FatalError);
    EXPECT_THROW(catalog.withRate("", 1.0), FatalError);
}

TEST(CloudCatalogTest, FingerprintTracksOfferings)
{
    CloudCatalog a = CloudCatalog::cudoCompute();
    CloudCatalog b = CloudCatalog::cudoCompute();
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    b.withRate("L40S", 1.05);
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

}  // namespace
}  // namespace ftsim
