/**
 * @file
 * Tests for the Result<T> error type of the planning API.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/result.hpp"

namespace ftsim {
namespace {

TEST(Result, SuccessHoldsValue)
{
    Result<int> r = 42;
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(static_cast<bool>(r));
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(r.valueOr(-1), 42);
    EXPECT_EQ(r.valueOrThrow(), 42);
}

TEST(Result, FailureHoldsError)
{
    Result<int> r = Error{ErrorCode::UnknownGpu, "no price for TPUv5"};
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::UnknownGpu);
    EXPECT_EQ(r.error().message, "no price for TPUv5");
    EXPECT_EQ(r.valueOr(-1), -1);
}

TEST(Result, FailureFactory)
{
    auto r = Result<std::string>::failure(ErrorCode::DoesNotFit,
                                          "too big");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.code(), ErrorCode::DoesNotFit);
}

TEST(Result, ValueOrThrowRaisesFatalError)
{
    Result<int> r = Error{ErrorCode::EmptySweep, "empty sweep"};
    EXPECT_THROW(r.valueOrThrow(), FatalError);
    try {
        r.valueOrThrow();
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        // The thrown message carries code name and original text.
        EXPECT_NE(std::string(e.what()).find("EmptySweep"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("empty sweep"),
                  std::string::npos);
    }
}

TEST(Result, DescribePrefixesCodeName)
{
    Error e{ErrorCode::NoViablePlan, "nothing fits"};
    EXPECT_EQ(e.describe(), "NoViablePlan: nothing fits");
}

TEST(Result, EveryCodeHasAName)
{
    for (ErrorCode code :
         {ErrorCode::UnknownGpu, ErrorCode::DoesNotFit,
          ErrorCode::EmptySweep, ErrorCode::InvalidArgument,
          ErrorCode::NoViablePlan}) {
        EXPECT_STRNE(errorCodeName(code), "");
        EXPECT_STRNE(errorCodeName(code), "UnknownError");
    }
}

}  // namespace
}  // namespace ftsim
