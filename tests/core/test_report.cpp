/**
 * @file
 * Tests for the one-call characterization report.
 */

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "core/report.hpp"

namespace ftsim {
namespace {

TEST(Report, ContainsEverySection)
{
    ReportRequest request;  // Defaults: Mixtral on A40, GS-like dataset.
    std::string report = generateCharacterizationReport(request);
    for (const char* expected :
         {"# Fine-tuning characterization", "## Memory",
          "maximum batch size: 4", "## Step breakdown", "matmul",
          "## Throughput (Eq. 2)", "## Cost", "GPU-hours"}) {
        EXPECT_NE(report.find(expected), std::string::npos) << expected;
    }
}

TEST(Report, BlackMambaVariant)
{
    ReportRequest request;
    request.model = ModelSpec::blackMamba2p8b();
    request.medianSeqLen = 79;
    request.lengthSigma = 0.45;
    std::string report = generateCharacterizationReport(request);
    EXPECT_NE(report.find("BlackMamba-2.8B"), std::string::npos);
    EXPECT_NE(report.find("maximum batch size: 20"), std::string::npos);
}

TEST(Report, UnpricedGpuStillReports)
{
    ReportRequest request;
    request.model = ModelSpec::blackMamba2p8b();
    request.gpu = GpuSpec::a100_40();  // Not in the CUDO catalog.
    request.medianSeqLen = 79;
    std::string report = generateCharacterizationReport(request);
    EXPECT_NE(report.find("no price listed"), std::string::npos);
}

TEST(Report, OversizedModelIsFatal)
{
    ReportRequest request;
    request.gpu.memGB = 24.0;  // Mixtral cannot fit.
    EXPECT_THROW(generateCharacterizationReport(request), FatalError);
}

TEST(Report, DenseModeReportsSmallerBatch)
{
    ReportRequest sparse_req;
    ReportRequest dense_req;
    dense_req.sparse = false;
    std::string sparse_report =
        generateCharacterizationReport(sparse_req);
    std::string dense_report = generateCharacterizationReport(dense_req);
    EXPECT_NE(sparse_report.find("maximum batch size: 4"),
              std::string::npos);
    EXPECT_NE(dense_report.find("maximum batch size: 1"),
              std::string::npos);
}

}  // namespace
}  // namespace ftsim
