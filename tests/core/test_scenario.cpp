/**
 * @file
 * Tests for the Scenario value type: canonical defaults, presets,
 * fluent construction, and validation.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/scenario.hpp"

namespace ftsim {
namespace {

TEST(Scenario, DefaultsAreTheCanonicalConstants)
{
    Scenario s;
    EXPECT_EQ(s.medianSeqLen, Scenario::kDefaultMedianSeqLen);
    EXPECT_DOUBLE_EQ(s.lengthSigma, Scenario::kDefaultLengthSigma);
    EXPECT_DOUBLE_EQ(s.numQueries, Scenario::kDefaultNumQueries);
    EXPECT_DOUBLE_EQ(s.epochs, Scenario::kDefaultEpochs);
    EXPECT_TRUE(s.sparse);
    EXPECT_EQ(s.model.name, ModelSpec::mixtral8x7b().name);
}

TEST(Scenario, GsMathPresetEqualsDefaults)
{
    Scenario s = Scenario::gsMath();
    EXPECT_EQ(s.medianSeqLen, Scenario::kDefaultMedianSeqLen);
    EXPECT_DOUBLE_EQ(s.lengthSigma, Scenario::kDefaultLengthSigma);
    EXPECT_DOUBLE_EQ(s.numQueries, 14000.0);
    EXPECT_DOUBLE_EQ(s.epochs, 10.0);
}

TEST(Scenario, CommonsensePresetMatchesPaperTableII)
{
    Scenario s = Scenario::commonsense15k();
    EXPECT_EQ(s.medianSeqLen, 79u);
    EXPECT_DOUBLE_EQ(s.numQueries, 15000.0);
}

TEST(Scenario, PipelineDefaultSigmaIsTheScenarioConstant)
{
    // The seed duplicated the sigma default (0.45 in one entry point,
    // 0.40 in another); the shims must now share the one constant.
    // Equal sigma -> equal padded lengths -> identical sweep output.
    const ModelSpec model = ModelSpec::blackMamba2p8b();
    auto implicit_sigma = ExperimentPipeline::collectThroughputData(
        model, GpuSpec::a40(), 79);
    auto explicit_sigma = ExperimentPipeline::collectThroughputData(
        model, GpuSpec::a40(), 79, {}, Scenario::kDefaultLengthSigma);
    ASSERT_EQ(implicit_sigma.size(), explicit_sigma.size());
    for (std::size_t i = 0; i < implicit_sigma.size(); ++i)
        EXPECT_DOUBLE_EQ(implicit_sigma[i].qps, explicit_sigma[i].qps);
}

TEST(Scenario, FluentSettersCompose)
{
    Scenario s = Scenario{}
                     .withModel(ModelSpec::blackMamba2p8b())
                     .withMedianSeqLen(79)
                     .withLengthSigma(0.45)
                     .withNumQueries(15000.0)
                     .withEpochs(3.0)
                     .withSparse(false);
    EXPECT_EQ(s.model.name, ModelSpec::blackMamba2p8b().name);
    EXPECT_EQ(s.medianSeqLen, 79u);
    EXPECT_DOUBLE_EQ(s.lengthSigma, 0.45);
    EXPECT_DOUBLE_EQ(s.numQueries, 15000.0);
    EXPECT_DOUBLE_EQ(s.epochs, 3.0);
    EXPECT_FALSE(s.sparse);
}

TEST(Scenario, ValidationAcceptsDefaults)
{
    EXPECT_TRUE(Scenario{}.validated().ok());
    EXPECT_TRUE(Scenario::commonsense15k().validated().ok());
    EXPECT_TRUE(Scenario::openOrca().validated().ok());
}

TEST(Scenario, ValidationRejectsBadDomains)
{
    EXPECT_EQ(Scenario{}.withMedianSeqLen(0).validated().code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(Scenario{}.withLengthSigma(-0.1).validated().code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(Scenario{}.withNumQueries(0.0).validated().code(),
              ErrorCode::InvalidArgument);
    EXPECT_EQ(Scenario{}.withEpochs(-1.0).validated().code(),
              ErrorCode::InvalidArgument);
}

TEST(Scenario, DescribeNamesModelAndWorkload)
{
    std::string text = Scenario::gsMath().describe();
    EXPECT_NE(text.find("Mixtral"), std::string::npos);
    EXPECT_NE(text.find("148"), std::string::npos);
    EXPECT_NE(text.find("sparse"), std::string::npos);
}

TEST(Scenario, CanonicalKeyCoversEveryFieldLosslessly)
{
    const Scenario base = Scenario::gsMath();
    EXPECT_EQ(base.canonicalKey(), Scenario::gsMath().canonicalKey());

    // Doubles must distinguish past 6 significant digits: two tenants
    // with nearly identical datasets are still different tenants.
    EXPECT_NE(Scenario::gsMath().withNumQueries(1234567.0).canonicalKey(),
              Scenario::gsMath().withNumQueries(1234568.0).canonicalKey());
    EXPECT_NE(Scenario::gsMath().withLengthSigma(0.4000001).canonicalKey(),
              base.canonicalKey());

    // Every field class participates.
    EXPECT_NE(Scenario::gsMath().withSparse(false).canonicalKey(),
              base.canonicalKey());
    EXPECT_NE(Scenario::gsMath().withMedianSeqLen(149).canonicalKey(),
              base.canonicalKey());
    EXPECT_NE(Scenario::gsMath()
                  .withModel(ModelSpec::blackMamba2p8b())
                  .canonicalKey(),
              base.canonicalKey());
    Scenario calibrated = Scenario::gsMath();
    calibrated.calibration.matmulEfficiency = 0.2000001;
    EXPECT_NE(calibrated.canonicalKey(), base.canonicalKey());
}

}  // namespace
}  // namespace ftsim
