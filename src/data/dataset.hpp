#ifndef FTSIM_DATA_DATASET_HPP
#define FTSIM_DATA_DATASET_HPP

/**
 * @file
 * Synthetic fine-tuning datasets (Table II / Fig. 2 of the paper).
 *
 * A Query is "the concatenation of a prompt and its ground-truth answer"
 * (paper §III). Two task families are generated:
 *
 *  - Commonsense (CS-like / HellaSwag-like): a (subject, relation) pair
 *    deterministically maps to an answer token through a hidden
 *    association table. Learning the task = memorizing ~48 associations;
 *    small models pick this up in a couple of epochs, like the paper's
 *    commonsense results.
 *  - Math (MATH-like / GSM8K-like): modular addition "a + b mod 23".
 *    Learning the task requires representing a 23x23 composition, which
 *    is structurally harder for small models — matching the paper's
 *    observation that math is harder to fine-tune (Takeaways in §IV-A).
 *
 * Sequence lengths are drawn from a log-normal whose median matches the
 * paper's per-dataset medians (CS 79, MATH 174, HE 272, GS 148), with
 * filler tokens standing in for natural-language context.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "data/vocab.hpp"

namespace ftsim {

class Rng;

/** Task family of a synthetic dataset. */
enum class TaskKind : std::uint8_t {
    Commonsense,  ///< Association task (CS-15k / HellaSwag stand-ins).
    Math,         ///< Modular arithmetic (MATH-14k / GSM8K stand-ins).
    /**
     * Generic pre-training text: a noisy Markov chain over the full
     * vocabulary. Every token appears in predictable contexts (so
     * embeddings and the LM head learn all of them), but neither task
     * mapping is present — the stand-in for a foundation model's
     * pre-training corpus.
     */
    Generic,
};

/** One fine-tuning query: prompt plus ground-truth answer. */
struct Query {
    std::vector<int> prompt;
    std::vector<int> answer;

    /** Full sequence length (prompt + answer), the paper's "seq len". */
    std::size_t seqLen() const { return prompt.size() + answer.size(); }
};

/** Generation recipe for a synthetic dataset. */
struct DatasetSpec {
    std::string name;
    TaskKind kind = TaskKind::Commonsense;
    std::size_t numQueries = 1000;
    /** Target median of the sequence-length distribution (tokens). */
    double medianSeqLen = 79.0;
    /** Log-normal sigma (spread of lengths; Fig. 2 shape). */
    double lengthSigma = 0.45;
    std::uint64_t seed = 7;
    /**
     * Task-mapping variant. Variant 0 is the canonical mapping every
     * preset uses; nonzero variants shift the hidden answer tables.
     * Pre-training corpora built from nonzero variants teach a model the
     * task *structure* (attend to the key tokens, answer from the
     * numeral range) without leaking the actual mapping — the stand-in
     * for the related-but-different data a foundation model saw.
     */
    std::uint32_t mappingVariant = 0;

    // ----- Table II presets -----

    /** Commonsense-15k: 15k queries, median 79. */
    static DatasetSpec commonsense15k();

    /** Math-14k: 14k queries, median 174. */
    static DatasetSpec math14k();

    /** HellaSwag eval set: 10k queries, median 272. */
    static DatasetSpec hellaswag();

    /** GSM8K eval set: 1.3k queries, median 148. */
    static DatasetSpec gsm8k();

    /** Generic pre-training corpus (see TaskKind::Generic). */
    static DatasetSpec genericCorpus(std::size_t num_queries = 512,
                                     double median_len = 16.0);
};

/** A generated dataset plus its summary statistics. */
class Dataset {
  public:
    /** Generates the dataset described by @p spec. */
    static Dataset generate(const DatasetSpec& spec);

    /**
     * Generates a miniaturized version: query count and median length
     * scaled down (training-speed knob for the CPU substrate). Task
     * structure and relative difficulty are unchanged.
     */
    static Dataset generateScaled(const DatasetSpec& spec,
                                  double count_scale, double length_scale);

    /**
     * Concatenates datasets into one corpus (pre-training mixtures).
     * The kind of the first input is kept for bookkeeping.
     */
    static Dataset merged(const std::vector<Dataset>& parts,
                          const std::string& name);

    /** Dataset name. */
    const std::string& name() const { return name_; }

    /** Task family. */
    TaskKind kind() const { return kind_; }

    /** All queries. */
    const std::vector<Query>& queries() const { return queries_; }

    /** Number of queries. */
    std::size_t size() const { return queries_.size(); }

    /** Query accessor. */
    const Query& query(std::size_t i) const;

    /** Median sequence length (Table II / Fig. 2). */
    double medianSeqLen() const;

    /** All sequence lengths, for histogramming (Fig. 2). */
    std::vector<double> seqLens() const;

    /** First @p n queries as a lightweight view (profiling extracts). */
    std::vector<const Query*> head(std::size_t n) const;

  private:
    std::string name_;
    TaskKind kind_ = TaskKind::Commonsense;
    std::vector<Query> queries_;
};

/**
 * The hidden ground-truth mappings of the synthetic tasks, exposed so
 * tests and evaluators can verify answers independently of generation.
 */
class TaskOracle {
  public:
    /** Answer token for a commonsense (subject, relation) pair. */
    static int commonsenseAnswer(std::size_t subject, std::size_t relation,
                                 std::uint32_t variant = 0);

    /** Answer token for the math pair (a + b) mod kModulus. */
    static int mathAnswer(std::size_t a, std::size_t b,
                          std::uint32_t variant = 0);
};

}  // namespace ftsim

#endif  // FTSIM_DATA_DATASET_HPP
