#ifndef FTSIM_DATA_BATCHING_HPP
#define FTSIM_DATA_BATCHING_HPP

/**
 * @file
 * Batch collation for supervised fine-tuning.
 *
 * Queries are concatenated (prompt + answer), right-padded to the batch
 * maximum, and given next-token labels that are active only on answer
 * positions — the standard instruction-tuning objective the paper's
 * LLaMA-Factory setup uses.
 */

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"

namespace ftsim {

class Rng;

/** Label value for positions excluded from the loss. */
constexpr int kIgnoreIndex = -1;

/** One collated batch of queries. */
struct Batch {
    /** Token ids, row-major [batch, seqLen], PAD-padded. */
    std::vector<int> ids;
    /** Next-token labels, [batch, seqLen], kIgnoreIndex off-answer. */
    std::vector<int> targets;
    std::size_t batchSize = 0;
    std::size_t seqLen = 0;
    /** Queries contributing to this batch (== batchSize). */
    std::size_t numQueries = 0;
};

/**
 * Collates queries into a padded batch with answer-only labels.
 * Fatal on empty input.
 */
Batch collate(const std::vector<const Query*>& queries);

/**
 * Splits a dataset into shuffled mini-batches for one epoch.
 * The final partial batch is kept (it is not dropped).
 */
std::vector<Batch> epochBatches(const Dataset& dataset,
                                std::size_t batch_size, Rng& rng);

/** Sequentially batches the first @p limit queries (no shuffle). */
std::vector<Batch> sequentialBatches(const Dataset& dataset,
                                     std::size_t batch_size,
                                     std::size_t limit);

}  // namespace ftsim

#endif  // FTSIM_DATA_BATCHING_HPP
