#include "data/batching.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace ftsim {

Batch
collate(const std::vector<const Query*>& queries)
{
    if (queries.empty())
        fatal("collate: empty batch");

    Batch batch;
    batch.batchSize = queries.size();
    batch.numQueries = queries.size();
    for (const Query* q : queries)
        batch.seqLen = std::max(batch.seqLen, q->seqLen());

    batch.ids.assign(batch.batchSize * batch.seqLen, Vocab::kPad);
    batch.targets.assign(batch.batchSize * batch.seqLen, kIgnoreIndex);

    for (std::size_t b = 0; b < queries.size(); ++b) {
        const Query& q = *queries[b];
        const std::size_t base = b * batch.seqLen;
        std::size_t pos = 0;
        for (int tok : q.prompt)
            batch.ids[base + pos++] = tok;
        const std::size_t answer_start = pos;
        for (int tok : q.answer)
            batch.ids[base + pos++] = tok;
        // Next-token labels: position t predicts token t+1; active only
        // where t+1 lies inside the answer span.
        for (std::size_t t = answer_start - 1; t + 1 < pos; ++t)
            batch.targets[base + t] = batch.ids[base + t + 1];
    }
    return batch;
}

std::vector<Batch>
epochBatches(const Dataset& dataset, std::size_t batch_size, Rng& rng)
{
    if (batch_size == 0)
        fatal("epochBatches: zero batch size");
    const std::vector<std::size_t> perm = rng.permutation(dataset.size());

    std::vector<Batch> batches;
    std::vector<const Query*> group;
    group.reserve(batch_size);
    for (std::size_t i = 0; i < perm.size(); ++i) {
        group.push_back(&dataset.query(perm[i]));
        if (group.size() == batch_size || i + 1 == perm.size()) {
            batches.push_back(collate(group));
            group.clear();
        }
    }
    return batches;
}

std::vector<Batch>
sequentialBatches(const Dataset& dataset, std::size_t batch_size,
                  std::size_t limit)
{
    if (batch_size == 0)
        fatal("sequentialBatches: zero batch size");
    const std::size_t count = std::min(limit, dataset.size());

    std::vector<Batch> batches;
    std::vector<const Query*> group;
    group.reserve(batch_size);
    for (std::size_t i = 0; i < count; ++i) {
        group.push_back(&dataset.query(i));
        if (group.size() == batch_size || i + 1 == count) {
            batches.push_back(collate(group));
            group.clear();
        }
    }
    return batches;
}

}  // namespace ftsim
