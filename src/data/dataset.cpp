#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace ftsim {

DatasetSpec
DatasetSpec::commonsense15k()
{
    DatasetSpec spec;
    spec.name = "Commonsense-15k";
    spec.kind = TaskKind::Commonsense;
    spec.numQueries = 15000;
    spec.medianSeqLen = 79.0;
    spec.lengthSigma = 0.45;
    spec.seed = 101;
    return spec;
}

DatasetSpec
DatasetSpec::math14k()
{
    DatasetSpec spec;
    spec.name = "Math-14k";
    spec.kind = TaskKind::Math;
    spec.numQueries = 14000;
    spec.medianSeqLen = 174.0;
    spec.lengthSigma = 0.40;
    spec.seed = 102;
    return spec;
}

DatasetSpec
DatasetSpec::hellaswag()
{
    DatasetSpec spec;
    spec.name = "HellaSwag";
    spec.kind = TaskKind::Commonsense;
    spec.numQueries = 10000;
    spec.medianSeqLen = 272.0;
    spec.lengthSigma = 0.35;
    spec.seed = 103;
    return spec;
}

DatasetSpec
DatasetSpec::gsm8k()
{
    DatasetSpec spec;
    spec.name = "GSM8K";
    spec.kind = TaskKind::Math;
    spec.numQueries = 1300;
    spec.medianSeqLen = 148.0;
    spec.lengthSigma = 0.40;
    spec.seed = 104;
    return spec;
}

DatasetSpec
DatasetSpec::genericCorpus(std::size_t num_queries, double median_len)
{
    DatasetSpec spec;
    spec.name = "Generic pre-training corpus";
    spec.kind = TaskKind::Generic;
    spec.numQueries = num_queries;
    spec.medianSeqLen = median_len;
    spec.lengthSigma = 0.35;
    spec.seed = 105;
    return spec;
}

namespace {

/** Tokens in a query that are not filler (BOS + keys + SEP + answer). */
std::size_t
fixedTokens(TaskKind kind)
{
    // CS: BOS, subject, relation, SEP + answer, EOS.
    // MATH: BOS, a, OP, b, SEP + answer, EOS.
    // Generic: BOS ... EOS with a 1-token "answer" span.
    switch (kind) {
      case TaskKind::Commonsense:
        return 6;
      case TaskKind::Math:
        return 7;
      case TaskKind::Generic:
        return 4;
    }
    return 6;
}

/** One step of the noisy Markov chain over non-special tokens. */
int
chainNext(int current, Rng& rng)
{
    constexpr int lo = Vocab::kFillerBase;
    constexpr int span = static_cast<int>(Vocab::kSize) - lo;
    if (rng.bernoulli(0.25))
        return lo + static_cast<int>(rng.uniformInt(0, span - 1));
    return lo + ((7 * (current - lo) + 13) % span);
}

Query
makeQuery(TaskKind kind, std::size_t target_len, Rng& rng,
          std::uint32_t variant)
{
    Query q;
    const std::size_t fixed = fixedTokens(kind);
    const std::size_t fill =
        target_len > fixed ? target_len - fixed : 0;

    q.prompt.push_back(Vocab::kBos);
    if (kind == TaskKind::Generic) {
        int tok = chainNext(Vocab::kFillerBase, rng);
        for (std::size_t i = 0; i + 1 < fill + 2; ++i) {
            q.prompt.push_back(tok);
            tok = chainNext(tok, rng);
        }
        // A short trailing span doubles as the "answer" so the corpus
        // collates like any other dataset.
        q.answer.push_back(tok);
        q.answer.push_back(Vocab::kEos);
        return q;
    }
    for (std::size_t i = 0; i < fill; ++i) {
        q.prompt.push_back(Vocab::fillerToken(static_cast<std::size_t>(
            rng.uniformInt(0, Vocab::kNumFiller - 1))));
    }
    if (kind == TaskKind::Commonsense) {
        const auto s = static_cast<std::size_t>(
            rng.uniformInt(0, Vocab::kNumSubjects - 1));
        const auto r = static_cast<std::size_t>(
            rng.uniformInt(0, Vocab::kNumRelations - 1));
        q.prompt.push_back(Vocab::subjectToken(s));
        q.prompt.push_back(Vocab::relationToken(r));
        q.prompt.push_back(Vocab::kSep);
        q.answer.push_back(TaskOracle::commonsenseAnswer(s, r, variant));
    } else {
        const auto a = static_cast<std::size_t>(
            rng.uniformInt(0, Vocab::kModulus - 1));
        const auto b = static_cast<std::size_t>(
            rng.uniformInt(0, Vocab::kModulus - 1));
        q.prompt.push_back(Vocab::numberToken(a));
        q.prompt.push_back(Vocab::kOp);
        q.prompt.push_back(Vocab::numberToken(b));
        q.prompt.push_back(Vocab::kSep);
        q.answer.push_back(TaskOracle::mathAnswer(a, b, variant));
    }
    q.answer.push_back(Vocab::kEos);
    return q;
}

}  // namespace

Dataset
Dataset::generate(const DatasetSpec& spec)
{
    if (spec.numQueries == 0)
        fatal("Dataset::generate: zero queries requested");
    if (spec.medianSeqLen <= 0.0)
        fatal("Dataset::generate: non-positive median length");

    Dataset ds;
    ds.name_ = spec.name;
    ds.kind_ = spec.kind;
    ds.queries_.reserve(spec.numQueries);

    Rng rng(spec.seed);
    const double mu = std::log(spec.medianSeqLen);
    const std::size_t fixed = fixedTokens(spec.kind);
    for (std::size_t i = 0; i < spec.numQueries; ++i) {
        double len = rng.logNormal(mu, spec.lengthSigma);
        auto target = static_cast<std::size_t>(std::lround(len));
        target = std::max(target, fixed);
        target = std::min<std::size_t>(target, 4096);
        ds.queries_.push_back(
            makeQuery(spec.kind, target, rng, spec.mappingVariant));
    }
    return ds;
}

Dataset
Dataset::generateScaled(const DatasetSpec& spec, double count_scale,
                        double length_scale)
{
    if (count_scale <= 0.0 || length_scale <= 0.0)
        fatal("Dataset::generateScaled: scales must be positive");
    DatasetSpec scaled = spec;
    scaled.numQueries = std::max<std::size_t>(
        16, static_cast<std::size_t>(
                std::lround(static_cast<double>(spec.numQueries) *
                            count_scale)));
    scaled.medianSeqLen = std::max(
        static_cast<double>(fixedTokens(spec.kind)) + 2.0,
        spec.medianSeqLen * length_scale);
    return generate(scaled);
}

Dataset
Dataset::merged(const std::vector<Dataset>& parts, const std::string& name)
{
    if (parts.empty())
        fatal("Dataset::merged: no parts");
    Dataset out;
    out.name_ = name;
    out.kind_ = parts.front().kind_;
    for (const Dataset& part : parts)
        out.queries_.insert(out.queries_.end(), part.queries_.begin(),
                            part.queries_.end());
    return out;
}

const Query&
Dataset::query(std::size_t i) const
{
    if (i >= queries_.size())
        fatal(strCat("Dataset::query: index ", i, " out of range"));
    return queries_[i];
}

double
Dataset::medianSeqLen() const
{
    return median(seqLens());
}

std::vector<double>
Dataset::seqLens() const
{
    std::vector<double> lens;
    lens.reserve(queries_.size());
    for (const auto& q : queries_)
        lens.push_back(static_cast<double>(q.seqLen()));
    return lens;
}

std::vector<const Query*>
Dataset::head(std::size_t n) const
{
    std::vector<const Query*> out;
    const std::size_t count = std::min(n, queries_.size());
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(&queries_[i]);
    return out;
}

int
TaskOracle::commonsenseAnswer(std::size_t subject, std::size_t relation,
                              std::uint32_t variant)
{
    if (subject >= Vocab::kNumSubjects ||
        relation >= Vocab::kNumRelations)
        fatal("TaskOracle::commonsenseAnswer: key out of range");
    // A fixed pseudo-random association table: deterministic, dense in
    // the answer space, and with no linear shortcut. Nonzero variants
    // permute the table.
    const std::size_t hash =
        subject * 7 + relation * 5 + 3 + 11 * variant;
    return Vocab::numberToken(hash % Vocab::kModulus);
}

int
TaskOracle::mathAnswer(std::size_t a, std::size_t b,
                       std::uint32_t variant)
{
    if (a >= Vocab::kModulus || b >= Vocab::kModulus)
        fatal("TaskOracle::mathAnswer: operand out of range");
    // Variants shift the sum, preserving the compositional structure.
    return Vocab::numberToken((a + b + 5 * variant) % Vocab::kModulus);
}

}  // namespace ftsim
