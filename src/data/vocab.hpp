#ifndef FTSIM_DATA_VOCAB_HPP
#define FTSIM_DATA_VOCAB_HPP

/**
 * @file
 * Token vocabulary for the synthetic instruction-tuning tasks.
 *
 * The real datasets (Commonsense-15k, Math-14k, HellaSwag, GSM8K) are
 * replaced by synthetic tasks over a small shared vocabulary; what the
 * characterization needs from them — sequence-length distributions and a
 * learnable prompt->answer mapping with an exact-match metric — is
 * preserved. The vocabulary is partitioned into fixed functional ranges.
 */

#include <cstddef>

#include "common/logging.hpp"

namespace ftsim {

/** Fixed-layout vocabulary shared by every synthetic task. */
class Vocab {
  public:
    // Special tokens.
    static constexpr int kPad = 0;  ///< Padding (never predicted).
    static constexpr int kBos = 1;  ///< Beginning of query.
    static constexpr int kEos = 2;  ///< End of answer.
    static constexpr int kSep = 3;  ///< Prompt/answer separator.
    static constexpr int kOp = 4;   ///< Arithmetic operator token.

    /** First filler token (prompt padding narrative). */
    static constexpr int kFillerBase = 5;
    /** Number of distinct filler tokens. */
    static constexpr std::size_t kNumFiller = 11;

    /** First subject token (commonsense task). */
    static constexpr int kSubjectBase = 16;
    /** Number of subjects. */
    static constexpr std::size_t kNumSubjects = 12;

    /** First relation token (commonsense task). */
    static constexpr int kRelationBase = 28;
    /** Number of relations. */
    static constexpr std::size_t kNumRelations = 4;

    /** First numeral token (math task); values 0..modulus-1. */
    static constexpr int kNumberBase = 32;
    /** Modulus of the arithmetic task (numeral count). */
    static constexpr std::size_t kModulus = 23;

    /** Total vocabulary size (numerals end at 54; vocab rounds to 64). */
    static constexpr std::size_t kSize = 64;

    /** Numeral token for value @p v in [0, kModulus). */
    static int numberToken(std::size_t v);

    /** Subject token @p s in [0, kNumSubjects). */
    static int subjectToken(std::size_t s);

    /** Relation token @p r in [0, kNumRelations). */
    static int relationToken(std::size_t r);

    /** Filler token @p f in [0, kNumFiller). */
    static int fillerToken(std::size_t f);
};

}  // namespace ftsim

#endif  // FTSIM_DATA_VOCAB_HPP
