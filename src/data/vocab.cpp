#include "data/vocab.hpp"

namespace ftsim {

int
Vocab::numberToken(std::size_t v)
{
    if (v >= kModulus)
        fatal(strCat("Vocab::numberToken: value ", v, " out of range"));
    return kNumberBase + static_cast<int>(v);
}

int
Vocab::subjectToken(std::size_t s)
{
    if (s >= kNumSubjects)
        fatal(strCat("Vocab::subjectToken: ", s, " out of range"));
    return kSubjectBase + static_cast<int>(s);
}

int
Vocab::relationToken(std::size_t r)
{
    if (r >= kNumRelations)
        fatal(strCat("Vocab::relationToken: ", r, " out of range"));
    return kRelationBase + static_cast<int>(r);
}

int
Vocab::fillerToken(std::size_t f)
{
    if (f >= kNumFiller)
        fatal(strCat("Vocab::fillerToken: ", f, " out of range"));
    return kFillerBase + static_cast<int>(f);
}

}  // namespace ftsim
