#ifndef FTSIM_CORE_PIPELINE_TYPES_HPP
#define FTSIM_CORE_PIPELINE_TYPES_HPP

/**
 * @file
 * Value types shared by the planning facade (core/planner.hpp) and the
 * legacy experiment pipeline (core/pipeline.hpp): fitted analytical
 * models with their training data, and Table IV cost rows.
 */

#include <string>
#include <vector>

#include "core/batch_size_model.hpp"
#include "core/throughput_model.hpp"

namespace ftsim {

/** A fitted throughput model plus its training data and error. */
struct ThroughputFit {
    ThroughputModel model;
    std::vector<ThroughputObservation> observations;
    double rmse = 0.0;
};

/** A fitted batch-size model plus its training data and error. */
struct BatchSizeFit {
    MaxBatchModel model;
    std::vector<BatchSizeObservation> observations;
    double rmse = 0.0;
};

/** One row of the Table IV cost report. */
struct CostRow {
    std::string gpuName;
    double memGB = 0.0;
    int maxBatchSize = 0;
    double throughputQps = 0.0;
    double dollarsPerHour = 0.0;
    double totalDollars = 0.0;
};

}  // namespace ftsim

#endif  // FTSIM_CORE_PIPELINE_TYPES_HPP
