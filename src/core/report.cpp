#include "core/report.hpp"

#include <sstream>

#include "common/logging.hpp"
#include "common/table.hpp"

namespace ftsim {

std::string
generateCharacterizationReport(const ReportRequest& request)
{
    const ModelSpec& model = request.model;
    const GpuSpec& gpu = request.gpu;

    MemoryBreakdown mem = MemoryModel::analyze(
        model, gpu, request.medianSeqLen, request.sparse);
    if (mem.maxBatchSize < 1) {
        fatal(strCat("generateCharacterizationReport: ", model.name,
                     " does not fit on ", gpu.name,
                     request.sparse ? " (sparse)" : " (dense)"));
    }

    FineTuneSim sim(model, gpu, request.calibration);
    RunConfig config;
    config.batchSize = static_cast<std::size_t>(mem.maxBatchSize);
    config.seqLen = sim.paddedSeqLen(request.medianSeqLen,
                                     config.batchSize,
                                     request.lengthSigma);
    config.sparse = request.sparse;
    StepProfile profile = sim.profileStep(config);

    ThroughputFit fit = ExperimentPipeline::fitThroughput(
        model, gpu, request.medianSeqLen, request.calibration,
        request.lengthSigma);
    const double qps = sim.throughput(config.batchSize,
                                      request.medianSeqLen, request.sparse,
                                      request.lengthSigma);

    std::ostringstream out;
    out << "# Fine-tuning characterization: " << model.name << " on "
        << gpu.name << "\n\n";
    out << "- mode: " << (request.sparse ? "sparse (top-" : "dense (top-")
        << model.activeExperts(request.sparse) << " of " << model.nExperts
        << " experts)\n";
    out << "- dataset: " << request.numQueries << " queries, median "
        << request.medianSeqLen << " tokens (sigma "
        << request.lengthSigma << "), " << request.epochs << " epochs\n\n";

    out << "## Memory (Eq. 1 territory)\n\n";
    Table mem_table({"Component", "GB"});
    mem_table.addRow({"weights", Table::fmt(mem.weightBytes / 1e9, 2)});
    mem_table.addRow(
        {"optimizer state", Table::fmt(mem.optimizerBytes / 1e9, 2)});
    mem_table.addRow(
        {"gradients", Table::fmt(mem.gradientBytes / 1e9, 2)});
    mem_table.addRow(
        {"framework reserved", Table::fmt(mem.reservedBytes / 1e9, 2)});
    mem_table.addRow(
        {"usable for activations", Table::fmt(mem.usableBytes / 1e9, 2)});
    mem_table.addRow(
        {"per-query activations", Table::fmt(mem.perQueryBytes / 1e9, 2)});
    out << mem_table.render();
    out << "\nmaximum batch size: " << mem.maxBatchSize << "\n\n";

    out << "## Step breakdown at max batch\n\n";
    out << "step latency " << Table::fmt(profile.stepSeconds, 3)
        << " s; forward " << Table::fmt(profile.forwardSeconds, 3)
        << " s, backward " << Table::fmt(profile.backwardSeconds, 3)
        << " s, optimizer " << Table::fmt(profile.optimizerSeconds, 3)
        << " s; MoE share of layer time "
        << Table::fmt(100.0 * profile.moeFractionOfStep(), 1) << " %\n\n";

    out << "top MoE kernels:\n\n";
    Table kernels({"kernel", "us", "SM %", "DRAM %"});
    std::size_t shown = 0;
    for (const KernelAggregate& k : profile.moeKernels) {
        if (shown++ == 5)
            break;
        kernels.addRow({k.name, Table::fmt(k.seconds * 1e6, 0),
                        Table::fmt(k.smUtilPct, 1),
                        Table::fmt(k.dramUtilPct, 1)});
    }
    out << kernels.render();

    out << "\n## Throughput (Eq. 2)\n\n";
    out << "fitted: qps(b, s) = " << Table::fmt(fit.model.c2(), 3)
        << " * (ln b - " << Table::fmt(fit.model.c3(), 3)
        << " * ln s) + " << Table::fmt(fit.model.c4(), 3) << "   (RMSE "
        << Table::fmt(fit.rmse, 3) << ")\n";
    out << "simulated at max batch: " << Table::fmt(qps, 2)
        << " queries/s\n\n";

    out << "## Cost\n\n";
    if (request.catalog.has(gpu.name)) {
        CostEstimator estimator(request.catalog);
        CostEstimate cost = estimator.estimate(
            gpu.name, qps, request.numQueries, request.epochs);
        out << "at $" << Table::fmt(cost.dollarsPerHour, 2) << "/hr: "
            << Table::fmt(cost.gpuHours, 1) << " GPU-hours = **$"
            << Table::fmt(cost.totalDollars, 2) << "**\n";
    } else {
        out << "no price listed for " << gpu.name
            << " in the catalog; add a CloudOffering to cost it.\n";
    }
    return out.str();
}

}  // namespace ftsim
