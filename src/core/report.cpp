#include "core/report.hpp"

#include <sstream>

#include "common/table.hpp"

namespace ftsim {

Result<std::string>
Planner::report(const GpuSpec& gpu) const
{
    Result<MemoryBreakdown> mem_r = memory(gpu);
    if (!mem_r)
        return mem_r.error();
    Result<int> mbs = maxBatch(gpu);
    if (!mbs)
        return mbs.error();
    Result<StepProfile> profile_r = profile(gpu);
    if (!profile_r)
        return profile_r.error();
    Result<ThroughputFit> fit_r = fitThroughput(gpu);
    if (!fit_r)
        return fit_r.error();
    Result<double> qps_r = throughput(gpu);
    if (!qps_r)
        return qps_r.error();

    const MemoryBreakdown& mem = mem_r.value();
    const StepProfile& profile = profile_r.value();
    const ThroughputFit& fit = fit_r.value();
    const double qps = qps_r.value();
    const ModelSpec& model = scenario_.model;

    std::ostringstream out;
    out << "# Fine-tuning characterization: " << model.name << " on "
        << gpu.name << "\n\n";
    out << "- mode: "
        << (scenario_.sparse ? "sparse (top-" : "dense (top-")
        << model.activeExperts(scenario_.sparse) << " of "
        << model.nExperts << " experts)\n";
    out << "- dataset: " << scenario_.numQueries << " queries, median "
        << scenario_.medianSeqLen << " tokens (sigma "
        << scenario_.lengthSigma << "), " << scenario_.epochs
        << " epochs\n\n";

    out << "## Memory (Eq. 1 territory)\n\n";
    Table mem_table({"Component", "GB"});
    mem_table.addRow({"weights", Table::fmt(mem.weightBytes / 1e9, 2)});
    mem_table.addRow(
        {"optimizer state", Table::fmt(mem.optimizerBytes / 1e9, 2)});
    mem_table.addRow(
        {"gradients", Table::fmt(mem.gradientBytes / 1e9, 2)});
    mem_table.addRow(
        {"framework reserved", Table::fmt(mem.reservedBytes / 1e9, 2)});
    mem_table.addRow(
        {"usable for activations", Table::fmt(mem.usableBytes / 1e9, 2)});
    mem_table.addRow(
        {"per-query activations", Table::fmt(mem.perQueryBytes / 1e9, 2)});
    out << mem_table.render();
    out << "\nmaximum batch size: " << mem.maxBatchSize << "\n\n";

    out << "## Step breakdown at max batch\n\n";
    out << "step latency " << Table::fmt(profile.stepSeconds, 3)
        << " s; forward " << Table::fmt(profile.forwardSeconds, 3)
        << " s, backward " << Table::fmt(profile.backwardSeconds, 3)
        << " s, optimizer " << Table::fmt(profile.optimizerSeconds, 3)
        << " s; MoE share of layer time "
        << Table::fmt(100.0 * profile.moeFractionOfStep(), 1) << " %\n\n";

    out << "top MoE kernels:\n\n";
    Table kernels({"kernel", "us", "SM %", "DRAM %"});
    std::size_t shown = 0;
    for (const KernelAggregate& k : profile.moeKernels) {
        if (shown++ == 5)
            break;
        kernels.addRow({k.name, Table::fmt(k.seconds * 1e6, 0),
                        Table::fmt(k.smUtilPct, 1),
                        Table::fmt(k.dramUtilPct, 1)});
    }
    out << kernels.render();

    out << "\n## Throughput (Eq. 2)\n\n";
    out << "fitted: qps(b, s) = " << Table::fmt(fit.model.c2(), 3)
        << " * (ln b - " << Table::fmt(fit.model.c3(), 3)
        << " * ln s) + " << Table::fmt(fit.model.c4(), 3) << "   (RMSE "
        << Table::fmt(fit.rmse, 3) << ")\n";
    out << "simulated at max batch: " << Table::fmt(qps, 2)
        << " queries/s\n\n";

    out << "## Cost\n\n";
    Result<CostEstimate> cost_r = cost(gpu);
    if (cost_r) {
        const CostEstimate& cost = cost_r.value();
        out << "at $" << Table::fmt(cost.dollarsPerHour, 2) << "/hr: "
            << Table::fmt(cost.gpuHours, 1) << " GPU-hours = **$"
            << Table::fmt(cost.totalDollars, 2) << "**\n";
    } else if (cost_r.code() == ErrorCode::UnknownGpu) {
        out << "no price listed for " << gpu.name
            << " in the catalog; add a CloudOffering to cost it.\n";
    } else {
        return cost_r.error();
    }
    return out.str();
}

Scenario
ReportRequest::toScenario() const
{
    Scenario s;
    s.model = model;
    s.medianSeqLen = medianSeqLen;
    s.lengthSigma = lengthSigma;
    s.numQueries = numQueries;
    s.epochs = epochs;
    s.sparse = sparse;
    s.calibration = calibration;
    return s;
}

std::string
generateCharacterizationReport(const ReportRequest& request)
{
    Planner planner(request.toScenario(), request.catalog);
    return planner.report(request.gpu).valueOrThrow();
}

}  // namespace ftsim
