#ifndef FTSIM_CORE_THROUGHPUT_MODEL_HPP
#define FTSIM_CORE_THROUGHPUT_MODEL_HPP

/**
 * @file
 * The paper's analytical throughput model (Eq. 2, §V-B).
 *
 * The paper writes Throughput = C2 * log(batch_size / sparsity * C3) + C4
 * with C2 the scaling coefficient, C3 the "MoE attenuation coefficient"
 * that tunes how strongly sparsity influences throughput, and C4 the
 * intercept ("the throughput when batch size equals one"). We implement
 * the reading that satisfies all of the paper's stated properties
 * simultaneously:
 *
 *   qps(b, s) = C2 * ln(b / s^C3) + C4
 *             = C2 * ln b  -  C2 * C3 * ln s  +  C4
 *
 *  - at b = 1, s = 1 (dense) the log term vanishes, so C4 is exactly the
 *    dense batch-1 throughput;
 *  - C3 attenuates the sparsity effect (C3 = 0 removes it, C3 = 1 applies
 *    it fully), affecting only the MoE-driven gap between the dense and
 *    sparse curves;
 *  - throughput grows logarithmically with batch size, capturing the
 *    memory-bound -> compute-bound saturation (Takeaway 5).
 *
 * One (C2, C3, C4) set is fitted per (model, dataset, GPU) over the
 * merged dense + sparse sweep, as in Figs. 14-15.
 */

#include <cstddef>
#include <vector>

namespace ftsim {

/** One measured throughput point. */
struct ThroughputObservation {
    double batchSize = 1.0;
    /** Active-expert fraction k/E (0.25 sparse, 1.0 dense). */
    double sparsity = 1.0;
    /** Measured queries/second. */
    double qps = 0.0;
};

/** Eq. 2 with fitted coefficients. */
class ThroughputModel {
  public:
    ThroughputModel(double c2, double c3, double c4);

    /** Predicted queries/second at the given batch size and sparsity. */
    double predict(double batch_size, double sparsity) const;

    /** Scaling coefficient C2. */
    double c2() const { return c2_; }

    /** MoE attenuation coefficient C3. */
    double c3() const { return c3_; }

    /** Intercept C4 (dense batch-1 throughput). */
    double c4() const { return c4_; }

    /**
     * Fits (C2, C3, C4) by nonlinear least squares (the scipy fit of the
     * paper, here Levenberg-Marquardt). Fatal on fewer than 3 points.
     */
    static ThroughputModel fit(
        const std::vector<ThroughputObservation>& data);

    /** RMSE against observations (the paper's validation metric). */
    double rmse(const std::vector<ThroughputObservation>& data) const;

  private:
    double c2_;
    double c3_;
    double c4_;
};

}  // namespace ftsim

#endif  // FTSIM_CORE_THROUGHPUT_MODEL_HPP
