#ifndef FTSIM_CORE_RESULT_HPP
#define FTSIM_CORE_RESULT_HPP

/**
 * @file
 * Forwarding header: `Result<T>` moved to common/result.hpp so layers
 * below core (gpusim's sweep entry points) can return typed errors
 * without inverting the core -> gpusim dependency. Existing includes of
 * "core/result.hpp" keep working unchanged.
 */

#include "common/result.hpp"

#endif  // FTSIM_CORE_RESULT_HPP
