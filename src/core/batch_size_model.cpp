#include "core/batch_size_model.hpp"

#include <cmath>

#include "common/fit.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"

namespace ftsim {

MaxBatchModel::MaxBatchModel(double c0, double c1)
    : c0_(c0), c1_(c1)
{
    if (c0 <= 0.0)
        fatal("MaxBatchModel: C0 must be positive");
    if (c1 < 0.0 || c1 > 1.0)
        fatal("MaxBatchModel: C1 must lie in [0, 1]");
}

double
MaxBatchModel::predictContinuous(double gpu_mem_gb, double model_mem_gb,
                                 double seq_len, double sparsity) const
{
    if (seq_len <= 0.0)
        fatal("MaxBatchModel: non-positive sequence length");
    const double free_mem = gpu_mem_gb - model_mem_gb;
    if (free_mem <= 0.0)
        return 0.0;  // Model does not fit on this GPU.
    const double denom =
        seq_len * ((1.0 - c1_) + c1_ * sparsity);
    return c0_ * free_mem / denom;
}

int
MaxBatchModel::predict(double gpu_mem_gb, double model_mem_gb,
                       double seq_len, double sparsity) const
{
    return static_cast<int>(std::floor(
        predictContinuous(gpu_mem_gb, model_mem_gb, seq_len, sparsity)));
}

MaxBatchModel
MaxBatchModel::fit(const std::vector<BatchSizeObservation>& data)
{
    if (data.empty())
        fatal("MaxBatchModel::fit: no observations");

    // x = (gpuMem, modelMem, seq, sparsity); params = (C0, C1).
    ParametricFn fn = [](const std::vector<double>& x,
                         const std::vector<double>& p) {
        const double free_mem = x[0] - x[1];
        if (free_mem <= 0.0)
            return 0.0;
        const double c1 = std::clamp(p[1], 0.0, 1.0);
        const double denom = x[2] * ((1.0 - c1) + c1 * x[3]);
        return std::floor(std::max(p[0], 1e-9) * free_mem / denom);
    };

    std::vector<Observation> obs;
    obs.reserve(data.size());
    double c0_seed = 0.0;
    for (const auto& d : data) {
        obs.push_back({{d.gpuMemGB, d.modelMemGB, d.seqLen, d.sparsity},
                       static_cast<double>(d.maxBatch)});
        // Seed C0 from inverting Eq. 1 at C1 = 0.9.
        const double free_mem = d.gpuMemGB - d.modelMemGB;
        if (free_mem > 0.0) {
            c0_seed += (d.maxBatch + 0.5) * d.seqLen *
                       (0.1 + 0.9 * d.sparsity) / free_mem;
        }
    }
    c0_seed /= static_cast<double>(data.size());
    if (c0_seed <= 0.0)
        c0_seed = 50.0;

    // Stage 1: fit the continuous relaxation (targets shifted by +0.5,
    // the expected value of the floor residual) with least squares.
    ParametricFn smooth = [](const std::vector<double>& x,
                             const std::vector<double>& p) {
        const double free_mem = x[0] - x[1];
        if (free_mem <= 0.0)
            return 0.0;
        const double c1 = std::clamp(p[1], 0.0, 1.0);
        const double denom = x[2] * ((1.0 - c1) + c1 * x[3]);
        return std::max(p[0], 1e-9) * free_mem / denom;
    };
    std::vector<Observation> shifted = obs;
    for (auto& o : shifted)
        o.y += 0.5;
    FitResult seed = fitLeastSquares(smooth, shifted, {c0_seed, 0.9});

    // Stage 2: refine against the true floored objective.
    GridSearchOptions options;
    options.passes = 8;
    options.pointsPerAxis = 21;
    FitResult result = fitGridSearch(
        fn, obs,
        {std::max(seed.params[0], 1e-9),
         std::clamp(seed.params[1], 0.0, 1.0)},
        {std::max(seed.params[0], 1.0) * 0.25, 0.2}, options);
    return MaxBatchModel(std::max(result.params[0], 1e-9),
                         std::clamp(result.params[1], 0.0, 1.0));
}

double
MaxBatchModel::rmse(const std::vector<BatchSizeObservation>& data) const
{
    if (data.empty())
        fatal("MaxBatchModel::rmse: no observations");
    std::vector<double> pred;
    std::vector<double> actual;
    for (const auto& d : data) {
        pred.push_back(static_cast<double>(
            predict(d.gpuMemGB, d.modelMemGB, d.seqLen, d.sparsity)));
        actual.push_back(static_cast<double>(d.maxBatch));
    }
    return ftsim::rmse(pred, actual);
}

}  // namespace ftsim
