#ifndef FTSIM_CORE_COST_MODEL_HPP
#define FTSIM_CORE_COST_MODEL_HPP

/**
 * @file
 * Cloud fine-tuning cost estimation (§V-C, Table IV).
 *
 * Given an estimated throughput (queries/second), a dataset size, an
 * epoch count and a GPU rental rate, the cost is
 *
 *   hours = epochs * queries / qps / 3600
 *   cost  = hours * $/hr
 *
 * The catalog ships the paper's CUDO-Compute rates (A40 $0.79/hr,
 * A100-80GB $1.67/hr, H100 $2.10/hr) and is user-extensible for other
 * providers (AWS, Lambda, ...).
 */

#include <string>
#include <utility>
#include <vector>

#include "core/result.hpp"

namespace ftsim {

/** One GPU rental offering. */
struct CloudOffering {
    std::string provider;
    std::string gpuName;   ///< Must match GpuSpec::name for lookups.
    double dollarsPerHour = 0.0;
};

/** Price list of GPU rentals. */
class CloudCatalog {
  public:
    /** Empty catalog. */
    CloudCatalog() = default;

    /** The paper's CUDO-Compute rates. */
    static CloudCatalog cudoCompute();

    /** Adds an offering. */
    void add(const CloudOffering& offering);

    /**
     * Fluently adds (or overrides downward) a rate for @p gpu_name at
     * @p usd_per_hour under the "user" provider and returns *this* —
     * the extension point for GPUs missing from the built-in CUDO
     * list, e.g. `CloudCatalog::cudoCompute().withRate("L40S", 1.05)`.
     * Serve requests use it to price otherwise-`UnknownGpu` devices.
     * Fatal on a non-positive rate or empty name (same contract as
     * add(); validate first when the inputs are untrusted).
     */
    CloudCatalog& withRate(const std::string& gpu_name,
                           double usd_per_hour);

    /** All offerings. */
    const std::vector<CloudOffering>& offerings() const
    {
        return offerings_;
    }

    /**
     * Cheapest rate for the GPU name (any provider).
     * `UnknownGpu` if the GPU is not listed.
     */
    Result<double> rate(const std::string& gpu_name) const;

    /**
     * Cheapest rate for the GPU name (any provider).
     * Throws FatalError if the GPU is not listed.
     * @deprecated Legacy shim over rate(); prefer the Result form.
     */
    double ratePerHour(const std::string& gpu_name) const;

    /** True if any offering covers the GPU. */
    bool has(const std::string& gpu_name) const;

    /**
     * Canonical cache identity: every offering serialized in insertion
     * order. Serving layers fold this into their planner keys so two
     * requests with different rate overrides never share a planner.
     */
    std::string fingerprint() const;

  private:
    std::vector<CloudOffering> offerings_;
};

/** A full fine-tuning cost estimate. */
struct CostEstimate {
    std::string gpuName;
    double throughputQps = 0.0;
    double gpuHours = 0.0;
    double dollarsPerHour = 0.0;
    double totalDollars = 0.0;
};

/** Cost estimator over a catalog. */
class CostEstimator {
  public:
    explicit CostEstimator(CloudCatalog catalog);

    /**
     * Estimates fine-tuning cost.
     * @param gpu_name catalog key (`UnknownGpu` when unpriced).
     * @param qps estimated throughput in queries/second.
     * @param num_queries dataset size (the paper's "query" = prompt +
     *        ground-truth answer).
     * @param epochs fine-tuning epochs (paper default: 10).
     */
    Result<CostEstimate> tryEstimate(const std::string& gpu_name,
                                     double qps, double num_queries,
                                     double epochs) const;

    /**
     * Like tryEstimate but throws FatalError on any failure.
     * @deprecated Legacy shim; prefer the Result form.
     */
    CostEstimate estimate(const std::string& gpu_name, double qps,
                          double num_queries, double epochs) const;

    /**
     * Cheapest option among the given (gpu, qps) candidates.
     * `NoViablePlan` on an empty candidate list.
     */
    Result<CostEstimate> tryCheapest(
        const std::vector<std::pair<std::string, double>>& candidates,
        double num_queries, double epochs) const;

    /**
     * Like tryCheapest but throws FatalError on any failure.
     * @deprecated Legacy shim; prefer the Result form.
     */
    CostEstimate cheapest(
        const std::vector<std::pair<std::string, double>>& candidates,
        double num_queries, double epochs) const;

    /** The catalog in use. */
    const CloudCatalog& catalog() const { return catalog_; }

  private:
    CloudCatalog catalog_;
};

}  // namespace ftsim

#endif  // FTSIM_CORE_COST_MODEL_HPP
