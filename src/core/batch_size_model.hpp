#ifndef FTSIM_CORE_BATCH_SIZE_MODEL_HPP
#define FTSIM_CORE_BATCH_SIZE_MODEL_HPP

/**
 * @file
 * The paper's analytical maximum-batch-size model (Eq. 1, §V-A).
 *
 *   MaxBSZ = floor( C0 * (GPU_mem - model_mem)
 *                   / (seq_len * ((1 - C1) + C1 * sparsity)) )
 *
 * C0 is the scaling coefficient (model-architecture dependent: how much
 * intermediate data a query generates) and C1 the MoE coefficient (what
 * fraction of that data scales with expert sparsity). Both are fitted
 * from measured (GPU, seq, sparsity, max-batch) points; GPU memory and
 * model memory are in GB, matching the paper's units.
 */

#include <cstddef>
#include <vector>

namespace ftsim {

/** One observed maximum-batch-size measurement. */
struct BatchSizeObservation {
    double gpuMemGB = 0.0;
    double modelMemGB = 0.0;
    double seqLen = 0.0;
    /** Active-expert fraction k/E (0.25 sparse, 1.0 dense). */
    double sparsity = 1.0;
    /** Measured maximum batch size. */
    int maxBatch = 0;
};

/** Eq. 1 with fitted coefficients. */
class MaxBatchModel {
  public:
    /** Constructs with explicit coefficients. */
    MaxBatchModel(double c0, double c1);

    /** Continuous (un-floored) prediction; the fitting target. */
    double predictContinuous(double gpu_mem_gb, double model_mem_gb,
                             double seq_len, double sparsity) const;

    /** Integer prediction with the floor (Eq. 1 proper). */
    int predict(double gpu_mem_gb, double model_mem_gb, double seq_len,
                double sparsity) const;

    /** Scaling coefficient C0. */
    double c0() const { return c0_; }

    /** MoE coefficient C1. */
    double c1() const { return c1_; }

    /**
     * Fits (C0, C1) to observations by derivative-free grid search on
     * the floored prediction error (the objective is piecewise constant,
     * as in the paper's description). Fatal on empty input.
     */
    static MaxBatchModel fit(const std::vector<BatchSizeObservation>& data);

    /** RMSE of floored predictions against the observations. */
    double rmse(const std::vector<BatchSizeObservation>& data) const;

  private:
    double c0_;
    double c1_;
};

}  // namespace ftsim

#endif  // FTSIM_CORE_BATCH_SIZE_MODEL_HPP
