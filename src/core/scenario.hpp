#ifndef FTSIM_CORE_SCENARIO_HPP
#define FTSIM_CORE_SCENARIO_HPP

/**
 * @file
 * The planning scenario: one fine-tuning run to be priced.
 *
 * A `Scenario` bundles everything the paper's §V workflow needs to
 * answer "what will this run cost on which GPU?": the model, the dataset
 * shape (median length, log-normal spread, size), the sparsity mode, the
 * training hyper-parameters, and the simulator calibration. It is the
 * single source of truth for the defaults that the seed code duplicated
 * across call sites (notably `lengthSigma`, which appeared as both 0.45
 * and 0.40 depending on the entry point).
 *
 * Scenarios are plain values: copy them, tweak a field (or chain the
 * fluent `with*` setters) and hand them to a `Planner`.
 */

#include <cstddef>
#include <string>
#include <utility>

#include "core/result.hpp"
#include "gpusim/exec_model.hpp"
#include "models/spec.hpp"

namespace ftsim {

/** One planned fine-tuning run (model + dataset + hyper-parameters). */
struct Scenario {
    // ----- Canonical defaults (the single copy in the codebase) -----

    /** Log-normal shape of the query-length distribution. */
    static constexpr double kDefaultLengthSigma = 0.40;
    /** GS/MATH median query length (paper Table II). */
    static constexpr std::size_t kDefaultMedianSeqLen = 148;
    /** GS/MATH dataset size (paper Table IV workload). */
    static constexpr double kDefaultNumQueries = 14000.0;
    /** Fine-tuning epochs (paper default). */
    static constexpr double kDefaultEpochs = 10.0;

    // ----- Fields -----

    ModelSpec model = ModelSpec::mixtral8x7b();
    /** Median query length of the dataset, tokens. */
    std::size_t medianSeqLen = kDefaultMedianSeqLen;
    /** Log-normal sigma of the length distribution (0 = no padding). */
    double lengthSigma = kDefaultLengthSigma;
    /** Dataset size in queries (prompt + ground-truth answer). */
    double numQueries = kDefaultNumQueries;
    /** Fine-tuning epochs. */
    double epochs = kDefaultEpochs;
    /** Sparse top-k routing (true) vs. all-experts dense (false). */
    bool sparse = true;
    /** Simulator calibration knobs. */
    SimCalibration calibration = {};

    // ----- Fluent setters (named-parameter construction) -----

    Scenario& withModel(ModelSpec m)
    {
        model = std::move(m);
        return *this;
    }
    Scenario& withMedianSeqLen(std::size_t seq)
    {
        medianSeqLen = seq;
        return *this;
    }
    Scenario& withLengthSigma(double sigma)
    {
        lengthSigma = sigma;
        return *this;
    }
    Scenario& withNumQueries(double n)
    {
        numQueries = n;
        return *this;
    }
    Scenario& withEpochs(double e)
    {
        epochs = e;
        return *this;
    }
    Scenario& withSparse(bool s)
    {
        sparse = s;
        return *this;
    }
    Scenario& withCalibration(const SimCalibration& c)
    {
        calibration = c;
        return *this;
    }

    // ----- Presets (the paper's workloads, Table II) -----

    /** Mixtral on GS/MATH: 14k queries, median 148 — the Table IV run. */
    static Scenario gsMath();

    /** Mixtral on Commonsense-15k: 15k queries, median 79. */
    static Scenario commonsense15k();

    /** The OpenOrca enterprise projection: 2M queries. */
    static Scenario openOrca();

    // ----- Introspection -----

    /**
     * Checks field domains (positive workload, non-negative sigma, ...).
     * Returns the validated scenario, or `InvalidArgument`.
     */
    Result<Scenario> validated() const;

    /** Human-readable one-liner for logs and report headers. */
    std::string describe() const;

    /**
     * Canonical cache identity: every field that affects any planning
     * answer — the full model fingerprint, the dataset shape, the
     * hyper-parameters, and the simulator calibration — serialized.
     * Serving layers key shared `Planner` instances on this, so two
     * tenants planning the same run (however they spelled it) land on
     * one planner and one step cache.
     */
    std::string canonicalKey() const;
};

}  // namespace ftsim

#endif  // FTSIM_CORE_SCENARIO_HPP
