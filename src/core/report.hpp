#ifndef FTSIM_CORE_REPORT_HPP
#define FTSIM_CORE_REPORT_HPP

/**
 * @file
 * One-call characterization & cost report.
 *
 * The report itself is produced by `Planner::report(gpu)` (see
 * core/planner.hpp): given a `Scenario` and a price catalog, it renders
 * a markdown artifact with the memory accounting, the stage/layer/kernel
 * breakdowns, the throughput sweep with fitted Eq. 2 coefficients, and
 * the end-to-end cost estimate — the deliverable a practitioner
 * budgeting a fine-tuning run actually wants. Every expensive quantity
 * is pulled through the planner's cache, so a report after a cost table
 * re-simulates nothing.
 *
 * This header keeps the legacy free-function entry point as a thin
 * deprecated shim over the planner.
 */

#include <string>

#include "core/planner.hpp"

namespace ftsim {

/**
 * Inputs describing one planned fine-tuning run.
 * @deprecated Prefer `Scenario` + `Planner::report`; this struct
 * remains for source compatibility and mirrors Scenario field-for-field
 * (plus the target GPU and catalog).
 */
struct ReportRequest {
    ModelSpec model = ModelSpec::mixtral8x7b();
    GpuSpec gpu = GpuSpec::a40();
    CloudCatalog catalog = CloudCatalog::cudoCompute();
    /** Dataset description (median length, spread, size). */
    std::size_t medianSeqLen = Scenario::kDefaultMedianSeqLen;
    double lengthSigma = Scenario::kDefaultLengthSigma;
    double numQueries = Scenario::kDefaultNumQueries;
    double epochs = Scenario::kDefaultEpochs;
    bool sparse = true;
    SimCalibration calibration = {};

    /** The equivalent planning scenario. */
    Scenario toScenario() const;
};

/**
 * Generates the full markdown report. Throws FatalError if the model
 * does not fit on the GPU at all.
 * @deprecated Shim over `Planner::report`; prefer the Result form.
 */
std::string generateCharacterizationReport(const ReportRequest& request);

}  // namespace ftsim

#endif  // FTSIM_CORE_REPORT_HPP
