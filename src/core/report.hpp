#ifndef FTSIM_CORE_REPORT_HPP
#define FTSIM_CORE_REPORT_HPP

/**
 * @file
 * One-call characterization & cost report.
 *
 * Bundles the paper's §IV/§V workflow into a single artifact: given a
 * model, a GPU, and a dataset description, produce a markdown report
 * with the memory accounting, the stage/layer/kernel breakdowns, the
 * throughput sweep with fitted Eq. 2 coefficients, and the end-to-end
 * cost estimate — the deliverable a practitioner budgeting a fine-tuning
 * run actually wants.
 */

#include <string>

#include "core/pipeline.hpp"

namespace ftsim {

/** Inputs describing one planned fine-tuning run. */
struct ReportRequest {
    ModelSpec model = ModelSpec::mixtral8x7b();
    GpuSpec gpu = GpuSpec::a40();
    CloudCatalog catalog = CloudCatalog::cudoCompute();
    /** Dataset description (median length, spread, size). */
    std::size_t medianSeqLen = 148;
    double lengthSigma = 0.40;
    double numQueries = 14000.0;
    double epochs = 10.0;
    bool sparse = true;
    SimCalibration calibration = {};
};

/**
 * Generates the full markdown report. Fatal if the model does not fit
 * on the GPU at all.
 */
std::string generateCharacterizationReport(const ReportRequest& request);

}  // namespace ftsim

#endif  // FTSIM_CORE_REPORT_HPP
