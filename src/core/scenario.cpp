#include "core/scenario.hpp"

namespace ftsim {

Scenario
Scenario::gsMath()
{
    return Scenario{};  // The defaults *are* the GS/MATH run.
}

Scenario
Scenario::commonsense15k()
{
    Scenario s;
    s.medianSeqLen = 79;   // CS median (paper Table II).
    s.lengthSigma = 0.45;  // CS lengths spread wider than GS/MATH.
    s.numQueries = 15000.0;
    return s;
}

Scenario
Scenario::openOrca()
{
    Scenario s;
    s.numQueries = 2e6;
    return s;
}

Result<Scenario>
Scenario::validated() const
{
    if (medianSeqLen < 1)
        return Error{ErrorCode::InvalidArgument,
                     "Scenario: medianSeqLen must be >= 1"};
    if (lengthSigma < 0.0)
        return Error{ErrorCode::InvalidArgument,
                     "Scenario: lengthSigma must be >= 0"};
    if (numQueries <= 0.0)
        return Error{ErrorCode::InvalidArgument,
                     "Scenario: numQueries must be > 0"};
    if (epochs <= 0.0)
        return Error{ErrorCode::InvalidArgument,
                     "Scenario: epochs must be > 0"};
    return *this;
}

std::string
Scenario::describe() const
{
    return strCat(model.name, sparse ? " (sparse)" : " (dense)", ", ",
                  numQueries, " queries, median ", medianSeqLen,
                  " tokens (sigma ", lengthSigma, "), ", epochs,
                  " epochs");
}

std::string
Scenario::canonicalKey() const
{
    // strExact throughout: keys must distinguish doubles past the 6
    // significant digits strCat would keep, or two tenants' distinct
    // scenarios would alias one cached answer.
    return strCat(model.fingerprint(), "|seq=", medianSeqLen,
                  "|sigma=", strExact(lengthSigma),
                  "|q=", strExact(numQueries),
                  "|ep=", strExact(epochs), "|sparse=", sparse,
                  "|cal=", strExact(calibration.hostOverheadUs), ',',
                  strExact(calibration.matmulEfficiency), ',',
                  strExact(calibration.vectorEfficiency), ',',
                  strExact(calibration.dequantEfficiency), ',',
                  strExact(calibration.memoryEfficiency), ',',
                  strExact(calibration.blocksPerSm), ',',
                  strExact(calibration.minOccupancy), ',',
                  strExact(calibration.stepOverheadMs), ',',
                  strExact(calibration.optimizerPasses));
}

}  // namespace ftsim
