#ifndef FTSIM_CORE_PLANNER_HPP
#define FTSIM_CORE_PLANNER_HPP

/**
 * @file
 * The unified planning facade over the paper's §IV/§V workflow.
 *
 * A `Planner` is constructed once from a `Scenario` (what run?) and a
 * `CloudCatalog` (what prices?) and then answers every planning query —
 * max batch size, throughput, Eq. 1/2 fits, per-GPU cost, the Table IV
 * comparison, the full characterization report — through one object:
 *
 *     Planner planner(Scenario::gsMath());
 *     int bsz   = planner.maxBatch(GpuSpec::a40()).valueOr(0);
 *     auto plan = planner.cheapestPlan(GpuSpec::paperGpus());
 *
 * Every query returns `Result<T>`: domain failures (unknown GPU, model
 * does not fit) are values to branch on, not process exits.
 *
 * Queries memoize. Step simulation — the expensive primitive every
 * higher-level answer reduces to — is cached per (GPU, run config), so
 * a cost table followed by a report followed by a sweep never simulates
 * the same configuration twice (`stats()` exposes the hit/miss counters
 * and the underlying simulators' step counts for verification). The
 * multi-GPU fan-outs (`costTable`, `cheapestPlan`, `batchSizeSweep`)
 * optionally run on a thread pool (`setParallelism`). The per-GPU
 * batch sweep (`throughputObservations`) instead runs its cache misses
 * as one vectorized `FineTuneSim::profileSweep` pass — a single
 * `StepPlan::evaluateSweep` walk per plan shape beats any per-batch
 * fan-out, and `costTable`'s per-GPU profile (max batch only) reads
 * the same promised-future step cache, so a sweep that already ran
 * makes the cost table's profile a cache hit.
 *
 * The cache is thread-safe and sharded per GPU, and within a shard the
 * entries have shared-future once-semantics: the shard mutex only
 * guards the map itself, while the simulation runs *outside* the lock.
 * Concurrent queries against the same GPU therefore compute distinct
 * configurations in parallel; threads asking for the same in-flight
 * configuration wait on its future instead of re-simulating, so
 * `stepsSimulated == stepCacheMisses` holds under any interleaving.
 */

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats_registry.hpp"
#include "core/cost_model.hpp"
#include "core/pipeline_types.hpp"
#include "core/result.hpp"
#include "core/scenario.hpp"
#include "gpusim/finetune_sim.hpp"
#include "gpusim/memory_model.hpp"
#include "gpusim/plan_registry.hpp"

namespace ftsim {

/** Cache instrumentation counters (see Planner::stats). */
struct PlannerStats {
    /** Step-profile queries answered from the cache. */
    std::uint64_t stepCacheHits = 0;
    /** Step-profile queries that had to simulate. */
    std::uint64_t stepCacheMisses = 0;
    /** Steps actually simulated, summed over the per-GPU simulators.
     *  Equals stepCacheMisses when no query bypassed the cache. */
    std::uint64_t stepsSimulated = 0;
    /** Step-cache entries LRU-evicted, summed over the per-GPU shards
     *  (0 unless setStepCacheCapacity bounded them). */
    std::uint64_t stepCacheEvictions = 0;
};

/** Scenario-driven planning facade (see file comment). */
class Planner {
  public:
    /**
     * Plans @p scenario against @p catalog prices.
     * @param registry optional fleet-wide compiled-plan cache shared
     *        with other planners (see gpusim/plan_registry.hpp); the
     *        serving layer passes one registry to every planner so a
     *        fleet of scenarios on one model compiles each step-plan
     *        shape exactly once. Null keeps plans planner-local.
     */
    explicit Planner(Scenario scenario,
                     CloudCatalog catalog = CloudCatalog::cudoCompute(),
                     std::shared_ptr<PlanRegistry> registry = nullptr);

    ~Planner();
    Planner(const Planner&) = delete;
    Planner& operator=(const Planner&) = delete;

    /** The scenario being planned. */
    const Scenario& scenario() const { return scenario_; }

    /** The price list in use. */
    const CloudCatalog& catalog() const { return catalog_; }

    /**
     * Worker threads for the multi-GPU fan-outs (costTable,
     * cheapestPlan, batchSizeSweep). 0 or 1 = serial. Returns *this.
     */
    Planner& setParallelism(unsigned threads);

    /**
     * Bounds each per-GPU step-cache shard to @p entries memoized
     * profiles (LRU-evicted past that; `common/lru_cache.hpp`).
     * 0 = unbounded, the default and the pre-bound behavior. An
     * evicted configuration re-simulates on its next query —
     * deterministically identical, just recounted as a miss — so the
     * bound trades recomputation for memory, never correctness.
     * Applies to shards created after the call: set it before the
     * first query (shards materialize lazily per GPU). Returns *this.
     */
    Planner& setStepCacheCapacity(std::size_t entries);

    /**
     * Additionally publishes step-cache traffic into @p registry
     * (`<prefix>.step_cache_hits` / `<prefix>.step_cache_misses`) at
     * the exact increment sites stats() counts — the fleet-wide cells
     * the live `stats` scrape reads. The planner keeps @p registry
     * alive. Setup-time only: bind before the first query (the serving
     * layer binds at planner construction); not bound = zero overhead,
     * which is how the perf benches construct planners. Returns *this.
     */
    Planner& bindStats(std::shared_ptr<StatsRegistry> registry,
                       const std::string& prefix = "planner");

    /**
     * Cell-level bindStats: the caller already registered @p hits and
     * @p misses in @p registry. Takes no registry lock, so it is safe
     * under component locks (PlanService binds planners it constructs
     * inside its planner-pool mutex through this overload; the
     * registry mutex must never nest inside a component mutex).
     */
    Planner& bindStats(std::shared_ptr<StatsRegistry> registry,
                       StatsCounter& hits, StatsCounter& misses);

    // ----- Per-GPU queries (memoized) -----

    /** Full memory accounting on @p gpu (always succeeds). */
    Result<MemoryBreakdown> memory(const GpuSpec& gpu) const;

    /**
     * Maximum batch size on @p gpu; `DoesNotFit` when the model does
     * not fit even at batch 1.
     */
    Result<int> maxBatch(const GpuSpec& gpu) const;

    /** Step profile at the maximum batch size. */
    Result<StepProfile> profile(const GpuSpec& gpu) const;

    /**
     * Step profile at an explicit batch size (padding-amplified seq
     * length per the scenario's sigma). `InvalidArgument` on batch 0.
     * Does not require the batch to fit (ablations probe beyond).
     */
    Result<StepProfile> profileAt(const GpuSpec& gpu,
                                  std::size_t batch) const;

    /** Queries/second at the maximum batch size. */
    Result<double> throughput(const GpuSpec& gpu) const;

    /**
     * The merged dense + sparse throughput sweep on @p gpu, batch 1 up
     * to each mode's own max (the Eq. 2 fitting set). `DoesNotFit`
     * when neither mode fits at batch 1.
     */
    Result<std::vector<ThroughputObservation>> throughputObservations(
        const GpuSpec& gpu) const;

    /** Eq. 2 fitted to this scenario's sweep on @p gpu. */
    Result<ThroughputFit> fitThroughput(const GpuSpec& gpu) const;

    /** End-to-end cost on @p gpu; `UnknownGpu` when unpriced. */
    Result<CostEstimate> cost(const GpuSpec& gpu) const;

    /** The full markdown characterization report for @p gpu. */
    Result<std::string> report(const GpuSpec& gpu) const;

    // ----- Multi-GPU queries -----

    /**
     * The Table IV comparison: one row per GPU that is both priced and
     * large enough. `EmptySweep` on an empty GPU list, `NoViablePlan`
     * when no GPU qualifies.
     */
    Result<std::vector<CostRow>> costTable(
        const std::vector<GpuSpec>& gpus) const;

    /** The cheapest end-to-end row of costTable(). */
    Result<CostRow> cheapestPlan(const std::vector<GpuSpec>& gpus) const;

    /**
     * Ground-truth (GPU, seq, sparsity, max batch) observations over
     * the sweep grid — the Eq. 1 fitting set. Sweeps both sparse and
     * dense regardless of the scenario mode, as the paper does.
     */
    Result<std::vector<BatchSizeObservation>> batchSizeSweep(
        const std::vector<GpuSpec>& gpus,
        const std::vector<std::size_t>& seq_lens) const;

    /** Eq. 1 fitted to batchSizeSweep(). */
    Result<BatchSizeFit> fitBatchSize(
        const std::vector<GpuSpec>& gpus,
        const std::vector<std::size_t>& seq_lens) const;

    // ----- Introspection -----

    /**
     * Snapshot of the cache counters since construction (or the last
     * resetStats()).
     *
     * Memory-order contract: each counter is a monotonic atomic, so a
     * snapshot taken *while queries are in flight* reads each counter
     * exactly as of some moment during the call, but the counters are
     * not mutually atomic — a miss is counted before its simulation
     * runs, so a concurrent snapshot may briefly observe
     * `stepsSimulated < stepCacheMisses`. Any happens-before edge that
     * orders the queries before the snapshot (joining the querying
     * threads, `.get()` on their futures, or a mutex handoff) makes
     * the next snapshot exact, and at any quiescent point the invariant
     * `stepsSimulated == stepCacheMisses` holds (no query bypasses the
     * cache).
     */
    PlannerStats stats() const;

    /**
     * Re-zeroes the stats() window: subsequent snapshots count from
     * here, so per-window deltas (a serving stats endpoint, a bench
     * phase) are meaningful without tracking baselines externally.
     * Call at a quiescent point (no queries in flight) for an exact
     * zero; a concurrent reset is safe but may leave a few in-flight
     * increments in the new window.
     */
    void resetStats();

    /** The fleet-wide plan registry this planner was built with (may
     *  be null). */
    const std::shared_ptr<PlanRegistry>& planRegistry() const
    {
        return registry_;
    }

  private:
    struct GpuState;

    /** The per-GPU shard for @p gpu (created on first use). */
    GpuState& stateFor(const GpuSpec& gpu) const;

    /**
     * Cached step profile for @p config on @p state's GPU. Simulates
     * outside the shard lock with per-entry once-semantics: exactly one
     * thread simulates a given configuration, concurrent requesters for
     * the same key block on its shared future, and requesters for
     * *different* keys on the same GPU proceed in parallel. Returns by
     * value: with a bounded shard a reference into the cache could be
     * evicted (and its shared state dropped) while the caller reads it.
     */
    StepProfile profiledStep(GpuState& state,
                             const RunConfig& config) const;

    /** Scenario field validation shared by every query. */
    Result<Scenario> checked() const { return scenario_.validated(); }

    Scenario scenario_;
    CloudCatalog catalog_;
    /** One estimator for the planner's lifetime (catalog_ must precede
     *  it: CostEstimator snapshots the catalog at construction). */
    CostEstimator estimator_;
    std::shared_ptr<PlanRegistry> registry_;
    unsigned parallelism_ = 1;
    /** Per-shard step-cache bound (0 = unbounded); see
     *  setStepCacheCapacity. */
    std::size_t step_cache_capacity_ = 0;

    mutable std::mutex registry_mutex_;
    mutable std::map<std::string, std::unique_ptr<GpuState>> states_;
    mutable std::atomic<std::uint64_t> step_hits_{0};
    mutable std::atomic<std::uint64_t> step_misses_{0};
    // Optional shared registry cells, bumped alongside the atomics
    // above (bindStats); the shared_ptr pins their storage.
    std::shared_ptr<StatsRegistry> stats_registry_;
    StatsCounter* shared_hits_ = nullptr;
    StatsCounter* shared_misses_ = nullptr;
    // resetStats() baselines: stats() reports counters minus these.
    mutable std::atomic<std::uint64_t> hits_base_{0};
    mutable std::atomic<std::uint64_t> misses_base_{0};
    mutable std::atomic<std::uint64_t> steps_base_{0};
    mutable std::atomic<std::uint64_t> evictions_base_{0};
};

}  // namespace ftsim

#endif  // FTSIM_CORE_PLANNER_HPP
