#include "core/pipeline.hpp"

#include "common/logging.hpp"

namespace ftsim {

std::vector<BatchSizeObservation>
ExperimentPipeline::collectBatchSizeData(
    const ModelSpec& model, const std::vector<GpuSpec>& gpus,
    const std::vector<std::size_t>& seq_lens)
{
    if (gpus.empty() || seq_lens.empty())
        fatal("collectBatchSizeData: empty sweep");
    std::vector<BatchSizeObservation> out;
    for (const GpuSpec& gpu : gpus) {
        for (std::size_t seq : seq_lens) {
            for (bool sparse : {false, true}) {
                BatchSizeObservation obs;
                obs.gpuMemGB = gpu.memGB;
                obs.modelMemGB = model.weightMemoryBytes() / 1e9;
                obs.seqLen = static_cast<double>(seq);
                obs.sparsity = model.sparsity(sparse);
                obs.maxBatch =
                    MemoryModel::maxBatchSize(model, gpu, seq, sparse);
                out.push_back(obs);
            }
        }
    }
    return out;
}

BatchSizeFit
ExperimentPipeline::fitBatchSize(const ModelSpec& model,
                                 const std::vector<GpuSpec>& gpus,
                                 const std::vector<std::size_t>& seq_lens)
{
    auto data = collectBatchSizeData(model, gpus, seq_lens);
    MaxBatchModel fitted = MaxBatchModel::fit(data);
    BatchSizeFit fit{fitted, std::move(data), 0.0};
    fit.rmse = fit.model.rmse(fit.observations);
    return fit;
}

std::vector<ThroughputObservation>
ExperimentPipeline::collectThroughputData(const ModelSpec& model,
                                          const GpuSpec& gpu,
                                          std::size_t seq_len,
                                          const SimCalibration& calib,
                                          double length_sigma)
{
    FineTuneSim sim(model, gpu, calib);
    std::vector<ThroughputObservation> out;
    for (bool sparse : {false, true}) {
        const int max_batch =
            MemoryModel::maxBatchSize(model, gpu, seq_len, sparse);
        if (max_batch < 1) {
            warn(strCat("collectThroughputData: ", model.name,
                        " does not fit on ", gpu.name,
                        sparse ? " (sparse)" : " (dense)"));
            continue;
        }
        for (const ThroughputPoint& pt : sim.throughputSweep(
                 seq_len, sparse, static_cast<std::size_t>(max_batch),
                 length_sigma)) {
            ThroughputObservation obs;
            obs.batchSize = static_cast<double>(pt.batchSize);
            obs.sparsity = model.sparsity(sparse);
            obs.qps = pt.qps;
            out.push_back(obs);
        }
    }
    if (out.empty())
        fatal("collectThroughputData: model fits on no configuration");
    return out;
}

ThroughputFit
ExperimentPipeline::fitThroughput(const ModelSpec& model,
                                  const GpuSpec& gpu, std::size_t seq_len,
                                  const SimCalibration& calib,
                                  double length_sigma)
{
    auto data =
        collectThroughputData(model, gpu, seq_len, calib, length_sigma);
    ThroughputModel fitted = ThroughputModel::fit(data);
    ThroughputFit fit{fitted, std::move(data), 0.0};
    fit.rmse = fit.model.rmse(fit.observations);
    return fit;
}

std::vector<CostRow>
ExperimentPipeline::costTable(const ModelSpec& model,
                              const std::vector<GpuSpec>& gpus,
                              const CloudCatalog& catalog,
                              std::size_t seq_len, bool sparse,
                              double num_queries, double epochs,
                              const SimCalibration& calib,
                              double length_sigma)
{
    CostEstimator estimator(catalog);
    std::vector<CostRow> rows;
    for (const GpuSpec& gpu : gpus) {
        if (!catalog.has(gpu.name))
            continue;  // No price -> no row (paper's CUDO list).
        const int mbs =
            MemoryModel::maxBatchSize(model, gpu, seq_len, sparse);
        if (mbs < 1)
            continue;  // Does not fit.
        FineTuneSim sim(model, gpu, calib);
        const double qps =
            sim.throughput(static_cast<std::size_t>(mbs), seq_len, sparse,
                           length_sigma);
        CostEstimate est =
            estimator.estimate(gpu.name, qps, num_queries, epochs);
        rows.push_back({gpu.name, gpu.memGB, mbs, qps, est.dollarsPerHour,
                        est.totalDollars});
    }
    if (rows.empty())
        fatal("costTable: no GPU in the catalog fits the model");
    return rows;
}

}  // namespace ftsim
