#include "core/pipeline.hpp"

namespace ftsim {

namespace {

/** One-shot planner for a legacy sweep call (no catalog needed). */
Planner
plannerFor(const ModelSpec& model, std::size_t seq_len,
           const SimCalibration& calib, double length_sigma)
{
    Scenario scenario;
    scenario.model = model;
    scenario.medianSeqLen = seq_len;
    scenario.lengthSigma = length_sigma;
    scenario.calibration = calib;
    return Planner(std::move(scenario), CloudCatalog());
}

}  // namespace

std::vector<BatchSizeObservation>
ExperimentPipeline::collectBatchSizeData(
    const ModelSpec& model, const std::vector<GpuSpec>& gpus,
    const std::vector<std::size_t>& seq_lens)
{
    Scenario scenario;
    scenario.model = model;
    Planner planner(std::move(scenario), CloudCatalog());
    return planner.batchSizeSweep(gpus, seq_lens).valueOrThrow();
}

BatchSizeFit
ExperimentPipeline::fitBatchSize(const ModelSpec& model,
                                 const std::vector<GpuSpec>& gpus,
                                 const std::vector<std::size_t>& seq_lens)
{
    Scenario scenario;
    scenario.model = model;
    Planner planner(std::move(scenario), CloudCatalog());
    return planner.fitBatchSize(gpus, seq_lens).valueOrThrow();
}

std::vector<ThroughputObservation>
ExperimentPipeline::collectThroughputData(const ModelSpec& model,
                                          const GpuSpec& gpu,
                                          std::size_t seq_len,
                                          const SimCalibration& calib,
                                          double length_sigma)
{
    return plannerFor(model, seq_len, calib, length_sigma)
        .throughputObservations(gpu)
        .valueOrThrow();
}

ThroughputFit
ExperimentPipeline::fitThroughput(const ModelSpec& model,
                                  const GpuSpec& gpu, std::size_t seq_len,
                                  const SimCalibration& calib,
                                  double length_sigma)
{
    return plannerFor(model, seq_len, calib, length_sigma)
        .fitThroughput(gpu)
        .valueOrThrow();
}

std::vector<CostRow>
ExperimentPipeline::costTable(const ModelSpec& model,
                              const std::vector<GpuSpec>& gpus,
                              const CloudCatalog& catalog,
                              std::size_t seq_len, bool sparse,
                              double num_queries, double epochs,
                              const SimCalibration& calib,
                              double length_sigma)
{
    Scenario scenario;
    scenario.model = model;
    scenario.medianSeqLen = seq_len;
    scenario.lengthSigma = length_sigma;
    scenario.numQueries = num_queries;
    scenario.epochs = epochs;
    scenario.sparse = sparse;
    scenario.calibration = calib;
    Planner planner(std::move(scenario), catalog);
    return planner.costTable(gpus).valueOrThrow();
}

}  // namespace ftsim
