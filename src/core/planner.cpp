#include "core/planner.hpp"

#include <algorithm>
#include <optional>

#include "common/logging.hpp"
#include "common/lru_cache.hpp"
#include "common/parallel.hpp"

namespace ftsim {

namespace {

/**
 * Cache identity of one GPU. Keyed on the full spec, not just the name,
 * so a tweaked copy ("A40 with 24 GB") never aliases the preset.
 */
std::string
gpuFingerprint(const GpuSpec& gpu)
{
    return strCat(gpu.name, '|', gpu.memGB, '|', gpu.numSms, '|',
                  gpu.tensorTflops, '|', gpu.vectorTflops, '|',
                  gpu.dramGBps, '|', gpu.launchUs);
}

}  // namespace

/** Per-GPU cache shard: one simulator plus every memoized answer. */
struct Planner::GpuState {
    GpuSpec gpu;
    FineTuneSim sim;
    /** Guards the cache containers below (not the registry) — but NOT
     *  the simulations themselves: step entries are shared futures and
     *  the owning thread fulfills them outside the lock. */
    std::mutex mutex;
    /** Memoized step profiles, LRU-bounded when the planner's
     *  step-cache capacity is set (0 = unbounded). Values are shared
     *  futures, so evicting an entry mid-simulation never orphans a
     *  waiter — every waiter holds its own copy of the shared state. */
    LruCache<std::string, std::shared_future<StepProfile>> steps;
    std::optional<MemoryBreakdown> mem;
    std::optional<std::vector<ThroughputObservation>> observations;
    std::optional<ThroughputFit> fit;

    GpuState(const ModelSpec& model, const GpuSpec& g,
             const SimCalibration& calib,
             std::shared_ptr<PlanRegistry> registry,
             std::size_t step_capacity)
        : gpu(g), sim(model, g, calib, std::move(registry)),
          steps(step_capacity)
    {
    }

    static std::string stepKey(const RunConfig& config)
    {
        return strCat(config.batchSize, '|', config.seqLen, '|',
                      config.sparse ? 1 : 0, '|',
                      config.gradientCheckpointing);
    }
};

Planner::Planner(Scenario scenario, CloudCatalog catalog,
                 std::shared_ptr<PlanRegistry> registry)
    : scenario_(std::move(scenario)), catalog_(std::move(catalog)),
      estimator_(catalog_), registry_(std::move(registry))
{
}

Planner::~Planner() = default;

Planner&
Planner::setParallelism(unsigned threads)
{
    parallelism_ = threads > 0 ? threads : 1;
    return *this;
}

Planner&
Planner::setStepCacheCapacity(std::size_t entries)
{
    step_cache_capacity_ = entries;
    return *this;
}

Planner&
Planner::bindStats(std::shared_ptr<StatsRegistry> registry,
                   const std::string& prefix)
{
    StatsCounter& hits =
        registry->counter(strCat(prefix, ".step_cache_hits"));
    StatsCounter& misses =
        registry->counter(strCat(prefix, ".step_cache_misses"));
    return bindStats(std::move(registry), hits, misses);
}

Planner&
Planner::bindStats(std::shared_ptr<StatsRegistry> registry,
                   StatsCounter& hits, StatsCounter& misses)
{
    stats_registry_ = std::move(registry);
    shared_hits_ = &hits;
    shared_misses_ = &misses;
    return *this;
}

Planner::GpuState&
Planner::stateFor(const GpuSpec& gpu) const
{
    const std::string key = gpuFingerprint(gpu);
    std::lock_guard<std::mutex> lock(registry_mutex_);
    auto it = states_.find(key);
    if (it == states_.end())
        it = states_
                 .emplace(key, std::make_unique<GpuState>(
                                   scenario_.model, gpu,
                                   scenario_.calibration, registry_,
                                   step_cache_capacity_))
                 .first;
    return *it->second;
}

StepProfile
Planner::profiledStep(GpuState& state, const RunConfig& config) const
{
    const std::string key = GpuState::stepKey(config);
    std::packaged_task<StepProfile()> task;
    std::shared_future<StepProfile> future;
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (std::shared_future<StepProfile>* cached =
                state.steps.get(key)) {
            ++step_hits_;
            if (shared_hits_)
                shared_hits_->inc();
            future = *cached;
        } else {
            ++step_misses_;
            if (shared_misses_)
                shared_misses_->inc();
            task = std::packaged_task<StepProfile()>([&state, config] {
                return state.sim.profileStep(config);
            });
            future = task.get_future().share();
            // A bounded shard may evict here; displaced futures are
            // simply dropped — any thread still waiting on one holds
            // its own shared_future copy, and a later query for the
            // evicted key re-simulates (a fresh miss, identical
            // profile).
            state.steps.put(key, future);
        }
    }
    // Simulate *outside* the shard lock: concurrent queries for the
    // same GPU but different configs proceed in parallel; threads that
    // raced on this config wait on the shared future below instead of
    // re-simulating (once-semantics: misses == simulations).
    if (task.valid())
        task();
    return future.get();
}

Result<MemoryBreakdown>
Planner::memory(const GpuSpec& gpu) const
{
    Result<Scenario> valid = checked();
    if (!valid)
        return valid.error();
    GpuState& state = stateFor(gpu);
    std::lock_guard<std::mutex> lock(state.mutex);
    if (!state.mem)
        state.mem = MemoryModel::analyze(scenario_.model, gpu,
                                         scenario_.medianSeqLen,
                                         scenario_.sparse);
    return *state.mem;
}

Result<int>
Planner::maxBatch(const GpuSpec& gpu) const
{
    Result<MemoryBreakdown> mem = memory(gpu);
    if (!mem)
        return mem.error();
    if (mem.value().maxBatchSize < 1)
        return Error{ErrorCode::DoesNotFit,
                     strCat(scenario_.model.name, " does not fit on ",
                            gpu.name,
                            scenario_.sparse ? " (sparse)" : " (dense)")};
    return mem.value().maxBatchSize;
}

Result<StepProfile>
Planner::profileAt(const GpuSpec& gpu, std::size_t batch) const
{
    Result<Scenario> valid = checked();
    if (!valid)
        return valid.error();
    if (batch < 1)
        return Error{ErrorCode::InvalidArgument,
                     "Planner::profileAt: batch must be >= 1"};
    GpuState& state = stateFor(gpu);
    RunConfig config;
    config.batchSize = batch;
    config.seqLen = state.sim.paddedSeqLen(scenario_.medianSeqLen, batch,
                                           scenario_.lengthSigma);
    config.sparse = scenario_.sparse;
    return profiledStep(state, config);
}

Result<StepProfile>
Planner::profile(const GpuSpec& gpu) const
{
    Result<int> mbs = maxBatch(gpu);
    if (!mbs)
        return mbs.error();
    return profileAt(gpu, static_cast<std::size_t>(mbs.value()));
}

Result<double>
Planner::throughput(const GpuSpec& gpu) const
{
    Result<StepProfile> profile_at_max = profile(gpu);
    if (!profile_at_max)
        return profile_at_max.error();
    return profile_at_max.value().throughputQps;
}

Result<std::vector<ThroughputObservation>>
Planner::throughputObservations(const GpuSpec& gpu) const
{
    Result<Scenario> valid = checked();
    if (!valid)
        return valid.error();
    GpuState& state = stateFor(gpu);
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (state.observations)
            return *state.observations;
    }

    // The fitting set merges both routing modes (the paper fits one
    // (C2, C3, C4) triple over the dense + sparse sweeps), whatever
    // mode the scenario itself plans for. The grid itself is owned by
    // the simulator (sweepConfigs) so the perf bench times the exact
    // same workload.
    const std::vector<RunConfig> jobs = state.sim.sweepConfigs(
        scenario_.medianSeqLen, scenario_.lengthSigma);
    // A mode absent from the grid did not fit at batch 1 — derive the
    // warning from the jobs themselves so fit logic lives only in
    // sweepConfigs.
    for (bool sparse : {false, true}) {
        const bool present = std::any_of(
            jobs.begin(), jobs.end(),
            [sparse](const RunConfig& c) { return c.sparse == sparse; });
        if (!present)
            warn(strCat("Planner::throughputObservations: ",
                        scenario_.model.name, " does not fit on ",
                        gpu.name, sparse ? " (sparse)" : " (dense)"));
    }
    if (jobs.empty())
        return Error{ErrorCode::DoesNotFit,
                     strCat(scenario_.model.name,
                            " fits on no configuration of ", gpu.name)};

    // Resolve the whole grid against the step cache in one pass under
    // the shard lock: cached jobs capture their futures (hits), missing
    // jobs insert *promised* entries (misses, counted once each). The
    // vectorized sweep below then simulates exactly the missing set and
    // fulfills the promises — per-entry once-semantics, cache
    // population, and `stepsSimulated == stepCacheMisses` all hold
    // exactly as they did under the per-batch fan-out, but the misses
    // run as one `profileSweep` pass instead of per-point evaluate()
    // calls.
    std::vector<std::shared_future<StepProfile>> futures(jobs.size());
    std::vector<std::size_t> missing;
    std::vector<std::promise<StepProfile>> promises;
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const std::string key = GpuState::stepKey(jobs[i]);
            if (std::shared_future<StepProfile>* cached =
                    state.steps.get(key)) {
                ++step_hits_;
                if (shared_hits_)
                    shared_hits_->inc();
                futures[i] = *cached;
            } else {
                ++step_misses_;
                if (shared_misses_)
                    shared_misses_->inc();
                promises.emplace_back();
                futures[i] = promises.back().get_future().share();
                state.steps.put(key, futures[i]);
                missing.push_back(i);
            }
        }
    }
    if (!missing.empty()) {
        std::vector<RunConfig> miss_jobs;
        miss_jobs.reserve(missing.size());
        for (std::size_t idx : missing)
            miss_jobs.push_back(jobs[idx]);
        std::vector<StepProfile> profiles =
            state.sim.profileSweep(miss_jobs);
        for (std::size_t k = 0; k < profiles.size(); ++k)
            promises[k].set_value(std::move(profiles[k]));
    }

    std::vector<ThroughputObservation> out(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        // A hit's future may still be in flight (its owner simulates
        // outside the shard lock); get() waits exactly like the old
        // per-point path did.
        const StepProfile& profile = futures[i].get();
        ThroughputObservation obs;
        obs.batchSize = static_cast<double>(jobs[i].batchSize);
        obs.sparsity = scenario_.model.sparsity(jobs[i].sparse);
        obs.qps = profile.throughputQps;
        out[i] = obs;
    }

    std::lock_guard<std::mutex> lock(state.mutex);
    if (!state.observations)
        state.observations = std::move(out);
    return *state.observations;
}

Result<ThroughputFit>
Planner::fitThroughput(const GpuSpec& gpu) const
{
    GpuState& state = stateFor(gpu);
    {
        std::lock_guard<std::mutex> lock(state.mutex);
        if (state.fit)
            return *state.fit;
    }
    Result<std::vector<ThroughputObservation>> obs =
        throughputObservations(gpu);
    if (!obs)
        return obs.error();
    if (obs.value().size() < 3)
        return Error{ErrorCode::DoesNotFit,
                     strCat("Planner::fitThroughput: only ",
                            obs.value().size(),
                            " sweep points on ", gpu.name,
                            "; Eq. 2 needs at least 3")};
    ThroughputFit fit{ThroughputModel::fit(obs.value()), obs.value(),
                      0.0};
    fit.rmse = fit.model.rmse(fit.observations);

    std::lock_guard<std::mutex> lock(state.mutex);
    if (!state.fit)
        state.fit = std::move(fit);
    return *state.fit;
}

Result<CostEstimate>
Planner::cost(const GpuSpec& gpu) const
{
    Result<double> qps = throughput(gpu);
    if (!qps)
        return qps.error();
    return estimator_.tryEstimate(gpu.name, qps.value(),
                                  scenario_.numQueries,
                                  scenario_.epochs);
}

Result<std::vector<CostRow>>
Planner::costTable(const std::vector<GpuSpec>& gpus) const
{
    Result<Scenario> valid = checked();
    if (!valid)
        return valid.error();
    if (gpus.empty())
        return Error{ErrorCode::EmptySweep,
                     "Planner::costTable: empty GPU list"};

    // One slot per GPU keeps the fan-out order-stable under threading.
    std::vector<std::optional<CostRow>> slots(gpus.size());
    parallelFor(gpus.size(), parallelism_, [&](std::size_t i) {
        const GpuSpec& gpu = gpus[i];
        if (!catalog_.has(gpu.name))
            return;  // No price -> no row (paper's CUDO list).
        Result<int> mbs = maxBatch(gpu);
        if (!mbs)
            return;  // Does not fit.
        Result<CostEstimate> est = cost(gpu);
        if (!est)
            return;
        slots[i] = CostRow{gpu.name,
                           gpu.memGB,
                           mbs.value(),
                           est.value().throughputQps,
                           est.value().dollarsPerHour,
                           est.value().totalDollars};
    });

    std::vector<CostRow> rows;
    for (std::optional<CostRow>& slot : slots)
        if (slot)
            rows.push_back(std::move(*slot));
    if (rows.empty())
        return Error{ErrorCode::NoViablePlan,
                     strCat("Planner::costTable: no GPU in the catalog "
                            "fits ",
                            scenario_.model.name)};
    return rows;
}

Result<CostRow>
Planner::cheapestPlan(const std::vector<GpuSpec>& gpus) const
{
    Result<std::vector<CostRow>> rows = costTable(gpus);
    if (!rows)
        return rows.error();
    const CostRow* best = nullptr;
    for (const CostRow& row : rows.value())
        if (best == nullptr || row.totalDollars < best->totalDollars)
            best = &row;
    return *best;
}

Result<std::vector<BatchSizeObservation>>
Planner::batchSizeSweep(const std::vector<GpuSpec>& gpus,
                        const std::vector<std::size_t>& seq_lens) const
{
    Result<Scenario> valid = checked();
    if (!valid)
        return valid.error();
    if (gpus.empty() || seq_lens.empty())
        return Error{ErrorCode::EmptySweep,
                     "Planner::batchSizeSweep: empty sweep"};

    const double model_mem = scenario_.model.weightMemoryBytes() / 1e9;
    // Pure memory-model arithmetic — per-GPU blocks fan out, then
    // concatenate in GPU order so the result is deterministic.
    std::vector<std::vector<BatchSizeObservation>> blocks(gpus.size());
    parallelFor(gpus.size(), parallelism_, [&](std::size_t i) {
        const GpuSpec& gpu = gpus[i];
        for (std::size_t seq : seq_lens) {
            for (bool sparse : {false, true}) {
                BatchSizeObservation obs;
                obs.gpuMemGB = gpu.memGB;
                obs.modelMemGB = model_mem;
                obs.seqLen = static_cast<double>(seq);
                obs.sparsity = scenario_.model.sparsity(sparse);
                obs.maxBatch = MemoryModel::maxBatchSize(
                    scenario_.model, gpu, seq, sparse);
                blocks[i].push_back(obs);
            }
        }
    });

    std::vector<BatchSizeObservation> out;
    out.reserve(gpus.size() * seq_lens.size() * 2);
    for (std::vector<BatchSizeObservation>& block : blocks)
        out.insert(out.end(), block.begin(), block.end());
    return out;
}

Result<BatchSizeFit>
Planner::fitBatchSize(const std::vector<GpuSpec>& gpus,
                      const std::vector<std::size_t>& seq_lens) const
{
    Result<std::vector<BatchSizeObservation>> data =
        batchSizeSweep(gpus, seq_lens);
    if (!data)
        return data.error();
    BatchSizeFit fit{MaxBatchModel::fit(data.value()), data.value(), 0.0};
    fit.rmse = fit.model.rmse(fit.observations);
    return fit;
}

PlannerStats
Planner::stats() const
{
    // Counters are monotonic; clamped subtraction keeps a snapshot
    // that raced a concurrent resetStats() at zero instead of wrapping.
    const auto since = [](std::uint64_t now, std::uint64_t base) {
        return now > base ? now - base : 0;
    };
    PlannerStats out;
    out.stepCacheHits = since(step_hits_.load(), hits_base_.load());
    out.stepCacheMisses =
        since(step_misses_.load(), misses_base_.load());
    std::uint64_t simulated = 0;
    std::uint64_t evicted = 0;
    {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        for (const auto& [key, state] : states_) {
            simulated += state->sim.stepsSimulated();
            // The shard lock, not registry_mutex_, guards the step
            // cache — take it briefly for a coherent eviction count.
            std::lock_guard<std::mutex> shard(state->mutex);
            evicted += state->steps.evictions();
        }
    }
    out.stepsSimulated = since(simulated, steps_base_.load());
    out.stepCacheEvictions = since(evicted, evictions_base_.load());
    return out;
}

void
Planner::resetStats()
{
    hits_base_.store(step_hits_.load());
    misses_base_.store(step_misses_.load());
    std::uint64_t simulated = 0;
    std::uint64_t evicted = 0;
    {
        std::lock_guard<std::mutex> lock(registry_mutex_);
        for (const auto& [key, state] : states_) {
            simulated += state->sim.stepsSimulated();
            std::lock_guard<std::mutex> shard(state->mutex);
            evicted += state->steps.evictions();
        }
    }
    steps_base_.store(simulated);
    evictions_base_.store(evicted);
}

}  // namespace ftsim
