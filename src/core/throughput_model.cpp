#include "core/throughput_model.hpp"

#include <cmath>

#include "common/fit.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"

namespace ftsim {

ThroughputModel::ThroughputModel(double c2, double c3, double c4)
    : c2_(c2), c3_(c3), c4_(c4)
{
}

double
ThroughputModel::predict(double batch_size, double sparsity) const
{
    if (batch_size <= 0.0)
        fatal("ThroughputModel: non-positive batch size");
    if (sparsity <= 0.0 || sparsity > 1.0)
        fatal("ThroughputModel: sparsity must lie in (0, 1]");
    return c2_ * (std::log(batch_size) - c3_ * std::log(sparsity)) + c4_;
}

ThroughputModel
ThroughputModel::fit(const std::vector<ThroughputObservation>& data)
{
    if (data.size() < 3)
        fatal("ThroughputModel::fit: need at least 3 observations");

    ParametricFn fn = [](const std::vector<double>& x,
                         const std::vector<double>& p) {
        // x = (batch, sparsity); p = (C2, C3, C4).
        return p[0] * (std::log(x[0]) - p[1] * std::log(x[1])) + p[2];
    };

    std::vector<Observation> obs;
    obs.reserve(data.size());
    double qps_at_1 = data.front().qps;
    double max_qps = 0.0;
    double max_log_b = 1.0;
    for (const auto& d : data) {
        if (d.batchSize <= 0.0 || d.sparsity <= 0.0)
            fatal("ThroughputModel::fit: invalid observation");
        obs.push_back({{d.batchSize, d.sparsity}, d.qps});
        if (d.batchSize == 1.0 && d.sparsity == 1.0)
            qps_at_1 = d.qps;
        max_qps = std::max(max_qps, d.qps);
        max_log_b = std::max(max_log_b, std::log(d.batchSize));
    }

    // Seed: C4 from the dense batch-1 point, C2 from the overall span,
    // C3 mid-range.
    const double c2_seed =
        std::max((max_qps - qps_at_1) / max_log_b, 1e-3);
    FitResult result =
        fitLeastSquares(fn, obs, {c2_seed, 0.5, qps_at_1});
    return ThroughputModel(result.params[0], result.params[1],
                           result.params[2]);
}

double
ThroughputModel::rmse(const std::vector<ThroughputObservation>& data) const
{
    if (data.empty())
        fatal("ThroughputModel::rmse: no observations");
    std::vector<double> pred;
    std::vector<double> actual;
    for (const auto& d : data) {
        pred.push_back(predict(d.batchSize, d.sparsity));
        actual.push_back(d.qps);
    }
    return ftsim::rmse(pred, actual);
}

}  // namespace ftsim
