#include "core/cost_model.hpp"

#include <cmath>
#include <limits>

#include "common/logging.hpp"

namespace ftsim {

CloudCatalog
CloudCatalog::cudoCompute()
{
    CloudCatalog catalog;
    catalog.add({"CUDO", "A40", 0.79});
    catalog.add({"CUDO", "A100-80GB", 1.67});
    catalog.add({"CUDO", "H100", 2.10});
    return catalog;
}

void
CloudCatalog::add(const CloudOffering& offering)
{
    if (offering.dollarsPerHour <= 0.0)
        fatal("CloudCatalog::add: non-positive rate");
    if (offering.gpuName.empty())
        fatal("CloudCatalog::add: empty GPU name");
    offerings_.push_back(offering);
}

Result<double>
CloudCatalog::rate(const std::string& gpu_name) const
{
    double best = std::numeric_limits<double>::infinity();
    for (const auto& o : offerings_)
        if (o.gpuName == gpu_name)
            best = std::min(best, o.dollarsPerHour);
    if (!std::isfinite(best))
        return Error{ErrorCode::UnknownGpu,
                     strCat("CloudCatalog: no offering for GPU '",
                            gpu_name, "'")};
    return best;
}

double
CloudCatalog::ratePerHour(const std::string& gpu_name) const
{
    return rate(gpu_name).valueOrThrow();
}

CloudCatalog&
CloudCatalog::withRate(const std::string& gpu_name, double usd_per_hour)
{
    add({"user", gpu_name, usd_per_hour});
    return *this;
}

std::string
CloudCatalog::fingerprint() const
{
    std::string out;
    for (const auto& o : offerings_)
        out += strCat(o.provider, '=', o.gpuName, '@',
                      strExact(o.dollarsPerHour), ';');
    return out;
}

bool
CloudCatalog::has(const std::string& gpu_name) const
{
    for (const auto& o : offerings_)
        if (o.gpuName == gpu_name)
            return true;
    return false;
}

CostEstimator::CostEstimator(CloudCatalog catalog)
    : catalog_(std::move(catalog))
{
}

Result<CostEstimate>
CostEstimator::tryEstimate(const std::string& gpu_name, double qps,
                           double num_queries, double epochs) const
{
    if (qps <= 0.0)
        return Error{ErrorCode::InvalidArgument,
                     "CostEstimator::estimate: non-positive throughput"};
    if (num_queries <= 0.0 || epochs <= 0.0)
        return Error{ErrorCode::InvalidArgument,
                     "CostEstimator::estimate: non-positive workload"};

    Result<double> rate = catalog_.rate(gpu_name);
    if (!rate)
        return rate.error();

    CostEstimate est;
    est.gpuName = gpu_name;
    est.throughputQps = qps;
    est.dollarsPerHour = rate.value();
    est.gpuHours = epochs * num_queries / qps / 3600.0;
    est.totalDollars = est.gpuHours * est.dollarsPerHour;
    return est;
}

CostEstimate
CostEstimator::estimate(const std::string& gpu_name, double qps,
                        double num_queries, double epochs) const
{
    return tryEstimate(gpu_name, qps, num_queries, epochs).valueOrThrow();
}

Result<CostEstimate>
CostEstimator::tryCheapest(
    const std::vector<std::pair<std::string, double>>& candidates,
    double num_queries, double epochs) const
{
    if (candidates.empty())
        return Error{ErrorCode::NoViablePlan,
                     "CostEstimator::cheapest: no candidates"};
    CostEstimate best;
    best.totalDollars = std::numeric_limits<double>::infinity();
    for (const auto& [gpu, qps] : candidates) {
        Result<CostEstimate> est =
            tryEstimate(gpu, qps, num_queries, epochs);
        if (!est)
            return est.error();
        if (est.value().totalDollars < best.totalDollars)
            best = est.value();
    }
    return best;
}

CostEstimate
CostEstimator::cheapest(
    const std::vector<std::pair<std::string, double>>& candidates,
    double num_queries, double epochs) const
{
    return tryCheapest(candidates, num_queries, epochs).valueOrThrow();
}

}  // namespace ftsim
