#include "core/cost_model.hpp"

#include <cmath>
#include <limits>

#include "common/logging.hpp"

namespace ftsim {

CloudCatalog
CloudCatalog::cudoCompute()
{
    CloudCatalog catalog;
    catalog.add({"CUDO", "A40", 0.79});
    catalog.add({"CUDO", "A100-80GB", 1.67});
    catalog.add({"CUDO", "H100", 2.10});
    return catalog;
}

void
CloudCatalog::add(const CloudOffering& offering)
{
    if (offering.dollarsPerHour <= 0.0)
        fatal("CloudCatalog::add: non-positive rate");
    if (offering.gpuName.empty())
        fatal("CloudCatalog::add: empty GPU name");
    offerings_.push_back(offering);
}

double
CloudCatalog::ratePerHour(const std::string& gpu_name) const
{
    double best = std::numeric_limits<double>::infinity();
    for (const auto& o : offerings_)
        if (o.gpuName == gpu_name)
            best = std::min(best, o.dollarsPerHour);
    if (!std::isfinite(best))
        fatal(strCat("CloudCatalog: no offering for GPU '", gpu_name,
                     "'"));
    return best;
}

bool
CloudCatalog::has(const std::string& gpu_name) const
{
    for (const auto& o : offerings_)
        if (o.gpuName == gpu_name)
            return true;
    return false;
}

CostEstimator::CostEstimator(CloudCatalog catalog)
    : catalog_(std::move(catalog))
{
}

CostEstimate
CostEstimator::estimate(const std::string& gpu_name, double qps,
                        double num_queries, double epochs) const
{
    if (qps <= 0.0)
        fatal("CostEstimator::estimate: non-positive throughput");
    if (num_queries <= 0.0 || epochs <= 0.0)
        fatal("CostEstimator::estimate: non-positive workload");

    CostEstimate est;
    est.gpuName = gpu_name;
    est.throughputQps = qps;
    est.dollarsPerHour = catalog_.ratePerHour(gpu_name);
    est.gpuHours = epochs * num_queries / qps / 3600.0;
    est.totalDollars = est.gpuHours * est.dollarsPerHour;
    return est;
}

CostEstimate
CostEstimator::cheapest(
    const std::vector<std::pair<std::string, double>>& candidates,
    double num_queries, double epochs) const
{
    if (candidates.empty())
        fatal("CostEstimator::cheapest: no candidates");
    CostEstimate best;
    best.totalDollars = std::numeric_limits<double>::infinity();
    for (const auto& [gpu, qps] : candidates) {
        CostEstimate est = estimate(gpu, qps, num_queries, epochs);
        if (est.totalDollars < best.totalDollars)
            best = est;
    }
    return best;
}

}  // namespace ftsim
