#ifndef FTSIM_CORE_PIPELINE_HPP
#define FTSIM_CORE_PIPELINE_HPP

/**
 * @file
 * Legacy experiment-recipe entry points.
 *
 * Mirrors the paper's §V workflow: sweep batch sizes on the simulator to
 * collect ground truth, fit Eq. 1 / Eq. 2 coefficients, validate with
 * RMSE (Figs. 13-15), then price full fine-tuning runs (Table IV).
 *
 * @deprecated These static helpers are thin shims over the `Planner`
 * facade (core/planner.hpp), kept for source compatibility. They build
 * a throwaway planner per call, so nothing is memoized across calls and
 * domain failures surface as thrown `FatalError`s. New code should
 * construct a `Scenario` and query a `Planner` instead.
 *
 * Behavior note: the default `length_sigma` of collectThroughputData /
 * fitThroughput used to be 0.45 while costTable's was 0.40; both now
 * share the one canonical `Scenario::kDefaultLengthSigma` (0.40).
 * Callers that relied on the old throughput-sweep default should pass
 * 0.45 explicitly.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "core/planner.hpp"

namespace ftsim {

/** Static helpers implementing the paper's experiment recipes. */
class ExperimentPipeline {
  public:
    /**
     * Ground-truth maximum batch sizes for a model across GPUs and
     * sequence lengths, both dense and sparse (input to Eq. 1 fitting).
     * @deprecated Shim over Planner::batchSizeSweep.
     */
    static std::vector<BatchSizeObservation> collectBatchSizeData(
        const ModelSpec& model, const std::vector<GpuSpec>& gpus,
        const std::vector<std::size_t>& seq_lens);

    /**
     * Fits Eq. 1 to simulator ground truth (Fig. 13 recipe).
     * @deprecated Shim over Planner::fitBatchSize.
     */
    static BatchSizeFit fitBatchSize(
        const ModelSpec& model, const std::vector<GpuSpec>& gpus,
        const std::vector<std::size_t>& seq_lens);

    /**
     * Throughput sweep on one GPU: dense batches 1..max_dense and sparse
     * batches 1..max_sparse, limits from the memory model (the paper
     * sweeps to the largest batch that fits).
     * @deprecated Shim over Planner::throughputObservations.
     */
    static std::vector<ThroughputObservation> collectThroughputData(
        const ModelSpec& model, const GpuSpec& gpu, std::size_t seq_len,
        const SimCalibration& calib = {},
        double length_sigma = Scenario::kDefaultLengthSigma);

    /**
     * Fits Eq. 2 to simulator ground truth (Figs. 14-15 recipe).
     * @deprecated Shim over Planner::fitThroughput.
     */
    static ThroughputFit fitThroughput(
        const ModelSpec& model, const GpuSpec& gpu, std::size_t seq_len,
        const SimCalibration& calib = {},
        double length_sigma = Scenario::kDefaultLengthSigma);

    /**
     * Builds the Table IV cost report: for each GPU, the max batch size
     * (memory model), throughput at that batch (simulator), and the
     * end-to-end cost of `epochs` epochs over `num_queries` queries.
     * GPUs missing from the catalog are skipped.
     * @deprecated Shim over Planner::costTable.
     */
    static std::vector<CostRow> costTable(
        const ModelSpec& model, const std::vector<GpuSpec>& gpus,
        const CloudCatalog& catalog, std::size_t seq_len, bool sparse,
        double num_queries, double epochs,
        const SimCalibration& calib = {},
        double length_sigma = Scenario::kDefaultLengthSigma);
};

}  // namespace ftsim

#endif  // FTSIM_CORE_PIPELINE_HPP
