#ifndef FTSIM_CORE_PIPELINE_HPP
#define FTSIM_CORE_PIPELINE_HPP

/**
 * @file
 * Experiment orchestration: glue between the GPU simulator (the
 * measurement substrate) and the analytical models (the contribution).
 *
 * Mirrors the paper's §V workflow: sweep batch sizes on the simulator to
 * collect ground truth, fit Eq. 1 / Eq. 2 coefficients, validate with
 * RMSE (Figs. 13-15), then price full fine-tuning runs (Table IV).
 */

#include <cstddef>
#include <string>
#include <vector>

#include "core/batch_size_model.hpp"
#include "core/cost_model.hpp"
#include "core/throughput_model.hpp"
#include "gpusim/finetune_sim.hpp"
#include "gpusim/memory_model.hpp"

namespace ftsim {

/** A fitted throughput model plus its training data and error. */
struct ThroughputFit {
    ThroughputModel model;
    std::vector<ThroughputObservation> observations;
    double rmse = 0.0;
};

/** A fitted batch-size model plus its training data and error. */
struct BatchSizeFit {
    MaxBatchModel model;
    std::vector<BatchSizeObservation> observations;
    double rmse = 0.0;
};

/** One row of the Table IV cost report. */
struct CostRow {
    std::string gpuName;
    double memGB = 0.0;
    int maxBatchSize = 0;
    double throughputQps = 0.0;
    double dollarsPerHour = 0.0;
    double totalDollars = 0.0;
};

/** Static helpers implementing the paper's experiment recipes. */
class ExperimentPipeline {
  public:
    /**
     * Ground-truth maximum batch sizes for a model across GPUs and
     * sequence lengths, both dense and sparse (input to Eq. 1 fitting).
     */
    static std::vector<BatchSizeObservation> collectBatchSizeData(
        const ModelSpec& model, const std::vector<GpuSpec>& gpus,
        const std::vector<std::size_t>& seq_lens);

    /** Fits Eq. 1 to simulator ground truth (Fig. 13 recipe). */
    static BatchSizeFit fitBatchSize(
        const ModelSpec& model, const std::vector<GpuSpec>& gpus,
        const std::vector<std::size_t>& seq_lens);

    /**
     * Throughput sweep on one GPU: dense batches 1..max_dense and sparse
     * batches 1..max_sparse, limits from the memory model (the paper
     * sweeps to the largest batch that fits).
     */
    static std::vector<ThroughputObservation> collectThroughputData(
        const ModelSpec& model, const GpuSpec& gpu, std::size_t seq_len,
        const SimCalibration& calib = {}, double length_sigma = 0.45);

    /** Fits Eq. 2 to simulator ground truth (Figs. 14-15 recipe). */
    static ThroughputFit fitThroughput(const ModelSpec& model,
                                       const GpuSpec& gpu,
                                       std::size_t seq_len,
                                       const SimCalibration& calib = {},
                                       double length_sigma = 0.45);

    /**
     * Builds the Table IV cost report: for each GPU, the max batch size
     * (memory model), throughput at that batch (simulator), and the
     * end-to-end cost of `epochs` epochs over `num_queries` queries.
     * GPUs missing from the catalog are skipped.
     */
    static std::vector<CostRow> costTable(
        const ModelSpec& model, const std::vector<GpuSpec>& gpus,
        const CloudCatalog& catalog, std::size_t seq_len, bool sparse,
        double num_queries, double epochs,
        const SimCalibration& calib = {}, double length_sigma = 0.40);
};

}  // namespace ftsim

#endif  // FTSIM_CORE_PIPELINE_HPP
