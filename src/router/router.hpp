#ifndef FTSIM_ROUTER_ROUTER_HPP
#define FTSIM_ROUTER_ROUTER_HPP

/**
 * @file
 * The fleet front door: a consistent-hash router over shard workers.
 *
 * `RouterServer` accepts client connections on the same JSON-lines
 * protocol the shards speak, and forwards every request — the original
 * line, byte-verbatim — to one of N upstream `ftsim_served` shards
 * chosen by consistent-hashing the request's `canonicalKey()` (the
 * tenant-excluded identity; see serve/protocol.hpp). Duplicate requests
 * therefore always land on the same shard, where the PlanService
 * coalesces them, so the whole fleet simulates exactly
 * distinct-config-many steps — the single-service thundering-herd
 * guarantee, preserved across processes (the fleet bench pins it).
 *
 * Topology and data flow, one poll(2) loop for everything:
 *
 *     clients --> RouterServer --> shard 0 (ftsim_served)
 *                     |----------> shard 1
 *                     `----------> shard N-1
 *
 *  - One persistent pipelined connection per shard, opened at start.
 *  - Each forwarded request pushes a shared answer *slot* onto both
 *    its client connection's pending queue and its shard connection's
 *    outstanding queue. Shards answer per connection in request order
 *    (the NetServer re-sequencing contract), so each shard response
 *    line fills that shard's oldest outstanding slot — no id matching
 *    needed, and the router never reparses responses.
 *  - Client write-back happens in per-connection request order, exactly
 *    like the shards themselves re-sequence: ready slots drain from the
 *    front of the pending queue only.
 *
 * Requests the router answers itself:
 *  - lines that fail to parse (typed protocol error, connection lives);
 *  - `fleet` queries (shard health + per-shard routed counters — ask a
 *    shard's port directly for *its* counters);
 *  - `stats` queries (ISSUE-8): scatter-gathered, not routed. The
 *    router fans `{"query":"stats"}` to every alive shard over the
 *    normal outstanding queues, slices the flat stats object out of
 *    each response byte-verbatim, and answers one merged document —
 *    `{"router":{...own registry...},"shards":{"<name>":{...},...}}` —
 *    with `null` for a shard that died mid-scrape. Internal stats
 *    fetches never count as forwarded/routed traffic;
 *  - anything routed while no shard is alive (`Unavailable`).
 *
 * Shard failure — retry/failover (ISSUE-7): every planning query is
 * pure and replayable, and each slot retains its original request
 * line, so a dying shard no longer poisons its in-flight requests.
 * The dead shard's ring points are removed (consistent hashing moves
 * only its keys) and every outstanding slot is *re-forwarded* to the
 * surviving owner of its key — bounded by `retryBudget` attempts per
 * request — so a kill mid-pipeline yields zero wrong and zero lost
 * answers, byte-identical to a single-service run. A typed
 * `Unavailable` remains only for budget exhaustion or an empty fleet.
 * `requestDeadlineMs` arms a per-attempt answer deadline: an alive
 * shard that sits on a request longer is declared wedged and handled
 * exactly like a death (failover included).
 *
 * Shard healing — supervised reconnect and warm rejoin: with
 * `reconnectBackoffMs` set, a dead shard enters a heartbeat loop
 * (exponential backoff, capped, driven by the injectable `clock`) that
 * re-dials its endpoint without ever blocking the event loop
 * (non-blocking connect + POLLOUT). Once the dial lands, the shard is
 * *warmed before it serves*: the router fetches a live `snapshot` from
 * every survivor and pushes each to the rejoiner as a `load_snapshot`
 * query, so the rejoined shard compiles zero plans for fleet-seen
 * configs. Only then do its ring points return. `respawnCommand`
 * optionally fork/execs a replacement worker process on the dead
 * endpoint (children are reaped while running and SIGTERM'd at
 * shutdown) — the `ftsim_router --respawn` supervisor mode.
 * Shard lifecycle:
 *
 *     alive --death--> backoff --dial--> connecting --> warming
 *       ^                 ^-------------- any failure ----|
 *       `----------------- warm pushes acked -------------'
 *
 * (`down` is terminal when healing is disabled.)
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"
#include "common/stats_registry.hpp"

namespace ftsim {

/** One upstream shard address. */
struct ShardEndpoint {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /** Ring placement identity; defaults to "host:port". Must be
     *  unique across the fleet. */
    std::string name;
};

/** Construction knobs for a RouterServer. */
struct RouterConfig {
    /** Bind address for the client-facing listener. */
    std::string host = "127.0.0.1";
    /** Bind port; 0 = kernel-assigned (read back via port()). */
    std::uint16_t port = 0;
    /** Upstream shards; all must connect at start(). */
    std::vector<ShardEndpoint> shards;
    /** Open client connections served at once (cap as NetServer). */
    std::size_t maxConnections = 64;
    /** Frame cap on client request lines, bytes. */
    std::size_t maxLineBytes = 1 << 20;
    /** Frame cap on shard *response* lines — reports and snapshots
     *  are far larger than any request. */
    std::size_t maxShardLineBytes = 1 << 26;
    /** Ring points per shard (see router/hash_ring.hpp). */
    std::size_t virtualNodes = 64;
    /** Extra forwarding attempts per request after its shard dies;
     *  each re-route lands on the surviving ring owner of the key.
     *  0 restores the pre-ISSUE-7 answer-`Unavailable` behavior. */
    std::size_t retryBudget = 2;
    /** Per-attempt answer deadline, ms (0 = none): an alive shard
     *  holding a request longer is declared wedged and its outstanding
     *  requests fail over, exactly as if it had died. */
    double requestDeadlineMs = 0.0;
    /** First re-dial delay after a shard death, ms; doubles per failed
     *  heal up to reconnectBackoffMaxMs. <= 0 disables healing (a dead
     *  shard stays down, the pre-ISSUE-7 contract). */
    double reconnectBackoffMs = 0.0;
    /** Backoff ceiling for the heal heartbeat, ms. */
    double reconnectBackoffMaxMs = 5000.0;
    /** Deadline for one whole heal attempt — dial + snapshot fetches +
     *  warm pushes — before it aborts back to backoff, ms. */
    double healTimeoutMs = 5000.0;
    /** Executable fork/exec'd as `cmd --host H --port P` to replace a
     *  dead shard on its endpoint (empty = reconnect-only). Spawned
     *  children are reaped while running and SIGTERM'd at shutdown. */
    std::string respawnCommand;
    /** Monotonic clock in ms for deadlines/backoff; unset = wall
     *  steady_clock. Tests inject virtual time here. */
    std::function<double()> clock;
    /** Registry the router publishes its `router.*` cells into; null =
     *  the server creates a private one (statsRegistry() exposes it).
     *  Per-shard health rows join every snapshot as
     *  `router.shard.<name>.routed/dials/heals/alive` provider rows. */
    std::shared_ptr<StatsRegistry> statsRegistry;
};

/** Where a shard is in its death/heal lifecycle (see file comment). */
enum class ShardState {
    Alive,       ///< Serving; ring points placed.
    Backoff,     ///< Dead; next re-dial scheduled.
    Connecting,  ///< Non-blocking dial in flight.
    Warming,     ///< Connected; survivor snapshots being pushed.
    Down,        ///< Dead with healing disabled (terminal).
};

/** Wire/report spelling of a ShardState ("alive", "backoff", ...). */
const char* shardStateName(ShardState state);

/** Per-shard health row in RouterStats. */
struct ShardHealth {
    std::string name;
    bool alive = false;
    ShardState state = ShardState::Down;
    /** Requests forwarded to this shard (dead shards keep their
     *  count — the ledger survives the shard). */
    std::uint64_t routed = 0;
    /** Heal re-dials attempted (the heartbeat's pulse count). */
    std::uint64_t dialAttempts = 0;
    /** Completed warm rejoins. */
    std::uint64_t heals = 0;
};

/** Aggregate router counters (loop-thread maintained). A view over
 *  the router's StatsRegistry `router.*` cells since ISSUE-8: the
 *  live `stats` scrape and this struct always agree. */
struct RouterStats {
    std::uint64_t connectionsAccepted = 0;
    std::uint64_t connectionsClosed = 0;
    std::uint64_t connectionsOpen = 0;
    /** Client request lines forwarded upstream. */
    std::uint64_t forwarded = 0;
    /** Response lines written back to clients. */
    std::uint64_t responses = 0;
    /** Lines answered with a typed protocol error. */
    std::uint64_t protocolErrors = 0;
    /** Lines that crossed the client frame cap. */
    std::uint64_t oversizedLines = 0;
    /** Requests answered `Unavailable`: shard death with the retry
     *  budget exhausted, or no live shard to take them. */
    std::uint64_t shardFailures = 0;
    /** Requests re-forwarded to a survivor after their shard died. */
    std::uint64_t retried = 0;
    /** Shards declared wedged by the per-request answer deadline. */
    std::uint64_t deadlineExpired = 0;
    /** Completed warm rejoins, fleet-wide. */
    std::uint64_t healed = 0;
    /** Replacement workers fork/exec'd (respawnCommand). */
    std::uint64_t respawned = 0;
    /** Injectable-clock timestamp of the last completed heal; < 0
     *  when no shard has ever rejoined. */
    double lastHealMs = -1.0;
    /** `fleet` queries answered by the router itself. */
    std::uint64_t fleetQueries = 0;
    /** `stats` queries scatter-gathered across the fleet. */
    std::uint64_t statsQueries = 0;
    std::size_t shardsAlive = 0;
    std::vector<ShardHealth> shards;
};

/** Consistent-hash fleet router (see file comment). */
class RouterServer {
  public:
    explicit RouterServer(RouterConfig config);

    /** Stops the loop (dropping unflushed writes), joins, closes. */
    ~RouterServer();

    RouterServer(const RouterServer&) = delete;
    RouterServer& operator=(const RouterServer&) = delete;

    /** Binds + listens the client-facing socket. */
    Result<bool> bindListener();

    /** The bound client-facing port (after bindListener; 0 before). */
    std::uint16_t port() const;

    /**
     * Opens the persistent upstream connection to every configured
     * shard. Fails — naming the shard — if any is unreachable: a
     * router told to front N shards should not quietly start with
     * fewer (mid-flight deaths are handled; a bad config is not).
     */
    Result<bool> connectShards();

    /** Runs the event loop on this thread until requestStop(). */
    void run();

    /** bindListener() + connectShards() + run() on a background
     *  thread. */
    Result<bool> start();

    /** Graceful stop: no new clients, no new input, every outstanding
     *  answer (or shard-death error) still flushes. Signal-safe. */
    void requestStop();

    /** requestStop() + join the start() thread (no-op without one). */
    void stop();

    /** True once run() has returned. */
    bool stopped() const { return loop_done_.load(); }

    /** The router's stats registry (`router.*` cells + per-shard
     *  provider rows). Shared from RouterConfig::statsRegistry when
     *  set; otherwise a private instance. */
    const std::shared_ptr<StatsRegistry>& statsRegistry() const;

    RouterStats stats() const;

  private:
    struct Impl;  ///< Poll loop internals.
    std::unique_ptr<Impl> impl_;
    std::thread loop_thread_;
    std::atomic<bool> loop_done_{false};
};

}  // namespace ftsim

#endif  // FTSIM_ROUTER_ROUTER_HPP
