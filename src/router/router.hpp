#ifndef FTSIM_ROUTER_ROUTER_HPP
#define FTSIM_ROUTER_ROUTER_HPP

/**
 * @file
 * The fleet front door: a consistent-hash router over shard workers.
 *
 * `RouterServer` accepts client connections on the same JSON-lines
 * protocol the shards speak, and forwards every request — the original
 * line, byte-verbatim — to one of N upstream `ftsim_served` shards
 * chosen by consistent-hashing the request's `canonicalKey()` (the
 * tenant-excluded identity; see serve/protocol.hpp). Duplicate requests
 * therefore always land on the same shard, where the PlanService
 * coalesces them, so the whole fleet simulates exactly
 * distinct-config-many steps — the single-service thundering-herd
 * guarantee, preserved across processes (the fleet bench pins it).
 *
 * Topology and data flow, one poll(2) loop for everything:
 *
 *     clients --> RouterServer --> shard 0 (ftsim_served)
 *                     |----------> shard 1
 *                     `----------> shard N-1
 *
 *  - One persistent pipelined connection per shard, opened at start.
 *  - Each forwarded request pushes a shared answer *slot* onto both
 *    its client connection's pending queue and its shard connection's
 *    outstanding queue. Shards answer per connection in request order
 *    (the NetServer re-sequencing contract), so each shard response
 *    line fills that shard's oldest outstanding slot — no id matching
 *    needed, and the router never reparses responses.
 *  - Client write-back happens in per-connection request order, exactly
 *    like the shards themselves re-sequence: ready slots drain from the
 *    front of the pending queue only.
 *
 * Requests the router answers itself:
 *  - lines that fail to parse (typed protocol error, connection lives);
 *  - `fleet` queries (shard health + per-shard routed counters — ask a
 *    shard's port directly for *its* counters);
 *  - anything routed while no shard is alive (`Unavailable`).
 *
 * Shard failure: a shard dying mid-request poisons only the requests
 * outstanding on it — each gets a typed `Unavailable` error response,
 * in order, in its slot. The dead shard's ring points are removed, so
 * subsequent requests re-route to the survivors (consistent hashing
 * moves only the dead shard's keys), and the router keeps serving with
 * whatever is left. Only when *every* shard is down do new requests
 * answer `Unavailable` wholesale.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/result.hpp"

namespace ftsim {

/** One upstream shard address. */
struct ShardEndpoint {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /** Ring placement identity; defaults to "host:port". Must be
     *  unique across the fleet. */
    std::string name;
};

/** Construction knobs for a RouterServer. */
struct RouterConfig {
    /** Bind address for the client-facing listener. */
    std::string host = "127.0.0.1";
    /** Bind port; 0 = kernel-assigned (read back via port()). */
    std::uint16_t port = 0;
    /** Upstream shards; all must connect at start(). */
    std::vector<ShardEndpoint> shards;
    /** Open client connections served at once (cap as NetServer). */
    std::size_t maxConnections = 64;
    /** Frame cap on client request lines, bytes. */
    std::size_t maxLineBytes = 1 << 20;
    /** Frame cap on shard *response* lines — reports and snapshots
     *  are far larger than any request. */
    std::size_t maxShardLineBytes = 1 << 26;
    /** Ring points per shard (see router/hash_ring.hpp). */
    std::size_t virtualNodes = 64;
};

/** Per-shard health row in RouterStats. */
struct ShardHealth {
    std::string name;
    bool alive = false;
    /** Requests forwarded to this shard (dead shards keep their
     *  count — the ledger survives the shard). */
    std::uint64_t routed = 0;
};

/** Aggregate router counters (loop-thread maintained). */
struct RouterStats {
    std::uint64_t connectionsAccepted = 0;
    std::uint64_t connectionsClosed = 0;
    std::uint64_t connectionsOpen = 0;
    /** Client request lines forwarded upstream. */
    std::uint64_t forwarded = 0;
    /** Response lines written back to clients. */
    std::uint64_t responses = 0;
    /** Lines answered with a typed protocol error. */
    std::uint64_t protocolErrors = 0;
    /** Lines that crossed the client frame cap. */
    std::uint64_t oversizedLines = 0;
    /** Requests answered `Unavailable` because their shard died (or
     *  none was alive to take them). */
    std::uint64_t shardFailures = 0;
    /** `fleet` queries answered by the router itself. */
    std::uint64_t fleetQueries = 0;
    std::size_t shardsAlive = 0;
    std::vector<ShardHealth> shards;
};

/** Consistent-hash fleet router (see file comment). */
class RouterServer {
  public:
    explicit RouterServer(RouterConfig config);

    /** Stops the loop (dropping unflushed writes), joins, closes. */
    ~RouterServer();

    RouterServer(const RouterServer&) = delete;
    RouterServer& operator=(const RouterServer&) = delete;

    /** Binds + listens the client-facing socket. */
    Result<bool> bindListener();

    /** The bound client-facing port (after bindListener; 0 before). */
    std::uint16_t port() const;

    /**
     * Opens the persistent upstream connection to every configured
     * shard. Fails — naming the shard — if any is unreachable: a
     * router told to front N shards should not quietly start with
     * fewer (mid-flight deaths are handled; a bad config is not).
     */
    Result<bool> connectShards();

    /** Runs the event loop on this thread until requestStop(). */
    void run();

    /** bindListener() + connectShards() + run() on a background
     *  thread. */
    Result<bool> start();

    /** Graceful stop: no new clients, no new input, every outstanding
     *  answer (or shard-death error) still flushes. Signal-safe. */
    void requestStop();

    /** requestStop() + join the start() thread (no-op without one). */
    void stop();

    /** True once run() has returned. */
    bool stopped() const { return loop_done_.load(); }

    RouterStats stats() const;

  private:
    struct Impl;  ///< Poll loop internals.
    std::unique_ptr<Impl> impl_;
    std::thread loop_thread_;
    std::atomic<bool> loop_done_{false};
};

}  // namespace ftsim

#endif  // FTSIM_ROUTER_ROUTER_HPP
