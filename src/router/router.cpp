#include "router/router.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <deque>
#include <map>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "router/hash_ring.hpp"
#include "serve/protocol.hpp"
#include "serve/wire.hpp"

namespace ftsim {

namespace {

/** Blank lines are not requests (mirrors NetServer / ftsim_serve). */
bool
isBlank(const std::string& line)
{
    return line.find_first_not_of(" \t\r") == std::string::npos;
}

double
monotonicMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

const char*
shardStateName(ShardState state)
{
    switch (state) {
    case ShardState::Alive: return "alive";
    case ShardState::Backoff: return "backoff";
    case ShardState::Connecting: return "connecting";
    case ShardState::Warming: return "warming";
    case ShardState::Down: return "down";
    }
    return "?";
}

/** Poll-loop internals: every member is loop-thread-owned except the
 *  stop flag, the wake pipe's write end, and the atomics. */
struct RouterServer::Impl {
    /**
     * One answer owed to a client, shared between the client
     * connection's pending queue (write-back order) and — while the
     * request is upstream — its shard's outstanding queue (fill
     * order). The shared_ptr is the lifetime glue: a client that
     * disconnects mid-flight just drops its queue, and the shard-side
     * fill lands in an orphaned slot instead of freed memory.
     *
     * ISSUE-7: the slot also *retains* the original request line and
     * its routing key until the answer arrives — planning queries are
     * pure, so a dead shard's outstanding slots re-forward verbatim to
     * the surviving ring owner instead of failing. Router-originated
     * heal traffic (survivor snapshot fetches, warm pushes to a
     * rejoiner) rides the same outstanding queues as internal slots
     * that never touch a client connection.
     */
    struct StatsGather;

    struct Slot {
        /** Who consumes the answer. */
        enum class Purpose {
            Client,         ///< A client connection's pending queue.
            SnapshotFetch,  ///< Heal: survivor `snapshot` probe.
            WarmPush,       ///< Heal: `load_snapshot` to the rejoiner.
            StatsFetch,     ///< Scrape: `stats` probe for a gather.
        };

        std::string id;
        QueryKind query = QueryKind::MaxBatch;
        Purpose purpose = Purpose::Client;
        /** The request arrived as a binary frame; its answer (shard
         *  bytes or router-composed) goes back binary too. */
        bool binary = false;
        /** The original request bytes, byte-verbatim — a JSON line
         *  (no terminator) or a complete binary frame — the failover
         *  replay payload. */
        std::string requestLine;
        /** canonicalKey(): where the ring re-routes it. */
        std::string key;
        /** Forward attempts so far (1 = first send). */
        std::size_t attempts = 0;
        /** Injectable-clock deadline of the current attempt; 0 = none. */
        double deadlineAt = 0.0;
        /** Internal slots: which shard this heal step is for, and the
         *  heal attempt it belongs to (stale probes are dropped). */
        std::size_t healTarget = 0;
        std::uint64_t healGen = 0;
        /** StatsFetch slots: the scrape this probe reports into, and
         *  the shard name its piece files under. */
        std::shared_ptr<StatsGather> gather;
        std::string shardName;
        bool ready = false;
        /** The response bytes once ready: a JSON line (no
         *  terminator) or a complete binary frame. */
        std::string line;
    };

    /**
     * One in-flight fleet-wide `stats` scrape (ISSUE-8). The client's
     * slot stays unready until every alive shard's probe reports back
     * — with its sliced stats object, or empty if the shard died
     * mid-scrape (rendered as `null`; a scrape must never hang on a
     * death the router already failed over). Multiple scrapes coexist:
     * each probe slot holds a shared_ptr to its own gather.
     */
    struct StatsGather {
        std::shared_ptr<Slot> client;
        /** Shard name -> sliced flat stats JSON ("" = unreachable).
         *  std::map so the merged document lists shards sorted. */
        std::map<std::string, std::string> pieces;
        std::size_t awaited = 0;
    };

    /** One open client connection (the NetServer per-conn shape). */
    struct Conn {
        Connection socket;
        WireFramer framer;
        std::deque<std::shared_ptr<Slot>> pending;
        std::string out;
        std::size_t outOff = 0;
        bool inputClosed = false;
        bool closeAfterFlush = false;
        bool dead = false;

        Conn(Connection s, std::size_t max_line)
            : socket(std::move(s)), framer(max_line)
        {
        }

        bool flushed() const { return outOff >= out.size(); }

        bool drained() const { return pending.empty() && flushed(); }
    };

    /** One upstream shard, its persistent pipelined connection, and
     *  its death/heal lifecycle state. */
    struct Shard {
        ShardEndpoint endpoint;
        Connection socket;
        WireFramer framer;
        /** Requests sent (or queued to send), oldest first. The shard
         *  answers per connection in request order, so each response
         *  line fills the front slot — no correlation ids needed. */
        std::deque<std::shared_ptr<Slot>> outstanding;
        std::string out;
        std::size_t outOff = 0;
        std::atomic<ShardState> state{ShardState::Down};
        std::atomic<std::uint64_t> routed{0};
        std::atomic<std::uint64_t> dialAttempts{0};
        std::atomic<std::uint64_t> heals{0};
        // Heal bookkeeping, loop-thread-owned:
        double backoffMs = 0.0;       ///< Current re-dial delay.
        double nextDialAtMs = 0.0;    ///< Backoff: when to dial.
        double healDeadlineMs = 0.0;  ///< Whole-attempt abort time.
        std::uint64_t healGen = 0;    ///< Bumped per heal attempt.
        std::size_t snapshotsAwaited = 0;  ///< Survivor fetches open.
        std::size_t pushesAwaited = 0;     ///< Warm pushes unacked.
        /** Survivor snapshots (base64, verbatim off the wire) waiting
         *  to be pushed. */
        std::vector<std::string> snapshots;

        Shard(ShardEndpoint e, std::size_t max_line)
            : endpoint(std::move(e)), framer(max_line)
        {
        }

        bool flushed() const { return outOff >= out.size(); }

        /** The socket carries protocol traffic (vs. dialing/dead). */
        bool active() const
        {
            const ShardState s = state.load();
            return s == ShardState::Alive || s == ShardState::Warming;
        }
    };

    explicit Impl(RouterConfig cfg)
        : config(std::move(cfg)),
          stats(config.statsRegistry
                    ? config.statsRegistry
                    : std::make_shared<StatsRegistry>()),
          ring(config.virtualNodes),
          accepted(stats->counter("router.conn.accepted")),
          closed(stats->counter("router.conn.closed")),
          forwarded(stats->counter("router.forwarded")),
          responses(stats->counter("router.responses")),
          protocolErrors(stats->counter("router.protocol_errors")),
          oversized(stats->counter("router.oversized_lines")),
          shardFailures(stats->counter("router.shard_failures")),
          retried(stats->counter("router.retried")),
          deadlineExpired(stats->counter("router.deadline_expired")),
          healed(stats->counter("router.healed")),
          respawned(stats->counter("router.respawned")),
          fleetQueries(stats->counter("router.fleet_queries")),
          statsQueries(stats->counter("router.stats_queries")),
          lastHealMs(stats->gauge("router.last_heal_ms"))
    {
        lastHealMs.set(-1.0);
        int fds[2] = {-1, -1};
        if (::pipe(fds) != 0)
            fatal("RouterServer: cannot create wake pipe");
        setNonBlocking(fds[0]);
        setNonBlocking(fds[1]);
        wakeRead = fds[0];
        wakeWrite = fds[1];
        for (ShardEndpoint endpoint : config.shards) {
            if (endpoint.name.empty())
                endpoint.name =
                    strCat(endpoint.host, ':', endpoint.port);
            shards.push_back(std::make_unique<Shard>(
                std::move(endpoint), config.maxShardLineBytes));
        }
        // The shards vector is fixed from here on, and the rows read
        // only atomics — safe from any snapshotting thread.
        statsProvider =
            stats->addProvider([this](StatsRegistry::Sink& sink) {
                publishShardRows(sink);
            });
    }

    ~Impl()
    {
        stats->removeProvider(statsProvider);
        if (wakeRead >= 0)
            ::close(wakeRead);
        if (wakeWrite >= 0)
            ::close(wakeWrite);
    }

    /** Per-shard health rows, contributed to every snapshot. */
    void publishShardRows(StatsRegistry::Sink& sink) const
    {
        std::size_t alive = 0;
        for (const auto& shard : shards) {
            const std::string base =
                strCat("router.shard.", shard->endpoint.name, '.');
            const bool up =
                shard->state.load() == ShardState::Alive;
            alive += up ? 1 : 0;
            sink.counter(base + "routed", shard->routed.load());
            sink.counter(base + "dials",
                         shard->dialAttempts.load());
            sink.counter(base + "heals", shard->heals.load());
            sink.gauge(base + "alive", up ? 1.0 : 0.0);
        }
        sink.gauge("router.shards_alive",
                   static_cast<double>(alive));
    }

    double clockMs() const
    {
        return config.clock ? config.clock() : monotonicMs();
    }

    /** Async-signal-safe (one non-blocking write; EAGAIN = a wake is
     *  already pending). */
    void wake()
    {
        const char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(wakeWrite, &byte, 1);
    }

    void drainWakePipe()
    {
        char buf[256];
        while (::read(wakeRead, buf, sizeof(buf)) > 0) {
        }
    }

    Result<bool> connectShards()
    {
        for (std::size_t i = 0; i < shards.size(); ++i)
            for (std::size_t j = i + 1; j < shards.size(); ++j)
                if (shards[i]->endpoint.name ==
                    shards[j]->endpoint.name)
                    return Error{ErrorCode::InvalidArgument,
                                 strCat("duplicate shard name \"",
                                        shards[i]->endpoint.name,
                                        '"')};
        if (shards.empty())
            return Error{ErrorCode::InvalidArgument,
                         "router needs at least one shard"};
        for (std::size_t i = 0; i < shards.size(); ++i) {
            Shard& shard = *shards[i];
            Result<Connection> conn = Connection::connectTo(
                shard.endpoint.host, shard.endpoint.port);
            if (!conn)
                return Error{
                    ErrorCode::Unavailable,
                    strCat("shard \"", shard.endpoint.name,
                           "\" unreachable: ", conn.error().message)};
            shard.socket = std::move(conn.value());
            // connectTo leaves the fd blocking (the client-side
            // contract); the poll loop needs it non-blocking.
            setNonBlocking(shard.socket.fd());
            shard.state.store(ShardState::Alive);
            ring.addShard(i, shard.endpoint.name);
        }
        return true;
    }

    /** Readies @p slot with a router-composed response, encoded in
     *  the request's wire format. */
    void finishSlot(Slot& slot, const PlanResponse& response)
    {
        slot.line = slot.binary ? encodeResponseFrame(response)
                                : writePlanResponse(response);
        slot.ready = true;
    }

    /** Fills @p slot with a typed error response — the only answers
     *  the router composes (everything else is shard bytes). */
    void answerError(Slot& slot, ErrorCode code, std::string message)
    {
        PlanRequest request;
        request.id = slot.id;
        request.query = slot.query;
        finishSlot(slot, errorResponse(
                             request, Error{code, std::move(message)}));
    }

    /** Queues @p slot's retained request line on @p shard. Client
     *  slots get a fresh per-attempt deadline; internal slots keep the
     *  heal deadline their caller stamped. */
    void enqueueSlot(Shard& shard, const std::shared_ptr<Slot>& slot)
    {
        shard.out += slot->requestLine;
        if (!slot->binary)
            shard.out += '\n';  // Binary frames self-delimit.
        ++slot->attempts;
        // Client and stats-scrape slots get a fresh per-attempt
        // deadline (a wedged shard must not hang a scrape either);
        // heal slots keep the heal deadline their caller stamped.
        if (slot->purpose == Slot::Purpose::Client ||
            slot->purpose == Slot::Purpose::StatsFetch)
            slot->deadlineAt =
                config.requestDeadlineMs > 0.0
                    ? clockMs() + config.requestDeadlineMs
                    : 0.0;
        shard.outstanding.push_back(slot);
    }

    /**
     * Failover for one orphaned client slot: planning queries are pure
     * and the slot kept its request line, so re-forward it to the
     * surviving ring owner of its key — until the retry budget or the
     * fleet runs out, which is the only remaining `Unavailable`.
     */
    void retryOrFail(const std::shared_ptr<Slot>& slot,
                     const Shard& deadShard, const std::string& why)
    {
        const bool budgetLeft =
            slot->attempts < 1 + config.retryBudget;
        const int target =
            budgetLeft ? ring.shardFor(slot->key) : -1;
        if (budgetLeft && target >= 0) {
            Shard& next = *shards[static_cast<std::size_t>(target)];
            enqueueSlot(next, slot);
            next.routed.fetch_add(1);
            retried.inc();
            return;
        }
        shardFailures.inc();
        answerError(*slot, ErrorCode::Unavailable,
                    strCat("shard \"", deadShard.endpoint.name, "\" ",
                           why,
                           budgetLeft ? " (no live shards)"
                                      : " (retry budget exhausted)"));
    }

    /**
     * Takes an alive @p shard out of the fleet: close the socket, drop
     * its ring points (only *its* keys re-route — consistent hashing's
     * whole point), fail its outstanding requests over to the
     * survivors, and hand it to the heal machinery (respawn + backoff
     * re-dial) when that is enabled.
     */
    void markShardDead(Shard& shard, std::size_t index,
                       const std::string& why)
    {
        if (shard.state.load() != ShardState::Alive)
            return;
        shard.state.store(ShardState::Down);
        shard.socket.close();
        shard.out.clear();
        shard.outOff = 0;
        shard.framer = WireFramer(config.maxShardLineBytes);
        ring.removeShard(index);
        std::deque<std::shared_ptr<Slot>> orphans;
        orphans.swap(shard.outstanding);
        for (const std::shared_ptr<Slot>& slot : orphans) {
            if (slot->purpose == Slot::Purpose::Client) {
                retryOrFail(slot, shard, why);
            } else if (slot->purpose == Slot::Purpose::StatsFetch) {
                // The scrape reports this shard as null rather than
                // hanging on (or failing) the whole document.
                noteStatsPiece(*slot, std::string());
            } else if (slot->healGen ==
                       shards[slot->healTarget]->healGen) {
                // A heal probe was riding this (now dead) survivor:
                // that heal attempt cannot complete.
                failHeal(*shards[slot->healTarget], slot->healTarget);
            }
        }
        if (!config.respawnCommand.empty())
            spawnReplacement(shard);
        scheduleHeal(shard, /*firstDeath=*/true);
    }

    /** Routes a broken-socket event by lifecycle state: an alive shard
     *  dies (failover), a dialing/warming one aborts to backoff. */
    void shardBroken(Shard& shard, std::size_t index,
                     const std::string& why)
    {
        if (shard.state.load() == ShardState::Alive)
            markShardDead(shard, index, why);
        else
            failHeal(shard, index);
    }

    // ---- Heal machinery (ISSUE-7) ------------------------------------

    /** Parks @p shard in Backoff for its next re-dial (exponential,
     *  capped), or Down when healing is disabled. */
    void scheduleHeal(Shard& shard, bool firstDeath)
    {
        if (config.reconnectBackoffMs <= 0.0) {
            shard.state.store(ShardState::Down);
            return;
        }
        shard.backoffMs =
            firstDeath || shard.backoffMs <= 0.0
                ? config.reconnectBackoffMs
                : std::min(shard.backoffMs * 2.0,
                           config.reconnectBackoffMaxMs);
        shard.nextDialAtMs = clockMs() + shard.backoffMs;
        shard.state.store(ShardState::Backoff);
    }

    /** Aborts the in-flight heal attempt and schedules the next one
     *  (backoff doubled). Stale survivor probes are stranded by the
     *  healGen bump and dropped on arrival. */
    void failHeal(Shard& shard, std::size_t index)
    {
        (void)index;
        const ShardState st = shard.state.load();
        if (st != ShardState::Connecting && st != ShardState::Warming)
            return;
        shard.socket.close();
        shard.out.clear();
        shard.outOff = 0;
        shard.outstanding.clear();  // Unacked warm pushes, ours only.
        ++shard.healGen;
        shard.snapshots.clear();
        shard.snapshotsAwaited = 0;
        shard.pushesAwaited = 0;
        scheduleHeal(shard, /*firstDeath=*/false);
    }

    /** Backoff expired: begin the non-blocking re-dial. */
    void startDial(Shard& shard)
    {
        shard.dialAttempts.fetch_add(1);
        Result<Connection> conn = Connection::connectStart(
            shard.endpoint.host, shard.endpoint.port);
        if (!conn) {
            scheduleHeal(shard, /*firstDeath=*/false);
            return;
        }
        shard.socket = std::move(conn.value());
        shard.healDeadlineMs = clockMs() + config.healTimeoutMs;
        shard.state.store(ShardState::Connecting);
    }

    /**
     * Dial landed: warm the rejoiner before its ring points return.
     * Fetch a live `snapshot` from every alive survivor (their union
     * covers every fleet-seen config), then push each payload as a
     * `load_snapshot`; ring re-entry waits for the acks. No survivors
     * = nothing to warm from: a cold rejoin beats no fleet.
     */
    void beginWarm(Shard& shard, std::size_t index)
    {
        shard.framer = WireFramer(config.maxShardLineBytes);
        shard.out.clear();
        shard.outOff = 0;
        shard.outstanding.clear();
        ++shard.healGen;
        shard.snapshots.clear();
        shard.snapshotsAwaited = 0;
        shard.pushesAwaited = 0;
        shard.state.store(ShardState::Warming);
        for (std::size_t j = 0; j < shards.size(); ++j) {
            if (j == index ||
                shards[j]->state.load() != ShardState::Alive)
                continue;
            auto fetch = std::make_shared<Slot>();
            fetch->purpose = Slot::Purpose::SnapshotFetch;
            fetch->healTarget = index;
            fetch->healGen = shard.healGen;
            fetch->deadlineAt = shard.healDeadlineMs;
            fetch->requestLine = "{\"query\":\"snapshot\"}";
            enqueueSlot(*shards[j], fetch);
            ++shard.snapshotsAwaited;
        }
        if (shard.snapshotsAwaited == 0)
            completeHeal(shard, index);
    }

    /** Warm pushes acked: the shard rejoins the ring. */
    void completeHeal(Shard& shard, std::size_t index)
    {
        shard.state.store(ShardState::Alive);
        ring.addShard(index, shard.endpoint.name);
        shard.backoffMs = 0.0;
        shard.heals.fetch_add(1);
        healed.inc();
        lastHealMs.set(clockMs());
    }

    /**
     * A response line filled an internal (heal) slot. The base64
     * snapshot payload is sliced out of the survivor's response and
     * re-sent verbatim — the router never decodes registry bytes.
     */
    void onInternalResponse(const Slot& slot, const std::string& line)
    {
        if (slot.purpose == Slot::Purpose::StatsFetch) {
            // Before the heal bookkeeping: a stats probe has no heal
            // target, so slot.healTarget must not be dereferenced.
            noteStatsPiece(slot, sliceStatsObject(line));
            return;
        }
        Shard& target = *shards[slot.healTarget];
        if (slot.healGen != target.healGen ||
            target.state.load() != ShardState::Warming)
            return;  // A stale probe from an abandoned heal attempt.
        const bool ok =
            line.find("\"ok\":true") != std::string::npos;
        if (slot.purpose == Slot::Purpose::SnapshotFetch) {
            std::string payload;
            if (ok) {
                // base64 never contains escapes, so the quote after
                // the key closes the payload.
                static const std::string kField = "\"snapshot\":\"";
                const std::size_t at = line.find(kField);
                if (at != std::string::npos) {
                    const std::size_t start = at + kField.size();
                    const std::size_t end = line.find('"', start);
                    if (end != std::string::npos)
                        payload = line.substr(start, end - start);
                }
            }
            if (!ok || payload.empty()) {
                failHeal(target, slot.healTarget);
                return;
            }
            target.snapshots.push_back(std::move(payload));
            if (--target.snapshotsAwaited > 0)
                return;
            target.pushesAwaited = target.snapshots.size();
            for (const std::string& b64 : target.snapshots) {
                auto push = std::make_shared<Slot>();
                push->purpose = Slot::Purpose::WarmPush;
                push->healTarget = slot.healTarget;
                push->healGen = target.healGen;
                push->deadlineAt = target.healDeadlineMs;
                push->requestLine =
                    strCat("{\"query\":\"load_snapshot\","
                           "\"snapshot\":\"",
                           b64, "\"}");
                enqueueSlot(target, push);
            }
            target.snapshots.clear();
            return;
        }
        // WarmPush ack.
        if (!ok) {
            failHeal(target, slot.healTarget);
            return;
        }
        if (--target.pushesAwaited == 0)
            completeHeal(target, slot.healTarget);
    }

    /** fork/execs `respawnCommand --host H --port P` to replace a
     *  dead shard on its own endpoint (the supervisor mode). */
    void spawnReplacement(const Shard& shard)
    {
        const std::string port = std::to_string(shard.endpoint.port);
        const pid_t pid = ::fork();
        if (pid < 0)
            return;  // Reconnect alone still heals a restarted shard.
        if (pid == 0) {
            ::execl(config.respawnCommand.c_str(),
                    config.respawnCommand.c_str(), "--host",
                    shard.endpoint.host.c_str(), "--port",
                    port.c_str(), static_cast<char*>(nullptr));
            ::_exit(127);  // Post-fork: only exec or die is safe.
        }
        children.push_back(pid);
        respawned.inc();
    }

    void reapChildren()
    {
        for (auto it = children.begin(); it != children.end();) {
            int status = 0;
            it = ::waitpid(*it, &status, WNOHANG) == *it
                     ? children.erase(it)
                     : it + 1;
        }
    }

    // ---- Fleet-wide stats scrape (ISSUE-8) ----------------------------

    /**
     * Slices the flat `"stats":{...}` object out of a shard's `stats`
     * response line, byte-verbatim. Unlike the snapshot payload
     * (base64), stats JSON contains quoted names that may hold escapes,
     * so this is a string-aware brace matcher, not a find('}'). Returns
     * "" when the line carries no well-formed stats object (e.g. the
     * shard answered an error) — rendered as `null` in the merge.
     */
    static std::string sliceStatsObject(const std::string& line)
    {
        static const std::string kField = "\"stats\":";
        const std::size_t at = line.find(kField);
        if (at == std::string::npos)
            return std::string();
        const std::size_t open = at + kField.size();
        if (open >= line.size() || line[open] != '{')
            return std::string();
        bool inString = false;
        bool escaped = false;
        int depth = 0;
        for (std::size_t i = open; i < line.size(); ++i) {
            const char c = line[i];
            if (inString) {
                if (escaped)
                    escaped = false;
                else if (c == '\\')
                    escaped = true;
                else if (c == '"')
                    inString = false;
            } else if (c == '"') {
                inString = true;
            } else if (c == '{') {
                ++depth;
            } else if (c == '}' && --depth == 0) {
                return line.substr(open, i - open + 1);
            }
        }
        return std::string();
    }

    /**
     * Fans `{"query":"stats"}` to every alive shard and parks the
     * client's slot on the resulting gather. Probes ride the normal
     * outstanding queues (request-order fill, shard-death orphaning,
     * answer deadlines) but are *not* client traffic: they bump neither
     * `forwarded` nor the per-shard `routed` ledger — a scrape must
     * never perturb the counters it reads. An empty fleet answers
     * immediately with only the router's own registry.
     */
    void beginStatsGather(const std::shared_ptr<Slot>& slot)
    {
        statsQueries.inc();
        auto gather = std::make_shared<StatsGather>();
        gather->client = slot;
        for (const auto& shard : shards) {
            if (shard->state.load() != ShardState::Alive)
                continue;
            auto fetch = std::make_shared<Slot>();
            fetch->purpose = Slot::Purpose::StatsFetch;
            fetch->gather = gather;
            fetch->shardName = shard->endpoint.name;
            fetch->requestLine = "{\"query\":\"stats\"}";
            enqueueSlot(*shard, fetch);
            ++gather->awaited;
        }
        if (gather->awaited == 0)
            finishStatsGather(*gather);
    }

    /** One probe reported (piece, or "" for a shard lost mid-scrape);
     *  the last one in completes the client's answer. */
    void noteStatsPiece(const Slot& probe, std::string piece)
    {
        StatsGather& gather = *probe.gather;
        gather.pieces[probe.shardName] = std::move(piece);
        if (--gather.awaited == 0)
            finishStatsGather(gather);
    }

    /** Composes the merged scrape document and readies the client's
     *  slot: the router's own registry snapshot under "router", each
     *  shard's sliced stats object (or null) under "shards". */
    void finishStatsGather(StatsGather& gather)
    {
        std::string merged =
            strCat("{\"router\":", stats->snapshot().toJson(),
                   ",\"shards\":{");
        bool first = true;
        for (const auto& [name, piece] : gather.pieces) {
            if (!first)
                merged += ',';
            first = false;
            merged += jsonQuote(name);
            merged += ':';
            merged += piece.empty() ? "null" : piece;
        }
        merged += "}}";
        Slot& slot = *gather.client;
        PlanResponse response;
        response.id = slot.id;
        response.query = QueryKind::Stats;
        response.ok = true;
        response.value =
            static_cast<double>(gather.pieces.size());
        response.statsJson = std::move(merged);
        finishSlot(slot, response);
    }

    // ---- Event handlers -----------------------------------------------

    /** The router's own `fleet` answer: lifecycle state, routing, and
     *  the ISSUE-7 failover/heal ledger. */
    void answerFleet(Slot& slot)
    {
        fleetQueries.inc();
        PlanResponse response;
        response.id = slot.id;
        response.query = QueryKind::Fleet;
        response.ok = true;
        std::size_t alive = 0;
        for (const auto& shard : shards)
            alive +=
                shard->state.load() == ShardState::Alive ? 1 : 0;
        response.value = static_cast<double>(alive);
        response.report = strCat(
            "router: shards=", shards.size(), " alive=", alive,
            " retried=", retried.load(),
            " unavailable=", shardFailures.load(),
            " healed=", healed.load(),
            " respawned=", respawned.load(),
            " last_heal_ms=", strExact(lastHealMs.load()));
        for (const auto& shard : shards)
            response.report += strCat(
                "; ", shard->endpoint.name, '=',
                shardStateName(shard->state.load()),
                " routed=", shard->routed.load(),
                " heals=", shard->heals.load());
        finishSlot(slot, response);
    }

    /** A ready-at-enqueue protocol-error answer in @p binary format. */
    void answerProtocolError(Conn& conn, bool binary,
                             const std::string& message)
    {
        protocolErrors.inc();
        auto slot = std::make_shared<Slot>();
        slot->binary = binary;
        slot->line = binary
                         ? encodeProtocolErrorFrame("", message)
                         : writeProtocolError("", message);
        slot->ready = true;
        conn.pending.push_back(std::move(slot));
    }

    void handleFrame(Conn& conn, WireFramer::Frame& frame)
    {
        if (frame.overflow) {
            oversized.inc();
            answerProtocolError(conn, false,
                                strCat("request line exceeds ",
                                       config.maxLineBytes,
                                       " bytes"));
            return;
        }
        PlanRequest request;
        if (frame.binary) {
            // Decode locally even though the shard will decode again:
            // the canonical key IS the routing decision, and a
            // malformed frame must be answered here (there is no
            // shard for it).
            Result<WireMessage> decoded =
                decodeWirePayload(frame.payload);
            if (!decoded.ok()) {
                answerProtocolError(conn, true,
                                    decoded.error().message);
                return;
            }
            if (decoded.value().type != WireMsg::Request) {
                answerProtocolError(conn, true,
                                    "expected a request frame");
                return;
            }
            request = std::move(decoded.value().request);
        } else {
            if (isBlank(frame.payload))
                return;
            Result<PlanRequest> parsed =
                parsePlanRequest(frame.payload);
            if (!parsed) {
                answerProtocolError(conn, false,
                                    parsed.error().message);
                return;
            }
            request = std::move(parsed.value());
        }
        auto slot = std::make_shared<Slot>();
        slot->binary = frame.binary;
        slot->id = request.id;
        slot->query = request.query;
        if (slot->query == QueryKind::Fleet) {
            // Intercepted: the fleet question is about the router's
            // view. (Ask a shard's own port for per-shard counters.)
            answerFleet(*slot);
            conn.pending.push_back(std::move(slot));
            return;
        }
        if (slot->query == QueryKind::Stats) {
            // Intercepted: scatter-gathered across the fleet instead
            // of routed to one shard (see beginStatsGather).
            beginStatsGather(slot);
            conn.pending.push_back(std::move(slot));
            return;
        }
        slot->key = request.canonicalKey();
        // Forward byte-verbatim in the request's own format: the
        // shard stamps the echoed id itself, and re-serializing here
        // could only risk perturbing the bytes the golden gate diffs.
        // Re-wrapping the binary payload in its 8-byte header is
        // deterministic — identical to the bytes the client sent.
        slot->requestLine = frame.binary
                                ? wireFrame(frame.payload)
                                : std::move(frame.payload);
        const int target = ring.shardFor(slot->key);
        if (target < 0) {
            shardFailures.inc();
            answerError(*slot, ErrorCode::Unavailable,
                        "no live shards");
            conn.pending.push_back(std::move(slot));
            return;
        }
        Shard& shard = *shards[static_cast<std::size_t>(target)];
        enqueueSlot(shard, slot);
        shard.routed.fetch_add(1);
        forwarded.inc();
        conn.pending.push_back(std::move(slot));
    }

    void readClient(Conn& conn)
    {
        char buf[16384];
        while (!conn.inputClosed && !conn.dead) {
            const IoResult io = conn.socket.readSome(buf, sizeof(buf));
            if (io.status == IoStatus::Ok) {
                conn.framer.feed(buf, io.bytes);
                WireFramer::Frame frame;
                while (conn.framer.next(frame))
                    handleFrame(conn, frame);
                if (conn.framer.poisoned()) {
                    // Binary framing damage kills the connection (one
                    // final error frame first) — same containment as
                    // the NetServer.
                    answerProtocolError(
                        conn, true,
                        strCat("bad frame: ",
                               conn.framer.poisonReason()));
                    conn.inputClosed = true;
                    conn.closeAfterFlush = true;
                }
            } else if (io.status == IoStatus::WouldBlock) {
                break;
            } else if (io.status == IoStatus::Eof) {
                if (conn.framer.midBinaryFrame()) {
                    answerProtocolError(
                        conn, true,
                        "bad frame: truncated frame at EOF");
                }
                conn.inputClosed = true;
                conn.closeAfterFlush = true;
            } else {
                conn.dead = true;
            }
        }
    }

    void readShard(Shard& shard, std::size_t index)
    {
        char buf[16384];
        while (shard.active()) {
            const IoResult io =
                shard.socket.readSome(buf, sizeof(buf));
            if (io.status == IoStatus::Ok) {
                shard.framer.feed(buf, io.bytes);
                WireFramer::Frame frame;
                while (shard.framer.next(frame)) {
                    if (frame.overflow) {
                        // A response we cannot frame poisons the
                        // pipelined stream — nothing after it can be
                        // matched to a slot.
                        shardBroken(shard, index,
                                    "answered an oversized line");
                        return;
                    }
                    if (!frame.binary && isBlank(frame.payload))
                        continue;
                    if (shard.outstanding.empty()) {
                        shardBroken(shard, index,
                                    "sent an unsolicited response");
                        return;
                    }
                    const std::shared_ptr<Slot> slot =
                        shard.outstanding.front();
                    shard.outstanding.pop_front();
                    // Positional fill only works if the shard kept
                    // the response-follows-request-format contract;
                    // a format flip means the streams desynced.
                    if (frame.binary != slot->binary) {
                        shardBroken(
                            shard, index,
                            "answered in the wrong wire format");
                        return;
                    }
                    if (slot->purpose == Slot::Purpose::Client) {
                        slot->line =
                            frame.binary
                                ? wireFrame(frame.payload)
                                : std::move(frame.payload);
                        slot->ready = true;
                    } else {
                        onInternalResponse(*slot, frame.payload);
                        if (!shard.active())
                            return;  // This shard's heal just failed.
                    }
                }
                if (shard.framer.poisoned()) {
                    shardBroken(shard, index,
                                strCat("answered undecodable bytes (",
                                       shard.framer.poisonReason(),
                                       ')'));
                    return;
                }
            } else if (io.status == IoStatus::WouldBlock) {
                return;
            } else {
                shardBroken(shard, index,
                            io.status == IoStatus::Eof
                                ? "closed the connection"
                                : "died with the request in flight");
                return;
            }
        }
    }

    void flushShard(Shard& shard, std::size_t index)
    {
        while (shard.active() && !shard.flushed()) {
            const IoResult io = shard.socket.writeSome(
                shard.out.data() + shard.outOff,
                shard.out.size() - shard.outOff);
            if (io.status == IoStatus::Ok) {
                shard.outOff += io.bytes;
            } else if (io.status == IoStatus::WouldBlock) {
                return;
            } else {
                shardBroken(shard, index,
                            "died with the request in flight");
                return;
            }
        }
        if (shard.flushed()) {
            shard.out.clear();
            shard.outOff = 0;
        }
    }

    /** Moves ready answers (in request order) into the write buffer. */
    void pump(Conn& conn)
    {
        while (!conn.pending.empty() && conn.pending.front()->ready) {
            const Slot& slot = *conn.pending.front();
            conn.out += slot.line;
            if (!slot.binary)
                conn.out += '\n';  // Binary frames self-delimit.
            conn.pending.pop_front();
            responses.inc();
        }
    }

    void flush(Conn& conn)
    {
        while (!conn.flushed() && !conn.dead) {
            const IoResult io =
                conn.socket.writeSome(conn.out.data() + conn.outOff,
                                      conn.out.size() - conn.outOff);
            if (io.status == IoStatus::Ok) {
                conn.outOff += io.bytes;
            } else if (io.status == IoStatus::WouldBlock) {
                return;
            } else {
                conn.dead = true;
            }
        }
        if (conn.flushed()) {
            conn.out.clear();
            conn.outOff = 0;
        }
    }

    void acceptPending()
    {
        while (conns.size() < config.maxConnections) {
            Connection socket = listener.accept();
            if (!socket.valid())
                break;
            accepted.inc();
            conns.push_back(std::make_unique<Conn>(
                std::move(socket), config.maxLineBytes));
        }
    }

    /** Deadline/backoff timers, on the injectable clock. */
    void runTimers(bool stop_seen)
    {
        const double now = clockMs();
        for (std::size_t i = 0; i < shards.size(); ++i) {
            Shard& shard = *shards[i];
            switch (shard.state.load()) {
            case ShardState::Alive:
                if (!shard.outstanding.empty()) {
                    const Slot& front = *shard.outstanding.front();
                    // Fill order = enqueue order, so deadlines are
                    // monotonic per shard: the front slot is always
                    // the next to expire.
                    if (front.deadlineAt > 0.0 &&
                        now >= front.deadlineAt) {
                        deadlineExpired.inc();
                        markShardDead(
                            shard, i,
                            "missed its answer deadline (wedged)");
                    }
                }
                break;
            case ShardState::Backoff:
                if (!stop_seen && now >= shard.nextDialAtMs)
                    startDial(shard);
                break;
            case ShardState::Connecting:
            case ShardState::Warming:
                if (now >= shard.healDeadlineMs)
                    failHeal(shard, i);
                break;
            case ShardState::Down:
                break;
            }
        }
        reapChildren();
    }

    /** True while any deadline/backoff timer is armed — the loop then
     *  polls with a short tick so injectable clocks get re-read (the
     *  NetServer drain-deadline idiom). */
    bool timersArmed() const
    {
        for (const auto& shard : shards) {
            switch (shard->state.load()) {
            case ShardState::Backoff:
            case ShardState::Connecting:
            case ShardState::Warming:
                return true;
            case ShardState::Alive:
                if (!shard->outstanding.empty() &&
                    shard->outstanding.front()->deadlineAt > 0.0)
                    return true;
                break;
            case ShardState::Down:
                break;
            }
        }
        return false;
    }

    void loop()
    {
        std::vector<pollfd> fds;
        std::vector<Conn*> polledConns;
        std::vector<std::size_t> polledShards;
        bool stop_seen = false;
        while (true) {
            if (stopRequested.load() && !stop_seen) {
                stop_seen = true;
                // Graceful drain, the NetServer contract: no new
                // clients, no new input, but every forwarded request
                // still answers (or fails typed) and flushes.
                listener.close();
                for (auto& conn : conns) {
                    conn->inputClosed = true;
                    conn->closeAfterFlush = true;
                }
            }

            for (auto it = conns.begin(); it != conns.end();) {
                Conn& conn = **it;
                const bool done =
                    conn.dead ||
                    (conn.closeAfterFlush && conn.drained());
                if (done) {
                    closed.inc();
                    it = conns.erase(it);
                } else {
                    ++it;
                }
            }
            if (stop_seen && conns.empty())
                break;

            fds.clear();
            polledConns.clear();
            polledShards.clear();
            fds.push_back({wakeRead, POLLIN, 0});
            const bool accepting = !stop_seen && listener.valid() &&
                                   conns.size() < config.maxConnections;
            if (accepting)
                fds.push_back({listener.fd(), POLLIN, 0});
            for (auto& conn : conns) {
                short events = 0;
                if (!conn->inputClosed)
                    events |= POLLIN;
                if (!conn->flushed())
                    events |= POLLOUT;
                fds.push_back({conn->socket.fd(), events, 0});
                polledConns.push_back(conn.get());
            }
            for (std::size_t i = 0; i < shards.size(); ++i) {
                Shard& shard = *shards[i];
                const ShardState st = shard.state.load();
                short events = 0;
                if (st == ShardState::Alive ||
                    st == ShardState::Warming) {
                    // Always POLLIN: shard death must surface even
                    // while nothing is outstanding.
                    events = POLLIN;
                    if (!shard.flushed())
                        events |= POLLOUT;
                } else if (st == ShardState::Connecting) {
                    events = POLLOUT;
                } else {
                    continue;  // Backoff/Down: no socket to watch.
                }
                fds.push_back({shard.socket.fd(), events, 0});
                polledShards.push_back(i);
            }

            const int rc =
                ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                       timersArmed() ? 10 : -1);
            if (rc < 0 && errno != EINTR)
                fatal("RouterServer: poll() failed");

            std::size_t index = 0;
            if (fds[index].revents & POLLIN)
                drainWakePipe();
            ++index;
            if (accepting) {
                if (fds[index].revents & POLLIN)
                    acceptPending();
                ++index;
            }
            for (std::size_t c = 0; c < polledConns.size();
                 ++c, ++index) {
                Conn& conn = *polledConns[c];
                const short revents = fds[index].revents;
                if (revents & (POLLERR | POLLNVAL))
                    conn.dead = true;
                if (!conn.dead && (revents & (POLLIN | POLLHUP)))
                    readClient(conn);
            }
            for (std::size_t s = 0; s < polledShards.size();
                 ++s, ++index) {
                const std::size_t i = polledShards[s];
                Shard& shard = *shards[i];
                const short revents = fds[index].revents;
                if (shard.state.load() == ShardState::Connecting) {
                    if (revents & (POLLOUT | POLLERR | POLLHUP)) {
                        Result<bool> up = shard.socket.finishConnect();
                        if (!up)
                            failHeal(shard, i);
                        else
                            beginWarm(shard, i);
                    }
                    continue;
                }
                if (revents & (POLLERR | POLLNVAL)) {
                    shardBroken(shard, i,
                                "died with the request in flight");
                    continue;
                }
                if (revents & (POLLIN | POLLHUP))
                    readShard(shard, i);
                if (shard.active() && (revents & POLLOUT))
                    flushShard(shard, i);
            }

            runTimers(stop_seen);

            // New work may have been queued onto shards this round
            // (client requests, failover replays, heal probes); try
            // the write now instead of waiting a poll cycle.
            for (std::size_t i = 0; i < shards.size(); ++i)
                if (shards[i]->active() && !shards[i]->flushed())
                    flushShard(*shards[i], i);

            for (auto& conn : conns) {
                if (conn->dead)
                    continue;
                pump(*conn);
                flush(*conn);
            }
        }
        listener.close();
        for (auto& shard : shards) {
            shard->state.store(ShardState::Down);
            shard->socket.close();
        }
        // The supervisor owns its respawned workers: take them along.
        for (pid_t pid : children)
            ::kill(pid, SIGTERM);
        for (pid_t pid : children) {
            int status = 0;
            ::waitpid(pid, &status, 0);
        }
        children.clear();
    }

    RouterConfig config;
    /** The registry behind every counter below (+ provider rows);
     *  shared with the daemon when RouterConfig supplied one. */
    std::shared_ptr<StatsRegistry> stats;
    TcpListener listener;
    HashRing ring;
    int wakeRead = -1;
    int wakeWrite = -1;
    std::atomic<bool> stopRequested{false};
    std::vector<std::unique_ptr<Conn>> conns;
    std::vector<std::unique_ptr<Shard>> shards;
    std::vector<pid_t> children;  ///< Respawned workers (loop-owned).
    std::size_t statsProvider = 0;

    // Registry-backed cells (ISSUE-8). Same increment sites as the
    // pre-registry atomics, so every pinned BENCH counter keeps its
    // exact value; RouterStats is now a view over these.
    StatsCounter& accepted;
    StatsCounter& closed;
    StatsCounter& forwarded;
    StatsCounter& responses;
    StatsCounter& protocolErrors;
    StatsCounter& oversized;
    StatsCounter& shardFailures;
    StatsCounter& retried;
    StatsCounter& deadlineExpired;
    StatsCounter& healed;
    StatsCounter& respawned;
    StatsCounter& fleetQueries;
    StatsCounter& statsQueries;
    StatsGauge& lastHealMs;
};

RouterServer::RouterServer(RouterConfig config)
    : impl_(std::make_unique<Impl>(std::move(config)))
{
}

RouterServer::~RouterServer()
{
    stop();
}

Result<bool>
RouterServer::bindListener()
{
    Result<TcpListener> listener =
        TcpListener::bind(impl_->config.host, impl_->config.port);
    if (!listener)
        return listener.error();
    impl_->listener = std::move(listener.value());
    return true;
}

std::uint16_t
RouterServer::port() const
{
    return impl_->listener.port();
}

Result<bool>
RouterServer::connectShards()
{
    return impl_->connectShards();
}

void
RouterServer::run()
{
    impl_->loop();
    loop_done_.store(true);
}

Result<bool>
RouterServer::start()
{
    Result<bool> bound = bindListener();
    if (!bound)
        return bound;
    Result<bool> shards = connectShards();
    if (!shards)
        return shards;
    loop_thread_ = std::thread([this] { run(); });
    return true;
}

void
RouterServer::requestStop()
{
    impl_->stopRequested.store(true);
    impl_->wake();
}

void
RouterServer::stop()
{
    requestStop();
    if (loop_thread_.joinable())
        loop_thread_.join();
}

const std::shared_ptr<StatsRegistry>&
RouterServer::statsRegistry() const
{
    return impl_->stats;
}

RouterStats
RouterServer::stats() const
{
    RouterStats out;
    out.connectionsAccepted = impl_->accepted.load();
    out.connectionsClosed = impl_->closed.load();
    out.connectionsOpen =
        out.connectionsAccepted - out.connectionsClosed;
    out.forwarded = impl_->forwarded.load();
    out.responses = impl_->responses.load();
    out.protocolErrors = impl_->protocolErrors.load();
    out.oversizedLines = impl_->oversized.load();
    out.shardFailures = impl_->shardFailures.load();
    out.retried = impl_->retried.load();
    out.deadlineExpired = impl_->deadlineExpired.load();
    out.healed = impl_->healed.load();
    out.respawned = impl_->respawned.load();
    out.lastHealMs = impl_->lastHealMs.load();
    out.fleetQueries = impl_->fleetQueries.load();
    out.statsQueries = impl_->statsQueries.load();
    for (const auto& shard : impl_->shards) {
        ShardHealth row;
        row.name = shard->endpoint.name;
        row.state = shard->state.load();
        row.alive = row.state == ShardState::Alive;
        row.routed = shard->routed.load();
        row.dialAttempts = shard->dialAttempts.load();
        row.heals = shard->heals.load();
        out.shardsAlive += row.alive ? 1 : 0;
        out.shards.push_back(std::move(row));
    }
    return out;
}

}  // namespace ftsim
