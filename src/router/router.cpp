#include "router/router.hpp"

#include <cerrno>
#include <deque>
#include <poll.h>
#include <unistd.h>

#include "common/logging.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "router/hash_ring.hpp"
#include "serve/protocol.hpp"

namespace ftsim {

namespace {

/** Blank lines are not requests (mirrors NetServer / ftsim_serve). */
bool
isBlank(const std::string& line)
{
    return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

/** Poll-loop internals: every member is loop-thread-owned except the
 *  stop flag, the wake pipe's write end, and the atomics. */
struct RouterServer::Impl {
    /**
     * One answer owed to a client, shared between the client
     * connection's pending queue (write-back order) and — while the
     * request is upstream — its shard's outstanding queue (fill
     * order). The shared_ptr is the lifetime glue: a client that
     * disconnects mid-flight just drops its queue, and the shard-side
     * fill lands in an orphaned slot instead of freed memory.
     */
    struct Slot {
        std::string id;
        QueryKind query = QueryKind::MaxBatch;
        bool ready = false;
        /** The response line (no terminator) once ready. */
        std::string line;
    };

    /** One open client connection (the NetServer per-conn shape). */
    struct Conn {
        Connection socket;
        LineFramer framer;
        std::deque<std::shared_ptr<Slot>> pending;
        std::string out;
        std::size_t outOff = 0;
        bool inputClosed = false;
        bool closeAfterFlush = false;
        bool dead = false;

        Conn(Connection s, std::size_t max_line)
            : socket(std::move(s)), framer(max_line)
        {
        }

        bool flushed() const { return outOff >= out.size(); }

        bool drained() const { return pending.empty() && flushed(); }
    };

    /** One upstream shard and its persistent pipelined connection. */
    struct Shard {
        ShardEndpoint endpoint;
        Connection socket;
        LineFramer framer;
        /** Requests sent (or queued to send), oldest first. The shard
         *  answers per connection in request order, so each response
         *  line fills the front slot — no correlation ids needed. */
        std::deque<std::shared_ptr<Slot>> outstanding;
        std::string out;
        std::size_t outOff = 0;
        std::atomic<bool> alive{false};
        std::atomic<std::uint64_t> routed{0};

        Shard(ShardEndpoint e, std::size_t max_line)
            : endpoint(std::move(e)), framer(max_line)
        {
        }

        bool flushed() const { return outOff >= out.size(); }
    };

    explicit Impl(RouterConfig cfg)
        : config(std::move(cfg)), ring(config.virtualNodes)
    {
        int fds[2] = {-1, -1};
        if (::pipe(fds) != 0)
            fatal("RouterServer: cannot create wake pipe");
        setNonBlocking(fds[0]);
        setNonBlocking(fds[1]);
        wakeRead = fds[0];
        wakeWrite = fds[1];
        for (ShardEndpoint endpoint : config.shards) {
            if (endpoint.name.empty())
                endpoint.name =
                    strCat(endpoint.host, ':', endpoint.port);
            shards.push_back(std::make_unique<Shard>(
                std::move(endpoint), config.maxShardLineBytes));
        }
    }

    ~Impl()
    {
        if (wakeRead >= 0)
            ::close(wakeRead);
        if (wakeWrite >= 0)
            ::close(wakeWrite);
    }

    /** Async-signal-safe (one non-blocking write; EAGAIN = a wake is
     *  already pending). */
    void wake()
    {
        const char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(wakeWrite, &byte, 1);
    }

    void drainWakePipe()
    {
        char buf[256];
        while (::read(wakeRead, buf, sizeof(buf)) > 0) {
        }
    }

    Result<bool> connectShards()
    {
        for (std::size_t i = 0; i < shards.size(); ++i)
            for (std::size_t j = i + 1; j < shards.size(); ++j)
                if (shards[i]->endpoint.name ==
                    shards[j]->endpoint.name)
                    return Error{ErrorCode::InvalidArgument,
                                 strCat("duplicate shard name \"",
                                        shards[i]->endpoint.name,
                                        '"')};
        if (shards.empty())
            return Error{ErrorCode::InvalidArgument,
                         "router needs at least one shard"};
        for (std::size_t i = 0; i < shards.size(); ++i) {
            Shard& shard = *shards[i];
            Result<Connection> conn = Connection::connectTo(
                shard.endpoint.host, shard.endpoint.port);
            if (!conn)
                return Error{
                    ErrorCode::Unavailable,
                    strCat("shard \"", shard.endpoint.name,
                           "\" unreachable: ", conn.error().message)};
            shard.socket = std::move(conn.value());
            // connectTo leaves the fd blocking (the client-side
            // contract); the poll loop needs it non-blocking.
            setNonBlocking(shard.socket.fd());
            shard.alive.store(true);
            ring.addShard(i, shard.endpoint.name);
        }
        return true;
    }

    /** Fills @p slot with a typed error response — the only answers
     *  the router composes (everything else is shard bytes). */
    void answerError(Slot& slot, ErrorCode code, std::string message)
    {
        PlanRequest request;
        request.id = slot.id;
        request.query = slot.query;
        slot.line = writePlanResponse(
            errorResponse(request, Error{code, std::move(message)}));
        slot.ready = true;
    }

    /**
     * Takes @p shard out of the fleet: close the socket, drop its ring
     * points (only *its* keys re-route — consistent hashing's whole
     * point), and answer every outstanding request `Unavailable`, in
     * order, in its slot. The router keeps serving on the survivors.
     */
    void markShardDead(Shard& shard, std::size_t index,
                       const std::string& why)
    {
        if (!shard.alive.load())
            return;
        shard.alive.store(false);
        shard.socket.close();
        shard.out.clear();
        shard.outOff = 0;
        ring.removeShard(index);
        while (!shard.outstanding.empty()) {
            const std::shared_ptr<Slot> slot =
                shard.outstanding.front();
            shard.outstanding.pop_front();
            shardFailures.fetch_add(1);
            answerError(*slot, ErrorCode::Unavailable,
                        strCat("shard \"", shard.endpoint.name,
                               "\" ", why));
        }
    }

    /** The router's own `fleet` answer: shard health + routing. */
    void answerFleet(Slot& slot)
    {
        fleetQueries.fetch_add(1);
        PlanResponse response;
        response.id = slot.id;
        response.query = QueryKind::Fleet;
        response.ok = true;
        std::size_t alive = 0;
        for (const auto& shard : shards)
            alive += shard->alive.load() ? 1 : 0;
        response.value = static_cast<double>(alive);
        response.report =
            strCat("router: shards=", shards.size(), " alive=", alive);
        for (const auto& shard : shards)
            response.report += strCat(
                "; ", shard->endpoint.name, '=',
                shard->alive.load() ? "alive" : "dead",
                " routed=", shard->routed.load());
        slot.line = writePlanResponse(response);
        slot.ready = true;
    }

    void handleFrame(Conn& conn, LineFramer::Frame& frame)
    {
        if (frame.overflow) {
            oversized.fetch_add(1);
            protocolErrors.fetch_add(1);
            auto slot = std::make_shared<Slot>();
            slot->line = writeProtocolError(
                "", strCat("request line exceeds ",
                           config.maxLineBytes, " bytes"));
            slot->ready = true;
            conn.pending.push_back(std::move(slot));
            return;
        }
        if (isBlank(frame.line))
            return;
        // Parse locally even though the shard will parse again: the
        // canonical key IS the routing decision, and a malformed line
        // must be answered here (there is no shard for it).
        Result<PlanRequest> request = parsePlanRequest(frame.line);
        if (!request) {
            protocolErrors.fetch_add(1);
            auto slot = std::make_shared<Slot>();
            slot->line =
                writeProtocolError("", request.error().message);
            slot->ready = true;
            conn.pending.push_back(std::move(slot));
            return;
        }
        auto slot = std::make_shared<Slot>();
        slot->id = request.value().id;
        slot->query = request.value().query;
        if (slot->query == QueryKind::Fleet) {
            // Intercepted: the fleet question is about the router's
            // view. (Ask a shard's own port for per-shard counters.)
            answerFleet(*slot);
            conn.pending.push_back(std::move(slot));
            return;
        }
        const int target =
            ring.shardFor(request.value().canonicalKey());
        if (target < 0) {
            shardFailures.fetch_add(1);
            answerError(*slot, ErrorCode::Unavailable,
                        "no live shards");
            conn.pending.push_back(std::move(slot));
            return;
        }
        Shard& shard = *shards[static_cast<std::size_t>(target)];
        // Forward the original line byte-verbatim: the shard stamps
        // the echoed id itself, and re-serializing here could only
        // risk perturbing the bytes the golden gate diffs.
        shard.out += frame.line;
        shard.out += '\n';
        shard.outstanding.push_back(slot);
        shard.routed.fetch_add(1);
        forwarded.fetch_add(1);
        conn.pending.push_back(std::move(slot));
    }

    void readClient(Conn& conn)
    {
        char buf[16384];
        while (!conn.inputClosed && !conn.dead) {
            const IoResult io = conn.socket.readSome(buf, sizeof(buf));
            if (io.status == IoStatus::Ok) {
                conn.framer.feed(buf, io.bytes);
                LineFramer::Frame frame;
                while (conn.framer.next(frame))
                    handleFrame(conn, frame);
            } else if (io.status == IoStatus::WouldBlock) {
                break;
            } else if (io.status == IoStatus::Eof) {
                conn.inputClosed = true;
                conn.closeAfterFlush = true;
            } else {
                conn.dead = true;
            }
        }
    }

    void readShard(Shard& shard, std::size_t index)
    {
        char buf[16384];
        while (shard.alive.load()) {
            const IoResult io =
                shard.socket.readSome(buf, sizeof(buf));
            if (io.status == IoStatus::Ok) {
                shard.framer.feed(buf, io.bytes);
                LineFramer::Frame frame;
                while (shard.framer.next(frame)) {
                    if (frame.overflow) {
                        // A response we cannot frame poisons the
                        // pipelined stream — nothing after it can be
                        // matched to a slot.
                        markShardDead(shard, index,
                                      "answered an oversized line");
                        return;
                    }
                    if (isBlank(frame.line))
                        continue;
                    if (shard.outstanding.empty()) {
                        markShardDead(shard, index,
                                      "sent an unsolicited response");
                        return;
                    }
                    Slot& slot = *shard.outstanding.front();
                    slot.line = std::move(frame.line);
                    slot.ready = true;
                    shard.outstanding.pop_front();
                }
            } else if (io.status == IoStatus::WouldBlock) {
                return;
            } else {
                markShardDead(shard, index,
                              io.status == IoStatus::Eof
                                  ? "closed the connection"
                                  : "died with the request in flight");
                return;
            }
        }
    }

    void flushShard(Shard& shard, std::size_t index)
    {
        while (shard.alive.load() && !shard.flushed()) {
            const IoResult io = shard.socket.writeSome(
                shard.out.data() + shard.outOff,
                shard.out.size() - shard.outOff);
            if (io.status == IoStatus::Ok) {
                shard.outOff += io.bytes;
            } else if (io.status == IoStatus::WouldBlock) {
                return;
            } else {
                markShardDead(shard, index,
                              "died with the request in flight");
                return;
            }
        }
        if (shard.flushed()) {
            shard.out.clear();
            shard.outOff = 0;
        }
    }

    /** Moves ready answers (in request order) into the write buffer. */
    void pump(Conn& conn)
    {
        while (!conn.pending.empty() && conn.pending.front()->ready) {
            conn.out += conn.pending.front()->line;
            conn.out += '\n';
            conn.pending.pop_front();
            responses.fetch_add(1);
        }
    }

    void flush(Conn& conn)
    {
        while (!conn.flushed() && !conn.dead) {
            const IoResult io =
                conn.socket.writeSome(conn.out.data() + conn.outOff,
                                      conn.out.size() - conn.outOff);
            if (io.status == IoStatus::Ok) {
                conn.outOff += io.bytes;
            } else if (io.status == IoStatus::WouldBlock) {
                return;
            } else {
                conn.dead = true;
            }
        }
        if (conn.flushed()) {
            conn.out.clear();
            conn.outOff = 0;
        }
    }

    void acceptPending()
    {
        while (conns.size() < config.maxConnections) {
            Connection socket = listener.accept();
            if (!socket.valid())
                break;
            accepted.fetch_add(1);
            conns.push_back(std::make_unique<Conn>(
                std::move(socket), config.maxLineBytes));
        }
    }

    void loop()
    {
        std::vector<pollfd> fds;
        std::vector<Conn*> polledConns;
        std::vector<std::size_t> polledShards;
        bool stop_seen = false;
        while (true) {
            if (stopRequested.load() && !stop_seen) {
                stop_seen = true;
                // Graceful drain, the NetServer contract: no new
                // clients, no new input, but every forwarded request
                // still answers (or fails typed) and flushes.
                listener.close();
                for (auto& conn : conns) {
                    conn->inputClosed = true;
                    conn->closeAfterFlush = true;
                }
            }

            for (auto it = conns.begin(); it != conns.end();) {
                Conn& conn = **it;
                const bool done =
                    conn.dead ||
                    (conn.closeAfterFlush && conn.drained());
                if (done) {
                    closed.fetch_add(1);
                    it = conns.erase(it);
                } else {
                    ++it;
                }
            }
            if (stop_seen && conns.empty())
                break;

            fds.clear();
            polledConns.clear();
            polledShards.clear();
            fds.push_back({wakeRead, POLLIN, 0});
            const bool accepting = !stop_seen && listener.valid() &&
                                   conns.size() < config.maxConnections;
            if (accepting)
                fds.push_back({listener.fd(), POLLIN, 0});
            for (auto& conn : conns) {
                short events = 0;
                if (!conn->inputClosed)
                    events |= POLLIN;
                if (!conn->flushed())
                    events |= POLLOUT;
                fds.push_back({conn->socket.fd(), events, 0});
                polledConns.push_back(conn.get());
            }
            for (std::size_t i = 0; i < shards.size(); ++i) {
                Shard& shard = *shards[i];
                if (!shard.alive.load())
                    continue;
                // Always POLLIN: shard death must surface even while
                // nothing is outstanding.
                short events = POLLIN;
                if (!shard.flushed())
                    events |= POLLOUT;
                fds.push_back({shard.socket.fd(), events, 0});
                polledShards.push_back(i);
            }

            const int rc = ::poll(fds.data(),
                                  static_cast<nfds_t>(fds.size()), -1);
            if (rc < 0 && errno != EINTR)
                fatal("RouterServer: poll() failed");

            std::size_t index = 0;
            if (fds[index].revents & POLLIN)
                drainWakePipe();
            ++index;
            if (accepting) {
                if (fds[index].revents & POLLIN)
                    acceptPending();
                ++index;
            }
            for (std::size_t c = 0; c < polledConns.size();
                 ++c, ++index) {
                Conn& conn = *polledConns[c];
                const short revents = fds[index].revents;
                if (revents & (POLLERR | POLLNVAL))
                    conn.dead = true;
                if (!conn.dead && (revents & (POLLIN | POLLHUP)))
                    readClient(conn);
            }
            for (std::size_t s = 0; s < polledShards.size();
                 ++s, ++index) {
                const std::size_t i = polledShards[s];
                Shard& shard = *shards[i];
                const short revents = fds[index].revents;
                if (revents & (POLLERR | POLLNVAL)) {
                    markShardDead(shard, i,
                                  "died with the request in flight");
                    continue;
                }
                if (revents & (POLLIN | POLLHUP))
                    readShard(shard, i);
                if (shard.alive.load() && (revents & POLLOUT))
                    flushShard(shard, i);
            }

            // New work may have been queued onto shards this round;
            // try the write now instead of waiting a poll cycle.
            for (std::size_t i = 0; i < shards.size(); ++i)
                if (shards[i]->alive.load() && !shards[i]->flushed())
                    flushShard(*shards[i], i);

            for (auto& conn : conns) {
                if (conn->dead)
                    continue;
                pump(*conn);
                flush(*conn);
            }
        }
        listener.close();
        for (auto& shard : shards) {
            shard->alive.store(false);
            shard->socket.close();
        }
    }

    RouterConfig config;
    TcpListener listener;
    HashRing ring;
    int wakeRead = -1;
    int wakeWrite = -1;
    std::atomic<bool> stopRequested{false};
    std::vector<std::unique_ptr<Conn>> conns;
    std::vector<std::unique_ptr<Shard>> shards;

    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> closed{0};
    std::atomic<std::uint64_t> forwarded{0};
    std::atomic<std::uint64_t> responses{0};
    std::atomic<std::uint64_t> protocolErrors{0};
    std::atomic<std::uint64_t> oversized{0};
    std::atomic<std::uint64_t> shardFailures{0};
    std::atomic<std::uint64_t> fleetQueries{0};
};

RouterServer::RouterServer(RouterConfig config)
    : impl_(std::make_unique<Impl>(std::move(config)))
{
}

RouterServer::~RouterServer()
{
    stop();
}

Result<bool>
RouterServer::bindListener()
{
    Result<TcpListener> listener =
        TcpListener::bind(impl_->config.host, impl_->config.port);
    if (!listener)
        return listener.error();
    impl_->listener = std::move(listener.value());
    return true;
}

std::uint16_t
RouterServer::port() const
{
    return impl_->listener.port();
}

Result<bool>
RouterServer::connectShards()
{
    return impl_->connectShards();
}

void
RouterServer::run()
{
    impl_->loop();
    loop_done_.store(true);
}

Result<bool>
RouterServer::start()
{
    Result<bool> bound = bindListener();
    if (!bound)
        return bound;
    Result<bool> shards = connectShards();
    if (!shards)
        return shards;
    loop_thread_ = std::thread([this] { run(); });
    return true;
}

void
RouterServer::requestStop()
{
    impl_->stopRequested.store(true);
    impl_->wake();
}

void
RouterServer::stop()
{
    requestStop();
    if (loop_thread_.joinable())
        loop_thread_.join();
}

RouterStats
RouterServer::stats() const
{
    RouterStats out;
    out.connectionsAccepted = impl_->accepted.load();
    out.connectionsClosed = impl_->closed.load();
    out.connectionsOpen =
        out.connectionsAccepted - out.connectionsClosed;
    out.forwarded = impl_->forwarded.load();
    out.responses = impl_->responses.load();
    out.protocolErrors = impl_->protocolErrors.load();
    out.oversizedLines = impl_->oversized.load();
    out.shardFailures = impl_->shardFailures.load();
    out.fleetQueries = impl_->fleetQueries.load();
    for (const auto& shard : impl_->shards) {
        ShardHealth row;
        row.name = shard->endpoint.name;
        row.alive = shard->alive.load();
        row.routed = shard->routed.load();
        out.shardsAlive += row.alive ? 1 : 0;
        out.shards.push_back(std::move(row));
    }
    return out;
}

}  // namespace ftsim
