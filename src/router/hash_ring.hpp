#ifndef FTSIM_ROUTER_HASH_RING_HPP
#define FTSIM_ROUTER_HASH_RING_HPP

/**
 * @file
 * Consistent hashing for the fleet router.
 *
 * The router's whole value proposition is that duplicate requests land
 * on the same shard — the fleet then coalesces exactly like one big
 * service (distinct-config-many steps, however many clients ask). A
 * modulo hash would satisfy that too, but the first dead shard would
 * remap *every* key and scatter previously-coalesced duplicates across
 * the fleet. A consistent-hash ring remaps only the dead shard's keys
 * (onto their ring successors), so resharding perturbs the fleet's
 * dedup as little as topology allows.
 *
 * Mechanics: each shard contributes `virtualNodes` points to the ring,
 * hashed from "<name>#<replica>" with FNV-1a 64 (the same hash family
 * the snapshot checksum uses — small, dependency-free, well understood).
 * A key is owned by the first point clockwise from its hash. Points are
 * derived from the shard *name*, so a shard's placement is stable
 * across router restarts and across reorderings of the shard list.
 *
 * Not thread-safe: the router's single poll loop is the only caller.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ftsim {

/** FNV-1a 64-bit (the ring's point + key hash). */
std::uint64_t fnv1a64(std::string_view bytes);

/** Consistent-hash ring over shard indices (see file comment). */
class HashRing {
  public:
    /** @param virtual_nodes ring points per shard; more points = finer
     *         balance, linearly slower rebuilds. 0 is treated as 1. */
    explicit HashRing(std::size_t virtual_nodes = 64)
        : virtual_nodes_(virtual_nodes > 0 ? virtual_nodes : 1)
    {
    }

    /** Adds @p shard (an index the caller dereferences) under
     *  @p name. Names must be unique per ring — placement identity. */
    void addShard(std::size_t shard, std::string_view name);

    /** Removes every point of @p shard; its keys fall to their ring
     *  successors, everyone else's keys stay put. */
    void removeShard(std::size_t shard);

    /**
     * The shard owning @p key, or -1 when the ring is empty. Equal
     * keys always agree while membership is unchanged — the router's
     * coalescing invariant.
     */
    int shardFor(std::string_view key) const;

    /** Shards currently contributing points. */
    std::size_t liveShards() const;

    std::size_t points() const { return ring_.size(); }

  private:
    struct Point {
        std::uint64_t hash;
        std::size_t shard;
    };

    std::size_t virtual_nodes_;
    /** Sorted by (hash, shard): the tie order must be deterministic
     *  or two routers with colliding points could disagree. */
    std::vector<Point> ring_;
};

}  // namespace ftsim

#endif  // FTSIM_ROUTER_HASH_RING_HPP
