#include "router/hash_ring.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace ftsim {

std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

void
HashRing::addShard(std::size_t shard, std::string_view name)
{
    for (std::size_t v = 0; v < virtual_nodes_; ++v) {
        const std::uint64_t hash =
            fnv1a64(strCat(name, '#', v));
        ring_.push_back({hash, shard});
    }
    std::sort(ring_.begin(), ring_.end(),
              [](const Point& a, const Point& b) {
                  return a.hash != b.hash ? a.hash < b.hash
                                          : a.shard < b.shard;
              });
}

void
HashRing::removeShard(std::size_t shard)
{
    ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                               [shard](const Point& p) {
                                   return p.shard == shard;
                               }),
                ring_.end());
}

int
HashRing::shardFor(std::string_view key) const
{
    if (ring_.empty())
        return -1;
    const std::uint64_t hash = fnv1a64(key);
    // First point clockwise from the key; wrap to the ring start.
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), hash,
        [](const Point& p, std::uint64_t h) { return p.hash < h; });
    if (it == ring_.end())
        it = ring_.begin();
    return static_cast<int>(it->shard);
}

std::size_t
HashRing::liveShards() const
{
    // Count distinct shard values; the ring holds a handful of shards,
    // so a linear membership scan beats building a set.
    std::vector<std::size_t> seen;
    for (const Point& p : ring_)
        if (std::find(seen.begin(), seen.end(), p.shard) == seen.end())
            seen.push_back(p.shard);
    return seen.size();
}

}  // namespace ftsim
