#include "tensor/tensor.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace ftsim {

namespace {

/** Thread-local autograd recording flag (mirrors torch.no_grad()). */
thread_local bool grad_mode_enabled = true;

}  // namespace

std::size_t
shapeNumel(const Shape& shape)
{
    std::size_t n = 1;
    for (std::size_t s : shape)
        n *= s;
    return n;
}

std::string
shapeToString(const Shape& shape)
{
    std::ostringstream oss;
    oss << '[';
    for (std::size_t i = 0; i < shape.size(); ++i)
        oss << (i ? ", " : "") << shape[i];
    oss << ']';
    return oss.str();
}

void
TensorImpl::ensureGrad()
{
    if (grad.empty())
        grad.assign(data.size(), 0.0);
}

bool
GradMode::enabled()
{
    return grad_mode_enabled;
}

void
GradMode::setEnabled(bool enabled)
{
    grad_mode_enabled = enabled;
}

NoGradGuard::NoGradGuard()
    : previous_(GradMode::enabled())
{
    GradMode::setEnabled(false);
}

NoGradGuard::~NoGradGuard()
{
    GradMode::setEnabled(previous_);
}

Tensor
Tensor::zeros(const Shape& shape, bool requires_grad)
{
    auto impl = std::make_shared<TensorImpl>();
    impl->shape = shape;
    impl->data.assign(shapeNumel(shape), 0.0);
    impl->requiresGrad = requires_grad;
    return Tensor(std::move(impl));
}

Tensor
Tensor::full(const Shape& shape, Scalar value, bool requires_grad)
{
    auto impl = std::make_shared<TensorImpl>();
    impl->shape = shape;
    impl->data.assign(shapeNumel(shape), value);
    impl->requiresGrad = requires_grad;
    return Tensor(std::move(impl));
}

Tensor
Tensor::fromVector(const Shape& shape, std::vector<Scalar> values,
                   bool requires_grad)
{
    if (values.size() != shapeNumel(shape)) {
        fatal(strCat("Tensor::fromVector: ", values.size(),
                     " values do not fill shape ", shapeToString(shape)));
    }
    auto impl = std::make_shared<TensorImpl>();
    impl->shape = shape;
    impl->data = std::move(values);
    impl->requiresGrad = requires_grad;
    return Tensor(std::move(impl));
}

Tensor
Tensor::scalar(Scalar value, bool requires_grad)
{
    return fromVector({}, {value}, requires_grad);
}

Tensor
Tensor::randn(const Shape& shape, Rng& rng, Scalar stddev,
              bool requires_grad)
{
    std::vector<Scalar> values(shapeNumel(shape));
    for (auto& v : values)
        v = rng.normal(0.0, stddev);
    return fromVector(shape, std::move(values), requires_grad);
}

Tensor
Tensor::randu(const Shape& shape, Rng& rng, Scalar bound,
              bool requires_grad)
{
    std::vector<Scalar> values(shapeNumel(shape));
    for (auto& v : values)
        v = rng.uniform(-bound, bound);
    return fromVector(shape, std::move(values), requires_grad);
}

const Shape&
Tensor::shape() const
{
    if (!impl_)
        fatal("Tensor: accessing shape of an undefined tensor");
    return impl_->shape;
}

std::size_t
Tensor::size(std::size_t i) const
{
    const Shape& s = shape();
    if (i >= s.size())
        fatal(strCat("Tensor::size: dim ", i, " out of range for ",
                     shapeToString(s)));
    return s[i];
}

std::size_t
Tensor::numel() const
{
    return shapeNumel(shape());
}

std::vector<Scalar>&
Tensor::data()
{
    if (!impl_)
        fatal("Tensor: accessing data of an undefined tensor");
    return impl_->data;
}

const std::vector<Scalar>&
Tensor::data() const
{
    if (!impl_)
        fatal("Tensor: accessing data of an undefined tensor");
    return impl_->data;
}

std::vector<Scalar>&
Tensor::grad() const
{
    if (!impl_)
        fatal("Tensor: accessing grad of an undefined tensor");
    impl_->ensureGrad();
    return impl_->grad;
}

bool
Tensor::hasGrad() const
{
    return impl_ && !impl_->grad.empty();
}

bool
Tensor::requiresGrad() const
{
    return impl_ && impl_->requiresGrad;
}

Tensor&
Tensor::setRequiresGrad(bool requires_grad)
{
    if (!impl_)
        fatal("Tensor::setRequiresGrad on undefined tensor");
    impl_->requiresGrad = requires_grad;
    return *this;
}

Scalar
Tensor::at(std::initializer_list<std::size_t> index) const
{
    const Shape& s = shape();
    if (index.size() != s.size())
        fatal(strCat("Tensor::at: rank mismatch for ", shapeToString(s)));
    std::size_t flat = 0;
    std::size_t i = 0;
    for (std::size_t idx : index) {
        if (idx >= s[i])
            fatal("Tensor::at: index out of range");
        flat = flat * s[i] + idx;
        ++i;
    }
    return data()[flat];
}

Scalar
Tensor::item() const
{
    if (numel() != 1)
        fatal(strCat("Tensor::item: tensor has ", numel(), " elements"));
    return data()[0];
}

void
Tensor::zeroGrad()
{
    if (impl_ && !impl_->grad.empty())
        std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0);
}

void
Tensor::backward()
{
    if (!impl_)
        fatal("Tensor::backward on undefined tensor");
    if (numel() != 1)
        fatal("Tensor::backward: root must be scalar (reduce first)");

    // Iterative post-order DFS: node appended after all of its parents,
    // so the reversed list runs root-to-leaves.
    std::vector<TensorImpl*> topo;
    std::unordered_set<TensorImpl*> visited;
    struct Frame {
        TensorImpl* node;
        std::size_t next_parent;
    };
    std::vector<Frame> stack;
    stack.push_back({impl_.get(), 0});
    visited.insert(impl_.get());
    while (!stack.empty()) {
        Frame& frame = stack.back();
        if (frame.next_parent < frame.node->parents.size()) {
            TensorImpl* parent =
                frame.node->parents[frame.next_parent].get();
            ++frame.next_parent;
            if (parent && !visited.count(parent)) {
                visited.insert(parent);
                stack.push_back({parent, 0});
            }
        } else {
            topo.push_back(frame.node);
            stack.pop_back();
        }
    }

    impl_->ensureGrad();
    impl_->grad[0] = 1.0;

    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        TensorImpl* node = *it;
        if (node->backwardFn)
            node->backwardFn(*node);
    }
}

Tensor
Tensor::detach() const
{
    if (!impl_)
        return Tensor();
    auto impl = std::make_shared<TensorImpl>();
    impl->shape = impl_->shape;
    impl->data = impl_->data;  // Value copy: detached view semantics are
                               // not needed anywhere in this codebase.
    impl->requiresGrad = false;
    return Tensor(std::move(impl));
}

Tensor
Tensor::clone() const
{
    return detach();
}

Tensor
makeOpResult(Shape shape, std::vector<Scalar> values,
             const std::vector<Tensor>& parents,
             std::function<void(TensorImpl&)> backward_fn)
{
    if (values.size() != shapeNumel(shape))
        panic("makeOpResult: value count does not match shape");

    auto impl = std::make_shared<TensorImpl>();
    impl->shape = std::move(shape);
    impl->data = std::move(values);

    bool needs_grad = false;
    if (GradMode::enabled()) {
        for (const auto& p : parents) {
            if (p.defined() && p.impl()->requiresGrad) {
                needs_grad = true;
                break;
            }
        }
    }
    if (needs_grad) {
        impl->requiresGrad = true;
        impl->parents.reserve(parents.size());
        for (const auto& p : parents)
            impl->parents.push_back(p.impl());
        impl->backwardFn = std::move(backward_fn);
    }
    return Tensor(std::move(impl));
}

}  // namespace ftsim
