#include "tensor/grad_check.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace ftsim {

GradCheckResult
gradCheck(const ScalarFn& fn, const std::vector<Tensor>& inputs,
          double eps, double rel_tol, double abs_tol)
{
    // Fresh leaf copies so the caller's tensors are untouched.
    std::vector<Tensor> leaves;
    leaves.reserve(inputs.size());
    for (const auto& t : inputs) {
        Tensor leaf = t.clone();
        leaf.setRequiresGrad(true);
        leaves.push_back(leaf);
    }

    // Analytic gradients.
    Tensor loss = fn(leaves);
    if (loss.numel() != 1)
        fatal("gradCheck: fn must return a scalar");
    loss.backward();

    GradCheckResult result;
    for (std::size_t ti = 0; ti < leaves.size(); ++ti) {
        Tensor& leaf = leaves[ti];
        const std::vector<Scalar> analytic = leaf.grad();
        for (std::size_t i = 0; i < leaf.numel(); ++i) {
            const Scalar saved = leaf.data()[i];

            leaf.data()[i] = saved + eps;
            Scalar f_plus = fn(leaves).item();
            leaf.data()[i] = saved - eps;
            Scalar f_minus = fn(leaves).item();
            leaf.data()[i] = saved;

            const Scalar numeric = (f_plus - f_minus) / (2.0 * eps);
            const Scalar diff = std::abs(numeric - analytic[i]);
            const Scalar denom =
                std::max(std::abs(numeric), std::abs(analytic[i]));
            const Scalar rel = denom > 0.0 ? diff / denom : 0.0;

            result.maxAbsError = std::max(result.maxAbsError, diff);
            result.maxRelError = std::max(result.maxRelError, rel);
            if (diff > abs_tol && rel > rel_tol && result.ok) {
                result.ok = false;
                result.firstFailure = strCat(
                    "input ", ti, " element ", i, ": analytic ",
                    analytic[i], " vs numeric ", numeric);
            }
        }
    }
    return result;
}

}  // namespace ftsim
