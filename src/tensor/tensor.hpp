#ifndef FTSIM_TENSOR_TENSOR_HPP
#define FTSIM_TENSOR_TENSOR_HPP

/**
 * @file
 * A small dense tensor with reverse-mode automatic differentiation.
 *
 * This is the training substrate that stands in for PyTorch in the
 * reproduction: it is an eager, define-by-run tape. Tensors are row-major,
 * contiguous, double-precision (double keeps finite-difference gradient
 * checks tight, and the miniature models trained here are far below the
 * scale where float32 would matter for speed).
 *
 * Design notes:
 *  - A Tensor is a shared handle to a TensorImpl node. Operations build a
 *    DAG by recording parent handles plus a backward closure on the
 *    result node.
 *  - backward() runs an iterative topological sort from the root (which
 *    must be scalar) and invokes each node's backward closure once, after
 *    all of its consumers.
 *  - Gradients accumulate (+=) into `grad`, so one forward graph supports
 *    multiple uses of a value (fan-out) naturally.
 */

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

namespace ftsim {

class Rng;

/** Element type for all tensors. */
using Scalar = double;

/** Shape: sizes of each dimension, outermost first. */
using Shape = std::vector<std::size_t>;

/** Returns the number of elements implied by a shape (1 for rank 0). */
std::size_t shapeNumel(const Shape& shape);

/** Renders a shape as "[2, 3, 4]" for error messages. */
std::string shapeToString(const Shape& shape);

class Tensor;

/**
 * Internal node: storage plus autograd bookkeeping.
 *
 * Public because op implementations (ops.cpp) and custom layers need
 * direct access; end users interact through Tensor.
 */
struct TensorImpl {
    Shape shape;
    std::vector<Scalar> data;
    /** Gradient buffer; empty until ensureGrad() allocates it. */
    std::vector<Scalar> grad;
    bool requiresGrad = false;
    /** Parents in the autograd DAG; kept alive for backward. */
    std::vector<std::shared_ptr<TensorImpl>> parents;
    /**
     * Backward closure. Receives this node so the closure needs no
     * self-capture (which would leak via a reference cycle).
     */
    std::function<void(TensorImpl&)> backwardFn;

    /** Allocates (zero-filled) the grad buffer if absent. */
    void ensureGrad();
};

/**
 * Global autograd mode. NoGradGuard disables graph recording in a scope,
 * used by evaluation loops (mirrors torch.no_grad()).
 */
class GradMode {
  public:
    /** True if operations should record the autograd graph. */
    static bool enabled();

    /** Sets graph recording on or off. */
    static void setEnabled(bool enabled);
};

/** RAII scope that disables autograd recording. */
class NoGradGuard {
  public:
    NoGradGuard();
    ~NoGradGuard();

    NoGradGuard(const NoGradGuard&) = delete;
    NoGradGuard& operator=(const NoGradGuard&) = delete;

  private:
    bool previous_;
};

/** Shared handle to a tensor node; cheap to copy. */
class Tensor {
  public:
    /** Constructs an undefined (null) tensor. */
    Tensor() = default;

    /** Wraps an existing impl (op-author API). */
    explicit Tensor(std::shared_ptr<TensorImpl> impl)
        : impl_(std::move(impl)) {}

    /** Zero-filled tensor of the given shape. */
    static Tensor zeros(const Shape& shape, bool requires_grad = false);

    /** Constant-filled tensor. */
    static Tensor full(const Shape& shape, Scalar value,
                       bool requires_grad = false);

    /** Tensor from an explicit value vector (size must match shape). */
    static Tensor fromVector(const Shape& shape, std::vector<Scalar> values,
                             bool requires_grad = false);

    /** Scalar (rank-0) tensor. */
    static Tensor scalar(Scalar value, bool requires_grad = false);

    /** Gaussian-initialized tensor with the given standard deviation. */
    static Tensor randn(const Shape& shape, Rng& rng, Scalar stddev = 1.0,
                        bool requires_grad = false);

    /** Uniform(-bound, bound)-initialized tensor. */
    static Tensor randu(const Shape& shape, Rng& rng, Scalar bound,
                        bool requires_grad = false);

    /** True if this handle points at a node. */
    bool defined() const { return impl_ != nullptr; }

    /** Shape accessor; fatal if undefined. */
    const Shape& shape() const;

    /** Rank (number of dimensions). */
    std::size_t dim() const { return shape().size(); }

    /** Size of dimension @p i; fatal if out of range. */
    std::size_t size(std::size_t i) const;

    /** Total number of elements. */
    std::size_t numel() const;

    /** Mutable flat data access. */
    std::vector<Scalar>& data();

    /** Const flat data access. */
    const std::vector<Scalar>& data() const;

    /**
     * Gradient access (allocates if needed). Const because Tensor is a
     * shared handle: mutating the gradient does not re-seat the handle.
     */
    std::vector<Scalar>& grad() const;

    /** True if a gradient buffer has been allocated. */
    bool hasGrad() const;

    /** True if this tensor participates in autograd. */
    bool requiresGrad() const;

    /** Marks the tensor as a leaf that accumulates gradient. */
    Tensor& setRequiresGrad(bool requires_grad);

    /** Element accessor by multi-index (debug/test convenience; slow). */
    Scalar at(std::initializer_list<std::size_t> index) const;

    /** Scalar value of a rank-0 or single-element tensor. */
    Scalar item() const;

    /** Zeroes the gradient buffer if allocated. */
    void zeroGrad();

    /**
     * Runs reverse-mode differentiation from this scalar tensor, seeding
     * d(self)/d(self) = 1. Fatal if not scalar or not part of a graph.
     */
    void backward();

    /** Returns a copy that shares storage but is detached from the graph. */
    Tensor detach() const;

    /** Returns a deep copy (fresh storage, no graph). */
    Tensor clone() const;

    /** Underlying node (op-author API). */
    const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

  private:
    std::shared_ptr<TensorImpl> impl_;
};

/**
 * Creates a graph node: result tensor with given shape/parents/backward.
 * requiresGrad is inferred from parents and the global GradMode; when
 * false, parents and the closure are dropped (no graph is kept).
 * Op-author API used by ops.cpp and custom layers.
 */
Tensor makeOpResult(Shape shape, std::vector<Scalar> values,
                    const std::vector<Tensor>& parents,
                    std::function<void(TensorImpl&)> backward_fn);

}  // namespace ftsim

#endif  // FTSIM_TENSOR_TENSOR_HPP
