/**
 * @file
 * Neural-net ops: normalization, softmax/cross-entropy, embedding,
 * masking, and the MoE routing plumbing (top-k, gather/scatter).
 */

#include <algorithm>
#include <cmath>

#include "tensor/op_helpers.hpp"
#include "tensor/ops.hpp"

namespace ftsim {

using detail::checkDefined;
using detail::noUpstream;
using detail::wantsGrad;

Tensor
rmsNorm(const Tensor& x, const Tensor& weight, Scalar eps)
{
    checkDefined(x, "rmsNorm");
    checkDefined(weight, "rmsNorm");
    const std::size_t d = x.shape().back();
    if (weight.shape().size() != 1 || weight.shape()[0] != d)
        fatal("rmsNorm: weight must be a [D] gain vector");
    const std::size_t rows = x.numel() / d;

    // Cache the per-row RMS for the backward pass.
    auto rms = std::make_shared<std::vector<Scalar>>(rows);
    std::vector<Scalar> out(x.numel());
    const auto& dx = x.data();
    const auto& dw = weight.data();
    for (std::size_t r = 0; r < rows; ++r) {
        Scalar ss = 0.0;
        for (std::size_t c = 0; c < d; ++c) {
            Scalar v = dx[r * d + c];
            ss += v * v;
        }
        Scalar rrms = std::sqrt(ss / static_cast<Scalar>(d) + eps);
        (*rms)[r] = rrms;
        for (std::size_t c = 0; c < d; ++c)
            out[r * d + c] = dw[c] * dx[r * d + c] / rrms;
    }

    return makeOpResult(x.shape(), std::move(out), {x, weight},
        [rows, d, rms](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& px = *self.parents[0];
            TensorImpl& pw = *self.parents[1];
            const bool gx = wantsGrad(px);
            const bool gw = wantsGrad(pw);
            if (!gx && !gw)
                return;
            for (std::size_t r = 0; r < rows; ++r) {
                const Scalar rrms = (*rms)[r];
                if (gw) {
                    for (std::size_t c = 0; c < d; ++c)
                        pw.grad[c] += self.grad[r * d + c] *
                                      px.data[r * d + c] / rrms;
                }
                if (gx) {
                    // dL/dx_j = g_j w_j / r - x_j/(D r^3) sum_i g_i w_i x_i
                    Scalar dot = 0.0;
                    for (std::size_t c = 0; c < d; ++c)
                        dot += self.grad[r * d + c] * pw.data[c] *
                               px.data[r * d + c];
                    const Scalar r3 = rrms * rrms * rrms;
                    for (std::size_t c = 0; c < d; ++c) {
                        px.grad[r * d + c] +=
                            self.grad[r * d + c] * pw.data[c] / rrms -
                            px.data[r * d + c] * dot /
                                (static_cast<Scalar>(d) * r3);
                    }
                }
            }
        });
}

Tensor
softmaxLastDim(const Tensor& x)
{
    checkDefined(x, "softmaxLastDim");
    const std::size_t d = x.shape().back();
    const std::size_t rows = x.numel() / d;
    std::vector<Scalar> out(x.numel());
    const auto& dx = x.data();
    for (std::size_t r = 0; r < rows; ++r) {
        Scalar mx = dx[r * d];
        for (std::size_t c = 1; c < d; ++c)
            mx = std::max(mx, dx[r * d + c]);
        Scalar sum = 0.0;
        for (std::size_t c = 0; c < d; ++c) {
            Scalar e = std::exp(dx[r * d + c] - mx);
            out[r * d + c] = e;
            sum += e;
        }
        for (std::size_t c = 0; c < d; ++c)
            out[r * d + c] /= sum;
    }
    return makeOpResult(x.shape(), std::move(out), {x},
        [rows, d](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            // dx = y * (g - sum(g * y)) per row.
            for (std::size_t r = 0; r < rows; ++r) {
                Scalar dot = 0.0;
                for (std::size_t c = 0; c < d; ++c)
                    dot += self.grad[r * d + c] * self.data[r * d + c];
                for (std::size_t c = 0; c < d; ++c)
                    p.grad[r * d + c] += self.data[r * d + c] *
                                         (self.grad[r * d + c] - dot);
            }
        });
}

Tensor
logSoftmaxLastDim(const Tensor& x)
{
    checkDefined(x, "logSoftmaxLastDim");
    const std::size_t d = x.shape().back();
    const std::size_t rows = x.numel() / d;
    std::vector<Scalar> out(x.numel());
    const auto& dx = x.data();
    for (std::size_t r = 0; r < rows; ++r) {
        Scalar mx = dx[r * d];
        for (std::size_t c = 1; c < d; ++c)
            mx = std::max(mx, dx[r * d + c]);
        Scalar sum = 0.0;
        for (std::size_t c = 0; c < d; ++c)
            sum += std::exp(dx[r * d + c] - mx);
        const Scalar lse = mx + std::log(sum);
        for (std::size_t c = 0; c < d; ++c)
            out[r * d + c] = dx[r * d + c] - lse;
    }
    return makeOpResult(x.shape(), std::move(out), {x},
        [rows, d](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            // dx_j = g_j - softmax_j * sum(g) per row.
            for (std::size_t r = 0; r < rows; ++r) {
                Scalar gsum = 0.0;
                for (std::size_t c = 0; c < d; ++c)
                    gsum += self.grad[r * d + c];
                for (std::size_t c = 0; c < d; ++c)
                    p.grad[r * d + c] +=
                        self.grad[r * d + c] -
                        std::exp(self.data[r * d + c]) * gsum;
            }
        });
}

Tensor
normalizeLastDim(const Tensor& x)
{
    checkDefined(x, "normalizeLastDim");
    const std::size_t d = x.shape().back();
    const std::size_t rows = x.numel() / d;
    auto sums = std::make_shared<std::vector<Scalar>>(rows);
    std::vector<Scalar> out(x.numel());
    const auto& dx = x.data();
    for (std::size_t r = 0; r < rows; ++r) {
        Scalar s = 0.0;
        for (std::size_t c = 0; c < d; ++c)
            s += dx[r * d + c];
        if (s == 0.0)
            fatal("normalizeLastDim: row sums to zero");
        (*sums)[r] = s;
        for (std::size_t c = 0; c < d; ++c)
            out[r * d + c] = dx[r * d + c] / s;
    }
    return makeOpResult(x.shape(), std::move(out), {x},
        [rows, d, sums](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            for (std::size_t r = 0; r < rows; ++r) {
                const Scalar s = (*sums)[r];
                Scalar dot = 0.0;
                for (std::size_t c = 0; c < d; ++c)
                    dot += self.grad[r * d + c] * p.data[r * d + c];
                for (std::size_t c = 0; c < d; ++c)
                    p.grad[r * d + c] +=
                        self.grad[r * d + c] / s - dot / (s * s);
            }
        });
}

Tensor
crossEntropy(const Tensor& logits, const std::vector<int>& targets,
             int ignore_index)
{
    checkDefined(logits, "crossEntropy");
    const Shape& s = logits.shape();
    if (s.size() != 2)
        fatal(strCat("crossEntropy: expected [N, V] logits, got ",
                     shapeToString(s)));
    const std::size_t n = s[0], v = s[1];
    if (targets.size() != n)
        fatal("crossEntropy: target count mismatch");

    // Forward: stable log-softmax + NLL; cache probabilities for backward.
    auto probs = std::make_shared<std::vector<Scalar>>(n * v);
    auto tgt = std::make_shared<std::vector<int>>(targets);
    const auto& dl = logits.data();
    Scalar loss = 0.0;
    std::size_t counted = 0;
    for (std::size_t r = 0; r < n; ++r) {
        Scalar mx = dl[r * v];
        for (std::size_t c = 1; c < v; ++c)
            mx = std::max(mx, dl[r * v + c]);
        Scalar sum = 0.0;
        for (std::size_t c = 0; c < v; ++c) {
            Scalar e = std::exp(dl[r * v + c] - mx);
            (*probs)[r * v + c] = e;
            sum += e;
        }
        for (std::size_t c = 0; c < v; ++c)
            (*probs)[r * v + c] /= sum;
        int t = targets[r];
        if (t == ignore_index)
            continue;
        if (t < 0 || static_cast<std::size_t>(t) >= v)
            fatal(strCat("crossEntropy: target ", t, " out of range"));
        loss -= std::log(std::max((*probs)[r * v + t], 1e-300));
        ++counted;
    }
    if (counted == 0)
        fatal("crossEntropy: every target is ignored");
    loss /= static_cast<Scalar>(counted);

    const int ign = ignore_index;
    return makeOpResult({}, {loss}, {logits},
        [probs, tgt, n, v, counted, ign](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            const Scalar g = self.grad[0] / static_cast<Scalar>(counted);
            for (std::size_t r = 0; r < n; ++r) {
                int t = (*tgt)[r];
                if (t == ign)
                    continue;
                for (std::size_t c = 0; c < v; ++c) {
                    Scalar delta = (static_cast<int>(c) == t) ? 1.0 : 0.0;
                    p.grad[r * v + c] +=
                        g * ((*probs)[r * v + c] - delta);
                }
            }
        });
}

Tensor
embedding(const Tensor& table, const std::vector<int>& ids,
          const Shape& out_prefix)
{
    checkDefined(table, "embedding");
    const Shape& ts = table.shape();
    if (ts.size() != 2)
        fatal("embedding: table must be [V, D]");
    const std::size_t vocab = ts[0], d = ts[1];
    if (ids.size() != shapeNumel(out_prefix))
        fatal("embedding: id count does not match output prefix shape");

    std::vector<Scalar> out(ids.size() * d);
    const auto& dt = table.data();
    for (std::size_t i = 0; i < ids.size(); ++i) {
        int id = ids[i];
        if (id < 0 || static_cast<std::size_t>(id) >= vocab)
            fatal(strCat("embedding: id ", id, " out of range"));
        std::copy(dt.begin() + id * d, dt.begin() + (id + 1) * d,
                  out.begin() + i * d);
    }

    Shape out_shape = out_prefix;
    out_shape.push_back(d);
    auto ids_copy = std::make_shared<std::vector<int>>(ids);
    return makeOpResult(out_shape, std::move(out), {table},
        [ids_copy, d](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            for (std::size_t i = 0; i < ids_copy->size(); ++i) {
                std::size_t row = static_cast<std::size_t>((*ids_copy)[i]);
                for (std::size_t c = 0; c < d; ++c)
                    p.grad[row * d + c] += self.grad[i * d + c];
            }
        });
}

Tensor
causalMask(const Tensor& scores)
{
    checkDefined(scores, "causalMask");
    const Shape& s = scores.shape();
    if (s.size() != 3 || s[1] != s[2])
        fatal(strCat("causalMask: expected [N, T, T], got ",
                     shapeToString(s)));
    const std::size_t batch = s[0], t = s[1];
    // Large-but-finite so exp() underflows to exactly zero post-softmax
    // without producing NaNs through the backward pass.
    constexpr Scalar kNegInf = -1e30;

    std::vector<Scalar> out = scores.data();
    for (std::size_t b = 0; b < batch; ++b)
        for (std::size_t r = 0; r < t; ++r)
            for (std::size_t c = r + 1; c < t; ++c)
                out[(b * t + r) * t + c] = kNegInf;

    return makeOpResult(s, std::move(out), {scores},
        [batch, t](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            // The mask writes constants: gradient flows only through the
            // untouched (lower-triangular) positions.
            for (std::size_t b = 0; b < batch; ++b)
                for (std::size_t r = 0; r < t; ++r)
                    for (std::size_t c = 0; c <= r; ++c)
                        p.grad[(b * t + r) * t + c] +=
                            self.grad[(b * t + r) * t + c];
        });
}

Tensor
gatherRows(const Tensor& x, const std::vector<std::size_t>& indices)
{
    checkDefined(x, "gatherRows");
    const Shape& s = x.shape();
    if (s.size() != 2)
        fatal("gatherRows: expected [N, D]");
    const std::size_t n = s[0], d = s[1];
    std::vector<Scalar> out(indices.size() * d);
    const auto& dx = x.data();
    for (std::size_t i = 0; i < indices.size(); ++i) {
        if (indices[i] >= n)
            fatal("gatherRows: index out of range");
        std::copy(dx.begin() + indices[i] * d,
                  dx.begin() + (indices[i] + 1) * d, out.begin() + i * d);
    }
    auto idx = std::make_shared<std::vector<std::size_t>>(indices);
    return makeOpResult({indices.size(), d}, std::move(out), {x},
        [idx, d](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            for (std::size_t i = 0; i < idx->size(); ++i)
                for (std::size_t c = 0; c < d; ++c)
                    p.grad[(*idx)[i] * d + c] += self.grad[i * d + c];
        });
}

Tensor
scatterAddRows(const Tensor& x, const std::vector<std::size_t>& indices,
               std::size_t num_rows)
{
    checkDefined(x, "scatterAddRows");
    const Shape& s = x.shape();
    if (s.size() != 2)
        fatal("scatterAddRows: expected [M, D]");
    const std::size_t m = s[0], d = s[1];
    if (indices.size() != m)
        fatal("scatterAddRows: index count must equal row count");

    std::vector<Scalar> out(num_rows * d, 0.0);
    const auto& dx = x.data();
    for (std::size_t i = 0; i < m; ++i) {
        if (indices[i] >= num_rows)
            fatal("scatterAddRows: index out of range");
        for (std::size_t c = 0; c < d; ++c)
            out[indices[i] * d + c] += dx[i * d + c];
    }
    auto idx = std::make_shared<std::vector<std::size_t>>(indices);
    return makeOpResult({num_rows, d}, std::move(out), {x},
        [idx, d](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            for (std::size_t i = 0; i < idx->size(); ++i)
                for (std::size_t c = 0; c < d; ++c)
                    p.grad[i * d + c] += self.grad[(*idx)[i] * d + c];
        });
}

Tensor
gatherLastDim(const Tensor& x, const std::vector<int>& indices,
              std::size_t k)
{
    checkDefined(x, "gatherLastDim");
    const Shape& s = x.shape();
    if (s.size() != 2)
        fatal("gatherLastDim: expected [N, E]");
    const std::size_t n = s[0], e = s[1];
    if (indices.size() != n * k)
        fatal("gatherLastDim: need N*k indices");

    std::vector<Scalar> out(n * k);
    const auto& dx = x.data();
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t j = 0; j < k; ++j) {
            int col = indices[r * k + j];
            if (col < 0 || static_cast<std::size_t>(col) >= e)
                fatal("gatherLastDim: index out of range");
            out[r * k + j] = dx[r * e + col];
        }
    }
    auto idx = std::make_shared<std::vector<int>>(indices);
    return makeOpResult({n, k}, std::move(out), {x},
        [idx, n, k, e](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            for (std::size_t r = 0; r < n; ++r)
                for (std::size_t j = 0; j < k; ++j)
                    p.grad[r * e +
                           static_cast<std::size_t>((*idx)[r * k + j])] +=
                        self.grad[r * k + j];
        });
}

TopKResult
topkLastDim(const Tensor& x, std::size_t k)
{
    checkDefined(x, "topkLastDim");
    const Shape& s = x.shape();
    if (s.size() != 2)
        fatal("topkLastDim: expected [N, E]");
    const std::size_t n = s[0], e = s[1];
    if (k == 0 || k > e)
        fatal(strCat("topkLastDim: k=", k, " out of range for E=", e));

    TopKResult result;
    result.indices.resize(n * k);
    result.values.resize(n * k);
    const auto& dx = x.data();
    std::vector<int> order(e);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < e; ++c)
            order[c] = static_cast<int>(c);
        std::partial_sort(order.begin(), order.begin() + k, order.end(),
                          [&](int a, int b) {
                              Scalar va = dx[r * e + a];
                              Scalar vb = dx[r * e + b];
                              if (va != vb)
                                  return va > vb;
                              return a < b;  // Deterministic tie-break.
                          });
        for (std::size_t j = 0; j < k; ++j) {
            result.indices[r * k + j] = order[j];
            result.values[r * k + j] = dx[r * e + order[j]];
        }
    }
    return result;
}

std::vector<int>
argmaxLastDim(const Tensor& logits)
{
    checkDefined(logits, "argmaxLastDim");
    const Shape& s = logits.shape();
    if (s.size() != 2)
        fatal("argmaxLastDim: expected [N, V]");
    const std::size_t n = s[0], v = s[1];
    std::vector<int> result(n);
    const auto& dl = logits.data();
    for (std::size_t r = 0; r < n; ++r) {
        std::size_t best = 0;
        for (std::size_t c = 1; c < v; ++c)
            if (dl[r * v + c] > dl[r * v + best])
                best = c;
        result[r] = static_cast<int>(best);
    }
    return result;
}

}  // namespace ftsim
