#ifndef FTSIM_TENSOR_GRAD_CHECK_HPP
#define FTSIM_TENSOR_GRAD_CHECK_HPP

/**
 * @file
 * Finite-difference gradient verification for the autograd engine.
 *
 * Every differentiable op in ops.hpp is validated in the test suite by
 * comparing its analytic gradient against central differences. Tensors
 * are double precision, so the checks can be tight (default tolerance
 * 1e-6 relative).
 */

#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace ftsim {

/** A scalar-valued function of several tensor inputs. */
using ScalarFn = std::function<Tensor(const std::vector<Tensor>&)>;

/** Outcome of a gradient check. */
struct GradCheckResult {
    /** True if every element of every input gradient matched. */
    bool ok = true;
    /** Largest absolute difference seen. */
    double maxAbsError = 0.0;
    /** Largest relative difference seen. */
    double maxRelError = 0.0;
    /** Human-readable description of the first failure (if any). */
    std::string firstFailure;
};

/**
 * Verifies d(fn)/d(inputs) against central finite differences.
 *
 * @param fn scalar-valued function; re-invoked ~2*numel times.
 * @param inputs leaf tensors; each is marked requires-grad internally.
 * @param eps finite-difference step.
 * @param rel_tol relative tolerance (with abs_tol absolute floor).
 */
GradCheckResult gradCheck(const ScalarFn& fn,
                          const std::vector<Tensor>& inputs,
                          double eps = 1e-5, double rel_tol = 1e-5,
                          double abs_tol = 1e-7);

}  // namespace ftsim

#endif  // FTSIM_TENSOR_GRAD_CHECK_HPP
