/**
 * @file
 * Shape-manipulation ops: reshape, transpose, concat/slice, head split.
 */

#include "tensor/op_helpers.hpp"
#include "tensor/ops.hpp"

namespace ftsim {

using detail::checkDefined;
using detail::noUpstream;
using detail::wantsGrad;

Tensor
reshape(const Tensor& x, const Shape& new_shape)
{
    checkDefined(x, "reshape");
    if (shapeNumel(new_shape) != x.numel()) {
        fatal(strCat("reshape: cannot view ", shapeToString(x.shape()),
                     " as ", shapeToString(new_shape)));
    }
    std::vector<Scalar> out = x.data();  // Row-major order is unchanged.
    return makeOpResult(new_shape, std::move(out), {x},
        [](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            for (std::size_t i = 0; i < self.grad.size(); ++i)
                p.grad[i] += self.grad[i];
        });
}

namespace {

/** Decomposes a rank-2/3 tensor into (batch, rows, cols). */
void
asBatchedMatrix(const Tensor& x, const char* op, std::size_t& batch,
                std::size_t& rows, std::size_t& cols)
{
    const Shape& s = x.shape();
    if (s.size() == 2) {
        batch = 1;
        rows = s[0];
        cols = s[1];
    } else if (s.size() == 3) {
        batch = s[0];
        rows = s[1];
        cols = s[2];
    } else {
        fatal(strCat(op, ": expected rank 2 or 3, got ",
                     shapeToString(s)));
    }
}

}  // namespace

Tensor
transposeLast(const Tensor& x)
{
    std::size_t batch, rows, cols;
    asBatchedMatrix(x, "transposeLast", batch, rows, cols);

    Shape out_shape = x.shape();
    std::swap(out_shape[out_shape.size() - 1],
              out_shape[out_shape.size() - 2]);

    std::vector<Scalar> out(x.numel());
    const auto& dx = x.data();
    for (std::size_t b = 0; b < batch; ++b) {
        const std::size_t base = b * rows * cols;
        for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t c = 0; c < cols; ++c)
                out[base + c * rows + r] = dx[base + r * cols + c];
    }
    return makeOpResult(out_shape, std::move(out), {x},
        [batch, rows, cols](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            for (std::size_t b = 0; b < batch; ++b) {
                const std::size_t base = b * rows * cols;
                for (std::size_t r = 0; r < rows; ++r)
                    for (std::size_t c = 0; c < cols; ++c)
                        p.grad[base + r * cols + c] +=
                            self.grad[base + c * rows + r];
            }
        });
}

Tensor
concatLastDim(const std::vector<Tensor>& parts)
{
    if (parts.empty())
        fatal("concatLastDim: no inputs");
    for (const auto& p : parts)
        checkDefined(p, "concatLastDim");

    const Shape& first = parts[0].shape();
    if (first.empty())
        fatal("concatLastDim: rank-0 inputs are not concatenable");
    std::size_t prefix = 1;
    for (std::size_t i = 0; i + 1 < first.size(); ++i)
        prefix *= first[i];

    std::size_t total_last = 0;
    std::vector<std::size_t> lasts;
    for (const auto& p : parts) {
        const Shape& s = p.shape();
        if (s.size() != first.size())
            fatal("concatLastDim: rank mismatch");
        for (std::size_t i = 0; i + 1 < s.size(); ++i)
            if (s[i] != first[i])
                fatal("concatLastDim: leading-dim mismatch");
        lasts.push_back(s.back());
        total_last += s.back();
    }

    Shape out_shape = first;
    out_shape.back() = total_last;
    std::vector<Scalar> out(prefix * total_last);
    std::size_t offset = 0;
    for (std::size_t pi = 0; pi < parts.size(); ++pi) {
        const auto& src = parts[pi].data();
        const std::size_t last = lasts[pi];
        for (std::size_t row = 0; row < prefix; ++row)
            for (std::size_t c = 0; c < last; ++c)
                out[row * total_last + offset + c] = src[row * last + c];
        offset += last;
    }

    return makeOpResult(out_shape, std::move(out), parts,
        [prefix, total_last, lasts](TensorImpl& self) {
            if (noUpstream(self))
                return;
            std::size_t offset = 0;
            for (std::size_t pi = 0; pi < self.parents.size(); ++pi) {
                TensorImpl& p = *self.parents[pi];
                const std::size_t last = lasts[pi];
                if (wantsGrad(p)) {
                    for (std::size_t row = 0; row < prefix; ++row)
                        for (std::size_t c = 0; c < last; ++c)
                            p.grad[row * last + c] +=
                                self.grad[row * total_last + offset + c];
                }
                offset += last;
            }
        });
}

Tensor
sliceLastDim(const Tensor& x, std::size_t start, std::size_t len)
{
    checkDefined(x, "sliceLastDim");
    const Shape& s = x.shape();
    if (s.empty())
        fatal("sliceLastDim: rank-0 input");
    const std::size_t last = s.back();
    if (start + len > last) {
        fatal(strCat("sliceLastDim: [", start, ", ", start + len,
                     ") exceeds last dim ", last));
    }
    std::size_t prefix = x.numel() / last;
    Shape out_shape = s;
    out_shape.back() = len;

    std::vector<Scalar> out(prefix * len);
    const auto& dx = x.data();
    for (std::size_t row = 0; row < prefix; ++row)
        for (std::size_t c = 0; c < len; ++c)
            out[row * len + c] = dx[row * last + start + c];

    return makeOpResult(out_shape, std::move(out), {x},
        [prefix, len, last, start](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            for (std::size_t row = 0; row < prefix; ++row)
                for (std::size_t c = 0; c < len; ++c)
                    p.grad[row * last + start + c] +=
                        self.grad[row * len + c];
        });
}

Tensor
splitHeads(const Tensor& x, std::size_t num_heads)
{
    checkDefined(x, "splitHeads");
    const Shape& s = x.shape();
    if (s.size() != 3)
        fatal(strCat("splitHeads: expected [B, T, D], got ",
                     shapeToString(s)));
    const std::size_t b_sz = s[0], t_sz = s[1], d_model = s[2];
    if (d_model % num_heads != 0)
        fatal("splitHeads: model dim not divisible by head count");
    const std::size_t d_head = d_model / num_heads;

    // [B, T, H, Dh] -> [B, H, T, Dh] flattened as [B*H, T, Dh].
    std::vector<Scalar> out(x.numel());
    const auto& dx = x.data();
    for (std::size_t b = 0; b < b_sz; ++b)
        for (std::size_t t = 0; t < t_sz; ++t)
            for (std::size_t h = 0; h < num_heads; ++h)
                for (std::size_t d = 0; d < d_head; ++d) {
                    std::size_t src =
                        (b * t_sz + t) * d_model + h * d_head + d;
                    std::size_t dst =
                        ((b * num_heads + h) * t_sz + t) * d_head + d;
                    out[dst] = dx[src];
                }

    return makeOpResult({b_sz * num_heads, t_sz, d_head}, std::move(out),
        {x},
        [b_sz, t_sz, d_model, num_heads, d_head](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            for (std::size_t b = 0; b < b_sz; ++b)
                for (std::size_t t = 0; t < t_sz; ++t)
                    for (std::size_t h = 0; h < num_heads; ++h)
                        for (std::size_t d = 0; d < d_head; ++d) {
                            std::size_t src =
                                (b * t_sz + t) * d_model + h * d_head + d;
                            std::size_t dst =
                                ((b * num_heads + h) * t_sz + t) * d_head +
                                d;
                            p.grad[src] += self.grad[dst];
                        }
        });
}

Tensor
mergeHeads(const Tensor& x, std::size_t num_heads)
{
    checkDefined(x, "mergeHeads");
    const Shape& s = x.shape();
    if (s.size() != 3)
        fatal(strCat("mergeHeads: expected [B*H, T, Dh], got ",
                     shapeToString(s)));
    if (s[0] % num_heads != 0)
        fatal("mergeHeads: batch dim not divisible by head count");
    const std::size_t b_sz = s[0] / num_heads, t_sz = s[1], d_head = s[2];
    const std::size_t d_model = num_heads * d_head;

    std::vector<Scalar> out(x.numel());
    const auto& dx = x.data();
    for (std::size_t b = 0; b < b_sz; ++b)
        for (std::size_t h = 0; h < num_heads; ++h)
            for (std::size_t t = 0; t < t_sz; ++t)
                for (std::size_t d = 0; d < d_head; ++d) {
                    std::size_t src =
                        ((b * num_heads + h) * t_sz + t) * d_head + d;
                    std::size_t dst =
                        (b * t_sz + t) * d_model + h * d_head + d;
                    out[dst] = dx[src];
                }

    return makeOpResult({b_sz, t_sz, d_model}, std::move(out), {x},
        [b_sz, t_sz, d_head, num_heads, d_model](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            for (std::size_t b = 0; b < b_sz; ++b)
                for (std::size_t h = 0; h < num_heads; ++h)
                    for (std::size_t t = 0; t < t_sz; ++t)
                        for (std::size_t d = 0; d < d_head; ++d) {
                            std::size_t src =
                                ((b * num_heads + h) * t_sz + t) * d_head +
                                d;
                            std::size_t dst =
                                (b * t_sz + t) * d_model + h * d_head + d;
                            p.grad[src] += self.grad[dst];
                        }
        });
}

}  // namespace ftsim
