#ifndef FTSIM_TENSOR_OPS_HPP
#define FTSIM_TENSOR_OPS_HPP

/**
 * @file
 * Differentiable operations on Tensor.
 *
 * Every function here performs an eager forward computation and, when any
 * input requires gradients, records a backward closure on the result. The
 * set is exactly what the miniature Mixtral-like and BlackMamba-like
 * models need: elementwise arithmetic, (batched) matmul and a fused linear
 * op, activations, softmax/cross-entropy, RMSNorm, embedding, attention
 * head plumbing, MoE routing plumbing (top-k, gather/scatter), and the
 * Mamba primitives (causal depthwise conv, selective scan).
 */

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace ftsim {

class Rng;

// ---------------------------------------------------------------------
// Elementwise arithmetic (identical shapes unless documented otherwise).
// ---------------------------------------------------------------------

/** Elementwise a + b. */
Tensor add(const Tensor& a, const Tensor& b);

/** Elementwise a - b. */
Tensor sub(const Tensor& a, const Tensor& b);

/** Elementwise a * b (Hadamard product). */
Tensor mul(const Tensor& a, const Tensor& b);

/** Elementwise a / b. */
Tensor div(const Tensor& a, const Tensor& b);

/** Elementwise -x. */
Tensor neg(const Tensor& x);

/** Elementwise s * x for a compile-time constant scalar s. */
Tensor scale(const Tensor& x, Scalar s);

/** Elementwise x + s for a constant scalar s. */
Tensor addScalar(const Tensor& x, Scalar s);

// ---------------------------------------------------------------------
// Activations.
// ---------------------------------------------------------------------

/** Rectified linear unit max(x, 0). */
Tensor relu(const Tensor& x);

/** Logistic sigmoid 1 / (1 + exp(-x)). */
Tensor sigmoid(const Tensor& x);

/** Hyperbolic tangent. */
Tensor tanhAct(const Tensor& x);

/** SiLU / swish: x * sigmoid(x). Used by Mixtral's SwiGLU experts. */
Tensor silu(const Tensor& x);

/** GELU (tanh approximation). Used by BlackMamba's experts. */
Tensor gelu(const Tensor& x);

/** Softplus log(1 + exp(x)), numerically stabilized. */
Tensor softplus(const Tensor& x);

// ---------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------

/** Sum of all elements (rank-0 result). */
Tensor sumAll(const Tensor& x);

/** Mean of all elements (rank-0 result). */
Tensor meanAll(const Tensor& x);

// ---------------------------------------------------------------------
// Shape manipulation.
// ---------------------------------------------------------------------

/** Reinterprets the element order under a new shape (same numel). */
Tensor reshape(const Tensor& x, const Shape& new_shape);

/** Swaps the last two dimensions (rank 2 or 3), materializing. */
Tensor transposeLast(const Tensor& x);

/** Concatenates along the last dimension (all other dims equal). */
Tensor concatLastDim(const std::vector<Tensor>& parts);

/** Slices [start, start+len) of the last dimension. */
Tensor sliceLastDim(const Tensor& x, std::size_t start, std::size_t len);

/**
 * Splits [B, T, H*Dh] into heads laid out as [B*H, T, Dh]
 * (attention plumbing; exact inverse of mergeHeads).
 */
Tensor splitHeads(const Tensor& x, std::size_t num_heads);

/** Merges [B*H, T, Dh] back into [B, T, H*Dh]. */
Tensor mergeHeads(const Tensor& x, std::size_t num_heads);

// ---------------------------------------------------------------------
// Matrix products.
// ---------------------------------------------------------------------

/**
 * Matrix product with a shared right operand: a is [m, k] or [B, m, k],
 * b is [k, n]; the result matches a's batching.
 */
Tensor matmul(const Tensor& a, const Tensor& b);

/** Batched matmul: [N, m, k] x [N, k, n] -> [N, m, n]. */
Tensor bmm(const Tensor& a, const Tensor& b);

/**
 * Fused affine map y = x W^T (+ bias): x is [..., in], w is [out, in]
 * (PyTorch layout), bias is [out] or undefined. The hot op of the
 * training substrate.
 */
Tensor linearOp(const Tensor& x, const Tensor& w, const Tensor& bias);

/** Adds a [D] bias vector along the last dimension of x. */
Tensor addBias(const Tensor& x, const Tensor& bias);

/** Multiplies along the last dimension by a [D] vector. */
Tensor mulLastDim(const Tensor& x, const Tensor& v);

/** Scales row i of x [N, D] by w[i] (MoE gate application). */
Tensor scaleRows(const Tensor& x, const Tensor& w);

// ---------------------------------------------------------------------
// Normalization, softmax, and loss.
// ---------------------------------------------------------------------

/** RMSNorm over the last dimension with a learned [D] gain. */
Tensor rmsNorm(const Tensor& x, const Tensor& weight, Scalar eps = 1e-6);

/** Softmax over the last dimension (numerically stabilized). */
Tensor softmaxLastDim(const Tensor& x);

/** Log-softmax over the last dimension. */
Tensor logSoftmaxLastDim(const Tensor& x);

/** Normalizes the last dimension to sum to 1 (x must be positive). */
Tensor normalizeLastDim(const Tensor& x);

/**
 * Mean token-level cross entropy: logits [N, V], integer targets of
 * length N; positions with target == ignore_index contribute nothing.
 * Fused softmax+NLL with the standard (p - onehot)/n backward.
 */
Tensor crossEntropy(const Tensor& logits, const std::vector<int>& targets,
                    int ignore_index = -1);

// ---------------------------------------------------------------------
// Embedding, masking, routing plumbing.
// ---------------------------------------------------------------------

/**
 * Embedding lookup: table [V, D], ids of length prod(out_prefix);
 * result shape is out_prefix + [D]. Backward scatter-adds into the rows
 * of the table.
 */
Tensor embedding(const Tensor& table, const std::vector<int>& ids,
                 const Shape& out_prefix);

/**
 * Adds a causal mask to attention scores [N, T, T]: positions with
 * column > row receive a large negative constant.
 */
Tensor causalMask(const Tensor& scores);

/** Gathers rows of x [N, D] at the given indices -> [M, D]. */
Tensor gatherRows(const Tensor& x, const std::vector<std::size_t>& indices);

/**
 * Scatter-adds rows of x [M, D] into a fresh [num_rows, D] tensor at the
 * given indices (duplicates accumulate). Inverse pairing of gatherRows.
 */
Tensor scatterAddRows(const Tensor& x,
                      const std::vector<std::size_t>& indices,
                      std::size_t num_rows);

/** Gathers x[n, idx[n*k+j]] -> result [N, k] (router weight selection). */
Tensor gatherLastDim(const Tensor& x, const std::vector<int>& indices,
                     std::size_t k);

/** Result of a non-differentiable top-k selection. */
struct TopKResult {
    /** Flattened [N, k] expert/category indices, descending by value. */
    std::vector<int> indices;
    /** Matching values (copies of the inputs; no gradient). */
    std::vector<Scalar> values;
};

/** Top-k along the last dimension of x [N, E]; data-only, no autograd. */
TopKResult topkLastDim(const Tensor& x, std::size_t k);

/** Inverted-dropout: zeroes with prob p, scales survivors by 1/(1-p). */
Tensor dropout(const Tensor& x, Scalar p, Rng& rng);

// ---------------------------------------------------------------------
// Mamba primitives.
// ---------------------------------------------------------------------

/**
 * Depthwise causal 1-D convolution: x [B, T, D], w [K, D];
 * y[b,t,d] = sum_j w[j,d] * x[b, t-K+1+j, d] with zero left-padding.
 */
Tensor conv1dDepthwiseCausal(const Tensor& x, const Tensor& w);

/**
 * Selective scan h_t = a_t * h_{t-1} + x_t applied elementwise over the
 * channel dim, recurrently over the time dim: a, x are [B, T, D].
 * This is the linear-time state-space recurrence at the heart of the
 * Mamba layer; the backward pass is a reverse-time scan.
 */
Tensor selectiveScan(const Tensor& a, const Tensor& x);

// ---------------------------------------------------------------------
// Non-differentiable helpers.
// ---------------------------------------------------------------------

/** Argmax over the last dimension of logits [N, V] (plain data). */
std::vector<int> argmaxLastDim(const Tensor& logits);

}  // namespace ftsim

#endif  // FTSIM_TENSOR_OPS_HPP
