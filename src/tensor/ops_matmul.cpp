/**
 * @file
 * Matrix-product ops: matmul, bmm, the fused linear op, and the
 * broadcast helpers that accompany them.
 */

#include "tensor/op_helpers.hpp"
#include "tensor/ops.hpp"

namespace ftsim {

using detail::checkDefined;
using detail::noUpstream;
using detail::wantsGrad;

namespace {

/**
 * c[m, n] += a[m, k] * b[k, n] on raw buffers. The i-k-j loop order keeps
 * the innermost accesses contiguous, which is what matters at the sizes
 * the miniature models use.
 */
void
gemmAccumulate(const Scalar* a, const Scalar* b, Scalar* c, std::size_t m,
               std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t p = 0; p < k; ++p) {
            const Scalar av = a[i * k + p];
            if (av == 0.0)
                continue;
            const Scalar* brow = b + p * n;
            Scalar* crow = c + i * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

/** c[m, k] += a[m, n] * b^T where b is [k, n] (i.e., a * b transposed). */
void
gemmAccumulateBt(const Scalar* a, const Scalar* b, Scalar* c,
                 std::size_t m, std::size_t n, std::size_t k)
{
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < k; ++j) {
            const Scalar* arow = a + i * n;
            const Scalar* brow = b + j * n;
            Scalar acc = 0.0;
            for (std::size_t p = 0; p < n; ++p)
                acc += arow[p] * brow[p];
            c[i * k + j] += acc;
        }
    }
}

/** c[k, n] += a^T * b where a is [m, k] and b is [m, n]. */
void
gemmAccumulateAt(const Scalar* a, const Scalar* b, Scalar* c,
                 std::size_t m, std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i) {
        const Scalar* arow = a + i * k;
        const Scalar* brow = b + i * n;
        for (std::size_t p = 0; p < k; ++p) {
            const Scalar av = arow[p];
            if (av == 0.0)
                continue;
            Scalar* crow = c + p * n;
            for (std::size_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
}

}  // namespace

Tensor
matmul(const Tensor& a, const Tensor& b)
{
    checkDefined(a, "matmul");
    checkDefined(b, "matmul");
    const Shape& sa = a.shape();
    const Shape& sb = b.shape();
    if (sb.size() != 2)
        fatal(strCat("matmul: right operand must be rank 2, got ",
                     shapeToString(sb)));
    if (sa.size() != 2 && sa.size() != 3)
        fatal(strCat("matmul: left operand must be rank 2 or 3, got ",
                     shapeToString(sa)));

    const std::size_t k = sb[0], n = sb[1];
    const std::size_t batch = (sa.size() == 3) ? sa[0] : 1;
    const std::size_t m = (sa.size() == 3) ? sa[1] : sa[0];
    const std::size_t ak = sa.back();
    if (ak != k) {
        fatal(strCat("matmul: inner-dim mismatch ", shapeToString(sa),
                     " x ", shapeToString(sb)));
    }

    Shape out_shape = (sa.size() == 3) ? Shape{batch, m, n} : Shape{m, n};
    std::vector<Scalar> out(batch * m * n, 0.0);
    for (std::size_t bt = 0; bt < batch; ++bt) {
        gemmAccumulate(a.data().data() + bt * m * k, b.data().data(),
                       out.data() + bt * m * n, m, k, n);
    }

    return makeOpResult(out_shape, std::move(out), {a, b},
        [batch, m, k, n](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& pa = *self.parents[0];
            TensorImpl& pb = *self.parents[1];
            if (wantsGrad(pa)) {
                // dA = dC * B^T, per batch slice.
                for (std::size_t bt = 0; bt < batch; ++bt) {
                    gemmAccumulateBt(self.grad.data() + bt * m * n,
                                     pb.data.data(),
                                     pa.grad.data() + bt * m * k, m, n, k);
                }
            }
            if (wantsGrad(pb)) {
                // dB = sum_batches A^T * dC.
                for (std::size_t bt = 0; bt < batch; ++bt) {
                    gemmAccumulateAt(pa.data.data() + bt * m * k,
                                     self.grad.data() + bt * m * n,
                                     pb.grad.data(), m, k, n);
                }
            }
        });
}

Tensor
bmm(const Tensor& a, const Tensor& b)
{
    checkDefined(a, "bmm");
    checkDefined(b, "bmm");
    const Shape& sa = a.shape();
    const Shape& sb = b.shape();
    if (sa.size() != 3 || sb.size() != 3)
        fatal(strCat("bmm: expected rank-3 operands, got ",
                     shapeToString(sa), " x ", shapeToString(sb)));
    if (sa[0] != sb[0] || sa[2] != sb[1])
        fatal(strCat("bmm: incompatible shapes ", shapeToString(sa), " x ",
                     shapeToString(sb)));

    const std::size_t batch = sa[0], m = sa[1], k = sa[2], n = sb[2];
    std::vector<Scalar> out(batch * m * n, 0.0);
    for (std::size_t bt = 0; bt < batch; ++bt) {
        gemmAccumulate(a.data().data() + bt * m * k,
                       b.data().data() + bt * k * n,
                       out.data() + bt * m * n, m, k, n);
    }

    return makeOpResult({batch, m, n}, std::move(out), {a, b},
        [batch, m, k, n](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& pa = *self.parents[0];
            TensorImpl& pb = *self.parents[1];
            if (wantsGrad(pa)) {
                for (std::size_t bt = 0; bt < batch; ++bt) {
                    gemmAccumulateBt(self.grad.data() + bt * m * n,
                                     pb.data.data() + bt * k * n,
                                     pa.grad.data() + bt * m * k, m, n, k);
                }
            }
            if (wantsGrad(pb)) {
                for (std::size_t bt = 0; bt < batch; ++bt) {
                    gemmAccumulateAt(pa.data.data() + bt * m * k,
                                     self.grad.data() + bt * m * n,
                                     pb.grad.data() + bt * k * n, m, k, n);
                }
            }
        });
}

Tensor
linearOp(const Tensor& x, const Tensor& w, const Tensor& bias)
{
    checkDefined(x, "linearOp");
    checkDefined(w, "linearOp");
    const Shape& sx = x.shape();
    const Shape& sw = w.shape();
    if (sw.size() != 2)
        fatal(strCat("linearOp: weight must be [out, in], got ",
                     shapeToString(sw)));
    if (sx.empty() || sx.back() != sw[1]) {
        fatal(strCat("linearOp: input ", shapeToString(sx),
                     " does not match weight ", shapeToString(sw)));
    }
    const std::size_t out_dim = sw[0], in_dim = sw[1];
    const std::size_t rows = x.numel() / in_dim;
    const bool has_bias = bias.defined();
    if (has_bias &&
        (bias.shape().size() != 1 || bias.shape()[0] != out_dim)) {
        fatal(strCat("linearOp: bias shape ", shapeToString(bias.shape()),
                     " does not match out dim ", out_dim));
    }

    Shape out_shape = sx;
    out_shape.back() = out_dim;
    std::vector<Scalar> out(rows * out_dim, 0.0);
    // y = x * W^T: treat W [out, in] as the transposed right operand.
    gemmAccumulateBt(x.data().data(), w.data().data(), out.data(), rows,
                     in_dim, out_dim);
    if (has_bias) {
        const auto& bd = bias.data();
        for (std::size_t r = 0; r < rows; ++r)
            for (std::size_t o = 0; o < out_dim; ++o)
                out[r * out_dim + o] += bd[o];
    }

    std::vector<Tensor> parents = {x, w};
    if (has_bias)
        parents.push_back(bias);

    return makeOpResult(out_shape, std::move(out), parents,
        [rows, in_dim, out_dim, has_bias](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& px = *self.parents[0];
            TensorImpl& pw = *self.parents[1];
            if (wantsGrad(px)) {
                // dX = dY * W  ([rows, out] x [out, in]).
                gemmAccumulate(self.grad.data(), pw.data.data(),
                               px.grad.data(), rows, out_dim, in_dim);
            }
            if (wantsGrad(pw)) {
                // dW = dY^T * X ([out, rows] x [rows, in]).
                gemmAccumulateAt(self.grad.data(), px.data.data(),
                                 pw.grad.data(), rows, out_dim, in_dim);
            }
            if (has_bias) {
                TensorImpl& pb = *self.parents[2];
                if (wantsGrad(pb)) {
                    for (std::size_t r = 0; r < rows; ++r)
                        for (std::size_t o = 0; o < out_dim; ++o)
                            pb.grad[o] += self.grad[r * out_dim + o];
                }
            }
        });
}

Tensor
addBias(const Tensor& x, const Tensor& bias)
{
    checkDefined(x, "addBias");
    checkDefined(bias, "addBias");
    const std::size_t d = x.shape().back();
    if (bias.shape().size() != 1 || bias.shape()[0] != d)
        fatal("addBias: bias must be a vector matching the last dim");
    const std::size_t rows = x.numel() / d;
    std::vector<Scalar> out(x.numel());
    const auto& dx = x.data();
    const auto& db = bias.data();
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < d; ++c)
            out[r * d + c] = dx[r * d + c] + db[c];
    return makeOpResult(x.shape(), std::move(out), {x, bias},
        [rows, d](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& px = *self.parents[0];
            TensorImpl& pb = *self.parents[1];
            if (wantsGrad(px))
                for (std::size_t i = 0; i < self.grad.size(); ++i)
                    px.grad[i] += self.grad[i];
            if (wantsGrad(pb))
                for (std::size_t r = 0; r < rows; ++r)
                    for (std::size_t c = 0; c < d; ++c)
                        pb.grad[c] += self.grad[r * d + c];
        });
}

Tensor
mulLastDim(const Tensor& x, const Tensor& v)
{
    checkDefined(x, "mulLastDim");
    checkDefined(v, "mulLastDim");
    const std::size_t d = x.shape().back();
    if (v.shape().size() != 1 || v.shape()[0] != d)
        fatal("mulLastDim: vector must match the last dim");
    const std::size_t rows = x.numel() / d;
    std::vector<Scalar> out(x.numel());
    const auto& dx = x.data();
    const auto& dv = v.data();
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < d; ++c)
            out[r * d + c] = dx[r * d + c] * dv[c];
    return makeOpResult(x.shape(), std::move(out), {x, v},
        [rows, d](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& px = *self.parents[0];
            TensorImpl& pv = *self.parents[1];
            if (wantsGrad(px))
                for (std::size_t r = 0; r < rows; ++r)
                    for (std::size_t c = 0; c < d; ++c)
                        px.grad[r * d + c] +=
                            self.grad[r * d + c] * pv.data[c];
            if (wantsGrad(pv))
                for (std::size_t r = 0; r < rows; ++r)
                    for (std::size_t c = 0; c < d; ++c)
                        pv.grad[c] +=
                            self.grad[r * d + c] * px.data[r * d + c];
        });
}

Tensor
scaleRows(const Tensor& x, const Tensor& w)
{
    checkDefined(x, "scaleRows");
    checkDefined(w, "scaleRows");
    const Shape& sx = x.shape();
    if (sx.size() != 2)
        fatal(strCat("scaleRows: expected [N, D], got ",
                     shapeToString(sx)));
    const std::size_t n = sx[0], d = sx[1];
    if (w.numel() != n)
        fatal("scaleRows: weight length must equal row count");

    std::vector<Scalar> out(x.numel());
    const auto& dx = x.data();
    const auto& dw = w.data();
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            out[r * d + c] = dx[r * d + c] * dw[r];
    return makeOpResult(sx, std::move(out), {x, w},
        [n, d](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& px = *self.parents[0];
            TensorImpl& pw = *self.parents[1];
            if (wantsGrad(px))
                for (std::size_t r = 0; r < n; ++r)
                    for (std::size_t c = 0; c < d; ++c)
                        px.grad[r * d + c] +=
                            self.grad[r * d + c] * pw.data[r];
            if (wantsGrad(pw))
                for (std::size_t r = 0; r < n; ++r)
                    for (std::size_t c = 0; c < d; ++c)
                        pw.grad[r] +=
                            self.grad[r * d + c] * px.data[r * d + c];
        });
}

}  // namespace ftsim
