#ifndef FTSIM_TENSOR_OP_HELPERS_HPP
#define FTSIM_TENSOR_OP_HELPERS_HPP

/**
 * @file
 * Internal helpers shared by the op implementation files. Not part of the
 * public API.
 */

#include "common/logging.hpp"
#include "tensor/tensor.hpp"

namespace ftsim {
namespace detail {

/** Fatal if @p t is an undefined handle. */
inline void
checkDefined(const Tensor& t, const char* op)
{
    if (!t.defined())
        fatal(strCat(op, ": undefined tensor argument"));
}

/** Fatal unless @p a and @p b have identical shapes. */
inline void
checkSameShape(const Tensor& a, const Tensor& b, const char* op)
{
    checkDefined(a, op);
    checkDefined(b, op);
    if (a.shape() != b.shape()) {
        fatal(strCat(op, ": shape mismatch ", shapeToString(a.shape()),
                     " vs ", shapeToString(b.shape())));
    }
}

/**
 * True if the backward pass should write into this parent; also
 * allocates its grad buffer.
 */
inline bool
wantsGrad(TensorImpl& parent)
{
    if (!parent.requiresGrad)
        return false;
    parent.ensureGrad();
    return true;
}

/** True if this node received no upstream gradient (nothing to do). */
inline bool
noUpstream(const TensorImpl& self)
{
    return self.grad.empty();
}

}  // namespace detail
}  // namespace ftsim

#endif  // FTSIM_TENSOR_OP_HELPERS_HPP
