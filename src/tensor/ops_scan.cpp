/**
 * @file
 * Mamba primitives: depthwise causal 1-D convolution and the selective
 * scan recurrence. Both have hand-written backward passes (the scan's
 * backward is itself a reverse-time scan, mirroring how real selective
 * state-space kernels implement backpropagation-through-time).
 */

#include "tensor/op_helpers.hpp"
#include "tensor/ops.hpp"

namespace ftsim {

using detail::checkDefined;
using detail::checkSameShape;
using detail::noUpstream;
using detail::wantsGrad;

Tensor
conv1dDepthwiseCausal(const Tensor& x, const Tensor& w)
{
    checkDefined(x, "conv1dDepthwiseCausal");
    checkDefined(w, "conv1dDepthwiseCausal");
    const Shape& sx = x.shape();
    const Shape& sw = w.shape();
    if (sx.size() != 3)
        fatal(strCat("conv1dDepthwiseCausal: expected [B, T, D] input, "
                     "got ", shapeToString(sx)));
    if (sw.size() != 2 || sw[1] != sx[2])
        fatal(strCat("conv1dDepthwiseCausal: expected [K, D] kernel, got ",
                     shapeToString(sw)));
    const std::size_t b_sz = sx[0], t_sz = sx[1], d = sx[2], k_sz = sw[0];

    std::vector<Scalar> out(x.numel(), 0.0);
    const auto& dx = x.data();
    const auto& dw = w.data();
    for (std::size_t b = 0; b < b_sz; ++b) {
        for (std::size_t t = 0; t < t_sz; ++t) {
            for (std::size_t j = 0; j < k_sz; ++j) {
                // Causal alignment: tap j reads offset t - (K-1) + j.
                std::ptrdiff_t src_t = static_cast<std::ptrdiff_t>(t) -
                                       static_cast<std::ptrdiff_t>(k_sz) +
                                       1 + static_cast<std::ptrdiff_t>(j);
                if (src_t < 0)
                    continue;  // Zero left-padding.
                const std::size_t src =
                    (b * t_sz + static_cast<std::size_t>(src_t)) * d;
                const std::size_t dst = (b * t_sz + t) * d;
                for (std::size_t c = 0; c < d; ++c)
                    out[dst + c] += dw[j * d + c] * dx[src + c];
            }
        }
    }

    return makeOpResult(sx, std::move(out), {x, w},
        [b_sz, t_sz, d, k_sz](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& px = *self.parents[0];
            TensorImpl& pw = *self.parents[1];
            const bool gx = wantsGrad(px);
            const bool gw = wantsGrad(pw);
            if (!gx && !gw)
                return;
            for (std::size_t b = 0; b < b_sz; ++b) {
                for (std::size_t t = 0; t < t_sz; ++t) {
                    for (std::size_t j = 0; j < k_sz; ++j) {
                        std::ptrdiff_t src_t =
                            static_cast<std::ptrdiff_t>(t) -
                            static_cast<std::ptrdiff_t>(k_sz) + 1 +
                            static_cast<std::ptrdiff_t>(j);
                        if (src_t < 0)
                            continue;
                        const std::size_t src =
                            (b * t_sz + static_cast<std::size_t>(src_t)) *
                            d;
                        const std::size_t dst = (b * t_sz + t) * d;
                        for (std::size_t c = 0; c < d; ++c) {
                            const Scalar g = self.grad[dst + c];
                            if (gx)
                                px.grad[src + c] += g * pw.data[j * d + c];
                            if (gw)
                                pw.grad[j * d + c] += g * px.data[src + c];
                        }
                    }
                }
            }
        });
}

Tensor
selectiveScan(const Tensor& a, const Tensor& x)
{
    checkSameShape(a, x, "selectiveScan");
    const Shape& s = a.shape();
    if (s.size() != 3)
        fatal(strCat("selectiveScan: expected [B, T, D], got ",
                     shapeToString(s)));
    const std::size_t b_sz = s[0], t_sz = s[1], d = s[2];

    // Forward recurrence: h_t = a_t * h_{t-1} + x_t, h_{-1} = 0.
    std::vector<Scalar> out(a.numel());
    const auto& da = a.data();
    const auto& dx = x.data();
    for (std::size_t b = 0; b < b_sz; ++b) {
        for (std::size_t c = 0; c < d; ++c) {
            Scalar h = 0.0;
            for (std::size_t t = 0; t < t_sz; ++t) {
                const std::size_t i = (b * t_sz + t) * d + c;
                h = da[i] * h + dx[i];
                out[i] = h;
            }
        }
    }

    return makeOpResult(s, std::move(out), {a, x},
        [b_sz, t_sz, d](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& pa = *self.parents[0];
            TensorImpl& px = *self.parents[1];
            const bool ga = wantsGrad(pa);
            const bool gx = wantsGrad(px);
            if (!ga && !gx)
                return;
            // Reverse-time scan. Let dh be the running gradient of the
            // hidden state. At step t:
            //   dh_t   = g_t + a_{t+1} * dh_{t+1}
            //   dx_t   = dh_t
            //   da_t   = dh_t * h_{t-1}
            for (std::size_t b = 0; b < b_sz; ++b) {
                for (std::size_t c = 0; c < d; ++c) {
                    Scalar dh = 0.0;
                    for (std::size_t t = t_sz; t-- > 0;) {
                        const std::size_t i = (b * t_sz + t) * d + c;
                        dh = self.grad[i] +
                             (t + 1 < t_sz
                                  ? pa.data[(b * t_sz + t + 1) * d + c] * dh
                                  : 0.0);
                        if (gx)
                            px.grad[i] += dh;
                        if (ga) {
                            const Scalar h_prev =
                                (t > 0)
                                    ? self.data[(b * t_sz + t - 1) * d + c]
                                    : 0.0;
                            pa.grad[i] += dh * h_prev;
                        }
                    }
                }
            }
        });
}

}  // namespace ftsim
