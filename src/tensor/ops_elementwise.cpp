/**
 * @file
 * Elementwise arithmetic, activations, reductions, and dropout.
 */

#include <cmath>

#include "common/rng.hpp"
#include "tensor/op_helpers.hpp"
#include "tensor/ops.hpp"

namespace ftsim {

using detail::checkDefined;
using detail::checkSameShape;
using detail::noUpstream;
using detail::wantsGrad;

Tensor
add(const Tensor& a, const Tensor& b)
{
    checkSameShape(a, b, "add");
    std::vector<Scalar> out(a.numel());
    const auto& da = a.data();
    const auto& db = b.data();
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = da[i] + db[i];
    return makeOpResult(a.shape(), std::move(out), {a, b},
        [](TensorImpl& self) {
            if (noUpstream(self))
                return;
            for (int p = 0; p < 2; ++p) {
                TensorImpl& parent = *self.parents[p];
                if (!wantsGrad(parent))
                    continue;
                for (std::size_t i = 0; i < self.grad.size(); ++i)
                    parent.grad[i] += self.grad[i];
            }
        });
}

Tensor
sub(const Tensor& a, const Tensor& b)
{
    checkSameShape(a, b, "sub");
    std::vector<Scalar> out(a.numel());
    const auto& da = a.data();
    const auto& db = b.data();
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = da[i] - db[i];
    return makeOpResult(a.shape(), std::move(out), {a, b},
        [](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& pa = *self.parents[0];
            TensorImpl& pb = *self.parents[1];
            if (wantsGrad(pa))
                for (std::size_t i = 0; i < self.grad.size(); ++i)
                    pa.grad[i] += self.grad[i];
            if (wantsGrad(pb))
                for (std::size_t i = 0; i < self.grad.size(); ++i)
                    pb.grad[i] -= self.grad[i];
        });
}

Tensor
mul(const Tensor& a, const Tensor& b)
{
    checkSameShape(a, b, "mul");
    std::vector<Scalar> out(a.numel());
    const auto& da = a.data();
    const auto& db = b.data();
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = da[i] * db[i];
    return makeOpResult(a.shape(), std::move(out), {a, b},
        [](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& pa = *self.parents[0];
            TensorImpl& pb = *self.parents[1];
            if (wantsGrad(pa))
                for (std::size_t i = 0; i < self.grad.size(); ++i)
                    pa.grad[i] += self.grad[i] * pb.data[i];
            if (wantsGrad(pb))
                for (std::size_t i = 0; i < self.grad.size(); ++i)
                    pb.grad[i] += self.grad[i] * pa.data[i];
        });
}

Tensor
div(const Tensor& a, const Tensor& b)
{
    checkSameShape(a, b, "div");
    std::vector<Scalar> out(a.numel());
    const auto& da = a.data();
    const auto& db = b.data();
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = da[i] / db[i];
    return makeOpResult(a.shape(), std::move(out), {a, b},
        [](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& pa = *self.parents[0];
            TensorImpl& pb = *self.parents[1];
            if (wantsGrad(pa))
                for (std::size_t i = 0; i < self.grad.size(); ++i)
                    pa.grad[i] += self.grad[i] / pb.data[i];
            if (wantsGrad(pb)) {
                for (std::size_t i = 0; i < self.grad.size(); ++i) {
                    Scalar denom = pb.data[i];
                    pb.grad[i] -=
                        self.grad[i] * pa.data[i] / (denom * denom);
                }
            }
        });
}

Tensor
neg(const Tensor& x)
{
    return scale(x, -1.0);
}

Tensor
scale(const Tensor& x, Scalar s)
{
    checkDefined(x, "scale");
    std::vector<Scalar> out(x.numel());
    const auto& dx = x.data();
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = dx[i] * s;
    return makeOpResult(x.shape(), std::move(out), {x},
        [s](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            for (std::size_t i = 0; i < self.grad.size(); ++i)
                p.grad[i] += self.grad[i] * s;
        });
}

Tensor
addScalar(const Tensor& x, Scalar s)
{
    checkDefined(x, "addScalar");
    std::vector<Scalar> out(x.numel());
    const auto& dx = x.data();
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = dx[i] + s;
    return makeOpResult(x.shape(), std::move(out), {x},
        [](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            for (std::size_t i = 0; i < self.grad.size(); ++i)
                p.grad[i] += self.grad[i];
        });
}

namespace {

/** Shared implementation for unary elementwise ops with dy/dx = fn'(x). */
template <typename Fwd, typename Bwd>
Tensor
unaryOp(const Tensor& x, const char* name, Fwd fwd, Bwd dydx)
{
    checkDefined(x, name);
    std::vector<Scalar> out(x.numel());
    const auto& dx = x.data();
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = fwd(dx[i]);
    return makeOpResult(x.shape(), std::move(out), {x},
        [dydx](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            for (std::size_t i = 0; i < self.grad.size(); ++i)
                p.grad[i] += self.grad[i] * dydx(p.data[i], self.data[i]);
        });
}

Scalar
sigmoidScalar(Scalar v)
{
    if (v >= 0.0) {
        Scalar e = std::exp(-v);
        return 1.0 / (1.0 + e);
    }
    Scalar e = std::exp(v);
    return e / (1.0 + e);
}

}  // namespace

Tensor
relu(const Tensor& x)
{
    return unaryOp(
        x, "relu", [](Scalar v) { return v > 0.0 ? v : 0.0; },
        [](Scalar v, Scalar) { return v > 0.0 ? 1.0 : 0.0; });
}

Tensor
sigmoid(const Tensor& x)
{
    return unaryOp(
        x, "sigmoid", [](Scalar v) { return sigmoidScalar(v); },
        [](Scalar, Scalar y) { return y * (1.0 - y); });
}

Tensor
tanhAct(const Tensor& x)
{
    return unaryOp(
        x, "tanhAct", [](Scalar v) { return std::tanh(v); },
        [](Scalar, Scalar y) { return 1.0 - y * y; });
}

Tensor
silu(const Tensor& x)
{
    return unaryOp(
        x, "silu", [](Scalar v) { return v * sigmoidScalar(v); },
        [](Scalar v, Scalar) {
            Scalar s = sigmoidScalar(v);
            return s * (1.0 + v * (1.0 - s));
        });
}

Tensor
gelu(const Tensor& x)
{
    // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3))).
    constexpr Scalar kAlpha = 0.7978845608028654;  // sqrt(2/pi)
    constexpr Scalar kBeta = 0.044715;
    return unaryOp(
        x, "gelu",
        [](Scalar v) {
            Scalar inner = kAlpha * (v + kBeta * v * v * v);
            return 0.5 * v * (1.0 + std::tanh(inner));
        },
        [](Scalar v, Scalar) {
            Scalar inner = kAlpha * (v + kBeta * v * v * v);
            Scalar t = std::tanh(inner);
            Scalar dinner = kAlpha * (1.0 + 3.0 * kBeta * v * v);
            return 0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * dinner;
        });
}

Tensor
softplus(const Tensor& x)
{
    return unaryOp(
        x, "softplus",
        [](Scalar v) {
            // log(1 + e^v) = max(v, 0) + log1p(e^-|v|), overflow-safe.
            return std::max(v, 0.0) + std::log1p(std::exp(-std::abs(v)));
        },
        [](Scalar v, Scalar) { return sigmoidScalar(v); });
}

Tensor
sumAll(const Tensor& x)
{
    checkDefined(x, "sumAll");
    Scalar acc = 0.0;
    for (Scalar v : x.data())
        acc += v;
    return makeOpResult({}, {acc}, {x},
        [](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& p = *self.parents[0];
            if (!wantsGrad(p))
                return;
            Scalar g = self.grad[0];
            for (std::size_t i = 0; i < p.grad.size(); ++i)
                p.grad[i] += g;
        });
}

Tensor
meanAll(const Tensor& x)
{
    checkDefined(x, "meanAll");
    if (x.numel() == 0)
        fatal("meanAll: empty tensor");
    return scale(sumAll(x), 1.0 / static_cast<Scalar>(x.numel()));
}

Tensor
dropout(const Tensor& x, Scalar p, Rng& rng)
{
    checkDefined(x, "dropout");
    if (p < 0.0 || p >= 1.0)
        fatal(strCat("dropout: probability out of range: ", p));
    if (p == 0.0)
        return x;
    const Scalar keep_scale = 1.0 / (1.0 - p);
    // The mask must be shared by forward and backward; keep it in a
    // shared_ptr captured by the closure.
    auto mask = std::make_shared<std::vector<Scalar>>(x.numel());
    std::vector<Scalar> out(x.numel());
    const auto& dx = x.data();
    for (std::size_t i = 0; i < out.size(); ++i) {
        (*mask)[i] = rng.bernoulli(p) ? 0.0 : keep_scale;
        out[i] = dx[i] * (*mask)[i];
    }
    return makeOpResult(x.shape(), std::move(out), {x},
        [mask](TensorImpl& self) {
            if (noUpstream(self))
                return;
            TensorImpl& parent = *self.parents[0];
            if (!wantsGrad(parent))
                return;
            for (std::size_t i = 0; i < self.grad.size(); ++i)
                parent.grad[i] += self.grad[i] * (*mask)[i];
        });
}

}  // namespace ftsim
