#ifndef FTSIM_NN_LAYERS_HPP
#define FTSIM_NN_LAYERS_HPP

/**
 * @file
 * Basic layers: Linear, Embedding, RMSNorm.
 */

#include <vector>

#include "nn/module.hpp"
#include "tensor/tensor.hpp"

namespace ftsim {

class Rng;

/** Affine layer y = x W^T + b with PyTorch [out, in] weight layout. */
class Linear : public Module {
  public:
    /**
     * @param in_dim input feature count.
     * @param out_dim output feature count.
     * @param rng initializer stream (Kaiming-uniform fan-in scaling).
     * @param with_bias whether to allocate a bias vector.
     */
    Linear(std::size_t in_dim, std::size_t out_dim, Rng& rng,
           bool with_bias = false);

    /** Applies the layer to [..., in_dim] input. */
    Tensor forward(const Tensor& x) const;

    /** Input feature count. */
    std::size_t inDim() const { return inDim_; }

    /** Output feature count. */
    std::size_t outDim() const { return outDim_; }

    /** Weight tensor [out, in]. */
    const Tensor& weight() const { return weight_; }

    /** Bias tensor [out]; undefined when constructed without bias. */
    const Tensor& bias() const { return bias_; }

  private:
    std::size_t inDim_;
    std::size_t outDim_;
    Tensor weight_;
    Tensor bias_;
};

/** Token-embedding table. */
class Embedding : public Module {
  public:
    /** @param vocab vocabulary size; @param dim embedding width. */
    Embedding(std::size_t vocab, std::size_t dim, Rng& rng);

    /**
     * Looks up ids (length = prod(out_prefix)); the result has shape
     * out_prefix + [dim].
     */
    Tensor forward(const std::vector<int>& ids,
                   const Shape& out_prefix) const;

    /** Vocabulary size. */
    std::size_t vocab() const { return vocab_; }

    /** Embedding width. */
    std::size_t dim() const { return dim_; }

    /** The [V, D] table. */
    const Tensor& table() const { return table_; }

  private:
    std::size_t vocab_;
    std::size_t dim_;
    Tensor table_;
};

/** Root-mean-square layer normalization with a learned gain. */
class RMSNorm : public Module {
  public:
    /** @param dim normalized (last) dimension; gain initialized to 1. */
    explicit RMSNorm(std::size_t dim, Scalar eps = 1e-6);

    /** Normalizes the last dimension of x. */
    Tensor forward(const Tensor& x) const;

  private:
    Tensor weight_;
    Scalar eps_;
};

}  // namespace ftsim

#endif  // FTSIM_NN_LAYERS_HPP
