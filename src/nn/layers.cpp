#include "nn/layers.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace ftsim {

Linear::Linear(std::size_t in_dim, std::size_t out_dim, Rng& rng,
               bool with_bias)
    : inDim_(in_dim), outDim_(out_dim)
{
    if (in_dim == 0 || out_dim == 0)
        fatal("Linear: zero-sized dimension");
    // Kaiming-uniform with fan-in scaling, the PyTorch default.
    const Scalar bound = 1.0 / std::sqrt(static_cast<Scalar>(in_dim));
    weight_ = registerParameter(
        "weight", Tensor::randu({out_dim, in_dim}, rng, bound));
    if (with_bias) {
        bias_ = registerParameter("bias",
                                  Tensor::randu({out_dim}, rng, bound));
    }
}

Tensor
Linear::forward(const Tensor& x) const
{
    return linearOp(x, weight_, bias_);
}

Embedding::Embedding(std::size_t vocab, std::size_t dim, Rng& rng)
    : vocab_(vocab), dim_(dim)
{
    if (vocab == 0 || dim == 0)
        fatal("Embedding: zero-sized dimension");
    table_ = registerParameter("weight",
                               Tensor::randn({vocab, dim}, rng, 0.02));
}

Tensor
Embedding::forward(const std::vector<int>& ids,
                   const Shape& out_prefix) const
{
    return embedding(table_, ids, out_prefix);
}

RMSNorm::RMSNorm(std::size_t dim, Scalar eps)
    : eps_(eps)
{
    if (dim == 0)
        fatal("RMSNorm: zero-sized dimension");
    weight_ = registerParameter("weight", Tensor::full({dim}, 1.0));
}

Tensor
RMSNorm::forward(const Tensor& x) const
{
    return rmsNorm(x, weight_, eps_);
}

}  // namespace ftsim
