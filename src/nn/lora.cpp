#include "nn/lora.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace ftsim {

LoRALinear::LoRALinear(std::unique_ptr<LinearBase> base, std::size_t rank,
                       Scalar alpha, Rng& rng)
    : base_(std::move(base)), rank_(rank)
{
    if (!base_)
        fatal("LoRALinear: null base layer");
    if (rank == 0)
        fatal("LoRALinear: rank must be positive");
    scaling_ = alpha / static_cast<Scalar>(rank);

    base_->freeze();
    registerChild("base", base_.get());

    // Standard LoRA init: A random (fan-in scaled), B zero, so the
    // adapter starts as an exact no-op on the pre-trained function.
    const Scalar bound =
        1.0 / std::sqrt(static_cast<Scalar>(base_->inDim()));
    a_ = registerParameter(
        "lora_A", Tensor::randu({rank, base_->inDim()}, rng, bound));
    b_ = registerParameter("lora_B",
                           Tensor::zeros({base_->outDim(), rank}));
}

Tensor
LoRALinear::forward(const Tensor& x) const
{
    Tensor base_out = base_->forward(x);
    Tensor down = linearOp(x, a_, Tensor());     // [..., r]
    Tensor up = linearOp(down, b_, Tensor());    // [..., out]
    return add(base_out, scale(up, scaling_));
}

}  // namespace ftsim
