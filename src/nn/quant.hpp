#ifndef FTSIM_NN_QUANT_HPP
#define FTSIM_NN_QUANT_HPP

/**
 * @file
 * Block-wise 4-bit weight quantization (the QLoRA-style base layer).
 *
 * The paper fine-tunes Mixtral with QLoRA: base weights are stored in
 * 4-bit blocks and de-quantized on the fly inside every forward/backward
 * pass (the `*_dequant` kernels in Figs. 6, 9, 10). QuantLinear mirrors
 * that: the base matrix is quantized once at construction, is never
 * trainable, and is materialized by dequantize() on each forward call.
 */

#include <cstdint>
#include <vector>

#include "nn/module.hpp"
#include "tensor/tensor.hpp"

namespace ftsim {

class Rng;

/** Interface shared by plain and quantized affine layers. */
class LinearBase : public Module {
  public:
    /** Applies the layer to [..., in] input. */
    virtual Tensor forward(const Tensor& x) const = 0;

    /** Input feature count. */
    virtual std::size_t inDim() const = 0;

    /** Output feature count. */
    virtual std::size_t outDim() const = 0;
};

/** Raw block-quantized matrix storage (symmetric int4). */
struct QuantizedMatrix {
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::size_t blockSize = 32;
    /** One 4-bit code per element, stored one-per-byte in [-8, 7]+8. */
    std::vector<std::uint8_t> codes;
    /** One scale per (row, block) pair, row-major. */
    std::vector<Scalar> scales;

    /** Number of blocks per row. */
    std::size_t blocksPerRow() const;

    /** Storage cost in bytes if packed 2 codes/byte plus fp16 scales. */
    std::size_t packedBytes() const;
};

/**
 * Quantizes a [rows, cols] weight into symmetric int4 blocks of
 * @p block_size along the column (input) dimension.
 */
QuantizedMatrix quantize4Bit(const Tensor& weight,
                             std::size_t block_size = 32);

/** Dequantizes back to a dense (non-trainable) tensor. */
Tensor dequantize4Bit(const QuantizedMatrix& qm);

/**
 * Affine layer whose weight lives in 4-bit blocks. The weight is frozen
 * by construction (QLoRA trains only adapter matrices); gradients flow
 * to the *input* but never to the quantized codes.
 */
class QuantLinear : public LinearBase {
  public:
    /** Quantizes @p weight ([out, in]) at the given block size. */
    explicit QuantLinear(const Tensor& weight, std::size_t block_size = 32);

    /** Convenience: random base weight, then quantized. */
    QuantLinear(std::size_t in_dim, std::size_t out_dim, Rng& rng,
                std::size_t block_size = 32);

    Tensor forward(const Tensor& x) const override;

    std::size_t inDim() const override { return qm_.cols; }

    std::size_t outDim() const override { return qm_.rows; }

    /** The dense de-quantized weight (fresh constant tensor). */
    Tensor dequantize() const;

    /** The underlying quantized storage. */
    const QuantizedMatrix& storage() const { return qm_; }

    /** Mean absolute quantization error vs. the original weight. */
    Scalar quantizationError() const { return quantError_; }

    /** Re-quantizes from a new dense weight (pretrain -> QLoRA flow). */
    void requantize(const Tensor& weight);

  private:
    QuantizedMatrix qm_;
    Scalar quantError_ = 0.0;
};

/** Plain Linear re-exposed through the LinearBase interface. */
class DenseLinear : public LinearBase {
  public:
    DenseLinear(std::size_t in_dim, std::size_t out_dim, Rng& rng);

    Tensor forward(const Tensor& x) const override;

    std::size_t inDim() const override { return inDim_; }

    std::size_t outDim() const override { return outDim_; }

    /** Weight tensor [out, in]. */
    const Tensor& weight() const { return weight_; }

  private:
    std::size_t inDim_;
    std::size_t outDim_;
    Tensor weight_;
};

}  // namespace ftsim

#endif  // FTSIM_NN_QUANT_HPP
