#ifndef FTSIM_NN_MODULE_HPP
#define FTSIM_NN_MODULE_HPP

/**
 * @file
 * Module: the base class for neural-network layers.
 *
 * A module owns named parameter tensors and non-owning links to child
 * modules (which are value members of the subclass). The registry gives
 * optimizers and checkpoint code a uniform view of the parameter tree,
 * mirroring torch.nn.Module at the scale this project needs.
 */

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace ftsim {

/** A (hierarchical name, parameter tensor) pair. */
struct NamedParameter {
    std::string name;
    Tensor tensor;
};

/** Base class for layers; see file comment. */
class Module {
  public:
    virtual ~Module() = default;

    Module() = default;
    // Modules hold raw child pointers into the owning object; copying
    // would dangle them.
    Module(const Module&) = delete;
    Module& operator=(const Module&) = delete;

    /** All parameters of this module and its descendants. */
    std::vector<NamedParameter> namedParameters() const;

    /** Parameter tensors only (same traversal order). */
    std::vector<Tensor> parameters() const;

    /** Parameters with requiresGrad set (what an optimizer updates). */
    std::vector<Tensor> trainableParameters() const;

    /** Total element count across all parameters. */
    std::size_t numParameters() const;

    /** Element count across trainable parameters only. */
    std::size_t numTrainableParameters() const;

    /** Zeroes the gradient of every parameter in the tree. */
    void zeroGrad();

    /** Marks every parameter in the tree frozen (requiresGrad = false). */
    void freeze();

  protected:
    /** Registers a leaf parameter; returns the same tensor for storage. */
    Tensor registerParameter(const std::string& name, Tensor tensor,
                             bool trainable = true);

    /** Registers a child (a value member of the subclass). */
    void registerChild(const std::string& name, Module* child);

  private:
    void collect(const std::string& prefix,
                 std::vector<NamedParameter>& out) const;

    std::vector<NamedParameter> params_;
    std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace ftsim

#endif  // FTSIM_NN_MODULE_HPP
