#include "nn/module.hpp"

#include "common/logging.hpp"

namespace ftsim {

std::vector<NamedParameter>
Module::namedParameters() const
{
    std::vector<NamedParameter> out;
    collect("", out);
    return out;
}

std::vector<Tensor>
Module::parameters() const
{
    std::vector<Tensor> out;
    for (auto& np : namedParameters())
        out.push_back(np.tensor);
    return out;
}

std::vector<Tensor>
Module::trainableParameters() const
{
    std::vector<Tensor> out;
    for (auto& np : namedParameters())
        if (np.tensor.requiresGrad())
            out.push_back(np.tensor);
    return out;
}

std::size_t
Module::numParameters() const
{
    std::size_t n = 0;
    for (auto& np : namedParameters())
        n += np.tensor.numel();
    return n;
}

std::size_t
Module::numTrainableParameters() const
{
    std::size_t n = 0;
    for (auto& np : namedParameters())
        if (np.tensor.requiresGrad())
            n += np.tensor.numel();
    return n;
}

void
Module::zeroGrad()
{
    for (auto& np : namedParameters())
        np.tensor.zeroGrad();
}

void
Module::freeze()
{
    for (auto& np : namedParameters())
        np.tensor.setRequiresGrad(false);
}

Tensor
Module::registerParameter(const std::string& name, Tensor tensor,
                          bool trainable)
{
    if (!tensor.defined())
        fatal(strCat("registerParameter(", name, "): undefined tensor"));
    tensor.setRequiresGrad(trainable);
    params_.push_back({name, tensor});
    return tensor;
}

void
Module::registerChild(const std::string& name, Module* child)
{
    if (child == nullptr)
        panic(strCat("registerChild(", name, "): null child"));
    children_.emplace_back(name, child);
}

void
Module::collect(const std::string& prefix,
                std::vector<NamedParameter>& out) const
{
    for (const auto& np : params_)
        out.push_back({prefix + np.name, np.tensor});
    for (const auto& [name, child] : children_)
        child->collect(prefix + name + ".", out);
}

}  // namespace ftsim
