#ifndef FTSIM_NN_LORA_HPP
#define FTSIM_NN_LORA_HPP

/**
 * @file
 * Low-Rank Adaptation (LoRA) over a frozen base layer.
 *
 * LoRA (Hu et al. 2021) freezes the pre-trained weight W and learns a
 * rank-r update dW = B A scaled by alpha/r, so y = x W^T + (alpha/r)
 * x A^T B^T. Combined with a QuantLinear base this is QLoRA, the
 * configuration the paper uses for Mixtral fine-tuning (rank 16 on the
 * MoE layers including the routers).
 */

#include <memory>

#include "nn/quant.hpp"
#include "tensor/tensor.hpp"

namespace ftsim {

class Rng;

/** LoRA adapter wrapping a frozen LinearBase. */
class LoRALinear : public LinearBase {
  public:
    /**
     * @param base frozen base layer (takes ownership; its parameters are
     *             frozen here regardless of prior state).
     * @param rank adapter rank r (paper: 16).
     * @param alpha scaling numerator (effective scale alpha / r).
     */
    LoRALinear(std::unique_ptr<LinearBase> base, std::size_t rank,
               Scalar alpha, Rng& rng);

    /** y = base(x) + (alpha/r) * (x A^T) B^T. */
    Tensor forward(const Tensor& x) const override;

    std::size_t inDim() const override { return base_->inDim(); }

    std::size_t outDim() const override { return base_->outDim(); }

    /** Adapter rank. */
    std::size_t rank() const { return rank_; }

    /** Down-projection A [r, in] (trainable). */
    const Tensor& loraA() const { return a_; }

    /** Up-projection B [out, r] (trainable, zero-initialized). */
    const Tensor& loraB() const { return b_; }

    /** The wrapped frozen base layer. */
    const LinearBase& base() const { return *base_; }

    /** Mutable base access (weight-transfer plumbing). */
    LinearBase& baseLayer() { return *base_; }

  private:
    std::unique_ptr<LinearBase> base_;
    std::size_t rank_;
    Scalar scaling_;
    Tensor a_;
    Tensor b_;
};

}  // namespace ftsim

#endif  // FTSIM_NN_LORA_HPP
