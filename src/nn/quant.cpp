#include "nn/quant.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace ftsim {

std::size_t
QuantizedMatrix::blocksPerRow() const
{
    return (cols + blockSize - 1) / blockSize;
}

std::size_t
QuantizedMatrix::packedBytes() const
{
    // 2 codes per byte, 2-byte (fp16) scale per block.
    return codes.size() / 2 + scales.size() * 2;
}

QuantizedMatrix
quantize4Bit(const Tensor& weight, std::size_t block_size)
{
    if (weight.dim() != 2)
        fatal("quantize4Bit: expected a [rows, cols] matrix");
    if (block_size == 0)
        fatal("quantize4Bit: zero block size");

    QuantizedMatrix qm;
    qm.rows = weight.size(0);
    qm.cols = weight.size(1);
    qm.blockSize = block_size;
    qm.codes.resize(qm.rows * qm.cols);
    qm.scales.assign(qm.rows * qm.blocksPerRow(), 0.0);

    const auto& w = weight.data();
    for (std::size_t r = 0; r < qm.rows; ++r) {
        for (std::size_t blk = 0; blk < qm.blocksPerRow(); ++blk) {
            const std::size_t c0 = blk * block_size;
            const std::size_t c1 = std::min(c0 + block_size, qm.cols);
            Scalar absmax = 0.0;
            for (std::size_t c = c0; c < c1; ++c)
                absmax = std::max(absmax, std::abs(w[r * qm.cols + c]));
            // Symmetric int4: codes in [-8, 7]; scale maps 7 -> absmax.
            const Scalar scale = absmax > 0.0 ? absmax / 7.0 : 1.0;
            qm.scales[r * qm.blocksPerRow() + blk] = scale;
            for (std::size_t c = c0; c < c1; ++c) {
                int code = static_cast<int>(
                    std::lround(w[r * qm.cols + c] / scale));
                code = std::clamp(code, -8, 7);
                qm.codes[r * qm.cols + c] =
                    static_cast<std::uint8_t>(code + 8);
            }
        }
    }
    return qm;
}

Tensor
dequantize4Bit(const QuantizedMatrix& qm)
{
    std::vector<Scalar> w(qm.rows * qm.cols);
    const std::size_t bpr = qm.blocksPerRow();
    for (std::size_t r = 0; r < qm.rows; ++r) {
        for (std::size_t c = 0; c < qm.cols; ++c) {
            const Scalar scale = qm.scales[r * bpr + c / qm.blockSize];
            const int code = static_cast<int>(qm.codes[r * qm.cols + c]) - 8;
            w[r * qm.cols + c] = scale * static_cast<Scalar>(code);
        }
    }
    return Tensor::fromVector({qm.rows, qm.cols}, std::move(w));
}

QuantLinear::QuantLinear(const Tensor& weight, std::size_t block_size)
    : qm_(quantize4Bit(weight, block_size))
{
    Tensor deq = dequantize4Bit(qm_);
    Scalar acc = 0.0;
    for (std::size_t i = 0; i < weight.numel(); ++i)
        acc += std::abs(weight.data()[i] - deq.data()[i]);
    quantError_ = acc / static_cast<Scalar>(weight.numel());
}

QuantLinear::QuantLinear(std::size_t in_dim, std::size_t out_dim, Rng& rng,
                         std::size_t block_size)
    : QuantLinear(
          Tensor::randu({out_dim, in_dim}, rng,
                        1.0 / std::sqrt(static_cast<Scalar>(in_dim))),
          block_size)
{
}

Tensor
QuantLinear::forward(const Tensor& x) const
{
    // De-quantize on every call: this is exactly the runtime cost the
    // paper's `*_dequant` kernels pay (Figs. 6, 9, 10). The materialized
    // weight is a constant, so no gradient reaches the codes.
    return linearOp(x, dequantize(), Tensor());
}

Tensor
QuantLinear::dequantize() const
{
    return dequantize4Bit(qm_);
}

void
QuantLinear::requantize(const Tensor& weight)
{
    if (weight.dim() != 2 || weight.size(0) != qm_.rows ||
        weight.size(1) != qm_.cols)
        fatal("QuantLinear::requantize: shape mismatch");
    qm_ = quantize4Bit(weight, qm_.blockSize);
    Tensor deq = dequantize4Bit(qm_);
    Scalar acc = 0.0;
    for (std::size_t i = 0; i < weight.numel(); ++i)
        acc += std::abs(weight.data()[i] - deq.data()[i]);
    quantError_ = acc / static_cast<Scalar>(weight.numel());
}

DenseLinear::DenseLinear(std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : inDim_(in_dim), outDim_(out_dim)
{
    const Scalar bound = 1.0 / std::sqrt(static_cast<Scalar>(in_dim));
    weight_ = registerParameter(
        "weight", Tensor::randu({out_dim, in_dim}, rng, bound));
}

Tensor
DenseLinear::forward(const Tensor& x) const
{
    return linearOp(x, weight_, Tensor());
}

}  // namespace ftsim
