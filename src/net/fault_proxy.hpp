#ifndef FTSIM_NET_FAULT_PROXY_HPP
#define FTSIM_NET_FAULT_PROXY_HPP

/**
 * @file
 * Deterministic TCP chaos proxy for fault-injection tests (ISSUE-7).
 *
 * `FaultProxy` listens on one port and forwards every accepted
 * connection to a (retargetable) upstream, byte-for-byte — until a
 * scripted fault fires. Tests and `bench_chaos_load` park it between
 * the router and a shard so shard death, wedged peers, half-closes,
 * and truncated streams happen at an exact, reproducible byte offset
 * instead of "whenever kill -9 lands":
 *
 *     client/router --> FaultProxy --> shard (retarget at runtime)
 *
 * Fault kinds (`FaultScript`), scripted per direction and armed for
 * current + future links:
 *  - `Close`: forward exactly `afterBytes` in the scripted direction,
 *    then drop both sides of the link (the kill-after-N-bytes chaos).
 *  - `Stall`: stop forwarding the scripted direction after
 *    `afterBytes` but keep the link open — the classic wedged peer
 *    that blocks a timeout-less client forever.
 *  - `HalfClose`: after `afterBytes`, shutdown(SHUT_WR) toward the
 *    scripted direction's receiver (it sees EOF mid-stream); the
 *    reverse direction keeps flowing.
 *  - `Truncate`: forward `afterBytes`, then silently discard the rest
 *    of that direction — bytes vanish but nobody blocks.
 *
 * `afterBytes` counts bytes *forwarded on that link* in the scripted
 * direction, so `afterBytes = 0` armed mid-conversation means "from
 * now". Independently, a seeded RNG (`FaultProxyConfig::seed` +
 * `maxChunkBytes`) slices every forwarded write into random 1..N byte
 * chunks — deterministic partial writes and short reads that exercise
 * `LineFramer` reassembly and the router's slot sequencing without any
 * fault firing.
 *
 * Runtime controls (any thread): `setFault` / `clearFault`,
 * `setTarget` (future links dial the new upstream — how a test "heals"
 * a killed shard with a fresh one), `killConnections` (drop every live
 * link now, listener stays). All forwarding state is loop-thread-owned;
 * the controls go through a mutex + wake pipe.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/result.hpp"

namespace ftsim {

/** Which flow a fault script counts and breaks. */
enum class FaultDirection {
    ClientToServer,  ///< Bytes from the accepted side to the upstream.
    ServerToClient,  ///< Bytes from the upstream back to the client.
};

/** What the proxy does to a link (see file comment). */
enum class FaultKind {
    None,       ///< Transparent forwarding.
    Close,      ///< Kill both sides after N bytes.
    Stall,      ///< Stop forwarding after N bytes; link stays open.
    HalfClose,  ///< shutdown(SHUT_WR) toward the receiver after N.
    Truncate,   ///< Discard the direction's bytes after N.
};

/** One scripted fault; armed via FaultProxy::setFault. */
struct FaultScript {
    FaultKind kind = FaultKind::None;
    FaultDirection direction = FaultDirection::ClientToServer;
    /** Per-link bytes forwarded in `direction` before the fault fires
     *  (0 = immediately for bytes not yet forwarded). */
    std::uint64_t afterBytes = 0;
};

/** Construction knobs for a FaultProxy. */
struct FaultProxyConfig {
    std::string listenHost = "127.0.0.1";
    /** 0 = kernel-assigned; read back via port(). */
    std::uint16_t listenPort = 0;
    std::string targetHost = "127.0.0.1";
    std::uint16_t targetPort = 0;
    /** != 0 enables seeded random write chunking (with maxChunkBytes);
     *  the same seed replays the same split points. */
    std::uint64_t seed = 0;
    /** Upper bound on one forwarded write when chunking (>= 1). */
    std::size_t maxChunkBytes = 0;
    /** Per-direction buffered-byte cap; a full buffer stops reading
     *  from the source (backpressure), so memory stays bounded no
     *  matter how wedged the sink is. */
    std::size_t maxBufferBytes = 1 << 16;
};

/** Loop-thread-maintained counters, readable from any thread. */
struct FaultProxyStats {
    std::uint64_t connectionsAccepted = 0;
    /** Links dropped by killConnections() or a Close fault. */
    std::uint64_t connectionsKilled = 0;
    /** Scripted faults that actually fired. */
    std::uint64_t faultsInjected = 0;
    std::uint64_t bytesClientToServer = 0;
    std::uint64_t bytesServerToClient = 0;
    /** High-water mark of one direction's buffered bytes — tests pin
     *  this to maxBufferBytes to prove the proxy is bounded. */
    std::uint64_t peakBufferedBytes = 0;
    /** Links currently proxying. */
    std::size_t linksOpen = 0;
};

/** Scriptable TCP fault-injection proxy (see file comment). */
class FaultProxy {
  public:
    explicit FaultProxy(FaultProxyConfig config);

    /** Stops the loop and drops every link. */
    ~FaultProxy();

    FaultProxy(const FaultProxy&) = delete;
    FaultProxy& operator=(const FaultProxy&) = delete;

    /** Binds the listener and runs the loop on a background thread. */
    Result<bool> start();

    /** The bound listen port (after start; 0 before). */
    std::uint16_t port() const;

    /** Stops and joins (idempotent). */
    void stop();

    /** Arms @p script for current and future links. */
    void setFault(const FaultScript& script);

    /** Back to transparent forwarding (links already broken stay
     *  broken; a Stall's buffered bytes resume flowing). */
    void clearFault();

    /** Future links dial @p host:@p port instead — a test's "heal the
     *  fleet with a replacement shard" lever. */
    void setTarget(const std::string& host, std::uint16_t port);

    /** Drops every live link now; the listener keeps accepting. */
    void killConnections();

    FaultProxyStats stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    std::thread loop_thread_;
};

}  // namespace ftsim

#endif  // FTSIM_NET_FAULT_PROXY_HPP
