#include "net/fault_proxy.hpp"

#include <algorithm>
#include <cerrno>
#include <mutex>
#include <poll.h>
#include <random>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

#include "common/logging.hpp"
#include "net/socket.hpp"

namespace ftsim {

namespace {

constexpr std::size_t kC2S = 0;  ///< flow index: client -> server
constexpr std::size_t kS2C = 1;  ///< flow index: server -> client

std::size_t
flowIndex(FaultDirection direction)
{
    return direction == FaultDirection::ClientToServer ? kC2S : kS2C;
}

}  // namespace

/** Poll-loop internals; forwarding state is loop-thread-owned, the
 *  controls cross via controlMutex + the wake pipe, stats via
 *  atomics. */
struct FaultProxy::Impl {
    /** One forwarded direction of a link. */
    struct Flow {
        std::string buf;       ///< Bytes read but not yet written.
        std::size_t off = 0;   ///< Written prefix of buf.
        std::uint64_t forwarded = 0;  ///< Bytes delivered downstream.
        bool srcEof = false;   ///< Source half-closed toward us.
        bool sinkShut = false; ///< We SHUT_WR'd the sink.
        bool discarding = false;  ///< Truncate/HalfClose fired: source
                                  ///< bytes are read and dropped.

        std::size_t pending() const { return buf.size() - off; }
    };

    /** One proxied connection pair. */
    struct Link {
        Connection client;
        Connection upstream;
        bool connecting = true;  ///< Upstream handshake in flight.
        bool dead = false;
        bool faultFired = false;
        Flow flow[2];
        std::mt19937_64 rng;
    };

    explicit Impl(FaultProxyConfig cfg) : config(std::move(cfg))
    {
        int fds[2] = {-1, -1};
        if (::pipe(fds) != 0)
            fatal("FaultProxy: cannot create wake pipe");
        setNonBlocking(fds[0]);
        setNonBlocking(fds[1]);
        wakeRead = fds[0];
        wakeWrite = fds[1];
    }

    ~Impl()
    {
        if (wakeRead >= 0)
            ::close(wakeRead);
        if (wakeWrite >= 0)
            ::close(wakeWrite);
    }

    void wake()
    {
        const char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(wakeWrite, &byte, 1);
    }

    void drainWakePipe()
    {
        char buf[256];
        while (::read(wakeRead, buf, sizeof(buf)) > 0) {
        }
    }

    void fireFault(Link& link)
    {
        if (!link.faultFired) {
            link.faultFired = true;
            faultsInjected.fetch_add(1);
        }
    }

    void killLink(Link& link, bool counted)
    {
        if (link.dead)
            return;
        link.dead = true;
        // Count BEFORE closing: the peer observes the death the moment
        // the fds close, and may read stats() right away.
        if (counted)
            killed.fetch_add(1);
        link.client.close();
        link.upstream.close();
    }

    void shutSink(Link& link, std::size_t d)
    {
        Flow& flow = link.flow[d];
        Connection& sink = d == kC2S ? link.upstream : link.client;
        if (!flow.sinkShut && sink.valid()) {
            ::shutdown(sink.fd(), SHUT_WR);
            flow.sinkShut = true;
        }
    }

    /** Reads from direction @p d's source into its bounded buffer
     *  (or the void, once the direction is discarding). */
    void pumpRead(Link& link, std::size_t d)
    {
        Flow& flow = link.flow[d];
        Connection& src = d == kC2S ? link.client : link.upstream;
        while (!link.dead && !flow.srcEof) {
            char tmp[16384];
            std::size_t cap = sizeof(tmp);
            if (!flow.discarding) {
                if (flow.pending() >= config.maxBufferBytes)
                    return;  // Backpressure: stop reading, stay bounded.
                cap = std::min(
                    cap, config.maxBufferBytes - flow.pending());
            }
            const IoResult io = src.readSome(tmp, cap);
            if (io.status == IoStatus::Ok) {
                if (flow.discarding)
                    continue;  // Truncated direction: bytes vanish.
                flow.buf.append(tmp, io.bytes);
                std::uint64_t peakNow = flow.pending();
                std::uint64_t peak = peakBuffered.load();
                while (peakNow > peak &&
                       !peakBuffered.compare_exchange_weak(peak,
                                                           peakNow)) {
                }
            } else if (io.status == IoStatus::WouldBlock) {
                return;
            } else if (io.status == IoStatus::Eof) {
                flow.srcEof = true;
                if (flow.pending() == 0)
                    shutSink(link, d);
                return;
            } else {
                killLink(link, false);
                return;
            }
        }
    }

    /** True when direction @p d is parked by an armed Stall (so the
     *  loop must not poll POLLOUT for it — buffered bytes wait). */
    bool stalled(const Link& link, std::size_t d,
                 const FaultScript& script) const
    {
        return script.kind == FaultKind::Stall &&
               flowIndex(script.direction) == d &&
               link.flow[d].forwarded >= script.afterBytes;
    }

    /** Writes direction @p d's buffered bytes to its sink, applying
     *  the armed fault at its exact byte offset. */
    void pumpWrite(Link& link, std::size_t d,
                   const FaultScript& script)
    {
        Flow& flow = link.flow[d];
        Connection& sink = d == kC2S ? link.upstream : link.client;
        const bool scripted = script.kind != FaultKind::None &&
                              flowIndex(script.direction) == d;
        if (scripted && flow.forwarded >= script.afterBytes) {
            switch (script.kind) {
            case FaultKind::Close:
                fireFault(link);
                killLink(link, true);
                return;
            case FaultKind::Stall:
                // Hold the bytes; the link stays open. Observably
                // fired once something is actually being withheld.
                if (flow.pending() > 0)
                    fireFault(link);
                return;
            case FaultKind::HalfClose:
                fireFault(link);
                shutSink(link, d);
                flow.discarding = true;
                flow.buf.clear();
                flow.off = 0;
                return;
            case FaultKind::Truncate:
                fireFault(link);
                flow.discarding = true;
                flow.buf.clear();
                flow.off = 0;
                return;
            case FaultKind::None:
                break;
            }
        }
        while (!link.dead && flow.pending() > 0 && sink.valid() &&
               !flow.sinkShut) {
            std::uint64_t want = flow.pending();
            if (scripted)
                want = std::min(want,
                                script.afterBytes - flow.forwarded);
            if (config.seed != 0 && config.maxChunkBytes > 0)
                want = std::min(
                    want, 1 + link.rng() % config.maxChunkBytes);
            const IoResult io = sink.writeSome(
                flow.buf.data() + flow.off,
                static_cast<std::size_t>(want));
            if (io.status == IoStatus::Ok) {
                flow.off += io.bytes;
                flow.forwarded += io.bytes;
                (d == kC2S ? bytesC2S : bytesS2C)
                    .fetch_add(io.bytes);
                if (scripted && flow.forwarded >= script.afterBytes)
                    return;  // Fault fires on the next sweep.
                if (config.seed != 0 && config.maxChunkBytes > 0)
                    return;  // One chunk per pass: real short writes.
            } else if (io.status == IoStatus::WouldBlock) {
                break;
            } else {
                killLink(link, false);
                return;
            }
        }
        if (flow.pending() == 0) {
            flow.buf.clear();
            flow.off = 0;
            if (flow.srcEof)
                shutSink(link, d);
        }
    }

    void loop()
    {
        std::vector<pollfd> fds;
        std::vector<Link*> polled;
        while (true) {
            FaultScript script;
            std::string host;
            std::uint16_t port = 0;
            std::uint64_t killGen = 0;
            {
                std::lock_guard<std::mutex> lock(controlMutex);
                script = currentScript;
                host = targetHost;
                port = targetPort;
                killGen = killGeneration;
            }
            if (killGen != killGenSeen) {
                killGenSeen = killGen;
                for (auto& link : links)
                    killLink(*link, true);
            }
            if (stopRequested.load())
                break;

            for (auto it = links.begin(); it != links.end();) {
                Link& link = **it;
                const bool done =
                    link.dead ||
                    (link.flow[kC2S].srcEof && link.flow[kS2C].srcEof &&
                     link.flow[kC2S].pending() == 0 &&
                     link.flow[kS2C].pending() == 0);
                it = done ? links.erase(it) : it + 1;
            }
            linksOpen.store(links.size());

            fds.clear();
            polled.clear();
            fds.push_back({wakeRead, POLLIN, 0});
            if (listener.valid())
                fds.push_back({listener.fd(), POLLIN, 0});
            for (auto& linkPtr : links) {
                Link& link = *linkPtr;
                short clientEvents = 0;
                short upstreamEvents = 0;
                const Flow& c2s = link.flow[kC2S];
                const Flow& s2c = link.flow[kS2C];
                if (!c2s.srcEof &&
                    (c2s.discarding ||
                     c2s.pending() < config.maxBufferBytes))
                    clientEvents |= POLLIN;
                if (s2c.pending() > 0 && !s2c.sinkShut &&
                    !stalled(link, kS2C, script))
                    clientEvents |= POLLOUT;
                if (link.connecting) {
                    upstreamEvents |= POLLOUT;
                } else {
                    if (!s2c.srcEof &&
                        (s2c.discarding ||
                         s2c.pending() < config.maxBufferBytes))
                        upstreamEvents |= POLLIN;
                    if (c2s.pending() > 0 && !c2s.sinkShut &&
                        !stalled(link, kC2S, script))
                        upstreamEvents |= POLLOUT;
                }
                fds.push_back({link.client.fd(), clientEvents, 0});
                fds.push_back({link.upstream.fd(), upstreamEvents, 0});
                polled.push_back(linkPtr.get());
            }

            const int rc = ::poll(fds.data(),
                                  static_cast<nfds_t>(fds.size()), -1);
            if (rc < 0 && errno != EINTR)
                fatal("FaultProxy: poll() failed");

            std::size_t index = 0;
            if (fds[index].revents & POLLIN)
                drainWakePipe();
            ++index;
            if (listener.valid()) {
                if (fds[index].revents & POLLIN)
                    acceptPending(host, port);
                ++index;
            }
            for (std::size_t l = 0; l < polled.size();
                 ++l, index += 2) {
                Link& link = *polled[l];
                const short clientRe = fds[index].revents;
                const short upstreamRe = fds[index + 1].revents;
                if (clientRe & (POLLERR | POLLNVAL)) {
                    killLink(link, false);
                    continue;
                }
                if (link.connecting &&
                    (upstreamRe & (POLLOUT | POLLERR | POLLHUP))) {
                    Result<bool> up = link.upstream.finishConnect();
                    if (!up) {
                        killLink(link, true);
                        continue;
                    }
                    link.connecting = false;
                }
                if (!link.connecting &&
                    (upstreamRe & (POLLERR | POLLNVAL))) {
                    killLink(link, false);
                    continue;
                }
                if (clientRe & (POLLIN | POLLHUP))
                    pumpRead(link, kC2S);
                if (!link.connecting &&
                    (upstreamRe & (POLLIN | POLLHUP)))
                    pumpRead(link, kS2C);
            }

            // Progress sweep: new bytes were buffered above, faults
            // may be due at their exact offset — don't wait a poll
            // round to act on either.
            for (auto& link : links) {
                if (link->dead || link->connecting)
                    continue;
                pumpWrite(*link, kC2S, script);
                if (!link->dead)
                    pumpWrite(*link, kS2C, script);
            }
        }
        listener.close();
        for (auto& link : links)
            killLink(*link, false);
        links.clear();
        linksOpen.store(0);
    }

    void acceptPending(const std::string& host, std::uint16_t port)
    {
        while (true) {
            Connection socket = listener.accept();
            if (!socket.valid())
                break;
            accepted.fetch_add(1);
            auto link = std::make_unique<Link>();
            link->client = std::move(socket);
            link->rng.seed(config.seed ^ accepted.load());
            Result<Connection> upstream =
                Connection::connectStart(host, port);
            if (!upstream) {
                killed.fetch_add(1);
                continue;  // Link dies before it exists.
            }
            link->upstream = std::move(upstream.value());
            links.push_back(std::move(link));
        }
    }

    FaultProxyConfig config;
    TcpListener listener;
    int wakeRead = -1;
    int wakeWrite = -1;

    std::mutex controlMutex;
    FaultScript currentScript;   ///< Guarded by controlMutex.
    std::string targetHost;      ///< Guarded by controlMutex.
    std::uint16_t targetPort = 0;  ///< Guarded by controlMutex.
    std::uint64_t killGeneration = 0;  ///< Guarded by controlMutex.
    std::uint64_t killGenSeen = 0;     ///< Loop-thread only.

    std::atomic<bool> stopRequested{false};
    std::vector<std::unique_ptr<Link>> links;

    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> killed{0};
    std::atomic<std::uint64_t> faultsInjected{0};
    std::atomic<std::uint64_t> bytesC2S{0};
    std::atomic<std::uint64_t> bytesS2C{0};
    std::atomic<std::uint64_t> peakBuffered{0};
    std::atomic<std::size_t> linksOpen{0};
};

FaultProxy::FaultProxy(FaultProxyConfig config)
    : impl_(std::make_unique<Impl>(std::move(config)))
{
    impl_->targetHost = impl_->config.targetHost;
    impl_->targetPort = impl_->config.targetPort;
}

FaultProxy::~FaultProxy()
{
    stop();
}

Result<bool>
FaultProxy::start()
{
    Result<TcpListener> listener = TcpListener::bind(
        impl_->config.listenHost, impl_->config.listenPort);
    if (!listener)
        return listener.error();
    impl_->listener = std::move(listener.value());
    loop_thread_ = std::thread([this] { impl_->loop(); });
    return true;
}

std::uint16_t
FaultProxy::port() const
{
    return impl_->listener.port();
}

void
FaultProxy::stop()
{
    impl_->stopRequested.store(true);
    impl_->wake();
    if (loop_thread_.joinable())
        loop_thread_.join();
}

void
FaultProxy::setFault(const FaultScript& script)
{
    {
        std::lock_guard<std::mutex> lock(impl_->controlMutex);
        impl_->currentScript = script;
    }
    impl_->wake();
}

void
FaultProxy::clearFault()
{
    setFault(FaultScript{});
}

void
FaultProxy::setTarget(const std::string& host, std::uint16_t port)
{
    {
        std::lock_guard<std::mutex> lock(impl_->controlMutex);
        impl_->targetHost = host;
        impl_->targetPort = port;
    }
    impl_->wake();
}

void
FaultProxy::killConnections()
{
    {
        std::lock_guard<std::mutex> lock(impl_->controlMutex);
        ++impl_->killGeneration;
    }
    impl_->wake();
}

FaultProxyStats
FaultProxy::stats() const
{
    FaultProxyStats out;
    out.connectionsAccepted = impl_->accepted.load();
    out.connectionsKilled = impl_->killed.load();
    out.faultsInjected = impl_->faultsInjected.load();
    out.bytesClientToServer = impl_->bytesC2S.load();
    out.bytesServerToClient = impl_->bytesS2C.load();
    out.peakBufferedBytes = impl_->peakBuffered.load();
    out.linksOpen = impl_->linksOpen.load();
    return out;
}

}  // namespace ftsim
