#include "net/framing.hpp"

#include <cstring>

namespace ftsim {

void
LineFramer::feed(const char* data, std::size_t n)
{
    std::size_t pos = 0;
    while (pos < n) {
        const char* newline = static_cast<const char*>(
            std::memchr(data + pos, '\n', n - pos));
        const std::size_t chunk_end =
            newline != nullptr
                ? static_cast<std::size_t>(newline - data)
                : n;

        if (discarding_) {
            // Tail of an oversized line: drop bytes until its newline.
            if (newline != nullptr)
                discarding_ = false;
        } else {
            const std::size_t take = chunk_end - pos;
            if (partial_.size() + take > max_line_) {
                // Crossed the cap mid-line: one overflow frame, then
                // discard the rest of the line (bounded memory — the
                // partial buffer never exceeds the cap).
                Frame frame;
                frame.overflow = true;
                ready_.push_back(std::move(frame));
                partial_.clear();
                // If this chunk already contains the newline, the
                // discard ends here; otherwise keep discarding.
                discarding_ = newline == nullptr;
            } else {
                partial_.append(data + pos, take);
                if (newline != nullptr) {
                    if (!partial_.empty() && partial_.back() == '\r')
                        partial_.pop_back();
                    Frame frame;
                    frame.line = std::move(partial_);
                    ready_.push_back(std::move(frame));
                    partial_.clear();
                }
            }
        }
        pos = newline != nullptr ? chunk_end + 1 : n;
    }
}

bool
LineFramer::next(Frame& out)
{
    if (ready_.empty())
        return false;
    out = std::move(ready_.front());
    ready_.pop_front();
    return true;
}

}  // namespace ftsim
