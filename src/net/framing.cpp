#include "net/framing.hpp"

#include <algorithm>
#include <cstring>

#include "common/logging.hpp"
#include "serve/wire.hpp"

namespace ftsim {

void
LineFramer::feed(const char* data, std::size_t n)
{
    std::size_t pos = 0;
    while (pos < n) {
        const char* newline = static_cast<const char*>(
            std::memchr(data + pos, '\n', n - pos));
        const std::size_t chunk_end =
            newline != nullptr
                ? static_cast<std::size_t>(newline - data)
                : n;

        if (discarding_) {
            // Tail of an oversized line: drop bytes until its newline.
            if (newline != nullptr)
                discarding_ = false;
        } else {
            const std::size_t take = chunk_end - pos;
            if (partial_.size() + take > max_line_) {
                // Crossed the cap mid-line: one overflow frame, then
                // discard the rest of the line (bounded memory — the
                // partial buffer never exceeds the cap).
                Frame frame;
                frame.overflow = true;
                ready_.push_back(std::move(frame));
                partial_.clear();
                // If this chunk already contains the newline, the
                // discard ends here; otherwise keep discarding.
                discarding_ = newline == nullptr;
            } else {
                partial_.append(data + pos, take);
                if (newline != nullptr) {
                    if (!partial_.empty() && partial_.back() == '\r')
                        partial_.pop_back();
                    Frame frame;
                    frame.line = std::move(partial_);
                    ready_.push_back(std::move(frame));
                    partial_.clear();
                }
            }
        }
        pos = newline != nullptr ? chunk_end + 1 : n;
    }
}

bool
LineFramer::next(Frame& out)
{
    if (ready_.empty())
        return false;
    out = std::move(ready_.front());
    ready_.pop_front();
    return true;
}

void
BinaryFramer::poison(std::string reason)
{
    poisoned_ = true;
    poison_reason_ = std::move(reason);
    header_.clear();
    payload_.clear();
    want_ = 0;
}

std::size_t
BinaryFramer::feed(const char* data, std::size_t n)
{
    if (poisoned_)
        return 0;
    std::size_t consumed = 0;
    if (header_.size() < kWireHeaderBytes) {
        const std::size_t take = std::min(
            kWireHeaderBytes - header_.size(), n - consumed);
        header_.append(data + consumed, take);
        consumed += take;
        if (header_.size() < kWireHeaderBytes)
            return consumed;  // Mid-header; wait for more bytes.
        Result<std::uint32_t> len = parseWireHeader(
            reinterpret_cast<const unsigned char*>(header_.data()));
        if (!len) {
            poison(len.error().message);
            return consumed;
        }
        if (len.value() > max_payload_) {
            poison(strCat("frame payload of ", len.value(),
                          " bytes exceeds the ", max_payload_,
                          "-byte cap"));
            return consumed;
        }
        want_ = len.value();
    }
    const std::size_t take =
        std::min(want_ - payload_.size(), n - consumed);
    payload_.append(data + consumed, take);
    consumed += take;
    if (payload_.size() == want_) {
        Frame frame;
        frame.payload = std::move(payload_);
        ready_.push_back(std::move(frame));
        header_.clear();
        payload_.clear();
        want_ = 0;
        // Stop here even if bytes remain: the caller re-dispatches
        // the next frame's first byte.
    }
    return consumed;
}

bool
BinaryFramer::next(Frame& out)
{
    if (ready_.empty())
        return false;
    out = std::move(ready_.front());
    ready_.pop_front();
    return true;
}

void
WireFramer::feed(const char* data, std::size_t n)
{
    std::size_t pos = 0;
    while (pos < n) {
        if (binary_.poisoned())
            return;  // Dead stream: drop everything after the damage.
        if (mode_ == Mode::Idle)
            mode_ = static_cast<unsigned char>(data[pos]) == kWireMagic
                        ? Mode::Binary
                        : Mode::Json;
        if (mode_ == Mode::Json) {
            // Feed through the end of this line only, so the byte
            // after the '\n' gets its own codec dispatch.
            const char* newline = static_cast<const char*>(
                std::memchr(data + pos, '\n', n - pos));
            const std::size_t take =
                newline != nullptr
                    ? static_cast<std::size_t>(newline - data) + 1 -
                          pos
                    : n - pos;
            line_.feed(data + pos, take);
            pos += take;
            LineFramer::Frame lf;
            while (line_.next(lf)) {
                Frame frame;
                frame.overflow = lf.overflow;
                frame.payload = std::move(lf.line);
                ready_.push_back(std::move(frame));
            }
            if (newline != nullptr && !line_.discarding())
                mode_ = Mode::Idle;
        } else {
            pos += binary_.feed(data + pos, n - pos);
            BinaryFramer::Frame bf;
            while (binary_.next(bf)) {
                Frame frame;
                frame.binary = true;
                frame.payload = std::move(bf.payload);
                ready_.push_back(std::move(frame));
            }
            if (!binary_.poisoned() && !binary_.midFrame())
                mode_ = Mode::Idle;
        }
    }
}

bool
WireFramer::next(Frame& out)
{
    if (ready_.empty())
        return false;
    out = std::move(ready_.front());
    ready_.pop_front();
    return true;
}

}  // namespace ftsim
