#include "net/client.hpp"

#include <chrono>
#include <cmath>
#include <poll.h>
#include <sys/socket.h>

#include "common/logging.hpp"

namespace ftsim {

namespace {

double
monotonicMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

Result<NetClient>
NetClient::connectTo(const std::string& host, std::uint16_t port,
                     double timeoutMs)
{
    NetClient client;
    client.timeout_ms_ = timeoutMs;
    if (timeoutMs <= 0.0) {
        Result<Connection> connection =
            Connection::connectTo(host, port);
        if (!connection)
            return connection.error();
        client.connection_ = std::move(connection.value());
        return client;
    }
    // Bounded connect: non-blocking handshake + poll. The fd stays
    // non-blocking afterwards — sendLine/recvLine poll with the same
    // deadline instead of relying on blocking reads.
    Result<Connection> connection =
        Connection::connectStart(host, port);
    if (!connection)
        return connection.error();
    client.connection_ = std::move(connection.value());
    pollfd pfd{client.connection_.fd(), POLLOUT, 0};
    const int rc =
        ::poll(&pfd, 1, static_cast<int>(std::ceil(timeoutMs)));
    if (rc <= 0)
        return Error{ErrorCode::Unavailable,
                     strCat("connect to ", host, ':', port,
                            " timed out after ", timeoutMs, " ms")};
    Result<bool> finished = client.connection_.finishConnect();
    if (!finished)
        return finished.error();
    return client;
}

Result<bool>
NetClient::waitReady(short events, double deadlineMs)
{
    const double remaining = deadlineMs - monotonicMs();
    if (remaining <= 0.0)
        return Error{ErrorCode::Unavailable,
                     strCat("operation timed out after ", timeout_ms_,
                            " ms")};
    pollfd pfd{connection_.fd(), events, 0};
    const int rc =
        ::poll(&pfd, 1, static_cast<int>(std::ceil(remaining)));
    if (rc == 0)
        return Error{ErrorCode::Unavailable,
                     strCat("operation timed out after ", timeout_ms_,
                            " ms")};
    if (rc < 0 && errno != EINTR)
        return Error{ErrorCode::InvalidArgument,
                     "poll() failed while waiting on the socket"};
    return true;
}

Result<bool>
NetClient::sendLine(const std::string& line)
{
    std::string framed = line;
    framed.push_back('\n');
    return sendBytes(framed);
}

Result<bool>
NetClient::sendBytes(const std::string& bytes)
{
    const double deadline = monotonicMs() + timeout_ms_;
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const IoResult io =
            connection_.writeSome(bytes.data() + sent,
                                  bytes.size() - sent);
        if (io.status == IoStatus::Ok) {
            sent += io.bytes;
        } else if (io.status == IoStatus::WouldBlock) {
            // Blocking fd: only transient EINTR lands here. With a
            // timeout the fd is non-blocking and the deadline gates
            // the poll.
            if (timeout_ms_ > 0.0) {
                Result<bool> ready = waitReady(POLLOUT, deadline);
                if (!ready)
                    return ready.error();
            }
            continue;
        } else {
            return Error{ErrorCode::InvalidArgument,
                         "connection closed while sending"};
        }
    }
    return true;
}

Result<std::string>
NetClient::recvLine()
{
    const double deadline = monotonicMs() + timeout_ms_;
    while (true) {
        const std::size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            std::string line = buffer_.substr(0, newline);
            buffer_.erase(0, newline + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return line;
        }
        if (timeout_ms_ > 0.0) {
            // A wedged peer must yield a typed error, not an infinite
            // block: wait for readability within the deadline before
            // touching the (possibly blocking) fd.
            Result<bool> ready = waitReady(POLLIN, deadline);
            if (!ready)
                return ready.error();
        }
        char chunk[4096];
        const IoResult io = connection_.readSome(chunk, sizeof(chunk));
        if (io.status == IoStatus::Ok) {
            buffer_.append(chunk, io.bytes);
        } else if (io.status == IoStatus::WouldBlock) {
            continue;  // Blocking fd: only transient EINTR lands here.
        } else if (io.status == IoStatus::Eof) {
            return Error{ErrorCode::InvalidArgument,
                         "connection closed before a full response "
                         "line arrived"};
        } else {
            return Error{ErrorCode::InvalidArgument,
                         "socket error while reading"};
        }
    }
}

Result<WireFramer::Frame>
NetClient::recvFrame()
{
    const double deadline = monotonicMs() + timeout_ms_;
    while (true) {
        WireFramer::Frame frame;
        if (framer_.next(frame))
            return frame;
        if (framer_.poisoned())
            return Error{ErrorCode::InvalidArgument,
                         strCat("bad frame from server: ",
                                framer_.poisonReason())};
        if (timeout_ms_ > 0.0) {
            Result<bool> ready = waitReady(POLLIN, deadline);
            if (!ready)
                return ready.error();
        }
        char chunk[4096];
        const IoResult io = connection_.readSome(chunk, sizeof(chunk));
        if (io.status == IoStatus::Ok) {
            framer_.feed(chunk, io.bytes);
        } else if (io.status == IoStatus::WouldBlock) {
            continue;  // Blocking fd: only transient EINTR lands here.
        } else if (io.status == IoStatus::Eof) {
            if (framer_.midBinaryFrame())
                return Error{ErrorCode::InvalidArgument,
                             "connection closed mid-frame"};
            return Error{ErrorCode::InvalidArgument,
                         "connection closed before a full response "
                         "frame arrived"};
        } else {
            return Error{ErrorCode::InvalidArgument,
                         "socket error while reading"};
        }
    }
}

Result<std::string>
NetClient::ask(const std::string& line)
{
    Result<bool> sent = sendLine(line);
    if (!sent)
        return sent.error();
    return recvLine();
}

void
NetClient::finishSending()
{
    if (connection_.valid())
        ::shutdown(connection_.fd(), SHUT_WR);
}

}  // namespace ftsim
