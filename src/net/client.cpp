#include "net/client.hpp"

#include <sys/socket.h>

#include "common/logging.hpp"

namespace ftsim {

Result<NetClient>
NetClient::connectTo(const std::string& host, std::uint16_t port)
{
    Result<Connection> connection = Connection::connectTo(host, port);
    if (!connection)
        return connection.error();
    NetClient client;
    client.connection_ = std::move(connection.value());
    return client;
}

Result<bool>
NetClient::sendLine(const std::string& line)
{
    std::string framed = line;
    framed.push_back('\n');
    std::size_t sent = 0;
    while (sent < framed.size()) {
        const IoResult io =
            connection_.writeSome(framed.data() + sent,
                                  framed.size() - sent);
        if (io.status == IoStatus::Ok) {
            sent += io.bytes;
        } else if (io.status == IoStatus::WouldBlock) {
            continue;  // Blocking fd: only transient EINTR lands here.
        } else {
            return Error{ErrorCode::InvalidArgument,
                         "connection closed while sending"};
        }
    }
    return true;
}

Result<std::string>
NetClient::recvLine()
{
    while (true) {
        const std::size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            std::string line = buffer_.substr(0, newline);
            buffer_.erase(0, newline + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            return line;
        }
        char chunk[4096];
        const IoResult io = connection_.readSome(chunk, sizeof(chunk));
        if (io.status == IoStatus::Ok) {
            buffer_.append(chunk, io.bytes);
        } else if (io.status == IoStatus::WouldBlock) {
            continue;  // Blocking fd: only transient EINTR lands here.
        } else if (io.status == IoStatus::Eof) {
            return Error{ErrorCode::InvalidArgument,
                         "connection closed before a full response "
                         "line arrived"};
        } else {
            return Error{ErrorCode::InvalidArgument,
                         "socket error while reading"};
        }
    }
}

Result<std::string>
NetClient::ask(const std::string& line)
{
    Result<bool> sent = sendLine(line);
    if (!sent)
        return sent.error();
    return recvLine();
}

void
NetClient::finishSending()
{
    if (connection_.valid())
        ::shutdown(connection_.fd(), SHUT_WR);
}

}  // namespace ftsim
