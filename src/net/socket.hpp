#ifndef FTSIM_NET_SOCKET_HPP
#define FTSIM_NET_SOCKET_HPP

/**
 * @file
 * Dependency-free POSIX TCP primitives for the serving front end.
 *
 * Two small RAII types wrap the raw socket API the way `common/table`
 * wraps formatting: no external library, no exceptions on the data
 * path, everything a `Result` or a status enum the caller branches on.
 *
 *  - `TcpListener` binds/listens on a host:port (port 0 = ephemeral;
 *    `port()` reports the kernel's pick) and accepts non-blocking
 *    `Connection`s.
 *  - `Connection` is one accepted (or connected) stream. `readSome` /
 *    `writeSome` never block: they return `IoStatus::WouldBlock` when
 *    the kernel buffer is empty/full, which is the poll loop's cue to
 *    wait for readiness. Blocking callers (the client) use
 *    `Connection::connectTo`, which leaves the fd in blocking mode.
 *
 * Both types are move-only; destruction closes the fd. Network errors
 * surface as `ErrorCode::InvalidArgument` results (the service's
 * catch-all for "the caller's environment is wrong") with the errno
 * text attached — callers treat any error as fatal for that socket,
 * never for the process.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "common/result.hpp"

namespace ftsim {

/** Outcome of one non-blocking read/write attempt. */
enum class IoStatus {
    Ok,          ///< `bytes` were transferred (> 0).
    WouldBlock,  ///< Kernel buffer empty/full; poll for readiness.
    Eof,         ///< Peer closed its end (reads only).
    Error,       ///< Hard socket error; close the connection.
};

/** Result of Connection::readSome / writeSome. */
struct IoResult {
    IoStatus status = IoStatus::Error;
    std::size_t bytes = 0;
};

/** One TCP stream (accepted or connected); move-only RAII fd. */
class Connection {
  public:
    Connection() = default;
    /** Adopts @p fd (takes ownership). @p peer is a display label. */
    Connection(int fd, std::string peer);
    ~Connection();

    Connection(Connection&& other) noexcept;
    Connection& operator=(Connection&& other) noexcept;
    Connection(const Connection&) = delete;
    Connection& operator=(const Connection&) = delete;

    /**
     * Blocking connect to @p host:@p port (numeric IPv4 or a name
     * resolvable via getaddrinfo, e.g. "localhost"). The returned
     * connection stays in blocking mode — it is the client-side
     * constructor; servers get non-blocking fds from TcpListener.
     */
    static Result<Connection> connectTo(const std::string& host,
                                        std::uint16_t port);

    /**
     * Begins a *non-blocking* connect to @p host:@p port and returns
     * with the handshake still in flight (the fd is non-blocking).
     * Poll the fd for POLLOUT, then call finishConnect() for the
     * outcome — how the router's heal loop re-dials dead shards
     * without ever blocking its event loop.
     */
    static Result<Connection> connectStart(const std::string& host,
                                           std::uint16_t port);

    /**
     * Resolves a connectStart() handshake once the fd polls POLLOUT
     * (or POLLERR): true when the connection is established, the
     * peer's refusal as a typed error (fd closed) otherwise.
     */
    Result<bool> finishConnect();

    /** True while the fd is open. */
    bool valid() const { return fd_ >= 0; }

    int fd() const { return fd_; }

    /** "ip:port" of the remote end (best effort). */
    const std::string& peer() const { return peer_; }

    /** One read(2); at most @p cap bytes into @p buf. */
    IoResult readSome(char* buf, std::size_t cap);

    /** One write(2); at most @p len bytes from @p buf. */
    IoResult writeSome(const char* buf, std::size_t len);

    /** Closes the fd now (destructor-safe to call again). */
    void close();

  private:
    int fd_ = -1;
    std::string peer_;
};

/** Listening TCP socket; accepts non-blocking Connections. */
class TcpListener {
  public:
    TcpListener() = default;
    ~TcpListener();

    TcpListener(TcpListener&& other) noexcept;
    TcpListener& operator=(TcpListener&& other) noexcept;
    TcpListener(const TcpListener&) = delete;
    TcpListener& operator=(const TcpListener&) = delete;

    /**
     * Binds and listens on @p host:@p port with SO_REUSEADDR. Port 0
     * asks the kernel for an ephemeral port — read it back via
     * `port()` (how the tests and ci.sh avoid fixed-port collisions).
     * The listening fd is non-blocking.
     */
    static Result<TcpListener> bind(const std::string& host,
                                    std::uint16_t port,
                                    int backlog = 128);

    bool valid() const { return fd_ >= 0; }

    int fd() const { return fd_; }

    /** The bound port (the kernel's pick when bind asked for 0). */
    std::uint16_t port() const { return port_; }

    /**
     * Accepts one pending connection, non-blocking fd, or an
     * invalid Connection when none is pending (the poll loop's
     * "drained the backlog" signal). Hard accept errors also return
     * invalid — the listener itself stays usable.
     */
    Connection accept();

    /** Stops listening (closes the fd; pending connects are reset). */
    void close();

  private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
};

/** Sets O_NONBLOCK on @p fd; returns false on fcntl failure. */
bool setNonBlocking(int fd);

}  // namespace ftsim

#endif  // FTSIM_NET_SOCKET_HPP
