#ifndef FTSIM_NET_SERVER_HPP
#define FTSIM_NET_SERVER_HPP

/**
 * @file
 * The network front end: a poll-based TCP server over the
 * `PlanService` JSON-lines protocol.
 *
 * `NetServer` owns one `TcpListener`, one in-process `PlanService`,
 * and a single poll(2) event loop. Connections are non-blocking;
 * requests are framed by `WireFramer` (see net/framing.hpp), which
 * negotiates per frame between the JSON-lines codec and the binary
 * wire format of serve/wire.hpp — a frame opening with 0xF7 is
 * binary, anything else is a JSON line, and each response is written
 * in its request's format. Frames are parsed/decoded and submitted
 * to the service with a per-connection source label and a completion
 * callback that kicks the loop's wake pipe. Responses are written
 * back **per connection in request order** — answers compute out of
 * order across the worker pool, but each connection's pending queue
 * re-sequences them, exactly like `ftsim_serve` re-sequences a file.
 *
 * Error containment mirrors the in-process service:
 *  - a frame that fails to parse/decode answers a typed protocol
 *    error in its slot and the connection keeps serving;
 *  - a JSON line that crosses the frame cap answers a protocol error
 *    and the rest of that line is discarded;
 *  - binary *framing* damage (bad magic/version, zero or over-cap
 *    length prefix, a frame truncated by EOF) cannot be recovered
 *    from — the connection answers one final error frame and closes;
 *    only that connection dies, never the process;
 *  - quota overflow answers `{"ok":false,"error":"RateLimited",...}`;
 *  - a socket error poisons only its connection, never the process.
 *
 * Shutdown (`requestStop()`, safe to call from a signal handler —
 * it only stores an atomic and writes one byte to the wake pipe):
 * the loop stops accepting and stops *reading*, but every request
 * already admitted drains — its answer is computed, written back, and
 * flushed — before the connections and the listener close. SIGTERM
 * never loses an in-flight answer.
 *
 * Concurrency model: one loop thread does all socket IO and all
 * framing/parsing; the PlanService worker pool does all planning. The
 * loop never blocks on a computation (futures are polled only when
 * ready, the wake pipe signals readiness), and workers never touch a
 * socket. `run()` drives the loop on the caller's thread (the daemon);
 * `start()` spawns it on a background thread (tests, the bench).
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/result.hpp"
#include "serve/plan_service.hpp"

namespace ftsim {

/** Construction knobs for a NetServer. */
struct NetServerConfig {
    /** Bind address (numeric IPv4 or resolvable name). */
    std::string host = "127.0.0.1";
    /** Bind port; 0 = kernel-assigned (read back via port()). */
    std::uint16_t port = 0;
    /**
     * Open connections served at once. At the cap the listener is
     * simply not polled — further connects queue in the kernel backlog
     * until a slot frees instead of being reset.
     */
    std::size_t maxConnections = 64;
    /**
     * Close a connection with no in-flight requests after this much
     * quiet, ms; 0 = never. Clients are expected to reconnect.
     */
    double idleTimeoutMs = 0.0;
    /** Frame cap: longest accepted request line, bytes. */
    std::size_t maxLineBytes = 1 << 20;
    /**
     * Graceful-shutdown patience, ms: once a stop is requested, a
     * connection that still has unflushed output (or unanswered
     * requests) after this long is force-closed instead of holding
     * the drain hostage — a stalled peer that never reads must not
     * turn SIGTERM into a hang. 0 = wait forever (the pre-deadline
     * behavior). Counted in NetServerStats::forcedClosed.
     */
    double drainDeadlineMs = 0.0;
    /**
     * SO_SNDBUF for accepted connections, bytes; 0 = kernel default.
     * Mainly a test knob: a tiny buffer makes "peer stopped reading"
     * reproducible without megabytes of traffic.
     */
    int sendBufferBytes = 0;
    /**
     * Virtual clock in ms for the loop's timers (idle timeout, drain
     * deadline); null = the real monotonic clock. Tests inject a
     * controllable clock to cross the drain deadline deterministically.
     * Independent of ServiceConfig::clock (admission timing).
     */
    std::function<double()> clock;
    /** The in-process service being fronted (governance included). */
    ServiceConfig service;
};

/** Aggregate front-end counters (service stats live one level down).
 *  A view over the server's StatsRegistry `net.*` cells since ISSUE-8:
 *  the live `stats` scrape and this struct always agree. */
struct NetServerStats {
    std::uint64_t connectionsAccepted = 0;
    std::uint64_t connectionsClosed = 0;
    /** Connections open right now. */
    std::uint64_t connectionsOpen = 0;
    /** Requests submitted to the service (both wire formats). */
    std::uint64_t requests = 0;
    /** Responses written back (both wire formats). */
    std::uint64_t responses = 0;
    /** Frames answered with a protocol error (parse/decode failure). */
    std::uint64_t protocolErrors = 0;
    /** JSON lines that crossed the frame cap. */
    std::uint64_t oversizedLines = 0;
    /** Requests that arrived as binary frames (subset of requests). */
    std::uint64_t binaryRequests = 0;
    /** Connections killed by binary framing damage (bad header,
     *  over-cap length, truncation). */
    std::uint64_t wirePoisoned = 0;
    /** Connections closed by the idle timeout. */
    std::uint64_t idleClosed = 0;
    /** Connections force-closed at the drain deadline with answers
     *  still unflushed. */
    std::uint64_t forcedClosed = 0;
};

/** Poll-based TCP front end over a PlanService (see file comment). */
class NetServer {
  public:
    explicit NetServer(NetServerConfig config = {});

    /** Stops the loop (dropping unflushed writes), joins, closes. */
    ~NetServer();

    NetServer(const NetServer&) = delete;
    NetServer& operator=(const NetServer&) = delete;

    /** Binds + listens. Must succeed before run()/start(). */
    Result<bool> bindListener();

    /** The bound port (after bindListener; 0 before). */
    std::uint16_t port() const;

    /** Runs the event loop on this thread until requestStop(). */
    void run();

    /** bindListener() + run() on a background thread. */
    Result<bool> start();

    /**
     * Asks the loop to shut down gracefully: stop accepting, stop
     * reading, drain every admitted request, flush, close. Safe from
     * any thread and from a signal handler (atomic store + one
     * write(2) on the wake pipe; no locks).
     */
    void requestStop();

    /** requestStop() + join the start() thread (no-op without one). */
    void stop();

    /** True once run() has returned. */
    bool stopped() const { return loop_done_.load(); }

    /** The fronted service (stats, registry). */
    PlanService& service();

    /** The shard-wide stats registry: this front end's `net.*` cells
     *  and the fronted service's `serve.*`/`planner.*` cells live in
     *  the same instance (one `stats` scrape covers the process).
     *  Shared from NetServerConfig::service.statsRegistry when set. */
    const std::shared_ptr<StatsRegistry>& statsRegistry() const;

    /** Front-end counters (loop-thread maintained; read after stop()
     *  for exact values, mid-run for a live approximation). */
    NetServerStats stats() const;

  private:
    struct Impl;  ///< Poll loop internals (connections live here).
    std::unique_ptr<Impl> impl_;
    std::thread loop_thread_;
    std::atomic<bool> loop_done_{false};
};

}  // namespace ftsim

#endif  // FTSIM_NET_SERVER_HPP
