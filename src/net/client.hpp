#ifndef FTSIM_NET_CLIENT_HPP
#define FTSIM_NET_CLIENT_HPP

/**
 * @file
 * Blocking JSON-lines client for `ftsim_served`.
 *
 * One `NetClient` is one TCP connection speaking the serve protocol:
 * send request lines, read response lines. The server answers each
 * connection's requests *in request order*, so a client may pipeline —
 * send N lines, then read N responses — which is exactly what the
 * `ftsim_client` tool, the socket tests, and `bench_net_load` do.
 *
 * Deliberately blocking and single-threaded: the poll-based machinery
 * lives server-side; a client that wants concurrency opens more
 * connections (the bench opens 64).
 */

#include <cstdint>
#include <string>

#include "common/result.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"

namespace ftsim {

/** Blocking line-protocol client (see file comment). */
class NetClient {
  public:
    NetClient() = default;

    /**
     * Connects to @p host:@p port. @p timeoutMs > 0 bounds the connect
     * handshake AND becomes the per-operation deadline for every later
     * sendLine/recvLine (a wedged peer yields a typed `Unavailable`
     * instead of an infinite block — how ci.sh e2e scripts can never
     * hang). 0 keeps the legacy fully-blocking behavior.
     */
    static Result<NetClient> connectTo(const std::string& host,
                                       std::uint16_t port,
                                       double timeoutMs = 0.0);

    /** Per-operation deadline for sendLine/recvLine; <= 0 = block
     *  forever (the pre-timeout contract). */
    void setTimeout(double timeoutMs) { timeout_ms_ = timeoutMs; }

    bool connected() const { return connection_.valid(); }

    /** Sends @p line plus the '\n' terminator (blocking, full). */
    Result<bool> sendLine(const std::string& line);

    /**
     * Blocks until one full response line arrives and returns it
     * without the terminator. `InvalidArgument` on EOF or a socket
     * error — for a pipelined exchange EOF mid-read means the server
     * dropped the connection.
     */
    Result<std::string> recvLine();

    /** sendLine + recvLine: one synchronous request/response. */
    Result<std::string> ask(const std::string& line);

    /** Sends @p bytes verbatim — a pre-encoded binary frame (see
     *  serve/wire.hpp) or any raw payload. Same deadline semantics
     *  as sendLine. */
    Result<bool> sendBytes(const std::string& bytes);

    /**
     * Blocks until one full response frame arrives — binary (payload
     * is the frame payload, header stripped) or JSON (payload is the
     * line sans '\n'), per the frame's own first byte. Use *either*
     * recvLine or recvFrame on a connection, not both: each maintains
     * its own reassembly buffer. `InvalidArgument` on EOF (naming
     * mid-frame truncation when the server died inside a frame) or a
     * damaged binary header.
     */
    Result<WireFramer::Frame> recvFrame();

    /** Half-closes the write side (server sees EOF, finishes pending
     *  answers, then closes). recvLine still works afterwards. */
    void finishSending();

    /** Closes the connection. */
    void close() { connection_.close(); }

  private:
    /** Waits for @p events on the socket within the remaining slice of
     *  this operation's deadline; typed error on timeout. */
    Result<bool> waitReady(short events, double deadlineMs);

    Connection connection_;
    std::string buffer_;  ///< Bytes read past the last returned line.
    /** recvFrame's reassembly state (recvLine uses buffer_). The cap
     *  matches the router's shard-side cap: snapshot frames are the
     *  biggest legitimate payloads on the wire. */
    WireFramer framer_{1 << 26};
    double timeout_ms_ = 0.0;
};

}  // namespace ftsim

#endif  // FTSIM_NET_CLIENT_HPP
