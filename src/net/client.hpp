#ifndef FTSIM_NET_CLIENT_HPP
#define FTSIM_NET_CLIENT_HPP

/**
 * @file
 * Blocking JSON-lines client for `ftsim_served`.
 *
 * One `NetClient` is one TCP connection speaking the serve protocol:
 * send request lines, read response lines. The server answers each
 * connection's requests *in request order*, so a client may pipeline —
 * send N lines, then read N responses — which is exactly what the
 * `ftsim_client` tool, the socket tests, and `bench_net_load` do.
 *
 * Deliberately blocking and single-threaded: the poll-based machinery
 * lives server-side; a client that wants concurrency opens more
 * connections (the bench opens 64).
 */

#include <cstdint>
#include <string>

#include "common/result.hpp"
#include "net/socket.hpp"

namespace ftsim {

/** Blocking line-protocol client (see file comment). */
class NetClient {
  public:
    NetClient() = default;

    /** Connects to @p host:@p port (blocking). */
    static Result<NetClient> connectTo(const std::string& host,
                                       std::uint16_t port);

    bool connected() const { return connection_.valid(); }

    /** Sends @p line plus the '\n' terminator (blocking, full). */
    Result<bool> sendLine(const std::string& line);

    /**
     * Blocks until one full response line arrives and returns it
     * without the terminator. `InvalidArgument` on EOF or a socket
     * error — for a pipelined exchange EOF mid-read means the server
     * dropped the connection.
     */
    Result<std::string> recvLine();

    /** sendLine + recvLine: one synchronous request/response. */
    Result<std::string> ask(const std::string& line);

    /** Half-closes the write side (server sees EOF, finishes pending
     *  answers, then closes). recvLine still works afterwards. */
    void finishSending();

    /** Closes the connection. */
    void close() { connection_.close(); }

  private:
    Connection connection_;
    std::string buffer_;  ///< Bytes read past the last returned line.
};

}  // namespace ftsim

#endif  // FTSIM_NET_CLIENT_HPP
