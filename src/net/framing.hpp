#ifndef FTSIM_NET_FRAMING_HPP
#define FTSIM_NET_FRAMING_HPP

/**
 * @file
 * Newline framing for the JSON-lines wire protocol.
 *
 * TCP is a byte stream: one read may carry half a request, three
 * requests, or a request split across a dozen packets. `LineFramer`
 * reassembles that stream into the protocol's frames — one line per
 * request, terminated by '\n' (an optional preceding '\r' is stripped
 * so netcat/telnet clients work).
 *
 * The cap: a line longer than `maxLineBytes` can never become a valid
 * request, so the framer emits one `overflow` frame the moment the cap
 * is crossed, discards the rest of that line as it streams in (bounded
 * memory however many gigabytes the peer sends), and resumes framing
 * at the next newline. The server answers an overflow frame with a
 * protocol error — the line is poisoned, the connection (and process)
 * are not.
 *
 * Deliberately IO-free (bytes in, frames out) so the fuzz tests in
 * tests/net/test_framing.cpp can drive every split/overflow
 * interleaving without a socket.
 */

#include <cstddef>
#include <deque>
#include <string>

namespace ftsim {

/** Reassembles a byte stream into newline-terminated frames. */
class LineFramer {
  public:
    /** One reassembled frame: a complete line, or an overflow marker
     *  for a line that crossed the cap (its bytes are discarded). */
    struct Frame {
        bool overflow = false;
        /** The line without its terminator (empty for overflow). */
        std::string line;
    };

    /** @param max_line_bytes cap on one line, terminator excluded;
     *         0 is reserved and treated as 1 (a cap is the point). */
    explicit LineFramer(std::size_t max_line_bytes)
        : max_line_(max_line_bytes > 0 ? max_line_bytes : 1)
    {
    }

    /** Feeds @p n bytes; completed frames queue up for next(). */
    void feed(const char* data, std::size_t n);

    /** Pops the next completed frame; false when none is ready. */
    bool next(Frame& out);

    /** Bytes of the current *partial* line buffered (audits the
     *  memory bound: never exceeds the cap). */
    std::size_t partialBytes() const { return partial_.size(); }

    /** True while discarding the tail of an oversized line. */
    bool discarding() const { return discarding_; }

  private:
    std::size_t max_line_;
    std::string partial_;
    bool discarding_ = false;
    std::deque<Frame> ready_;
};

}  // namespace ftsim

#endif  // FTSIM_NET_FRAMING_HPP
