#ifndef FTSIM_NET_FRAMING_HPP
#define FTSIM_NET_FRAMING_HPP

/**
 * @file
 * Newline framing for the JSON-lines wire protocol.
 *
 * TCP is a byte stream: one read may carry half a request, three
 * requests, or a request split across a dozen packets. `LineFramer`
 * reassembles that stream into the protocol's frames — one line per
 * request, terminated by '\n' (an optional preceding '\r' is stripped
 * so netcat/telnet clients work).
 *
 * The cap: a line longer than `maxLineBytes` can never become a valid
 * request, so the framer emits one `overflow` frame the moment the cap
 * is crossed, discards the rest of that line as it streams in (bounded
 * memory however many gigabytes the peer sends), and resumes framing
 * at the next newline. The server answers an overflow frame with a
 * protocol error — the line is poisoned, the connection (and process)
 * are not.
 *
 * Deliberately IO-free (bytes in, frames out) so the fuzz tests in
 * tests/net/test_framing.cpp can drive every split/overflow
 * interleaving without a socket.
 */

#include <cstddef>
#include <deque>
#include <string>

namespace ftsim {

/** Reassembles a byte stream into newline-terminated frames. */
class LineFramer {
  public:
    /** One reassembled frame: a complete line, or an overflow marker
     *  for a line that crossed the cap (its bytes are discarded). */
    struct Frame {
        bool overflow = false;
        /** The line without its terminator (empty for overflow). */
        std::string line;
    };

    /** @param max_line_bytes cap on one line, terminator excluded;
     *         0 is reserved and treated as 1 (a cap is the point). */
    explicit LineFramer(std::size_t max_line_bytes)
        : max_line_(max_line_bytes > 0 ? max_line_bytes : 1)
    {
    }

    /** Feeds @p n bytes; completed frames queue up for next(). */
    void feed(const char* data, std::size_t n);

    /** Pops the next completed frame; false when none is ready. */
    bool next(Frame& out);

    /** Bytes of the current *partial* line buffered (audits the
     *  memory bound: never exceeds the cap). */
    std::size_t partialBytes() const { return partial_.size(); }

    /** True while discarding the tail of an oversized line. */
    bool discarding() const { return discarding_; }

  private:
    std::size_t max_line_;
    std::string partial_;
    bool discarding_ = false;
    std::deque<Frame> ready_;
};

/**
 * Reassembles length-prefixed binary frames (see serve/wire.hpp for
 * the header layout). Unlike a JSON stream there is no resync point
 * past a damaged header — a bad magic, bad version, zero-length, or
 * over-cap length prefix *poisons* the framer: it stops consuming and
 * the connection must die (after one final error frame, the server's
 * job). Feeds stop after at most one completed frame so the caller
 * can re-dispatch the next frame's first byte (see WireFramer).
 */
class BinaryFramer {
  public:
    struct Frame {
        /** The frame payload, header stripped. */
        std::string payload;
    };

    /** @param max_payload_bytes cap on one frame's payload length;
     *         0 is reserved and treated as 1. */
    explicit BinaryFramer(std::size_t max_payload_bytes)
        : max_payload_(max_payload_bytes > 0 ? max_payload_bytes : 1)
    {
    }

    /**
     * Consumes bytes from @p data; returns how many were taken.
     * Stops early after completing one frame or on poison — the
     * remainder belongs to the next frame (or the JSON codec).
     */
    std::size_t feed(const char* data, std::size_t n);

    /** Pops the next completed frame; false when none is ready. */
    bool next(Frame& out);

    /** True once a header failed validation; no further bytes are
     *  consumed (a binary stream cannot resynchronize). */
    bool poisoned() const { return poisoned_; }

    /** Why the framer poisoned (empty while healthy). */
    const std::string& poisonReason() const { return poison_reason_; }

    /** True while a frame is partially buffered (EOF here means the
     *  peer truncated a frame). */
    bool midFrame() const { return !header_.empty(); }

    /** Bytes buffered for the current partial frame (bounded by
     *  header size + cap). */
    std::size_t partialBytes() const
    {
        return header_.size() + payload_.size();
    }

  private:
    void poison(std::string reason);

    std::size_t max_payload_;
    std::string header_;       ///< Up to kWireHeaderBytes.
    std::string payload_;      ///< Accumulates once header validates.
    std::size_t want_ = 0;     ///< Payload length from the header.
    bool poisoned_ = false;
    std::string poison_reason_;
    std::deque<Frame> ready_;
};

/**
 * The negotiating framer: dispatches a byte stream per-frame between
 * the JSON-lines codec and the binary codec by peeking each frame's
 * first byte (0xF7 opens a binary frame; nothing else does, and no
 * JSON line starts with 0xF7). This is what makes negotiation
 * implicit — the first byte of a connection selects its protocol,
 * and a connection may freely interleave both formats.
 *
 * One cap bounds both codecs: a JSON line's length and a binary
 * frame's payload length. JSON overflow keeps LineFramer's discard
 * semantics (one overflow frame, line poisoned, stream survives);
 * binary framing damage poisons the whole framer.
 */
class WireFramer {
  public:
    struct Frame {
        /** True for a binary frame; payload is the frame payload.
         *  False for a JSON line; payload is the line sans '\n'. */
        bool binary = false;
        /** JSON line crossed the cap (payload empty, line dropped). */
        bool overflow = false;
        std::string payload;
    };

    explicit WireFramer(std::size_t max_frame_bytes)
        : line_(max_frame_bytes), binary_(max_frame_bytes)
    {
    }

    /** Feeds @p n bytes; completed frames queue up for next(). After
     *  poison, remaining bytes are dropped. */
    void feed(const char* data, std::size_t n);

    /** Pops the next completed frame; false when none is ready. */
    bool next(Frame& out);

    /** True once binary framing damage killed the stream. */
    bool poisoned() const { return binary_.poisoned(); }

    const std::string& poisonReason() const
    {
        return binary_.poisonReason();
    }

    /** True at EOF means the peer truncated a binary frame. */
    bool midBinaryFrame() const { return mode_ == Mode::Binary; }

    /** Buffered bytes of the current partial line or frame. */
    std::size_t partialBytes() const
    {
        return line_.partialBytes() + binary_.partialBytes();
    }

  private:
    enum class Mode {
        Idle,    ///< Next byte selects the codec.
        Json,    ///< Mid-line; back to Idle after its '\n'.
        Binary,  ///< Mid-frame; back to Idle after the frame.
    };

    Mode mode_ = Mode::Idle;
    LineFramer line_;
    BinaryFramer binary_;
    std::deque<Frame> ready_;
};

}  // namespace ftsim

#endif  // FTSIM_NET_FRAMING_HPP
